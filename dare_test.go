package dare

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	out, err := Run(Options{
		Profile:   CCT(),
		Workload:  WL1(42),
		Scheduler: "fifo",
		Policy:    DefaultPolicy(),
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary.Jobs != 500 {
		t.Fatalf("jobs %d", out.Summary.Jobs)
	}
	if out.Summary.JobLocality <= 0 || out.Summary.JobLocality > 1 {
		t.Fatalf("locality %v", out.Summary.JobLocality)
	}
	if out.PolicyStats.ReplicasCreated == 0 {
		t.Fatal("DARE created no replicas")
	}
}

func TestFacadeProfilesAndPolicies(t *testing.T) {
	if CCT().Name != "CCT" || EC2().Name != "EC2" || EC2Small().Name != "EC2-20" {
		t.Fatal("profile names wrong")
	}
	if !strings.Contains(TableIII(CCT(), EC2()), "1 master, 19 slaves") {
		t.Fatal("Table III missing CCT row")
	}
	if DefaultPolicy().Kind != ElephantTrap {
		t.Fatal("default policy should be ElephantTrap")
	}
	if PolicyFor(GreedyLRU).Kind != GreedyLRU {
		t.Fatal("PolicyFor wrong")
	}
	if k, err := ParsePolicyKind("lru"); err != nil || k != GreedyLRU {
		t.Fatal("ParsePolicyKind wrong")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if wl := WL1(1); wl.Name != "wl1" || len(wl.Jobs) != 500 {
		t.Fatal("WL1 wrong")
	}
	if wl := WL2(1); wl.Name != "wl2" {
		t.Fatal("WL2 wrong")
	}
	if wl := GenerateWorkload(WorkloadConfig{NumJobs: 10, Seed: 1}); len(wl.Jobs) != 10 {
		t.Fatal("GenerateWorkload wrong")
	}
	pts := Fig6Points(120, 0)
	if len(pts) != 120 || pts[119].P != 1 {
		t.Fatal("Fig6Points wrong")
	}
}

func TestFacadeEnvironmentProbes(t *testing.T) {
	if !strings.Contains(TableI(1, 1, CCT()), "CCT") {
		t.Fatal("TableI missing CCT")
	}
	if !strings.Contains(TableII(5, 1, EC2()), "EC2 disk bandwidth") {
		t.Fatal("TableII missing EC2")
	}
	if !strings.Contains(Fig1(EC2Small(), 1), "Hop count") {
		t.Fatal("Fig1 missing header")
	}
	if r := BandwidthRatio(CCT(), 50, 1); r <= 0 || r >= 1 {
		t.Fatalf("CCT bandwidth ratio %v", r)
	}
}

func TestFacadeAuditLog(t *testing.T) {
	l := GenerateAuditLog(AuditLogConfig{Files: 100, Accesses: 5000, Seed: 3})
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if ranks := Fig2Ranks(l); len(ranks) == 0 {
		t.Fatal("no ranks")
	}
	if cdf := Fig3AgeCDF(l); cdf.N() != 5000 {
		t.Fatal("age CDF size wrong")
	}
	if _, err := Fig4Windows(l); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig5Windows(l); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentDriversSmall(t *testing.T) {
	// Tiny versions of each driver; full-scale checks live in
	// internal/runner.
	if rows, err := Fig7(40, 7); err != nil || len(rows) != 12 {
		t.Fatalf("Fig7: %v (%d rows)", err, len(rows))
	}
	if rows, err := Fig11(40, 7); err != nil || len(rows) != 11 {
		t.Fatalf("Fig11: %v (%d rows)", err, len(rows))
	}
	if rows, err := AblationWrites(40, 7); err != nil || len(rows) != 2 {
		t.Fatalf("AblationWrites: %v", err)
	}
}

func TestFacadeExtensionExperiments(t *testing.T) {
	// Scaled-down smoke of the extension drivers exported by the facade.
	rows, err := Adaptation(60, 11)
	if err != nil || len(rows) != 3 {
		t.Fatalf("Adaptation: %v (%d rows)", err, len(rows))
	}
	if out := RenderAdaptation(rows); len(out) == 0 {
		t.Fatal("empty adaptation rendering")
	}
	av, err := Availability(60, 3, 11)
	if err != nil || len(av) != 3 {
		t.Fatalf("Availability: %v", err)
	}
	if out := RenderAvailability(av); len(out) == 0 {
		t.Fatal("empty availability rendering")
	}
	sp, err := SpeculationStudy(40, 11)
	if err != nil || len(sp) != 4 {
		t.Fatalf("SpeculationStudy: %v", err)
	}
	if out := RenderSpeculation(sp); len(out) == 0 {
		t.Fatal("empty speculation rendering")
	}
}

func TestFacadeScarlettPolicy(t *testing.T) {
	if Scarlett.String() != "scarlett" {
		t.Fatal("Scarlett kind wrong")
	}
	if p := PolicyFor(Scarlett); p.Kind != Scarlett || p.Epoch <= 0 {
		t.Fatalf("Scarlett policy config %+v", p)
	}
	wl := WL2(11)
	wl.Jobs = wl.Jobs[:80]
	out, err := Run(Options{Profile: CCT(), Workload: wl, Scheduler: "fifo", Policy: PolicyFor(Scarlett), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if out.PolicyName != "scarlett" || out.ExtraNetworkBytes == 0 {
		t.Fatalf("scarlett run: name=%q extraNet=%d", out.PolicyName, out.ExtraNetworkBytes)
	}
}

func TestFacadeAuditLogRoundTrip(t *testing.T) {
	l := GenerateAuditLog(AuditLogConfig{Files: 30, Accesses: 500, Seed: 12})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuditLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Accesses) != 500 {
		t.Fatal("round trip lost accesses")
	}
}

func TestFacadeWorkloadRoundTrip(t *testing.T) {
	wl := WL1(13)
	var buf bytes.Buffer
	if err := wl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(wl.Jobs) {
		t.Fatal("round trip lost jobs")
	}
}
