package dare_test

import (
	"os"
	"strings"
	"testing"

	"dare"
)

// TestReadmePolicyTableMatchesRegistry pins README's replication-policy
// table to the shared name registry: the docs are generated from the
// same source every parse site uses, so they cannot drift.
func TestReadmePolicyTableMatchesRegistry(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	table := dare.RenderPolicyNames()
	if !strings.Contains(string(readme), strings.TrimSpace(table)) {
		t.Errorf("README.md does not contain the registry-rendered policy table; regenerate it from dare.RenderPolicyNames():\n%s", table)
	}
	if !strings.Contains(string(readme), "-policy-file") {
		t.Error("README.md does not document the -policy-file flag")
	}
}

// TestPolicyNameListShape pins the usage-string spelling both CLIs embed.
func TestPolicyNameListShape(t *testing.T) {
	if got := dare.PolicyNameList(); got != "vanilla|lru|lfu|elephanttrap|scarlett" {
		t.Errorf("PolicyNameList() = %q", got)
	}
}
