// Package dare is a faithful, simulation-backed reproduction of
//
//	Cristina L. Abad, Yi Lu, Roy H. Campbell.
//	"DARE: Adaptive Data Replication for Efficient Cluster Scheduling."
//	IEEE International Conference on Cluster Computing (CLUSTER), 2011.
//
// DARE is a distributed, adaptive data-replication mechanism for
// MapReduce/HDFS clusters: each data node independently turns the remote
// block fetches that non-local map tasks already perform into new
// "dynamic" replicas — at zero extra network cost — and evicts them under
// a storage budget using either a greedy LRU policy (paper Algorithm 1) or
// the probabilistic ElephantTrap policy with competitive aging (paper
// Algorithm 2). The extra replicas of popular blocks give any
// locality-aware scheduler more placement choices, raising map-task data
// locality and cutting turnaround time and slowdown.
//
// This package is the public facade over the full reproduction stack:
//
//   - a deterministic discrete-event cluster simulator with an HDFS-like
//     file system (name node, blocks, rack-aware placement) and a
//     MapReduce execution model (job tracker, heartbeats, map/reduce
//     slots, calibrated local/remote read costs);
//   - the FIFO and Fair-with-delay-scheduling schedulers the paper
//     evaluates under;
//   - the DARE policies themselves;
//   - SWIM-style synthetic Facebook workloads (wl1, wl2) and a synthetic
//     Yahoo!-shaped audit log with the paper's §III analyses;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation (see EXPERIMENTS.md for the index).
//
// Quick start:
//
//	out, err := dare.Run(dare.Options{
//	    Profile:   dare.CCT(),
//	    Workload:  dare.WL1(42),
//	    Scheduler: "fifo",
//	    Policy:    dare.DefaultPolicy(),
//	    Seed:      42,
//	})
//	if err != nil { ... }
//	fmt.Printf("locality %.2f, GMTT %.1fs\n", out.Summary.JobLocality, out.Summary.GMTT)
package dare

import (
	"io"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/event"
	"dare/internal/mapreduce"
	"dare/internal/metrics"
	"dare/internal/netprobe"
	"dare/internal/policy"
	"dare/internal/runner"
	"dare/internal/stats"
	"dare/internal/trace"
	"dare/internal/workload"
)

// ---------------------------------------------------------------------------
// Cluster profiles (Table III)

// Profile describes one test cluster: Table III's descriptive rows plus
// the performance models calibrated from Tables I-II.
type Profile = config.Profile

// CCT returns the dedicated 20-node cluster profile of Table III.
func CCT() *Profile { return config.CCT() }

// EC2 returns the virtualized 100-node EC2 profile of Table III.
func EC2() *Profile { return config.EC2() }

// EC2Small returns the 20-node EC2 variant used for the §II-B probes.
func EC2Small() *Profile { return config.EC2Small() }

// TableIII renders the cluster-configuration table.
func TableIII(profiles ...*Profile) string { return config.TableIII(profiles...) }

// ProfileSpec is a JSON-serializable cluster description; LoadProfile
// decodes one and builds a validated Profile, so experiments on clusters
// the paper never measured need only a config file.
type ProfileSpec = config.ProfileSpec

// LoadProfile decodes a JSON ProfileSpec from r.
func LoadProfile(r io.Reader) (*Profile, error) { return config.LoadProfile(r) }

// ---------------------------------------------------------------------------
// DARE policies (§IV)

// PolicyKind selects a replication policy.
type PolicyKind = core.PolicyKind

// Policy kinds: vanilla Hadoop (no dynamic replication), greedy LRU
// (Algorithm 1), probabilistic ElephantTrap (Algorithm 2), and the
// epoch-based Scarlett baseline (§VI) for adaptation comparisons.
const (
	Vanilla      = core.NonePolicy
	GreedyLRU    = core.GreedyLRUPolicy
	GreedyLFU    = core.GreedyLFUPolicy
	ElephantTrap = core.ElephantTrapPolicy
	Scarlett     = core.ScarlettPolicy
)

// PolicyConfig parameterizes DARE (sampling probability p, aging
// threshold, replication budget, heartbeat-coupled delays).
type PolicyConfig = core.Config

// DefaultPolicy returns the paper's headline configuration: ElephantTrap
// with p = 0.3, threshold = 1, budget = 0.2 (Fig. 7).
func DefaultPolicy() PolicyConfig { return core.DefaultConfig() }

// PolicyFor returns the evaluated configuration for a policy kind.
func PolicyFor(kind PolicyKind) PolicyConfig { return runner.PolicyFor(kind) }

// ParsePolicyKind converts a CLI spelling ("vanilla", "lru",
// "elephanttrap") into a PolicyKind.
func ParsePolicyKind(s string) (PolicyKind, error) { return core.ParsePolicyKind(s) }

// PolicyNameList renders the accepted policy spellings ("vanilla|lru|...")
// from the shared name registry, for CLI usage strings.
func PolicyNameList() string { return policy.PolicyNameList() }

// RenderPolicyNames renders the policy-name registry as a markdown table
// (canonical name, aliases, behavior) — the source of README's table.
func RenderPolicyNames() string { return policy.RenderPolicyNameTable() }

// ---------------------------------------------------------------------------
// Policy config files (-policy-file)

// PolicySpec is the JSON form of a policy configuration: a policy kind
// with scalar knobs plus optional declarative rule overrides for
// replication admission/eviction, repair-target ranking, speculation,
// blacklisting, and the job-fail gate. PolicySet is the built, validated
// form that plugs into Options.PolicySet. RuleSpec is one node of a rule
// tree; RuleTable/RunRuleTable give rule specs an `opa test`-style table
// harness.
type (
	PolicySpec = config.PolicySpec
	PolicySet  = config.PolicySet
	RuleSpec   = policy.RuleSpec
	RuleTable  = policy.Table
)

// LoadPolicy reads and validates a policy config file (-policy-file).
func LoadPolicy(path string) (*PolicySet, error) { return config.LoadPolicy(path) }

// ReadPolicy decodes and validates a policy config from r.
func ReadPolicy(r io.Reader) (*PolicySet, error) { return config.ReadPolicy(r) }

// BuiltinPolicy builds the named built-in arm — the config-file arm whose
// run is byte-identical to the equivalent -policy flag run.
func BuiltinPolicy(name string) (*PolicySet, error) { return config.BuiltinPolicy(name) }

// RunRuleTable evaluates one declarative rule table (rows in order, so
// stateful rules see a sequence).
func RunRuleTable(tb *RuleTable) *policy.TableResult { return policy.RunTable(tb) }

// PolicyArmRow carries one arm of a policy-file sweep.
type PolicyArmRow = runner.PolicyArmRow

// PolicySweep runs every built-in policy arm plus any extra config-file
// arms (e.g. the ε-greedy bandit in configs/bandit.json) on the standard
// CCT/wl1/FIFO bench.
func PolicySweep(jobs int, seed uint64, extra []*PolicySet) ([]PolicyArmRow, error) {
	return runner.PolicySweep(jobs, seed, extra)
}

// ---------------------------------------------------------------------------
// Workloads (§V-A)

// Workload is a synthetic SWIM-style job trace over a file population.
type Workload = workload.Workload

// WorkloadConfig parameterizes trace synthesis.
type WorkloadConfig = workload.GenConfig

// WL1 builds the paper's first workload: a long sequence of small jobs.
func WL1(seed uint64) *Workload { return workload.WL1(seed) }

// WL2 builds the paper's second workload: small jobs after large jobs.
func WL2(seed uint64) *Workload { return workload.WL2(seed) }

// GenerateWorkload synthesizes a custom trace.
func GenerateWorkload(cfg WorkloadConfig) *Workload { return workload.Generate(cfg) }

// Fig6Points samples the access-pattern CDF used in the experiments.
func Fig6Points(nFiles int, zipfS float64) []stats.CDFPoint {
	return workload.Fig6Points(nFiles, zipfS)
}

// ---------------------------------------------------------------------------
// Simulation (one run)

// Options configures one simulation run; Output carries its metrics.
// NodeFailure schedules failure injection within a run.
type (
	Options     = runner.Options
	Output      = runner.Output
	NodeFailure = runner.NodeFailure
)

// Run executes one full cluster simulation: it builds the cluster from the
// profile, loads the workload's files into the DFS, replays the job trace
// under the chosen scheduler with DARE attached (unless Policy.Kind is
// Vanilla), and returns the evaluation metrics. Deterministic in
// (Options, Seed).
func Run(opts Options) (*Output, error) { return runner.Run(opts) }

// RunAll executes every Options on a bounded worker pool (see
// SetParallelism) and returns the outputs in input order. Each simulated
// world remains single-threaded and deterministic; only whole runs fan
// out, so outs[i] is byte-identical to what a serial Run(opts[i]) returns.
func RunAll(opts []Options) ([]*Output, error) { return runner.RunAll(opts) }

// SetParallelism bounds how many simulations may run concurrently in
// RunAll and the experiment drivers. n <= 0 restores the default
// (GOMAXPROCS).
func SetParallelism(n int) { runner.SetParallelism(n) }

// Parallelism reports the current concurrent-simulation bound.
func Parallelism() int { return runner.Parallelism() }

// TotalEventsProcessed reports the cumulative simulation events processed
// by all completed runs in this process — the throughput numerator for
// benchmarking (events/sec).
func TotalEventsProcessed() uint64 { return runner.TotalEventsProcessed() }

// ---------------------------------------------------------------------------
// Durable runs (checkpoint/restore, crash-resume, service mode)

// CheckpointSpec arms periodic checkpointing of a run (see DESIGN.md §4j):
// Path names the snapshot file (atomically rotated with a .prev
// generation), Every is the checkpoint cadence in processed engine events,
// Interrupt requests a final checkpoint + clean stop when raised (the
// SIGINT path), and AfterCheckpoint observes each durable write.
// DivergenceError is the typed rejection when a resumed replay does not
// reproduce the checkpointed state; ErrInterrupted reports a run stopped
// by Interrupt after flushing its final checkpoint; ErrNotSnapshottable
// marks Options that cannot be transcribed into a checkpoint spec.
type (
	CheckpointSpec  = runner.CheckpointSpec
	DivergenceError = runner.DivergenceError
)

var (
	ErrInterrupted      = runner.ErrInterrupted
	ErrNotSnapshottable = runner.ErrNotSnapshottable
)

// RunCheckpointed is Run with durable checkpoints: the complete run state
// is snapshotted every spec.Every events, so a process killed at any
// checkpoint boundary can Resume and finish with byte-identical Output
// and event trace. Checkpoint writes are pure observation — an armed
// run's results are byte-identical to an unarmed Run.
func RunCheckpointed(opts Options, ck CheckpointSpec) (*Output, error) {
	return runner.RunCheckpointed(opts, ck)
}

// Resume continues a batch run from the checkpoint at path (falling back
// to the previous generation if the primary is torn or corrupt). eventLog
// must be a fresh sink when the original run had one — the replay
// re-emits the full trace from genesis, byte-identically.
func Resume(path string, eventLog io.Writer, ck CheckpointSpec) (*Output, error) {
	return runner.Resume(path, eventLog, ck)
}

// ResumeMode selects the restore strategy: ResumeReplay re-executes the
// event history from genesis to the cut (O(history)); ResumeState decodes
// the checkpoint's direct state image (O(state)), falling back to replay
// when the checkpoint carries no image. ResumeInfo describes a checkpoint
// so a caller can prepare sinks before choosing (see InspectCheckpoint).
type (
	ResumeMode = runner.ResumeMode
	ResumeInfo = runner.ResumeInfo
)

const (
	ResumeReplay = runner.ResumeReplay
	ResumeState  = runner.ResumeState
)

// ParseResumeMode maps a CLI flag value to a ResumeMode ("" means the
// default, ResumeState).
func ParseResumeMode(s string) (ResumeMode, error) { return runner.ParseResumeMode(s) }

// InspectCheckpoint loads the checkpoint at path and describes how it can
// be resumed: batch or stream, state-resumable or replay-only, and the
// output-stream byte positions at the cut.
func InspectCheckpoint(path string) (*ResumeInfo, error) { return runner.InspectCheckpoint(path) }

// ResumeWithMode is Resume with an explicit restore strategy. In state
// mode eventLog receives only the post-cut suffix of the trace (append it
// to the original log truncated to the cut position — InspectCheckpoint
// reports it); in replay mode the full trace is re-emitted from genesis.
func ResumeWithMode(path string, eventLog io.Writer, ck CheckpointSpec, mode ResumeMode) (*Output, error) {
	return runner.ResumeWithMode(path, eventLog, ck, mode)
}

// StreamRunSpec configures service mode (`dare-sim -stream`): open-ended
// window-by-window job synthesis with optional diurnal load modulation;
// StreamReportLine is one JSONL record of its per-window metrics stream.
type (
	StreamRunSpec    = runner.StreamRunSpec
	StreamReportLine = runner.StreamReportLine
)

// RunStream executes a service-mode run; ResumeStream continues one from
// its checkpoint (see runner.RunStream / runner.ResumeStream).
func RunStream(opts Options, scfg StreamRunSpec, report io.Writer, ck CheckpointSpec) (*Output, error) {
	return runner.RunStream(opts, scfg, report, ck)
}

// ResumeStream continues a service-mode run from the checkpoint at path.
func ResumeStream(path string, eventLog, report io.Writer, ck CheckpointSpec) (*Output, error) {
	return runner.ResumeStream(path, eventLog, report, ck)
}

// ResumeStreamWithMode is ResumeStream with an explicit restore strategy;
// in state mode eventLog and report receive only the post-cut suffix of
// each stream.
func ResumeStreamWithMode(path string, eventLog, report io.Writer, ck CheckpointSpec, mode ResumeMode) (*Output, error) {
	return runner.ResumeStreamWithMode(path, eventLog, report, ck, mode)
}

// EventCounts tallies cluster bus events per kind; Output.EventCounts
// reports one run's tallies and TotalBusEvents the process-wide ones. Set
// Options.EventLog to also capture the full JSONL trace (see ReadEventLog).
type EventCounts = event.Counts

// ClusterEvent is one typed cluster event as decoded from a JSONL trace.
type ClusterEvent = event.Event

// TotalBusEvents reports the cumulative per-kind cluster bus event counts
// across all completed runs in this process.
func TotalBusEvents() EventCounts { return runner.TotalBusEvents() }

// ReadEventLog decodes a JSONL trace written via Options.EventLog. Lines
// whose kind this build does not know (a trace from a newer build) are
// skipped; use ReadEventLogSkipped to count them.
func ReadEventLog(r io.Reader) ([]ClusterEvent, error) { return event.ReadLog(r) }

// ReadEventLogSkipped is ReadEventLog, additionally reporting how many
// unknown-kind lines were skipped.
func ReadEventLogSkipped(r io.Reader) ([]ClusterEvent, int, error) { return event.ReadLogSkipped(r) }

// TraceStats summarizes a decoded event log (per-kind volume, sim-time
// span, map-launch locality split, replica churn).
type TraceStats = event.TraceStats

// SummarizeEvents tallies a decoded event log into TraceStats.
func SummarizeEvents(events []ClusterEvent) TraceStats { return event.Summarize(events) }

// JobResult is one job's outcome within Output.Results.
type JobResult = mapreduce.Result

// LocalityTimeline buckets per-job locality into n consecutive groups of
// the job stream, exposing DARE's convergence and adaptation dynamics.
func LocalityTimeline(results []JobResult, n int) []float64 {
	return metrics.LocalityTimeline(results, n)
}

// ---------------------------------------------------------------------------
// Experiment drivers (one per table/figure; see EXPERIMENTS.md)

// Row types of the experiment drivers.
type (
	PerfRow    = runner.PerfRow
	SensRow    = runner.SensRow
	Fig11Row   = runner.Fig11Row
	WritesRow  = runner.WritesRow
	MapTimeRow = runner.MapTimeRow
)

// Fig7 regenerates the dedicated-cluster grid (Fig. 7a/b/c). jobs <= 0
// runs the paper's full 500 jobs.
func Fig7(jobs int, seed uint64) ([]PerfRow, error) { return runner.Fig7(jobs, seed) }

// Fig8P regenerates the sampling-probability sweep (Fig. 8a).
func Fig8P(jobs int, seed uint64) ([]SensRow, error) { return runner.Fig8P(jobs, seed) }

// Fig8Threshold regenerates the aging-threshold sweep (Fig. 8b).
func Fig8Threshold(jobs int, seed uint64) ([]SensRow, error) { return runner.Fig8Threshold(jobs, seed) }

// Fig9LRU regenerates the budget sweep with greedy LRU eviction (Fig. 9a).
func Fig9LRU(jobs int, seed uint64) ([]SensRow, error) { return runner.Fig9LRU(jobs, seed) }

// Fig9ET regenerates the budget sweep with ElephantTrap eviction (Fig. 9b).
func Fig9ET(jobs int, seed uint64) ([]SensRow, error) { return runner.Fig9ET(jobs, seed) }

// Fig10 regenerates the virtualized-cloud grid (Fig. 10a/b/c).
func Fig10(jobs int, seed uint64) ([]PerfRow, error) { return runner.Fig10(jobs, seed) }

// Fig11 regenerates the placement-uniformity experiment (Fig. 11).
func Fig11(jobs int, seed uint64) ([]Fig11Row, error) { return runner.Fig11(jobs, seed) }

// AblationWrites compares LRU and ElephantTrap disk writes at comparable
// locality (§I's "50% of the disk writes" claim).
func AblationWrites(jobs int, seed uint64) ([]WritesRow, error) {
	return runner.AblationWrites(jobs, seed)
}

// AblationMapTime measures the §V-C map-completion-time reduction.
func AblationMapTime(jobs int, seed uint64) ([]MapTimeRow, error) {
	return runner.AblationMapTime(jobs, seed)
}

// AdaptationRow carries one policy's locality trajectory through a
// popularity shift.
type AdaptationRow = runner.AdaptationRow

// Adaptation runs the §VI reactive-vs-proactive comparison: a workload
// whose hot file set rotates at the midpoint, under vanilla, DARE, and
// the Scarlett epoch baseline.
func Adaptation(jobs int, seed uint64) ([]AdaptationRow, error) {
	return runner.Adaptation(jobs, seed)
}

// AvailabilityRow carries one policy's data availability after injected
// node failures.
type AvailabilityRow = runner.AvailabilityRow

// SpeculationRow carries one configuration of the speculative-execution
// study.
type SpeculationRow = runner.SpeculationRow

// EvictionRow compares the eviction policies of §IV (LRU, LFU,
// ElephantTrap) at a binding budget.
type EvictionRow = runner.EvictionRow

// EvictionStudy profiles the eviction policies §IV names on both paper
// workloads under a budget tight enough that the choice matters.
func EvictionStudy(jobs int, seed uint64) ([]EvictionRow, error) {
	return runner.EvictionStudy(jobs, seed)
}

// AuditReplayRow carries one policy's performance replaying the
// Yahoo!-shaped audit log.
type AuditReplayRow = runner.AuditReplayRow

// OutputBoundRow splits turnaround gains by input- vs output-bound jobs.
type OutputBoundRow = runner.OutputBoundRow

// OutputBound reproduces §V-C's observation that dynamic replication does
// not expedite output-bound jobs: the output-write pipeline's service-time
// gap survives replication.
func OutputBound(jobs int, seed uint64) ([]OutputBoundRow, error) {
	return runner.OutputBound(jobs, seed)
}

// DelayRow is one point of the delay-scheduling patience sweep.
type DelayRow = runner.DelayRow

// DelaySweep quantifies the §VI complementarity claim: DARE reaches the
// same locality as vanilla delay scheduling at a fraction of the waiting
// patience.
func DelaySweep(jobs int, seed uint64) ([]DelayRow, error) {
	return runner.DelaySweep(jobs, seed)
}

// BalanceRow contrasts byte balance (the HDFS balancer's goal) with
// popularity balance (Fig. 11's).
type BalanceRow = runner.BalanceRow

// BalanceStudy compares untreated, HDFS-balancer, and DARE placements on
// both storage-cv and popularity-cv.
func BalanceStudy(jobs int, seed uint64) ([]BalanceRow, error) {
	return runner.BalanceStudy(jobs, seed)
}

// UniformRow compares uniform replication factors against adaptive
// replication.
type UniformRow = runner.UniformRow

// UniformVsAdaptive quantifies §III's premise: matching DARE's locality
// by raising the uniform replication factor costs several times the
// storage, because uniform copies are mostly spent on cold data.
func UniformVsAdaptive(jobs int, seed uint64) ([]UniformRow, error) {
	return runner.UniformVsAdaptive(jobs, seed)
}

// AuditReplay replays a slice of the synthetic audit log through the
// cluster, connecting the §III access characterization directly to the
// §V evaluation.
func AuditReplay(jobs int, seed uint64) ([]AuditReplayRow, error) {
	return runner.AuditReplay(jobs, seed)
}

// ReplayConfig converts audit logs into workloads (see
// Workload.FromAuditLog's package documentation).
type ReplayConfig = workload.ReplayConfig

// WorkloadFromAuditLog converts an access-log slice into a replayable
// workload.
func WorkloadFromAuditLog(l *AuditLog, cfg ReplayConfig) (*Workload, error) {
	return workload.FromAuditLog(l, cfg)
}

// SpeculationStudy replays wl1 on the noisy EC2 profile with Hadoop-style
// speculative execution off and on, under vanilla and DARE.
func SpeculationStudy(jobs int, seed uint64) ([]SpeculationRow, error) {
	return runner.SpeculationStudy(jobs, seed)
}

// Availability measures the §IV-B claim that DARE's dynamic replicas are
// first-order replicas contributing to availability: it kills failNodes
// nodes mid-run (repairs disabled) and reports the fraction of blocks —
// and of access-weighted data — still readable.
func Availability(jobs, failNodes int, seed uint64) ([]AvailabilityRow, error) {
	return runner.Availability(jobs, failNodes, seed)
}

// ---------------------------------------------------------------------------
// Churn (§IV-B robustness: failures, recoveries, repair)

// Failure-injection scheduling for individual runs: NodeRecovery rejoins a
// failed node (HDFS-style empty re-registration), RackFailure kills every
// live node behind one rack switch, ChurnSpec drives the seeded stochastic
// failure/recovery generator, and RecoveryEvent records a rejoin.
type (
	NodeRecovery  = runner.NodeRecovery
	RackFailure   = runner.RackFailure
	ChurnSpec     = runner.ChurnSpec
	RecoveryEvent = mapreduce.RecoveryEvent
)

// ChurnRow carries one scheduler×policy arm of the churn study.
type ChurnRow = runner.ChurnRow

// DefaultChurnSpec scales a stochastic churn schedule to an arrival span
// and cluster size (see runner.DefaultChurnSpec).
func DefaultChurnSpec(span float64, nodes int) ChurnSpec {
	return runner.DefaultChurnSpec(span, nodes)
}

// ChurnStudy replays wl1 under a seeded stochastic failure/recovery
// schedule for both schedulers × {vanilla, DARE-LRU, ElephantTrap} and
// reports weighted availability, repair backlog, and job slowdown — the
// §IV-B availability claim under sustained churn rather than a one-shot
// kill. Non-positive spec fields fall back to DefaultChurnSpec; check
// enables the metadata invariant checker after every churn event.
func ChurnStudy(jobs int, seed uint64, spec ChurnSpec, check bool) ([]ChurnRow, error) {
	return runner.ChurnStudy(jobs, seed, spec, check)
}

// ---------------------------------------------------------------------------
// Gray failures & chaos (slow nodes, corruption, hedged reads, flaps)

// ChaosSpec configures the seeded gray-failure scenario generator (mixed
// crashes, degradations, silent corruption, false-dead flaps); GrayStats
// tallies the gray machinery's activity in Output.Gray; ChaosRow carries
// one arm of the chaos study.
type (
	ChaosSpec = runner.ChaosSpec
	GrayStats = mapreduce.GrayStats
	ChaosRow  = runner.ChaosRow
)

// DefaultChaosSpec scales a chaos scenario to an arrival span (see
// runner.DefaultChaosSpec).
func DefaultChaosSpec(span float64) ChaosSpec { return runner.DefaultChaosSpec(span) }

// ChaosStudy replays wl1 under one seeded gray-failure scenario for both
// schedulers × {vanilla, DARE-LRU, ElephantTrap}: every arm faces the
// identical injection schedule, so turnaround/locality/availability
// differences are attributable to the replication policy. check enables
// the cross-layer invariant checker after every injected event.
func ChaosStudy(jobs int, seed uint64, spec ChaosSpec, check bool) ([]ChaosRow, error) {
	return runner.ChaosStudy(jobs, seed, spec, check)
}

// ---------------------------------------------------------------------------
// Control-plane failover (master crash, journaled metadata, block reports)

// MasterOutage schedules one master crash/recover pair within a run;
// MasterStats tallies the outage machinery in Output.Master; MasterEvent
// is one control-plane availability sample in Output.MasterEvents;
// FailoverRow carries one arm of the failover study.
type (
	MasterOutage = runner.MasterOutage
	MasterStats  = mapreduce.MasterStats
	MasterEvent  = mapreduce.MasterEvent
	FailoverRow  = runner.FailoverRow
)

// FailoverStudy replays wl1 under two identically-scheduled master
// outages for fifo × {vanilla, ElephantTrap} × {journal, report}: the
// journal arms recover by checkpoint + edit-log replay (instant full
// view), the report arms from a cold registry progressively warmed by
// per-node block reports. Rows report recovery time, deferred work,
// killed attempts, and time-averaged access-weighted master availability.
// check enables the invariant checker after every recovery.
func FailoverStudy(jobs int, seed uint64, check bool) ([]FailoverRow, error) {
	return runner.FailoverStudy(jobs, seed, check)
}

// EventRow carries one arm of the event-volume study.
type EventRow = runner.EventRow

// EventStudy measures per-kind cluster bus event volume for the evaluated
// policies with and without churn — the traffic a -events trace captures.
func EventStudy(jobs int, seed uint64) ([]EventRow, error) {
	return runner.EventStudy(jobs, seed)
}

// EngineRow carries one arm of the engine microbenchmark (calendar queue
// vs legacy heap on the identical full-cluster run).
type EngineRow = runner.EngineRow

// EngineStudy benchmarks the pending-event set head to head across
// {cct, ec2} × {plain, churn, chaos}, each on both queue implementations,
// reporting wall time, events/sec, and allocations per event.
func EngineStudy(jobs int, seed uint64) ([]EngineRow, error) {
	return runner.EngineStudy(jobs, seed)
}

// ScaleRow carries one arm of the scale benchmark (coalesced cohort vs
// per-node heartbeat driving on 1k–20k-node clusters).
type ScaleRow = runner.ScaleRow

// ScaleStudy benchmarks the heartbeat driver head to head across cluster
// sizes {1k, 4k, 10k, 20k}, each in cohort and per-node mode, reporting
// CPU time, engine/bus event throughput, and allocations per bus event.
func ScaleStudy(jobs int, seed uint64) ([]ScaleRow, error) {
	return runner.ScaleStudy(jobs, seed)
}

// ScaleProfile builds the n-node dedicated benchmark cluster the scale
// study runs on (CCT performance models, 40-node racks).
func ScaleProfile(nodes int) *Profile { return runner.ScaleProfile(nodes) }

// CheckpointRow carries one arm of the checkpoint-overhead study (A19).
type CheckpointRow = runner.CheckpointRow

// CheckpointStudy measures what durable checkpoints cost: run overhead at
// two cadences plus the wall-clock price of crash-recovery by replay,
// every arm verified byte-identical to the unarmed baseline.
func CheckpointStudy(jobs int, seed uint64) ([]CheckpointRow, error) {
	return runner.CheckpointStudy(jobs, seed)
}

// ResumeLadderRow carries one rung of the A19 resume-scaling ladder.
type ResumeLadderRow = runner.ResumeLadderRow

// ResumeLadder measures crash-recovery latency vs run length: runs of
// growing length killed at 25/50/75% of their checkpoints and resumed in
// both modes with the interrupt pre-raised, isolating O(history) replay
// against O(state) direct restore.
func ResumeLadder(seed uint64) ([]ResumeLadderRow, error) {
	return runner.ResumeLadder(seed)
}

// Renderers format experiment rows the way the paper's figures group them.
var (
	RenderPerf         = runner.RenderPerf
	RenderSens         = runner.RenderSens
	RenderFig11        = runner.RenderFig11
	RenderWrites       = runner.RenderWrites
	RenderMapTime      = runner.RenderMapTime
	RenderAdaptation   = runner.RenderAdaptation
	RenderAvailability = runner.RenderAvailability
	RenderSpeculation  = runner.RenderSpeculation
	RenderEviction     = runner.RenderEviction
	RenderAuditReplay  = runner.RenderAuditReplay
	RenderOutputBound  = runner.RenderOutputBound
	RenderDelaySweep   = runner.RenderDelaySweep
	RenderBalance      = runner.RenderBalance
	RenderUniform      = runner.RenderUniform
	RenderEvents       = runner.RenderEvents
	RenderEngine       = runner.RenderEngine
	RenderScale        = runner.RenderScale
	RenderTraceStats   = event.RenderTraceStats
	RenderCheckpoint   = runner.RenderCheckpoint
	RenderResumeLadder = runner.RenderResumeLadder
	RenderChurn        = runner.RenderChurn
	RenderChaos        = runner.RenderChaos
	RenderFailover     = runner.RenderFailover
	RenderPolicySweep  = runner.RenderPolicySweep
)

// ---------------------------------------------------------------------------
// Environment characterization (§II-B: Tables I-II, Fig. 1)

// TableI runs the all-to-all ping campaign and renders Table I.
func TableI(rounds int, seed uint64, profiles ...*Profile) string {
	return netprobe.TableI(rounds, seed, profiles...)
}

// TableII runs the bandwidth campaign and renders Table II.
func TableII(samples int, seed uint64, profiles ...*Profile) string {
	return netprobe.TableII(samples, seed, profiles...)
}

// Fig1 renders the hop-count distribution of a cluster built from p.
func Fig1(p *Profile, seed uint64) string { return netprobe.Fig1(p, seed) }

// BandwidthRatio reports mean network/disk bandwidth — §II-B's insight
// metric (lower means locality pays off more).
func BandwidthRatio(p *Profile, samples int, seed uint64) float64 {
	return netprobe.BandwidthRatio(p, samples, seed)
}

// ---------------------------------------------------------------------------
// Access-pattern characterization (§III: Figs. 2-5)

// AuditLog is a (synthetic or imported) file-access trace.
type AuditLog = trace.Log

// AuditLogConfig parameterizes the synthetic Yahoo!-shaped generator.
type AuditLogConfig = trace.GenConfig

// GenerateAuditLog synthesizes one week of Yahoo!-shaped audit log.
func GenerateAuditLog(cfg AuditLogConfig) *AuditLog { return trace.Generate(cfg) }

// ReadAuditLog parses an audit log written by AuditLog.WriteCSV — the
// shape real HDFS audit data should be converted into for analysis.
func ReadAuditLog(in io.Reader) (*AuditLog, error) { return trace.ReadCSV(in) }

// ReadWorkload parses a workload written by Workload.WriteCSV.
func ReadWorkload(in io.Reader) (*Workload, error) { return workload.ReadCSV(in) }

// Fig2Ranks computes the popularity-vs-rank series of Fig. 2.
func Fig2Ranks(l *AuditLog) []trace.RankPoint { return trace.PopularityRanks(l) }

// Fig3AgeCDF computes the age-at-access CDF of Fig. 3.
func Fig3AgeCDF(l *AuditLog) *stats.ECDF { return trace.AgeCDF(l) }

// Fig4Windows computes the weekly burst-window distribution of Fig. 4.
func Fig4Windows(l *AuditLog) (trace.WindowResult, error) {
	return trace.BurstWindows(l, trace.DefaultWindowConfig(l))
}

// Fig5Windows computes the day-2 burst-window distribution of Fig. 5.
func Fig5Windows(l *AuditLog) (trace.WindowResult, error) {
	return trace.BurstWindows(l, trace.Day2WindowConfig())
}

// HourlyProfile computes the diurnal access profile of a log (the daily
// periodicity behind Fig. 4).
func HourlyProfile(l *AuditLog) [24]float64 { return trace.HourlyProfile(l) }

// Trace renderers.
var (
	RenderRanks         = trace.RenderRanks
	RenderAgeCDF        = trace.RenderAgeCDF
	RenderWindows       = trace.RenderWindows
	RenderHourlyProfile = trace.RenderHourlyProfile
)
