package dare

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the artifact end-to-end at a reduced-but-faithful
// scale (the full 500-job versions are what `dare-bench` prints; the
// benchmarks keep iterations short enough for -bench=. to be routine).
// Custom metrics expose the headline quantities next to ns/op, so a bench
// run doubles as a regression check on the reproduced numbers.

import (
	"testing"
)

const (
	benchJobs = 120
	benchSeed = 42
)

// BenchmarkTable1RTT regenerates Table I: the all-to-all ping campaign on
// both testbeds.
func BenchmarkTable1RTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := TableI(2, benchSeed, CCT(), EC2Small()); len(out) == 0 {
			b.Fatal("empty Table I")
		}
	}
}

// BenchmarkTable2Bandwidth regenerates Table II: the hdparm/iperf
// bandwidth campaign.
func BenchmarkTable2Bandwidth(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = BandwidthRatio(EC2(), 50, benchSeed)
	}
	b.ReportMetric(ratio, "ec2-net/disk")
}

// BenchmarkTable3Config renders the cluster-configuration table.
func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := TableIII(CCT(), EC2()); len(out) == 0 {
			b.Fatal("empty Table III")
		}
	}
}

// BenchmarkFig1Hops regenerates the hop-count census of a 20-node EC2
// allocation.
func BenchmarkFig1Hops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := Fig1(EC2Small(), benchSeed); len(out) == 0 {
			b.Fatal("empty Fig. 1")
		}
	}
}

// benchLog builds the synthetic audit log once per benchmark.
func benchLog(b *testing.B) *AuditLog {
	b.Helper()
	return GenerateAuditLog(AuditLogConfig{Files: 300, Accesses: 30000, Seed: benchSeed})
}

// BenchmarkFig2Popularity regenerates the popularity-rank series.
func BenchmarkFig2Popularity(b *testing.B) {
	l := benchLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ranks := Fig2Ranks(l); len(ranks) == 0 {
			b.Fatal("no ranks")
		}
	}
}

// BenchmarkFig3AgeCDF regenerates the age-at-access CDF.
func BenchmarkFig3AgeCDF(b *testing.B) {
	l := benchLog(b)
	b.ResetTimer()
	var day1 float64
	for i := 0; i < b.N; i++ {
		day1 = Fig3AgeCDF(l).At(86400)
	}
	b.ReportMetric(day1, "P(age<1d)")
}

// BenchmarkFig4Windows regenerates the weekly burst-window distribution.
func BenchmarkFig4Windows(b *testing.B) {
	l := benchLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig4Windows(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5WindowsDay regenerates the day-2 burst-window distribution.
func BenchmarkFig5WindowsDay(b *testing.B) {
	l := benchLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5Windows(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6AccessCDF regenerates the experiment access-pattern CDF.
func BenchmarkFig6AccessCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := Fig6Points(120, 0); len(pts) != 120 {
			b.Fatal("bad Fig. 6")
		}
	}
}

// BenchmarkFig7CCT regenerates the dedicated-cluster performance grid
// (12 full simulations per iteration).
func BenchmarkFig7CCT(b *testing.B) {
	var fifoGain float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig7(benchJobs, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var vanilla, lru float64
		for _, r := range rows {
			if r.Workload == "wl1" && r.Scheduler == "fifo" {
				switch r.Policy {
				case "vanilla":
					vanilla = r.Locality
				case "lru":
					lru = r.Locality
				}
			}
		}
		fifoGain = lru / vanilla
	}
	b.ReportMetric(fifoGain, "fifo-locality-gain")
}

// BenchmarkFig8Sensitivity regenerates both Fig. 8 sweeps.
func BenchmarkFig8Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig8P(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
		if _, err := Fig8Threshold(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Budget regenerates both Fig. 9 budget sweeps.
func BenchmarkFig9Budget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Fig9LRU(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
		if _, err := Fig9ET(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10EC2 regenerates the virtualized-cloud grid (6 full
// 100-node simulations per iteration).
func BenchmarkFig10EC2(b *testing.B) {
	var gmttNorm float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig10(benchJobs, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheduler == "fair" && r.Policy == "lru" {
				gmttNorm = r.GMTTNorm
			}
		}
	}
	b.ReportMetric(gmttNorm, "ec2-fair-gmtt-norm")
}

// BenchmarkFig11Uniformity regenerates the placement-uniformity sweep.
func BenchmarkFig11Uniformity(b *testing.B) {
	var cvAfter float64
	for i := 0; i < b.N; i++ {
		rows, err := Fig11(benchJobs, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.P == 0.3 {
				cvAfter = r.CVAfter
			}
		}
	}
	b.ReportMetric(cvAfter, "cv-after-p0.3")
}

// BenchmarkAblationDiskWrites regenerates the LRU-vs-ElephantTrap write
// comparison.
func BenchmarkAblationDiskWrites(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := AblationWrites(benchJobs, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		ratio = rows[0].WriteRatio()
	}
	b.ReportMetric(ratio, "et/lru-writes")
}

// BenchmarkAblationMapTime regenerates the map-completion-time ablation.
func BenchmarkAblationMapTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := AblationMapTime(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleRun measures one end-to-end 500-job CCT simulation with
// the headline DARE configuration — the unit of work every figure above
// repeats.
func BenchmarkSingleRun(b *testing.B) {
	wl := WL1(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Run(Options{
			Profile:   CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    DefaultPolicy(),
			Seed:      benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.Summary.Jobs != 500 {
			b.Fatal("incomplete run")
		}
	}
}

// --- Extension experiments (beyond the paper's tables/figures) ---

// BenchmarkAdaptation regenerates the §VI reactive-vs-epoch comparison.
func BenchmarkAdaptation(b *testing.B) {
	var recovery float64
	for i := 0; i < b.N; i++ {
		rows, err := Adaptation(benchJobs, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "elephanttrap" {
				recovery = r.RecoveryQ4OverQ2
			}
		}
	}
	b.ReportMetric(recovery, "dare-recovery")
}

// BenchmarkAvailability regenerates the §IV-B failure experiment.
func BenchmarkAvailability(b *testing.B) {
	var weighted float64
	for i := 0; i < b.N; i++ {
		rows, err := Availability(benchJobs, 4, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "lru" {
				weighted = r.WeightedAvailability
			}
		}
	}
	b.ReportMetric(weighted, "lru-weighted-avail")
}

// BenchmarkSpeculationStudy regenerates the backup-task composition study.
func BenchmarkSpeculationStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SpeculationStudy(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvictionStudy regenerates the §IV LRU/LFU/ElephantTrap profile.
func BenchmarkEvictionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := EvictionStudy(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditReplay regenerates the §III-through-§V replay.
func BenchmarkAuditReplay(b *testing.B) {
	var locality float64
	for i := 0; i < b.N; i++ {
		rows, err := AuditReplay(benchJobs, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "lru" {
				locality = r.Locality
			}
		}
	}
	b.ReportMetric(locality, "lru-locality")
}

// BenchmarkOutputBound regenerates the §V-C output-bound split.
func BenchmarkOutputBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := OutputBound(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUniformVsAdaptive regenerates the §III premise comparison.
func BenchmarkUniformVsAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := UniformVsAdaptive(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBalanceStudy regenerates the byte-vs-popularity balance study.
func BenchmarkBalanceStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BalanceStudy(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelaySweep regenerates the delay-scheduling patience sweep.
func BenchmarkDelaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DelaySweep(benchJobs, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}
