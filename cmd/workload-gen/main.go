// Command workload-gen synthesizes SWIM-style MapReduce job traces shaped
// like the Facebook workloads of §V-A and writes them as CSV, so they can
// be inspected, edited, or replayed with dare-sim via the library API.
//
// Examples:
//
//	workload-gen -workload wl1 > wl1.csv
//	workload-gen -workload wl2 -seed 7 -o wl2.csv
//	workload-gen -jobs 100 -files 40 -zipf 1.3 -o custom.csv
//	workload-gen -validate wl1.csv        # parse + integrity check
package main

import (
	"flag"
	"fmt"
	"os"

	"dare"
)

func main() {
	var (
		wlName   = flag.String("workload", "", "preset: wl1 | wl2 (empty = custom from the flags below)")
		jobs     = flag.Int("jobs", 500, "custom: number of jobs")
		files    = flag.Int("files", 120, "custom: file population size")
		zipfS    = flag.Float64("zipf", 0, "custom: popularity exponent (0 = default)")
		interarr = flag.Float64("interarrival", 0, "custom: mean interarrival seconds (0 = default)")
		large    = flag.Int("large-every", 0, "custom: insert a large job every N jobs (0 = none)")
		seed     = flag.Uint64("seed", 42, "random seed")
		out      = flag.String("o", "", "output file (empty = stdout)")
		validate = flag.String("validate", "", "parse and validate this workload CSV, then exit")
		stats    = flag.Bool("stats", false, "print the workload's descriptive summary to stderr")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		wl, err := dare.ReadWorkload(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK — workload %q, %d files, %d jobs, %d map tasks\n",
			*validate, wl.Name, len(wl.Files), len(wl.Jobs), wl.TotalMaps())
		if *stats {
			fmt.Print(wl.Summarize().String())
		}
		return
	}

	var wl *dare.Workload
	switch *wlName {
	case "wl1":
		wl = dare.WL1(*seed)
	case "wl2":
		wl = dare.WL2(*seed)
	case "":
		wl = dare.GenerateWorkload(dare.WorkloadConfig{
			Name:             "custom",
			NumJobs:          *jobs,
			NumFiles:         *files,
			ZipfS:            *zipfS,
			MeanInterarrival: *interarr,
			LargeEvery:       *large,
			Seed:             *seed,
		})
	default:
		fatal(fmt.Errorf("unknown workload preset %q (want wl1|wl2 or empty)", *wlName))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := wl.WriteCSV(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: %d files, %d jobs, %d map tasks\n", *out, len(wl.Files), len(wl.Jobs), wl.TotalMaps())
	}
	if *stats {
		fmt.Fprint(os.Stderr, wl.Summarize().String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "workload-gen:", err)
	os.Exit(1)
}
