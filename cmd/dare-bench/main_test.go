package main

import (
	"strings"
	"testing"
)

// TestExperimentRegistry verifies the CLI wiring: every registered
// experiment has a unique id, a title, and runs to completion at a tiny
// scale producing non-empty output.
func TestExperimentRegistry(t *testing.T) {
	exps := experiments()
	if len(exps) < 20 {
		t.Fatalf("registry shrank to %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	// Every paper artifact must be present.
	for _, id := range []string{
		"table1", "table2", "table3",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8a", "fig8b", "fig9a", "fig9b", "fig10", "fig11",
		"ablation-writes", "ablation-maptime",
		"adaptation", "availability", "speculation", "eviction",
		"audit-replay", "output-bound", "delay-sweep", "balance",
	} {
		if !seen[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry")
	}
	for _, e := range experiments() {
		e := e
		t.Run(e.id, func(t *testing.T) {
			out, err := e.run(25, 7)
			if err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			if strings.TrimSpace(out) == "" {
				t.Fatalf("%s produced empty output", e.id)
			}
		})
	}
}
