// Command dare-bench regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports (see EXPERIMENTS.md for the paper-vs-measured record).
//
// Examples:
//
//	dare-bench                      # everything, full 500-job scale
//	dare-bench -exp fig7            # one experiment
//	dare-bench -exp fig9 -jobs 200  # scaled down
//	dare-bench -parallel 8          # bound concurrent simulations
//	dare-bench -exp fig7 -json      # also write BENCH_fig7.json (perf record)
//	dare-bench -list                # available experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"dare"
)

type experiment struct {
	id    string
	title string
	run   func(jobs int, seed uint64) (string, error)
}

// Churn-experiment tuning knobs, read by the "churn" closure after
// flag.Parse has run. Zero falls back to DefaultChurnSpec's scaling.
var (
	churnMTTF     = flag.Float64("mttf", 0, "churn: per-node mean time to failure in sim seconds (0 = auto-scale)")
	churnMTTR     = flag.Float64("mttr", 0, "churn: mean time to repair in sim seconds (0 = auto-scale)")
	churnRackProb = flag.Float64("rack-fail-prob", 0, "churn: probability a failure takes a whole rack (0 = default)")
	churnCheck    = flag.Bool("check", false, "churn/chaos: run the invariant checker after every injected event")
	chaosEvents   = flag.Int("chaos-events", 0, "chaos: number of injections to draw (0 = default 16)")
	policyFiles   = flag.String("policy-file", "", "policy: comma-separated policy config files (JSON PolicySpec) added as extra sweep arms")
)

func experiments() []experiment {
	return []experiment{
		{"table1", "Table I: all-to-all ping RTTs (ms)", func(jobs int, seed uint64) (string, error) {
			return dare.TableI(5, seed, dare.CCT(), dare.EC2Small()), nil
		}},
		{"table2", "Table II: disk and network bandwidth (MB/s)", func(jobs int, seed uint64) (string, error) {
			out := dare.TableII(50, seed, dare.CCT(), dare.EC2())
			out += fmt.Sprintf("\nnet/disk bandwidth ratio: CCT %.3f, EC2 %.3f (§II-B: lower ratio => locality pays off more)\n",
				dare.BandwidthRatio(dare.CCT(), 200, seed), dare.BandwidthRatio(dare.EC2(), 200, seed))
			return out, nil
		}},
		{"table3", "Table III: configuration of the test clusters", func(jobs int, seed uint64) (string, error) {
			return dare.TableIII(dare.CCT(), dare.EC2()), nil
		}},
		{"fig1", "Fig. 1: hop-count distribution, 20-node EC2 cluster", func(jobs int, seed uint64) (string, error) {
			return dare.Fig1(dare.EC2Small(), seed), nil
		}},
		{"fig2", "Fig. 2: file popularity vs rank (plain and block-weighted)", func(jobs int, seed uint64) (string, error) {
			l := dare.GenerateAuditLog(dare.AuditLogConfig{Seed: seed})
			return dare.RenderRanks(dare.Fig2Ranks(l)), nil
		}},
		{"fig3", "Fig. 3: CDF of file age at access", func(jobs int, seed uint64) (string, error) {
			l := dare.GenerateAuditLog(dare.AuditLogConfig{Seed: seed})
			return dare.RenderAgeCDF(dare.Fig3AgeCDF(l)), nil
		}},
		{"fig4", "Fig. 4: 80%-coverage window sizes over the week", func(jobs int, seed uint64) (string, error) {
			l := dare.GenerateAuditLog(dare.AuditLogConfig{Seed: seed})
			res, err := dare.Fig4Windows(l)
			if err != nil {
				return "", err
			}
			return dare.RenderWindows(res), nil
		}},
		{"fig5", "Fig. 5: 80%-coverage window sizes within day 2", func(jobs int, seed uint64) (string, error) {
			l := dare.GenerateAuditLog(dare.AuditLogConfig{Seed: seed})
			res, err := dare.Fig5Windows(l)
			if err != nil {
				return "", err
			}
			return dare.RenderWindows(res), nil
		}},
		{"fig6", "Fig. 6: access pattern (CDF) used in the experiments", func(jobs int, seed uint64) (string, error) {
			var b strings.Builder
			fmt.Fprintf(&b, "%8s %12s\n", "rank", "cumulative")
			for _, pt := range dare.Fig6Points(120, 0) {
				if int(pt.X)%10 == 1 || pt.X <= 10 {
					fmt.Fprintf(&b, "%8.0f %12.3f\n", pt.X, pt.P)
				}
			}
			return b.String(), nil
		}},
		{"fig7", "Fig. 7: locality / GMTT / slowdown, 20-node CCT", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig7(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderPerf(rows), nil
		}},
		{"fig8a", "Fig. 8a: sensitivity to ElephantTrap probability p", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig8P(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderSens(rows), nil
		}},
		{"fig8b", "Fig. 8b: sensitivity to the aging threshold", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig8Threshold(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderSens(rows), nil
		}},
		{"fig9a", "Fig. 9a: sensitivity to the budget (greedy LRU)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig9LRU(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderSens(rows), nil
		}},
		{"fig9b", "Fig. 9b: sensitivity to the budget (ElephantTrap)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig9ET(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderSens(rows), nil
		}},
		{"fig10", "Fig. 10: locality / GMTT / slowdown, 100-node EC2", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig10(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderPerf(rows), nil
		}},
		{"fig11", "Fig. 11: uniformity of replica placement (cv of PI)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Fig11(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderFig11(rows), nil
		}},
		{"ablation-writes", "Ablation: ElephantTrap vs LRU disk writes (§I claim)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.AblationWrites(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderWrites(rows), nil
		}},
		{"ablation-maptime", "Ablation: map completion time reduction (§V-C claim)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.AblationMapTime(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderMapTime(rows), nil
		}},
		{"adaptation", "Adaptation: reactive DARE vs epoch-based Scarlett under a popularity shift (§VI claim)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Adaptation(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderAdaptation(rows), nil
		}},
		{"availability", "Availability: data readable after node failures, with and without DARE (§IV-B claim)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.Availability(jobs, 4, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderAvailability(rows), nil
		}},
		{"churn", "Churn: weighted availability, repair backlog, and slowdown under stochastic failures/recoveries (§IV-B claim)", func(jobs int, seed uint64) (string, error) {
			spec := dare.ChurnSpec{MTTF: *churnMTTF, MTTR: *churnMTTR, RackFailProb: *churnRackProb}
			rows, err := dare.ChurnStudy(jobs, seed, spec, *churnCheck)
			if err != nil {
				return "", err
			}
			return dare.RenderChurn(rows), nil
		}},
		{"chaos", "Chaos: turnaround, locality, and availability under mixed gray failures (crashes, slow nodes, corruption, flaps)", func(jobs int, seed uint64) (string, error) {
			spec := dare.ChaosSpec{Events: *chaosEvents}
			rows, err := dare.ChaosStudy(jobs, seed, spec, *churnCheck)
			if err != nil {
				return "", err
			}
			return dare.RenderChaos(rows), nil
		}},
		{"failover", "Failover: master crash/recovery cost, journal replay vs block-report warming (A17)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.FailoverStudy(jobs, seed, *churnCheck)
			if err != nil {
				return "", err
			}
			failoverRows = rows
			return dare.RenderFailover(rows), nil
		}},
		{"speculation", "Speculation: DARE composed with backup tasks on the noisy EC2 profile", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.SpeculationStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderSpeculation(rows), nil
		}},
		{"eviction", "Eviction profile: LRU vs LFU vs ElephantTrap at a binding budget (§IV design space)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.EvictionStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderEviction(rows), nil
		}},
		{"audit-replay", "Audit replay: the §III access process driven through the full cluster", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.AuditReplay(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderAuditReplay(rows), nil
		}},
		{"output-bound", "Output-bound split: replication cannot expedite output processing (§V-C)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.OutputBound(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderOutputBound(rows), nil
		}},
		{"delay-sweep", "Delay-scheduling patience sweep: DARE halves the waiting the fair scheduler needs (§VI)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.DelaySweep(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderDelaySweep(rows), nil
		}},
		{"balance", "Byte balance vs popularity balance: the HDFS balancer cannot do DARE's job (Fig. 11 context)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.BalanceStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderBalance(rows), nil
		}},
		{"uniform", "Uniform replication factors vs adaptive replication (§III premise)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.UniformVsAdaptive(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderUniform(rows), nil
		}},
		{"events", "Event spine: per-kind cluster bus event volume across the policy arms", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.EventStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			return dare.RenderEvents(rows), nil
		}},
		{"engine", "Engine core: calendar queue vs legacy heap, events/sec and allocs/event per arm", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.EngineStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			engineRows = rows
			return dare.RenderEngine(rows), nil
		}},
		{"scale", "Scale: coalesced cohort vs per-node heartbeats at 1k-20k nodes (A16)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.ScaleStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			scaleRows = rows
			return dare.RenderScale(rows), nil
		}},
		{"checkpoint", "Checkpoint: durable-run overhead, crash-recovery cost, and the replay-vs-state resume ladder (A19/A20)", func(jobs int, seed uint64) (string, error) {
			rows, err := dare.CheckpointStudy(jobs, seed)
			if err != nil {
				return "", err
			}
			checkpointRows = rows
			ladder, err := dare.ResumeLadder(seed)
			if err != nil {
				return "", err
			}
			resumeLadderRows = ladder
			return dare.RenderCheckpoint(rows) + "\n" + dare.RenderResumeLadder(ladder), nil
		}},
		{"policy", "Policy arms: every built-in policy plus -policy-file config arms on one bench (A18)", func(jobs int, seed uint64) (string, error) {
			var extra []*dare.PolicySet
			if *policyFiles != "" {
				for _, path := range strings.Split(*policyFiles, ",") {
					set, err := dare.LoadPolicy(strings.TrimSpace(path))
					if err != nil {
						return "", err
					}
					extra = append(extra, set)
				}
			}
			rows, err := dare.PolicySweep(jobs, seed, extra)
			if err != nil {
				return "", err
			}
			policyRows = rows
			return dare.RenderPolicySweep(rows), nil
		}},
	}
}

// engineRows holds the last engine experiment's per-arm measurements so
// -json can embed them in BENCH_engine.json.
var engineRows []dare.EngineRow

// scaleRows likewise holds the scale experiment's per-arm measurements
// for BENCH_scale.json.
var scaleRows []dare.ScaleRow

// failoverRows holds the failover experiment's per-arm measurements for
// BENCH_failover.json.
var failoverRows []dare.FailoverRow

// policyRows holds the policy sweep's per-arm measurements for
// BENCH_policy.json.
var policyRows []dare.PolicyArmRow

// checkpointRows holds the checkpoint study's per-arm measurements for
// BENCH_checkpoint.json; resumeLadderRows the resume-scaling ladder's.
var checkpointRows []dare.CheckpointRow
var resumeLadderRows []dare.ResumeLadderRow

func main() {
	var (
		expID    = flag.String("exp", "all", "experiment id, or 'all'")
		jobs     = flag.Int("jobs", 0, "jobs per run (0 = the paper's 500)")
		seed     = flag.Uint64("seed", 42, "random seed")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "write BENCH_<exp>.json perf records (wall-clock, events/sec)")
		jsonDir  = flag.String("json-dir", ".", "directory for -json output files")
		busStats = flag.Bool("events", false, "print per-kind cluster bus event counts after each experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile after the selected experiments to this file")
	)
	flag.Parse()
	dare.SetParallelism(*parallel)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dare-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dare-bench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dare-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dare-bench: -memprofile: %v\n", err)
			}
		}()
	}

	exps := experiments()
	if *list {
		for _, e := range exps {
			fmt.Printf("%-18s %s\n", e.id, e.title)
		}
		return
	}

	ids := map[string]experiment{}
	for _, e := range exps {
		ids[e.id] = e
	}
	// Aliases for whole figures.
	aliasTargets := map[string][]string{
		"fig8": {"fig8a", "fig8b"},
		"fig9": {"fig9a", "fig9b"},
	}

	var selected []experiment
	switch {
	case *expID == "all":
		selected = exps
	default:
		if targets, ok := aliasTargets[*expID]; ok {
			for _, id := range targets {
				selected = append(selected, ids[id])
			}
		} else if e, ok := ids[*expID]; ok {
			selected = []experiment{e}
		} else {
			var known []string
			for id := range ids {
				known = append(known, id)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "dare-bench: unknown experiment %q; known: %s\n", *expID, strings.Join(known, ", "))
			os.Exit(1)
		}
	}

	// One SIGINT/SIGTERM finishes the experiment in flight, writes its
	// -json record, and runs the deferred profile writers; a second one
	// exits immediately.
	var stop atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		stop.Store(true)
		fmt.Fprintln(os.Stderr, "dare-bench: interrupt received; finishing the current experiment (^C again to exit now)")
		<-sigCh
		os.Exit(1)
	}()

	for _, e := range selected {
		if stop.Load() {
			fmt.Fprintf(os.Stderr, "dare-bench: interrupted; skipping %s and later experiments\n", e.id)
			break
		}
		fmt.Printf("=== %s — %s ===\n", e.id, e.title)
		eventsBefore := dare.TotalEventsProcessed()
		busBefore := dare.TotalBusEvents()
		start := time.Now()
		out, err := e.run(*jobs, *seed)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dare-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(out)
		busDelta := dare.TotalBusEvents()
		for k, v := range busBefore {
			busDelta[k] -= v
		}
		if *busStats {
			fmt.Printf("bus events: %d (%s)\n\n", busDelta.Total(), busDelta)
		}
		if *jsonOut {
			path, err := writeBenchJSON(*jsonDir, e, *jobs, *seed, elapsed,
				dare.TotalEventsProcessed()-eventsBefore, busDelta)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dare-bench: %s: %v\n", e.id, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}

// benchRecord is the machine-readable perf record of one experiment run,
// used to track the wall-clock trajectory of the sweeps across changes.
type benchRecord struct {
	Exp         string  `json:"exp"`
	Title       string  `json:"title"`
	Jobs        int     `json:"jobs"` // 0 = the paper's 500
	Seed        uint64  `json:"seed"`
	Parallelism int     `json:"parallelism"`
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of simulation events processed by every run the
	// experiment performed; EventsPerSec is the resulting throughput.
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// BusEvents breaks down the cluster bus traffic the experiment published,
	// keyed by event kind (zero-count kinds are omitted).
	BusEvents map[string]uint64 `json:"bus_events,omitempty"`
	// Engine carries the per-arm queue measurements when the experiment is
	// the engine microbenchmark (heap-vs-calendar record).
	Engine []dare.EngineRow `json:"engine,omitempty"`
	// Scale carries the per-arm driver measurements when the experiment is
	// the scale benchmark (cohort-vs-per-node record).
	Scale []dare.ScaleRow `json:"scale,omitempty"`
	// Failover carries the per-arm recovery measurements when the
	// experiment is the control-plane failover study (journal-vs-report
	// record).
	Failover []dare.FailoverRow `json:"failover,omitempty"`
	// Policy carries the per-arm results when the experiment is the
	// policy-file sweep.
	Policy []dare.PolicyArmRow `json:"policy,omitempty"`
	// Checkpoint carries the per-arm results when the experiment is the
	// checkpoint-overhead study; ResumeLadder its replay-vs-state
	// resume-scaling rungs.
	Checkpoint   []dare.CheckpointRow   `json:"checkpoint,omitempty"`
	ResumeLadder []dare.ResumeLadderRow `json:"resume_ladder,omitempty"`
}

// writeBenchJSON records one experiment's perf numbers as BENCH_<exp>.json.
func writeBenchJSON(dir string, e experiment, jobs int, seed uint64, elapsed time.Duration, events uint64, bus dare.EventCounts) (string, error) {
	if jobs == 0 {
		jobs = 500 // the -jobs default: experiments run the paper's full 500-job traces
	}
	rec := benchRecord{
		Exp:         e.id,
		Title:       e.title,
		Jobs:        jobs,
		Seed:        seed,
		Parallelism: dare.Parallelism(),
		WallSeconds: elapsed.Seconds(),
		Events:      events,
		BusEvents:   bus.Map(),
	}
	if e.id == "engine" {
		rec.Engine = engineRows
	}
	if e.id == "scale" {
		rec.Scale = scaleRows
	}
	if e.id == "failover" {
		rec.Failover = failoverRows
	}
	if e.id == "policy" {
		rec.Policy = policyRows
	}
	if e.id == "checkpoint" {
		rec.Checkpoint = checkpointRows
		rec.ResumeLadder = resumeLadderRows
	}
	if s := elapsed.Seconds(); s > 0 {
		rec.EventsPerSec = float64(events) / s
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, e.id)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
