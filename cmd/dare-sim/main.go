// Command dare-sim runs one cluster simulation and prints its evaluation
// metrics: data locality, GMTT, slowdown, map-task time, replication
// activity, and placement uniformity.
//
// Examples:
//
//	dare-sim                                     # CCT, wl1, FIFO, ElephantTrap defaults
//	dare-sim -scheduler fair -policy lru
//	dare-sim -profile ec2 -workload wl2 -p 0.5 -budget 0.1 -jobs 200
//	dare-sim -policy vanilla -seed 7 -v          # baseline with per-job dump
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync/atomic"
	"syscall"

	"dare"
)

func main() {
	var (
		profileName = flag.String("profile", "cct", "cluster profile: cct | ec2 | ec2-20 (Table III)")
		profileFile = flag.String("profile-file", "", "load a custom cluster profile from a JSON spec file")
		nodes       = flag.Int("nodes", 0, "override the profile's cluster size (slaves); scale runs beyond the paper's testbeds")
		rackSize    = flag.Int("rack-size", 0, "override nodes per rack (dedicated profiles; 0 = keep the profile's)")
		wlName      = flag.String("workload", "wl1", "workload: wl1 (small jobs) | wl2 (small after large)")
		jobs        = flag.Int("jobs", 0, "truncate the workload to this many jobs (0 = full 500)")
		schedName   = flag.String("scheduler", "fifo", "scheduler: fifo | fair")
		fairSkips   = flag.Int("fair-skips", 0, "delay-scheduling patience in skipped opportunities (0 = default)")
		policyName  = flag.String("policy", "elephanttrap", "replication policy: "+dare.PolicyNameList())
		policyFile  = flag.String("policy-file", "", "load a policy config (JSON PolicySpec) instead of -policy/-p/-threshold/-budget; see configs/")
		p           = flag.Float64("p", 0.3, "ElephantTrap sampling probability")
		threshold   = flag.Int64("threshold", 1, "ElephantTrap aging threshold")
		budget      = flag.Float64("budget", 0.2, "replication budget (fraction of per-node primary bytes)")
		seed        = flag.Uint64("seed", 42, "random seed (runs are deterministic per seed)")
		verbose     = flag.Bool("v", false, "also dump per-job results")
		csvPath     = flag.String("csv", "", "write per-job results to this CSV file")
		speculative = flag.Bool("speculation", false, "enable Hadoop-style speculative execution")
		failNodes   = flag.Int("fail", 0, "kill this many nodes mid-run (failure injection)")
		failAtFrac  = flag.Float64("fail-at", 0.5, "failure time as a fraction of the arrival span")
		noRepair    = flag.Bool("no-repair", false, "disable HDFS-style re-replication after failures")
		churnOn     = flag.Bool("churn", false, "generate a seeded stochastic failure/recovery schedule")
		mttf        = flag.Float64("mttf", 0, "churn: per-node mean time to failure in sim seconds (0 = auto-scale)")
		mttr        = flag.Float64("mttr", 0, "churn: mean time to repair in sim seconds (0 = auto-scale)")
		rackProb    = flag.Float64("rack-fail-prob", 0, "churn: probability a failure takes a whole rack (0 = default)")
		chaosOn     = flag.Bool("chaos", false, "generate a seeded gray-failure scenario (crashes, slow nodes, corruption, flaps) and enable integrity-aware reads")
		chaosEvents = flag.Int("chaos-events", 0, "chaos: number of injections to draw (0 = default 16)")
		chaosMaster = flag.Float64("chaos-master", 0, "chaos: master-crash class weight (0 = chaos never takes the control plane down)")
		masterFail  = flag.Float64("master-fail-at", 0, "crash the master (name node + job tracker) at this fraction of the arrival span (0 = never)")
		masterDown  = flag.Float64("master-down", 0, "master outage length in sim seconds (0 = a sixteenth of the span)")
		masterMode  = flag.String("master-recovery", "journal", "master recovery mode: journal (checkpoint + edit-log replay) | report (cold start warmed by per-node block reports)")
		masterCkpt  = flag.Int("master-checkpoint", 0, "checkpoint the metadata journal every N records (0 = only at recovery)")
		check       = flag.Bool("check", false, "run the metadata invariant checker after every failure/recovery event")
		timeline    = flag.Int("timeline", 0, "print mean locality over N consecutive job buckets (convergence view)")
		parallel    = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		seeds       = flag.Int("seeds", 1, "replicate the run over N consecutive seeds and print a per-seed table")
		eventsPath  = flag.String("events", "", "write the run's full cluster event trace to this JSONL file")
		ckptPath    = flag.String("checkpoint", "", "write durable checkpoints of the full run state to this file (atomically rotated; .prev keeps the previous generation)")
		ckptEvery   = flag.Uint64("checkpoint-every", 0, "checkpoint cadence in processed simulation events (0 = 200000)")
		resumePath  = flag.String("resume", "", "resume a killed run from this checkpoint file (add -stream for service-mode checkpoints); sinks (-events, -stream-report) must match the original run's")
		resumeMode  = flag.String("resume-mode", "state", "resume strategy: state (O(state) direct restore; appends the post-cut suffix to the original sinks) | replay (O(history) oracle; rewrites the sinks from genesis)")
		crashCkpts  = flag.Int("crash-after-checkpoints", 0, "test hook: hard-exit (as if SIGKILLed) right after the Nth durable checkpoint")
		streamOn    = flag.Bool("stream", false, "service mode: open-ended job stream synthesized window by window (diurnal load), per-window JSONL metrics, run until -stream-horizon or SIGINT")
		streamWin   = flag.Float64("stream-window", 60, "stream: generation/report window in simulated seconds")
		streamHor   = flag.Float64("stream-horizon", 0, "stream: stop generating at this simulated time and drain (0 = run until interrupted)")
		streamRep   = flag.String("stream-report", "-", "stream: write per-window JSONL metrics here (- = stdout, empty = disabled)")
		streamAmp   = flag.Float64("stream-diurnal", 0.5, "stream: diurnal arrival-rate amplitude in [0,1) (0 = stationary)")
		streamPer   = flag.Float64("stream-period", 0, "stream: diurnal period in simulated seconds (0 = 24h)")
	)
	flag.Parse()
	dare.SetParallelism(*parallel)

	profile, err := profileByName(*profileName)
	if err != nil {
		fatal(err)
	}
	if *profileFile != "" {
		f, err := os.Open(*profileFile)
		if err != nil {
			fatal(err)
		}
		profile, err = dare.LoadProfile(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if *nodes > 0 {
		profile.Slaves = *nodes
		profile.Name = fmt.Sprintf("%s-%d", profile.Name, *nodes)
	}
	if *rackSize > 0 {
		profile.RackSize = *rackSize
	}
	kind, err := dare.ParsePolicyKind(*policyName)
	if err != nil {
		fatal(err)
	}
	profile.SpeculativeExecution = *speculative
	policy := dare.PolicyConfig{Kind: kind, P: *p, Threshold: *threshold, BudgetFraction: *budget}
	if kind == dare.Scarlett {
		policy = dare.PolicyFor(dare.Scarlett)
		policy.BudgetFraction = *budget
	}
	var policySet *dare.PolicySet
	if *policyFile != "" {
		policySet, err = dare.LoadPolicy(*policyFile)
		if err != nil {
			fatal(err)
		}
	}

	if *seeds > 1 && (*ckptPath != "" || *resumePath != "" || *streamOn || *crashCkpts > 0) {
		fatal(fmt.Errorf("-checkpoint/-resume/-stream drive one run; they cannot be combined with -seeds %d", *seeds))
	}

	// One SIGINT/SIGTERM requests a clean stop at the next event boundary —
	// the event log is flushed and, when -checkpoint is armed, a final
	// checkpoint is written first. A second signal exits immediately.
	var interrupt atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		interrupt.Store(true)
		fmt.Fprintln(os.Stderr, "dare-sim: interrupt received; stopping at the next event boundary (^C again to exit now)")
		<-sigCh
		os.Exit(1)
	}()

	ck := dare.CheckpointSpec{Path: *ckptPath, Every: *ckptEvery, Interrupt: &interrupt}
	if *crashCkpts > 0 {
		if *ckptPath == "" && *resumePath == "" {
			fatal(fmt.Errorf("-crash-after-checkpoints needs -checkpoint or -resume"))
		}
		n := *crashCkpts
		ck.AfterCheckpoint = func(done int) error {
			if done >= n {
				// Die without flushing anything: the whole point is to
				// leave exactly what a SIGKILL at this boundary would.
				fmt.Fprintf(os.Stderr, "dare-sim: simulated crash after checkpoint %d\n", done)
				os.Exit(137)
			}
			return nil
		}
	}

	if *resumePath != "" {
		mode, err := dare.ParseResumeMode(*resumeMode)
		if err != nil {
			fatal(err)
		}
		runResumed(*resumePath, *streamOn, *eventsPath, *streamRep, ck, mode)
		return
	}
	if *streamOn {
		scfg := dare.StreamRunSpec{
			DiurnalAmplitude: *streamAmp,
			DiurnalPeriod:    *streamPer,
			Window:           *streamWin,
			Horizon:          *streamHor,
		}
		switch *wlName {
		case "wl1":
			scfg.Gen = dare.WorkloadConfig{Name: "wl1", Seed: *seed}
		case "wl2":
			scfg.Gen = dare.WorkloadConfig{Name: "wl2", Seed: *seed, LargeEvery: 10, MeanInterarrival: 0.6}
		default:
			fatal(fmt.Errorf("unknown workload %q (want wl1|wl2)", *wlName))
		}
		opts := dare.Options{
			Profile:         profile,
			Scheduler:       *schedName,
			FairSkips:       *fairSkips,
			Policy:          policy,
			PolicySet:       policySet,
			Seed:            *seed,
			CheckInvariants: *check,
		}
		runStreaming(opts, scfg, *eventsPath, *streamRep, ck)
		return
	}

	// optionsFor assembles one run's options for a seed; the workload and
	// the failure schedule (whose time scale follows the arrival span) are
	// regenerated per seed.
	optionsFor := func(s uint64) (*dare.Workload, dare.Options, error) {
		var wl *dare.Workload
		switch *wlName {
		case "wl1":
			wl = dare.WL1(s)
		case "wl2":
			wl = dare.WL2(s)
		default:
			return nil, dare.Options{}, fmt.Errorf("unknown workload %q (want wl1|wl2)", *wlName)
		}
		if *jobs > 0 && *jobs < len(wl.Jobs) {
			wl.Jobs = wl.Jobs[:*jobs]
		}
		var failures []dare.NodeFailure
		if *failNodes > 0 {
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			for i := 0; i < *failNodes && i < profile.Slaves; i++ {
				failures = append(failures, dare.NodeFailure{Node: i, At: span**failAtFrac + 0.01*float64(i)})
			}
		}
		var churnSpec *dare.ChurnSpec
		if *churnOn {
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			spec := dare.DefaultChurnSpec(span, profile.Slaves)
			if *mttf > 0 {
				spec.MTTF = *mttf
			}
			if *mttr > 0 {
				spec.MTTR = *mttr
			}
			if *rackProb > 0 {
				spec.RackFailProb = *rackProb
			}
			churnSpec = &spec
		}
		var chaosSpec *dare.ChaosSpec
		if *chaosOn {
			chaosSpec = &dare.ChaosSpec{Events: *chaosEvents, MasterWeight: *chaosMaster, MasterRecovery: *masterMode}
		}
		var masterOutages []dare.MasterOutage
		if *masterFail > 0 {
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			down := *masterDown
			if down <= 0 {
				down = span / 16
			}
			masterOutages = []dare.MasterOutage{{At: span * *masterFail, Down: down, Mode: *masterMode}}
		}
		return wl, dare.Options{
			Profile:               profile,
			Workload:              wl,
			Scheduler:             *schedName,
			FairSkips:             *fairSkips,
			Policy:                policy,
			PolicySet:             policySet,
			Seed:                  s,
			Failures:              failures,
			Churn:                 churnSpec,
			Chaos:                 chaosSpec,
			MasterOutages:         masterOutages,
			MasterCheckpointEvery: *masterCkpt,
			DisableRepair:         *noRepair,
			CheckInvariants:       *check,
		}, nil
	}

	if *seeds > 1 {
		if *eventsPath != "" {
			fatal(fmt.Errorf("-events records one run's trace; it cannot be combined with -seeds %d", *seeds))
		}
		if err := multiSeed(*seed, *seeds, optionsFor); err != nil {
			fatal(err)
		}
		return
	}

	wl, opts, err := optionsFor(*seed)
	if err != nil {
		fatal(err)
	}
	var eventsFile *os.File
	if *eventsPath != "" {
		eventsFile, err = os.Create(*eventsPath)
		if err != nil {
			fatal(err)
		}
		opts.EventLog = eventsFile
	}
	out, err := dare.RunCheckpointed(opts, ck)
	if errors.Is(err, dare.ErrInterrupted) {
		exitInterrupted(ck.Path, eventsFile, nil)
	}
	if err != nil {
		fatal(err)
	}

	s := out.Summary
	fmt.Printf("cluster       %s (%d slaves, %d map slots)\n", profile.Name, profile.Slaves, profile.Slaves*profile.MapSlotsPerNode)
	fmt.Printf("workload      %s (%d jobs, %d map tasks)\n", wl.Name, s.Jobs, wl.TotalMaps())
	fmt.Printf("scheduler     %s\n", out.SchedulerName)
	pp, pthr, pbud := *p, *threshold, *budget
	if policySet != nil {
		// A -policy-file arm reports the file's scalars, not the unused
		// flag values; built-in files carry the flag defaults, so the
		// line stays byte-identical to the equivalent -policy run.
		pp, pthr, pbud = policySet.P, policySet.Threshold, policySet.Budget
	}
	fmt.Printf("policy        %s (p=%.2f threshold=%d budget=%.2f)\n", out.PolicyName, pp, pthr, pbud)
	fmt.Println()
	printMetrics(out, *chaosOn, *speculative, *timeline)

	if *verbose {
		fmt.Println()
		fmt.Printf("%6s %10s %10s %9s %9s %6s\n", "job", "arrival", "finish", "locality", "slowdown", "maps")
		for _, r := range out.Results {
			fmt.Printf("%6d %10.2f %10.2f %9.3f %9.2f %6d\n", r.ID, r.Arrival, r.Finish, r.Locality(), r.Slowdown(), r.NumMaps)
		}
	}
	if *csvPath != "" {
		if err := writeResultsCSV(*csvPath, out); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote per-job results to %s\n", *csvPath)
	}
	if eventsFile != nil {
		if err := eventsFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote event trace to %s (%d events: %s)\n",
			*eventsPath, out.EventCounts.Total(), out.EventCounts)
	}
}

// multiSeed replicates the configured run over n consecutive seeds on the
// worker pool and prints one summary row per seed plus the means — the
// quick way to see how robust a configuration's metrics are to the seed.
func multiSeed(base uint64, n int, optionsFor func(uint64) (*dare.Workload, dare.Options, error)) error {
	opts := make([]dare.Options, n)
	for i := 0; i < n; i++ {
		_, o, err := optionsFor(base + uint64(i))
		if err != nil {
			return err
		}
		opts[i] = o
	}
	outs, err := dare.RunAll(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %9s %9s %9s %10s %9s\n", "seed", "locality", "gmtt(s)", "slowdown", "makespan", "replicas")
	var locality, gmtt, slowdown, makespan float64
	for i, out := range outs {
		s := out.Summary
		fmt.Printf("%8d %9.3f %9.2f %9.2f %10.1f %9d\n",
			base+uint64(i), s.JobLocality, s.GMTT, s.MeanSlowdown, s.Makespan, s.ReplicasCreated)
		locality += s.JobLocality
		gmtt += s.GMTT
		slowdown += s.MeanSlowdown
		makespan += s.Makespan
	}
	f := float64(n)
	fmt.Printf("%8s %9.3f %9.2f %9.2f %10.1f\n", "mean", locality/f, gmtt/f, slowdown/f, makespan/f)
	return nil
}

// printMetrics renders the evaluation block shared by batch, resumed, and
// streaming runs.
func printMetrics(out *dare.Output, chaos, speculative bool, timeline int) {
	s := out.Summary
	fmt.Printf("job locality       %.3f   (node-local fraction, mean per job)\n", s.JobLocality)
	fmt.Printf("task locality      %.3f   (rack %.3f, remote %.3f)\n", s.TaskLocality, s.RackFraction, s.RemoteFraction)
	fmt.Printf("GMTT               %.2f s\n", s.GMTT)
	fmt.Printf("mean slowdown      %.2f\n", s.MeanSlowdown)
	fmt.Printf("mean map time      %.2f s\n", s.MeanMapTime)
	fmt.Printf("makespan           %.1f s\n", s.Makespan)
	fmt.Printf("replicas created   %d (%.2f per job), evictions %d, disk writes %d\n",
		s.ReplicasCreated, s.BlocksPerJob, s.Evictions, s.DiskWrites)
	fmt.Printf("network (input)    %.1f GB moved by non-local reads\n", float64(s.NetworkBytes)/(1<<30))
	fmt.Printf("placement cv       %.3f -> %.3f (popularity-index uniformity)\n", out.CVBefore, out.CVAfter)
	tts := make([]float64, 0, len(out.Results))
	for _, r := range out.Results {
		tts = append(tts, r.Turnaround)
	}
	fmt.Printf("turnaround p50/p90/p99   %.2f / %.2f / %.2f s\n",
		percentile(tts, 0.50), percentile(tts, 0.90), percentile(tts, 0.99))
	if speculative {
		fmt.Printf("speculative backups %d\n", out.SpeculativeLaunches)
	}
	if timeline > 0 {
		fmt.Printf("locality timeline  ")
		for _, v := range dare.LocalityTimeline(out.Results, timeline) {
			fmt.Printf("%.2f ", v)
		}
		fmt.Println()
	}
	if chaos {
		g := out.Gray
		fmt.Printf("chaos: %d crashes, %d flaps, %d degradations, %d/%d corruptions detected, %d read retries, %d hedged reads (%d won), %d stale replicas restored\n",
			len(out.FailureEvents)-g.Flaps, g.Flaps, g.Degrades,
			g.CorruptionsDetected, g.CorruptionsInjected, g.ReadRetries,
			g.HedgedReads, g.HedgeWins, g.ReplicasRestored)
	}
	if m := out.Master; m.Outages > 0 {
		fmt.Printf("master: %d outages, %.1f s unavailable; %d heartbeats + %d reads deferred, %d maps + %d reduces killed and requeued\n",
			m.Outages, m.Downtime, m.DeferredHeartbeats, m.DeferredReads, m.KilledMaps, m.KilledReduces)
		fmt.Printf("master journal: %d checkpoints, %d records pending", m.JournalCheckpoints, m.JournalRecords)
		if m.BlockReports > 0 {
			fmt.Printf("; report-mode warmup %.1f s over %d block reports", m.WarmupTime, m.BlockReports)
		}
		fmt.Println()
		for _, ev := range out.MasterEvents {
			switch ev.Kind {
			case "crash":
				fmt.Printf("master  t=%.1fs crash (weighted availability was %.4f)\n", ev.Time, ev.WeightedAvailability)
			case "recover":
				fmt.Printf("master  t=%.1fs recover: weighted availability %.4f\n", ev.Time, ev.WeightedAvailability)
			}
		}
	}
	for _, ev := range out.FailureEvents {
		tag := ""
		if ev.Rack >= 0 {
			tag = fmt.Sprintf(" (rack %d switch)", ev.Rack)
		}
		if ev.Flap {
			tag = " (false-dead flap)"
		}
		fmt.Printf("failure t=%.1fs node %d%s: %d maps + %d reduces killed, %d replicas lost, availability %d/%d blocks (weighted %.4f), backlog %d\n",
			ev.Time, ev.Node, tag, ev.KilledMaps, ev.KilledReduces,
			len(ev.Report.LostPrimaries)+len(ev.Report.LostDynamic),
			ev.AvailableBlocks, ev.TotalBlocks, ev.WeightedAvailability, ev.Backlog)
	}
	for _, ev := range out.RecoveryEvents {
		how := "empty re-registration"
		if ev.Restored > 0 {
			how = fmt.Sprintf("re-registered with %d stale replicas", ev.Restored)
		}
		fmt.Printf("rejoin  t=%.1fs node %d: %s, backlog %d, weighted availability %.4f\n",
			ev.Time, ev.Node, how, ev.Backlog, ev.WeightedAvailability)
	}
	if len(out.FailureEvents) > 0 {
		fmt.Printf("repairs completed   %d block re-replications\n", out.RepairsDone)
	}
	if s.FailedJobs > 0 {
		fmt.Printf("failed jobs         %d (task attempts exhausted)\n", s.FailedJobs)
	}
}

// openSinks creates the event-trace and stream-report files the durable
// modes write through. An empty events path disables the trace; the
// report path accepts "-" for stdout and "" for disabled.
func openSinks(eventsPath, reportPath string) (eventsFile, reportFile *os.File, eventLog, report io.Writer) {
	if eventsPath != "" {
		f, err := os.Create(eventsPath)
		if err != nil {
			fatal(err)
		}
		eventsFile, eventLog = f, f
	}
	switch reportPath {
	case "":
	case "-":
		report = os.Stdout
	default:
		f, err := os.Create(reportPath)
		if err != nil {
			fatal(err)
		}
		reportFile, report = f, f
	}
	return
}

// closeSinks flushes and closes whichever durable-mode sinks are open.
func closeSinks(files ...*os.File) {
	for _, f := range files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// exitInterrupted finishes a run stopped by SIGINT/SIGTERM: the event log
// is already flushed to the sinks (and the final checkpoint written when
// armed), so close everything and report where to pick the run back up.
func exitInterrupted(ckPath string, files ...*os.File) {
	closeSinks(files...)
	if ckPath != "" {
		fmt.Printf("interrupted: final checkpoint written to %s; continue with -resume %s\n", ckPath, ckPath)
	} else {
		fmt.Println("interrupted: stopped cleanly at an event boundary (no -checkpoint armed, nothing durable written)")
	}
	os.Exit(130)
}

// runStreaming executes service mode: an open-ended synthesized job
// stream with per-window JSONL metrics, stopped by -stream-horizon or a
// signal.
func runStreaming(opts dare.Options, scfg dare.StreamRunSpec, eventsPath, reportPath string, ck dare.CheckpointSpec) {
	if scfg.Horizon <= 0 && ck.Path == "" {
		fmt.Fprintln(os.Stderr, "dare-sim: stream mode without -stream-horizon runs until ^C; arm -checkpoint to make the run durable")
	}
	eventsFile, reportFile, eventLog, report := openSinks(eventsPath, reportPath)
	opts.EventLog = eventLog
	out, err := dare.RunStream(opts, scfg, report, ck)
	if errors.Is(err, dare.ErrInterrupted) {
		exitInterrupted(ck.Path, eventsFile, reportFile)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream        %s gen, window %.0fs, horizon %.0fs, diurnal amplitude %.2f\n",
		scfg.Gen.Name, scfg.Window, scfg.Horizon, scfg.DiurnalAmplitude)
	fmt.Printf("scheduler     %s\n", out.SchedulerName)
	fmt.Printf("policy        %s\n", out.PolicyName)
	fmt.Println()
	printMetrics(out, false, false, 0)
	closeSinks(eventsFile, reportFile)
	if eventsFile != nil {
		fmt.Printf("\nwrote event trace to %s (%d events: %s)\n", eventsPath, out.EventCounts.Total(), out.EventCounts)
	}
}

// openSuffixSink re-opens a dead process's sink truncated to the byte
// position the checkpoint recorded at the cut, positioned to append the
// post-cut suffix. ok=false means the existing file is shorter than the
// recorded prefix (lost or rewritten) — the caller downgrades to a replay
// resume, which regenerates the whole stream from genesis.
func openSuffixSink(path string, prefix int64) (*os.File, bool) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	if st.Size() < prefix {
		f.Close()
		return nil, false
	}
	if err := f.Truncate(prefix); err != nil {
		fatal(err)
	}
	if _, err := f.Seek(prefix, io.SeekStart); err != nil {
		fatal(err)
	}
	return f, true
}

// runResumed continues a killed run from its checkpoint file. In state
// mode the original sinks are truncated to the cut and the post-cut
// suffix appended (O(state) restore); in replay mode — or when the
// checkpoint carries no state image or a sink's prefix went missing — the
// sinks are rewritten from genesis, byte-identically to an uninterrupted
// run.
func runResumed(path string, stream bool, eventsPath, reportPath string, ck dare.CheckpointSpec, mode dare.ResumeMode) {
	if ck.Path == "" {
		ck.Path = path // keep checkpointing where we resumed from
	}
	info, err := dare.InspectCheckpoint(path)
	if err != nil {
		fatal(err)
	}
	useState := mode == dare.ResumeState && info.StateResumable
	var eventsFile, reportFile *os.File
	var eventLog, report io.Writer
	if useState {
		if eventsPath != "" {
			f, ok := openSuffixSink(eventsPath, info.EventBytes)
			if !ok {
				fmt.Fprintf(os.Stderr, "dare-sim: %s is shorter than the checkpoint's %d-byte prefix; falling back to a replay resume\n", eventsPath, info.EventBytes)
				useState = false
			} else {
				eventsFile, eventLog = f, f
			}
		}
		if useState && stream && reportPath != "" && reportPath != "-" {
			f, ok := openSuffixSink(reportPath, info.ReportBytes)
			if !ok {
				fmt.Fprintf(os.Stderr, "dare-sim: %s is shorter than the checkpoint's %d-byte prefix; falling back to a replay resume\n", reportPath, info.ReportBytes)
				useState = false
				closeSinks(eventsFile)
				eventsFile, eventLog = nil, nil
			} else {
				reportFile, report = f, f
			}
		}
		if useState && stream && reportPath == "-" {
			report = os.Stdout
		}
	}
	if !useState {
		mode = dare.ResumeReplay
		if stream {
			eventsFile, reportFile, eventLog, report = openSinks(eventsPath, reportPath)
		} else {
			eventsFile, _, eventLog, _ = openSinks(eventsPath, "")
		}
	}
	var out *dare.Output
	if stream {
		out, err = dare.ResumeStreamWithMode(path, eventLog, report, ck, mode)
	} else {
		out, err = dare.ResumeWithMode(path, eventLog, ck, mode)
	}
	if errors.Is(err, dare.ErrInterrupted) {
		exitInterrupted(ck.Path, eventsFile, reportFile)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("resumed       %s (%s mode)\n", path, mode)
	fmt.Printf("scheduler     %s\n", out.SchedulerName)
	fmt.Printf("policy        %s\n", out.PolicyName)
	fmt.Println()
	printMetrics(out, false, false, 0)
	closeSinks(eventsFile, reportFile)
	if eventsFile != nil {
		fmt.Printf("\nwrote event trace to %s (%d events: %s)\n", eventsPath, out.EventCounts.Total(), out.EventCounts)
	}
}

// writeResultsCSV dumps one row per job for external plotting.
func writeResultsCSV(path string, out *dare.Output) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"job", "arrival", "finish", "turnaround", "dedicated", "slowdown", "maps", "local", "rack", "remote", "locality", "remote_bytes"}); err != nil {
		f.Close()
		return err
	}
	for _, r := range out.Results {
		rec := []string{
			strconv.Itoa(r.ID),
			strconv.FormatFloat(r.Arrival, 'f', 3, 64),
			strconv.FormatFloat(r.Finish, 'f', 3, 64),
			strconv.FormatFloat(r.Turnaround, 'f', 3, 64),
			strconv.FormatFloat(r.Dedicated, 'f', 3, 64),
			strconv.FormatFloat(r.Slowdown(), 'f', 4, 64),
			strconv.Itoa(r.NumMaps),
			strconv.Itoa(r.Local),
			strconv.Itoa(r.Rack),
			strconv.Itoa(r.Remote),
			strconv.FormatFloat(r.Locality(), 'f', 4, 64),
			strconv.FormatInt(r.RemoteBytes, 10),
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// percentile computes the q-quantile without mutating xs.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func profileByName(name string) (*dare.Profile, error) {
	switch name {
	case "cct":
		return dare.CCT(), nil
	case "ec2":
		return dare.EC2(), nil
	case "ec2-20":
		return dare.EC2Small(), nil
	}
	return nil, fmt.Errorf("unknown profile %q (want cct|ec2|ec2-20)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dare-sim:", err)
	os.Exit(1)
}
