// Command trace-analyze characterizes a file-access trace the way §III of
// the paper characterizes the Yahoo! production logs, producing the series
// behind Figs. 2–5: popularity-vs-rank, age-at-access CDF, and the
// burst-window distributions (weekly and in-day).
//
// With no -in flag it generates a synthetic Yahoo!-shaped log; pass
// -in <file.csv> (format: see internal/trace WriteCSV) to analyze real
// audit data converted to the same shape, and -gen-out to save the
// synthetic log for inspection.
//
// A second mode, -events <file.jsonl>, summarizes a cluster event trace
// captured with dare-sim -events: per-kind volume, the map-launch locality
// split, and replica churn over the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"dare"
)

func main() {
	var (
		in       = flag.String("in", "", "input access-log CSV (empty = generate synthetic)")
		genOut   = flag.String("gen-out", "", "write the generated synthetic log to this CSV file")
		files    = flag.Int("files", 1000, "synthetic: file population size")
		accesses = flag.Int("accesses", 200000, "synthetic: number of access events")
		zipfS    = flag.Float64("zipf", 1.1, "synthetic: popularity exponent")
		sysFiles = flag.Bool("system-files", false, "synthetic: include job.jar/job.xml-style system files (M45-like age CDF, §III)")
		seed     = flag.Uint64("seed", 42, "synthetic: random seed")
		events   = flag.String("events", "", "summarize a cluster event trace (JSONL from dare-sim -events) instead of an access log")
	)
	flag.Parse()

	if *events != "" {
		analyzeEvents(*events)
		return
	}

	var log *dare.AuditLog
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		l, err := dare.ReadAuditLog(f)
		if err != nil {
			fatal(err)
		}
		log = l
		fmt.Printf("analyzing %s: %d files, %d accesses, horizon %.0f h\n\n", *in, len(log.Files), len(log.Accesses), log.Horizon/3600)
	} else {
		log = dare.GenerateAuditLog(dare.AuditLogConfig{
			Files:              *files,
			Accesses:           *accesses,
			ZipfS:              *zipfS,
			IncludeSystemFiles: *sysFiles,
			Seed:               *seed,
		})
		fmt.Printf("synthetic Yahoo!-shaped log: %d files, %d accesses, one week\n\n", len(log.Files), len(log.Accesses))
		if *genOut != "" {
			f, err := os.Create(*genOut)
			if err != nil {
				fatal(err)
			}
			if err := log.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", *genOut)
		}
	}

	fmt.Println("--- Fig. 2: file popularity (accesses per file by rank) ---")
	fmt.Println(dare.RenderRanks(dare.Fig2Ranks(log)))

	fmt.Println("--- Fig. 3: CDF of file age at time of access ---")
	fmt.Println(dare.RenderAgeCDF(dare.Fig3AgeCDF(log)))

	fmt.Println("--- Fig. 4: smallest windows holding 80% of accesses (week) ---")
	w4, err := dare.Fig4Windows(log)
	if err != nil {
		fatal(err)
	}
	fmt.Println(dare.RenderWindows(w4))

	fmt.Println("--- Fig. 5: smallest windows holding 80% of accesses (day 2) ---")
	w5, err := dare.Fig5Windows(log)
	if err != nil {
		fatal(err)
	}
	fmt.Println(dare.RenderWindows(w5))

	fmt.Println("--- Diurnal access profile (hour of day) ---")
	fmt.Println(dare.RenderHourlyProfile(dare.HourlyProfile(log)))
}

func analyzeEvents(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	evs, skipped, err := dare.ReadEventLogSkipped(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("--- cluster event trace: %s ---\n", path)
	if skipped > 0 {
		fmt.Printf("(skipped %d lines with event kinds this build does not know)\n", skipped)
	}
	fmt.Println(dare.RenderTraceStats(dare.SummarizeEvents(evs)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trace-analyze:", err)
	os.Exit(1)
}
