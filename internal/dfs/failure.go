package dfs

import (
	"fmt"
	"sort"

	"dare/internal/event"
	"dare/internal/policy"
	"dare/internal/topology"
)

// Failure handling: the availability half of the paper's §IV-B remark that
// "replicas created by DARE are first-order replicas and as such they also
// contribute to increasing availability of the data in the presence of
// failures". When a data node dies, every replica it hosted disappears;
// blocks whose last replica died become unavailable until (if ever)
// repaired from elsewhere. The name node then re-replicates
// under-replicated blocks onto surviving nodes, exactly as HDFS does.

// FailureReport summarizes the metadata impact of one node failure.
type FailureReport struct {
	Node topology.NodeID
	// LostPrimaries and LostDynamic list the replicas that disappeared.
	LostPrimaries []BlockID
	LostDynamic   []BlockID
	// UnavailableBlocks lists blocks left with zero live replicas.
	UnavailableBlocks []BlockID
}

// FailNode removes every replica hosted on node and marks the node down:
// future placement (primary or dynamic) avoids it. Failing an
// already-failed node is a no-op returning an empty report.
func (nn *NameNode) FailNode(node topology.NodeID) FailureReport {
	rep := FailureReport{Node: node}
	if int(node) < 0 || int(node) >= nn.topo.N() || nn.failed[node] {
		return rep
	}
	if nn.down {
		// Defensive: with the master down, nobody is there to declare the
		// node dead — the tracker defers the declaration until recovery.
		return rep
	}
	if nn.failed == nil {
		nn.failed = make(map[topology.NodeID]bool)
	}
	nn.failed[node] = true
	nn.churned = true
	nn.journalAdd(journalRecord{op: opNodeFail, node: node})
	if nn.warming[node] {
		// The node died before delivering its post-recovery block report;
		// stop waiting for it and drop the crash-time capture of its disk.
		delete(nn.warming, node)
		if int(node) < len(nn.diskTruth) {
			nn.diskTruth[node] = nil
		}
	}

	blocks := make([]BlockID, 0, len(nn.perNode[node]))
	for b := range nn.perNode[node] {
		blocks = append(blocks, b)
	}
	sortBlockIDs(blocks)
	for _, b := range blocks {
		sh := nn.shard(b)
		kind := nn.perNode[node][b]
		size := sh.blocks[b].Size
		nn.clearCorrupt(b, node)
		delete(sh.locations[b], node)
		delete(nn.perNode[node], b)
		if kind == Primary {
			nn.primaryBytes[node] -= size
			rep.LostPrimaries = append(rep.LostPrimaries, b)
		} else {
			nn.dynamicBytes[node] -= size
			rep.LostDynamic = append(rep.LostDynamic, b)
		}
		if len(sh.locations[b]) == 0 {
			rep.UnavailableBlocks = append(rep.UnavailableBlocks, b)
		}
		nn.journalAdd(journalRecord{op: opRemoveReplica, block: b, node: node})
		nn.publishReplica(event.ReplicaRemove, b, node, kind == Dynamic)
	}
	if nn.bus != nil {
		ev := event.New(event.NodeFail)
		ev.Node = int32(node)
		ev.Rack = int32(nn.topo.Rack(node))
		ev.Aux = int64(len(rep.LostPrimaries) + len(rep.LostDynamic))
		nn.bus.Publish(ev)
	}
	if nn.warming != nil && len(nn.warming) == 0 {
		nn.finishWarming()
	} else {
		nn.journalMaybeCheckpoint()
	}
	return rep
}

// RecoverNode rejoins a previously failed node. Recovery is HDFS-style
// re-registration: the node comes back *empty* — whatever replicas it held
// before the failure are treated as stale and discarded via the block
// report (FailNode already scrubbed the metadata), so blocks that lost
// their last replica stay lost. The node immediately becomes eligible for
// placement, repair, and dynamic replication again.
//
// RecoverNode is idempotent in effect: recovering a node that never
// failed or has already recovered mutates nothing and publishes nothing —
// it only reports the mistake as an error, so callers retrying a rejoin
// can never double-register a node (or double-start anything keyed on the
// NodeRecover event). It is ReRegisterNode with an empty block report.
func (nn *NameNode) RecoverNode(node topology.NodeID) error {
	_, err := nn.ReRegisterNode(node, nil)
	return err
}

// NodeFailed reports whether node has been failed.
func (nn *NameNode) NodeFailed(node topology.NodeID) bool { return nn.failed[node] }

// FailedNodes reports how many nodes have been failed.
func (nn *NameNode) FailedNodes() int { return len(nn.failed) }

// UpNodes returns the live node IDs, sorted.
func (nn *NameNode) UpNodes() []topology.NodeID {
	out := make([]topology.NodeID, 0, nn.topo.N()-len(nn.failed))
	for i := 0; i < nn.topo.N(); i++ {
		if !nn.failed[topology.NodeID(i)] {
			out = append(out, topology.NodeID(i))
		}
	}
	return out
}

// AddPrimaryReplica registers a repaired primary replica of b at node —
// the re-replication path. The node must be up and not already hold b.
func (nn *NameNode) AddPrimaryReplica(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	blk := sh.blocks[b]
	if blk == nil {
		return fmt.Errorf("dfs: unknown block %d", b)
	}
	if int(node) < 0 || int(node) >= nn.topo.N() {
		return fmt.Errorf("dfs: invalid node %d", node)
	}
	if nn.down {
		return fmt.Errorf("dfs: repair block %d: %w", b, ErrMasterDown)
	}
	if nn.failed[node] {
		return fmt.Errorf("dfs: node %d: %w", node, ErrNodeDown)
	}
	if _, exists := sh.locations[b][node]; exists {
		return fmt.Errorf("dfs: node %d already holds a replica of block %d", node, b)
	}
	sh.locations[b][node] = Primary
	nn.perNode[node][b] = Primary
	nn.primaryBytes[node] += blk.Size
	nn.journalAdd(journalRecord{op: opAddReplica, block: b, node: node, kind: Primary})
	nn.publishReplica(event.ReplicaRepair, b, node, false)
	nn.journalMaybeCheckpoint()
	return nil
}

// UnderReplicated returns the blocks whose live primary count is below
// min(replication factor, live nodes) but that still have at least one
// live replica to copy from, sorted by ID — the name node's repair queue.
func (nn *NameNode) UnderReplicated() []BlockID {
	want := nn.replication
	if up := nn.topo.N() - len(nn.failed); want > up {
		want = up
	}
	var out []BlockID
	for si := range nn.shards {
		for b, locs := range nn.shards[si].locations {
			if len(locs) == 0 {
				continue // unavailable: nothing to copy from
			}
			primaries := 0
			for _, k := range locs {
				if k == Primary {
					primaries++
				}
			}
			if primaries < want {
				out = append(out, b)
			}
		}
	}
	sortBlockIDs(out)
	return out
}

// IsUnderReplicated reports whether b individually needs repair: its live
// primary count is below min(replication factor, live nodes) and it still
// has at least one live replica to copy from. It is the O(replicas)
// per-block companion of UnderReplicated, for repair loops that would
// otherwise rescan the whole block map per repaired block.
func (nn *NameNode) IsUnderReplicated(b BlockID) bool {
	locs := nn.locs(b)
	if len(locs) == 0 {
		return false // unavailable: nothing to copy from
	}
	want := nn.replication
	if up := nn.topo.N() - len(nn.failed); want > up {
		want = up
	}
	primaries := 0
	for _, k := range locs {
		if k == Primary {
			primaries++
		}
	}
	return primaries < want
}

// repairCtx is the policy.Context a repair-target candidate exposes to
// the ranking terms: "rack_fresh" (1 when the candidate's rack holds no
// replica of the block) and "load" (the candidate's primary bytes).
type repairCtx struct {
	rackFresh float64
	load      float64
}

// Val implements policy.Context.
func (c *repairCtx) Val(key string) (float64, bool) {
	switch key {
	case "rack_fresh":
		return c.rackFresh, true
	case "load":
		return c.load, true
	}
	return 0, false
}

// SetRepairTerms replaces the repair-target ranking terms (from a
// -policy-file config); nil restores the built-in rack-aware default.
func (nn *NameNode) SetRepairTerms(terms []policy.Term) {
	if terms == nil {
		terms = policy.DefaultRepairTerms()
	}
	nn.repairTerms = terms
}

// RepairTarget picks a live node that does not hold b, ranking candidates
// lexicographically by the configured terms. The built-in terms are
// rack-aware like HDFS's replicator: nodes in racks holding no replica of
// b are preferred (a rack failure then can't take out every copy), with
// fewest primary bytes (space balancing) and then lowest ID as
// tie-breaks — the last because UpNodes iterates in ID order and equal
// score vectors keep the first-seen candidate. Loads are int64 bytes far
// below 2^53, so the float64 scores compare exactly. ok is false when
// every live node already holds b.
func (nn *NameNode) RepairTarget(b BlockID) (topology.NodeID, bool) {
	locs := nn.locs(b)
	coveredRacks := make(map[int]bool, len(locs))
	for node := range locs {
		coveredRacks[nn.topo.Rack(node)] = true
	}
	ranker := policy.Ranker{Terms: nn.repairTerms}
	best := topology.NodeID(-1)
	var ctx repairCtx
	for _, node := range nn.UpNodes() {
		if nn.HasReplica(b, node) {
			continue
		}
		if !coveredRacks[nn.topo.Rack(node)] {
			ctx.rackFresh = 1
		} else {
			ctx.rackFresh = 0
		}
		ctx.load = float64(nn.primaryBytes[node])
		nn.repairScore = ranker.ScoreInto(nn.repairScore, &ctx)
		if best < 0 || policy.LexBetter(nn.repairScore, nn.repairBest) {
			best = node
			nn.repairBest = append(nn.repairBest[:0], nn.repairScore...)
		}
	}
	return best, best >= 0
}

// Availability reports (blocks with >= 1 live replica, total blocks).
func (nn *NameNode) Availability() (available, total int) {
	for si := range nn.shards {
		for b := range nn.shards[si].blocks {
			total++
			if len(nn.shards[si].locations[b]) > 0 {
				available++
			}
		}
	}
	return available, total
}

// WeightedAvailability reports the fraction of access weight that remains
// readable: Σ weight(b) over available blocks / Σ weight(b). weights maps
// BlockID to a non-negative popularity weight; unweighted blocks count 0.
func (nn *NameNode) WeightedAvailability(weights map[BlockID]float64) float64 {
	var avail, total float64
	// Deterministic iteration for reproducible floating-point sums.
	ids := make([]BlockID, 0, len(weights))
	for b := range weights {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, b := range ids {
		w := weights[b]
		if w <= 0 {
			continue
		}
		sh := nn.shard(b)
		if _, ok := sh.blocks[b]; !ok {
			continue
		}
		total += w
		if len(sh.locations[b]) > 0 {
			avail += w
		}
	}
	if total == 0 {
		return 1
	}
	return avail / total
}
