package dfs

import (
	"testing"
	"testing/quick"

	"dare/internal/stats"
	"dare/internal/topology"
)

func newTestNN(nodes, repl int, seed uint64) *NameNode {
	topo := topology.NewDedicated(nodes, 5, stats.Constant{V: 0.0002})
	return NewNameNode(topo, repl, stats.NewRNG(seed))
}

func TestCreateFilePlacesReplicas(t *testing.T) {
	nn := newTestNN(20, 3, 1)
	f, err := nn.CreateFile("input", 10, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 10 {
		t.Fatalf("blocks %d", len(f.Blocks))
	}
	for _, b := range f.Blocks {
		locs := nn.Locations(b)
		if len(locs) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", b, len(locs))
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range locs {
			if seen[n] {
				t.Fatalf("block %d placed twice on node %d", b, n)
			}
			seen[n] = true
		}
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRackAwarePlacement(t *testing.T) {
	// With 4 racks of 5, the default policy must span >= 2 racks whenever
	// possible (first replica in one rack, second in a different one).
	nn := newTestNN(20, 3, 2)
	f, err := nn.CreateFile("f", 50, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	topo := nn.Topology()
	for _, b := range f.Blocks {
		racks := map[int]bool{}
		for _, n := range nn.Locations(b) {
			racks[topo.Rack(n)] = true
		}
		if len(racks) < 2 {
			t.Fatalf("block %d replicas all in one rack", b)
		}
	}
}

func TestCreateFileErrors(t *testing.T) {
	nn := newTestNN(5, 3, 3)
	if _, err := nn.CreateFile("x", 0, 128, 0); err == nil {
		t.Fatal("zero blocks should fail")
	}
	if _, err := nn.CreateFile("x", 1, 0, 0); err == nil {
		t.Fatal("zero block size should fail")
	}
}

func TestReplicationDegradesGracefully(t *testing.T) {
	// 2 nodes, replication 3: every block gets 2 replicas and invariants
	// still hold.
	nn := newTestNN(2, 3, 4)
	f, err := nn.CreateFile("small", 5, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if nn.NumReplicas(b) != 2 {
			t.Fatalf("block %d replicas %d, want 2", b, nn.NumReplicas(b))
		}
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicReplicaLifecycle(t *testing.T) {
	nn := newTestNN(10, 2, 5)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	// Find a node without a replica.
	var free topology.NodeID = -1
	for n := 0; n < 10; n++ {
		if !nn.HasReplica(b, topology.NodeID(n)) {
			free = topology.NodeID(n)
			break
		}
	}
	if free < 0 {
		t.Fatal("no free node")
	}
	if err := nn.AddDynamicReplica(b, free); err != nil {
		t.Fatal(err)
	}
	if nn.NumReplicas(b) != 3 {
		t.Fatalf("replicas %d, want 3", nn.NumReplicas(b))
	}
	if k, _ := nn.ReplicaKindAt(b, free); k != Dynamic {
		t.Fatal("replica kind should be Dynamic")
	}
	if nn.DynamicBytesOn(free) != 100 {
		t.Fatalf("dynamic bytes %d", nn.DynamicBytesOn(free))
	}
	// Double add fails.
	if err := nn.AddDynamicReplica(b, free); err == nil {
		t.Fatal("duplicate add should fail")
	}
	// Remove restores state.
	if err := nn.RemoveDynamicReplica(b, free); err != nil {
		t.Fatal(err)
	}
	if nn.NumReplicas(b) != 2 || nn.DynamicBytesOn(free) != 0 {
		t.Fatal("remove did not restore state")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCannotRemovePrimary(t *testing.T) {
	nn := newTestNN(10, 3, 6)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	primary := nn.Locations(b)[0]
	if err := nn.RemoveDynamicReplica(b, primary); err == nil {
		t.Fatal("removing a primary replica must fail")
	}
	if err := nn.RemoveDynamicReplica(b, topology.NodeID(99)); err == nil {
		t.Fatal("removing from a node without replica must fail")
	}
}

func TestAddDynamicReplicaValidation(t *testing.T) {
	nn := newTestNN(5, 2, 7)
	if err := nn.AddDynamicReplica(999, 0); err == nil {
		t.Fatal("unknown block should fail")
	}
	f, _ := nn.CreateFile("f", 1, 10, 0)
	if err := nn.AddDynamicReplica(f.Blocks[0], topology.NodeID(50)); err == nil {
		t.Fatal("invalid node should fail")
	}
}

func TestByteAccounting(t *testing.T) {
	nn := newTestNN(10, 3, 8)
	nn.CreateFile("a", 4, 128, 0)
	nn.CreateFile("b", 2, 128, 0)
	if got := nn.TotalPrimaryBytes(); got != 6*3*128 {
		t.Fatalf("total primary bytes %d, want %d", got, 6*3*128)
	}
	if nn.TotalDynamicBytes() != 0 {
		t.Fatal("no dynamic bytes expected")
	}
	var sum int64
	for n := 0; n < 10; n++ {
		sum += nn.PrimaryBytesOn(topology.NodeID(n))
	}
	if sum != nn.TotalPrimaryBytes() {
		t.Fatal("per-node sums disagree with total")
	}
}

func TestNodeBlocksSorted(t *testing.T) {
	nn := newTestNN(3, 3, 9)
	nn.CreateFile("f", 20, 1, 0)
	for n := 0; n < 3; n++ {
		bs := nn.NodeBlocks(topology.NodeID(n))
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatal("NodeBlocks not sorted")
			}
		}
	}
}

func TestFileAndBlockLookups(t *testing.T) {
	nn := newTestNN(5, 2, 10)
	f, _ := nn.CreateFile("f", 3, 7, 42.5)
	if nn.File(f.ID) != f {
		t.Fatal("File lookup failed")
	}
	if nn.File(999) != nil {
		t.Fatal("unknown file should be nil")
	}
	blk := nn.Block(f.Blocks[1])
	if blk == nil || blk.File != f.ID || blk.Index != 1 || blk.Size != 7 {
		t.Fatalf("bad block: %+v", blk)
	}
	if f.Created != 42.5 {
		t.Fatal("creation time not recorded")
	}
	if nn.Files() != 1 || nn.Blocks() != 3 {
		t.Fatalf("counts %d files %d blocks", nn.Files(), nn.Blocks())
	}
}

func TestPlacementDeterminism(t *testing.T) {
	a := newTestNN(20, 3, 11)
	b := newTestNN(20, 3, 11)
	fa, _ := a.CreateFile("f", 30, 128, 0)
	fb, _ := b.CreateFile("f", 30, 128, 0)
	for i := range fa.Blocks {
		la, lb := a.Locations(fa.Blocks[i]), b.Locations(fb.Blocks[i])
		if len(la) != len(lb) {
			t.Fatal("placement not deterministic")
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatal("placement not deterministic")
			}
		}
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	// Placing many blocks must use all nodes, not hotspot a few.
	nn := newTestNN(10, 3, 12)
	nn.CreateFile("big", 200, 1, 0)
	for n := 0; n < 10; n++ {
		if len(nn.NodeBlocks(topology.NodeID(n))) == 0 {
			t.Fatalf("node %d received no blocks", n)
		}
	}
}

func TestInvariantsPropertyUnderRandomDynamicOps(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		nn := newTestNN(8, 2, seed)
		file, err := nn.CreateFile("f", 6, 10, 0)
		if err != nil {
			return false
		}
		g := stats.NewRNG(seed)
		for _, op := range ops {
			b := file.Blocks[int(op)%len(file.Blocks)]
			node := topology.NodeID(g.Intn(8))
			if op%2 == 0 {
				if !nn.HasReplica(b, node) {
					if err := nn.AddDynamicReplica(b, node); err != nil {
						return false
					}
				}
			} else {
				if k, ok := nn.ReplicaKindAt(b, node); ok && k == Dynamic {
					if err := nn.RemoveDynamicReplica(b, node); err != nil {
						return false
					}
				}
			}
		}
		return nn.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewNameNodePanicsOnBadReplication(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestNN(5, 0, 1)
}
