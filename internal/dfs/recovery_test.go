package dfs

import (
	"testing"

	"dare/internal/stats"
	"dare/internal/topology"
)

func TestRecoverNodeRejoinsEmpty(t *testing.T) {
	nn := newTestNN(6, 3, 21)
	f, _ := nn.CreateFile("f", 8, 100, 0)
	victim := nn.Locations(f.Blocks[0])[0]
	nn.FailNode(victim)
	if err := nn.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if nn.NodeFailed(victim) || nn.FailedNodes() != 0 {
		t.Fatal("recovery did not clear failure state")
	}
	// HDFS-style re-registration: the node comes back empty.
	if got := len(nn.NodeBlocks(victim)); got != 0 {
		t.Fatalf("recovered node lists %d blocks, want 0", got)
	}
	if nn.PrimaryBytesOn(victim) != 0 || nn.DynamicBytesOn(victim) != 0 {
		t.Fatal("recovered node has non-zero byte accounting")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The node is usable again: placement and repair may target it.
	b := f.Blocks[0]
	if !nn.HasReplica(b, victim) {
		if err := nn.AddPrimaryReplica(b, victim); err != nil {
			t.Fatalf("repair onto recovered node: %v", err)
		}
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverNodeValidation(t *testing.T) {
	nn := newTestNN(4, 2, 22)
	if err := nn.RecoverNode(0); err == nil {
		t.Fatal("recovering an up node should error")
	}
	if err := nn.RecoverNode(99); err == nil {
		t.Fatal("recovering an invalid node should error")
	}
	nn.FailNode(2)
	if err := nn.RecoverNode(2); err != nil {
		t.Fatal(err)
	}
	if err := nn.RecoverNode(2); err == nil {
		t.Fatal("double recovery should error")
	}
}

// TestInvariantsStayRelaxedAfterFullRecovery is the regression test for the
// sticky churn flag: with every node back up but blocks permanently lost or
// under-replicated (empty rejoin), CheckInvariants must not reimpose the
// replication floor.
func TestInvariantsStayRelaxedAfterFullRecovery(t *testing.T) {
	nn := newTestNN(3, 1, 23) // replication 1: failure loses data for good
	f, _ := nn.CreateFile("f", 6, 100, 0)
	host := nn.Locations(f.Blocks[0])[0]
	rep := nn.FailNode(host)
	if len(rep.UnavailableBlocks) == 0 {
		t.Fatal("expected lost blocks with replication 1")
	}
	if err := nn.RecoverNode(host); err != nil {
		t.Fatal(err)
	}
	if nn.FailedNodes() != 0 {
		t.Fatal("cluster should be fully up")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatalf("invariants must tolerate lost blocks after full recovery: %v", err)
	}
	avail, total := nn.Availability()
	if avail != total-len(rep.UnavailableBlocks) {
		t.Fatalf("lost blocks resurrected: %d/%d available, %d were lost",
			avail, total, len(rep.UnavailableBlocks))
	}
}

func TestIsUnderReplicatedMatchesQueue(t *testing.T) {
	nn := newTestNN(8, 3, 24)
	nn.CreateFile("f", 12, 100, 0)
	nn.FailNode(1)
	nn.FailNode(5)
	queued := make(map[BlockID]bool)
	for _, b := range nn.UnderReplicated() {
		queued[b] = true
	}
	for b := BlockID(0); int(b) < nn.Blocks(); b++ {
		if got := nn.IsUnderReplicated(b); got != queued[b] {
			t.Fatalf("block %d: IsUnderReplicated=%v, queue membership=%v", b, got, queued[b])
		}
	}
	// Repair one block; its per-block status must flip without rescanning.
	under := nn.UnderReplicated()
	if len(under) == 0 {
		t.Fatal("expected under-replicated blocks")
	}
	b := under[0]
	for nn.IsUnderReplicated(b) {
		target, ok := nn.RepairTarget(b)
		if !ok {
			t.Fatalf("no repair target for block %d", b)
		}
		if err := nn.AddPrimaryReplica(b, target); err != nil {
			t.Fatal(err)
		}
	}
	for _, still := range nn.UnderReplicated() {
		if still == b {
			t.Fatal("repaired block still in queue")
		}
	}
}

// TestRepairTargetPrefersFreshRack checks the rack-aware preference: when a
// block's replicas are concentrated in covered racks, repair must pick a
// node from a rack holding no replica if one is available.
func TestRepairTargetPrefersFreshRack(t *testing.T) {
	// 6 nodes in 3 racks of 2: rack(n) = n/2.
	topo := topology.NewDedicated(6, 2, stats.Constant{V: 0.0002})
	nn := NewNameNode(topo, 2, stats.NewRNG(25))
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	locs := nn.Locations(b)
	covered := make(map[int]bool)
	for _, n := range locs {
		covered[topo.Rack(n)] = true
	}
	target, ok := nn.RepairTarget(b)
	if !ok {
		t.Fatal("no repair target")
	}
	if len(covered) < 3 && covered[topo.Rack(target)] {
		t.Fatalf("target %d in covered rack %d; replicas at %v", target, topo.Rack(target), locs)
	}
}

// TestInvariantsCatchReplicaOnDownNode exercises the new down-node check
// with a hand-corrupted name node.
func TestInvariantsCatchReplicaOnDownNode(t *testing.T) {
	nn := newTestNN(4, 2, 26)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	host := nn.Locations(b)[0]
	// Corrupt: mark the node failed without scrubbing its replicas.
	nn.failed[host] = true
	nn.churned = true
	if err := nn.CheckInvariants(); err == nil {
		t.Fatal("invariant checker missed a replica on a down node")
	}
}
