package dfs

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"dare/internal/stats"
	"dare/internal/topology"
)

// fingerprint serializes the registry's full authoritative state (and the
// derived byte accounting) deterministically, so two states can be compared
// for bit-identity.
func fingerprint(nn *NameNode) string {
	var b strings.Builder
	fileIDs := make([]FileID, 0, len(nn.files))
	for id := range nn.files {
		fileIDs = append(fileIDs, id)
	}
	sort.Slice(fileIDs, func(i, j int) bool { return fileIDs[i] < fileIDs[j] })
	for _, id := range fileIDs {
		f := nn.files[id]
		fmt.Fprintf(&b, "file %d %q %v\n", f.ID, f.Name, f.Blocks)
	}
	blocks := make([]BlockID, 0, nn.numBlocks)
	for si := range nn.shards {
		for id := range nn.shards[si].blocks {
			blocks = append(blocks, id)
		}
	}
	sortBlockIDs(blocks)
	for _, id := range blocks {
		blk := nn.Block(id)
		fmt.Fprintf(&b, "block %d file=%d idx=%d size=%d locs=", blk.ID, blk.File, blk.Index, blk.Size)
		nodes := make([]topology.NodeID, 0, 4)
		for n := range nn.locs(id) {
			nodes = append(nodes, n)
		}
		sortNodeIDs(nodes)
		for _, n := range nodes {
			fmt.Fprintf(&b, "(%d,%v,corrupt=%v)", n, nn.locs(id)[n], nn.IsCorrupt(id, n))
		}
		b.WriteString("\n")
	}
	failed := make([]topology.NodeID, 0, len(nn.failed))
	for n := range nn.failed {
		failed = append(failed, n)
	}
	sortNodeIDs(failed)
	fmt.Fprintf(&b, "failed=%v churned=%v next=%d/%d\n", failed, nn.churned, nn.nextFile, nn.nextBlock)
	for n := 0; n < nn.N(); n++ {
		fmt.Fprintf(&b, "node %d primary=%d dynamic=%d blocks=%v\n",
			n, nn.primaryBytes[n], nn.dynamicBytes[n], nn.NodeBlocks(topology.NodeID(n)))
	}
	return b.String()
}

// driveOps applies a seeded random mixture of every journaled mutation:
// file creation, dynamic replica add/remove, node failure/recovery,
// corruption, and quarantine. It mirrors the generator discipline of the
// churn/chaos harnesses: every op is feasible when issued.
func driveOps(t testing.TB, nn *NameNode, rng *stats.RNG, n int) {
	randBlock := func() BlockID {
		if nn.Blocks() == 0 {
			return -1
		}
		return BlockID(rng.Intn(nn.Blocks()))
	}
	randNode := func() topology.NodeID { return topology.NodeID(rng.Intn(nn.N())) }
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			if _, err := nn.CreateFile(fmt.Sprintf("f%d", i), 1+rng.Intn(4), 64, 0); err != nil {
				t.Fatalf("op %d create: %v", i, err)
			}
		case 2, 3:
			if b := randBlock(); b >= 0 {
				_ = nn.AddDynamicReplica(b, randNode()) // may legitimately fail
			}
		case 4:
			if b := randBlock(); b >= 0 {
				_ = nn.RemoveDynamicReplica(b, randNode())
			}
		case 5:
			if v := randNode(); !nn.NodeFailed(v) && nn.FailedNodes() < nn.N()-1 {
				nn.FailNode(v)
			}
		case 6:
			if v := randNode(); nn.NodeFailed(v) {
				if err := nn.RecoverNode(v); err != nil {
					t.Fatalf("op %d recover node %d: %v", i, v, err)
				}
			}
		case 7, 8:
			if b := randBlock(); b >= 0 {
				if locs := nn.Locations(b); len(locs) > 0 {
					_ = nn.MarkCorrupt(b, locs[rng.Intn(len(locs))])
				}
			}
		case 9:
			if b := randBlock(); b >= 0 {
				if locs := nn.Locations(b); len(locs) > 1 {
					_ = nn.QuarantineReplica(b, locs[rng.Intn(len(locs))])
				}
			}
		}
	}
}

// A journal-mode crash/recovery must reproduce the pre-crash registry
// bit for bit: recovery rebuilds every derived structure from checkpoint
// plus journal replay, and nothing can mutate while down.
func TestJournalRecoveryRoundTrip(t *testing.T) {
	for _, every := range []int{0, 1, 7, 1 << 20} {
		nn := newTestNN(20, 3, 42)
		nn.EnableJournal(every)
		driveOps(t, nn, stats.NewRNG(42).Split(9), 200)
		want := fingerprint(nn)
		if err := nn.Crash(); err != nil {
			t.Fatal(err)
		}
		if !nn.Down() {
			t.Fatal("not down after Crash")
		}
		if err := nn.Recover(RecoverJournal); err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(nn); got != want {
			t.Fatalf("every=%d: journal recovery diverged\nwant:\n%s\ngot:\n%s", every, want, got)
		}
		if err := nn.CheckInvariants(); err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if nn.Warming() {
			t.Fatal("journal mode must not warm")
		}
	}
}

// A report-mode recovery starts with a cold block map and warms back to
// the exact pre-crash state once every live node has reported (disks
// outlive the master, so nothing is truly lost).
func TestReportRecoveryWarmsToPreCrashState(t *testing.T) {
	nn := newTestNN(20, 3, 7)
	nn.EnableJournal(16)
	driveOps(t, nn, stats.NewRNG(7).Split(3), 150)
	// Latch the churn flag before the crash: report-mode recovery latches it
	// too (re-learned locations carry no replication-floor promise), so the
	// pre/post fingerprints can only match if it was already set.
	if !nn.NodeFailed(0) {
		nn.FailNode(0)
	}
	if nn.NodeFailed(0) {
		if err := nn.RecoverNode(0); err != nil {
			t.Fatal(err)
		}
	}
	want := fingerprint(nn)
	preCorrupt := nn.CorruptReplicas()

	if err := nn.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := nn.Recover(RecoverReport); err != nil {
		t.Fatal(err)
	}
	if !nn.Warming() {
		t.Fatal("report mode must warm")
	}
	if avail, total := nn.Availability(); avail != 0 || total == 0 {
		t.Fatalf("cold view: %d/%d blocks available, want 0/>0", avail, total)
	}
	live := nn.UpNodes()
	if nn.WarmingNodes() != len(live) {
		t.Fatalf("warming %d nodes, %d live", nn.WarmingNodes(), len(live))
	}
	for _, node := range live {
		if !nn.NeedsBlockReport(node) {
			t.Fatalf("node %d not awaited", node)
		}
		if _, err := nn.DeliverBlockReport(node); err != nil {
			t.Fatal(err)
		}
		if _, err := nn.DeliverBlockReport(node); err == nil {
			t.Fatalf("node %d reported twice without rejection", node)
		}
	}
	if nn.Warming() {
		t.Fatal("still warming after every live node reported")
	}
	if got := fingerprint(nn); got != want {
		t.Fatalf("report recovery diverged\nwant:\n%s\ngot:\n%s", want, got)
	}
	if nn.CorruptReplicas() != preCorrupt {
		t.Fatalf("corrupt marks: %d, want %d (reports carry the bad bytes)", nn.CorruptReplicas(), preCorrupt)
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Corruption is disk truth: a replica rotting while the master is down
// must still be marked after recovery, in both modes.
func TestCorruptionWhileDownSurvivesRecovery(t *testing.T) {
	for _, mode := range []RecoveryMode{RecoverJournal, RecoverReport} {
		nn := newTestNN(10, 2, 5)
		nn.EnableJournal(0)
		f, err := nn.CreateFile("f", 4, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := nn.Crash(); err != nil {
			t.Fatal(err)
		}
		victim := nn.Locations(f.Blocks[1])[0]
		if err := nn.MarkCorrupt(f.Blocks[1], victim); err != nil {
			t.Fatal(err)
		}
		if err := nn.Recover(mode); err != nil {
			t.Fatal(err)
		}
		for _, node := range nn.UpNodes() {
			if nn.NeedsBlockReport(node) {
				if _, err := nn.DeliverBlockReport(node); err != nil {
					t.Fatal(err)
				}
			}
		}
		if !nn.IsCorrupt(f.Blocks[1], victim) {
			t.Fatalf("mode %v: corruption mark lost across recovery", mode)
		}
	}
}

// Replay of a truncated journal must not panic and must be monotone: the
// empty prefix reproduces the checkpoint exactly, the full prefix the live
// state exactly, and every prefix in between lands on a registry that
// tracks no more blocks than the full state. (Mid-operation truncation can
// legitimately violate cross-layer invariants — that is what the invariant
// checker is for — but replay itself must stay total.)
func TestJournalReplayTruncated(t *testing.T) {
	nn := newTestNN(15, 2, 13)
	nn.EnableJournal(0) // never auto-checkpoint: keep every record
	checkpointFP := fingerprint(nn)
	driveOps(t, nn, stats.NewRNG(13).Split(1), 120)
	fullFP := fingerprint(nn)
	records := append([]journalRecord(nil), nn.journal.records...)
	fullBlocks := nn.Blocks()

	cuts := []int{0, 1, len(records) / 3, len(records) / 2, len(records) - 1, len(records)}
	for _, k := range cuts {
		if k < 0 || k > len(records) {
			continue
		}
		nn.restoreSnapshot(nn.journal.snap)
		nn.replayJournal(records[:k])
		fp := fingerprint(nn)
		switch k {
		case 0:
			if fp != checkpointFP {
				t.Fatalf("empty journal: state differs from checkpoint")
			}
		case len(records):
			if fp != fullFP {
				t.Fatalf("full journal: state differs from live")
			}
		}
		if nn.Blocks() > fullBlocks {
			t.Fatalf("cut %d: replay invented blocks (%d > %d)", k, nn.Blocks(), fullBlocks)
		}
	}
	// Restore the full state so the name node ends the test consistent.
	nn.restoreSnapshot(nn.journal.snap)
	nn.replayJournal(records)
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Lifecycle errors: crash needs a journal, double-crash and double-recover
// are rejected, mutations while down fail with ErrMasterDown, and block
// reports are only accepted from awaited nodes.
func TestCrashRecoverLifecycleErrors(t *testing.T) {
	plain := newTestNN(5, 2, 1)
	if err := plain.Crash(); err == nil {
		t.Fatal("crash without journal accepted")
	}

	nn := newTestNN(5, 2, 1)
	nn.EnableJournal(0)
	if err := nn.Recover(RecoverJournal); err == nil {
		t.Fatal("recover while up accepted")
	}
	f, err := nn.CreateFile("f", 2, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := nn.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := nn.Crash(); err == nil {
		t.Fatal("double crash accepted")
	}
	if _, err := nn.CreateFile("g", 1, 64, 0); err == nil {
		t.Fatal("CreateFile while down accepted")
	}
	if err := nn.AddDynamicReplica(f.Blocks[0], 4); err == nil {
		t.Fatal("AddDynamicReplica while down accepted")
	}
	if _, err := nn.DeliverBlockReport(0); err == nil {
		t.Fatal("block report while down accepted")
	}
	if err := nn.Recover(RecoverJournal); err != nil {
		t.Fatal(err)
	}
	if _, err := nn.DeliverBlockReport(0); err == nil {
		t.Fatal("unsolicited block report accepted")
	}
}

// FuzzJournalReplay drives a seeded random op sequence against a journaled
// name node with an arbitrary checkpoint cadence and asserts the failover
// identity: checkpoint + journal replay reproduces the live registry bit
// for bit, and the recovered state passes the full invariant check.
func FuzzJournalReplay(f *testing.F) {
	f.Add(uint64(1), uint16(50), uint8(0))
	f.Add(uint64(42), uint16(200), uint8(7))
	f.Add(uint64(0xDEAD), uint16(120), uint8(1))
	f.Add(uint64(7), uint16(300), uint8(33))
	f.Fuzz(func(t *testing.T, seed uint64, ops uint16, every uint8) {
		n := int(ops) % 400
		nn := newTestNN(12, 2, seed)
		nn.EnableJournal(int(every))
		driveOps(t, nn, stats.NewRNG(seed).Split(0xFA11), n)
		want := fingerprint(nn)
		if err := nn.Crash(); err != nil {
			t.Fatal(err)
		}
		if err := nn.Recover(RecoverJournal); err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(nn); got != want {
			t.Fatalf("seed=%d ops=%d every=%d: checkpoint+replay != live state\nwant:\n%s\ngot:\n%s",
				seed, n, every, want, got)
		}
		if err := nn.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
