package dfs

import (
	"fmt"

	"dare/internal/event"
	"dare/internal/topology"
)

// Data integrity: replicas carry a (modelled) checksum. Corruption is
// injected silently — the name node's metadata still lists the replica and
// the scheduler still offers it as local — and surfaces only when a reader
// verifies the checksum at the end of a read, exactly as HDFS discovers
// bad blocks. Detection quarantines the replica: it is evicted from the
// metadata (primary or dynamic alike), the locality index hears about it
// through the usual ReplicaRemove event, and the repair pipeline restores
// the replication factor from a surviving copy.

// StaleReplica describes one replica a flapping node still holds on disk
// when it re-registers after a false-dead declaration (see ReRegisterNode).
type StaleReplica struct {
	Block BlockID
	Kind  ReplicaKind
}

// MarkCorrupt silently corrupts node's replica of b: metadata is
// untouched and no event fires — the damage is latent until a read
// verifies the checksum (QuarantineReplica). Marking a replica that does
// not exist is an error.
func (nn *NameNode) MarkCorrupt(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	if _, ok := sh.locations[b][node]; !ok {
		return fmt.Errorf("dfs: node %d holds no replica of block %d to corrupt", node, b)
	}
	if sh.corrupt == nil {
		sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
	}
	if sh.corrupt[b] == nil {
		sh.corrupt[b] = make(map[topology.NodeID]bool)
	}
	sh.corrupt[b][node] = true
	return nil
}

// IsCorrupt reports whether node's replica of b is marked corrupt.
func (nn *NameNode) IsCorrupt(b BlockID, node topology.NodeID) bool {
	return nn.shard(b).corrupt[b][node]
}

// CorruptReplicas reports how many latent corrupt replicas exist.
func (nn *NameNode) CorruptReplicas() int {
	n := 0
	for si := range nn.shards {
		for _, nodes := range nn.shards[si].corrupt {
			n += len(nodes)
		}
	}
	return n
}

// clearCorrupt drops the corruption mark (if any) for node's replica of b;
// every path that removes a replica calls it so marks never outlive the
// replicas they describe.
func (nn *NameNode) clearCorrupt(b BlockID, node topology.NodeID) {
	sh := nn.shard(b)
	if nodes := sh.corrupt[b]; nodes != nil {
		delete(nodes, node)
		if len(nodes) == 0 {
			delete(sh.corrupt, b)
		}
	}
}

// QuarantineReplica removes a detected-corrupt replica from the metadata —
// the checksum-failure path, applicable to primaries and dynamic copies
// alike (unlike RemoveDynamicReplica, eviction here is mandatory: the
// bytes are garbage). It publishes ReplicaCorrupt with the pre-removal
// state, then the usual ReplicaRemove so locality indices and policies
// react exactly as for any other disappearance. Blocks may drop below the
// replication floor until repaired, so the churned latch is set.
func (nn *NameNode) QuarantineReplica(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	kind, ok := sh.locations[b][node]
	if !ok {
		return fmt.Errorf("dfs: node %d holds no replica of block %d to quarantine", node, b)
	}
	nn.churned = true
	nn.publishReplica(event.ReplicaCorrupt, b, node, kind == Dynamic)
	nn.clearCorrupt(b, node)
	delete(sh.locations[b], node)
	delete(nn.perNode[node], b)
	if kind == Primary {
		nn.primaryBytes[node] -= sh.blocks[b].Size
	} else {
		nn.dynamicBytes[node] -= sh.blocks[b].Size
	}
	nn.publishReplica(event.ReplicaRemove, b, node, kind == Dynamic)
	return nil
}

// ReRegisterNode rejoins a failed node whose disk survived — the
// false-dead (flapping) path: heartbeat loss declared the node dead and
// FailNode scrubbed its replicas, but the process comes back moments later
// and its block report still lists them. Each reported replica is
// reconciled against the registry: replicas of blocks the name node no
// longer tracks are discarded, a report for a block the node somehow
// already holds is ignored, and the rest are restored (with byte
// accounting and ReplicaAdd events, so locality indices re-learn them).
// The NodeRecover event fires last, with Aux = restored count, so every
// subscriber observes a fully reconciled registry. It returns the number
// of replicas restored.
//
// RecoverNode is the stale == nil special case: a node that rejoins empty.
func (nn *NameNode) ReRegisterNode(node topology.NodeID, stale []StaleReplica) (int, error) {
	if int(node) < 0 || int(node) >= nn.topo.N() {
		return 0, fmt.Errorf("dfs: invalid node %d", node)
	}
	if !nn.failed[node] {
		return 0, fmt.Errorf("dfs: node %d is not failed", node)
	}
	delete(nn.failed, node)
	restored := 0
	for _, s := range stale {
		sh := nn.shard(s.Block)
		blk := sh.blocks[s.Block]
		if blk == nil {
			continue // registry no longer tracks the block: discard
		}
		if _, exists := sh.locations[s.Block][node]; exists {
			continue
		}
		if sh.locations[s.Block] == nil {
			sh.locations[s.Block] = make(map[topology.NodeID]ReplicaKind)
		}
		sh.locations[s.Block][node] = s.Kind
		nn.perNode[node][s.Block] = s.Kind
		if s.Kind == Primary {
			nn.primaryBytes[node] += blk.Size
		} else {
			nn.dynamicBytes[node] += blk.Size
		}
		nn.publishReplica(event.ReplicaAdd, s.Block, node, s.Kind == Dynamic)
		restored++
	}
	if nn.bus != nil {
		ev := event.New(event.NodeRecover)
		ev.Node = int32(node)
		ev.Rack = int32(nn.topo.Rack(node))
		ev.Aux = int64(restored)
		nn.bus.Publish(ev)
	}
	return restored, nil
}
