package dfs

import (
	"fmt"

	"dare/internal/event"
	"dare/internal/topology"
)

// Data integrity: replicas carry a (modelled) checksum. Corruption is
// injected silently — the name node's metadata still lists the replica and
// the scheduler still offers it as local — and surfaces only when a reader
// verifies the checksum at the end of a read, exactly as HDFS discovers
// bad blocks. Detection quarantines the replica: it is evicted from the
// metadata (primary or dynamic alike), the locality index hears about it
// through the usual ReplicaRemove event, and the repair pipeline restores
// the replication factor from a surviving copy.

// StaleReplica describes one replica a flapping node still holds on disk
// when it re-registers after a false-dead declaration (see ReRegisterNode).
type StaleReplica struct {
	Block BlockID
	Kind  ReplicaKind
}

// MarkCorrupt silently corrupts node's replica of b: metadata is
// untouched and no event fires — the damage is latent until a read
// verifies the checksum (QuarantineReplica). Marking a replica that does
// not exist is an error.
func (nn *NameNode) MarkCorrupt(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	if _, ok := sh.locations[b][node]; !ok {
		return fmt.Errorf("dfs: node %d holds no replica of block %d to corrupt", node, b)
	}
	if sh.corrupt == nil {
		sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
	}
	if sh.corrupt[b] == nil {
		sh.corrupt[b] = make(map[topology.NodeID]bool)
	}
	sh.corrupt[b][node] = true
	// Corruption is disk truth, not a master RPC: it lands even while the
	// master is down. Journal it so a journal-mode recovery reproduces the
	// marks, and mirror it into the crash-time disk capture so a report-mode
	// recovery re-learns it from the node's block report.
	nn.journalAdd(journalRecord{op: opMarkCorrupt, block: b, node: node})
	if nn.down && int(node) < len(nn.diskTruth) {
		for i := range nn.diskTruth[node] {
			if nn.diskTruth[node][i].block == b {
				nn.diskTruth[node][i].corrupt = true
				break
			}
		}
	}
	if !nn.down {
		nn.journalMaybeCheckpoint()
	}
	return nil
}

// IsCorrupt reports whether node's replica of b is marked corrupt.
func (nn *NameNode) IsCorrupt(b BlockID, node topology.NodeID) bool {
	return nn.shard(b).corrupt[b][node]
}

// CorruptReplicas reports how many latent corrupt replicas exist.
func (nn *NameNode) CorruptReplicas() int {
	n := 0
	for si := range nn.shards {
		for _, nodes := range nn.shards[si].corrupt {
			n += len(nodes)
		}
	}
	return n
}

// clearCorrupt drops the corruption mark (if any) for node's replica of b;
// every path that removes a replica calls it so marks never outlive the
// replicas they describe.
func (nn *NameNode) clearCorrupt(b BlockID, node topology.NodeID) {
	sh := nn.shard(b)
	if nodes := sh.corrupt[b]; nodes != nil {
		delete(nodes, node)
		if len(nodes) == 0 {
			delete(sh.corrupt, b)
		}
	}
}

// QuarantineReplica removes a detected-corrupt replica from the metadata —
// the checksum-failure path, applicable to primaries and dynamic copies
// alike (unlike RemoveDynamicReplica, eviction here is mandatory: the
// bytes are garbage). It publishes ReplicaCorrupt with the pre-removal
// state, then the usual ReplicaRemove so locality indices and policies
// react exactly as for any other disappearance. Blocks may drop below the
// replication floor until repaired, so the churned latch is set.
func (nn *NameNode) QuarantineReplica(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	kind, ok := sh.locations[b][node]
	if !ok {
		return fmt.Errorf("dfs: node %d holds no replica of block %d to quarantine", node, b)
	}
	if nn.down {
		// Detection is a reader-to-master report; with the master gone it
		// must be retried after recovery (the tracker's retry machinery
		// handles this).
		return fmt.Errorf("dfs: quarantine replica of block %d: %w", b, ErrMasterDown)
	}
	nn.churned = true
	nn.journalAdd(journalRecord{op: opChurn})
	nn.publishReplica(event.ReplicaCorrupt, b, node, kind == Dynamic)
	nn.clearCorrupt(b, node)
	delete(sh.locations[b], node)
	delete(nn.perNode[node], b)
	if kind == Primary {
		nn.primaryBytes[node] -= sh.blocks[b].Size
	} else {
		nn.dynamicBytes[node] -= sh.blocks[b].Size
	}
	nn.journalAdd(journalRecord{op: opRemoveReplica, block: b, node: node})
	nn.publishReplica(event.ReplicaRemove, b, node, kind == Dynamic)
	nn.journalMaybeCheckpoint()
	return nil
}

// ReRegisterNode rejoins a failed node whose disk survived — the
// false-dead (flapping) path: heartbeat loss declared the node dead and
// FailNode scrubbed its replicas, but the process comes back moments later
// and its block report still lists them. Each reported replica is
// reconciled against the registry: replicas of blocks the name node no
// longer tracks are discarded, a report for a block the node somehow
// already holds is ignored, and the rest are restored (with byte
// accounting and ReplicaAdd events, so locality indices re-learn them).
// The NodeRecover event fires last, with Aux = restored count, so every
// subscriber observes a fully reconciled registry. It returns the number
// of replicas restored.
//
// RecoverNode is the stale == nil special case: a node that rejoins empty.
func (nn *NameNode) ReRegisterNode(node topology.NodeID, stale []StaleReplica) (int, error) {
	if int(node) < 0 || int(node) >= nn.topo.N() {
		return 0, fmt.Errorf("dfs: invalid node %d", node)
	}
	if !nn.failed[node] {
		return 0, fmt.Errorf("dfs: node %d is not failed", node)
	}
	if nn.down {
		return 0, fmt.Errorf("dfs: node %d cannot register: %w", node, ErrMasterDown)
	}
	delete(nn.failed, node)
	nn.journalAdd(journalRecord{op: opNodeJoin, node: node})
	// A node registering with a warming master IS its block report: what it
	// carries (the stale list) is everything its disk holds, so the master
	// stops waiting for a separate report from it.
	if nn.warming[node] {
		delete(nn.warming, node)
		if int(node) < len(nn.diskTruth) {
			nn.diskTruth[node] = nil
		}
	}
	restored := 0
	for _, s := range stale {
		sh := nn.shard(s.Block)
		blk := sh.blocks[s.Block]
		if blk == nil {
			continue // registry no longer tracks the block: discard
		}
		if _, exists := sh.locations[s.Block][node]; exists {
			continue
		}
		if sh.locations[s.Block] == nil {
			sh.locations[s.Block] = make(map[topology.NodeID]ReplicaKind)
		}
		sh.locations[s.Block][node] = s.Kind
		nn.perNode[node][s.Block] = s.Kind
		if s.Kind == Primary {
			nn.primaryBytes[node] += blk.Size
		} else {
			nn.dynamicBytes[node] += blk.Size
		}
		nn.journalAdd(journalRecord{op: opAddReplica, block: s.Block, node: node, kind: s.Kind})
		nn.publishReplica(event.ReplicaAdd, s.Block, node, s.Kind == Dynamic)
		restored++
	}
	if nn.bus != nil {
		ev := event.New(event.NodeRecover)
		ev.Node = int32(node)
		ev.Rack = int32(nn.topo.Rack(node))
		ev.Aux = int64(restored)
		nn.bus.Publish(ev)
	}
	if nn.warming != nil && len(nn.warming) == 0 {
		nn.finishWarming()
	} else {
		nn.journalMaybeCheckpoint()
	}
	return restored, nil
}
