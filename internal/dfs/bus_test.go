package dfs

import (
	"testing"

	"dare/internal/event"
	"dare/internal/topology"
)

// TestSetBusRejectsDoubleInstall pins the migration contract that replaced
// the retired single-slot listener setter: installing a second bus would
// silently detach every subscriber registered on the first, so the name
// node refuses it loudly.
func TestSetBusRejectsDoubleInstall(t *testing.T) {
	nn := newTestNN(8, 3, 1)
	nn.SetBus(event.NewBus(nil))
	defer func() {
		if recover() == nil {
			t.Fatal("second SetBus did not panic")
		}
	}()
	nn.SetBus(event.NewBus(nil))
}

// TestNameNodePublishesReplicaLifecycle checks the dfs layer's event
// vocabulary end to end: placement publishes ReplicaAdd per chosen node,
// dynamic add/remove publish with Flag set, node failure publishes one
// ReplicaRemove per scrubbed replica plus a NodeFail carrying the loss
// count, and recovery publishes NodeRecover.
func TestNameNodePublishesReplicaLifecycle(t *testing.T) {
	nn := newTestNN(8, 3, 2)
	var counter event.Counter
	bus := event.NewBus(nil)
	bus.Subscribe(&counter)
	nn.SetBus(bus)

	f, err := nn.CreateFile("f", 4, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := counter.Counts()
	if got, want := c[event.ReplicaAdd], uint64(4*3); got != want {
		t.Fatalf("ReplicaAdd after placement: %d, want %d", got, want)
	}

	b := f.Blocks[0]
	free := topology.NodeID(-1)
	for n := 0; n < nn.N(); n++ {
		if !nn.HasReplica(b, topology.NodeID(n)) {
			free = topology.NodeID(n)
			break
		}
	}
	if free < 0 {
		t.Fatal("no replica-free node")
	}
	if err := nn.AddDynamicReplica(b, free); err != nil {
		t.Fatal(err)
	}
	if err := nn.RemoveDynamicReplica(b, free); err != nil {
		t.Fatal(err)
	}
	c = counter.Counts()
	if c[event.ReplicaAdd] != 4*3+1 || c[event.ReplicaRemove] != 1 {
		t.Fatalf("dynamic add/remove counts: %s", c)
	}

	victim := nn.Locations(b)[0]
	lost := len(nn.NodeBlocks(victim))
	nn.FailNode(victim)
	c = counter.Counts()
	if c[event.NodeFail] != 1 {
		t.Fatalf("NodeFail count: %s", c)
	}
	if got := c[event.ReplicaRemove]; got != uint64(1+lost) {
		t.Fatalf("ReplicaRemove after failure: %d, want %d", got, 1+lost)
	}
	nn.RecoverNode(victim)
	if c = counter.Counts(); c[event.NodeRecover] != 1 {
		t.Fatalf("NodeRecover count: %s", c)
	}
}
