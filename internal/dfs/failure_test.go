package dfs

import (
	"testing"

	"dare/internal/topology"
)

func TestFailNodeRemovesReplicas(t *testing.T) {
	nn := newTestNN(10, 3, 1)
	f, _ := nn.CreateFile("f", 10, 100, 0)
	// Pick a node hosting at least one block.
	var victim topology.NodeID = -1
	for n := 0; n < 10; n++ {
		if len(nn.NodeBlocks(topology.NodeID(n))) > 0 {
			victim = topology.NodeID(n)
			break
		}
	}
	hosted := len(nn.NodeBlocks(victim))
	rep := nn.FailNode(victim)
	if len(rep.LostPrimaries) != hosted {
		t.Fatalf("lost %d primaries, node hosted %d", len(rep.LostPrimaries), hosted)
	}
	if len(nn.NodeBlocks(victim)) != 0 {
		t.Fatal("failed node still lists blocks")
	}
	if nn.PrimaryBytesOn(victim) != 0 || nn.DynamicBytesOn(victim) != 0 {
		t.Fatal("byte accounting not cleared")
	}
	if !nn.NodeFailed(victim) || nn.FailedNodes() != 1 {
		t.Fatal("failure not recorded")
	}
	for _, b := range f.Blocks {
		for _, loc := range nn.Locations(b) {
			if loc == victim {
				t.Fatal("failed node still in locations")
			}
		}
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeIdempotent(t *testing.T) {
	nn := newTestNN(5, 2, 2)
	nn.CreateFile("f", 5, 100, 0)
	nn.FailNode(0)
	rep := nn.FailNode(0)
	if len(rep.LostPrimaries) != 0 || len(rep.LostDynamic) != 0 {
		t.Fatal("double failure reported losses")
	}
	if nn.FailedNodes() != 1 {
		t.Fatal("double failure double-counted")
	}
}

func TestFailNodeReportsDynamicLosses(t *testing.T) {
	nn := newTestNN(6, 2, 3)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	var free topology.NodeID = -1
	for n := 0; n < 6; n++ {
		if !nn.HasReplica(b, topology.NodeID(n)) {
			free = topology.NodeID(n)
			break
		}
	}
	if err := nn.AddDynamicReplica(b, free); err != nil {
		t.Fatal(err)
	}
	rep := nn.FailNode(free)
	if len(rep.LostDynamic) != 1 || rep.LostDynamic[0] != b {
		t.Fatalf("dynamic loss not reported: %+v", rep)
	}
}

func TestUnavailableBlocksReported(t *testing.T) {
	nn := newTestNN(3, 1, 4) // replication 1: any failure loses data
	f, _ := nn.CreateFile("f", 6, 100, 0)
	host := nn.Locations(f.Blocks[0])[0]
	rep := nn.FailNode(host)
	if len(rep.UnavailableBlocks) == 0 {
		t.Fatal("single-replica blocks should become unavailable")
	}
	avail, total := nn.Availability()
	if total != 6 || avail != 6-len(rep.UnavailableBlocks) {
		t.Fatalf("availability %d/%d with %d unavailable", avail, total, len(rep.UnavailableBlocks))
	}
}

func TestUnderReplicatedAndRepair(t *testing.T) {
	nn := newTestNN(6, 3, 5)
	f, _ := nn.CreateFile("f", 4, 100, 0)
	host := nn.Locations(f.Blocks[0])[0]
	nn.FailNode(host)
	under := nn.UnderReplicated()
	if len(under) == 0 {
		t.Fatal("expected under-replicated blocks after failure")
	}
	for _, b := range under {
		target, ok := nn.RepairTarget(b)
		if !ok {
			t.Fatalf("no repair target for block %d", b)
		}
		if nn.NodeFailed(target) {
			t.Fatal("repair target is a failed node")
		}
		if err := nn.AddPrimaryReplica(b, target); err != nil {
			t.Fatal(err)
		}
	}
	if left := nn.UnderReplicated(); len(left) != 0 {
		t.Fatalf("%d blocks still under-replicated after repair", len(left))
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = f
}

func TestAddPrimaryReplicaValidation(t *testing.T) {
	nn := newTestNN(4, 2, 6)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	if err := nn.AddPrimaryReplica(999, 0); err == nil {
		t.Fatal("unknown block accepted")
	}
	if err := nn.AddPrimaryReplica(b, 99); err == nil {
		t.Fatal("invalid node accepted")
	}
	holder := nn.Locations(b)[0]
	if err := nn.AddPrimaryReplica(b, holder); err == nil {
		t.Fatal("duplicate replica accepted")
	}
	var free topology.NodeID = -1
	for n := 0; n < 4; n++ {
		if !nn.HasReplica(b, topology.NodeID(n)) {
			free = topology.NodeID(n)
			break
		}
	}
	nn.FailNode(free)
	if err := nn.AddPrimaryReplica(b, free); err == nil {
		t.Fatal("replica accepted on failed node")
	}
}

func TestUpNodes(t *testing.T) {
	nn := newTestNN(5, 2, 7)
	nn.FailNode(1)
	nn.FailNode(3)
	up := nn.UpNodes()
	want := []topology.NodeID{0, 2, 4}
	if len(up) != len(want) {
		t.Fatalf("up nodes %v", up)
	}
	for i := range want {
		if up[i] != want[i] {
			t.Fatalf("up nodes %v, want %v", up, want)
		}
	}
}

func TestWeightedAvailability(t *testing.T) {
	nn := newTestNN(4, 1, 8)
	f, _ := nn.CreateFile("f", 2, 100, 0)
	b0, b1 := f.Blocks[0], f.Blocks[1]
	weights := map[BlockID]float64{b0: 9, b1: 1}
	if wa := nn.WeightedAvailability(weights); wa != 1 {
		t.Fatalf("pre-failure weighted availability %v", wa)
	}
	// Fail b1's host (if it doesn't also host b0).
	h1 := nn.Locations(b1)[0]
	if nn.HasReplica(b0, h1) {
		t.Skip("blocks co-located for this seed")
	}
	nn.FailNode(h1)
	if wa := nn.WeightedAvailability(weights); wa != 0.9 {
		t.Fatalf("weighted availability %v, want 0.9", wa)
	}
	// Empty or zero weights degrade to 1 (nothing the user reads is lost).
	if wa := nn.WeightedAvailability(nil); wa != 1 {
		t.Fatalf("nil weights availability %v", wa)
	}
	if wa := nn.WeightedAvailability(map[BlockID]float64{b0: 0}); wa != 1 {
		t.Fatalf("zero weights availability %v", wa)
	}
}

func TestPlacementAvoidsFailedNodes(t *testing.T) {
	nn := newTestNN(6, 3, 9)
	nn.FailNode(0)
	nn.FailNode(1)
	f, _ := nn.CreateFile("after", 20, 100, 0)
	for _, b := range f.Blocks {
		for _, loc := range nn.Locations(b) {
			if loc == 0 || loc == 1 {
				t.Fatal("placement used failed node")
			}
		}
		if nn.NumReplicas(b) != 3 {
			t.Fatalf("block %d got %d replicas with 4 live nodes", b, nn.NumReplicas(b))
		}
	}
}
