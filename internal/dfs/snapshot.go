package dfs

import (
	"dare/internal/snapshot"
	"dare/internal/topology"
)

// AddState folds the name node's complete metadata into t: every file,
// every block's replica set (kinds and corruption marks included), failure
// and churn state, the metadata journal's position, and the placement RNG's
// stream coordinate. Files and blocks have dense sequential IDs and are
// never deleted, so walking 0..next gives a canonical order without
// sorting; per-block location maps are small (a handful of replicas), so
// sorting each one is cheap. Derived structures (perNode mirrors, byte
// accounting, shard layout, repair scratch buffers) are excluded — they are
// rebuilt from the registry and verified against it by CheckInvariants.
func (nn *NameNode) AddState(t *snapshot.StateTable) {
	fh := snapshot.NewHash()
	for id := FileID(0); id < nn.nextFile; id++ {
		f := nn.files[id]
		fh.Str(f.Name)
		fh.F64(f.Created)
		fh.Int(len(f.Blocks))
		for _, b := range f.Blocks {
			fh.I64(int64(b))
		}
	}
	t.Add("dfs.files", fh.Sum())

	rh := snapshot.NewHash()
	ch := snapshot.NewHash()
	var nodes []topology.NodeID
	for id := BlockID(0); id < nn.nextBlock; id++ {
		sh := nn.shard(id)
		blk := sh.blocks[id]
		rh.I64(int64(blk.File))
		rh.Int(blk.Index)
		rh.I64(blk.Size)
		locs := sh.locations[id]
		nodes = nodes[:0]
		for n := range locs {
			nodes = append(nodes, n)
		}
		sortNodeIDs(nodes)
		rh.Int(len(nodes))
		for _, n := range nodes {
			rh.Int(int(n))
			rh.Int(int(locs[n]))
			ch.Bool(sh.corrupt[id][n])
		}
	}
	t.Add("dfs.registry", rh.Sum())
	t.Add("dfs.corrupt", ch.Sum())

	lh := snapshot.NewHash()
	for n := 0; n < nn.topo.N(); n++ {
		lh.Bool(nn.failed[topology.NodeID(n)])
		lh.Bool(nn.warming[topology.NodeID(n)])
	}
	lh.Bool(nn.churned)
	lh.Bool(nn.down)
	t.Add("dfs.liveness", lh.Sum())

	jh := snapshot.NewHash()
	jh.Bool(nn.journal.enabled)
	jh.Int(nn.journal.every)
	jh.Int(len(nn.journal.records))
	for _, r := range nn.journal.records {
		jh.Int(int(r.op))
		jh.I64(int64(r.file))
		jh.I64(int64(r.block))
		jh.Int(int(r.node))
		jh.Int(int(r.kind))
		jh.Int(r.index)
		jh.I64(r.size)
		jh.Str(r.name)
		jh.F64(r.created)
	}
	jh.U64(nn.journal.folded)
	jh.Int(nn.journal.checkpoints)
	jh.Bool(nn.journal.snap != nil)
	t.Add("dfs.journal", jh.Sum())

	t.Add("dfs.rng.draws", nn.rng.Draws())
}
