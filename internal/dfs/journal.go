package dfs

import (
	"errors"
	"fmt"
	"sort"

	"dare/internal/event"
	"dare/internal/topology"
)

// Control-plane fault tolerance: the name node's metadata can be journaled
// (an in-memory FsImage/EditLog pair) and the whole master can crash and
// recover. Journaling records every registry mutation as a primitive
// operation; a checkpoint folds the accumulated records into a snapshot
// so recovery replays only the tail. Recovery rebuilds the block registry
// either from checkpoint + journal replay ("journal" mode) or — as HDFS
// actually does for block *locations* — from per-node block reports that
// arrive over the following heartbeat intervals ("report" mode), during
// which the master's view of the data warms from empty.
//
// Everything here is inert by default: with the journal disabled, every
// hook is a single predictable branch and no events, allocations, or RNG
// draws happen, so committed goldens are byte-identical.

// ErrMasterDown marks metadata operations attempted while the name node
// is crashed; callers (tracker heartbeats, DARE announces, repair rounds)
// detect it with errors.Is and fail fast, retrying after recovery.
var ErrMasterDown = errors.New("master is down")

// RecoveryMode selects how a crashed name node rebuilds its registry.
type RecoveryMode uint8

const (
	// RecoverJournal rebuilds the registry from the last checkpoint plus
	// journal replay: recovery is instant and the post-recovery registry
	// is bit-identical to the pre-crash one.
	RecoverJournal RecoveryMode = iota
	// RecoverReport rebuilds the namespace (files, blocks) from the
	// journal but discards all replica locations: each live data node
	// re-reports its disk contents on its next heartbeat, so the block map
	// warms progressively and availability recovers node by node.
	RecoverReport
)

// String returns the CLI spelling of the mode.
func (m RecoveryMode) String() string {
	if m == RecoverReport {
		return "report"
	}
	return "journal"
}

// RecoveryModeFromString parses "journal" or "report".
func RecoveryModeFromString(s string) (RecoveryMode, error) {
	switch s {
	case "journal", "":
		return RecoverJournal, nil
	case "report":
		return RecoverReport, nil
	}
	return 0, fmt.Errorf("dfs: unknown recovery mode %q (want journal|report)", s)
}

// journalOp enumerates the primitive registry mutations. Every public
// mutation decomposes into these: CreateFile is opNewFile + opNewBlock +
// opAddReplica per placement, FailNode is opNodeFail + opRemoveReplica
// per scrubbed replica, ReRegisterNode is opNodeJoin + opAddReplica per
// reconciled stale replica, QuarantineReplica is opChurn + opRemoveReplica,
// a balancer move is opRemoveReplica + opAddReplica (+ opMarkCorrupt when
// the bit travels with the replica).
type journalOp uint8

const (
	opNewFile journalOp = iota
	opNewBlock
	opAddReplica
	opRemoveReplica
	opMarkCorrupt
	opNodeFail
	opNodeJoin
	opChurn
)

// journalRecord is one primitive mutation. Unused fields stay zero.
type journalRecord struct {
	op      journalOp
	file    FileID
	block   BlockID
	node    topology.NodeID
	kind    ReplicaKind
	index   int
	size    int64
	name    string
	created float64
}

// registrySnapshot is a checkpoint: a deep copy of the registry state
// that, together with the journal records appended after it, fully
// determines the name node's metadata. Derived structures (perNode,
// byte accounting, numBlocks) are rebuilt on restore rather than stored.
type registrySnapshot struct {
	files     map[FileID]*File
	blocks    map[BlockID]*Block
	locations map[BlockID]map[topology.NodeID]ReplicaKind
	corrupt   map[BlockID]map[topology.NodeID]bool
	failed    map[topology.NodeID]bool
	churned   bool
	nextFile  FileID
	nextBlock BlockID
}

// metaJournal is the name node's write-ahead metadata journal plus its
// rolling checkpoint.
type metaJournal struct {
	enabled bool
	// every triggers an automatic checkpoint once this many records have
	// accumulated since the last one (0 = checkpoint only on recovery).
	every   int
	records []journalRecord
	snap    *registrySnapshot
	// folded counts records absorbed into checkpoints; checkpoints counts
	// the rolls. Both feed observability only.
	folded      uint64
	checkpoints int
}

// diskReplica is one replica as a data node's disk holds it — captured at
// crash time so report-mode recovery can synthesize the block reports the
// (simulated) data nodes would send.
type diskReplica struct {
	block   BlockID
	kind    ReplicaKind
	corrupt bool
}

// EnableJournal turns on metadata journaling and takes an immediate
// checkpoint of the current registry, so recovery always has a base image
// regardless of when journaling started. checkpointEvery > 0 also rolls a
// checkpoint automatically each time that many records accumulate. Call
// once; enabling twice panics (it would silently discard the journal).
func (nn *NameNode) EnableJournal(checkpointEvery int) {
	if nn.journal.enabled {
		panic("dfs: metadata journal already enabled")
	}
	nn.journal.enabled = true
	nn.journal.every = checkpointEvery
	nn.journal.snap = nn.snapshot()
}

// JournalEnabled reports whether metadata journaling is on.
func (nn *NameNode) JournalEnabled() bool { return nn.journal.enabled }

// JournalRecords reports the records accumulated since the last
// checkpoint.
func (nn *NameNode) JournalRecords() int { return len(nn.journal.records) }

// JournalCheckpoints reports how many checkpoints have been rolled
// since journaling was enabled (the initial image taken by
// EnableJournal is the base, not a roll, and is not counted).
func (nn *NameNode) JournalCheckpoints() int { return nn.journal.checkpoints }

// Down reports whether the master is crashed.
func (nn *NameNode) Down() bool { return nn.down }

// Warming reports whether a report-mode recovery is still waiting for
// block reports.
func (nn *NameNode) Warming() bool { return len(nn.warming) > 0 }

// WarmingNodes reports how many data nodes have not yet delivered their
// post-recovery block report.
func (nn *NameNode) WarmingNodes() int { return len(nn.warming) }

// NeedsBlockReport reports whether a warming master is still waiting for
// this node's block report.
func (nn *NameNode) NeedsBlockReport(node topology.NodeID) bool { return nn.warming[node] }

// journalAdd appends one record. It never checkpoints inline: a public
// mutation may emit several records, and a checkpoint taken mid-operation
// would snapshot a state the remaining records then double-apply onto.
// Callers invoke journalMaybeCheckpoint at operation boundaries instead.
func (nn *NameNode) journalAdd(rec journalRecord) {
	if !nn.journal.enabled {
		return
	}
	nn.journal.records = append(nn.journal.records, rec)
}

// journalMaybeCheckpoint rolls an automatic checkpoint once the record
// threshold is reached. Public mutations call it after they have fully
// applied, so the snapshot always reflects every folded record exactly
// once.
func (nn *NameNode) journalMaybeCheckpoint() {
	if !nn.journal.enabled || nn.journal.every <= 0 || len(nn.journal.records) < nn.journal.every {
		return
	}
	nn.rollCheckpoint()
}

// rollCheckpoint folds the journal into a fresh snapshot and publishes
// JournalCheckpoint (Aux: records folded).
func (nn *NameNode) rollCheckpoint() {
	folded := len(nn.journal.records)
	nn.journal.snap = nn.snapshot()
	nn.journal.folded += uint64(folded)
	nn.journal.records = nn.journal.records[:0]
	nn.journal.checkpoints++
	if nn.bus != nil {
		ev := event.New(event.JournalCheckpoint)
		ev.Aux = int64(folded)
		nn.bus.Publish(ev)
	}
}

// snapshot deep-copies the registry's authoritative state. Block
// descriptors are immutable after creation and are shared, not copied;
// File structs are copied because their Blocks slice grows during
// CreateFile.
func (nn *NameNode) snapshot() *registrySnapshot {
	s := &registrySnapshot{
		files:     make(map[FileID]*File, len(nn.files)),
		blocks:    make(map[BlockID]*Block, nn.numBlocks),
		locations: make(map[BlockID]map[topology.NodeID]ReplicaKind, nn.numBlocks),
		failed:    make(map[topology.NodeID]bool, len(nn.failed)),
		churned:   nn.churned,
		nextFile:  nn.nextFile,
		nextBlock: nn.nextBlock,
	}
	for id, f := range nn.files {
		cp := *f
		cp.Blocks = append([]BlockID(nil), f.Blocks...)
		s.files[id] = &cp
	}
	for si := range nn.shards {
		sh := &nn.shards[si]
		for id, blk := range sh.blocks {
			s.blocks[id] = blk
		}
		for id, locs := range sh.locations {
			cp := make(map[topology.NodeID]ReplicaKind, len(locs))
			for n, k := range locs {
				cp[n] = k
			}
			s.locations[id] = cp
		}
		for id, nodes := range sh.corrupt {
			if len(nodes) == 0 {
				continue
			}
			if s.corrupt == nil {
				s.corrupt = make(map[BlockID]map[topology.NodeID]bool)
			}
			cp := make(map[topology.NodeID]bool, len(nodes))
			for n := range nodes {
				cp[n] = true
			}
			s.corrupt[id] = cp
		}
	}
	for n := range nn.failed {
		s.failed[n] = true
	}
	return s
}

// restoreSnapshot replaces the registry with a deep copy of s and rebuilds
// every derived structure (per-node mirrors, byte accounting, block
// count). The snapshot itself is never aliased: a later crash can restore
// from it again.
func (nn *NameNode) restoreSnapshot(s *registrySnapshot) {
	n := nn.topo.N()
	nn.files = make(map[FileID]*File, len(s.files))
	for id, f := range s.files {
		cp := *f
		cp.Blocks = append([]BlockID(nil), f.Blocks...)
		nn.files[id] = &cp
	}
	for si := range nn.shards {
		nn.shards[si].blocks = make(map[BlockID]*Block)
		nn.shards[si].locations = make(map[BlockID]map[topology.NodeID]ReplicaKind)
		nn.shards[si].corrupt = nil
	}
	nn.numBlocks = 0
	for id, blk := range s.blocks {
		nn.shard(id).blocks[id] = blk
		nn.numBlocks++
	}
	nn.perNode = make([]map[BlockID]ReplicaKind, n)
	for i := range nn.perNode {
		nn.perNode[i] = make(map[BlockID]ReplicaKind)
	}
	nn.primaryBytes = make([]int64, n)
	nn.dynamicBytes = make([]int64, n)
	for id, locs := range s.locations {
		cp := make(map[topology.NodeID]ReplicaKind, len(locs))
		size := s.blocks[id].Size
		for node, kind := range locs {
			cp[node] = kind
			nn.perNode[node][id] = kind
			if kind == Primary {
				nn.primaryBytes[node] += size
			} else {
				nn.dynamicBytes[node] += size
			}
		}
		nn.shard(id).locations[id] = cp
	}
	for id, nodes := range s.corrupt {
		sh := nn.shard(id)
		if sh.corrupt == nil {
			sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
		}
		cp := make(map[topology.NodeID]bool, len(nodes))
		for node := range nodes {
			cp[node] = true
		}
		sh.corrupt[id] = cp
	}
	nn.failed = make(map[topology.NodeID]bool, len(s.failed))
	for node := range s.failed {
		nn.failed[node] = true
	}
	nn.churned = s.churned
	nn.nextFile = s.nextFile
	nn.nextBlock = s.nextBlock
}

// replayJournal applies journal records to the registry with raw
// mutations: no events, no validation, no journaling — replay of a valid
// journal reconstructs exactly the state the records describe. A record
// whose referent is missing (a truncated journal) is skipped rather than
// trusted: replay is best-effort on damaged input, and the invariant
// checker judges the result.
func (nn *NameNode) replayJournal(records []journalRecord) {
	for _, r := range records {
		switch r.op {
		case opNewFile:
			if nn.files[r.file] == nil {
				nn.files[r.file] = &File{ID: r.file, Name: r.name, Created: r.created}
			}
			if r.file >= nn.nextFile {
				nn.nextFile = r.file + 1
			}
		case opNewBlock:
			f := nn.files[r.file]
			if f == nil {
				continue // truncated journal: the opNewFile record is gone
			}
			sh := nn.shard(r.block)
			if _, dup := sh.blocks[r.block]; !dup {
				sh.blocks[r.block] = &Block{ID: r.block, File: r.file, Index: r.index, Size: r.size}
				nn.numBlocks++
				f.Blocks = append(f.Blocks, r.block)
			}
			if r.block >= nn.nextBlock {
				nn.nextBlock = r.block + 1
			}
		case opAddReplica:
			sh := nn.shard(r.block)
			blk := sh.blocks[r.block]
			if blk == nil {
				continue
			}
			if _, dup := sh.locations[r.block][r.node]; dup {
				continue
			}
			if sh.locations[r.block] == nil {
				sh.locations[r.block] = make(map[topology.NodeID]ReplicaKind)
			}
			sh.locations[r.block][r.node] = r.kind
			nn.perNode[r.node][r.block] = r.kind
			if r.kind == Primary {
				nn.primaryBytes[r.node] += blk.Size
			} else {
				nn.dynamicBytes[r.node] += blk.Size
			}
		case opRemoveReplica:
			sh := nn.shard(r.block)
			kind, ok := sh.locations[r.block][r.node]
			if !ok {
				continue
			}
			nn.clearCorrupt(r.block, r.node)
			delete(sh.locations[r.block], r.node)
			delete(nn.perNode[r.node], r.block)
			if kind == Primary {
				nn.primaryBytes[r.node] -= sh.blocks[r.block].Size
			} else {
				nn.dynamicBytes[r.node] -= sh.blocks[r.block].Size
			}
		case opMarkCorrupt:
			sh := nn.shard(r.block)
			if _, ok := sh.locations[r.block][r.node]; !ok {
				continue
			}
			if sh.corrupt == nil {
				sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
			}
			if sh.corrupt[r.block] == nil {
				sh.corrupt[r.block] = make(map[topology.NodeID]bool)
			}
			sh.corrupt[r.block][r.node] = true
		case opNodeFail:
			nn.failed[r.node] = true
			nn.churned = true
		case opNodeJoin:
			delete(nn.failed, r.node)
		case opChurn:
			nn.churned = true
		}
	}
}

// Crash takes the master down. Every metadata mutation (and the
// registration paths) returns ErrMasterDown until Recover. The journal
// must be enabled first — it is the FsImage the restarted master boots
// from. Crash also captures each data node's disk contents, so a
// report-mode recovery can synthesize the block reports the nodes would
// send (their disks outlive the master process).
func (nn *NameNode) Crash() error {
	if !nn.journal.enabled {
		return fmt.Errorf("dfs: cannot crash a master without a metadata journal (EnableJournal first)")
	}
	if nn.down {
		return fmt.Errorf("dfs: master already down")
	}
	nn.down = true
	nn.diskTruth = make([][]diskReplica, nn.topo.N())
	for node := range nn.perNode {
		blocks := make([]BlockID, 0, len(nn.perNode[node]))
		for b := range nn.perNode[node] {
			blocks = append(blocks, b)
		}
		sortBlockIDs(blocks)
		disk := make([]diskReplica, 0, len(blocks))
		for _, b := range blocks {
			disk = append(disk, diskReplica{
				block:   b,
				kind:    nn.perNode[node][b],
				corrupt: nn.IsCorrupt(b, topology.NodeID(node)),
			})
		}
		nn.diskTruth[node] = disk
	}
	return nil
}

// Recover brings a crashed master back.
//
// In journal mode the registry is rebuilt from the last checkpoint plus
// journal replay — the derived structures are reconstructed from scratch,
// so the rebuild is a genuine recovery path, not a no-op — and a fresh
// checkpoint is rolled. The rebuilt state is bit-identical to the
// pre-crash state (nothing can mutate while down); the differential fuzz
// tests pin this.
//
// In report mode only the namespace survives: every replica location is
// discarded (with ReplicaRemove events in sorted order, so locality
// indices and policies coherently unlearn them) and each live node joins
// the warming set. DeliverBlockReport then restores locations node by
// node; the churned latch is set because blocks legitimately have zero
// known replicas until their holders report.
func (nn *NameNode) Recover(mode RecoveryMode) error {
	if !nn.down {
		return fmt.Errorf("dfs: master is not down")
	}
	// Rebuild from durable state in both modes: checkpoint + replay.
	nn.restoreSnapshot(nn.journal.snap)
	nn.replayJournal(nn.journal.records)
	nn.down = false
	if mode == RecoverJournal {
		nn.diskTruth = nil
		nn.rollCheckpoint()
		return nil
	}
	// Report mode: the block map did not survive; drop every location and
	// wait for the data nodes to re-report. Collect first, then publish in
	// sorted (block, node) order for a deterministic trace.
	type loc struct {
		block BlockID
		node  topology.NodeID
		kind  ReplicaKind
	}
	var dropped []loc
	for si := range nn.shards {
		sh := &nn.shards[si]
		for b, locs := range sh.locations {
			for node, kind := range locs {
				dropped = append(dropped, loc{b, node, kind})
			}
		}
	}
	sort.Slice(dropped, func(i, j int) bool {
		if dropped[i].block != dropped[j].block {
			return dropped[i].block < dropped[j].block
		}
		return dropped[i].node < dropped[j].node
	})
	for _, l := range dropped {
		sh := nn.shard(l.block)
		nn.clearCorrupt(l.block, l.node)
		delete(sh.locations[l.block], l.node)
		delete(nn.perNode[l.node], l.block)
		if l.kind == Primary {
			nn.primaryBytes[l.node] -= sh.blocks[l.block].Size
		} else {
			nn.dynamicBytes[l.node] -= sh.blocks[l.block].Size
		}
		nn.journalAdd(journalRecord{op: opRemoveReplica, block: l.block, node: l.node})
		nn.publishReplica(event.ReplicaRemove, l.block, l.node, l.kind == Dynamic)
	}
	nn.churned = true
	nn.journalAdd(journalRecord{op: opChurn})
	nn.warming = make(map[topology.NodeID]bool)
	for i := 0; i < nn.topo.N(); i++ {
		if !nn.failed[topology.NodeID(i)] {
			nn.warming[topology.NodeID(i)] = true
		}
	}
	if len(nn.warming) == 0 {
		nn.finishWarming()
	}
	return nil
}

// DeliverBlockReport applies one data node's block report to a warming
// master: every replica the node's disk holds (captured at crash time) is
// registered, corruption marks included, with the usual ReplicaAdd events
// so locality indices and policies re-learn the copies. It publishes
// BlockReport (Aux: replicas reported) and, when the last expected node
// has reported, rolls a post-recovery checkpoint. Reports from nodes the
// master is not waiting on are rejected.
func (nn *NameNode) DeliverBlockReport(node topology.NodeID) (int, error) {
	if nn.down {
		return 0, fmt.Errorf("dfs: node %d block report: %w", node, ErrMasterDown)
	}
	if !nn.warming[node] {
		return 0, fmt.Errorf("dfs: master is not expecting a block report from node %d", node)
	}
	var disk []diskReplica
	if int(node) < len(nn.diskTruth) {
		disk = nn.diskTruth[node]
	}
	reported := 0
	for _, d := range disk {
		sh := nn.shard(d.block)
		blk := sh.blocks[d.block]
		if blk == nil {
			continue // namespace dropped the block meanwhile
		}
		if _, exists := sh.locations[d.block][node]; exists {
			continue
		}
		if sh.locations[d.block] == nil {
			sh.locations[d.block] = make(map[topology.NodeID]ReplicaKind)
		}
		sh.locations[d.block][node] = d.kind
		nn.perNode[node][d.block] = d.kind
		if d.kind == Primary {
			nn.primaryBytes[node] += blk.Size
		} else {
			nn.dynamicBytes[node] += blk.Size
		}
		nn.journalAdd(journalRecord{op: opAddReplica, block: d.block, node: node, kind: d.kind})
		nn.publishReplica(event.ReplicaAdd, d.block, node, d.kind == Dynamic)
		if d.corrupt {
			// The bad bytes are still on disk; the restarted master just
			// does not know yet — the mark models the disk, and re-applying
			// it keeps detection-on-read working across the failover.
			if sh.corrupt == nil {
				sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
			}
			if sh.corrupt[d.block] == nil {
				sh.corrupt[d.block] = make(map[topology.NodeID]bool)
			}
			sh.corrupt[d.block][node] = true
			nn.journalAdd(journalRecord{op: opMarkCorrupt, block: d.block, node: node})
		}
		reported++
	}
	delete(nn.warming, node)
	if nn.bus != nil {
		ev := event.New(event.BlockReport)
		ev.Node = int32(node)
		ev.Rack = int32(nn.topo.Rack(node))
		ev.Aux = int64(reported)
		nn.bus.Publish(ev)
	}
	if len(nn.warming) == 0 {
		nn.finishWarming()
	}
	return reported, nil
}

// finishWarming ends a report-mode recovery: the view is as warm as it
// will get, so fold the reported state into a fresh checkpoint.
func (nn *NameNode) finishWarming() {
	nn.warming = nil
	nn.diskTruth = nil
	nn.rollCheckpoint()
}
