package dfs

import (
	"fmt"

	"dare/internal/snapshot"
	"dare/internal/topology"
)

// State image for the name node: the full metadata registry (files,
// blocks, replica locations, corruption marks), liveness (failed nodes,
// warming set, churn/down latches), the metadata journal with its rolling
// checkpoint, the crash-time disk truth, and the placement RNG stream.
// Derived structures (perNode mirrors, byte accounting, numBlocks) are
// rebuilt on decode exactly as master recovery rebuilds them — the decode
// path reuses the same canonical orders AddState fingerprints, so a
// restored registry hashes identically to the live one it images.

// encodeRegistry writes one registry's authoritative state: files and
// blocks in dense ID order, per-block locations node-sorted with the
// corruption bit inline (corrupt is a subset of locations by invariant).
func encodeRegistry(e *snapshot.Enc,
	nextFile FileID, nextBlock BlockID,
	files map[FileID]*File,
	block func(BlockID) *Block,
	locations func(BlockID) map[topology.NodeID]ReplicaKind,
	corrupt func(BlockID, topology.NodeID) bool,
	failed map[topology.NodeID]bool,
	churned bool, n int,
) {
	e.I64(int64(nextFile))
	e.I64(int64(nextBlock))
	for id := FileID(0); id < nextFile; id++ {
		f := files[id]
		e.Str(f.Name)
		e.F64(f.Created)
		e.U32(uint32(len(f.Blocks)))
		for _, b := range f.Blocks {
			e.I64(int64(b))
		}
	}
	var nodes []topology.NodeID
	for id := BlockID(0); id < nextBlock; id++ {
		blk := block(id)
		e.I64(int64(blk.File))
		e.Int(blk.Index)
		e.I64(blk.Size)
		locs := locations(id)
		nodes = nodes[:0]
		for node := range locs {
			nodes = append(nodes, node)
		}
		sortNodeIDs(nodes)
		e.U32(uint32(len(nodes)))
		for _, node := range nodes {
			e.Int(int(node))
			e.U8(uint8(locs[node]))
			e.Bool(corrupt(id, node))
		}
	}
	for node := 0; node < n; node++ {
		e.Bool(failed[topology.NodeID(node)])
	}
	e.Bool(churned)
}

// decodedRegistry is the raw result of decodeRegistry, applied to either
// the live registry or a journal checkpoint.
type decodedRegistry struct {
	nextFile  FileID
	nextBlock BlockID
	files     map[FileID]*File
	blocks    map[BlockID]*Block
	locations map[BlockID]map[topology.NodeID]ReplicaKind
	corrupt   map[BlockID]map[topology.NodeID]bool
	failed    map[topology.NodeID]bool
	churned   bool
}

func decodeRegistry(d *snapshot.Dec, n int) (*decodedRegistry, error) {
	r := &decodedRegistry{
		nextFile:  FileID(d.I64()),
		nextBlock: BlockID(d.I64()),
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	r.files = make(map[FileID]*File, r.nextFile)
	for id := FileID(0); id < r.nextFile; id++ {
		f := &File{ID: id, Name: d.Str(), Created: d.F64()}
		nb := d.Count(8)
		if d.Err() != nil {
			return nil, d.Err()
		}
		f.Blocks = make([]BlockID, nb)
		for i := range f.Blocks {
			f.Blocks[i] = BlockID(d.I64())
		}
		r.files[id] = f
	}
	r.blocks = make(map[BlockID]*Block, r.nextBlock)
	r.locations = make(map[BlockID]map[topology.NodeID]ReplicaKind, r.nextBlock)
	for id := BlockID(0); id < r.nextBlock; id++ {
		blk := &Block{ID: id, File: FileID(d.I64()), Index: d.Int(), Size: d.I64()}
		r.blocks[id] = blk
		nl := d.Count(8)
		if d.Err() != nil {
			return nil, d.Err()
		}
		locs := make(map[topology.NodeID]ReplicaKind, nl)
		for i := 0; i < nl; i++ {
			node := topology.NodeID(d.Int())
			kind := ReplicaKind(d.U8())
			if d.Bool() {
				if r.corrupt == nil {
					r.corrupt = make(map[BlockID]map[topology.NodeID]bool)
				}
				if r.corrupt[id] == nil {
					r.corrupt[id] = make(map[topology.NodeID]bool)
				}
				r.corrupt[id][node] = true
			}
			locs[node] = kind
		}
		r.locations[id] = locs
	}
	r.failed = make(map[topology.NodeID]bool)
	for node := 0; node < n; node++ {
		if d.Bool() {
			r.failed[topology.NodeID(node)] = true
		}
	}
	r.churned = d.Bool()
	return r, d.Err()
}

// EncodeState serializes the name node's complete mutable state.
func (nn *NameNode) EncodeState(e *snapshot.Enc) error {
	n := nn.topo.N()
	encodeRegistry(e, nn.nextFile, nn.nextBlock, nn.files,
		func(id BlockID) *Block { return nn.shard(id).blocks[id] },
		func(id BlockID) map[topology.NodeID]ReplicaKind { return nn.shard(id).locations[id] },
		func(id BlockID, node topology.NodeID) bool { return nn.shard(id).corrupt[id][node] },
		nn.failed, nn.churned, n)

	e.Bool(nn.down)
	e.Bool(nn.warming != nil)
	if nn.warming != nil {
		for node := 0; node < n; node++ {
			e.Bool(nn.warming[topology.NodeID(node)])
		}
	}
	e.Bool(nn.diskTruth != nil)
	if nn.diskTruth != nil {
		e.U32(uint32(len(nn.diskTruth)))
		for _, disk := range nn.diskTruth {
			e.U32(uint32(len(disk)))
			for _, dr := range disk {
				e.I64(int64(dr.block))
				e.U8(uint8(dr.kind))
				e.Bool(dr.corrupt)
			}
		}
	}

	j := &nn.journal
	e.Bool(j.enabled)
	e.Int(j.every)
	e.U32(uint32(len(j.records)))
	for _, r := range j.records {
		e.U8(uint8(r.op))
		e.I64(int64(r.file))
		e.I64(int64(r.block))
		e.Int(int(r.node))
		e.U8(uint8(r.kind))
		e.Int(r.index)
		e.I64(r.size)
		e.Str(r.name)
		e.F64(r.created)
	}
	e.U64(j.folded)
	e.Int(j.checkpoints)
	e.Bool(j.snap != nil)
	if j.snap != nil {
		s := j.snap
		encodeRegistry(e, s.nextFile, s.nextBlock, s.files,
			func(id BlockID) *Block { return s.blocks[id] },
			func(id BlockID) map[topology.NodeID]ReplicaKind { return s.locations[id] },
			func(id BlockID, node topology.NodeID) bool { return s.corrupt[id][node] },
			s.failed, s.churned, n)
	}
	return nn.rng.EncodeState(e)
}

// DecodeState restores the name node from an EncodeState image. The name
// node must be freshly constructed over the same topology and replication
// factor; every derived structure (perNode mirrors, byte accounting,
// block count) is rebuilt from the decoded registry, the same path master
// recovery exercises.
func (nn *NameNode) DecodeState(d *snapshot.Dec) error {
	n := nn.topo.N()
	reg, err := decodeRegistry(d, n)
	if err != nil {
		return fmt.Errorf("dfs: registry state: %w", err)
	}
	nn.files = reg.files
	for si := range nn.shards {
		nn.shards[si].blocks = make(map[BlockID]*Block)
		nn.shards[si].locations = make(map[BlockID]map[topology.NodeID]ReplicaKind)
		nn.shards[si].corrupt = nil
	}
	nn.numBlocks = 0
	nn.perNode = make([]map[BlockID]ReplicaKind, n)
	for i := range nn.perNode {
		nn.perNode[i] = make(map[BlockID]ReplicaKind)
	}
	nn.primaryBytes = make([]int64, n)
	nn.dynamicBytes = make([]int64, n)
	for id, blk := range reg.blocks {
		nn.shard(id).blocks[id] = blk
		nn.numBlocks++
	}
	for id, locs := range reg.locations {
		size := reg.blocks[id].Size
		for node, kind := range locs {
			nn.perNode[node][id] = kind
			if kind == Primary {
				nn.primaryBytes[node] += size
			} else {
				nn.dynamicBytes[node] += size
			}
		}
		nn.shard(id).locations[id] = locs
	}
	for id, nodes := range reg.corrupt {
		sh := nn.shard(id)
		if sh.corrupt == nil {
			sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
		}
		sh.corrupt[id] = nodes
	}
	nn.failed = reg.failed
	nn.churned = reg.churned
	nn.nextFile = reg.nextFile
	nn.nextBlock = reg.nextBlock

	nn.down = d.Bool()
	if d.Bool() {
		nn.warming = make(map[topology.NodeID]bool)
		for node := 0; node < n; node++ {
			if d.Bool() {
				nn.warming[topology.NodeID(node)] = true
			}
		}
	} else {
		nn.warming = nil
	}
	if d.Bool() {
		nd := d.Count(4)
		if d.Err() != nil {
			return d.Err()
		}
		nn.diskTruth = make([][]diskReplica, nd)
		for i := range nn.diskTruth {
			nr := d.Count(8)
			if d.Err() != nil {
				return d.Err()
			}
			disk := make([]diskReplica, nr)
			for k := range disk {
				disk[k] = diskReplica{
					block:   BlockID(d.I64()),
					kind:    ReplicaKind(d.U8()),
					corrupt: d.Bool(),
				}
			}
			nn.diskTruth[i] = disk
		}
	} else {
		nn.diskTruth = nil
	}

	j := &nn.journal
	j.enabled = d.Bool()
	j.every = d.Int()
	nr := d.Count(8)
	if d.Err() != nil {
		return d.Err()
	}
	j.records = make([]journalRecord, nr)
	for i := range j.records {
		j.records[i] = journalRecord{
			op:      journalOp(d.U8()),
			file:    FileID(d.I64()),
			block:   BlockID(d.I64()),
			node:    topology.NodeID(d.Int()),
			kind:    ReplicaKind(d.U8()),
			index:   d.Int(),
			size:    d.I64(),
			name:    d.Str(),
			created: d.F64(),
		}
	}
	j.folded = d.U64()
	j.checkpoints = d.Int()
	if d.Bool() {
		sreg, err := decodeRegistry(d, n)
		if err != nil {
			return fmt.Errorf("dfs: journal checkpoint state: %w", err)
		}
		snap := &registrySnapshot{
			files:     sreg.files,
			blocks:    sreg.blocks,
			locations: sreg.locations,
			corrupt:   sreg.corrupt,
			failed:    sreg.failed,
			churned:   sreg.churned,
			nextFile:  sreg.nextFile,
			nextBlock: sreg.nextBlock,
		}
		j.snap = snap
	} else {
		j.snap = nil
	}
	if err := nn.rng.DecodeState(d); err != nil {
		return fmt.Errorf("dfs: rng state: %w", err)
	}
	return d.Err()
}
