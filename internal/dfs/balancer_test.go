package dfs

import (
	"testing"
	"testing/quick"

	"dare/internal/stats"
	"dare/internal/topology"
)

// skewedNN builds a name node with deliberately imbalanced storage: all
// replicas start on the first few nodes.
func skewedNN(t *testing.T, nodes int, seed uint64) *NameNode {
	t.Helper()
	topo := topology.NewDedicated(nodes, 0, stats.Constant{V: 0})
	nn := NewNameNode(topo, 1, stats.NewRNG(seed))
	f, err := nn.CreateFile("f", 40, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Concentrate everything on nodes 0 and 1 using the balancer's own
	// move primitive (tested separately below).
	b := NewBalancer(nn)
	for i, blk := range f.Blocks {
		src := nn.Locations(blk)[0]
		dst := topology.NodeID(i % 2)
		if src == dst || nn.HasReplica(blk, dst) {
			continue
		}
		if err := b.move(blk, src, dst); err != nil {
			t.Fatal(err)
		}
	}
	return nn
}

func TestBalancerReducesStorageCV(t *testing.T) {
	nn := skewedNN(t, 8, 1)
	b := NewBalancer(nn)
	before := b.StorageCV()
	if !b.MovesNeeded() {
		t.Fatalf("skewed cluster (cv %.2f) should need balancing", before)
	}
	moves, movedBytes, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 || movedBytes == 0 {
		t.Fatal("balancer made no moves")
	}
	after := b.StorageCV()
	if after >= before {
		t.Fatalf("cv did not improve: %.3f -> %.3f", before, after)
	}
	if b.MovesNeeded() {
		t.Fatalf("still unbalanced after Run (cv %.3f)", after)
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerPreservesReplicaCounts(t *testing.T) {
	nn := skewedNN(t, 8, 2)
	counts := map[BlockID]int{}
	for si := range nn.shards {
		for id := range nn.shards[si].blocks {
			counts[id] = nn.NumReplicas(id)
		}
	}
	if _, _, err := NewBalancer(nn).Run(); err != nil {
		t.Fatal(err)
	}
	for id, want := range counts {
		if got := nn.NumReplicas(id); got != want {
			t.Fatalf("block %d replica count changed: %d -> %d", id, want, got)
		}
	}
}

func TestBalancerRespectsMaxMoves(t *testing.T) {
	nn := skewedNN(t, 8, 3)
	b := NewBalancer(nn)
	b.MaxMoves = 3
	moves, _, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if moves > 3 {
		t.Fatalf("made %d moves with MaxMoves=3", moves)
	}
}

func TestBalancerNoopOnBalanced(t *testing.T) {
	topo := topology.NewDedicated(6, 0, stats.Constant{V: 0})
	nn := NewNameNode(topo, 3, stats.NewRNG(4))
	nn.CreateFile("f", 60, 100, 0) // random placement is roughly balanced
	b := NewBalancer(nn)
	b.Threshold = 0.9 // generous: anything mild counts as balanced
	if b.MovesNeeded() {
		t.Skip("placement unusually skewed for this seed")
	}
	moves, _, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if moves != 0 {
		t.Fatalf("balanced cluster still moved %d blocks", moves)
	}
}

func TestBalancerSkipsFailedNodes(t *testing.T) {
	nn := skewedNN(t, 8, 5)
	nn.FailNode(7) // an empty node that must NOT receive moves
	b := NewBalancer(nn)
	if _, _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if len(nn.NodeBlocks(7)) != 0 {
		t.Fatal("balancer moved blocks onto a failed node")
	}
}

func TestBalancerEmptyCluster(t *testing.T) {
	topo := topology.NewDedicated(4, 0, stats.Constant{V: 0})
	nn := NewNameNode(topo, 1, stats.NewRNG(6))
	b := NewBalancer(nn)
	if b.MovesNeeded() {
		t.Fatal("empty cluster cannot need balancing")
	}
	if moves, _, err := b.Run(); err != nil || moves != 0 {
		t.Fatalf("empty cluster: moves=%d err=%v", moves, err)
	}
	if b.StorageCV() != 0 {
		t.Fatal("empty cluster cv should be 0")
	}
}

func TestBalancerTerminatesProperty(t *testing.T) {
	// Run must terminate and never corrupt metadata, for any placement
	// seed and any threshold.
	f := func(seed uint64, thrRaw uint8) bool {
		topo := topology.NewDedicated(6, 0, stats.Constant{V: 0})
		nn := NewNameNode(topo, 2, stats.NewRNG(seed))
		if _, err := nn.CreateFile("f", 30, 64, 0); err != nil {
			return false
		}
		b := NewBalancer(nn)
		b.Threshold = 0.05 + float64(thrRaw%50)/100
		if _, _, err := b.Run(); err != nil {
			return false
		}
		return nn.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
