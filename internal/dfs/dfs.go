// Package dfs models the distributed file system that co-exists with the
// compute nodes in a MapReduce cluster (GFS/HDFS, §II-A). Using HDFS
// terminology as the paper does: a name node holds all metadata (files,
// blocks, replica locations), data nodes hold the block replicas.
//
// Files are read-only sequences of fixed-size blocks. Each block starts
// with ReplicationFactor pinned ("primary") replicas placed by the
// rack-aware default policy; DARE later adds and evicts *dynamic* replicas
// on top of those. Dynamic replicas are first-order replicas — the name
// node registers them and the scheduler sees them like any other (§IV-B) —
// but only dynamic replicas may be evicted.
package dfs

import (
	"errors"
	"fmt"
	"sort"

	"dare/internal/event"
	"dare/internal/policy"
	"dare/internal/stats"
	"dare/internal/topology"
)

// ErrNodeDown marks metadata operations addressed to a failed data node;
// callers racing a failure (e.g. a DARE announce whose node died after the
// decision) can detect it with errors.Is and drop the operation.
var ErrNodeDown = errors.New("node is down")

// BlockID identifies a block cluster-wide.
type BlockID int64

// FileID identifies a file cluster-wide.
type FileID int32

// ReplicaKind distinguishes pinned primaries from DARE-created replicas.
type ReplicaKind int8

const (
	// Primary replicas implement the static replication factor; they are
	// never evicted.
	Primary ReplicaKind = iota
	// Dynamic replicas are created by DARE from remote reads and may be
	// evicted to respect the replication budget.
	Dynamic
)

// Block is one fixed-size unit of a file.
type Block struct {
	ID    BlockID
	File  FileID
	Index int
	Size  int64
}

// File is a named, read-only sequence of blocks.
type File struct {
	ID     FileID
	Name   string
	Blocks []BlockID
	// Created is the simulated creation time (seconds); used by the trace
	// analyzer for age-at-access distributions.
	Created float64
}

// NameNode is the master metadata service. It is single-threaded like the
// simulation that drives it.
type NameNode struct {
	topo        topology.Topology
	rng         *stats.RNG
	replication int

	files map[FileID]*File
	// shards partitions the per-block registry (block descriptors, replica
	// locations, corruption marks) by block-ID hash, so block lookups and
	// mutations touch one shard-sized map and registry-wide scans
	// (UnderReplicated, Availability, CheckInvariants) walk bounded maps
	// instead of one cluster-sized one. Block IDs are sequential, so the
	// low-bit mask spreads blocks round-robin and shards stay balanced.
	// Shard count is a power of two scaled to the node count (one shard
	// for paper-scale clusters — identical layout to the unsharded code).
	shards    []registryShard
	shardMask uint64
	numBlocks int
	// perNode[n] tracks what node n stores, for placement and for the
	// popularity-index metric (Fig. 11).
	perNode []map[BlockID]ReplicaKind
	// primaryBytes[n] and dynamicBytes[n] track storage accounting.
	primaryBytes []int64
	dynamicBytes []int64

	// failed marks downed data nodes; placement avoids them.
	failed map[topology.NodeID]bool
	// churned latches once any node has ever failed. Unlike len(failed) it
	// survives recovery: a recovered node rejoins empty, so blocks may stay
	// under-replicated (or lost for good) even with every node back up, and
	// the replication-floor invariant must stay relaxed.
	churned bool

	// bus, when set, receives an event for every replica-set mutation the
	// name node performs: primary placement, dynamic replica
	// announce/evict, failure loss, repair, balancer moves, and node
	// fail/recover transitions. A nil bus publishes nothing.
	bus *event.Bus

	nextFile  FileID
	nextBlock BlockID

	// Control-plane fault tolerance (journal.go): the metadata journal with
	// its rolling checkpoint, the crashed latch, and — while a report-mode
	// recovery warms — the set of nodes whose block reports are still
	// outstanding plus the crash-time capture of every node's disk
	// contents. All zero-valued (and zero-cost) unless EnableJournal ran.
	journal   metaJournal
	down      bool
	warming   map[topology.NodeID]bool
	diskTruth [][]diskReplica

	// repairTerms ranks repair-target candidates lexicographically (see
	// RepairTarget); the two score buffers are reused across candidates so
	// ranking allocates nothing per repair.
	repairTerms []policy.Term
	repairScore []float64
	repairBest  []float64
}

// registryShard is one hash-partition of the block registry.
type registryShard struct {
	blocks map[BlockID]*Block
	// locations[b][n] records that node n holds a replica of b and whether
	// it is pinned.
	locations map[BlockID]map[topology.NodeID]ReplicaKind
	// corrupt marks replicas whose (modelled) checksum no longer matches:
	// corrupt[b][n] means node n's copy of b is silently bad. Metadata
	// still lists the replica — corruption is latent until a reader
	// verifies the checksum and quarantines it (see integrity.go). Lazily
	// allocated: nil until the first injection into this shard.
	corrupt map[BlockID]map[topology.NodeID]bool
}

// registryShards picks the shard count for an n-node cluster: a power of
// two, 1 for small clusters (so paper-scale experiments keep the exact
// historical map layout), growing with the node count and capped at 1024.
func registryShards(n int) int {
	s := 1
	for s < n/32 && s < 1024 {
		s <<= 1
	}
	return s
}

// shard routes a block to its registry partition.
func (nn *NameNode) shard(b BlockID) *registryShard {
	return &nn.shards[uint64(b)&nn.shardMask]
}

// locs returns b's location map (nil if untracked).
func (nn *NameNode) locs(b BlockID) map[topology.NodeID]ReplicaKind {
	return nn.shard(b).locations[b]
}

// NewNameNode creates a name node for the given topology with the given
// static replication factor. rng drives placement randomness and must be a
// dedicated sub-stream of the experiment seed.
func NewNameNode(topo topology.Topology, replication int, rng *stats.RNG) *NameNode {
	if replication < 1 {
		panic(fmt.Sprintf("dfs: replication factor must be >= 1, got %d", replication))
	}
	n := topo.N()
	nn := &NameNode{
		topo:         topo,
		rng:          rng,
		replication:  replication,
		files:        make(map[FileID]*File),
		shards:       make([]registryShard, registryShards(n)),
		perNode:      make([]map[BlockID]ReplicaKind, n),
		primaryBytes: make([]int64, n),
		dynamicBytes: make([]int64, n),
		repairTerms:  policy.DefaultRepairTerms(),
	}
	nn.shardMask = uint64(len(nn.shards) - 1)
	for i := range nn.shards {
		nn.shards[i].blocks = make(map[BlockID]*Block)
		nn.shards[i].locations = make(map[BlockID]map[topology.NodeID]ReplicaKind)
	}
	for i := range nn.perNode {
		nn.perNode[i] = make(map[BlockID]ReplicaKind)
	}
	nn.failed = make(map[topology.NodeID]bool)
	return nn
}

// SetBus installs the event bus the name node publishes to. Wiring
// happens exactly once, at cluster construction; installing a second bus
// panics — a silent overwrite would detach every subscriber registered so
// far (the failure mode the old single-slot listener setter had).
func (nn *NameNode) SetBus(bus *event.Bus) {
	if nn.bus != nil {
		panic("dfs: event bus already installed on this name node")
	}
	nn.bus = bus
}

// publishReplica emits one replica-set mutation on the bus, annotated with
// the block's file, size, and the holding node's rack. Flag marks dynamic
// (budget-governed) copies.
func (nn *NameNode) publishReplica(kind event.Kind, b BlockID, node topology.NodeID, dynamic bool) {
	if nn.bus == nil {
		return
	}
	ev := event.New(kind)
	ev.Block = int64(b)
	ev.Node = int32(node)
	ev.Rack = int32(nn.topo.Rack(node))
	ev.Flag = dynamic
	if blk := nn.shard(b).blocks[b]; blk != nil {
		ev.File = int32(blk.File)
		ev.Aux = blk.Size
	}
	nn.bus.Publish(ev)
}

// N reports the number of data nodes.
func (nn *NameNode) N() int { return nn.topo.N() }

// Topology exposes the cluster layout (for schedulers and cost models).
func (nn *NameNode) Topology() topology.Topology { return nn.topo }

// ReplicationFactor reports the static replication factor.
func (nn *NameNode) ReplicationFactor() int { return nn.replication }

// CreateFile allocates a file of numBlocks blocks of blockSize bytes at
// simulated time now, placing primary replicas with the rack-aware default
// policy. It returns the new file.
func (nn *NameNode) CreateFile(name string, numBlocks int, blockSize int64, now float64) (*File, error) {
	if numBlocks < 1 {
		return nil, fmt.Errorf("dfs: file %q must have at least one block", name)
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("dfs: file %q block size must be positive", name)
	}
	if nn.down {
		return nil, fmt.Errorf("dfs: create %q: %w", name, ErrMasterDown)
	}
	f := &File{ID: nn.nextFile, Name: name, Created: now}
	nn.nextFile++
	nn.journalAdd(journalRecord{op: opNewFile, file: f.ID, name: name, created: now})
	for i := 0; i < numBlocks; i++ {
		b := &Block{ID: nn.nextBlock, File: f.ID, Index: i, Size: blockSize}
		nn.nextBlock++
		nn.shard(b.ID).blocks[b.ID] = b
		nn.numBlocks++
		f.Blocks = append(f.Blocks, b.ID)
		nn.journalAdd(journalRecord{op: opNewBlock, file: f.ID, block: b.ID, index: i, size: blockSize})
		nn.placePrimaries(b)
	}
	nn.files[f.ID] = f
	nn.journalMaybeCheckpoint()
	return f, nil
}

// placePrimaries implements the HDFS default placement: first replica on a
// random node, second on a node in a different rack when one exists, third
// in the same rack as the second; any further replicas go to random
// distinct nodes. Fewer nodes than replicas degrades gracefully.
func (nn *NameNode) placePrimaries(b *Block) {
	n := nn.topo.N()
	want := nn.replication
	if want > n {
		want = n
	}
	chosen := make([]topology.NodeID, 0, want)
	used := make(map[topology.NodeID]bool, want)
	pick := func(ok func(topology.NodeID) bool) (topology.NodeID, bool) {
		// Bounded random probing, then linear fallback keeps placement
		// O(n) worst-case while staying random in the common case. Downed
		// nodes never receive new replicas.
		usable := func(cand topology.NodeID) bool {
			return !used[cand] && !nn.failed[cand] && (ok == nil || ok(cand))
		}
		for t := 0; t < 8; t++ {
			if cand := topology.NodeID(nn.rng.Intn(n)); usable(cand) {
				return cand, true
			}
		}
		start := nn.rng.Intn(n)
		for i := 0; i < n; i++ {
			if cand := topology.NodeID((start + i) % n); usable(cand) {
				return cand, true
			}
		}
		return 0, false
	}

	first, ok := pick(nil)
	if !ok {
		return
	}
	chosen = append(chosen, first)
	used[first] = true

	if want >= 2 {
		r0 := nn.topo.Rack(first)
		second, ok := pick(func(c topology.NodeID) bool { return nn.topo.Rack(c) != r0 })
		if !ok {
			second, ok = pick(nil) // single-rack cluster: any distinct node
		}
		if ok {
			chosen = append(chosen, second)
			used[second] = true
		}
	}
	if want >= 3 && len(chosen) >= 2 {
		r1 := nn.topo.Rack(chosen[1])
		third, ok := pick(func(c topology.NodeID) bool { return nn.topo.Rack(c) == r1 })
		if !ok {
			third, ok = pick(nil)
		}
		if ok {
			chosen = append(chosen, third)
			used[third] = true
		}
	}
	for len(chosen) < want {
		extra, ok := pick(nil)
		if !ok {
			break
		}
		chosen = append(chosen, extra)
		used[extra] = true
	}

	locs := make(map[topology.NodeID]ReplicaKind, len(chosen))
	for _, node := range chosen {
		locs[node] = Primary
		nn.perNode[node][b.ID] = Primary
		nn.primaryBytes[node] += b.Size
		nn.journalAdd(journalRecord{op: opAddReplica, block: b.ID, node: node, kind: Primary})
	}
	nn.shard(b.ID).locations[b.ID] = locs
	for _, node := range chosen {
		nn.publishReplica(event.ReplicaAdd, b.ID, node, false)
	}
}

// File returns a file by ID, or nil.
func (nn *NameNode) File(id FileID) *File { return nn.files[id] }

// Files reports the number of files.
func (nn *NameNode) Files() int { return len(nn.files) }

// Block returns a block by ID, or nil.
func (nn *NameNode) Block(id BlockID) *Block { return nn.shard(id).blocks[id] }

// Blocks reports the number of blocks.
func (nn *NameNode) Blocks() int { return nn.numBlocks }

// Locations returns the nodes currently holding replicas of b. The slice
// is freshly allocated and sorted by node ID for determinism.
func (nn *NameNode) Locations(b BlockID) []topology.NodeID {
	locs := nn.locs(b)
	out := make([]topology.NodeID, 0, len(locs))
	for n := range locs {
		out = append(out, n)
	}
	sortNodeIDs(out)
	return out
}

// ForEachLocation calls fn for every node currently holding a replica of
// b, in unspecified (map) order, stopping early if fn returns false. It is
// the allocation-free companion of Locations; callers must derive only
// order-independent facts from the iteration (existence, counts, extrema
// with a total tie-break) to preserve determinism.
func (nn *NameNode) ForEachLocation(b BlockID, fn func(node topology.NodeID, kind ReplicaKind) bool) {
	for n, k := range nn.locs(b) {
		if !fn(n, k) {
			return
		}
	}
}

// HasReplica reports whether node holds any replica of b.
func (nn *NameNode) HasReplica(b BlockID, node topology.NodeID) bool {
	_, ok := nn.locs(b)[node]
	return ok
}

// ReplicaKindAt reports the kind of replica node holds for b.
func (nn *NameNode) ReplicaKindAt(b BlockID, node topology.NodeID) (ReplicaKind, bool) {
	k, ok := nn.locs(b)[node]
	return k, ok
}

// NumReplicas reports how many replicas b currently has.
func (nn *NameNode) NumReplicas(b BlockID) int { return len(nn.locs(b)) }

// AddDynamicReplica registers a DARE-created replica of b at node. Adding
// where any replica already exists is an error — callers must check
// HasReplica first (DARE only replicates after a *remote* read, so a local
// copy cannot exist).
func (nn *NameNode) AddDynamicReplica(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	blk := sh.blocks[b]
	if blk == nil {
		return fmt.Errorf("dfs: unknown block %d", b)
	}
	if int(node) < 0 || int(node) >= nn.topo.N() {
		return fmt.Errorf("dfs: invalid node %d", node)
	}
	if nn.down {
		return fmt.Errorf("dfs: add replica of block %d: %w", b, ErrMasterDown)
	}
	if nn.failed[node] {
		return fmt.Errorf("dfs: node %d: %w", node, ErrNodeDown)
	}
	if _, exists := sh.locations[b][node]; exists {
		return fmt.Errorf("dfs: node %d already holds a replica of block %d", node, b)
	}
	sh.locations[b][node] = Dynamic
	nn.perNode[node][b] = Dynamic
	nn.dynamicBytes[node] += blk.Size
	nn.journalAdd(journalRecord{op: opAddReplica, block: b, node: node, kind: Dynamic})
	nn.publishReplica(event.ReplicaAdd, b, node, true)
	nn.journalMaybeCheckpoint()
	return nil
}

// RemoveDynamicReplica evicts a dynamic replica. Removing a primary
// replica is an error: DARE never touches the static replication factor.
func (nn *NameNode) RemoveDynamicReplica(b BlockID, node topology.NodeID) error {
	sh := nn.shard(b)
	k, ok := sh.locations[b][node]
	if !ok {
		return fmt.Errorf("dfs: node %d holds no replica of block %d", node, b)
	}
	if k != Dynamic {
		return fmt.Errorf("dfs: refusing to remove primary replica of block %d at node %d", b, node)
	}
	if nn.down {
		return fmt.Errorf("dfs: evict replica of block %d: %w", b, ErrMasterDown)
	}
	nn.clearCorrupt(b, node)
	delete(sh.locations[b], node)
	delete(nn.perNode[node], b)
	nn.dynamicBytes[node] -= sh.blocks[b].Size
	nn.journalAdd(journalRecord{op: opRemoveReplica, block: b, node: node})
	nn.publishReplica(event.ReplicaRemove, b, node, true)
	nn.journalMaybeCheckpoint()
	return nil
}

// NodeBlocks returns the blocks stored on node (any kind), sorted by ID.
func (nn *NameNode) NodeBlocks(node topology.NodeID) []BlockID {
	m := nn.perNode[node]
	out := make([]BlockID, 0, len(m))
	for b := range m {
		out = append(out, b)
	}
	sortBlockIDs(out)
	return out
}

// PrimaryBytesOn reports bytes of pinned replicas on node.
func (nn *NameNode) PrimaryBytesOn(node topology.NodeID) int64 { return nn.primaryBytes[node] }

// DynamicBytesOn reports bytes of dynamic replicas on node.
func (nn *NameNode) DynamicBytesOn(node topology.NodeID) int64 { return nn.dynamicBytes[node] }

// TotalPrimaryBytes reports pinned bytes across the cluster; the
// replication budget is defined relative to this.
func (nn *NameNode) TotalPrimaryBytes() int64 {
	var total int64
	for _, b := range nn.primaryBytes {
		total += b
	}
	return total
}

// TotalDynamicBytes reports DARE-created bytes across the cluster.
func (nn *NameNode) TotalDynamicBytes() int64 {
	var total int64
	for _, b := range nn.dynamicBytes {
		total += b
	}
	return total
}

// CheckInvariants validates internal consistency; tests call it after
// simulations and the churn harness calls it after every failure/recovery
// event. It verifies that every block keeps at least min(replication, N)
// replicas, that byte accounting matches the location maps, that the
// per-node and per-block views agree, and that no replica lives on a down
// node.
func (nn *NameNode) CheckInvariants() error {
	minRepl := nn.replication
	if n := nn.topo.N(); minRepl > n {
		minRepl = n
	}
	// Once any node has ever failed, blocks may legitimately be
	// under-replicated (or lost) — even after every node recovers, since
	// rejoin is empty; accounting is still verified.
	if nn.churned {
		minRepl = 0
	}
	primBytes := make([]int64, nn.topo.N())
	dynBytes := make([]int64, nn.topo.N())
	for si := range nn.shards {
		for id, locs := range nn.shards[si].locations {
			blk := nn.shards[si].blocks[id]
			if blk == nil {
				return fmt.Errorf("dfs: location entry for unknown block %d", id)
			}
			primaries := 0
			for node, kind := range locs {
				if nn.failed[node] {
					return fmt.Errorf("dfs: block %d has a replica on down node %d", id, node)
				}
				if got, ok := nn.perNode[node][id]; !ok || got != kind {
					return fmt.Errorf("dfs: per-node view disagrees for block %d node %d", id, node)
				}
				if kind == Primary {
					primaries++
					primBytes[node] += blk.Size
				} else {
					dynBytes[node] += blk.Size
				}
			}
			if primaries < minRepl {
				return fmt.Errorf("dfs: block %d has %d primary replicas, want >= %d", id, primaries, minRepl)
			}
		}
	}
	for n := range primBytes {
		if down := nn.failed[topology.NodeID(n)]; down && len(nn.perNode[n]) != 0 {
			return fmt.Errorf("dfs: down node %d still lists %d blocks", n, len(nn.perNode[n]))
		}
		if primBytes[n] != nn.primaryBytes[n] {
			return fmt.Errorf("dfs: primary byte accounting off on node %d: %d vs %d", n, primBytes[n], nn.primaryBytes[n])
		}
		if dynBytes[n] != nn.dynamicBytes[n] {
			return fmt.Errorf("dfs: dynamic byte accounting off on node %d: %d vs %d", n, dynBytes[n], nn.dynamicBytes[n])
		}
	}
	// Orphan check: a per-node entry must be mirrored in locations. The
	// loop above only walks locations, so scan the other direction too.
	for n, m := range nn.perNode {
		for b, kind := range m {
			if got, ok := nn.locs(b)[topology.NodeID(n)]; !ok || got != kind {
				return fmt.Errorf("dfs: orphan per-node entry for block %d node %d", b, n)
			}
		}
	}
	// Corruption marks must describe replicas that still exist: every
	// removal path (eviction, failure, quarantine) clears the mark, so a
	// dangling mark means a removal path forgot to.
	for si := range nn.shards {
		for b, nodes := range nn.shards[si].corrupt {
			for node := range nodes {
				if _, ok := nn.shards[si].locations[b][node]; !ok {
					return fmt.Errorf("dfs: corruption mark for block %d on node %d outlived the replica", b, node)
				}
			}
		}
	}
	return nil
}

func sortNodeIDs(s []topology.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func sortBlockIDs(s []BlockID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
