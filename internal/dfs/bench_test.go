package dfs

import (
	"testing"

	"dare/internal/stats"
	"dare/internal/topology"
)

// BenchmarkCreateFile measures rack-aware primary placement.
func BenchmarkCreateFile(b *testing.B) {
	topo := topology.NewDedicated(100, 20, stats.Constant{V: 0})
	nn := NewNameNode(topo, 3, stats.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.CreateFile("f", 16, 128, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicReplicaChurn measures the add/remove metadata path DARE
// exercises on every capture and eviction.
func BenchmarkDynamicReplicaChurn(b *testing.B) {
	topo := topology.NewDedicated(20, 0, stats.Constant{V: 0})
	nn := NewNameNode(topo, 3, stats.NewRNG(1))
	f, err := nn.CreateFile("f", 64, 128, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Precompute a free node per block.
	free := make([]topology.NodeID, len(f.Blocks))
	for i, blk := range f.Blocks {
		for n := 0; n < 20; n++ {
			if !nn.HasReplica(blk, topology.NodeID(n)) {
				free[i] = topology.NodeID(n)
				break
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(f.Blocks)
		if err := nn.AddDynamicReplica(f.Blocks[k], free[k]); err != nil {
			b.Fatal(err)
		}
		if err := nn.RemoveDynamicReplica(f.Blocks[k], free[k]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocations measures the read path the scheduler hits on every
// locality check.
func BenchmarkLocations(b *testing.B) {
	topo := topology.NewDedicated(20, 0, stats.Constant{V: 0})
	nn := NewNameNode(topo, 3, stats.NewRNG(1))
	f, err := nn.CreateFile("f", 64, 128, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.Locations(f.Blocks[i%len(f.Blocks)])
	}
}
