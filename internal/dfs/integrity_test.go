package dfs

import (
	"testing"

	"dare/internal/event"
	"dare/internal/topology"
)

// kindLog records every published event kind in order.
type kindLog struct {
	events []event.Event
}

func (l *kindLog) HandleEvent(ev event.Event) { l.events = append(l.events, ev) }

func (l *kindLog) kinds() []event.Kind {
	out := make([]event.Kind, len(l.events))
	for i, ev := range l.events {
		out[i] = ev.Kind
	}
	return out
}

func TestMarkCorruptIsLatent(t *testing.T) {
	nn := newTestNN(6, 3, 31)
	log := &kindLog{}
	bus := event.NewBus(nil)
	bus.Subscribe(log)
	nn.SetBus(bus)
	f, _ := nn.CreateFile("f", 4, 100, 0)
	b := f.Blocks[0]
	victim := nn.Locations(b)[0]
	published := len(log.events)

	if err := nn.MarkCorrupt(b, victim); err != nil {
		t.Fatal(err)
	}
	if !nn.IsCorrupt(b, victim) {
		t.Fatal("mark not recorded")
	}
	if nn.CorruptReplicas() != 1 {
		t.Fatalf("CorruptReplicas = %d, want 1", nn.CorruptReplicas())
	}
	// Latent: metadata untouched, nothing published, scheduler still sees
	// the replica.
	if len(log.events) != published {
		t.Fatal("silent corruption published an event")
	}
	if !nn.HasReplica(b, victim) {
		t.Fatal("corruption removed the replica from metadata")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Marking a non-existent replica errors.
	other := topology.NodeID(-1)
	for i := 0; i < nn.N(); i++ {
		if !nn.HasReplica(b, topology.NodeID(i)) {
			other = topology.NodeID(i)
			break
		}
	}
	if other >= 0 {
		if err := nn.MarkCorrupt(b, other); err == nil {
			t.Fatal("marking a missing replica should error")
		}
	}
}

func TestQuarantineRemovesAnyKindAndPublishes(t *testing.T) {
	nn := newTestNN(8, 2, 32)
	log := &kindLog{}
	bus := event.NewBus(nil)
	bus.Subscribe(log)
	nn.SetBus(bus)
	f, _ := nn.CreateFile("f", 2, 100, 0)

	// Primary quarantine.
	b := f.Blocks[0]
	victim := nn.Locations(b)[0]
	if err := nn.MarkCorrupt(b, victim); err != nil {
		t.Fatal(err)
	}
	before := nn.PrimaryBytesOn(victim)
	mark := len(log.events)
	if err := nn.QuarantineReplica(b, victim); err != nil {
		t.Fatal(err)
	}
	got := log.events[mark:]
	if len(got) != 2 || got[0].Kind != event.ReplicaCorrupt || got[1].Kind != event.ReplicaRemove {
		t.Fatalf("quarantine published %v, want [replica-corrupt replica-remove]", (&kindLog{events: got}).kinds())
	}
	if got[0].Flag {
		t.Error("primary quarantine flagged dynamic")
	}
	if nn.HasReplica(b, victim) || nn.IsCorrupt(b, victim) {
		t.Fatal("quarantine left the replica or its mark behind")
	}
	if nn.PrimaryBytesOn(victim) != before-100 {
		t.Fatal("primary byte accounting not updated")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Dynamic quarantine: eviction here is mandatory, unlike
	// RemoveDynamicReplica's primary refusal.
	b2 := f.Blocks[1]
	var dynNode topology.NodeID = -1
	for i := 0; i < nn.N(); i++ {
		if !nn.HasReplica(b2, topology.NodeID(i)) && !nn.NodeFailed(topology.NodeID(i)) {
			dynNode = topology.NodeID(i)
			break
		}
	}
	if err := nn.AddDynamicReplica(b2, dynNode); err != nil {
		t.Fatal(err)
	}
	if err := nn.MarkCorrupt(b2, dynNode); err != nil {
		t.Fatal(err)
	}
	mark = len(log.events)
	if err := nn.QuarantineReplica(b2, dynNode); err != nil {
		t.Fatal(err)
	}
	if !log.events[mark].Flag {
		t.Error("dynamic quarantine not flagged dynamic")
	}
	if nn.DynamicBytesOn(dynNode) != 0 {
		t.Fatal("dynamic byte accounting not updated")
	}
	// The block is now under-replicated (repl 2, one primary gone earlier
	// restored? b2 untouched: 2 primaries + dyn removed => fine) — just
	// verify global consistency.
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Quarantining a missing replica errors and publishes nothing.
	mark = len(log.events)
	if err := nn.QuarantineReplica(b2, dynNode); err == nil {
		t.Fatal("double quarantine should error")
	}
	if len(log.events) != mark {
		t.Fatal("failed quarantine published events")
	}
}

func TestFailNodeClearsCorruptMarks(t *testing.T) {
	nn := newTestNN(6, 3, 33)
	f, _ := nn.CreateFile("f", 4, 100, 0)
	b := f.Blocks[0]
	victim := nn.Locations(b)[0]
	if err := nn.MarkCorrupt(b, victim); err != nil {
		t.Fatal(err)
	}
	nn.FailNode(victim)
	if nn.IsCorrupt(b, victim) || nn.CorruptReplicas() != 0 {
		t.Fatal("failure did not clear the corruption mark")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionClearsCorruptMark(t *testing.T) {
	nn := newTestNN(6, 2, 34)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	var node topology.NodeID = -1
	for i := 0; i < nn.N(); i++ {
		if !nn.HasReplica(b, topology.NodeID(i)) {
			node = topology.NodeID(i)
			break
		}
	}
	if err := nn.AddDynamicReplica(b, node); err != nil {
		t.Fatal(err)
	}
	if err := nn.MarkCorrupt(b, node); err != nil {
		t.Fatal(err)
	}
	if err := nn.RemoveDynamicReplica(b, node); err != nil {
		t.Fatal(err)
	}
	if nn.CorruptReplicas() != 0 {
		t.Fatal("eviction did not clear the corruption mark")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsCatchDanglingCorruptMark(t *testing.T) {
	nn := newTestNN(6, 2, 35)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	node := nn.Locations(b)[0]
	if err := nn.MarkCorrupt(b, node); err != nil {
		t.Fatal(err)
	}
	// Corrupt (sic) the metadata directly: remove the replica behind the
	// mark's back.
	delete(nn.shard(b).locations[b], node)
	delete(nn.perNode[node], b)
	nn.primaryBytes[node] -= 100
	if err := nn.CheckInvariants(); err == nil {
		t.Fatal("dangling corruption mark not caught")
	}
}

func TestReRegisterNodeRestoresStaleReplicas(t *testing.T) {
	nn := newTestNN(6, 2, 36)
	log := &kindLog{}
	bus := event.NewBus(nil)
	bus.Subscribe(log)
	nn.SetBus(bus)
	f, _ := nn.CreateFile("f", 6, 100, 0)

	victim := nn.Locations(f.Blocks[0])[0]
	// Give the victim a dynamic replica too, if it lacks one.
	var dynBlock BlockID = -1
	for _, b := range f.Blocks {
		if !nn.HasReplica(b, victim) {
			if err := nn.AddDynamicReplica(b, victim); err != nil {
				t.Fatal(err)
			}
			dynBlock = b
			break
		}
	}
	rep := nn.FailNode(victim)
	if len(rep.LostPrimaries) == 0 || len(rep.LostDynamic) == 0 {
		t.Fatalf("test setup: victim lost %d primaries, %d dynamic; want both > 0",
			len(rep.LostPrimaries), len(rep.LostDynamic))
	}

	// The flap rejoin: the block report still lists everything.
	stale := make([]StaleReplica, 0, len(rep.LostPrimaries)+len(rep.LostDynamic))
	for _, b := range rep.LostPrimaries {
		stale = append(stale, StaleReplica{Block: b, Kind: Primary})
	}
	for _, b := range rep.LostDynamic {
		stale = append(stale, StaleReplica{Block: b, Kind: Dynamic})
	}
	mark := len(log.events)
	restored, err := nn.ReRegisterNode(victim, stale)
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(stale) {
		t.Fatalf("restored %d replicas, want %d", restored, len(stale))
	}
	// Every restored replica publishes ReplicaAdd; NodeRecover fires last
	// with Aux = restored count.
	got := log.events[mark:]
	if len(got) != restored+1 {
		t.Fatalf("published %d events, want %d", len(got), restored+1)
	}
	for _, ev := range got[:restored] {
		if ev.Kind != event.ReplicaAdd {
			t.Fatalf("expected replica-add, got %v", ev.Kind)
		}
	}
	last := got[restored]
	if last.Kind != event.NodeRecover || last.Aux != int64(restored) {
		t.Fatalf("final event %v aux=%d, want node-recover aux=%d", last.Kind, last.Aux, restored)
	}
	if kind, ok := nn.ReplicaKindAt(dynBlock, victim); !ok || kind != Dynamic {
		t.Fatal("dynamic stale replica not restored with its kind")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReRegisterNodeDropsUnknownAndDuplicateReplicas(t *testing.T) {
	nn := newTestNN(6, 2, 37)
	f, _ := nn.CreateFile("f", 2, 100, 0)
	b := f.Blocks[0]
	victim := nn.Locations(b)[0]
	nn.FailNode(victim)
	// While the node was "dead", repair put a copy of b back... on the
	// victim itself? Impossible; but the registry may have re-replicated b
	// elsewhere and a duplicate report entry must still be ignored.
	stale := []StaleReplica{
		{Block: b, Kind: Primary},
		{Block: b, Kind: Primary},            // duplicate entry in the report
		{Block: BlockID(999), Kind: Primary}, // block the registry never knew
	}
	restored, err := nn.ReRegisterNode(victim, stale)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored %d, want 1 (duplicate and unknown dropped)", restored)
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverNodeIdempotent is the regression test for the satellite
// requirement: recovering a never-failed or already-recovered node is a
// safe no-op — state is untouched and nothing is published, so nothing
// keyed on NodeRecover (blacklist forgiveness, ticker restart) can run
// twice.
func TestRecoverNodeIdempotent(t *testing.T) {
	nn := newTestNN(6, 2, 38)
	log := &kindLog{}
	bus := event.NewBus(nil)
	bus.Subscribe(log)
	nn.SetBus(bus)
	nn.CreateFile("f", 4, 100, 0)

	// Never-failed node: error, no event, no state change.
	mark := len(log.events)
	if err := nn.RecoverNode(3); err == nil {
		t.Fatal("recovering a never-failed node should error")
	}
	if len(log.events) != mark {
		t.Fatal("failed recovery published an event")
	}

	nn.FailNode(3)
	if err := nn.RecoverNode(3); err != nil {
		t.Fatal(err)
	}
	failedAfter := nn.FailedNodes()
	mark = len(log.events)

	// Already-recovered node: same contract.
	if err := nn.RecoverNode(3); err == nil {
		t.Fatal("double recovery should error")
	}
	if len(log.events) != mark {
		t.Fatal("double recovery published an event")
	}
	if nn.FailedNodes() != failedAfter {
		t.Fatal("double recovery changed failure state")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancerMoveCarriesCorruption(t *testing.T) {
	nn := newTestNN(6, 1, 39)
	f, _ := nn.CreateFile("f", 1, 100, 0)
	b := f.Blocks[0]
	src := nn.Locations(b)[0]
	if err := nn.MarkCorrupt(b, src); err != nil {
		t.Fatal(err)
	}
	var dst topology.NodeID = -1
	for i := 0; i < nn.N(); i++ {
		if !nn.HasReplica(b, topology.NodeID(i)) {
			dst = topology.NodeID(i)
			break
		}
	}
	bal := NewBalancer(nn)
	if err := bal.move(b, src, dst); err != nil {
		t.Fatal(err)
	}
	if nn.IsCorrupt(b, src) || !nn.IsCorrupt(b, dst) {
		t.Fatal("balancer move did not carry the corruption mark")
	}
	if err := nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
