package dfs

import (
	"fmt"
	"math"
	"sort"

	"dare/internal/event"
	"dare/internal/topology"
)

// Balancer implements HDFS's storage balancer: it iteratively moves block
// replicas from over-utilized data nodes to under-utilized ones until
// every node's utilization is within a threshold of the cluster mean.
//
// It exists in this reproduction as a *contrast* to DARE: the balancer
// equalizes bytes, not popularity. A byte-balanced cluster can still have
// a wildly skewed popularity-index distribution (Fig. 11's cv), because
// which blocks sit on a node matters more than how many. The balancer
// experiment makes that distinction measurable.
type Balancer struct {
	nn *NameNode
	// Threshold is the allowed deviation from mean utilization, as a
	// fraction of the mean (HDFS default: 10%).
	Threshold float64
	// MaxMoves bounds one Run invocation (0 = no bound).
	MaxMoves int
}

// NewBalancer wraps a name node with the default 10% threshold.
func NewBalancer(nn *NameNode) *Balancer {
	return &Balancer{nn: nn, Threshold: 0.10}
}

// nodeBytes reports the total stored bytes (primary + dynamic) per node.
func (b *Balancer) nodeBytes() []int64 {
	out := make([]int64, b.nn.N())
	for n := range out {
		out[n] = b.nn.primaryBytes[n] + b.nn.dynamicBytes[n]
	}
	return out
}

// MovesNeeded reports whether any live node deviates from the mean
// utilization by more than the threshold.
func (b *Balancer) MovesNeeded() bool {
	bytes := b.nodeBytes()
	mean := meanBytes(bytes, b.nn.failed)
	if mean == 0 {
		return false
	}
	for n, v := range bytes {
		if b.nn.failed[topology.NodeID(n)] {
			continue
		}
		if deviation(v, mean) > b.Threshold {
			return true
		}
	}
	return false
}

// Run performs balancing moves until balanced or MaxMoves is hit. It
// returns the number of block moves and the bytes moved (each move is a
// real network transfer in HDFS; callers that care about traffic should
// account for MovedBytes).
func (b *Balancer) Run() (moves int, movedBytes int64, err error) {
	for {
		if b.MaxMoves > 0 && moves >= b.MaxMoves {
			return moves, movedBytes, nil
		}
		src, dst, ok := b.pickPair()
		if !ok {
			return moves, movedBytes, nil
		}
		bytes := b.nodeBytes()
		gap := bytes[src] - bytes[dst]
		blk, ok := b.pickBlock(src, dst, gap)
		if !ok {
			// Nothing movable: every candidate already has a replica on the
			// destination, or every move would overshoot and oscillate.
			return moves, movedBytes, nil
		}
		if err := b.move(blk, src, dst); err != nil {
			return moves, movedBytes, fmt.Errorf("dfs: balancer move: %w", err)
		}
		moves++
		movedBytes += b.nn.Block(blk).Size
	}
}

// pickPair selects the most over-utilized and most under-utilized live
// nodes, if the pair deviates beyond the threshold.
func (b *Balancer) pickPair() (src, dst topology.NodeID, ok bool) {
	bytes := b.nodeBytes()
	mean := meanBytes(bytes, b.nn.failed)
	if mean == 0 {
		return 0, 0, false
	}
	src, dst = -1, -1
	var maxV, minV int64 = -1, 1 << 62
	for n, v := range bytes {
		node := topology.NodeID(n)
		if b.nn.failed[node] {
			continue
		}
		if v > maxV {
			maxV, src = v, node
		}
		if v < minV {
			minV, dst = v, node
		}
	}
	if src < 0 || dst < 0 || src == dst {
		return 0, 0, false
	}
	if deviation(maxV, mean) <= b.Threshold && deviation(minV, mean) <= b.Threshold {
		return 0, 0, false
	}
	return src, dst, true
}

// pickBlock chooses a block on src that dst does not hold, preferring the
// largest (fewest moves to balance) whose move strictly shrinks the
// src-dst gap (size < gap — otherwise the pair would oscillate);
// deterministic tie-break by ID.
func (b *Balancer) pickBlock(src, dst topology.NodeID, gap int64) (BlockID, bool) {
	var best BlockID = -1
	var bestSize int64 = -1
	ids := make([]BlockID, 0, len(b.nn.perNode[src]))
	for id := range b.nn.perNode[src] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if b.nn.HasReplica(id, dst) {
			continue
		}
		if s := b.nn.Block(id).Size; s > bestSize && s < gap {
			best, bestSize = id, s
		}
	}
	return best, best >= 0
}

// move relocates one replica from src to dst, preserving its kind.
func (b *Balancer) move(blk BlockID, src, dst topology.NodeID) error {
	sh := b.nn.shard(blk)
	kind, ok := sh.locations[blk][src]
	if !ok {
		return fmt.Errorf("dfs: block %d not on node %d", blk, src)
	}
	if b.nn.down {
		return fmt.Errorf("dfs: balancer move of block %d: %w", blk, ErrMasterDown)
	}
	size := sh.blocks[blk].Size
	// A move streams the stored bytes as-is, so latent corruption travels
	// with the replica.
	carryCorrupt := b.nn.IsCorrupt(blk, src)
	if carryCorrupt {
		b.nn.clearCorrupt(blk, src)
		if sh.corrupt == nil {
			sh.corrupt = make(map[BlockID]map[topology.NodeID]bool)
		}
		if sh.corrupt[blk] == nil {
			sh.corrupt[blk] = make(map[topology.NodeID]bool)
		}
		sh.corrupt[blk][dst] = true
	}
	delete(sh.locations[blk], src)
	delete(b.nn.perNode[src], blk)
	sh.locations[blk][dst] = kind
	b.nn.perNode[dst][blk] = kind
	if kind == Primary {
		b.nn.primaryBytes[src] -= size
		b.nn.primaryBytes[dst] += size
	} else {
		b.nn.dynamicBytes[src] -= size
		b.nn.dynamicBytes[dst] += size
	}
	b.nn.journalAdd(journalRecord{op: opRemoveReplica, block: blk, node: src})
	b.nn.journalAdd(journalRecord{op: opAddReplica, block: blk, node: dst, kind: kind})
	if carryCorrupt {
		b.nn.journalAdd(journalRecord{op: opMarkCorrupt, block: blk, node: dst})
	}
	b.nn.publishReplica(event.ReplicaRemove, blk, src, kind == Dynamic)
	b.nn.publishReplica(event.ReplicaAdd, blk, dst, kind == Dynamic)
	b.nn.journalMaybeCheckpoint()
	return nil
}

// StorageCV reports the coefficient of variation of per-node stored bytes
// over live nodes — the balancer's own success metric, as opposed to
// Fig. 11's popularity-index cv.
func (b *Balancer) StorageCV() float64 {
	bytes := b.nodeBytes()
	var sum, n float64
	for i, v := range bytes {
		if b.nn.failed[topology.NodeID(i)] {
			continue
		}
		sum += float64(v)
		n++
	}
	if n == 0 || sum == 0 {
		return 0
	}
	mean := sum / n
	var varSum float64
	for i, v := range bytes {
		if b.nn.failed[topology.NodeID(i)] {
			continue
		}
		d := float64(v) - mean
		varSum += d * d
	}
	return math.Sqrt(varSum/n) / mean
}

func meanBytes(bytes []int64, failed map[topology.NodeID]bool) float64 {
	var sum, n float64
	for i, v := range bytes {
		if failed[topology.NodeID(i)] {
			continue
		}
		sum += float64(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

func deviation(v int64, mean float64) float64 {
	d := float64(v) - mean
	if d < 0 {
		d = -d
	}
	return d / mean
}
