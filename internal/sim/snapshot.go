package sim

import (
	"math"

	"dare/internal/snapshot"
)

// AddState folds the engine's checkpoint-relevant state into t: the
// clock, the sequence counter, the lifetime processed count, and the full
// future firing schedule (every live pending event's (when, seq) pair, in
// order). The queue implementation, the Defer free list, and the lazy
// canceled-event population are deliberately excluded: they are
// performance artifacts that never change which callbacks fire when, and
// a resumed run is free to rebuild them differently (see DESIGN.md §4j,
// "explicit vs derived state").
func (e *Engine) AddState(t *snapshot.StateTable) {
	t.Add("sim.now", math.Float64bits(e.now))
	t.Add("sim.seq", e.seq)
	t.Add("sim.processed", e.processed)
	h := snapshot.NewHash()
	n := 0
	e.PendingSchedule(func(when Time, seq uint64) {
		h.F64(when)
		h.U64(seq)
		n++
	})
	t.Add("sim.pending.live", uint64(n))
	t.AddHash("sim.pending.schedule", h)
}

// AddState folds a ticker's grid — anchor, period, next index, activity —
// so a resumed run provably lands every future tick on the same instants.
func (tk *Ticker) AddState(h *snapshot.Hash) {
	h.F64(tk.anchor)
	h.F64(tk.period)
	h.U64(tk.next)
	h.Bool(tk.active)
	h.Bool(tk.started)
}

// AddState folds every cohort's grid and membership shape: anchor, next
// index, live/tombstoned populations, and each slot's occupancy in sweep
// order. Member callbacks themselves are closures (derived state,
// re-registered on restore); what must match is who fires, when, in what
// order — which this captures.
func (ct *CohortTicker) AddState(h *snapshot.Hash) {
	h.F64(ct.period)
	h.Int(len(ct.cohorts))
	for _, co := range ct.cohorts {
		h.F64(co.phase)
		h.F64(co.anchor)
		h.U64(co.next)
		h.Bool(co.started)
		h.Bool(co.running)
		h.Int(co.active)
		h.Int(co.dead)
		for _, m := range co.members {
			h.Bool(m != nil)
		}
	}
}
