package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("clock %v, want 3", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break violated FIFO at position %d: %v", i, order[i])
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("nested times %v", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.RunUntil(5)
	if fired != 1 {
		t.Fatalf("fired %d events before t=5, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5", e.Now())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d after full run, want 2", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	e.Cancel(nil) // must not panic
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(float64(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("processed %d events after Stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending %d, want 7", e.Pending())
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++ })
	e.Schedule(2, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first step: count=%d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second step: count=%d", count)
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEnginePanicsOnPastAt(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(1, func() {})
}

func TestEnginePanicsOnNilFn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(1, nil)
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("processed %d, want 7", e.Processed())
	}
}

func TestEngineEventOrderProperty(t *testing.T) {
	// For any multiset of delays, events must fire in non-decreasing time
	// order and the final clock equals the max delay.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fireTimes []Time
		var maxT Time
		for _, d := range raw {
			delay := float64(d) / 100
			if delay > maxT {
				maxT = delay
			}
			e.Schedule(delay, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if !sort.Float64sAreSorted(fireTimes) {
			return false
		}
		return e.Now() == maxT && len(fireTimes) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilInfinityDrains(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() { n++ })
	e.RunUntil(math.Inf(1))
	if n != 1 {
		t.Fatal("RunUntil(+inf) did not drain")
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := NewTicker(e, 2, func() { ticks = append(ticks, e.Now()) })
	tk.Start(0)
	e.RunUntil(7)
	want := []Time{2, 4, 6}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

func TestTickerPhaseOffset(t *testing.T) {
	e := NewEngine()
	var first Time = -1
	tk := NewTicker(e, 2, func() {
		if first < 0 {
			first = e.Now()
		}
	})
	tk.Start(0.5)
	e.RunUntil(3)
	if first != 2.5 {
		t.Fatalf("first tick at %v, want 2.5", first)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 1, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	tk.Start(0)
	e.RunUntil(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop, want 3", count)
	}
	if tk.Active() {
		t.Fatal("ticker still active after Stop")
	}
}

func TestTickerDoubleStartIsNoop(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := NewTicker(e, 1, func() { count++ })
	tk.Start(0)
	tk.Start(0)
	e.RunUntil(2.5)
	if count != 2 {
		t.Fatalf("double-start ticker fired %d times in 2.5s, want 2", count)
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTicker(NewEngine(), 0, func() {})
}
