package sim

import (
	"math"
	"math/rand"
	"testing"
)

// firing is one observed event execution: the clock when it ran plus the
// caller-assigned id, enough to prove two engines fired the identical
// schedule (the engine's (when, seq) order is observable as (time, id)
// when every op is issued to both engines in lockstep).
type firing struct {
	at Time
	id int
}

// opScript drives one engine through a deterministic random interleaving
// of Schedule/At/Defer/Cancel/RunUntil (plus nested scheduling from inside
// callbacks) and returns the firing sequence.
func opScript(e *Engine, seed int64, ops int) []firing {
	rng := rand.New(rand.NewSource(seed))
	var fired []firing
	var handles []*Event
	nextID := 0
	record := func(id int) func() {
		return func() { fired = append(fired, firing{e.Now(), id}) }
	}
	// nested occasionally schedules a follow-up from inside a callback,
	// the pattern task-completion chains produce.
	var nested func(id int, depth int) func()
	nested = func(id, depth int) func() {
		return func() {
			fired = append(fired, firing{e.Now(), id})
			if depth > 0 {
				nextID++
				e.Schedule(float64(id%7)/8, nested(nextID, depth-1))
			}
		}
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // Schedule with handle
			nextID++
			handles = append(handles, e.Schedule(rng.Float64()*20, record(nextID)))
		case 3: // At, occasionally far future (overflow tier)
			nextID++
			when := e.Now() + rng.Float64()*5
			if rng.Intn(4) == 0 {
				when = e.Now() + 100 + rng.Float64()*1000
			}
			handles = append(handles, e.At(when, record(nextID)))
		case 4, 5: // Defer (pooled)
			nextID++
			e.Defer(rng.Float64()*10, record(nextID))
		case 6: // nested chain
			nextID++
			e.Schedule(rng.Float64()*3, nested(nextID, rng.Intn(4)))
		case 7: // Cancel a random outstanding handle
			if len(handles) > 0 {
				e.Cancel(handles[rng.Intn(len(handles))])
			}
		case 8: // duplicate timestamps to stress FIFO tie-breaking
			nextID++
			when := math.Floor(e.Now()) + float64(rng.Intn(4))
			if when < e.Now() {
				when = e.Now()
			}
			handles = append(handles, e.At(when, record(nextID)))
		case 9: // partial run
			e.RunUntil(e.Now() + rng.Float64()*8)
		}
		if i%37 == 36 {
			// Tight burst: overfill one bucket window so the calendar's
			// full-bucket diversion and skew-driven width re-fit run under
			// the differential contract too (a plain uniform spread almost
			// never exercises them).
			base := rng.Float64() * 4
			for j := 0; j < 12; j++ {
				nextID++
				e.Schedule(base+rng.Float64()*0.01, record(nextID))
			}
		}
	}
	e.Run()
	return fired
}

// TestDifferentialHeapVsCalendar is the equivalence contract of the
// calendar queue: random interleavings of Schedule/At/Defer/Cancel/
// RunUntil replayed on the heap engine and the calendar engine must fire
// the identical (time, id) sequence and report identical Processed counts.
// The same rand seed drives both scripts, so every op lands identically.
func TestDifferentialHeapVsCalendar(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cal := NewEngine()
		hp := NewEngine()
		hp.SetHeapQueue(true)
		if cal.QueueKind() != "calendar" || hp.QueueKind() != "heap" {
			t.Fatalf("queue kinds: %s / %s", cal.QueueKind(), hp.QueueKind())
		}
		calFired := opScript(cal, seed, 400)
		hpFired := opScript(hp, seed, 400)
		if len(calFired) != len(hpFired) {
			t.Fatalf("seed %d: calendar fired %d events, heap %d", seed, len(calFired), len(hpFired))
		}
		for i := range calFired {
			if calFired[i] != hpFired[i] {
				t.Fatalf("seed %d: firing %d diverges: calendar %+v, heap %+v",
					seed, i, calFired[i], hpFired[i])
			}
		}
		if cal.Processed() != hp.Processed() {
			t.Fatalf("seed %d: Processed %d vs %d", seed, cal.Processed(), hp.Processed())
		}
		if cal.Now() != hp.Now() {
			t.Fatalf("seed %d: final clock %v vs %v", seed, cal.Now(), hp.Now())
		}
	}
}

// FuzzQueueEquivalence is the same differential property as a native fuzz
// target, so `go test -fuzz` can hunt for interleavings the fixed seeds
// miss.
func FuzzQueueEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		cal := NewEngine()
		hp := NewEngine()
		hp.SetHeapQueue(true)
		calFired := opScript(cal, seed, 200)
		hpFired := opScript(hp, seed, 200)
		if len(calFired) != len(hpFired) {
			t.Fatalf("calendar fired %d events, heap %d", len(calFired), len(hpFired))
		}
		for i := range calFired {
			if calFired[i] != hpFired[i] {
				t.Fatalf("firing %d diverges: calendar %+v, heap %+v", i, calFired[i], hpFired[i])
			}
		}
		if cal.Processed() != hp.Processed() {
			t.Fatalf("Processed %d vs %d", cal.Processed(), hp.Processed())
		}
	})
}

// TestCalendarSkewRefitKeepsOrder pins the regression where a tight burst
// overfills one bucket, the skew re-fit shrinks the width so hard that the
// year window ends below the event that triggered it, and that event must
// be diverted to the overflow tier — clamping it into the last bucket
// instead leaves it stranded behind later-window buckets once the year
// advances, firing it after later events (time runs backwards).
func TestCalendarSkewRefitKeepsOrder(t *testing.T) {
	cal := NewEngine()
	hp := NewEngine()
	hp.SetHeapQueue(true)
	run := func(e *Engine) []Time {
		var fired []Time
		rec := func() { fired = append(fired, e.Now()) }
		// Nine events in an 8ms band: the ninth push finds its bucket's
		// slab segment full and trips the width re-fit.
		for i := 0; i < 9; i++ {
			e.At(1.0+0.001*float64(i), rec)
		}
		e.At(1.05, rec) // lands in a middle bucket after the year re-anchors
		e.At(30, rec)   // far tier
		e.Run()
		return fired
	}
	calFired, hpFired := run(cal), run(hp)
	if len(calFired) != len(hpFired) {
		t.Fatalf("calendar fired %d events, heap %d", len(calFired), len(hpFired))
	}
	for i := range calFired {
		if calFired[i] != hpFired[i] {
			t.Fatalf("firing %d diverges: calendar %v, heap %v", i, calFired[i], hpFired[i])
		}
		if i > 0 && calFired[i] < calFired[i-1] {
			t.Fatalf("time went backwards: %v after %v", calFired[i], calFired[i-1])
		}
	}
}

// TestSetHeapQueueMigratesPending proves a mid-run queue switch preserves
// the pending set: schedule (and cancel some) on one implementation,
// switch, and the survivors must fire in the original order.
func TestSetHeapQueueMigratesPending(t *testing.T) {
	e := NewEngine()
	var order []int
	var cancelMe *Event
	for i := 0; i < 50; i++ {
		i := i
		ev := e.Schedule(float64((i*7)%13), func() { order = append(order, i) })
		if i == 25 {
			cancelMe = ev
		}
	}
	e.Cancel(cancelMe)
	e.SetHeapQueue(true)
	if e.QueueKind() != "heap" {
		t.Fatalf("queue kind %q after SetHeapQueue(true)", e.QueueKind())
	}
	e.RunUntil(5)
	e.SetHeapQueue(false) // and back, mid-run
	e.Run()
	if len(order) != 49 {
		t.Fatalf("fired %d events, want 49 (one canceled)", len(order))
	}
	// Survivors must have fired in (when, seq) order: re-derive expected.
	ref := NewEngine()
	var want []int
	for i := 0; i < 50; i++ {
		i := i
		ev := ref.Schedule(float64((i*7)%13), func() { want = append(want, i) })
		if i == 25 {
			ref.Cancel(ev)
		}
	}
	ref.Run()
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("migrated order diverges at %d: got %d want %d", i, order[i], want[i])
		}
	}
}

// TestCalendarQueueFarFutureTier exercises the overflow tier directly: a
// dense near band plus a thin far tail, popped across several year
// advances, must come out in exact time order.
func TestCalendarQueueFarFutureTier(t *testing.T) {
	e := NewEngine()
	var times []Time
	rec := func() { times = append(times, e.Now()) }
	for i := 0; i < 200; i++ {
		e.Schedule(float64(i)*0.05, rec) // dense band within ~10s
	}
	for i := 0; i < 20; i++ {
		e.Schedule(1e4+float64(i)*1e3, rec) // far tail across many years
	}
	e.Schedule(1e8, rec) // extreme outlier
	e.Run()
	if len(times) != 221 {
		t.Fatalf("fired %d events, want 221", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time order violated at %d: %v after %v", i, times[i], times[i-1])
		}
	}
	if times[len(times)-1] != 1e8 {
		t.Fatalf("outlier fired at %v", times[len(times)-1])
	}
}

// TestCalendarQueueResizeUnderLoad pushes enough events to force several
// grow cycles, then drains past the shrink threshold, verifying counts
// survive both directions.
func TestCalendarQueueResizeUnderLoad(t *testing.T) {
	e := NewEngine()
	const n = 5000
	fired := 0
	for i := 0; i < n; i++ {
		e.Schedule(float64((i*31)%997)/10, func() { fired++ })
	}
	if e.Pending() != n {
		t.Fatalf("pending %d, want %d", e.Pending(), n)
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired %d, want %d", fired, n)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d after drain", e.Pending())
	}
}

// TestCompactionBoundsCanceledGarbage cancels far more events than it
// keeps; the threshold sweep must hold the queue near the live population
// instead of retaining every canceled struct until its timestamp.
func TestCompactionBoundsCanceledGarbage(t *testing.T) {
	for _, heapQ := range []bool{false, true} {
		e := NewEngine()
		e.SetHeapQueue(heapQ)
		e.Schedule(1e6, func() {}) // one live far-future event
		for i := 0; i < 10_000; i++ {
			ev := e.Schedule(1e5+float64(i), func() { t.Fatal("canceled event fired") })
			e.Cancel(ev)
		}
		if p := e.Pending(); p > 2*compactFloor {
			t.Fatalf("%s: pending %d after 10k cancels, want <= %d",
				e.QueueKind(), p, 2*compactFloor)
		}
		e.Run()
		if e.Processed() != 1 {
			t.Fatalf("%s: processed %d, want 1", e.QueueKind(), e.Processed())
		}
	}
}

// TestTickerFlapBoundsPending is the start/stop-churn regression: flap
// injection repeatedly stops and restarts heartbeat tickers, and before
// eager cancel accounting each cycle left another canceled event queued
// until its (period-distant) timestamp. 10k cycles must leave the pending
// set bounded, on both queue implementations.
func TestTickerFlapBoundsPending(t *testing.T) {
	for _, heapQ := range []bool{false, true} {
		e := NewEngine()
		e.SetHeapQueue(heapQ)
		tk := NewTicker(e, 1000, func() {})
		maxPending := 0
		for i := 0; i < 10_000; i++ {
			tk.Start(float64(i%7) / 10)
			// Let some cycles tick a little so the event struct cycles
			// through fired-and-reused as well as canceled-in-queue.
			if i%100 == 0 {
				e.RunUntil(e.Now() + 1)
			}
			tk.Stop()
			if p := e.Pending(); p > maxPending {
				maxPending = p
			}
		}
		if maxPending > 2*compactFloor {
			t.Fatalf("%s: pending grew to %d across 10k start/stop cycles, want <= %d",
				e.QueueKind(), maxPending, 2*compactFloor)
		}
	}
}

// TestTickerReschedulesInPlace verifies the fast path: a steady ticker
// allocates nothing per tick because it re-enqueues its own event struct.
func TestTickerReschedulesInPlace(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := NewTicker(e, 1, func() { ticks++ })
	tk.Start(0)
	e.RunUntil(10) // warm: first tick allocates the struct
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 1)
	})
	if allocs > 0 {
		t.Fatalf("steady ticker allocates %.2f objects/tick, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("ticker never ticked")
	}
}

// TestTickerStopStartWithinCallback flaps the ticker from inside its own
// callback: the restart must keep exactly one pending tick (the old
// implementation double-scheduled here).
func TestTickerStopStartWithinCallback(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, 2, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 2 {
			tk.Stop()
			tk.Start(0.5)
		}
	})
	tk.Start(0)
	e.RunUntil(11)
	want := []Time{2, 4, 6.5, 8.5, 10.5}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
}

// TestRescheduleContractPanics pins the misuse panics of the fast path.
func TestRescheduleContractPanics(t *testing.T) {
	t.Run("pending", func(t *testing.T) {
		e := NewEngine()
		ev := e.Schedule(1, func() {})
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic rescheduling a pending event")
			}
		}()
		e.Reschedule(ev, 2)
	})
	t.Run("negative", func(t *testing.T) {
		e := NewEngine()
		ev := e.Schedule(1, func() {})
		e.Run()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on negative delay")
			}
		}()
		e.Reschedule(ev, -1)
	})
	t.Run("nil", func(t *testing.T) {
		e := NewEngine()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on nil event")
			}
		}()
		e.Reschedule(nil, 1)
	})
}

// TestCalendarQueueGapThenEarlySchedule reproduces the year-jump rebase
// path: cancel a far-future event, drain (the pop advances the year past
// the gap without moving the clock), then schedule near the present — the
// queue must re-anchor instead of mis-bucketing.
func TestCalendarQueueGapThenEarlySchedule(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1e5, func() {})
	e.Cancel(ev)
	e.Run() // pops the canceled far event; clock stays 0
	if e.Now() != 0 {
		t.Fatalf("clock %v, want 0", e.Now())
	}
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("near-present event lost after year jump")
	}
	if e.Now() != 5 {
		t.Fatalf("clock %v, want 5", e.Now())
	}
}
