package sim

import "math"

// Ticker fires a callback at a fixed period, modelling heartbeats (the DFS
// data-node heartbeat, the MapReduce task-tracker heartbeat). A Ticker is
// created stopped; call Start to begin.
//
// Tickers are the dominant event class of a run (~83% of all bus events in
// BENCH_engine.json), so they ride the engine's fast path: each tick
// re-enqueues its own event struct in place (Engine.RescheduleAt) instead
// of allocating a fresh event, and a stopped ticker's canceled event is
// reclaimed by the engine's compaction sweep rather than lingering until
// its timestamp is reached.
//
// Tick times sit on an absolute grid: anchor + k·period for integer k ≥ 1,
// where anchor is fixed at Start time (now + phase). Computing each tick
// analytically rather than as now + period keeps long ticker streams free
// of accumulated floating-point drift, which is what lets CohortTicker
// fire many members from one shared event at bit-identical times to the
// per-ticker schedule.
type Ticker struct {
	eng    *Engine
	period Time
	fn     func()
	ev     *Event
	active bool
	// anchor is the grid origin (start time + phase); next is the index k
	// of the next scheduled tick on that grid. started records that Start
	// ran at least once, so Resume has a grid to land on.
	anchor  Time
	next    uint64
	started bool
}

// NewTicker creates a ticker on eng with the given period and callback.
// Period must be positive.
func NewTicker(eng *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{eng: eng, period: period, fn: fn}
}

// gridTime is the k-th tick instant of a grid rooted at anchor. It is the
// single definition of "when does tick k fire" shared by Ticker and
// CohortTicker: both compute anchor + period·k in this exact expression,
// so the two schedules agree bit for bit.
func gridTime(anchor, period Time, k uint64) Time {
	return anchor + period*float64(k)
}

// nextGridIndex finds the smallest k ≥ 1 with gridTime(anchor, period, k)
// strictly after now — the tick a resuming member must wait for. The
// closed-form estimate is refined by short walks in both directions so
// floating-point rounding in the division can never land a tick at or
// before now, nor skip the first eligible instant.
func nextGridIndex(anchor, period, now Time) uint64 {
	var k uint64 = 1
	if now > anchor+period {
		k = uint64(math.Floor((now - anchor) / period))
		if k < 1 {
			k = 1
		}
	}
	for k > 1 && gridTime(anchor, period, k-1) > now {
		k--
	}
	for gridTime(anchor, period, k) <= now {
		k++
	}
	return k
}

// Start begins ticking on a fresh grid anchored at now + phase; the first
// tick fires one period after the anchor. Distinct phase offsets give
// distinct grids, de-synchronizing many nodes' heartbeats as real clusters
// do (see TestTickerDistinctPhasesNeverCollide). Starting an active ticker
// is a no-op.
func (t *Ticker) Start(phase Time) {
	if t.active {
		return
	}
	t.active = true
	t.started = true
	t.anchor = t.eng.Now() + phase
	t.next = 1
	t.scheduleNext()
}

// Resume restarts a stopped ticker on its original grid: the next tick is
// the first grid instant strictly after now, not one full period away.
// Node recovery uses it so a rejoining node falls back into the cluster's
// existing heartbeat cadence — the property that keeps cohort membership
// splices equivalent to independent per-node tickers. Resuming an active
// or never-started ticker is a no-op.
func (t *Ticker) Resume() {
	if t.active || !t.started {
		return
	}
	t.active = true
	t.next = nextGridIndex(t.anchor, t.period, t.eng.Now())
	t.scheduleNext()
}

// scheduleNext enqueues the tick at grid index t.next, reusing the event
// struct when the engine no longer owns it.
func (t *Ticker) scheduleNext() {
	when := gridTime(t.anchor, t.period, t.next)
	if t.ev != nil && !t.ev.inQueue {
		// The previous event already fired or was swept: reuse the struct.
		t.eng.RescheduleAt(t.ev, when)
		return
	}
	// First start, or the previous Stop's canceled event is still queued
	// awaiting lazy discard: a fresh struct keeps the two from aliasing.
	t.ev = t.eng.At(when, t.tick)
	t.ev.tag = Owned
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.eng.Cancel(t.ev)
}

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.active }

func (t *Ticker) tick() {
	if !t.active {
		return
	}
	t.fn()
	// fn may have stopped us, or stopped and restarted us (in which case
	// the restart already queued the next tick).
	if t.active && !t.ev.inQueue {
		t.next++
		t.eng.RescheduleAt(t.ev, gridTime(t.anchor, t.period, t.next))
	}
}
