package sim

// Ticker fires a callback at a fixed period, modelling heartbeats (the DFS
// data-node heartbeat, the MapReduce task-tracker heartbeat). A Ticker is
// created stopped; call Start to begin.
type Ticker struct {
	eng    *Engine
	period Time
	fn     func()
	ev     *Event
	active bool
}

// NewTicker creates a ticker on eng with the given period and callback.
// Period must be positive.
func NewTicker(eng *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{eng: eng, period: period, fn: fn}
}

// Start begins ticking; the first tick fires one period from now, after an
// optional phase offset (useful to de-synchronize many nodes' heartbeats,
// as real clusters do).
func (t *Ticker) Start(phase Time) {
	if t.active {
		return
	}
	t.active = true
	t.ev = t.eng.Schedule(t.period+phase, t.tick)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.eng.Cancel(t.ev)
	t.ev = nil
}

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.active }

func (t *Ticker) tick() {
	if !t.active {
		return
	}
	t.fn()
	if t.active { // fn may have stopped us
		t.ev = t.eng.Schedule(t.period, t.tick)
	}
}
