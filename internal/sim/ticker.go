package sim

// Ticker fires a callback at a fixed period, modelling heartbeats (the DFS
// data-node heartbeat, the MapReduce task-tracker heartbeat). A Ticker is
// created stopped; call Start to begin.
//
// Tickers are the dominant event class of a run (~18k heartbeats per
// simulated cluster), so they ride the engine's fast path: each tick
// re-enqueues its own event struct in place (Engine.Reschedule) instead of
// allocating a fresh event, and a stopped ticker's canceled event is
// reclaimed by the engine's compaction sweep rather than lingering until
// its timestamp is reached.
type Ticker struct {
	eng    *Engine
	period Time
	fn     func()
	ev     *Event
	active bool
}

// NewTicker creates a ticker on eng with the given period and callback.
// Period must be positive.
func NewTicker(eng *Engine, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{eng: eng, period: period, fn: fn}
}

// Start begins ticking; the first tick fires one period from now, after an
// optional phase offset (useful to de-synchronize many nodes' heartbeats,
// as real clusters do).
func (t *Ticker) Start(phase Time) {
	if t.active {
		return
	}
	t.active = true
	if t.ev != nil && !t.ev.inQueue {
		// The previous event already fired or was swept: reuse the struct.
		t.eng.Reschedule(t.ev, t.period+phase)
		return
	}
	// First start, or the previous Stop's canceled event is still queued
	// awaiting lazy discard: a fresh struct keeps the two from aliasing.
	t.ev = t.eng.Schedule(t.period+phase, t.tick)
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.eng.Cancel(t.ev)
}

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.active }

func (t *Ticker) tick() {
	if !t.active {
		return
	}
	t.fn()
	// fn may have stopped us, or stopped and restarted us (in which case
	// the restart already queued the next tick).
	if t.active && !t.ev.inQueue {
		t.eng.Reschedule(t.ev, t.period)
	}
}
