package sim

import (
	"fmt"
	"sort"

	"dare/internal/snapshot"
)

// State-mode checkpointing of the pending-event set.
//
// Engine events are closures, which cannot be serialized directly. The
// state image instead exploits that run construction is deterministic:
// every event scheduled before the first drive ("genesis events" — batch
// arrival deferrals, churn/chaos/outage injections, initial ticker
// events) is recreated with the identical (when, seq) coordinates when
// the run is rebuilt at restore. The image therefore splits the pending
// set three ways:
//
//   - genesis events (seq below the watermark, no tag): stored as bare
//     seq references; restore keeps the reconstructed event and drops
//     the rest (they already fired or were canceled in the original);
//   - owned events (tag == Owned): skipped here; the owning component
//     (Ticker, Cohort, the tracker's in-flight task records, the stream
//     driver) serializes the (when, seq) pair plus whatever context its
//     closure needs, and re-enqueues at decode;
//   - tagged events (any other tag): stored as (kind, when, seq,
//     payload); the layer that created the tag rebuilds the closure from
//     the payload at decode.
//
// A runtime-created event with no tag is not serializable: EncodePending
// returns an UntaggedEventError and the checkpoint is written without
// state sections, so resume falls back to the replay oracle.

// EventTag makes a runtime-created event serializable. Implementations
// live in the layer that schedules the event; TagKind returns a kind
// code unique across the whole simulator (the runner's decode dispatch
// assigns kind ranges per layer).
type EventTag interface {
	TagKind() uint16
	EncodeTag(e *snapshot.Enc)
}

// Owned is the sentinel tag for events whose owner serializes them
// itself (tickers, cohorts, in-flight task completions).
var Owned EventTag = ownedTag{}

type ownedTag struct{}

func (ownedTag) TagKind() uint16           { return 0 }
func (ownedTag) EncodeTag(e *snapshot.Enc) {}

// UntaggedEventError reports a pending runtime-created event that carries
// no tag and therefore cannot ride a state image.
type UntaggedEventError struct {
	When Time
	Seq  uint64
}

func (e *UntaggedEventError) Error() string {
	return fmt.Sprintf("sim: pending event (when=%v, seq=%d) was created after genesis and carries no state tag", e.When, e.Seq)
}

// Seq reports the sequence number stamped on the event, for owners that
// serialize (when, seq) coordinates themselves (When is in engine.go).
func (ev *Event) Seq() uint64 { return ev.seq }

// ScheduleTag is Schedule with a state tag attached to the returned
// handle. Owners of handle-retaining runtime events (the tracker's
// in-flight task completions) mark them Owned so EncodePending skips
// them and the owner serializes the coordinates itself.
func (e *Engine) ScheduleTag(delay Time, tag EventTag, fn func()) *Event {
	ev := e.Schedule(delay, fn)
	ev.tag = tag
	return ev
}

// DeferTag is Defer with a state tag attached to the pooled event.
func (e *Engine) DeferTag(delay Time, tag EventTag, fn func()) {
	e.DeferAtTag(e.now+delay, tag, fn)
}

// DeferAtTag is DeferAt with a state tag attached to the pooled event.
func (e *Engine) DeferAtTag(when Time, tag EventTag, fn func()) {
	e.deferAt(when, fn, tag)
}

// EncodePending serializes the live pending set. Events stamped before
// watermark with no tag become genesis references; Owned events are
// skipped; tagged events carry their payload. The walk is sorted by
// (when, seq) so identical state always encodes to identical bytes.
func (e *Engine) EncodePending(enc *snapshot.Enc, watermark uint64) error {
	var evs []*Event
	e.q.each(func(ev *Event) {
		if !ev.canceled {
			evs = append(evs, ev)
		}
	})
	sort.Slice(evs, func(i, j int) bool { return eventLess(evs[i], evs[j]) })
	var genesis []*Event
	var tagged []*Event
	for _, ev := range evs {
		switch {
		case ev.tag == Owned:
			// owner serializes it
		case ev.tag != nil:
			tagged = append(tagged, ev)
		case ev.seq < watermark:
			genesis = append(genesis, ev)
		default:
			return &UntaggedEventError{When: ev.when, Seq: ev.seq}
		}
	}
	enc.U32(uint32(len(genesis)))
	for _, ev := range genesis {
		enc.U64(ev.seq)
	}
	enc.U32(uint32(len(tagged)))
	payload := snapshot.NewEnc()
	for _, ev := range tagged {
		enc.U16(ev.tag.TagKind())
		enc.F64(ev.when)
		enc.U64(ev.seq)
		payload.Reset()
		ev.tag.EncodeTag(payload)
		enc.Blob(payload.Data())
	}
	return nil
}

// DecodePending replays an EncodePending image against a freshly
// reconstructed run that has already entered restore mode (BeginRestore):
// genesis references keep their reconstructed events, and each tagged
// record is handed to restore, which must rebuild the closure and call
// RestoreEvent with the same coordinates.
func (e *Engine) DecodePending(dec *snapshot.Dec, restore func(kind uint16, when Time, seq uint64, payload *snapshot.Dec) error) error {
	nGen := dec.Count(8)
	for i := 0; i < nGen; i++ {
		if err := e.KeepGenesis(dec.U64()); err != nil {
			if dec.Err() != nil {
				return dec.Err()
			}
			return err
		}
	}
	nTag := dec.Count(8)
	for i := 0; i < nTag; i++ {
		kind := dec.U16()
		when := dec.F64()
		seq := dec.U64()
		payload := dec.Blob()
		if dec.Err() != nil {
			return dec.Err()
		}
		pd := snapshot.NewDec(payload)
		if err := restore(kind, when, seq, pd); err != nil {
			return err
		}
		if err := pd.Finish(); err != nil {
			return fmt.Errorf("sim: tag kind %d payload: %w", kind, err)
		}
	}
	return dec.Err()
}

// BeginRestore switches the engine into restore mode: every pending
// event is popped into a side map keyed by seq (canceled ones are
// dropped), the queue is emptied, and the clock/sequence/processed
// counters jump to the checkpoint cursor. Between BeginRestore and
// FinishRestore the layers re-enqueue exactly the events the state image
// names, via KeepGenesis / RestoreAt / RestoreEvent.
func (e *Engine) BeginRestore(now Time, seq, processed uint64) {
	e.restoreMap = make(map[uint64]*Event, e.q.len())
	for {
		ev := e.q.pop()
		if ev == nil {
			break
		}
		ev.inQueue = false
		if ev.canceled {
			continue
		}
		e.restoreMap[ev.seq] = ev
	}
	e.canceledPending = 0
	e.now = now
	e.seq = seq
	e.processed = processed
}

// KeepGenesis re-enqueues the reconstructed genesis event with the given
// seq, preserving its coordinates and closure.
func (e *Engine) KeepGenesis(seq uint64) error {
	ev, ok := e.restoreMap[seq]
	if !ok {
		return fmt.Errorf("sim: state image references genesis event seq %d, but reconstruction did not schedule it", seq)
	}
	delete(e.restoreMap, seq)
	ev.inQueue = true
	e.q.push(ev)
	return nil
}

// RestoreAt enqueues an owner-held event struct at exact checkpoint
// coordinates, bypassing sequence stamping. The owner is responsible for
// the struct's callback being the same one the original event carried.
func (e *Engine) RestoreAt(ev *Event, when Time, seq uint64) {
	if ev.inQueue {
		panic("sim: RestoreAt of a still-pending event")
	}
	ev.when = when
	ev.seq = seq
	ev.canceled = false
	ev.inQueue = true
	e.q.push(ev)
}

// RestoreEvent enqueues a rebuilt pooled event at exact checkpoint
// coordinates, re-attaching its tag so the next checkpoint can encode it
// again.
func (e *Engine) RestoreEvent(when Time, seq uint64, tag EventTag, fn func()) {
	ev := &Event{when: when, seq: seq, fn: fn, tag: tag, pooled: true, inQueue: true}
	e.q.push(ev)
}

// RestoreHandle returns a detached, never-enqueued handle event for fn,
// for owners whose reconstruction did not create the struct they need to
// RestoreAt (e.g. a ticker that only started mid-run).
func (e *Engine) RestoreHandle(fn func()) *Event {
	return &Event{fn: fn, tag: Owned}
}

// FinishRestore drops every reconstructed genesis event the state image
// did not keep — in the original run they had already fired or been
// canceled — and leaves restore mode.
func (e *Engine) FinishRestore() {
	for _, ev := range e.restoreMap {
		if !ev.inQueue {
			e.release(ev)
		}
	}
	e.restoreMap = nil
}

// EncodeState serializes the ticker's grid position and pending tick.
func (t *Ticker) EncodeState(enc *snapshot.Enc) {
	enc.Bool(t.started)
	enc.Bool(t.active)
	enc.F64(t.anchor)
	enc.U64(t.next)
	if t.active {
		// An active ticker always has its event pending; when is derived
		// from the grid, so only the seq needs recording.
		enc.U64(t.ev.seq)
	}
}

// DecodeState restores the ticker's grid position and re-enqueues its
// pending tick at exact coordinates.
func (t *Ticker) DecodeState(dec *snapshot.Dec) error {
	t.started = dec.Bool()
	t.active = dec.Bool()
	t.anchor = dec.F64()
	t.next = dec.U64()
	if t.active {
		seq := dec.U64()
		if t.ev == nil {
			t.ev = t.eng.RestoreHandle(t.tick)
		}
		t.eng.RestoreAt(t.ev, gridTime(t.anchor, t.period, t.next), seq)
	}
	return dec.Err()
}

// EncodeState serializes one cohort: grid position, pending event, and
// the member slots in activation order (tombstones included — sweep
// order is part of the determinism contract). memberID maps a live
// member to a stable identity the owner can resolve at decode.
func (co *Cohort) EncodeState(enc *snapshot.Enc, memberID func(*CohortMember) int64) {
	enc.Bool(co.started)
	enc.Bool(co.running)
	enc.F64(co.anchor)
	enc.U64(co.next)
	if co.running {
		enc.U64(co.ev.seq)
	}
	enc.U32(uint32(len(co.members)))
	for _, m := range co.members {
		if m == nil {
			enc.Bool(false)
			continue
		}
		enc.Bool(true)
		enc.I64(memberID(m))
		enc.F64(m.joined)
	}
}

// DecodeState restores the cohort from an EncodeState image. member
// resolves a stable identity back to the handle the owner holds (it may
// return a fresh DetachedMember when reconstruction did not create one).
func (co *Cohort) DecodeState(dec *snapshot.Dec, member func(id int64) *CohortMember) error {
	co.started = dec.Bool()
	co.running = dec.Bool()
	co.anchor = dec.F64()
	co.next = dec.U64()
	var seq uint64
	if co.running {
		seq = dec.U64()
	}
	n := dec.Count(1)
	if dec.Err() != nil {
		return dec.Err()
	}
	// Detach any members reconstruction activated before overwriting the
	// slot table.
	for _, m := range co.members {
		if m != nil {
			m.slot = -1
		}
	}
	co.members = co.members[:0]
	co.active, co.dead = 0, 0
	for i := 0; i < n; i++ {
		if !dec.Bool() {
			co.members = append(co.members, nil)
			co.dead++
			continue
		}
		id := dec.I64()
		joined := dec.F64()
		if dec.Err() != nil {
			return dec.Err()
		}
		m := member(id)
		if m == nil {
			return fmt.Errorf("sim: cohort state names unknown member %d", id)
		}
		m.slot = len(co.members)
		m.joined = joined
		co.members = append(co.members, m)
		co.active++
	}
	if co.running {
		if co.ev == nil {
			co.ev = co.ct.eng.RestoreHandle(co.tick)
		}
		co.ct.eng.RestoreAt(co.ev, gridTime(co.anchor, co.ct.period, co.next), seq)
	}
	return dec.Err()
}

// DetachedMember creates a stopped member handle bound to this cohort,
// for DecodeState callbacks that must resolve a member reconstruction
// never activated.
func (co *Cohort) DetachedMember(fn func()) *CohortMember {
	return &CohortMember{co: co, fn: fn, slot: -1}
}

// Cohorts returns the ticker group's cohorts in creation order, for
// owners serializing per-cohort state.
func (ct *CohortTicker) Cohorts() []*Cohort { return ct.cohorts }
