package sim

import (
	"testing"
)

// TestTickerDistinctPhasesNeverCollide pins the de-synchronization
// property the cohort stride assignment depends on: tickers sharing a
// period but started with distinct phase offsets in [0, period) fire on
// disjoint grids — no two ever share an instant. The phases exercised are
// the tracker's own scheme (interval·i/n), where float64 division could
// plausibly round two offsets together; the test proves it does not for
// cluster-sized n.
func TestTickerDistinctPhasesNeverCollide(t *testing.T) {
	const (
		period = 0.25
		n      = 100
		horiz  = 50.0
	)
	e := NewEngine()
	fired := make(map[Time]int) // instant -> ticker that fired there
	for i := 0; i < n; i++ {
		i := i
		tk := NewTicker(e, period, func() {
			if prev, ok := fired[e.Now()]; ok && prev != i {
				t.Fatalf("tickers %d and %d collided at t=%v", prev, i, e.Now())
			}
			fired[e.Now()] = i
		})
		tk.Start(period * float64(i) / float64(n))
	}
	e.RunUntil(horiz)
	if len(fired) < n*int(horiz/period)-n {
		t.Fatalf("only %d distinct instants recorded", len(fired))
	}
}

// TestTickerResumeRejoinsGrid verifies Resume lands on the original
// anchor's grid — the first instant strictly after now — rather than one
// full period from the resume time.
func TestTickerResumeRejoinsGrid(t *testing.T) {
	e := NewEngine()
	var times []Time
	tk := NewTicker(e, 1, func() { times = append(times, e.Now()) })
	tk.Start(0.5) // grid: 1.5, 2.5, 3.5, ...
	e.RunUntil(2)
	tk.Stop()
	e.RunUntil(4.1)
	tk.Resume() // next grid instant after 4.1 is 4.5
	e.RunUntil(6)
	want := []Time{1.5, 4.5, 5.5}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

// cohortFiring is one observed callback invocation: which member fired at what
// instant. Differential tests compare complete cohortFiring sequences with ==
// on the float64 times, so per-node and cohort schedules must agree bit
// for bit, not approximately.
type cohortFiring struct {
	at Time
	id int
}

// runTickerArm drives n per-node tickers sharing quantized cohort phases
// through a stop/resume script and returns the cohortFiring sequence.
func runTickerArm(script func(e *Engine, stop, resume func(id int))) []cohortFiring {
	const n, cohorts, period = 12, 3, 0.25
	e := NewEngine()
	var got []cohortFiring
	tks := make([]*Ticker, n)
	for i := 0; i < n; i++ {
		i := i
		tks[i] = NewTicker(e, period, func() { got = append(got, cohortFiring{e.Now(), i}) })
	}
	for i := 0; i < n; i++ {
		tks[i].Start(period * float64(i/(n/cohorts)) / float64(cohorts))
	}
	script(e,
		func(id int) { tks[id].Stop() },
		func(id int) { tks[id].Resume() })
	e.RunUntil(20)
	return got
}

// runCohortArm drives the same membership through a CohortTicker.
func runCohortArm(script func(e *Engine, stop, resume func(id int))) []cohortFiring {
	const n, cohorts, period = 12, 3, 0.25
	e := NewEngine()
	var got []cohortFiring
	ct := NewCohortTicker(e, period)
	cos := make([]*Cohort, cohorts)
	for c := range cos {
		cos[c] = ct.NewCohort(period * float64(c) / float64(cohorts))
	}
	ms := make([]*CohortMember, n)
	for i := 0; i < n; i++ {
		i := i
		ms[i] = cos[i/(n/cohorts)].Add(func() { got = append(got, cohortFiring{e.Now(), i}) })
	}
	script(e,
		func(id int) { ms[id].Stop() },
		func(id int) { ms[id].Resume() })
	e.RunUntil(20)
	return got
}

// TestCohortMatchesPerNodeTickers is the sim-level differential: twelve
// members in three cohorts, flapped at off-grid instants, must produce an
// identical (time, member) cohortFiring sequence whether driven by twelve
// independent tickers or three coalesced cohort events.
func TestCohortMatchesPerNodeTickers(t *testing.T) {
	script := func(e *Engine, stop, resume func(id int)) {
		e.Schedule(1.03, func() { stop(5) })
		e.Schedule(1.07, func() { stop(6); stop(0) })
		e.Schedule(2.11, func() { resume(5) })
		e.Schedule(3.009, func() { resume(0); resume(6) })
		e.Schedule(4.5001, func() { stop(11); stop(4) })
		e.Schedule(9.99, func() { resume(4) })
		// Flap within a single inter-tick gap: net effect is a tail move.
		e.Schedule(12.01, func() { stop(2); resume(2) })
	}
	a := runTickerArm(script)
	b := runCohortArm(script)
	if len(a) != len(b) {
		t.Fatalf("per-node fired %d times, cohort %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cohortFiring %d diverged: per-node %+v, cohort %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no firings recorded")
	}
}

// TestCohortFlapBoundsPending extends the 10k-cycle flap regression to
// the cohort path: repeated Stop/Resume churn must neither grow the
// engine's pending set (cohort events are cancelled eagerly and reused)
// nor leak member slots (tombstone compaction reclaims them).
func TestCohortFlapBoundsPending(t *testing.T) {
	for _, heapQ := range []bool{false, true} {
		e := NewEngine()
		e.SetHeapQueue(heapQ)
		ct := NewCohortTicker(e, 1000)
		co := ct.NewCohort(0)
		m := co.Add(func() {})
		steady := co.Add(func() {}) // keeps the cohort event alive across flaps
		// solo's cohort empties on every Stop, so each cycle cancels the
		// cohort event and each Resume must restart it — the canceled-
		// garbage path the engine's compaction sweep has to bound.
		solo := ct.NewCohort(0.5).Add(func() {})
		maxPending, maxSlots := 0, 0
		for i := 0; i < 10_000; i++ {
			m.Stop()
			solo.Stop()
			if i%100 == 0 {
				e.RunUntil(e.Now() + 1)
			}
			m.Resume()
			solo.Resume()
			if p := e.Pending(); p > maxPending {
				maxPending = p
			}
			if s := len(co.members); s > maxSlots {
				maxSlots = s
			}
		}
		if maxPending > 2*compactFloor {
			t.Fatalf("%s: pending grew to %d across 10k stop/resume cycles, want <= %d",
				e.QueueKind(), maxPending, 2*compactFloor)
		}
		if maxSlots > 4*cohortCompactFloor {
			t.Fatalf("%s: cohort slots grew to %d across 10k stop/resume cycles, want <= %d",
				e.QueueKind(), maxSlots, 4*cohortCompactFloor)
		}
		if !steady.Active() || co.active != 2 {
			t.Fatalf("%s: cohort lost members: active=%d", e.QueueKind(), co.active)
		}
	}
}

// TestCohortEmptiesAndRestarts verifies that stopping every member
// cancels the cohort event, and a later Resume rejoins the original grid.
func TestCohortEmptiesAndRestarts(t *testing.T) {
	e := NewEngine()
	ct := NewCohortTicker(e, 1)
	co := ct.NewCohort(0.5) // grid: 1.5, 2.5, ...
	var times []Time
	m := co.Add(func() { times = append(times, e.Now()) })
	e.RunUntil(2)
	m.Stop()
	processedAfterStop := e.Processed()
	e.RunUntil(7.9)
	if got := e.Processed(); got != processedAfterStop {
		t.Fatalf("empty cohort still processed %d events", got-processedAfterStop)
	}
	m.Resume() // next grid instant after 7.9 is 8.5
	e.RunUntil(10)
	want := []Time{1.5, 8.5, 9.5}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

// TestCohortSweepSkipsSameInstantResume pins the joined-time guard: a
// member resumed at the exact instant of a pending cohort tick (possible
// when a recovery event shares the timestamp and a lower seq) must stay
// silent for that sweep, because a per-node ticker resumed at T never
// fires at T.
func TestCohortSweepSkipsSameInstantResume(t *testing.T) {
	e := NewEngine()
	ct := NewCohortTicker(e, 1)
	co := ct.NewCohort(0)
	var times []Time
	m := co.Add(func() { times = append(times, e.Now()) })
	e.RunUntil(1.5)
	m.Stop()
	// Schedule the resume at t=3 — the same instant as the cohort tick.
	// Another member keeps the cohort event alive so the tick still fires.
	co.Add(func() {})
	e.Schedule(3-e.Now(), func() { m.Resume() })
	e.RunUntil(5)
	want := []Time{1, 4, 5}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

// TestCohortSweepAllocatesNothing verifies the steady-state fast path: a
// full cohort sweep re-enqueues its own event struct and walks the member
// slice with zero allocations per tick.
func TestCohortSweepAllocatesNothing(t *testing.T) {
	e := NewEngine()
	ct := NewCohortTicker(e, 1)
	co := ct.NewCohort(0)
	ticks := 0
	for i := 0; i < 64; i++ {
		co.Add(func() { ticks++ })
	}
	e.RunUntil(10) // warm
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 1)
	})
	if allocs > 0 {
		t.Fatalf("steady cohort sweep allocates %.2f objects/tick, want 0", allocs)
	}
	if ticks == 0 {
		t.Fatal("cohort never swept")
	}
}
