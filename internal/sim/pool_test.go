package sim

import "testing"

// TestDeferRecyclesEvents checks the free-list mechanics: fired Defer
// events return to the pool, the pool feeds the next DeferAt, and
// handle-returning Schedule events are never pooled (a retained handle
// could Cancel a recycled struct).
func TestDeferRecyclesEvents(t *testing.T) {
	e := NewEngine()
	e.Defer(1, func() {})
	e.Defer(2, func() {})
	e.Run()
	if got := len(e.free); got != 2 {
		t.Fatalf("free list has %d events after run, want 2", got)
	}
	e.Defer(1, func() {})
	if got := len(e.free); got != 1 {
		t.Fatalf("free list has %d events after Defer, want 1 (reuse)", got)
	}
	e.Run()

	e2 := NewEngine()
	ev := e2.Schedule(1, func() {})
	e2.Run()
	if len(e2.free) != 0 {
		t.Fatalf("Schedule event was pooled; its handle %p could corrupt a reused struct", ev)
	}
}

// TestDeferSelfReschedulingReusesOneEvent checks that release happens
// before the callback runs, so a callback that immediately re-defers
// cycles through a single pooled struct.
func TestDeferSelfReschedulingReusesOneEvent(t *testing.T) {
	e := NewEngine()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < 100 {
			e.Defer(1, fn)
		}
	}
	e.Defer(1, fn)
	e.Run()
	if n != 100 {
		t.Fatalf("ran %d callbacks, want 100", n)
	}
	// The callback reschedules after release, so the chain should have
	// cycled through a single pooled struct.
	if got := len(e.free); got != 1 {
		t.Fatalf("free list has %d events, want 1 (single recycled struct)", got)
	}
}

// TestDeferOrderingMatchesSchedule checks that pooling does not disturb
// the (when, seq) FIFO contract when Defer and Schedule interleave at
// equal timestamps.
func TestDeferOrderingMatchesSchedule(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Defer(1, func() { order = append(order, 0) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Defer(1, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 3) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v, want ascending", order)
		}
	}
	// Second round drawing from the free list must preserve ordering too.
	var second []int
	e.Defer(1, func() { second = append(second, 0) })
	e.Defer(1, func() { second = append(second, 1) })
	e.Run()
	for i, v := range second {
		if v != i {
			t.Fatalf("recycled order %v, want ascending", second)
		}
	}
}

// TestDeferAllocsSteadyState checks the point of the free list: a
// self-rescheduling Defer chain allocates no event structs once warm.
func TestDeferAllocsSteadyState(t *testing.T) {
	e := NewEngine()
	var fn func()
	fn = func() { e.Defer(1, fn) }
	e.Defer(1, fn)
	// Warm up: first pop seeds the free list.
	e.RunUntil(e.Now() + 5)
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 1)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Defer chain allocates %.1f objects/event, want 0", allocs)
	}
}
