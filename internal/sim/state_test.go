package sim

import (
	"errors"
	"testing"

	"dare/internal/snapshot"
)

// testTag is a minimal serializable tag carrying one integer payload.
type testTag struct{ v int64 }

func (testTag) TagKind() uint16              { return 7 }
func (tt testTag) EncodeTag(e *snapshot.Enc) { e.I64(tt.v) }

// drainOrder runs the engine to completion and returns the firing order.
func drainOrder(e *Engine, order *[]int64) []int64 {
	*order = (*order)[:0]
	e.Run()
	return *order
}

// TestPendingRoundTrip: a pending set holding genesis events, tagged
// runtime events, and far-future events parked in the calendar queue's
// overflow tier round-trips through EncodePending/DecodePending with
// identical firing order — including an event at 1e4, far past the year
// window, which exercises the overflow-tier walk in EncodePending.
func TestPendingRoundTrip(t *testing.T) {
	var order []int64
	note := func(v int64) func() { return func() { order = append(order, v) } }

	build := func() (*Engine, uint64) {
		e := NewEngine()
		e.Defer(1, note(1))   // genesis, kept
		e.Defer(2, note(2))   // genesis, will be "already fired" (dropped)
		e.Defer(1e4, note(3)) // genesis in the overflow tier
		watermark := e.Seq()
		e.DeferTag(3, testTag{v: 4}, note(4))   // tagged runtime event
		e.DeferTag(2e4, testTag{v: 5}, note(5)) // tagged, overflow tier
		e.ScheduleTag(5, Owned, note(6))        // owned: skipped by EncodePending
		return e, watermark
	}

	src, wm := build()
	enc := snapshot.NewEnc()
	if err := src.EncodePending(enc, wm); err != nil {
		t.Fatal(err)
	}

	// Rebuild deterministically, then restore: drop genesis event 2 (as if
	// the image had been cut after it fired) by re-encoding without it.
	// Here the image holds all three genesis refs, so all three are kept.
	dst, _ := build()
	dst.BeginRestore(0, src.Seq(), 0)
	tags := map[uint64]int64{}
	err := dst.DecodePending(snapshot.NewDec(enc.Data()), func(kind uint16, when Time, seq uint64, payload *snapshot.Dec) error {
		if kind != 7 {
			return errors.New("unexpected kind")
		}
		v := payload.I64()
		tags[seq] = v
		dst.RestoreEvent(when, seq, testTag{v: v}, func() { order = append(order, v) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The owned event's owner restores it explicitly.
	dst.RestoreEvent(5, ownedSeqOf(t, src), Owned, func() { order = append(order, 6) })
	dst.FinishRestore()
	if len(tags) != 2 {
		t.Fatalf("decoded %d tagged events, want 2", len(tags))
	}

	want := drainOrder(src, &order)
	wantCopy := append([]int64(nil), want...)
	got := drainOrder(dst, &order)
	if len(got) != len(wantCopy) {
		t.Fatalf("restored run fired %d events, original %d", len(got), len(wantCopy))
	}
	for i := range got {
		if got[i] != wantCopy[i] {
			t.Fatalf("firing order diverges at %d: got %v, want %v", i, got, wantCopy)
		}
	}
}

// ownedSeqOf digs out the seq of the single Owned-tagged event in an
// engine built by the test's build() helper (it was the last scheduled).
func ownedSeqOf(t *testing.T, e *Engine) uint64 {
	t.Helper()
	var seq uint64
	found := false
	e.q.each(func(ev *Event) {
		if ev.tag == Owned {
			seq = ev.seq
			found = true
		}
	})
	if !found {
		t.Fatal("no Owned event pending")
	}
	return seq
}

// TestEncodePendingRejectsUntagged: a runtime-created event with no tag
// cannot ride a state image — typed error, not silent omission.
func TestEncodePendingRejectsUntagged(t *testing.T) {
	e := NewEngine()
	e.Defer(1, func() {})
	wm := e.Seq()
	e.Defer(2, func() {}) // runtime, untagged
	var ue *UntaggedEventError
	if err := e.EncodePending(snapshot.NewEnc(), wm); !errors.As(err, &ue) {
		t.Fatalf("want UntaggedEventError, got %v", err)
	}
}

// TestKeepGenesisRejectsUnknownSeq: an image naming a genesis event the
// reconstruction did not schedule is a hard error (the spec diverged).
func TestKeepGenesisRejectsUnknownSeq(t *testing.T) {
	e := NewEngine()
	e.BeginRestore(0, 10, 0)
	if err := e.KeepGenesis(99); err == nil {
		t.Fatal("KeepGenesis of an unknown seq succeeded")
	}
	e.FinishRestore()
}

// TestFinishRestoreReleasesUnclaimed: genesis events the image does not
// reference are dropped — they had already fired in the original run.
func TestFinishRestoreReleasesUnclaimed(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Defer(1, func() { fired++ })
	e.Defer(2, func() { fired++ })
	first, haveFirst := uint64(0), false
	e.q.each(func(ev *Event) {
		if !haveFirst || ev.seq < first {
			first, haveFirst = ev.seq, true
		}
	})
	if !haveFirst {
		t.Fatal("no pending events")
	}
	e.BeginRestore(1.5, e.Seq(), 1)
	// Keep only the second event; the first "already fired".
	if err := e.KeepGenesis(first + 1); err != nil {
		t.Fatal(err)
	}
	e.FinishRestore()
	e.Run()
	if fired != 1 {
		t.Fatalf("restored engine fired %d events, want 1", fired)
	}
}

// TestTickerStateRoundTrip: a mid-run ticker restores onto its grid with
// the identical next-fire coordinates.
func TestTickerStateRoundTrip(t *testing.T) {
	var fires []Time
	src := NewEngine()
	tick := NewTicker(src, 3, func() {})
	tick.Start(1)
	src.RunUntil(7.5) // a few ticks in; next at 10
	enc := snapshot.NewEnc()
	tick.EncodeState(enc)

	dst := NewEngine()
	tick2 := NewTicker(dst, 3, func() { fires = append(fires, dst.Now()) })
	dst.BeginRestore(src.Now(), src.Seq(), src.Processed())
	if err := tick2.DecodeState(snapshot.NewDec(enc.Data())); err != nil {
		t.Fatal(err)
	}
	dst.FinishRestore()
	dst.RunUntil(20)
	want := []Time{10, 13, 16, 19}
	if len(fires) != len(want) {
		t.Fatalf("restored ticker fired at %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("restored ticker fired at %v, want %v", fires, want)
		}
	}
}

// TestTickerStoppedRoundTrip: a stopped ticker restores stopped — no
// event enqueued, Resume picks the grid back up.
func TestTickerStoppedRoundTrip(t *testing.T) {
	src := NewEngine()
	tick := NewTicker(src, 2, func() {})
	tick.Start(0.5)
	src.RunUntil(5)
	tick.Stop()
	enc := snapshot.NewEnc()
	tick.EncodeState(enc)

	dst := NewEngine()
	fired := 0
	tick2 := NewTicker(dst, 2, func() { fired++ })
	dst.BeginRestore(src.Now(), src.Seq(), src.Processed())
	if err := tick2.DecodeState(snapshot.NewDec(enc.Data())); err != nil {
		t.Fatal(err)
	}
	dst.FinishRestore()
	if tick2.Active() {
		t.Fatal("stopped ticker restored active")
	}
	dst.RunUntil(9)
	if fired != 0 {
		t.Fatalf("stopped ticker fired %d times after restore", fired)
	}
}

// TestCohortStateRoundTrip with tombstones: members stopped mid-run leave
// nil slots in the cohort's member table (sweep order is part of the
// determinism contract), and the restored cohort must reproduce the slot
// layout exactly — including the tombstones — so subsequent sweeps visit
// survivors in the original order.
func TestCohortStateRoundTrip(t *testing.T) {
	src := NewEngine()
	ct := NewCohortTicker(src, 4)
	co := ct.NewCohort(1)
	members := make([]*CohortMember, 5)
	for i := range members {
		members[i] = co.Add(func() {})
	}
	src.RunUntil(6)
	members[1].Stop() // tombstone in slot 1
	members[3].Stop() // tombstone in slot 3
	src.RunUntil(7)

	memberID := map[*CohortMember]int64{}
	for i, m := range members {
		memberID[m] = int64(i)
	}
	enc := snapshot.NewEnc()
	co.EncodeState(enc, func(m *CohortMember) int64 { return memberID[m] })

	// Rebuild: reconstruction re-adds all five members (genesis wiring),
	// as the runner's heartbeat driver does.
	dst := NewEngine()

	ct2 := NewCohortTicker(dst, 4)
	co2 := ct2.NewCohort(1)
	members2 := make([]*CohortMember, 5)
	var cur []int
	for i := range members2 {
		n := i
		members2[i] = co2.Add(func() { cur = append(cur, n) })
	}
	dst.BeginRestore(src.Now(), src.Seq(), src.Processed())
	err := co2.DecodeState(snapshot.NewDec(enc.Data()), func(v int64) *CohortMember {
		return members2[v]
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.FinishRestore()

	if got := len(co2.members); got != 5 {
		t.Fatalf("restored cohort has %d slots, want 5 (tombstones preserved)", got)
	}
	if co2.members[1] != nil || co2.members[3] != nil {
		t.Fatal("restored cohort lost its tombstones")
	}
	if co2.active != 3 || co2.dead != 2 {
		t.Fatalf("restored cohort counts active=%d dead=%d, want 3/2", co2.active, co2.dead)
	}
	// The next sweep must fire survivors 0, 2, 4 in slot order.
	dst.RunUntil(9.5)
	want := []int{0, 2, 4}
	got := cur
	if len(got) != len(want) {
		t.Fatalf("restored sweep fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored sweep fired %v, want %v", got, want)
		}
	}
}

// TestCohortDecodeRejectsUnknownMember: an image naming a member the
// resolver cannot produce is a typed decode error.
func TestCohortDecodeRejectsUnknownMember(t *testing.T) {
	src := NewEngine()
	ct := NewCohortTicker(src, 4)
	co := ct.NewCohort(1)
	co.Add(func() {})
	src.RunUntil(2)
	enc := snapshot.NewEnc()
	co.EncodeState(enc, func(m *CohortMember) int64 { return 0 })

	dst := NewEngine()
	ct2 := NewCohortTicker(dst, 4)
	co2 := ct2.NewCohort(1)
	dst.BeginRestore(src.Now(), src.Seq(), src.Processed())
	defer dst.FinishRestore()
	if err := co2.DecodeState(snapshot.NewDec(enc.Data()), func(int64) *CohortMember { return nil }); err == nil {
		t.Fatal("decode with an unresolvable member succeeded")
	}
}
