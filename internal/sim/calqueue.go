package sim

import (
	"container/heap"
	"math"
)

// calendarQueue is a hierarchical calendar queue (R. Brown, CACM 1988; the
// overflow tier follows the ladder-queue refinement) tuned for this
// simulator's workload shape: a dense band of near-future events — the
// de-synchronized per-node heartbeat tickers that dominate every run —
// plus a thin far-future tail (job arrivals, churn and chaos schedules).
//
// Near-future events land in fixed-width time buckets covering one "year"
// [yearStart, yearEnd); each bucket is kept sorted by (when, seq), so the
// head of the first non-empty bucket is the global bucketed minimum and
// both schedule and pop are amortized O(1). Events at or past yearEnd sit
// in an overflow min-heap and spill into buckets when the clock crosses
// into their year. Bucket count and width resize adaptively (doubling /
// halving with the width recomputed from the mean gap of the events at the
// head) so occupancy stays near one event per bucket.
//
// Determinism: pop order is strict (when, seq) — bit-identical to the
// binary heap — because bucket windows are disjoint and ascending, each
// bucket is sorted, and the overflow tier is itself a (when, seq) heap.
type calendarQueue struct {
	// now points at the engine clock. Every future push satisfies
	// when >= *now, which is what lets rebase anchor the year low enough
	// that it never has to move backwards twice for the same gap.
	now *Time

	width     Time // bucket width in simulated seconds
	yearStart Time // lower edge of bucket 0's window
	yearEnd   Time // yearStart + width*len(buckets)

	buckets []calBucket
	// cur is the first possibly-occupied bucket: every bucket below it is
	// empty, so the min scan starts here. Pops move it forward; a push
	// into an earlier window moves it back.
	cur int
	// n counts bucketed events (canceled included); overflow events are
	// counted separately by len(overflow).
	n int

	// overflow holds events at or past yearEnd — plus near-future events
	// diverted from a bucket that had filled its slab segment — min-ordered
	// by (when, seq). Because peek takes the eventLess-minimum of the first
	// non-empty bucket's head and the overflow top, correctness does not
	// depend on overflow events lying past the year window; the window is
	// purely a performance split.
	overflow eventHeap

	// cached memoizes the pending minimum between peek and pop;
	// cachedIdx is its bucket (-1 when it is the overflow top). nil means
	// recompute.
	cached    *Event
	cachedIdx int

	// scratch is the reusable rebuild buffer for rebase/resize.
	scratch []*Event
	// slab is the contiguous backing store the buckets' initial segments
	// are carved from; kept on the queue so shrinks reuse it instead of
	// reallocating.
	slab []*Event
}

// calBucket is one time window's events, sorted by (when, seq). head is
// the pop cursor: evs[:head] have already been popped (and nil-ed).
type calBucket struct {
	evs  []*Event
	head int
}

const (
	// calMinBuckets is the smallest (and initial) bucket count; resize
	// doubles and halves from here, never below. Generous on purpose: the
	// year span is width×buckets, and a longer year means fewer boundary
	// crossings — each of which detours the pending band through the
	// overflow heap — for 16KB of slab per engine.
	calMinBuckets = 256
	// calInitialWidth is the starting bucket width before any gap
	// statistics exist: one simulated second, the heartbeat scale.
	calInitialWidth = 1.0
	// calBucketCap is the per-bucket slab capacity pre-allocated at
	// construction and resize. The adaptive width targets ~3 events per
	// bucket (calWidthFactor), so 8 covers the occupancy distribution's
	// tail and the lockstep heartbeat cohorts the cluster models produce
	// (nodes restarted by the same recovery tick beat in phase forever),
	// so steady-state pushes almost never outgrow the slab.
	calBucketCap = 16
	// calSampleEvents bounds how many head events the resize samples when
	// recomputing the width.
	calSampleEvents = 25
	// calWidthFactor is Brown's rule of thumb: width ≈ 3× the mean gap
	// between successive events at the head of the queue.
	calWidthFactor = 3.0
)

func newCalendarQueue(now *Time) *calendarQueue {
	q := &calendarQueue{
		now:       now,
		width:     calInitialWidth,
		overflow:  make(eventHeap, 0, 64),
		cachedIdx: -1,
	}
	q.allocBuckets(calMinBuckets)
	q.yearStart = 0
	q.yearEnd = q.span()
	return q
}

// allocBuckets installs nbuckets empty buckets, each with calBucketCap
// capacity carved from one contiguous slab. The slab and bucket-header
// slices are reused when already big enough (every shrink, and regrows up
// to the high-water mark), so resize allocates only while the queue is
// reaching a new peak size.
func (q *calendarQueue) allocBuckets(nbuckets int) {
	need := nbuckets * calBucketCap
	if cap(q.slab) >= need {
		q.slab = q.slab[:need]
		for i := range q.slab {
			q.slab[i] = nil
		}
	} else {
		q.slab = make([]*Event, need)
	}
	if cap(q.buckets) >= nbuckets {
		q.buckets = q.buckets[:nbuckets]
	} else {
		q.buckets = make([]calBucket, nbuckets)
	}
	for i := range q.buckets {
		q.buckets[i] = calBucket{evs: q.slab[i*calBucketCap : i*calBucketCap : (i+1)*calBucketCap]}
	}
	q.cur = 0
}

func (q *calendarQueue) span() Time { return q.width * Time(len(q.buckets)) }

// bucketFor maps a time in [yearStart, yearEnd) to its bucket. Float
// rounding in the division can land one window off; the correction keeps
// windows exactly half-open and disjoint, which the min scan's ordering
// argument depends on.
func (q *calendarQueue) bucketFor(when Time) int {
	idx := int((when - q.yearStart) / q.width)
	if idx < 0 {
		idx = 0
	} else if idx >= len(q.buckets) {
		idx = len(q.buckets) - 1
	}
	if idx > 0 && when < q.yearStart+Time(idx)*q.width {
		idx--
	} else if idx+1 < len(q.buckets) && when >= q.yearStart+Time(idx+1)*q.width {
		idx++
	}
	return idx
}

func (q *calendarQueue) push(ev *Event) {
	if ev.when < q.yearStart {
		// Rare: the year advanced past a gap (e.g. popping a lazily
		// canceled far-future event leaves yearStart above the clock) and
		// the caller then scheduled before the window. Re-anchor at the
		// clock so no later push can land below the year again.
		q.rebase(math.Min(ev.when, *q.now))
	}
	if ev.when >= q.yearEnd {
		q.overflowPush(ev)
		return
	}
	idx := q.bucketFor(ev.when)
	if b := &q.buckets[idx]; len(b.evs) == cap(b.evs) {
		// The target bucket filled its slab segment: the width is likely
		// too wide for the population (a dense event band crammed into a
		// couple of windows while the rest of the year sits empty), and a
		// full bucket is the only signal — the grow/shrink thresholds
		// watch the population count, not its spread. Re-fit when the
		// sample really halves the width; the 2× hysteresis keeps the
		// O(n) rebuild from thrashing, and same-instant cohorts (which no
		// width can split) fail the hysteresis and fall through.
		if w := q.sampleWidth(); w > 0 && w < q.width/2 {
			q.resize(len(q.buckets))
			if ev.when >= q.yearEnd {
				// The narrower width pulled yearEnd below this event.
				q.overflowPush(ev)
				return
			}
			idx = q.bucketFor(ev.when)
		}
		// Still full (a same-instant burst, which no width fixes): divert
		// to the overflow heap instead of growing the bucket. Ordering is
		// unaffected — peek min-compares the two tiers — and the bucket
		// append path stays allocation-free by construction.
		if b := &q.buckets[idx]; len(b.evs) == cap(b.evs) {
			q.overflowPush(ev)
			return
		}
	}
	if idx < q.cur {
		q.cur = idx
	}
	q.bucketInsert(idx, ev)
	q.n++
	if q.cached != nil && eventLess(ev, q.cached) {
		q.cached, q.cachedIdx = ev, idx
	}
	q.maybeGrow()
}

// overflowPush adds ev to the overflow tier, maintaining the peek memo.
func (q *calendarQueue) overflowPush(ev *Event) {
	heap.Push(&q.overflow, ev)
	if q.cached != nil && eventLess(ev, q.cached) {
		q.cached, q.cachedIdx = ev, -1
	}
	q.maybeGrow()
}

// bucketInsert places ev into bucket idx keeping evs[head:] sorted by
// (when, seq). The common case — a new event later than everything in its
// bucket — is a plain append.
func (q *calendarQueue) bucketInsert(idx int, ev *Event) {
	b := &q.buckets[idx]
	lo, hi := b.head, len(b.evs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(ev, b.evs[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b.evs = append(b.evs, nil)
	copy(b.evs[lo+1:], b.evs[lo:])
	b.evs[lo] = ev
}

func (q *calendarQueue) peek() *Event {
	if q.cached != nil {
		return q.cached
	}
	if q.n > 0 {
		for i := q.cur; i < len(q.buckets); i++ {
			b := &q.buckets[i]
			if b.head < len(b.evs) {
				// Skipped buckets are genuinely empty; advancing cur past
				// them is safe because a push into an earlier window
				// moves cur back.
				q.cur = i
				q.cached, q.cachedIdx = b.evs[b.head], i
				break
			}
		}
		if q.cached == nil {
			panic("sim: calendar queue lost a bucketed event")
		}
	}
	// The overflow tier can hold near-future events (full-bucket
	// diversions), so its top competes with the bucketed minimum.
	if len(q.overflow) > 0 && (q.cached == nil || eventLess(q.overflow[0], q.cached)) {
		q.cached, q.cachedIdx = q.overflow[0], -1
	}
	return q.cached
}

func (q *calendarQueue) pop() *Event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	if q.cachedIdx >= 0 {
		b := &q.buckets[q.cachedIdx]
		b.evs[b.head] = nil
		b.head++
		if b.head == len(b.evs) {
			b.evs = b.evs[:0]
			b.head = 0
		}
		q.cur = q.cachedIdx
		q.n--
	} else {
		heap.Pop(&q.overflow)
		// A pop past yearEnd means the clock is jumping into a later year:
		// re-anchor the buckets around it and pull the rest of the
		// overflow tail forward. (Near-future diversions popped from the
		// overflow tier leave the window alone.)
		if ev.when >= q.yearEnd && !math.IsInf(ev.when, 1) {
			q.advanceYearTo(ev.when)
		}
	}
	q.cached = nil
	q.maybeShrink()
	return ev
}

func (q *calendarQueue) len() int { return q.n + len(q.overflow) }

// advanceYearTo moves the year window to contain t (the event being popped
// from the overflow tier, i.e. the imminent clock value) and spills every
// overflow event that now falls inside the window into buckets.
func (q *calendarQueue) advanceYearTo(t Time) {
	q.yearStart = math.Floor(t/q.width) * q.width
	q.yearEnd = q.yearStart + q.span()
	q.cur = 0
	q.spillOverflow()
	// A year crossing is also the natural moment to re-fit the width: the
	// whole pending set just re-bucketed, so a width mismatch (the event
	// band crammed into a few buckets while the rest of the year sits
	// empty) is visible now, and at small populations this is the only
	// trigger — the grow/shrink thresholds never fire. The 2× hysteresis
	// keeps alternating widths from thrashing the O(n) rebuild, and a
	// rebuild can happen at most once per crossing, whose spill already
	// cost O(pending).
	if w := q.sampleWidth(); w > 0 && (w < q.width/2 || w > q.width*2) {
		q.resize(len(q.buckets))
	}
}

// spillOverflow drains overflow events with when < yearEnd into buckets,
// stopping early if a spill target has filled its slab segment (the
// remaining events simply stay in the overflow tier, which peek already
// treats as a competing minimum).
func (q *calendarQueue) spillOverflow() {
	for len(q.overflow) > 0 && q.overflow[0].when < q.yearEnd {
		ev := q.overflow[0]
		idx := q.bucketFor(ev.when)
		if b := &q.buckets[idx]; len(b.evs) == cap(b.evs) {
			return
		}
		heap.Pop(&q.overflow)
		q.bucketInsert(idx, ev)
		q.n++
	}
}

// rebase moves the year window down so that anchor falls inside it, then
// re-buckets everything under the new geometry.
func (q *calendarQueue) rebase(anchor Time) {
	all := q.collect()
	q.yearStart = math.Floor(anchor/q.width) * q.width
	q.yearEnd = q.yearStart + q.span()
	q.reinsert(all)
}

// collect drains every queued event (buckets and overflow) into the
// reusable scratch buffer and leaves the queue structurally empty.
func (q *calendarQueue) collect() []*Event {
	if cap(q.scratch) < q.len() {
		// Size the rebuild buffer in one shot rather than letting append
		// double its way up; it is retained, so this happens only when the
		// queue reaches a new peak population.
		q.scratch = make([]*Event, 0, q.len())
	}
	all := q.scratch[:0]
	for i := range q.buckets {
		b := &q.buckets[i]
		all = append(all, b.evs[b.head:]...)
		b.evs = b.evs[:0]
		b.head = 0
	}
	all = append(all, q.overflow...)
	q.overflow = q.overflow[:0]
	q.n = 0
	q.cur = 0
	q.cached = nil
	return all
}

// reinsert re-buckets a collect()ed event set under the current year
// geometry. Bucket backing arrays are kept across rebase, so steady-state
// rebuilds allocate only when a bucket outgrows its previous capacity.
func (q *calendarQueue) reinsert(all []*Event) {
	for _, ev := range all {
		if ev.when >= q.yearEnd {
			q.overflow = append(q.overflow, ev)
			continue
		}
		idx := q.bucketFor(ev.when)
		if b := &q.buckets[idx]; len(b.evs) == cap(b.evs) {
			q.overflow = append(q.overflow, ev) // full bucket: divert
			continue
		}
		q.bucketInsert(idx, ev)
		q.n++
	}
	heap.Init(&q.overflow)
	for i := range all {
		all[i] = nil
	}
	q.scratch = all[:0]
}

func (q *calendarQueue) maybeGrow() {
	if q.len() > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

func (q *calendarQueue) maybeShrink() {
	if len(q.buckets) > calMinBuckets && q.len() < len(q.buckets)/2 {
		q.resize(len(q.buckets) / 2)
	}
}

// resize recomputes the width from the head of the queue, reallocates
// nbuckets buckets, and re-buckets everything. Called on doubling /
// halving thresholds, so its O(n) cost amortizes to O(1) per operation.
func (q *calendarQueue) resize(nbuckets int) {
	if w := q.sampleWidth(); w > 0 {
		q.width = w
	}
	// Anchor the new year at (or below) the old one and the clock, so the
	// invariant yearStart <= every future push survives the move.
	anchor := math.Min(q.yearStart, *q.now)
	all := q.collect()
	q.allocBuckets(nbuckets)
	q.yearStart = math.Floor(anchor/q.width) * q.width
	q.yearEnd = q.yearStart + q.span()
	q.reinsert(all)
}

// sampleWidth estimates a bucket width as calWidthFactor times the mean
// gap between the first calSampleEvents bucketed events (which are already
// in exact pop order: ascending disjoint windows, sorted within each).
// It returns 0 when there is no usable signal (fewer than two events, or
// all at one instant) and the caller keeps the old width.
func (q *calendarQueue) sampleWidth() Time {
	var first, last Time
	count := 0
	for i := q.cur; i < len(q.buckets) && count < calSampleEvents; i++ {
		b := &q.buckets[i]
		for j := b.head; j < len(b.evs) && count < calSampleEvents; j++ {
			if count == 0 {
				first = b.evs[j].when
			}
			last = b.evs[j].when
			count++
		}
	}
	if count < 2 || last <= first {
		return 0
	}
	w := calWidthFactor * (last - first) / Time(count-1)
	if math.IsInf(w, 1) || w <= 0 {
		return 0
	}
	return w
}

func (q *calendarQueue) compact() int {
	removed := 0
	if q.n > 0 {
		for i := q.cur; i < len(q.buckets); i++ {
			b := &q.buckets[i]
			w := b.head
			for j := b.head; j < len(b.evs); j++ {
				if b.evs[j].canceled {
					b.evs[j].inQueue = false
					removed++
					continue
				}
				b.evs[w] = b.evs[j]
				w++
			}
			for j := w; j < len(b.evs); j++ {
				b.evs[j] = nil
			}
			b.evs = b.evs[:w]
			if b.head == len(b.evs) {
				b.evs = b.evs[:0]
				b.head = 0
			}
		}
		q.n -= removed
	}
	kept := q.overflow[:0]
	for _, ev := range q.overflow {
		if ev.canceled {
			ev.inQueue = false
			removed++
			continue
		}
		kept = append(kept, ev)
	}
	if len(kept) < len(q.overflow) {
		// Only a sweep that actually dropped overflow events disturbs the
		// heap shape; an untouched tier keeps its invariant.
		for i := len(kept); i < len(q.overflow); i++ {
			q.overflow[i] = nil
		}
		q.overflow = kept
		heap.Init(&q.overflow)
	}
	q.cached = nil
	return removed
}

func (q *calendarQueue) each(f func(*Event)) {
	for i := range q.buckets {
		b := &q.buckets[i]
		for _, ev := range b.evs[b.head:] {
			f(ev)
		}
	}
	for _, ev := range q.overflow {
		f(ev)
	}
}

func (q *calendarQueue) kind() string { return "calendar" }
