package sim

import "testing"

// benchEngines runs a sub-benchmark against each queue implementation, so
// every `go test -bench` run reports heap and calendar side by side.
func benchEngines(b *testing.B, run func(b *testing.B, mk func() *Engine)) {
	b.Run("calendar", func(b *testing.B) {
		run(b, NewEngine)
	})
	b.Run("heap", func(b *testing.B) {
		run(b, func() *Engine {
			e := NewEngine()
			e.SetHeapQueue(true)
			return e
		})
	})
}

// BenchmarkScheduleRun measures the pending-set hot path: schedule and
// drain batches of events, the core cost of every simulation.
func BenchmarkScheduleRun(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() *Engine) {
		const batch = 1024
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := mk()
			for j := 0; j < batch; j++ {
				e.Schedule(float64(j%17), func() {})
			}
			e.Run()
		}
		b.ReportMetric(float64(batch), "events/iter")
	})
}

// BenchmarkNestedScheduling measures the common simulation pattern of
// events scheduling follow-up events (task completion chains).
func BenchmarkNestedScheduling(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() *Engine) {
		for i := 0; i < b.N; i++ {
			e := mk()
			depth := 0
			var chain func()
			chain = func() {
				depth++
				if depth < 1000 {
					e.Schedule(1, chain)
				}
			}
			e.Schedule(1, chain)
			e.Run()
			depth = 0
		}
	})
}

// BenchmarkCancel measures cancellation overhead, including the threshold
// compaction sweep that a mass cancel triggers.
func BenchmarkCancel(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() *Engine) {
		for i := 0; i < b.N; i++ {
			e := mk()
			evs := make([]*Event, 512)
			for j := range evs {
				evs[j] = e.Schedule(float64(j), func() {})
			}
			for _, ev := range evs {
				e.Cancel(ev)
			}
			e.Run()
		}
	})
}

// BenchmarkTickerSteady measures the ticker fast path: many concurrent
// periodic events rescheduling themselves in place, the heartbeat-dominated
// profile of a full cluster run (~hundreds of node heartbeats).
func BenchmarkTickerSteady(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() *Engine) {
		const tickers = 256
		b.ReportAllocs()
		e := mk()
		for j := 0; j < tickers; j++ {
			tk := NewTicker(e, 3, func() {})
			tk.Start(float64(j) / tickers)
		}
		e.RunUntil(10) // warm-up: structs allocated, queue geometry settled
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.RunUntil(e.Now() + 3) // one full period: every ticker fires once
		}
		b.ReportMetric(tickers, "events/iter")
	})
}

// BenchmarkMixedWorkload interleaves one-shot events, far-future events,
// and cancels on top of a steady ticker population — the closest synthetic
// to a real cluster run's event mix.
func BenchmarkMixedWorkload(b *testing.B) {
	benchEngines(b, func(b *testing.B, mk func() *Engine) {
		b.ReportAllocs()
		e := mk()
		for j := 0; j < 64; j++ {
			tk := NewTicker(e, 3, func() {})
			tk.Start(float64(j) / 64)
		}
		e.RunUntil(10)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 16; j++ {
				e.Defer(float64(j%5)+0.1, func() {})
			}
			ev := e.Schedule(1e4, func() {}) // far-future, lands in overflow
			e.Cancel(ev)
			e.RunUntil(e.Now() + 3)
		}
	})
}
