package sim

import "testing"

// BenchmarkScheduleRun measures the event-heap hot path: schedule and
// drain batches of events, the core cost of every simulation.
func BenchmarkScheduleRun(b *testing.B) {
	const batch = 1024
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < batch; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
	b.ReportMetric(float64(batch), "events/iter")
}

// BenchmarkNestedScheduling measures the common simulation pattern of
// events scheduling follow-up events (task completion chains).
func BenchmarkNestedScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		depth := 0
		var chain func()
		chain = func() {
			depth++
			if depth < 1000 {
				e.Schedule(1, chain)
			}
		}
		e.Schedule(1, chain)
		e.Run()
		depth = 0
	}
}

// BenchmarkCancel measures lazy cancellation overhead.
func BenchmarkCancel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		evs := make([]*Event, 512)
		for j := range evs {
			evs[j] = e.Schedule(float64(j), func() {})
		}
		for _, ev := range evs {
			e.Cancel(ev)
		}
		e.Run()
	}
}
