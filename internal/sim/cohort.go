package sim

// CohortTicker coalesces many same-period periodic callbacks into one
// engine event per cohort per period. Where N independent Tickers cost N
// calendar-queue events every interval, a CohortTicker costs one per
// cohort: the event fires and sweeps every live member's callback in
// membership order. With heartbeats at ~83% of all bus events, this is
// the difference between simulating 20k nodes and not.
//
// Equivalence to per-node tickers is exact, not approximate, under the
// contract below. A cohort's members all share one phase offset, so their
// per-node tickers would fire at identical instants anyway; the engine
// breaks those ties by seq, which is activation order. The cohort sweep
// reproduces that order directly:
//
//   - initial Adds (all at one instant, in node order) append in call
//     order — matching the per-node seq order of their first events;
//   - Stop tombstones the member's slot in O(1), exactly as a canceled
//     per-node event simply stops firing;
//   - Resume appends the member at the tail in O(1): a resumed per-node
//     ticker's fresh event is scheduled later than the surviving members'
//     in-flight events, so it fires after all of them at every subsequent
//     shared instant.
//
// Tick instants come from the same absolute grid arithmetic as Ticker
// (gridTime/nextGridIndex), so per-node and cohort schedules are
// bit-identical, not merely close.
//
// The ordering contract assumes membership changes arrive from ordinary
// simulation events between grid instants (failures, recoveries, churn,
// chaos — all continuous-time), not from inside a sweep callback and not
// at the exact float64 instant of a cohort tick. If a Resume does land
// exactly on a tick instant before the sweep runs, the joined-time guard
// keeps the member silent for that sweep — a per-node ticker resumed at
// time T never fires at T either — so no spurious event is ever
// published.
type CohortTicker struct {
	eng     *Engine
	period  Time
	cohorts []*Cohort
}

// NewCohortTicker creates a coalescing ticker group with the given shared
// period. Period must be positive.
func NewCohortTicker(eng *Engine, period Time) *CohortTicker {
	if period <= 0 {
		panic("sim: cohort ticker period must be positive")
	}
	return &CohortTicker{eng: eng, period: period}
}

// NewCohort creates an empty cohort whose grid is offset by phase from the
// instant of its first Add. All members of the cohort tick at the same
// instants; distinct cohorts should use distinct phases (see
// TestTickerDistinctPhasesNeverCollide for why they then never collide).
func (ct *CohortTicker) NewCohort(phase Time) *Cohort {
	co := &Cohort{ct: ct, phase: phase}
	ct.cohorts = append(ct.cohorts, co)
	return co
}

// StopAll stops every member of every cohort, cancelling all pending
// cohort events. Used at teardown (end of the tracking horizon).
func (ct *CohortTicker) StopAll() {
	for _, co := range ct.cohorts {
		for _, m := range co.members {
			if m != nil {
				m.Stop()
			}
		}
	}
}

// cohortCompactFloor matches the engine's compactFloor: below this many
// tombstoned slots a cohort tolerates the garbage; past it, once
// tombstones outnumber live members, the slice is compacted in one pass.
// This bounds memory under unbounded Stop/Resume flapping (the cohort
// analogue of TestTickerFlapBoundsPending).
const cohortCompactFloor = 64

// Cohort is one coalesced tick stream: a set of member callbacks that all
// fire at the same grid instants, swept by a single engine event.
type Cohort struct {
	ct    *CohortTicker
	phase Time

	// members holds live members in activation order, with nil tombstones
	// where members stopped; active and dead count the two populations.
	members []*CohortMember
	active  int
	dead    int

	// Grid state, mirroring Ticker: anchor is firstAddTime + phase, next
	// the grid index of the pending tick. started latches after the first
	// Add so later resumes rejoin the original grid.
	anchor  Time
	next    uint64
	started bool

	ev       *Event
	running  bool // a non-canceled cohort event is pending
	sweeping bool // inside tick(); defers compaction
}

// CohortMember is one callback's handle within a cohort, with O(1) Stop
// and Resume. It is the cohort-mode counterpart of a per-node Ticker.
type CohortMember struct {
	co *Cohort
	fn func()
	// slot is the member's index in co.members, or -1 while stopped.
	slot int
	// joined is the time of the most recent activation; a sweep at exactly
	// this instant skips the member (a per-node ticker resumed at T never
	// fires at T).
	joined Time
}

// Add registers fn as a new live member and returns its handle. The first
// Add anchors the cohort's grid at now + phase, exactly as Ticker.Start
// would for each member individually.
func (co *Cohort) Add(fn func()) *CohortMember {
	if fn == nil {
		panic("sim: nil cohort member function")
	}
	m := &CohortMember{co: co, fn: fn, slot: -1}
	m.activate()
	return m
}

// Stop deactivates the member in O(1): its slot becomes a tombstone that
// sweeps skip and compaction eventually reclaims. Stopping the last live
// member cancels the cohort's pending event. Stopping a stopped member is
// a no-op.
func (m *CohortMember) Stop() {
	if m.slot < 0 {
		return
	}
	co := m.co
	co.members[m.slot] = nil
	m.slot = -1
	co.active--
	co.dead++
	if co.active == 0 && co.running {
		co.ct.eng.Cancel(co.ev)
		co.running = false
	}
	co.maybeCompact()
}

// Resume reactivates a stopped member in O(1), appending it after every
// currently live member: its next tick lands on the cohort's original
// grid, after the members that never stopped — the same instant and the
// same relative order a freshly rescheduled per-node ticker would get.
// Resuming a live member is a no-op.
func (m *CohortMember) Resume() {
	if m.slot >= 0 {
		return
	}
	m.activate()
}

// Active reports whether the member is live.
func (m *CohortMember) Active() bool { return m.slot >= 0 }

// activate appends m to the member list and ensures the cohort event is
// pending.
func (m *CohortMember) activate() {
	co := m.co
	m.slot = len(co.members)
	m.joined = co.ct.eng.Now()
	co.members = append(co.members, m)
	co.active++
	if !co.started {
		co.started = true
		co.anchor = co.ct.eng.Now() + co.phase
		co.next = 1
		co.scheduleNext()
		return
	}
	if !co.running {
		co.next = nextGridIndex(co.anchor, co.ct.period, co.ct.eng.Now())
		co.scheduleNext()
	}
}

// scheduleNext enqueues the cohort tick at grid index co.next, reusing the
// event struct when the engine no longer owns it (the same aliasing rules
// as Ticker.scheduleNext).
func (co *Cohort) scheduleNext() {
	when := gridTime(co.anchor, co.ct.period, co.next)
	if co.ev != nil && !co.ev.inQueue {
		co.ct.eng.RescheduleAt(co.ev, when)
	} else {
		co.ev = co.ct.eng.At(when, co.tick)
		co.ev.tag = Owned
	}
	co.running = true
}

// tick sweeps every live member in activation order, then re-arms on the
// next grid instant.
func (co *Cohort) tick() {
	co.running = false
	if co.active == 0 {
		return
	}
	now := co.ct.eng.Now()
	co.sweeping = true
	// Members appended during the sweep (a callback resuming another
	// node) extend co.members; the index walk reaches them, and the
	// joined-time guard keeps them silent until the next instant.
	for i := 0; i < len(co.members); i++ {
		m := co.members[i]
		if m == nil || m.joined == now {
			continue
		}
		m.fn()
	}
	co.sweeping = false
	co.maybeCompact()
	if co.active > 0 && !co.running {
		co.next++
		co.scheduleNext()
	}
}

// maybeCompact rebuilds the member slice without tombstones once they
// dominate, preserving activation order and repairing slot indices.
// Deferred while a sweep is walking the slice.
func (co *Cohort) maybeCompact() {
	if co.sweeping || co.dead < cohortCompactFloor || co.dead <= co.active {
		return
	}
	live := co.members[:0]
	for _, m := range co.members {
		if m == nil {
			continue
		}
		m.slot = len(live)
		live = append(live, m)
	}
	// Clear the reclaimed tail so stopped members don't linger reachable.
	for i := len(live); i < len(co.members); i++ {
		co.members[i] = nil
	}
	co.members = live
	co.dead = 0
}
