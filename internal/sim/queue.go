package sim

import "container/heap"

// pendingQueue is the pending-event set behind the engine. Implementations
// must pop in strict (when, seq) order — earliest first, FIFO among equal
// timestamps — because that order is the engine's determinism contract.
// Two implementations exist: the calendar queue (default, amortized O(1)
// for the simulator's dense near-future event band) and the legacy binary
// heap (O(log n), kept runtime-selectable so differential tests can prove
// the calendar queue fires the exact same schedule).
type pendingQueue interface {
	// push inserts ev. The caller (the engine) has already marked it
	// inQueue.
	push(ev *Event)
	// pop removes and returns the minimum (when, seq) event, nil if empty.
	pop() *Event
	// peek returns the minimum without removing it, nil if empty.
	peek() *Event
	// len reports how many events (canceled included) are queued.
	len() int
	// compact removes every canceled event, clears its inQueue mark, and
	// reports how many were dropped. Relative order of survivors is
	// preserved.
	compact() int
	// each visits every queued event (canceled included) in unspecified
	// order; the caller must not mutate the queue during the walk. The
	// checkpoint fingerprint sorts the visited (when, seq) pairs itself.
	each(f func(*Event))
	// kind names the implementation ("calendar" or "heap").
	kind() string
}

// eventLess is the engine-wide ordering: by time, then FIFO by sequence
// number among equal timestamps.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// ---------------------------------------------------------------------------
// Legacy binary-heap queue

// eventHeap orders by (when, seq): earliest first, FIFO among equal
// timestamps.
type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// heapQueue adapts eventHeap to the pendingQueue interface. It is the
// original engine core, preserved behind SetHeapQueue for differential
// testing and head-to-head benchmarking.
type heapQueue struct {
	h eventHeap
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) push(ev *Event) { heap.Push(&q.h, ev) }

func (q *heapQueue) pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *heapQueue) peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) compact() int {
	kept := q.h[:0]
	for _, ev := range q.h {
		if ev.canceled {
			ev.inQueue = false
			continue
		}
		kept = append(kept, ev)
	}
	removed := len(q.h) - len(kept)
	for i := len(kept); i < len(q.h); i++ {
		q.h[i] = nil
	}
	q.h = kept
	heap.Init(&q.h)
	return removed
}

func (q *heapQueue) each(f func(*Event)) {
	for _, ev := range q.h {
		f(ev)
	}
}

func (q *heapQueue) kind() string { return "heap" }
