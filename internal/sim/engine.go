// Package sim implements a deterministic discrete-event simulation engine:
// a pending-event set with FIFO tie-breaking on equal timestamps, backed by
// an amortized-O(1) calendar queue (with a runtime-selectable legacy binary
// heap). It is the substrate on which the HDFS model, the MapReduce model,
// the schedulers, and DARE itself run.
//
// Time is a float64 number of seconds since simulation start. Determinism
// is guaranteed: events at the same timestamp fire in the order they were
// scheduled, and nothing in the engine consults wall-clock time or global
// randomness. Both queue implementations fire the exact same (when, seq)
// schedule, bit for bit.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. The zero Event is invalid; create events
// only through Engine.Schedule/At.
type Event struct {
	when     Time
	seq      uint64
	fn       func()
	canceled bool
	// pooled events were created through Defer/DeferAt: no handle ever
	// escaped, so the engine may recycle the struct after the callback
	// runs. Handle-returning Schedule/At events are never pooled — a
	// retained handle could Cancel a recycled event and corrupt an
	// unrelated callback.
	pooled bool
	// inQueue reports whether the event currently sits in the pending set.
	// Cancel uses it to keep the canceled-pending count exact, and
	// Reschedule uses it to refuse reuse of a struct the queue still owns.
	inQueue bool
	// tag, when non-nil, makes a runtime-created event serializable for
	// state-mode checkpoints (see state.go): Owned events are serialized
	// by their owning component, tagged events by the tag itself, and
	// untagged events are assumed to be genesis events recreated by
	// deterministic reconstruction.
	tag EventTag
}

// When reports the time the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// compactFloor is the minimum number of canceled-pending events before the
// engine considers a compaction sweep; below it, lazy discarding is cheaper
// than sweeping.
const compactFloor = 64

// Engine is the simulation executive. It is not safe for concurrent use;
// the simulated world is single-threaded by design (the standard structure
// for reproducible event-driven simulation).
type Engine struct {
	now     Time
	seq     uint64
	q       pendingQueue
	stopped bool
	// Processed counts events executed; useful for progress reporting and
	// runaway detection in tests.
	processed uint64
	// free holds recycled pooled events (see Event.pooled).
	free []*Event
	// canceledPending counts canceled events still sitting in the queue.
	// When they exceed half the pending set (past compactFloor), the queue
	// is compacted, so ticker start/stop churn cannot grow memory without
	// bound.
	canceledPending int
	// intr, when non-nil, is polled between events: setting it makes the
	// run loop return with RunInterrupted at the next event boundary. It
	// is the one concession to the outside world (signal handlers) the
	// otherwise single-threaded engine makes; nil (the default) keeps the
	// loop free of atomic loads.
	intr *atomic.Bool
	// restoreMap holds popped pending events keyed by seq between
	// BeginRestore and FinishRestore (see state.go).
	restoreMap map[uint64]*Event
}

// RunOutcome reports why a bounded run loop returned.
type RunOutcome uint8

const (
	// RunDrained: the queue ran out of events at or before the time bound
	// (the clock was advanced to the bound when finite).
	RunDrained RunOutcome = iota
	// RunStopped: Stop was called by an event callback.
	RunStopped
	// RunBudget: the processed-event count reached the caller's limit; the
	// clock rests at the last fired event. This is the checkpoint
	// boundary — between two events, never inside one.
	RunBudget
	// RunInterrupted: the interrupt flag installed by SetInterrupt was
	// observed between events.
	RunInterrupted
)

func (o RunOutcome) String() string {
	switch o {
	case RunDrained:
		return "drained"
	case RunStopped:
		return "stopped"
	case RunBudget:
		return "budget"
	case RunInterrupted:
		return "interrupted"
	}
	return fmt.Sprintf("RunOutcome(%d)", uint8(o))
}

// NewEngine returns an engine with the clock at zero, running on the
// calendar queue.
func NewEngine() *Engine {
	e := &Engine{}
	e.q = newCalendarQueue(&e.now)
	return e
}

// SetHeapQueue selects the pending-event set implementation: true installs
// the legacy container/heap queue, false the calendar queue (the default).
// Pending events migrate in (when, seq) order, so the switch is valid at
// any point; differential tests use it to prove both implementations fire
// identical schedules.
func (e *Engine) SetHeapQueue(on bool) {
	want := "calendar"
	if on {
		want = "heap"
	}
	if e.q.kind() == want {
		return
	}
	var nq pendingQueue
	if on {
		nq = newHeapQueue()
	} else {
		nq = newCalendarQueue(&e.now)
	}
	for {
		ev := e.q.pop()
		if ev == nil {
			break
		}
		nq.push(ev)
	}
	e.q = nq
}

// QueueKind names the active pending-event set implementation
// ("calendar" or "heap").
func (e *Engine) QueueKind() string { return e.q.kind() }

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// enqueue stamps the next sequence number on ev and inserts it.
func (e *Engine) enqueue(ev *Event) {
	ev.seq = e.seq
	e.seq++
	ev.inQueue = true
	e.q.push(ev)
}

// Schedule runs fn after delay seconds of simulated time. A negative delay
// is a programming error and panics. It returns the event handle, which
// may be used to cancel the callback before it fires.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time when. Scheduling in the past panics: the
// simulated world cannot rewrite history.
func (e *Engine) At(when Time, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{when: when, fn: fn}
	e.enqueue(ev)
	return ev
}

// Reschedule re-enqueues a previously fired event handle to run delay
// seconds from now, reusing the struct and its callback. This is the
// ticker fast path: a self-rescheduling periodic event cycles through one
// struct with no per-tick allocation and no lazy-cancel garbage. It panics
// if the event is still pending, was created by Defer (the pool owns those
// structs), or the delay is invalid.
func (e *Engine) Reschedule(ev *Event, delay Time) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	if ev == nil || ev.fn == nil {
		panic("sim: Reschedule of an invalid event")
	}
	if ev.pooled {
		panic("sim: Reschedule of a pooled (Defer) event")
	}
	if ev.inQueue {
		panic("sim: Reschedule of a still-pending event")
	}
	ev.when = e.now + delay
	ev.canceled = false
	e.enqueue(ev)
}

// RescheduleAt is Reschedule with an absolute timestamp: it re-enqueues a
// previously fired event handle to run at time when, reusing the struct
// and its callback. Tickers use it to stay on an analytic grid (anchor +
// k·period) instead of accumulating now+period floating-point drift tick
// after tick — the property the cohort heartbeat coalescing relies on to
// keep per-node and cohort schedules bit-identical. The same validity
// rules as Reschedule apply.
func (e *Engine) RescheduleAt(ev *Event, when Time) {
	if when < e.now || math.IsNaN(when) {
		panic(fmt.Sprintf("sim: rescheduling at %v before now %v", when, e.now))
	}
	if ev == nil || ev.fn == nil {
		panic("sim: RescheduleAt of an invalid event")
	}
	if ev.pooled {
		panic("sim: RescheduleAt of a pooled (Defer) event")
	}
	if ev.inQueue {
		panic("sim: RescheduleAt of a still-pending event")
	}
	ev.when = when
	ev.canceled = false
	e.enqueue(ev)
}

// Defer is Schedule without the returned handle, for callers that only
// need fire-and-forget scheduling (e.g. the DARE manager's DeferFunc).
// Because no handle escapes, the event struct comes from (and returns to)
// a free list, so the hottest schedulers allocate nothing per event.
func (e *Engine) Defer(delay Time, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	e.DeferAt(e.now+delay, fn)
}

// DeferAt is At without the returned handle; like Defer it draws the event
// from the free list.
func (e *Engine) DeferAt(when Time, fn func()) {
	e.deferAt(when, fn, nil)
}

func (e *Engine) deferAt(when Time, fn func(), tag EventTag) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.when, ev.fn, ev.canceled = when, fn, false
	} else {
		ev = &Event{when: when, fn: fn, pooled: true}
	}
	ev.tag = tag
	e.enqueue(ev)
}

// release returns a popped pooled event to the free list. The callback has
// already been captured by the caller, so the struct may be reused by the
// very next DeferAt — including one scheduled from inside the callback.
func (e *Engine) release(ev *Event) {
	if ev.pooled {
		ev.fn = nil
		ev.tag = nil
		e.free = append(e.free, ev)
	}
}

// Cancel marks ev so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op. The event stays queued and is
// discarded lazily when popped — Cancel itself is O(1) — but the engine
// keeps an exact count of canceled events still pending, and once they
// outnumber the live ones (past a floor) the queue is swept in one pass.
// That bounds memory under heavy cancel workloads (ticker flapping,
// speculative-task cancellation) where lazy discarding alone would let
// garbage accumulate until popped.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if !ev.inQueue {
		return
	}
	e.canceledPending++
	if e.canceledPending >= compactFloor && e.canceledPending*2 > e.q.len() {
		e.canceledPending -= e.q.compact()
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains. It returns the final clock
// value.
func (e *Engine) Run() Time {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events with timestamps <= until, then advances the
// clock to min(until, +inf-of-empty-queue). It returns the clock value on
// exit. If Stop was requested, execution halts immediately after the
// current event.
func (e *Engine) RunUntil(until Time) Time {
	e.RunUntilOutcome(until, math.MaxUint64)
	return e.now
}

// RunUntilOutcome is RunUntil with a processed-event budget: the loop
// additionally returns (without advancing the clock) as soon as the
// engine's lifetime processed count reaches stopAt. The budget check sits
// between events, so a RunBudget return is always a clean checkpoint
// boundary: the previous event has fully run, the next has not started.
// Canceled events discarded by the loop do not count against the budget
// (they never counted as processed). The returned outcome reports why the
// loop exited; RunUntil(x) is RunUntilOutcome(x, MaxUint64) with the
// outcome ignored.
func (e *Engine) RunUntilOutcome(until Time, stopAt uint64) RunOutcome {
	e.stopped = false
	outcome := RunDrained
	for {
		if e.stopped {
			outcome = RunStopped
			break
		}
		if e.processed >= stopAt {
			outcome = RunBudget
			break
		}
		if e.intr != nil && e.intr.Load() {
			outcome = RunInterrupted
			break
		}
		next := e.q.peek()
		if next == nil || next.when > until {
			break
		}
		e.q.pop()
		next.inQueue = false
		if next.canceled {
			e.canceledPending--
			e.release(next)
			continue
		}
		e.now = next.when
		e.processed++
		fn := next.fn
		e.release(next)
		fn()
	}
	if outcome == RunDrained && !math.IsInf(until, 1) && until > e.now {
		e.now = until
	}
	return outcome
}

// SetInterrupt installs flag as the engine's interrupt line: when a
// concurrent goroutine (a signal handler) sets it, the run loop returns
// RunInterrupted at the next boundary between events. Pass nil to
// uninstall. The flag is polled, never cleared, by the engine.
func (e *Engine) SetInterrupt(flag *atomic.Bool) { e.intr = flag }

// PendingSchedule visits the live (non-canceled) pending events in strict
// (when, seq) order — the exact future firing schedule. The checkpoint
// fingerprint folds this schedule so a resumed run must rebuild not just
// the same domain state but the same calendar of what happens next.
func (e *Engine) PendingSchedule(f func(when Time, seq uint64)) {
	type ws struct {
		when Time
		seq  uint64
	}
	sched := make([]ws, 0, e.q.len())
	e.q.each(func(ev *Event) {
		if !ev.canceled {
			sched = append(sched, ws{ev.when, ev.seq})
		}
	})
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].when != sched[j].when {
			return sched[i].when < sched[j].when
		}
		return sched[i].seq < sched[j].seq
	})
	for _, s := range sched {
		f(s.when, s.seq)
	}
}

// Seq reports the next sequence number the engine will stamp — with Now
// and Processed, the engine-level coordinates a checkpoint cursor records.
func (e *Engine) Seq() uint64 { return e.seq }

// Step executes exactly one pending non-canceled event, if any, and
// reports whether one was executed. It exists mainly for tests that need
// fine-grained control.
func (e *Engine) Step() bool {
	for {
		next := e.q.pop()
		if next == nil {
			return false
		}
		next.inQueue = false
		if next.canceled {
			e.canceledPending--
			e.release(next)
			continue
		}
		e.now = next.when
		e.processed++
		fn := next.fn
		e.release(next)
		fn()
		return true
	}
}

// Pending reports how many events (including canceled-but-unswept ones)
// remain in the queue.
func (e *Engine) Pending() int { return e.q.len() }
