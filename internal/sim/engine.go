// Package sim implements a deterministic discrete-event simulation engine:
// a pending-event set backed by a binary heap with FIFO tie-breaking on
// equal timestamps. It is the substrate on which the HDFS model, the
// MapReduce model, the schedulers, and DARE itself run.
//
// Time is a float64 number of seconds since simulation start. Determinism
// is guaranteed: events at the same timestamp fire in the order they were
// scheduled, and nothing in the engine consults wall-clock time or global
// randomness.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// Event is a scheduled callback. The zero Event is invalid; create events
// only through Engine.Schedule/At.
type Event struct {
	when     Time
	seq      uint64
	fn       func()
	canceled bool
	// pooled events were created through Defer/DeferAt: no handle ever
	// escaped, so the engine may recycle the struct after the callback
	// runs. Handle-returning Schedule/At events are never pooled — a
	// retained handle could Cancel a recycled event and corrupt an
	// unrelated callback.
	pooled bool
	index  int // heap index, -1 once popped
}

// When reports the time the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is the simulation executive. It is not safe for concurrent use;
// the simulated world is single-threaded by design (the standard structure
// for reproducible event-driven simulation).
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	// Processed counts events executed; useful for progress reporting and
	// runaway detection in tests.
	processed uint64
	// free holds recycled pooled events (see Event.pooled).
	free []*Event
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay seconds of simulated time. A negative delay
// is a programming error and panics. It returns the event handle, which
// may be used to cancel the callback before it fires.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time when. Scheduling in the past panics: the
// simulated world cannot rewrite history.
func (e *Engine) At(when Time, fn func()) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Defer is Schedule without the returned handle, for callers that only
// need fire-and-forget scheduling (e.g. the DARE manager's DeferFunc).
// Because no handle escapes, the event struct comes from (and returns to)
// a free list, so the hottest schedulers allocate nothing per event.
func (e *Engine) Defer(delay Time, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	e.DeferAt(e.now+delay, fn)
}

// DeferAt is At without the returned handle; like Defer it draws the event
// from the free list.
func (e *Engine) DeferAt(when Time, fn func()) {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", when, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.when, ev.fn, ev.canceled = when, fn, false
	} else {
		ev = &Event{when: when, fn: fn, pooled: true}
	}
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.queue, ev)
}

// release returns a popped pooled event to the free list. The callback has
// already been captured by the caller, so the struct may be reused by the
// very next DeferAt — including one scheduled from inside the callback.
func (e *Engine) release(ev *Event) {
	if ev.pooled {
		ev.fn = nil
		e.free = append(e.free, ev)
	}
}

// Cancel marks ev so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op. The event stays in the heap and is
// discarded lazily when popped, which keeps Cancel O(1).
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.canceled = true
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains. It returns the final clock
// value.
func (e *Engine) Run() Time {
	return e.RunUntil(math.Inf(1))
}

// RunUntil executes events with timestamps <= until, then advances the
// clock to min(until, +inf-of-empty-queue). It returns the clock value on
// exit. If Stop was requested, execution halts immediately after the
// current event.
func (e *Engine) RunUntil(until Time) Time {
	e.stopped = false
	for e.queue.Len() > 0 && !e.stopped {
		next := e.queue[0]
		if next.when > until {
			break
		}
		heap.Pop(&e.queue)
		if next.canceled {
			e.release(next)
			continue
		}
		e.now = next.when
		e.processed++
		fn := next.fn
		e.release(next)
		fn()
	}
	if !math.IsInf(until, 1) && until > e.now && !e.stopped {
		e.now = until
	}
	return e.now
}

// Step executes exactly one pending non-canceled event, if any, and
// reports whether one was executed. It exists mainly for tests that need
// fine-grained control.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		next := heap.Pop(&e.queue).(*Event)
		if next.canceled {
			e.release(next)
			continue
		}
		e.now = next.when
		e.processed++
		fn := next.fn
		e.release(next)
		fn()
		return true
	}
	return false
}

// Pending reports how many events (including canceled-but-unpopped ones)
// remain in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventHeap orders by (when, seq): earliest first, FIFO among equal
// timestamps. That tie-break is what makes runs reproducible.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
