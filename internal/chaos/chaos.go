// Package chaos generates seeded randomized gray-failure scenarios: a mix
// of clean crashes, slow/disk-degraded nodes, silent block corruption, and
// false-dead flaps, drawn from one RNG stream so the same seed always
// yields the same schedule. It is the scenario half of the chaos harness;
// internal/runner wires the schedule into a tracker and runs the
// cross-layer invariant checker after every injected event.
//
// The generator deliberately spans every failure class the simulator
// models (see DESIGN.md's failure taxonomy): crashes exercise the kill /
// requeue / repair path, degradations exercise delay scheduling and the
// speculator, corruption exercises the integrity-aware read path, and
// flaps exercise stale-replica reconciliation on re-registration.
package chaos

import (
	"fmt"
	"sort"

	"dare/internal/stats"
)

// Kind tags one scheduled chaos action.
type Kind int

const (
	// Crash kills a node cleanly (heartbeat stops, replicas scrubbed).
	Crash Kind = iota
	// Recover rejoins a crashed node empty (HDFS re-registration).
	Recover
	// Slow degrades a node's service or disk by Action.Factor.
	Slow
	// Restore ends a node's degradation.
	Restore
	// Corrupt silently corrupts one replica of a random block.
	Corrupt
	// Flap falsely declares a live node dead for Action.Down seconds; it
	// rejoins with its disk intact and reconciles stale replicas.
	Flap
	// MasterCrash takes the control plane down for Action.Down seconds:
	// heartbeats go unanswered, metadata freezes, and recovery replays the
	// journal (or warms from block reports). Node is -1.
	MasterCrash
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Recover:
		return "recover"
	case Slow:
		return "slow"
	case Restore:
		return "restore"
	case Corrupt:
		return "corrupt"
	case Flap:
		return "flap"
	case MasterCrash:
		return "master-crash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Action is one scheduled chaos injection. Node is -1 for Corrupt (the
// victim block is drawn at fire time from the gray RNG, so identical
// schedules hit identical blocks across policy arms).
type Action struct {
	At   float64
	Kind Kind
	Node int
	// Factor is the degradation multiplier for Slow (> 1).
	Factor float64
	// Disk marks a Slow action as disk degradation (bandwidth divider)
	// rather than service-time degradation.
	Disk bool
	// Down is the false-dead window for Flap, or the outage length for
	// MasterCrash.
	Down float64
}

// Spec parameterizes scenario generation.
type Spec struct {
	// Events is the number of chaos injections to draw (paired Recover /
	// Restore actions do not count toward it).
	Events int
	// Horizon bounds injection: no action starts at or past it.
	Horizon float64
	// CrashWeight, SlowWeight, CorruptWeight, FlapWeight, and MasterWeight
	// set the relative frequency of each failure class; a zero weight
	// disables the class. At least one must be positive. MasterWeight
	// requires the tracker to have master recovery enabled.
	CrashWeight, SlowWeight, CorruptWeight, FlapWeight, MasterWeight float64
	// MTTR is the mean downtime after a crash (exponential); <= 0 makes
	// crashes permanent.
	MTTR float64
	// SlowMean is the mean degradation episode length (exponential).
	SlowMean float64
	// SlowFactorMax bounds the degradation multiplier, drawn uniformly
	// from (2, SlowFactorMax]. Values <= 2 pin the factor at 2.
	SlowFactorMax float64
	// FlapDown is the mean false-dead window (exponential).
	FlapDown float64
	// MasterDown is the mean control-plane outage length (exponential);
	// required > 0 when MasterWeight is positive. Outages never overlap:
	// the class is infeasible while a previous outage is still open.
	MasterDown float64
}

// Validate reports a specification error, if any.
func (s Spec) Validate() error {
	switch {
	case s.Events < 0:
		return fmt.Errorf("chaos: Events must be >= 0, got %d", s.Events)
	case s.Horizon <= 0 && s.Events > 0:
		return fmt.Errorf("chaos: Horizon must be > 0, got %v", s.Horizon)
	case s.CrashWeight < 0 || s.SlowWeight < 0 || s.CorruptWeight < 0 || s.FlapWeight < 0 || s.MasterWeight < 0:
		return fmt.Errorf("chaos: class weights must be >= 0")
	case s.Events > 0 && s.CrashWeight+s.SlowWeight+s.CorruptWeight+s.FlapWeight+s.MasterWeight <= 0:
		return fmt.Errorf("chaos: at least one class weight must be positive")
	case s.MasterWeight > 0 && s.MasterDown <= 0:
		return fmt.Errorf("chaos: MasterWeight > 0 requires MasterDown > 0, got %v", s.MasterDown)
	case s.MTTR < 0:
		return fmt.Errorf("chaos: MTTR must be >= 0, got %v", s.MTTR)
	case s.SlowMean < 0:
		return fmt.Errorf("chaos: SlowMean must be >= 0, got %v", s.SlowMean)
	case s.FlapDown < 0:
		return fmt.Errorf("chaos: FlapDown must be >= 0, got %v", s.FlapDown)
	}
	return nil
}

// nodeState tracks one node through scenario generation so victims are
// always feasible: crashes and flaps only hit up nodes (never the last
// one), degradations only hit up, not-currently-degraded nodes.
type nodeState struct {
	downUntil float64
	slowUntil float64
}

// Generate draws a chaos scenario for a cluster of n nodes. It walks the
// same up/down bookkeeping as the churn generator — a victim is always in
// a state where the injection is meaningful at its fire time, and at least
// one node stays up at every instant. Actions are returned sorted by time.
func Generate(n int, spec Spec, rng *stats.RNG) ([]Action, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || spec.Events == 0 {
		return nil, nil
	}
	nodes := make([]nodeState, n)
	gap := spec.Horizon / float64(spec.Events) // mean inter-injection gap
	var actions []Action
	t := 0.0
	masterDownUntil := 0.0
	for drawn := 0; drawn < spec.Events; drawn++ {
		t += rng.ExpFloat64() * gap
		if t >= spec.Horizon {
			break
		}
		kind, ok := pickKind(spec, nodes, masterDownUntil, t, rng)
		if !ok {
			continue // no class is feasible at this instant
		}
		switch kind {
		case Crash:
			v := pickUp(nodes, t, rng)
			actions = append(actions, Action{At: t, Kind: Crash, Node: v})
			if spec.MTTR > 0 {
				r := t + rng.ExpFloat64()*spec.MTTR
				nodes[v].downUntil = r
				actions = append(actions, Action{At: r, Kind: Recover, Node: v})
			} else {
				nodes[v].downUntil = inf
			}
		case Slow:
			v := pickUpNotSlow(nodes, t, rng)
			factor := 2.0
			if spec.SlowFactorMax > 2 {
				factor += rng.Float64() * (spec.SlowFactorMax - 2)
			}
			disk := rng.Float64() < 0.5
			end := t + rng.ExpFloat64()*spec.SlowMean
			nodes[v].slowUntil = end
			actions = append(actions, Action{At: t, Kind: Slow, Node: v, Factor: factor, Disk: disk})
			actions = append(actions, Action{At: end, Kind: Restore, Node: v})
		case Corrupt:
			actions = append(actions, Action{At: t, Kind: Corrupt, Node: -1})
		case Flap:
			v := pickUp(nodes, t, rng)
			down := rng.ExpFloat64() * spec.FlapDown
			if down <= 0 {
				down = spec.FlapDown
			}
			nodes[v].downUntil = t + down
			actions = append(actions, Action{At: t, Kind: Flap, Node: v, Down: down})
		case MasterCrash:
			down := rng.ExpFloat64() * spec.MasterDown
			if down <= 0 {
				down = spec.MasterDown
			}
			masterDownUntil = t + down
			actions = append(actions, Action{At: t, Kind: MasterCrash, Node: -1, Down: down})
		}
	}
	// Paired Recover/Restore actions were appended out of order; sort by
	// time with a total (Kind, Node) tie-break so the schedule is
	// deterministic even under (measure-zero) time ties.
	sort.Slice(actions, func(i, j int) bool {
		a, b := actions[i], actions[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Node < b.Node
	})
	return actions, nil
}

const inf = 1e308

// pickKind draws a failure class among those feasible at time t, weighted
// by the spec. Crash and Flap need at least two up nodes (never take the
// last one down); Slow needs an up, not-currently-degraded node; Corrupt
// is always feasible; MasterCrash needs the previous outage to have ended
// (a single master cannot crash twice concurrently).
func pickKind(spec Spec, nodes []nodeState, masterDownUntil, t float64, rng *stats.RNG) (Kind, bool) {
	upCount, slowable := 0, 0
	for _, ns := range nodes {
		if ns.downUntil <= t {
			upCount++
			if ns.slowUntil <= t {
				slowable++
			}
		}
	}
	type cand struct {
		kind Kind
		w    float64
	}
	var cands []cand
	if spec.CrashWeight > 0 && upCount > 1 {
		cands = append(cands, cand{Crash, spec.CrashWeight})
	}
	if spec.SlowWeight > 0 && slowable > 0 {
		cands = append(cands, cand{Slow, spec.SlowWeight})
	}
	if spec.CorruptWeight > 0 {
		cands = append(cands, cand{Corrupt, spec.CorruptWeight})
	}
	if spec.FlapWeight > 0 && upCount > 1 {
		cands = append(cands, cand{Flap, spec.FlapWeight})
	}
	if spec.MasterWeight > 0 && masterDownUntil <= t {
		cands = append(cands, cand{MasterCrash, spec.MasterWeight})
	}
	if len(cands) == 0 {
		return 0, false
	}
	total := 0.0
	for _, c := range cands {
		total += c.w
	}
	x := rng.Float64() * total
	for _, c := range cands {
		if x < c.w {
			return c.kind, true
		}
		x -= c.w
	}
	return cands[len(cands)-1].kind, true
}

// pickUp draws a uniformly random up node at time t. Callers guarantee at
// least two exist.
func pickUp(nodes []nodeState, t float64, rng *stats.RNG) int {
	up := make([]int, 0, len(nodes))
	for i, ns := range nodes {
		if ns.downUntil <= t {
			up = append(up, i)
		}
	}
	return up[rng.Intn(len(up))]
}

// pickUpNotSlow draws a uniformly random up, not-degraded node at time t.
// Callers guarantee one exists.
func pickUpNotSlow(nodes []nodeState, t float64, rng *stats.RNG) int {
	ok := make([]int, 0, len(nodes))
	for i, ns := range nodes {
		if ns.downUntil <= t && ns.slowUntil <= t {
			ok = append(ok, i)
		}
	}
	return ok[rng.Intn(len(ok))]
}
