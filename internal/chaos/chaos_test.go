package chaos

import (
	"testing"

	"dare/internal/stats"
)

func spec() Spec {
	return Spec{
		Events:        24,
		Horizon:       100,
		CrashWeight:   1,
		SlowWeight:    1.5,
		CorruptWeight: 1.5,
		FlapWeight:    1,
		MTTR:          8,
		SlowMean:      12,
		SlowFactorMax: 6,
		FlapDown:      3,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(10, spec(), stats.NewRNG(42).Split(0xCA05))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(10, spec(), stats.NewRNG(42).Split(0xCA05))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty scenario")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Replaying the schedule against its own up/down bookkeeping must find
// every action feasible: victims up at fire time, never the last live
// node, degradations on non-degraded nodes, sane parameters.
func TestGenerateFeasible(t *testing.T) {
	const n = 10
	actions, err := Generate(n, spec(), stats.NewRNG(7).Split(0xCA05))
	if err != nil {
		t.Fatal(err)
	}
	downUntil := make([]float64, n)
	slowUntil := make([]float64, n)
	upAt := func(t float64) int {
		c := 0
		for _, d := range downUntil {
			if d <= t {
				c++
			}
		}
		return c
	}
	last := 0.0
	classes := make(map[Kind]int)
	for i, a := range actions {
		if a.At < last {
			t.Fatalf("action %d out of order: %g after %g", i, a.At, last)
		}
		last = a.At
		classes[a.Kind]++
		switch a.Kind {
		case Crash:
			if downUntil[a.Node] > a.At {
				t.Fatalf("action %d crashes down node %d", i, a.Node)
			}
			if upAt(a.At) <= 1 {
				t.Fatalf("action %d crashes the last live node", i)
			}
			downUntil[a.Node] = inf // Recover action resets below
		case Recover:
			downUntil[a.Node] = a.At
		case Slow:
			if a.Factor <= 1 {
				t.Fatalf("action %d has factor %g", i, a.Factor)
			}
			if downUntil[a.Node] > a.At {
				t.Fatalf("action %d degrades down node %d", i, a.Node)
			}
			if slowUntil[a.Node] > a.At {
				t.Fatalf("action %d degrades already-degraded node %d", i, a.Node)
			}
			slowUntil[a.Node] = inf
		case Restore:
			slowUntil[a.Node] = a.At
		case Corrupt:
			if a.Node != -1 {
				t.Fatalf("action %d: corrupt victims resolve at fire time, got node %d", i, a.Node)
			}
		case Flap:
			if a.Down <= 0 {
				t.Fatalf("action %d has flap window %g", i, a.Down)
			}
			if downUntil[a.Node] > a.At {
				t.Fatalf("action %d flaps down node %d", i, a.Node)
			}
			if upAt(a.At) <= 1 {
				t.Fatalf("action %d flaps the last live node", i)
			}
			downUntil[a.Node] = a.At + a.Down
		}
	}
	// With 24 draws and all weights positive, every class should appear.
	for _, k := range []Kind{Crash, Slow, Corrupt, Flap} {
		if classes[k] == 0 {
			t.Fatalf("class %v never drawn in 24 events", k)
		}
	}
}

// Master outages must never overlap: a new MasterCrash is only feasible
// after the previous outage window closed.
func TestGenerateMasterOutagesDisjoint(t *testing.T) {
	s := spec()
	s.Events = 60
	s.MasterWeight = 2
	s.MasterDown = 5
	actions, err := Generate(10, s, stats.NewRNG(11).Split(0xCA05))
	if err != nil {
		t.Fatal(err)
	}
	masterDownUntil := 0.0
	seen := 0
	for i, a := range actions {
		if a.Kind != MasterCrash {
			continue
		}
		seen++
		if a.Node != -1 {
			t.Fatalf("action %d: master crash carries node %d, want -1", i, a.Node)
		}
		if a.Down <= 0 {
			t.Fatalf("action %d: master outage window %g", i, a.Down)
		}
		if a.At < masterDownUntil {
			t.Fatalf("action %d: master crash at %g overlaps outage open until %g", i, a.At, masterDownUntil)
		}
		masterDownUntil = a.At + a.Down
	}
	if seen == 0 {
		t.Fatal("MasterCrash never drawn in 60 events with weight 2")
	}
}

func TestGenerateEmpty(t *testing.T) {
	if got, err := Generate(0, spec(), stats.NewRNG(1)); err != nil || got != nil {
		t.Fatalf("n=0: got %v, %v", got, err)
	}
	s := spec()
	s.Events = 0
	if got, err := Generate(10, s, stats.NewRNG(1)); err != nil || got != nil {
		t.Fatalf("Events=0: got %v, %v", got, err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []func(s *Spec){
		func(s *Spec) { s.Events = -1 },
		func(s *Spec) { s.Horizon = 0 },
		func(s *Spec) { s.CrashWeight = -1 },
		func(s *Spec) { s.CrashWeight, s.SlowWeight, s.CorruptWeight, s.FlapWeight = 0, 0, 0, 0 },
		func(s *Spec) { s.MTTR = -1 },
		func(s *Spec) { s.SlowMean = -1 },
		func(s *Spec) { s.FlapDown = -1 },
		func(s *Spec) { s.MasterWeight = -1 },
		func(s *Spec) { s.MasterWeight = 1; s.MasterDown = 0 },
	}
	for i, mutate := range bad {
		s := spec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: bad spec accepted: %+v", i, s)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Crash: "crash", Recover: "recover", Slow: "slow",
		Restore: "restore", Corrupt: "corrupt", Flap: "flap",
		MasterCrash: "master-crash",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
