package retry

import (
	"math"
	"testing"
)

// TestDelayDoubling pins the base progression: attempt n waits Base·2ⁿ
// until the cap cuts in, then every later attempt waits exactly Cap.
func TestDelayDoubling(t *testing.T) {
	b := Backoff{Base: 0.5, Cap: 8}
	want := []float64{0.5, 1, 2, 4, 8, 8, 8}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Errorf("Delay(%d) = %g, want %g", n, got, w)
		}
	}
}

// TestDelayMatchesGrayReadCore replays the exact expression grayRead
// used before the factor-out, across a sweep of attempts including the
// shift-overflow region, and demands bit-identical results.
func TestDelayMatchesGrayReadCore(t *testing.T) {
	legacy := func(base, cap float64, attempt int) float64 {
		backoff := base * float64(int64(1)<<uint(attempt))
		if backoff > cap || backoff <= 0 {
			backoff = cap
		}
		return backoff
	}
	cases := []Backoff{
		{Base: 1.5, Cap: 12},
		{Base: 0.001, Cap: 1e9},
		{Base: 3, Cap: 3}, // cap == base: saturates immediately
	}
	for _, b := range cases {
		for attempt := 0; attempt < 80; attempt++ {
			got := b.Delay(attempt)
			want := legacy(b.Base, b.Cap, attempt)
			if got != want || math.Signbit(got) != math.Signbit(want) {
				t.Fatalf("Backoff%+v.Delay(%d) = %g, legacy core = %g", b, attempt, got, want)
			}
		}
	}
}

// TestDelayOverflowPinsAtCap exercises the int64 shift wrap: at attempt
// 63 the multiplier goes negative and at 64 it wraps to 1<<0 via the
// uint conversion on some older formulations — the guard must pin every
// overflowing attempt at Cap, never return a negative or zero delay.
func TestDelayOverflowPinsAtCap(t *testing.T) {
	b := Backoff{Base: 2, Cap: 100}
	for attempt := 60; attempt < 130; attempt++ {
		got := b.Delay(attempt)
		if got <= 0 {
			t.Fatalf("Delay(%d) = %g, want positive (cap)", attempt, got)
		}
		if got > b.Cap {
			t.Fatalf("Delay(%d) = %g exceeds cap %g", attempt, got, b.Cap)
		}
	}
	if got := b.Delay(63); got != b.Cap {
		t.Errorf("Delay(63) = %g, want cap %g (negative multiplier)", got, b.Cap)
	}
}
