// Package retry holds the capped-exponential-backoff core shared by the
// integrity-aware read path (mapreduce.grayRead) and the master-outage
// retry machinery. It exists so the two layers cannot drift: the gray
// read's retry pacing was tuned against the committed goldens, and the
// failover path reuses the exact arithmetic (including the overflow
// guard) rather than reimplementing it.
package retry

// Backoff computes capped exponential delays: attempt n (0-based) waits
// Base·2ⁿ, saturating at Cap. The zero value is useless (always 0);
// construct with both fields set.
type Backoff struct {
	// Base is the attempt-0 delay; successive attempts double it.
	Base float64
	// Cap bounds the delay. It also backstops shift overflow: once the
	// doubled multiplier wraps negative or past Cap, the delay pins at Cap.
	Cap float64
}

// Delay returns the backoff before retry `attempt` (0-based). The
// formula is bit-identical to the historical grayRead core: Base·2ⁿ via
// an int64 shift, clamped to Cap when it exceeds it or when the shift
// overflows to a non-positive multiplier (attempt ≥ 63).
func (b Backoff) Delay(attempt int) float64 {
	d := b.Base * float64(int64(1)<<uint(attempt))
	if d > b.Cap || d <= 0 {
		d = b.Cap
	}
	return d
}
