package scheduler

import (
	"testing"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/topology"
	"dare/internal/workload"
)

// fixture builds a small cluster with one file and helpers to make jobs.
type fixture struct {
	c *mapreduce.Cluster
	f *dfs.File
}

func newFixture(t *testing.T, seed uint64) *fixture {
	t.Helper()
	p := config.CCT()
	p.Slaves = 10
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.NN.CreateFile("input", 30, p.BlockSizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{c: c, f: f}
}

func (fx *fixture) job(id int, arrival float64, first, maps int) *mapreduce.Job {
	spec := workload.Job{ID: id, Arrival: arrival, File: 0, FirstBlock: first, NumMaps: maps, CPUPerTask: 1, NumReduces: 1, ReduceTime: 2}
	return mapreduce.NewJob(spec, fx.f, fx.c)
}

// nodeWithReplica finds a node holding block b; nodeWithout finds one that
// does not.
func (fx *fixture) nodeWithReplica(b dfs.BlockID) topology.NodeID {
	return fx.c.NN.Locations(b)[0]
}

func (fx *fixture) nodeWithout(b dfs.BlockID) topology.NodeID {
	for n := 0; n < len(fx.c.Nodes); n++ {
		if !fx.c.NN.HasReplica(b, topology.NodeID(n)) {
			return topology.NodeID(n)
		}
	}
	return -1
}

func TestFIFOServesHeadOfLine(t *testing.T) {
	fx := newFixture(t, 1)
	s := NewFIFO()
	j1 := fx.job(1, 0, 0, 3)
	j2 := fx.job(2, 1, 10, 3)
	s.AddJob(j1)
	s.AddJob(j2)
	// Offer slots from a node with NO replica of j1's blocks: FIFO must
	// still serve j1 (non-locally), never j2.
	node := fx.nodeWithout(fx.f.Blocks[0])
	for i := 0; i < 3; i++ {
		j, _, ok := s.SelectMapTask(node, 0)
		if !ok || j != j1 {
			t.Fatalf("offer %d went to %v, want head-of-line job 1", i, j)
		}
	}
	j, _, ok := s.SelectMapTask(node, 0)
	if !ok || j != j2 {
		t.Fatal("after draining job 1, job 2 must be served")
	}
}

func TestFIFOPrefersLocalBlock(t *testing.T) {
	fx := newFixture(t, 2)
	s := NewFIFO()
	j1 := fx.job(1, 0, 0, 5)
	s.AddJob(j1)
	// Offer from a node holding block[2]: FIFO should return a block with
	// a replica on that node.
	node := fx.nodeWithReplica(fx.f.Blocks[2])
	_, b, ok := s.SelectMapTask(node, 0)
	if !ok {
		t.Fatal("no task")
	}
	if !fx.c.NN.HasReplica(b, node) {
		t.Fatalf("FIFO picked non-local block %d though local work existed", b)
	}
}

func TestFIFORemoveJob(t *testing.T) {
	fx := newFixture(t, 3)
	s := NewFIFO()
	j1 := fx.job(1, 0, 0, 2)
	j2 := fx.job(2, 1, 5, 2)
	s.AddJob(j1)
	s.AddJob(j2)
	s.RemoveJob(j1)
	if s.Jobs() != 1 {
		t.Fatalf("jobs %d", s.Jobs())
	}
	j, _, ok := s.SelectMapTask(0, 0)
	if !ok || j != j2 {
		t.Fatal("removed job still scheduled")
	}
	s.RemoveJob(j1) // removing twice is a no-op
}

func TestFIFOReduceSelection(t *testing.T) {
	fx := newFixture(t, 4)
	s := NewFIFO()
	j1 := fx.job(1, 0, 0, 1)
	s.AddJob(j1)
	if _, ok := s.SelectReduceTask(0, 0); ok {
		t.Fatal("reduces must wait for the map phase")
	}
}

func TestFIFOEmpty(t *testing.T) {
	s := NewFIFO()
	if _, _, ok := s.SelectMapTask(0, 0); ok {
		t.Fatal("empty scheduler returned a task")
	}
	if _, ok := s.SelectReduceTask(0, 0); ok {
		t.Fatal("empty scheduler returned a reduce")
	}
}

func TestFairPrefersJobBelowShare(t *testing.T) {
	fx := newFixture(t, 5)
	s := NewFair(5)
	j1 := fx.job(1, 0, 0, 10)
	j2 := fx.job(2, 1, 15, 10)
	s.AddJob(j1)
	s.AddJob(j2)
	// Both jobs have zero running maps; arrival order breaks the tie, so
	// j1 goes first when it has local work.
	node := fx.nodeWithReplica(fx.f.Blocks[0])
	j, _, ok := s.SelectMapTask(node, 0)
	if !ok {
		t.Fatal("no task")
	}
	if j != j1 && j != j2 {
		t.Fatal("unknown job")
	}
}

func TestFairDelaySchedulingSkipsThenLaunches(t *testing.T) {
	fx := newFixture(t, 6)
	s := NewFair(3)
	j1 := fx.job(1, 0, 0, 1)
	s.AddJob(j1)
	b := fx.f.Blocks[0]
	node := fx.nodeWithout(b)
	// The job is skipped while its budget lasts (3 opportunities)...
	for i := 0; i < 3; i++ {
		if _, _, ok := s.SelectMapTask(node, float64(i)); ok {
			t.Fatalf("offer %d: delay scheduling should skip non-local work", i)
		}
		if s.Skips(j1) != i+1 {
			t.Fatalf("offer %d: skip count %d", i, s.Skips(j1))
		}
	}
	// ...then launches non-locally.
	j, got, ok := s.SelectMapTask(node, 4)
	if !ok || j != j1 || got != b {
		t.Fatalf("expected non-local launch after skip budget, got ok=%v", ok)
	}
	if s.Skips(j1) != 0 {
		t.Fatal("launch must reset the skip count")
	}
}

func TestFairLocalLaunchResetsSkips(t *testing.T) {
	fx := newFixture(t, 7)
	s := NewFair(5)
	j1 := fx.job(1, 0, 0, 3)
	s.AddJob(j1)
	remote, ok := remoteFor(fx, j1)
	if !ok {
		t.Skip("placement left no fully-remote node")
	}
	for i := 0; i < 4; i++ {
		if _, _, got := s.SelectMapTask(remote, 0); got {
			t.Fatal("non-local offer should be skipped")
		}
	}
	if s.Skips(j1) != 4 {
		t.Fatalf("skips %d, want 4", s.Skips(j1))
	}
	// A local launch on another node resets the budget...
	local := fx.nodeWithReplica(fx.f.Blocks[1])
	if _, _, got := s.SelectMapTask(local, 1); !got {
		t.Fatal("local work should launch")
	}
	if s.Skips(j1) != 0 {
		t.Fatal("local launch must reset skips")
	}
	// ...so the next non-local offer is skipped again rather than served.
	remote2, ok := remoteFor(fx, j1)
	if !ok {
		t.Skip("no fully-remote node after launch")
	}
	if _, _, got := s.SelectMapTask(remote2, 2); got {
		t.Fatal("skip budget should have been reset by the local launch")
	}
}

// remoteFor finds a node with no replica of any of j's pending blocks.
func remoteFor(fx *fixture, j *mapreduce.Job) (topology.NodeID, bool) {
	for n := 0; n < len(fx.c.Nodes); n++ {
		if !j.HasLocalBlock(topology.NodeID(n)) {
			return topology.NodeID(n), true
		}
	}
	return 0, false
}

func TestFairSkipsToOtherJobsWhileWaiting(t *testing.T) {
	fx := newFixture(t, 8)
	s := NewFair(100) // effectively never give up
	j1 := fx.job(1, 0, 0, 5)
	j2 := fx.job(2, 1, 10, 5)
	s.AddJob(j1)
	s.AddJob(j2)
	// Node local to a j2 block but (possibly) not to j1's. If j1 has no
	// local block there, the slot must flow to j2.
	node := fx.nodeWithReplica(fx.f.Blocks[12])
	if j1.HasLocalBlock(node) {
		t.Skip("placement gave j1 local work on this node")
	}
	j, _, ok := s.SelectMapTask(node, 0)
	if !ok || j != j2 {
		t.Fatalf("slot should flow past waiting j1 to j2, got %v ok=%v", j, ok)
	}
}

func TestFairDefaultMaxSkips(t *testing.T) {
	s := NewFair(0)
	if s.MaxSkips != DefaultMaxSkips {
		t.Fatalf("max skips %v, want default %v", s.MaxSkips, DefaultMaxSkips)
	}
}

func TestFairRemoveJobCleansState(t *testing.T) {
	fx := newFixture(t, 9)
	s := NewFair(5)
	j1 := fx.job(1, 0, 0, 2)
	s.AddJob(j1)
	s.RemoveJob(j1)
	if s.Jobs() != 0 || len(s.skips) != 0 {
		t.Fatal("state leaked after RemoveJob")
	}
}

func TestFromName(t *testing.T) {
	if s, ok := FromName("fifo", 0); !ok || s.Name() != "fifo" {
		t.Fatal("fifo not constructed")
	}
	if s, ok := FromName("fair", 3); !ok || s.Name() != "fair" {
		t.Fatal("fair not constructed")
	}
	if _, ok := FromName("bogus", 0); ok {
		t.Fatal("bogus scheduler constructed")
	}
}
