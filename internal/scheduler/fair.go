package scheduler

import (
	"sort"

	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/topology"
)

// DefaultMaxSkips is the default delay-scheduling patience, measured in
// skipped scheduling opportunities, matching the Hadoop fair scheduler's
// locality-delay implementation (Zaharia et al., EuroSys'10, Algorithm 1):
// a job with no node-local work on the offering node is passed over; after
// being skipped this many times it is allowed to launch non-locally.
const DefaultMaxSkips = 8

// Fair implements fair sharing with delay scheduling. Each free slot is
// offered to active jobs ordered by how far below their fair share they
// run (fewest running maps first, arrival order as tie-break). A job
// launches immediately when it has a node-local block on the offering
// node; otherwise its skip count grows, and once it exceeds MaxSkips the
// job accepts a non-local launch (rack-local preferred). Any launch resets
// the job's skip count.
type Fair struct {
	// MaxSkips is the node-level delay-scheduling patience in scheduling
	// opportunities (Zaharia's D1): a job may launch rack-local once it
	// has been skipped this many times.
	MaxSkips int
	// RackSkips is the additional rack-level patience (D2): off-rack
	// launches are allowed only after MaxSkips+RackSkips skips. On a
	// single-rack cluster this second level is moot (everything is
	// rack-local); on the multi-rack EC2 profile it is what keeps traffic
	// inside the rack.
	RackSkips int

	jobs  []*mapreduce.Job
	skips map[*mapreduce.Job]int
	// scratch avoids re-allocating the sort slice on every offer, and
	// poolLoad is the reusable per-offer pool-load accumulator.
	scratch  []*mapreduce.Job
	poolLoad map[string]int
}

// NewFair returns a Fair scheduler with the given node-level patience;
// non-positive means DefaultMaxSkips. The rack-level patience defaults to
// the same value (use NewFairTwoLevel for explicit control).
func NewFair(maxSkips int) *Fair {
	if maxSkips <= 0 {
		maxSkips = DefaultMaxSkips
	}
	return &Fair{MaxSkips: maxSkips, RackSkips: maxSkips, skips: make(map[*mapreduce.Job]int), poolLoad: make(map[string]int, 4)}
}

// NewFairTwoLevel returns a Fair scheduler with explicit node-level (d1)
// and rack-level (d2) patience, matching the two thresholds of the delay
// scheduling algorithm.
func NewFairTwoLevel(d1, d2 int) *Fair {
	if d1 <= 0 {
		d1 = DefaultMaxSkips
	}
	if d2 < 0 {
		d2 = d1
	}
	return &Fair{MaxSkips: d1, RackSkips: d2, skips: make(map[*mapreduce.Job]int), poolLoad: make(map[string]int, 4)}
}

// Name implements mapreduce.TaskSelector.
func (s *Fair) Name() string { return "fair" }

// AddJob implements mapreduce.TaskSelector.
func (s *Fair) AddJob(j *mapreduce.Job) {
	s.jobs = append(s.jobs, j)
	s.skips[j] = 0
}

// RemoveJob implements mapreduce.TaskSelector.
func (s *Fair) RemoveJob(j *mapreduce.Job) {
	for i, cur := range s.jobs {
		if cur == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			break
		}
	}
	delete(s.skips, j)
}

// Jobs reports the number of registered jobs.
func (s *Fair) Jobs() int { return len(s.jobs) }

// Skips reports a job's current skip count (testing/introspection).
func (s *Fair) Skips(j *mapreduce.Job) int { return s.skips[j] }

// fairOrder fills scratch with jobs in hierarchical fair order, the
// Hadoop Fair Scheduler's two-level policy: pools are ordered by their
// total running maps (the pool furthest below its share of the cluster
// first), and within a pool jobs are ordered by their own running maps.
// Arrival order is the stable tie-break at both levels. With a single
// pool this degenerates to plain job-level fair sharing.
func (s *Fair) fairOrder() []*mapreduce.Job {
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, s.jobs...)
	if s.poolLoad == nil {
		s.poolLoad = make(map[string]int, 4)
	}
	clear(s.poolLoad)
	poolLoad := s.poolLoad
	multiPool := false
	for _, j := range s.jobs {
		poolLoad[j.Spec.Pool] += j.RunningMaps()
		if j.Spec.Pool != s.jobs[0].Spec.Pool {
			multiPool = true
		}
	}
	sort.SliceStable(s.scratch, func(a, b int) bool {
		ja, jb := s.scratch[a], s.scratch[b]
		if multiPool && ja.Spec.Pool != jb.Spec.Pool {
			la, lb := poolLoad[ja.Spec.Pool], poolLoad[jb.Spec.Pool]
			if la != lb {
				return la < lb
			}
			return ja.Spec.Pool < jb.Spec.Pool
		}
		return ja.RunningMaps() < jb.RunningMaps()
	})
	return s.scratch
}

// SelectMapTask implements mapreduce.TaskSelector with delay scheduling
// (Zaharia et al., Algorithm 1): in fair order, a job with a node-local
// block launches it right away; a job that has exhausted its skip budget
// launches non-locally; otherwise the job is skipped and its budget
// shrinks.
func (s *Fair) SelectMapTask(node topology.NodeID, now float64) (*mapreduce.Job, dfs.BlockID, bool) {
	for _, j := range s.fairOrder() {
		if j.PendingMaps() == 0 {
			continue
		}
		if b, ok := j.TakeLocalBlock(node); ok {
			s.skips[j] = 0
			return j, b, true
		}
		if s.skips[j] >= s.MaxSkips {
			if b, ok := j.TakeRackLocalBlock(node); ok {
				s.skips[j] = 0
				return j, b, true
			}
			if s.skips[j] >= s.MaxSkips+s.RackSkips {
				if b, ok := j.TakeAnyBlock(); ok {
					s.skips[j] = 0
					return j, b, true
				}
			}
		}
		s.skips[j]++
	}
	return nil, 0, false
}

// SelectReduceTask implements mapreduce.TaskSelector: the job furthest
// below its fair reduce share (fewest running reduces) goes first.
func (s *Fair) SelectReduceTask(node topology.NodeID, now float64) (*mapreduce.Job, bool) {
	var best *mapreduce.Job
	for _, j := range s.jobs {
		if j.PendingReduces() == 0 {
			continue
		}
		if best == nil || j.RunningReduces() < best.RunningReduces() {
			best = j
		}
	}
	return best, best != nil
}

// FromName builds a scheduler by CLI name ("fifo" or "fair"); maxSkips
// only applies to fair (<= 0 uses the default).
func FromName(name string, maxSkips int) (mapreduce.TaskSelector, bool) {
	switch name {
	case "fifo":
		return NewFIFO(), true
	case "fair", "fair-delay", "delay":
		return NewFair(maxSkips), true
	}
	return nil, false
}
