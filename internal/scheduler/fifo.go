// Package scheduler implements the two Hadoop schedulers the paper
// evaluates DARE under (§V-A):
//
//   - FIFO (Hadoop's default): jobs are served strictly in arrival order.
//     The head-of-line job receives every offered slot, taking a
//     node-local block when it has one on the offering node, falling back
//     to rack-local and then any block. Small jobs therefore achieve poor
//     locality (Zaharia et al. [10]) — the regime where DARE's extra
//     replicas help most (Fig. 7a shows >7× improvement).
//
//   - Fair with delay scheduling (Zaharia et al., EuroSys'10): slots are
//     offered to the job furthest below its fair share; a job with no
//     node-local work on the offering node is skipped for up to a small
//     delay D before it is allowed to launch non-locally.
//
// Both schedulers are DARE-oblivious: they read replica locations from the
// name node and never learn which replicas are dynamic, preserving the
// paper's scheduler-agnostic property.
package scheduler

import (
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/topology"
)

// FIFO is Hadoop's default scheduler: strict arrival order.
type FIFO struct {
	jobs []*mapreduce.Job
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements mapreduce.TaskSelector.
func (s *FIFO) Name() string { return "fifo" }

// AddJob implements mapreduce.TaskSelector. Jobs arrive in submission
// order, so appending preserves FIFO order.
func (s *FIFO) AddJob(j *mapreduce.Job) { s.jobs = append(s.jobs, j) }

// RemoveJob implements mapreduce.TaskSelector.
func (s *FIFO) RemoveJob(j *mapreduce.Job) {
	for i, cur := range s.jobs {
		if cur == j {
			s.jobs = append(s.jobs[:i], s.jobs[i+1:]...)
			return
		}
	}
}

// Jobs reports the number of registered jobs.
func (s *FIFO) Jobs() int { return len(s.jobs) }

// SelectMapTask implements mapreduce.TaskSelector: the first job in
// arrival order with pending maps gets the slot — node-local block if it
// has one here, else rack-local, else any.
func (s *FIFO) SelectMapTask(node topology.NodeID, now float64) (*mapreduce.Job, dfs.BlockID, bool) {
	for _, j := range s.jobs {
		if j.PendingMaps() == 0 {
			continue
		}
		if b, ok := j.TakeLocalBlock(node); ok {
			return j, b, true
		}
		if b, ok := j.TakeRackLocalBlock(node); ok {
			return j, b, true
		}
		if b, ok := j.TakeAnyBlock(); ok {
			return j, b, true
		}
	}
	return nil, 0, false
}

// SelectReduceTask implements mapreduce.TaskSelector: first job in arrival
// order whose map phase finished and has reduces pending.
func (s *FIFO) SelectReduceTask(node topology.NodeID, now float64) (*mapreduce.Job, bool) {
	for _, j := range s.jobs {
		if j.PendingReduces() > 0 {
			return j, true
		}
	}
	return nil, false
}
