package scheduler

import (
	"testing"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/topology"
	"dare/internal/workload"
)

// multiRackFixture builds a two-rack dedicated cluster so rack-local and
// off-rack launches are distinguishable.
type multiRackFixture struct {
	c *mapreduce.Cluster
	f *dfs.File
}

func newMultiRackFixture(t *testing.T, seed uint64) *multiRackFixture {
	t.Helper()
	p := config.CCT()
	p.Slaves = 12
	p.RackSize = 6 // two racks of six
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.NN.CreateFile("input", 20, p.BlockSizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return &multiRackFixture{c: c, f: f}
}

func (fx *multiRackFixture) job(id, first, maps int) *mapreduce.Job {
	spec := workload.Job{ID: id, Arrival: 0, File: 0, FirstBlock: first, NumMaps: maps, CPUPerTask: 1}
	return mapreduce.NewJob(spec, fx.f, fx.c)
}

// offRackNodeFor finds a node in a different rack from every replica of
// every pending block of j (so only an off-rack launch is possible).
func offRackNodeFor(fx *multiRackFixture, blocks []dfs.BlockID) (topology.NodeID, bool) {
	for n := 0; n < 12; n++ {
		node := topology.NodeID(n)
		rack := fx.c.Topo.Rack(node)
		clean := true
		for _, b := range blocks {
			for _, loc := range fx.c.NN.Locations(b) {
				if loc == node || fx.c.Topo.Rack(loc) == rack {
					clean = false
					break
				}
			}
			if !clean {
				break
			}
		}
		if clean {
			return node, true
		}
	}
	return 0, false
}

func TestTwoLevelDelayOffRackNeedsBothBudgets(t *testing.T) {
	fx := newMultiRackFixture(t, 1)
	s := NewFairTwoLevel(2, 3)
	j := fx.job(1, 0, 1)
	s.AddJob(j)
	b := fx.f.Blocks[0]
	node, ok := offRackNodeFor(fx, []dfs.BlockID{b})
	if !ok {
		t.Skip("default placement spans both racks for this seed")
	}
	// Skips 1..2 consume D1; skips 3..5 consume D2; the off-rack launch is
	// allowed on the offer where skips >= D1+D2 = 5.
	launched := -1
	for i := 0; i < 10; i++ {
		if _, got, okSel := s.SelectMapTask(node, float64(i)); okSel {
			if got != b {
				t.Fatalf("launched unexpected block %d", got)
			}
			launched = i
			break
		}
	}
	if launched < 0 {
		t.Fatal("off-rack launch never happened")
	}
	if launched < 5 {
		t.Fatalf("off-rack launch after only %d offers; want >= 5 (D1+D2)", launched)
	}
}

func TestTwoLevelDelayRackLocalAfterD1(t *testing.T) {
	fx := newMultiRackFixture(t, 2)
	s := NewFairTwoLevel(2, 100) // off-rack effectively forbidden
	j := fx.job(1, 0, 1)
	s.AddJob(j)
	b := fx.f.Blocks[0]
	// Find a node in the same rack as a replica but not holding it.
	var node topology.NodeID = -1
	locs := fx.c.NN.Locations(b)
	for n := 0; n < 12; n++ {
		cand := topology.NodeID(n)
		if fx.c.NN.HasReplica(b, cand) {
			continue
		}
		for _, loc := range locs {
			if fx.c.Topo.Rack(loc) == fx.c.Topo.Rack(cand) {
				node = cand
				break
			}
		}
		if node >= 0 {
			break
		}
	}
	if node < 0 {
		t.Skip("no rack-local non-holding node for this seed")
	}
	launched := -1
	for i := 0; i < 10; i++ {
		if _, _, okSel := s.SelectMapTask(node, float64(i)); okSel {
			launched = i
			break
		}
	}
	if launched != 2 {
		t.Fatalf("rack-local launch at offer %d; want exactly after D1=2 skips", launched)
	}
}

func TestNewFairTwoLevelDefaults(t *testing.T) {
	s := NewFairTwoLevel(0, -1)
	if s.MaxSkips != DefaultMaxSkips || s.RackSkips != DefaultMaxSkips {
		t.Fatalf("defaults wrong: %d/%d", s.MaxSkips, s.RackSkips)
	}
	s2 := NewFairTwoLevel(3, 0)
	if s2.RackSkips != 0 {
		t.Fatal("explicit zero rack budget should be honored (single-level behaviour)")
	}
}
