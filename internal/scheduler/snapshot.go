package scheduler

import "dare/internal/snapshot"

// AddState folds the FIFO queue order (mapreduce.StateAdder).
func (s *FIFO) AddState(h *snapshot.Hash) {
	h.Int(len(s.jobs))
	for _, j := range s.jobs {
		h.Int(j.Spec.ID)
	}
}

// AddState folds the Fair scheduler's job order and per-job delay-
// scheduling skip counts (mapreduce.StateAdder). Scratch buffers are
// derived per-offer state and excluded.
func (s *Fair) AddState(h *snapshot.Hash) {
	h.Int(s.MaxSkips)
	h.Int(s.RackSkips)
	h.Int(len(s.jobs))
	for _, j := range s.jobs {
		h.Int(j.Spec.ID)
		h.Int(s.skips[j])
	}
}
