package scheduler

import (
	"testing"

	"dare/internal/config"
	"dare/internal/mapreduce"
	"dare/internal/topology"
	"dare/internal/workload"
)

func benchJobs(b *testing.B, c *mapreduce.Cluster, n int) []*mapreduce.Job {
	b.Helper()
	f, err := c.NN.CreateFile("bench", 200, c.Profile.BlockSizeBytes(), 0)
	if err != nil {
		b.Fatal(err)
	}
	jobs := make([]*mapreduce.Job, n)
	for i := range jobs {
		spec := workload.Job{ID: i, Arrival: float64(i), File: 0, FirstBlock: (i * 7) % 180, NumMaps: 10, CPUPerTask: 1}
		jobs[i] = mapreduce.NewJob(spec, f, c)
	}
	return jobs
}

// BenchmarkFIFOSelect measures the head-of-line selection path with a deep
// queue.
func BenchmarkFIFOSelect(b *testing.B) {
	p := config.CCT()
	c, err := mapreduce.NewCluster(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := NewFIFO()
	for _, j := range benchJobs(b, c, 50) {
		s.AddJob(j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, blk, ok := s.SelectMapTask(topology.NodeID(i%19), 0)
		if ok {
			// Put the block back so the queue never drains.
			s.RemoveJob(j)
			s.AddJob(j)
			_ = blk
			b.StopTimer()
			refill(b, c, s, j)
			b.StartTimer()
		}
	}
}

// refill replaces a drained job with a fresh identical one.
func refill(b *testing.B, c *mapreduce.Cluster, s *FIFO, old *mapreduce.Job) {
	if old.PendingMaps() > 0 {
		return
	}
	s.RemoveJob(old)
	spec := old.Spec
	s.AddJob(mapreduce.NewJob(spec, old.File, c))
}

// BenchmarkFairSelect measures the fair-order sort plus delay-scheduling
// bookkeeping per offer.
func BenchmarkFairSelect(b *testing.B) {
	p := config.CCT()
	c, err := mapreduce.NewCluster(p, 2)
	if err != nil {
		b.Fatal(err)
	}
	s := NewFair(8)
	jobs := benchJobs(b, c, 50)
	for _, j := range jobs {
		s.AddJob(j)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, _, ok := s.SelectMapTask(topology.NodeID(i%19), float64(i))
		if ok && j.PendingMaps() == 0 {
			b.StopTimer()
			s.RemoveJob(j)
			s.AddJob(mapreduce.NewJob(j.Spec, j.File, c))
			b.StartTimer()
		}
	}
}
