package scheduler

import (
	"fmt"

	"dare/internal/mapreduce"
	"dare/internal/snapshot"
)

// State images for the scheduler queues. Job identity is the job ID; the
// decode side resolves IDs back to live *Job pointers through a lookup
// supplied by the tracker restore, and rebuilds the queues in serialized
// order — which is exactly the order AddState fingerprints.

// EncodeState serializes the FIFO queue order.
func (s *FIFO) EncodeState(e *snapshot.Enc) {
	e.U32(uint32(len(s.jobs)))
	for _, j := range s.jobs {
		e.Int(j.Spec.ID)
	}
}

// DecodeState rebuilds the FIFO queue from job IDs.
func (s *FIFO) DecodeState(d *snapshot.Dec, job func(id int) *mapreduce.Job) error {
	n := d.Count(8)
	if d.Err() != nil {
		return d.Err()
	}
	s.jobs = s.jobs[:0]
	for i := 0; i < n; i++ {
		id := d.Int()
		j := job(id)
		if j == nil {
			return fmt.Errorf("scheduler: fifo state names unknown job %d", id)
		}
		s.jobs = append(s.jobs, j)
	}
	return d.Err()
}

// EncodeState serializes the Fair scheduler's job order and per-job
// delay-scheduling skip counts.
func (s *Fair) EncodeState(e *snapshot.Enc) {
	e.Int(s.MaxSkips)
	e.Int(s.RackSkips)
	e.U32(uint32(len(s.jobs)))
	for _, j := range s.jobs {
		e.Int(j.Spec.ID)
		e.Int(s.skips[j])
	}
}

// DecodeState rebuilds the Fair scheduler's queue and skip counts.
func (s *Fair) DecodeState(d *snapshot.Dec, job func(id int) *mapreduce.Job) error {
	s.MaxSkips = d.Int()
	s.RackSkips = d.Int()
	n := d.Count(8)
	if d.Err() != nil {
		return d.Err()
	}
	s.jobs = s.jobs[:0]
	if s.skips == nil {
		s.skips = make(map[*mapreduce.Job]int, n)
	}
	clear(s.skips)
	for i := 0; i < n; i++ {
		id := d.Int()
		skips := d.Int()
		j := job(id)
		if j == nil {
			return fmt.Errorf("scheduler: fair state names unknown job %d", id)
		}
		s.jobs = append(s.jobs, j)
		s.skips[j] = skips
	}
	return d.Err()
}
