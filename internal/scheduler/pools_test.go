package scheduler

import (
	"testing"

	"dare/internal/config"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/workload"
)

// poolFixture builds a cluster plus a job constructor with pool labels.
type poolFixture struct {
	c *mapreduce.Cluster
	f *dfs.File
}

func newPoolFixture(t *testing.T, seed uint64) *poolFixture {
	t.Helper()
	p := config.CCT()
	p.Slaves = 10
	c, err := mapreduce.NewCluster(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.NN.CreateFile("input", 40, p.BlockSizeBytes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return &poolFixture{c: c, f: f}
}

func (fx *poolFixture) job(id int, pool string, first, maps int) *mapreduce.Job {
	spec := workload.Job{ID: id, Pool: pool, Arrival: float64(id), File: 0, FirstBlock: first, NumMaps: maps, CPUPerTask: 1}
	return mapreduce.NewJob(spec, fx.f, fx.c)
}

func TestPoolOrderingPrefersLessLoadedPool(t *testing.T) {
	fx := newPoolFixture(t, 2)
	s := NewFair(1)
	jBatch := fx.job(0, "batch", 0, 10)
	jInter := fx.job(1, "interactive", 20, 10)
	s.AddJob(jBatch)
	s.AddJob(jInter)

	// Simulate pool load imbalance through the real tracker path: run a
	// tiny simulation where batch has many running tasks. Easiest honest
	// check: fairOrder places the pool with fewer running maps first.
	// RunningMaps is driven by the tracker; at rest both are zero, so
	// arrival order applies and batch (arrived first) leads.
	order := s.fairOrder()
	if order[0] != jBatch {
		t.Fatalf("at rest, arrival order should lead with the batch job")
	}
}

// TestPoolsEndToEnd runs a real multi-tenant simulation: one pool
// submitting a huge batch job, another submitting a stream of small
// interactive jobs. Under FIFO the interactive jobs queue behind the
// batch; under pool-fair scheduling they cut through.
func TestPoolsEndToEnd(t *testing.T) {
	build := func() (*mapreduce.Cluster, *workload.Workload) {
		p := config.CCT()
		p.Slaves = 10
		c, err := mapreduce.NewCluster(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		wl := &workload.Workload{
			Name:  "multitenant",
			Files: []workload.FileSpec{{Name: "big", Blocks: 120}, {Name: "small", Blocks: 10}},
		}
		// One batch monster at t=0...
		wl.Jobs = append(wl.Jobs, workload.Job{
			ID: 0, Pool: "batch", Arrival: 0, File: 0, NumMaps: 120, CPUPerTask: 1.5, NumReduces: 2, ReduceTime: 2,
		})
		// ...then 20 interactive jobs arriving while it runs.
		for i := 1; i <= 20; i++ {
			wl.Jobs = append(wl.Jobs, workload.Job{
				ID: i, Pool: "interactive", Arrival: 0.5 * float64(i), File: 1,
				FirstBlock: (i * 3) % 8, NumMaps: 2, CPUPerTask: 1, NumReduces: 1, ReduceTime: 1,
			})
		}
		return c, wl
	}

	run := func(sel mapreduce.TaskSelector) float64 {
		c, wl := build()
		tr, err := mapreduce.NewTracker(c, wl, sel)
		if err != nil {
			t.Fatal(err)
		}
		results, err := tr.Run()
		if err != nil {
			t.Fatal(err)
		}
		// Mean turnaround of the interactive pool.
		var sum float64
		var n int
		for _, r := range results {
			if r.ID >= 1 {
				sum += r.Turnaround
				n++
			}
		}
		return sum / float64(n)
	}

	fifoTT := run(NewFIFO())
	fairTT := run(NewFair(2))
	if fairTT >= fifoTT {
		t.Fatalf("pool-fair interactive turnaround %.2f not below FIFO %.2f", fairTT, fifoTT)
	}
	// The isolation should be dramatic, not marginal: the batch job alone
	// is ~9 waves of the whole cluster.
	if fairTT > 0.5*fifoTT {
		t.Logf("note: fair/fifo interactive turnaround ratio %.2f", fairTT/fifoTT)
	}
}
