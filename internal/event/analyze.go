package event

import (
	"fmt"
	"strings"
)

// TraceStats summarizes a decoded event log: per-kind volume, the sim-time
// span covered, and the locality split of the map-task launches (reduce
// launches carry Block < 0 and have no locality to speak of).
type TraceStats struct {
	Counts     Counts
	Start, End float64 // sim time of the first and last event

	MapLaunches      uint64 // TaskLaunch events with Block >= 0
	LocalMapLaunches uint64 // of those, Flag set (data-local)

	ReplicasAdded   uint64 // ReplicaAdd
	ReplicasRemoved uint64 // ReplicaRemove + the removals implied by repair sources

	// Heartbeats is the heartbeat share of the trace — the clock-tick tax
	// the cohort coalescing work exists to contain (BENCH_engine.json put
	// it at ~83% of all bus events before coalescing).
	Heartbeats uint64

	// MasterOutages pairs MasterCrash events with their recoveries;
	// MasterDowntime sums the crash→recover spans (an outage the trace ends
	// inside counts up to the last event). DeferredHeartbeats and
	// DeferredReads are the work that piled up while the control plane was
	// down, as carried on the MasterRecover events.
	MasterOutages      uint64
	MasterDowntime     float64
	DeferredHeartbeats int64
	DeferredReads      int64

	// Unknown counts events whose kind this binary does not know (a trace
	// from a newer simulator); they contribute to the span but to no
	// per-kind tally.
	Unknown uint64
}

// Summarize tallies a decoded event log (as returned by ReadLog). Events
// of a kind outside this binary's taxonomy are tallied as Unknown rather
// than panicking, so old analyzers survive newer traces.
func Summarize(events []Event) TraceStats {
	var s TraceStats
	downSince, down := 0.0, false
	for i, ev := range events {
		if int(ev.Kind) >= NumKinds {
			s.Unknown++
		} else {
			s.Counts[ev.Kind]++
		}
		if i == 0 {
			s.Start = ev.Time
		}
		s.End = ev.Time
		switch {
		case ev.Kind == TaskLaunch && ev.Block >= 0:
			s.MapLaunches++
			if ev.Flag {
				s.LocalMapLaunches++
			}
		case ev.Kind == MasterCrash:
			s.MasterOutages++
			downSince, down = ev.Time, true
		case ev.Kind == MasterRecover:
			if down {
				s.MasterDowntime += ev.Time - downSince
				down = false
			}
			s.DeferredHeartbeats += ev.Aux
			s.DeferredReads += ev.Block
		}
	}
	if down {
		// The trace ends mid-outage: count the observed part of it.
		s.MasterDowntime += s.End - downSince
	}
	s.ReplicasAdded = s.Counts[ReplicaAdd]
	s.ReplicasRemoved = s.Counts[ReplicaRemove]
	s.Heartbeats = s.Counts[Heartbeat]
	return s
}

// RenderTraceStats formats a TraceStats block for terminal output.
func RenderTraceStats(s TraceStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "events      %d over sim time [%.1f, %.1f] s\n", s.Counts.Total(), s.Start, s.End)
	if span := s.End - s.Start; span > 0 {
		fmt.Fprintf(&b, "rate        %.1f events per sim second\n", float64(s.Counts.Total())/span)
	}
	if s.MapLaunches > 0 {
		fmt.Fprintf(&b, "locality    %d/%d map launches data-local (%.1f%%)\n",
			s.LocalMapLaunches, s.MapLaunches, 100*float64(s.LocalMapLaunches)/float64(s.MapLaunches))
	}
	if total := s.Counts.Total(); total > 0 && s.Heartbeats > 0 {
		line := fmt.Sprintf("heartbeats  %d of %d bus events (%.1f%% heartbeat tax)",
			s.Heartbeats, total, 100*float64(s.Heartbeats)/float64(total))
		if span := s.End - s.Start; span > 0 {
			line += fmt.Sprintf(", %.1f per sim second", float64(s.Heartbeats)/span)
		}
		fmt.Fprintf(&b, "%s\n", line)
	}
	fmt.Fprintf(&b, "replicas    +%d added, -%d removed (net %+d)\n",
		s.ReplicasAdded, s.ReplicasRemoved, int64(s.ReplicasAdded)-int64(s.ReplicasRemoved))
	if s.MasterOutages > 0 {
		line := fmt.Sprintf("master      %d outages, %.1f sim seconds unavailable", s.MasterOutages, s.MasterDowntime)
		if span := s.End - s.Start; span > 0 {
			line += fmt.Sprintf(" (%.1f%%)", 100*s.MasterDowntime/span)
		}
		line += fmt.Sprintf(", %d heartbeats and %d reads deferred", s.DeferredHeartbeats, s.DeferredReads)
		fmt.Fprintf(&b, "%s\n", line)
	}
	if s.Unknown > 0 {
		fmt.Fprintf(&b, "unknown     %d events of kinds this binary does not know\n", s.Unknown)
	}
	fmt.Fprintf(&b, "\n%-16s %10s\n", "kind", "count")
	for k, v := range s.Counts {
		if v == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-16s %10d\n", Kind(k), v)
	}
	return b.String()
}
