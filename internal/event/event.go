// Package event is the cluster's event spine: a typed, synchronous,
// multi-subscriber bus that every layer of the simulator publishes to and
// observes. It replaces the ad-hoc single-slot hooks that grew around the
// tracker (the dfs replica listener, the mapreduce replication hook,
// checkAfterEvent) with one surface: the name node publishes replica and
// node lifecycle
// events, the tracker publishes task and job lifecycle events, and any
// number of subscribers — locality-index maintenance, failure handling,
// speculation, invariant checking, replication policies, trace recorders —
// react in deterministic registration order.
//
// Determinism rules:
//
//  1. Publish dispatches synchronously, in the caller's goroutine, before
//     Publish returns. A publisher's next statement runs only after every
//     subscriber has seen the event, so an event is a point in the
//     engine's single timeline, not a message in flight.
//  2. Subscribers run in registration order, which is fixed at wiring
//     time. Two runs that wire the same subscribers in the same order see
//     identical dispatch sequences.
//  3. Event.Time is stamped by the bus from the simulation clock (the
//     engine's Now), never by wall clock, so a recorded trace is a pure
//     function of (profile, workload, seed).
//
// The hot path allocates nothing: Event is a fixed struct of scalars
// passed by value, the bus fans out over a plain subscriber slice with
// static interface calls, and there are no maps, no reflection, and no
// per-event boxing.
package event

// Kind identifies what happened. The enum is the event taxonomy; see
// DESIGN.md ("Event spine") for the publisher and field conventions of
// each kind.
type Kind uint8

const (
	// KindNone is the zero Kind; it is never published.
	KindNone Kind = iota

	// DFS layer (published by dfs.NameNode).
	ReplicaAdd    // a block gained a replica on Node (Flag: dynamic copy)
	ReplicaRemove // a block lost a replica on Node (eviction, balancer move, node loss)
	ReplicaRepair // re-replication restored a primary copy of Block on Node
	NodeFail      // Node left the cluster; all its replicas are already removed
	NodeRecover   // Node rejoined the cluster (its disk was wiped)

	// MapReduce layer (published by mapreduce.Tracker and friends).
	JobArrive     // Job entered the system (Aux: number of map tasks)
	JobFinish     // Job left the system (Flag: failed rather than completed)
	TaskLaunch    // an attempt of a task started on Node (Block >= 0: map; Flag: node-local)
	TaskComplete  // a map task finished (Aux: locality class of the winning attempt; Flag: won a speculative race)
	TaskFail      // a task attempt died (Flag: blamed on the node; Aux=1: the input must be requeued)
	TaskSpeculate // a backup attempt is about to launch for a straggling task
	Heartbeat     // a live tasktracker reported in (Aux: free map slots before speculation)

	// Gray-failure layer (published by dfs.NameNode and the gray injector;
	// see DESIGN.md "Failure taxonomy").
	NodeDegrade    // Node went gray: Aux = service/disk multiplier in milli-units; Flag: disk (vs service time)
	NodeRestore    // a degraded Node returned to full speed (Flag mirrors the degrade)
	ReplicaCorrupt // a checksum mismatch was detected on Node's replica of Block; it is being quarantined (Flag: dynamic copy)
	ReadRetry      // a map attempt fell back to another replica after a corrupt read (Aux: retry ordinal, 1-based)
	HedgedRead     // a slow remote read launched a backup fetch (Aux: hedge source node; Flag: the hedge won)

	// Control-plane fault-tolerance layer (published by dfs.NameNode and
	// mapreduce.Tracker; see DESIGN.md §4h).
	MasterCrash       // the control plane went down (Aux: journaled records at crash; Flag: report-mode recovery selected)
	MasterRecover     // the control plane came back (Aux: heartbeats deferred during the outage; Block: reads deferred; Flag: report-mode recovery)
	BlockReport       // a datanode delivered its block report to a warming master (Aux: replicas reported)
	JournalCheckpoint // the metadata journal rolled into a checkpoint (Aux: journal records folded in)

	numKinds
)

// NumKinds is the number of distinct event kinds, for sizing per-kind
// counter arrays.
const NumKinds = int(numKinds)

var kindNames = [NumKinds]string{
	KindNone:       "none",
	ReplicaAdd:     "replica-add",
	ReplicaRemove:  "replica-remove",
	ReplicaRepair:  "replica-repair",
	NodeFail:       "node-fail",
	NodeRecover:    "node-recover",
	JobArrive:      "job-arrive",
	JobFinish:      "job-finish",
	TaskLaunch:     "task-launch",
	TaskComplete:   "task-complete",
	TaskFail:       "task-fail",
	TaskSpeculate:  "task-speculate",
	Heartbeat:      "heartbeat",
	NodeDegrade:    "node-degrade",
	NodeRestore:    "node-restore",
	ReplicaCorrupt: "replica-corrupt",
	ReadRetry:      "read-retry",
	HedgedRead:     "hedged-read",

	MasterCrash:       "master-crash",
	MasterRecover:     "master-recover",
	BlockReport:       "block-report",
	JournalCheckpoint: "journal-checkpoint",
}

// String returns the stable wire name of the kind (used in JSONL traces).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts String; it returns KindNone for unknown names.
func KindFromString(s string) Kind {
	for k, name := range kindNames {
		if name == s && k != 0 {
			return Kind(k)
		}
	}
	return KindNone
}

// Event is a fixed-size record of one cluster occurrence. Identity fields
// hold -1 when they do not apply to the kind; Aux and Flag carry one
// kind-specific scalar each (documented on the Kind constants). Events are
// passed by value — subscribers may keep the copy but must not assume any
// pointer identity.
type Event struct {
	Kind  Kind
	Time  float64 // simulation time, stamped by the bus at Publish
	Node  int32   // node id, -1 if not node-scoped
	Rack  int32   // rack of Node, -1 if not node-scoped
	Job   int32   // job id, -1 if not job-scoped
	File  int32   // file id, -1 if unknown
	Block int64   // block id, -1 if not block-scoped
	Aux   int64   // kind-specific scalar (bytes, slots, counts, ...)
	Flag  bool    // kind-specific boolean (local, dynamic, blamed, ...)
}

// New returns an Event of the given kind with every identity field set to
// the -1 "absent" sentinel, so publishers only fill in what applies.
func New(k Kind) Event {
	return Event{Kind: k, Node: -1, Rack: -1, Job: -1, File: -1, Block: -1}
}

// Subscriber receives every published event. HandleEvent runs on the
// simulation goroutine inside Publish; it may mutate simulation state and
// schedule engine work, but must not retain goroutines or block.
type Subscriber interface {
	HandleEvent(ev Event)
}

// Bus fans events out to its subscribers in registration order. One bus
// serves one simulated world; it is not safe for concurrent use, by
// design — the simulation is single-threaded (see DESIGN.md §"Concurrency
// model").
//
// A nil *Bus is a valid no-op publisher, so components that can run
// without a bus (e.g. a bare NameNode in a unit test) need no guards.
type Bus struct {
	clock func() float64
	subs  []Subscriber
}

// NewBus returns a bus that stamps Event.Time from clock (typically
// sim.Engine.Now). A nil clock stamps zero.
func NewBus(clock func() float64) *Bus {
	if clock == nil {
		clock = func() float64 { return 0 }
	}
	return &Bus{clock: clock}
}

// Subscribe appends s to the dispatch list. Registration order is dispatch
// order, forever; there is no unsubscribe — wiring happens once per run.
func (b *Bus) Subscribe(s Subscriber) {
	b.subs = append(b.subs, s)
}

// Subscribers reports how many subscribers are registered.
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	return len(b.subs)
}

// Publish stamps ev with the current simulation time and delivers it to
// every subscriber, synchronously, in registration order. Publishing on a
// nil bus is a no-op.
func (b *Bus) Publish(ev Event) {
	if b == nil {
		return
	}
	ev.Time = b.clock()
	for _, s := range b.subs {
		s.HandleEvent(ev)
	}
}
