package event

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

type capture struct {
	id   int
	seen *[]struct {
		sub int
		ev  Event
	}
}

func (c capture) HandleEvent(ev Event) {
	*c.seen = append(*c.seen, struct {
		sub int
		ev  Event
	}{c.id, ev})
}

func TestBusDispatchOrderAndStamping(t *testing.T) {
	now := 0.0
	bus := NewBus(func() float64 { return now })
	var seen []struct {
		sub int
		ev  Event
	}
	bus.Subscribe(capture{1, &seen})
	bus.Subscribe(capture{2, &seen})
	bus.Subscribe(capture{3, &seen})

	now = 12.5
	ev := New(TaskLaunch)
	ev.Node = 4
	ev.Time = 999 // must be overwritten by the bus clock
	bus.Publish(ev)

	if len(seen) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(seen))
	}
	for i, d := range seen {
		if d.sub != i+1 {
			t.Errorf("delivery %d went to subscriber %d; want registration order", i, d.sub)
		}
		if d.ev.Time != 12.5 {
			t.Errorf("delivery %d carries time %g, want the bus-stamped 12.5", i, d.ev.Time)
		}
		if d.ev.Node != 4 {
			t.Errorf("delivery %d lost the node field", i)
		}
	}
}

func TestNilBusPublishIsNoOp(t *testing.T) {
	var bus *Bus
	bus.Publish(New(ReplicaAdd)) // must not panic
	if n := bus.Subscribers(); n != 0 {
		t.Fatalf("nil bus reports %d subscribers", n)
	}
}

func TestNewEventSentinels(t *testing.T) {
	ev := New(JobArrive)
	if ev.Node != -1 || ev.Rack != -1 || ev.Job != -1 || ev.File != -1 || ev.Block != -1 {
		t.Fatalf("New must set identity fields to -1, got %+v", ev)
	}
	if ev.Aux != 0 || ev.Flag {
		t.Fatalf("New must zero payload fields, got %+v", ev)
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := Kind(1); k < numKinds; k++ {
		name := k.String()
		if name == "unknown" || name == "none" {
			t.Fatalf("kind %d has no wire name", k)
		}
		if got := KindFromString(name); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", name, got, k)
		}
	}
	if got := KindFromString("no-such-kind"); got != KindNone {
		t.Errorf("unknown name decoded to %v", got)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	now := 0.0
	bus := NewBus(func() float64 { return now })
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	bus.Subscribe(rec)

	var want []Event
	publish := func(ev Event) {
		bus.Publish(ev)
		ev.Time = now
		want = append(want, ev)
	}

	now = 0
	a := New(ReplicaAdd)
	a.Block, a.Node, a.Rack, a.File, a.Aux = 7, 3, 1, 2, 1<<28
	publish(a)

	now = 1.5
	l := New(TaskLaunch)
	l.Job, l.Block, l.Node, l.Rack, l.Flag = 0, 7, 3, 1, true
	publish(l)

	now = 3.0000001
	f := New(TaskFail)
	f.Job, f.Block, f.Node, f.Aux, f.Flag = 0, 7, 3, 1, true
	publish(f)

	now = 9
	h := New(Heartbeat)
	h.Node, h.Rack, h.Aux = 0, 0, 2
	publish(h)

	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if c := rec.Counts(); c[TaskLaunch] != 1 || c[ReplicaAdd] != 1 || c.Total() != 4 {
		t.Fatalf("counters wrong: %s", rec.Counts())
	}

	// Wire stability: field order fixed, absent fields omitted.
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	wantLine := `{"t":0,"kind":"replica-add","node":3,"rack":1,"file":2,"block":7,"aux":268435456}`
	if first != wantLine {
		t.Fatalf("wire format drifted:\n got %s\nwant %s", first, wantLine)
	}
}

func TestRecorderIdenticalAcrossRuns(t *testing.T) {
	trace := func() string {
		now := 0.0
		bus := NewBus(func() float64 { return now })
		var buf bytes.Buffer
		rec := NewRecorder(&buf)
		bus.Subscribe(rec)
		for i := 0; i < 100; i++ {
			now = float64(i) * 0.3
			ev := New(Heartbeat)
			ev.Node = int32(i % 7)
			ev.Rack = int32(i % 3)
			ev.Aux = int64(i % 2)
			bus.Publish(ev)
		}
		if err := rec.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := trace(), trace(); a != b {
		t.Fatal("identical publish sequences produced different traces")
	}
}

func TestCountsString(t *testing.T) {
	var c Counts
	c[TaskLaunch] = 3
	c[ReplicaAdd] = 1
	got := c.String()
	if got != "replica-add=1 task-launch=3" {
		t.Fatalf("Counts.String() = %q", got)
	}
}
