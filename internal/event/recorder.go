package event

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Counts holds one counter per event kind. Index with a Kind.
type Counts [NumKinds]uint64

// Total sums the per-kind counters.
func (c Counts) Total() uint64 {
	var n uint64
	for _, v := range c {
		n += v
	}
	return n
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	for k, v := range other {
		c[k] += v
	}
}

// Map returns the non-zero tallies keyed by kind name (nil when empty),
// in the shape JSON encoders want.
func (c Counts) Map() map[string]uint64 {
	var m map[string]uint64
	for k, v := range c {
		if v == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]uint64)
		}
		m[Kind(k).String()] = v
	}
	return m
}

// String renders the non-zero counters in kind-enum order, e.g.
// "replica-add=120 task-launch=4312". Deterministic by construction (array
// order, not map order).
func (c Counts) String() string {
	var sb strings.Builder
	for k, v := range c {
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%d", Kind(k), v)
	}
	return sb.String()
}

// Counter is the cheapest possible subscriber: it tallies events per kind
// and nothing else. One rides on every runner bus so experiment outputs
// can report event volume without paying for a trace.
type Counter struct {
	counts Counts
}

// HandleEvent implements Subscriber.
func (c *Counter) HandleEvent(ev Event) { c.counts[ev.Kind]++ }

// Counts returns a copy of the tallies so far.
func (c *Counter) Counts() Counts { return c.counts }

// RestoreCounts overwrites the tallies; a state-image restore seeds a
// fresh counter with the counts captured at the checkpoint.
func (c *Counter) RestoreCounts(counts Counts) { c.counts = counts }

// Recorder is a Subscriber that appends every event to w as one JSON
// object per line (JSONL) and tallies per-kind counters. Lines are
// hand-formatted into a reused buffer — no encoding/json, no maps, no
// per-event allocation once the buffer has grown — so recording a trace
// does not perturb benchmark comparisons more than the write itself.
//
// Wire format (stable; field order is fixed):
//
//	{"t":12.5,"kind":"task-launch","node":3,"rack":1,"job":7,"file":2,"block":91,"aux":268435456,"flag":true}
//
// "t" and "kind" always appear; identity fields are omitted when -1, "aux"
// when 0, and "flag" when false. Floats use strconv 'g' shortest
// round-trip formatting, so a trace is byte-reproducible across runs and
// platforms.
type Recorder struct {
	w      *bufio.Writer
	buf    []byte
	counts Counts
	err    error
}

// NewRecorder returns a recorder writing JSONL to w. Call Flush when the
// run completes; write errors are sticky and surface there.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 160)}
}

// HandleEvent implements Subscriber.
func (r *Recorder) HandleEvent(ev Event) {
	r.counts[ev.Kind]++
	if r.err != nil {
		return
	}
	b := r.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, ev.Time, 'g', -1, 64)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	b = appendIDField(b, `,"node":`, int64(ev.Node))
	b = appendIDField(b, `,"rack":`, int64(ev.Rack))
	b = appendIDField(b, `,"job":`, int64(ev.Job))
	b = appendIDField(b, `,"file":`, int64(ev.File))
	b = appendIDField(b, `,"block":`, ev.Block)
	if ev.Aux != 0 {
		b = append(b, `,"aux":`...)
		b = strconv.AppendInt(b, ev.Aux, 10)
	}
	if ev.Flag {
		b = append(b, `,"flag":true`...)
	}
	b = append(b, '}', '\n')
	r.buf = b
	if _, err := r.w.Write(b); err != nil {
		r.err = err
	}
}

func appendIDField(b []byte, key string, v int64) []byte {
	if v < 0 {
		return b
	}
	b = append(b, key...)
	return strconv.AppendInt(b, v, 10)
}

// Counts returns a copy of the per-kind tallies so far.
func (r *Recorder) Counts() Counts { return r.counts }

// RestoreCounts overwrites the tallies; a state-image restore seeds a
// fresh recorder with the counts captured at the checkpoint.
func (r *Recorder) RestoreCounts(counts Counts) { r.counts = counts }

// RestoreSink discards any buffered, unwritten output and points the
// recorder at w. A state-mode resume records to a throwaway sink during
// reconstruction (those events fired before the checkpoint and are
// already in the original log's prefix) and arms the real sink here, so
// only post-cut events reach it.
func (r *Recorder) RestoreSink(w io.Writer) {
	r.w.Reset(w)
	r.err = nil
}

// Flush drains the buffered writer and reports the first write error
// encountered, if any.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// logLine mirrors the Recorder wire format for decoding. Pointer fields
// distinguish "absent" from zero.
type logLine struct {
	T     float64 `json:"t"`
	Kind  string  `json:"kind"`
	Node  *int32  `json:"node"`
	Rack  *int32  `json:"rack"`
	Job   *int32  `json:"job"`
	File  *int32  `json:"file"`
	Block *int64  `json:"block"`
	Aux   int64   `json:"aux"`
	Flag  bool    `json:"flag"`
}

// ReadLog decodes a JSONL trace written by Recorder back into events.
// It is the analysis-side inverse of HandleEvent (used by trace-analyze);
// it allocates freely and is not for the hot path. Lines whose kind this
// binary does not know (a trace written by a newer simulator) are skipped,
// not errors; use ReadLogSkipped to learn how many.
func ReadLog(rd io.Reader) ([]Event, error) {
	evs, _, err := ReadLogSkipped(rd)
	return evs, err
}

// ReadLogSkipped is ReadLog plus a count of the lines skipped because
// their kind name was not recognized. Malformed JSON is still an error —
// only a valid line with an unknown "kind" is forward-compatible.
func ReadLogSkipped(rd io.Reader) ([]Event, int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var out []Event
	lineNo, skipped := 0, 0
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var l logLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			return nil, skipped, fmt.Errorf("event log line %d: %w", lineNo, err)
		}
		k := KindFromString(l.Kind)
		if k == KindNone {
			skipped++
			continue
		}
		ev := New(k)
		ev.Time = l.T
		if l.Node != nil {
			ev.Node = *l.Node
		}
		if l.Rack != nil {
			ev.Rack = *l.Rack
		}
		if l.Job != nil {
			ev.Job = *l.Job
		}
		if l.File != nil {
			ev.File = *l.File
		}
		if l.Block != nil {
			ev.Block = *l.Block
		}
		ev.Aux = l.Aux
		ev.Flag = l.Flag
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	return out, skipped, nil
}
