package event

import (
	"strings"
	"testing"
)

// Forward compatibility: an analyzer built from this binary must survive a
// trace written by a future simulator with event kinds it has never heard
// of — skip and count, never error, never panic.

func TestReadLogSkipsUnknownKinds(t *testing.T) {
	log := strings.Join([]string{
		`{"t":1,"kind":"replica-add","node":3,"block":7}`,
		`{"t":2,"kind":"quantum-entangle","node":4}`, // future kind
		`{"t":3,"kind":"task-launch","node":5,"job":1,"block":9,"flag":true}`,
		`{"t":4,"kind":"quantum-entangle","node":6}`,
	}, "\n")

	evs, skipped, err := ReadLogSkipped(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ReadLogSkipped: %v", err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(evs) != 2 || evs[0].Kind != ReplicaAdd || evs[1].Kind != TaskLaunch {
		t.Errorf("decoded events = %+v, want the two known-kind lines", evs)
	}

	// ReadLog (the facade path) tolerates the same trace silently.
	evs2, err := ReadLog(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(evs2) != 2 {
		t.Errorf("ReadLog decoded %d events, want 2", len(evs2))
	}
}

func TestReadLogStillRejectsMalformedJSON(t *testing.T) {
	if _, _, err := ReadLogSkipped(strings.NewReader(`{"t":1,"kind":`)); err == nil {
		t.Fatal("malformed JSON line decoded without error")
	}
}

func TestSummarizeToleratesSyntheticKind(t *testing.T) {
	future := Kind(NumKinds + 3) // a kind this binary does not know
	evs := []Event{
		{Kind: ReplicaAdd, Time: 1},
		{Kind: future, Time: 2},
		{Kind: TaskLaunch, Time: 3, Block: 5, Flag: true},
	}
	s := Summarize(evs) // must not panic on the out-of-range kind
	if s.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", s.Unknown)
	}
	if s.Counts[ReplicaAdd] != 1 || s.Counts[TaskLaunch] != 1 {
		t.Errorf("known kinds miscounted: %v", s.Counts)
	}
	if s.Start != 1 || s.End != 3 {
		t.Errorf("span = [%g, %g], want [1, 3] (unknown events still span)", s.Start, s.End)
	}
	if !strings.Contains(RenderTraceStats(s), "unknown") {
		t.Error("RenderTraceStats does not surface the unknown-event count")
	}
}
