package event

import (
	"strings"
	"testing"
)

// Forward compatibility: an analyzer built from this binary must survive a
// trace written by a future simulator with event kinds it has never heard
// of — skip and count, never error, never panic.

func TestReadLogSkipsUnknownKinds(t *testing.T) {
	log := strings.Join([]string{
		`{"t":1,"kind":"replica-add","node":3,"block":7}`,
		`{"t":2,"kind":"quantum-entangle","node":4}`, // future kind
		`{"t":3,"kind":"task-launch","node":5,"job":1,"block":9,"flag":true}`,
		`{"t":4,"kind":"quantum-entangle","node":6}`,
	}, "\n")

	evs, skipped, err := ReadLogSkipped(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ReadLogSkipped: %v", err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if len(evs) != 2 || evs[0].Kind != ReplicaAdd || evs[1].Kind != TaskLaunch {
		t.Errorf("decoded events = %+v, want the two known-kind lines", evs)
	}

	// ReadLog (the facade path) tolerates the same trace silently.
	evs2, err := ReadLog(strings.NewReader(log))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(evs2) != 2 {
		t.Errorf("ReadLog decoded %d events, want 2", len(evs2))
	}
}

func TestReadLogStillRejectsMalformedJSON(t *testing.T) {
	if _, _, err := ReadLogSkipped(strings.NewReader(`{"t":1,"kind":`)); err == nil {
		t.Fatal("malformed JSON line decoded without error")
	}
}

func TestSummarizeToleratesSyntheticKind(t *testing.T) {
	future := Kind(NumKinds + 3) // a kind this binary does not know
	evs := []Event{
		{Kind: ReplicaAdd, Time: 1},
		{Kind: future, Time: 2},
		{Kind: TaskLaunch, Time: 3, Block: 5, Flag: true},
	}
	s := Summarize(evs) // must not panic on the out-of-range kind
	if s.Unknown != 1 {
		t.Errorf("Unknown = %d, want 1", s.Unknown)
	}
	if s.Counts[ReplicaAdd] != 1 || s.Counts[TaskLaunch] != 1 {
		t.Errorf("known kinds miscounted: %v", s.Counts)
	}
	if s.Start != 1 || s.End != 3 {
		t.Errorf("span = [%g, %g], want [1, 3] (unknown events still span)", s.Start, s.End)
	}
	if !strings.Contains(RenderTraceStats(s), "unknown") {
		t.Error("RenderTraceStats does not surface the unknown-event count")
	}
}

func TestSummarizeMasterDowntime(t *testing.T) {
	evs := []Event{
		{Kind: JobArrive, Time: 0},
		{Kind: MasterCrash, Time: 10, Aux: 120},
		{Kind: MasterRecover, Time: 25, Aux: 40, Block: 3},
		{Kind: MasterCrash, Time: 60},
		{Kind: MasterRecover, Time: 70, Aux: 11, Block: 0},
		{Kind: JobFinish, Time: 100},
	}
	s := Summarize(evs)
	if s.MasterOutages != 2 {
		t.Errorf("outages = %d, want 2", s.MasterOutages)
	}
	if s.MasterDowntime != 25 {
		t.Errorf("downtime = %g, want 25", s.MasterDowntime)
	}
	if s.DeferredHeartbeats != 51 || s.DeferredReads != 3 {
		t.Errorf("deferred = %d hb / %d reads, want 51/3", s.DeferredHeartbeats, s.DeferredReads)
	}
	out := RenderTraceStats(s)
	if !strings.Contains(out, "master      2 outages, 25.0 sim seconds unavailable (25.0%), 51 heartbeats and 3 reads deferred") {
		t.Errorf("downtime line missing or wrong:\n%s", out)
	}

	// A trace that ends mid-outage counts the observed tail, and a trace
	// with no master events prints no master line at all.
	cut := Summarize(evs[:4])
	if cut.MasterDowntime != 15 {
		t.Errorf("mid-outage downtime = %g, want 15 (crash at 60, trace ends at 60)", cut.MasterDowntime)
	}
	quiet := Summarize(evs[:1])
	if strings.Contains(RenderTraceStats(quiet), "master ") {
		t.Error("master line printed for a trace with no outages")
	}
}
