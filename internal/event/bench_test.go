package event

import (
	"fmt"
	"testing"
)

// sink is a minimal subscriber approximating the Counter's cost: one array
// increment per event, no allocation.
type sink struct {
	counts Counts
}

func (s *sink) HandleEvent(ev Event) { s.counts[ev.Kind]++ }

// BenchmarkBusPublish measures raw dispatch cost at the subscriber counts
// a simulation actually runs with: 0 (bare name node in unit tests), 1,
// and 4 (the tracker's decomposed components). The contract is zero
// allocations per publish regardless of fan-out.
func BenchmarkBusPublish(b *testing.B) {
	for _, subs := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			now := 0.0
			bus := NewBus(func() float64 { return now })
			sinks := make([]sink, subs)
			for i := range sinks {
				bus.Subscribe(&sinks[i])
			}
			ev := New(TaskLaunch)
			ev.Job, ev.Block, ev.Node, ev.Rack = 1, 42, 3, 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = float64(i)
				bus.Publish(ev)
			}
		})
	}
}
