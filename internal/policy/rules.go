package policy

import (
	"fmt"

	"dare/internal/stats"
)

// allowRule and denyRule are the constant predicates; config files spell
// them {"rule":"allow"} / {"rule":"deny"}.
type allowRule struct{}

func (allowRule) Eval(Context) bool { return true }

type denyRule struct{}

func (denyRule) Eval(Context) bool { return false }

// Allow returns the always-true rule.
func Allow() Rule { return allowRule{} }

// Deny returns the always-false rule.
func Deny() Rule { return denyRule{} }

// Threshold compares one context scalar against a bound:
//
//	ctx[Key]  Op  Value                (Of == "")
//	ctx[Key]  Op  Factor * ctx[Of]     (Of != "", Factor 0 means 1)
//
// Op is one of < <= > >= == !=. A missing Key (or Of) makes the rule
// false. The two-key form is what expresses relational gates like the
// speculation trigger "elapsed > factor × mean map time" without baking
// run statistics into the rule.
type Threshold struct {
	Key    string
	Op     string
	Value  float64
	Of     string
	Factor float64
}

// Eval implements Rule.
func (t *Threshold) Eval(ctx Context) bool {
	lhs, ok := ctx.Val(t.Key)
	if !ok {
		return false
	}
	rhs := t.Value
	if t.Of != "" {
		v, ok := ctx.Val(t.Of)
		if !ok {
			return false
		}
		f := t.Factor
		if f == 0 {
			f = 1
		}
		rhs = f * v
	}
	switch t.Op {
	case "<":
		return lhs < rhs
	case "<=":
		return lhs <= rhs
	case ">":
		return lhs > rhs
	case ">=":
		return lhs >= rhs
	case "==":
		return lhs == rhs
	case "!=":
		return lhs != rhs
	}
	return false
}

// checkOp validates a Threshold operator at compile time so config typos
// fail loudly instead of silently evaluating false.
func checkOp(op string) error {
	switch op {
	case "<", "<=", ">", ">=", "==", "!=":
		return nil
	}
	return fmt.Errorf("policy: unknown threshold op %q (want < <= > >= == !=)", op)
}

// Probability fires with probability P on every evaluation, drawing from
// its own seed stream. ElephantTrap's sampling gate is exactly this rule:
// stats.RNG.Bool short-circuits P <= 0 and P >= 1 without consuming a
// draw, so compiled built-ins reproduce the historical draw sequence bit
// for bit.
type Probability struct {
	P   float64
	rng *stats.RNG
}

// NewProbability builds the sampling rule on a dedicated stream.
func NewProbability(p float64, rng *stats.RNG) *Probability {
	return &Probability{P: p, rng: rng}
}

// Eval implements Rule.
func (p *Probability) Eval(Context) bool { return p.rng.Bool(p.P) }

// RateWindow counts evaluations as occurrences on the simulated clock
// (context key "now") and fires when at least AtLeast occurrences —
// including the current one — fall within the trailing Window seconds.
// It expresses burst triggers like "blacklist on 3 failures within 60 s".
// A context without "now" counts occurrences at time 0 (the window never
// slides), degrading to a plain counter threshold.
type RateWindow struct {
	Window  float64
	AtLeast int
	times   []float64
}

// NewRateWindow builds the sliding-window rule.
func NewRateWindow(window float64, atLeast int) *RateWindow {
	return &RateWindow{Window: window, AtLeast: atLeast}
}

// Eval implements Rule.
func (r *RateWindow) Eval(ctx Context) bool {
	now, _ := ctx.Val("now")
	keep := r.times[:0]
	for _, t := range r.times {
		if t > now-r.Window {
			keep = append(keep, t)
		}
	}
	r.times = append(keep, now)
	return len(r.times) >= r.AtLeast
}

// anyRule fires when any sub-rule fires; evaluation short-circuits in
// order, which matters for stateful sub-rules.
type anyRule struct{ rules []Rule }

func (a *anyRule) Eval(ctx Context) bool {
	for _, r := range a.rules {
		if r.Eval(ctx) {
			return true
		}
	}
	return false
}

// allRule fires when every sub-rule fires; evaluation short-circuits in
// order.
type allRule struct{ rules []Rule }

func (a *allRule) Eval(ctx Context) bool {
	for _, r := range a.rules {
		if !r.Eval(ctx) {
			return false
		}
	}
	return true
}

// notRule inverts its sub-rule.
type notRule struct{ rule Rule }

func (n *notRule) Eval(ctx Context) bool { return !n.rule.Eval(ctx) }

// Any returns the disjunction of rules.
func Any(rules ...Rule) Rule { return &anyRule{rules: rules} }

// All returns the conjunction of rules.
func All(rules ...Rule) Rule { return &allRule{rules: rules} }

// Not returns the negation of rule.
func Not(rule Rule) Rule { return &notRule{rule: rule} }

// WeightedScore fires when the weighted sum of context scalars reaches
// Min: Σ Weight_i × ctx[Key_i] >= Min. Missing keys contribute zero, so a
// score over optional signals degrades gracefully.
type WeightedScore struct {
	Terms []Term
	Min   float64
}

// Eval implements Rule.
func (w *WeightedScore) Eval(ctx Context) bool {
	var sum float64
	for _, t := range w.Terms {
		if v, ok := ctx.Val(t.Key); ok {
			sum += t.Weight * v
		}
	}
	return sum >= w.Min
}

// EpsilonGreedy is the bandit combinator: it delegates each evaluation to
// the currently selected arm, credits the observed reward (context key
// RewardKey, default "local") to that arm, and at every Window seconds of
// simulated time re-selects — exploring a uniformly random arm with
// probability Epsilon, otherwise exploiting the arm with the best mean
// reward so far (ties break to the lowest arm index).
//
// With Probability arms of increasing P this is the ε-greedy
// replication-factor bandit over observed access skew: each arm is a
// replication aggressiveness, the reward is the locality the node is
// seeing, and the bandit learns per node which aggressiveness pays. All
// randomness comes from the rule's own compiled stream, so runs stay
// deterministic.
type EpsilonGreedy struct {
	Epsilon   float64
	Window    float64
	RewardKey string

	arms []Rule
	rng  *stats.RNG

	current     int
	windowStart float64
	started     bool
	pulls       []float64
	rewards     []float64
}

// NewEpsilonGreedy builds the bandit over arms on a dedicated stream.
func NewEpsilonGreedy(epsilon, window float64, rewardKey string, arms []Rule, rng *stats.RNG) *EpsilonGreedy {
	if rewardKey == "" {
		rewardKey = "local"
	}
	return &EpsilonGreedy{
		Epsilon:   epsilon,
		Window:    window,
		RewardKey: rewardKey,
		arms:      arms,
		rng:       rng,
		pulls:     make([]float64, len(arms)),
		rewards:   make([]float64, len(arms)),
	}
}

// Arm reports the currently selected arm index (introspection/tests).
func (e *EpsilonGreedy) Arm() int { return e.current }

// Eval implements Rule.
func (e *EpsilonGreedy) Eval(ctx Context) bool {
	now, _ := ctx.Val("now")
	if !e.started {
		e.started = true
		e.windowStart = now
	}
	if reward, ok := ctx.Val(e.RewardKey); ok {
		e.pulls[e.current]++
		e.rewards[e.current] += reward
	}
	if now >= e.windowStart+e.Window {
		e.windowStart = now
		if e.rng.Bool(e.Epsilon) {
			e.current = e.rng.Intn(len(e.arms))
		} else {
			e.current = e.bestArm()
		}
	}
	return e.arms[e.current].Eval(ctx)
}

// bestArm returns the arm with the highest mean reward; unpulled arms
// score zero, ties break to the lowest index.
func (e *EpsilonGreedy) bestArm() int {
	best, bestMean := 0, -1.0
	for i := range e.arms {
		mean := 0.0
		if e.pulls[i] > 0 {
			mean = e.rewards[i] / e.pulls[i]
		}
		if mean > bestMean {
			best, bestMean = i, mean
		}
	}
	return best
}
