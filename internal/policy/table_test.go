package policy

import (
	"strings"
	"testing"
)

// TestTestdataTables is the `opa test testdata/` equivalent: every table
// under testdata/ must compile and every row must match.
func TestTestdataTables(t *testing.T) {
	tables, err := LoadTables("testdata")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 10 {
		t.Fatalf("expected at least 10 tables in testdata, got %d", len(tables))
	}
	for _, res := range RunTables(tables) {
		if res.Err != nil {
			t.Errorf("table %s: compile: %v", res.Table, res.Err)
			continue
		}
		for _, rr := range res.Rows {
			if !rr.Pass {
				t.Errorf("table %s row %s: got %v want %v (given %v)",
					res.Table, rr.Row.Name, rr.Got, rr.Row.Want, rr.Row.Given)
			}
		}
	}
}

func TestRunTableReportsFailures(t *testing.T) {
	tab := &Table{
		Name: "fails",
		Rule: &RuleSpec{Rule: "allow"},
		Rows: []TableRow{
			{Name: "wrong", Given: map[string]float64{}, Want: false},
			{Name: "right", Given: map[string]float64{}, Want: true},
		},
	}
	res := RunTable(tab)
	if res.Pass() || res.Failed != 1 {
		t.Fatalf("expected exactly one failing row, got %+v", res)
	}
}

func TestRunTableCompileError(t *testing.T) {
	res := RunTable(&Table{Name: "bad", Rule: &RuleSpec{Rule: "bogus"}})
	if res.Pass() || res.Err == nil {
		t.Fatal("compile error should fail the table")
	}
}

func TestReadTablesValidates(t *testing.T) {
	if _, err := ReadTables(strings.NewReader(`[{"rule":{"rule":"allow"}}]`)); err == nil {
		t.Fatal("unnamed table should be rejected")
	}
	if _, err := ReadTables(strings.NewReader(`[{"name":"x"}]`)); err == nil {
		t.Fatal("ruleless table should be rejected")
	}
	if _, err := ReadTables(strings.NewReader(`[{"name":"x","rule":{"rule":"allow"},"bogus":1}]`)); err == nil {
		t.Fatal("unknown fields should be rejected")
	}
}
