package policy

import "dare/internal/snapshot"

// AddRuleState folds a rule tree's mutable state into h: RNG stream
// positions (Probability, EpsilonGreedy), sliding-window occurrence times
// (RateWindow), and bandit arm statistics (EpsilonGreedy). Each node
// contributes a type tag so an empty stateful node still shapes the
// digest, and combinators recurse in sub-rule order. Stateless rules
// (Threshold, WeightedScore, Allow, Deny) contribute only their tag: their
// parameters come from the compiled spec, which the checkpoint stores
// separately.
func AddRuleState(h *snapshot.Hash, r Rule) {
	switch v := r.(type) {
	case allowRule:
		h.Str("allow")
	case denyRule:
		h.Str("deny")
	case *Threshold:
		h.Str("threshold")
	case *WeightedScore:
		h.Str("score")
	case *Probability:
		h.Str("probability")
		h.U64(v.rng.Draws())
	case *RateWindow:
		h.Str("ratewindow")
		h.Int(len(v.times))
		for _, t := range v.times {
			h.F64(t)
		}
	case *EpsilonGreedy:
		h.Str("epsilongreedy")
		h.Int(v.current)
		h.F64(v.windowStart)
		h.Bool(v.started)
		for i := range v.arms {
			h.F64(v.pulls[i])
			h.F64(v.rewards[i])
			AddRuleState(h, v.arms[i])
		}
		h.U64(v.rng.Draws())
	case *anyRule:
		h.Str("any")
		for _, sub := range v.rules {
			AddRuleState(h, sub)
		}
	case *allRule:
		h.Str("all")
		for _, sub := range v.rules {
			AddRuleState(h, sub)
		}
	case *notRule:
		h.Str("not")
		AddRuleState(h, v.rule)
	default:
		// Unknown rule types (user-supplied Rule implementations) cannot be
		// fingerprinted; tag them so two trees differing only in an opaque
		// node still differ when their shapes do.
		h.Str("opaque")
	}
}
