package policy

import (
	"fmt"

	"dare/internal/stats"
)

// RuleSpec is the JSON form of a rule tree. Exactly one combinator is
// named by Rule; the other fields parameterize it:
//
//	{"rule":"allow"} / {"rule":"deny"}
//	{"rule":"threshold","key":"count","op":"<","value":1}
//	{"rule":"threshold","key":"elapsed","op":">","of":"mean_map","factor":1.5}
//	{"rule":"probability","p":0.3}
//	{"rule":"ratewindow","window":60,"atLeast":3}
//	{"rule":"weightedscore","terms":[{"key":"load","weight":-1}],"min":0}
//	{"rule":"not","rules":[...]} (one sub-rule)
//	{"rule":"any","rules":[...]} / {"rule":"all","rules":[...]}
//	{"rule":"epsilongreedy","epsilon":0.1,"window":30,"arms":[...]}
//
// Unknown combinator names and malformed parameters are compile errors,
// not silent false rules.
type RuleSpec struct {
	Rule string `json:"rule"`

	// threshold
	Key    string  `json:"key,omitempty"`
	Op     string  `json:"op,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Of     string  `json:"of,omitempty"`
	Factor float64 `json:"factor,omitempty"`

	// probability
	P float64 `json:"p,omitempty"`

	// ratewindow (Window shared with epsilongreedy)
	Window  float64 `json:"window,omitempty"`
	AtLeast int     `json:"atLeast,omitempty"`

	// any / all / not
	Rules []*RuleSpec `json:"rules,omitempty"`

	// weightedscore
	Terms []Term  `json:"terms,omitempty"`
	Min   float64 `json:"min,omitempty"`

	// epsilongreedy
	Epsilon   float64     `json:"epsilon,omitempty"`
	RewardKey string      `json:"rewardKey,omitempty"`
	Arms      []*RuleSpec `json:"arms,omitempty"`
}

// Stateful reports whether compiling this spec produces a rule that
// draws randomness or accumulates state, i.e. needs its own seed stream
// per decision stream.
func (s *RuleSpec) Stateful() bool {
	if s == nil {
		return false
	}
	switch s.Rule {
	case "probability", "ratewindow", "epsilongreedy":
		return true
	}
	for _, sub := range s.Rules {
		if sub.Stateful() {
			return true
		}
	}
	for _, arm := range s.Arms {
		if arm.Stateful() {
			return true
		}
	}
	return false
}

// seedAlloc hands seed streams to stateful rule nodes during compilation.
// The FIRST stateful node receives the root stream itself; later ones get
// independent splits. This is what makes a compiled built-in ElephantTrap
// spec — whose only stateful node is the admission probability — consume
// the per-node stream exactly like the historical hard-coded policy did,
// keeping goldens byte-identical. stats.RNG.Split derives children from
// the parent's seed without consuming parent state, so handing out the
// root first is safe.
type seedAlloc struct {
	root *stats.RNG
	n    uint64
}

func (a *seedAlloc) next() *stats.RNG {
	a.n++
	if a.n == 1 {
		return a.root
	}
	return a.root.Split(0x5EED + a.n)
}

// Compile builds the rule tree with a fresh stream derived from seed.
// Stateless specs never touch the stream.
func (s *RuleSpec) Compile(seed uint64) (Rule, error) {
	return s.CompileWith(stats.NewRNG(seed))
}

// CompileWith builds the rule tree, allocating seed streams for stateful
// nodes from rng (see seedAlloc for the allocation order contract).
func (s *RuleSpec) CompileWith(rng *stats.RNG) (Rule, error) {
	alloc := &seedAlloc{root: rng}
	return s.compile(alloc)
}

func (s *RuleSpec) compile(alloc *seedAlloc) (Rule, error) {
	if s == nil {
		return nil, fmt.Errorf("policy: nil rule spec")
	}
	switch s.Rule {
	case "allow":
		return Allow(), nil
	case "deny":
		return Deny(), nil
	case "threshold":
		if s.Key == "" {
			return nil, fmt.Errorf("policy: threshold rule needs a key")
		}
		if err := checkOp(s.Op); err != nil {
			return nil, err
		}
		return &Threshold{Key: s.Key, Op: s.Op, Value: s.Value, Of: s.Of, Factor: s.Factor}, nil
	case "probability":
		if s.P < 0 || s.P > 1 {
			return nil, fmt.Errorf("policy: probability p=%v out of [0,1]", s.P)
		}
		return NewProbability(s.P, alloc.next()), nil
	case "ratewindow":
		if s.Window <= 0 {
			return nil, fmt.Errorf("policy: ratewindow needs window > 0")
		}
		if s.AtLeast < 1 {
			return nil, fmt.Errorf("policy: ratewindow needs atLeast >= 1")
		}
		_ = alloc.next() // reserve a stream slot: stateful, though it draws nothing
		return NewRateWindow(s.Window, s.AtLeast), nil
	case "not":
		if len(s.Rules) != 1 {
			return nil, fmt.Errorf("policy: not rule needs exactly one sub-rule, got %d", len(s.Rules))
		}
		sub, err := s.Rules[0].compile(alloc)
		if err != nil {
			return nil, err
		}
		return Not(sub), nil
	case "any", "all":
		if len(s.Rules) == 0 {
			return nil, fmt.Errorf("policy: %s rule needs sub-rules", s.Rule)
		}
		subs := make([]Rule, 0, len(s.Rules))
		for _, spec := range s.Rules {
			sub, err := spec.compile(alloc)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sub)
		}
		if s.Rule == "any" {
			return Any(subs...), nil
		}
		return All(subs...), nil
	case "weightedscore":
		if len(s.Terms) == 0 {
			return nil, fmt.Errorf("policy: weightedscore rule needs terms")
		}
		return &WeightedScore{Terms: s.Terms, Min: s.Min}, nil
	case "epsilongreedy":
		if s.Epsilon < 0 || s.Epsilon > 1 {
			return nil, fmt.Errorf("policy: epsilongreedy epsilon=%v out of [0,1]", s.Epsilon)
		}
		if s.Window <= 0 {
			return nil, fmt.Errorf("policy: epsilongreedy needs window > 0")
		}
		if len(s.Arms) == 0 {
			return nil, fmt.Errorf("policy: epsilongreedy needs arms")
		}
		rng := alloc.next()
		arms := make([]Rule, 0, len(s.Arms))
		for _, spec := range s.Arms {
			arm, err := spec.compile(alloc)
			if err != nil {
				return nil, err
			}
			arms = append(arms, arm)
		}
		return NewEpsilonGreedy(s.Epsilon, s.Window, s.RewardKey, arms, rng), nil
	case "":
		return nil, fmt.Errorf("policy: rule spec missing \"rule\" field")
	}
	return nil, fmt.Errorf("policy: unknown rule %q", s.Rule)
}

// RuleSet is the JSON form of a replication policy's decision points.
// Any field may be nil, meaning "use the policy kind's built-in default".
type RuleSet struct {
	// Admit gates whether a non-local read creates a replica.
	Admit *RuleSpec `json:"admit,omitempty"`
	// Victim gates whether an eviction candidate may be evicted at all
	// (e.g. "not a block of the file being admitted": same_file == 0).
	Victim *RuleSpec `json:"victim,omitempty"`
	// Aged gates whether a candidate surviving Victim is evicted now or
	// aged and passed over (ElephantTrap's count < threshold test).
	Aged *RuleSpec `json:"aged,omitempty"`
}

// ReplicationRules is a compiled RuleSet bound to one decision stream
// (one data node).
type ReplicationRules struct {
	Admit  Rule
	Victim Rule
	Aged   Rule
}

// CompileWith compiles the set against one seed stream, allocating in
// the fixed order admit → victim → aged so that the same spec always
// maps the same stream to the same node. Nil specs compile to nil rules;
// callers substitute their built-in behavior.
func (rs *RuleSet) CompileWith(rng *stats.RNG) (ReplicationRules, error) {
	var out ReplicationRules
	if rs == nil {
		return out, nil
	}
	alloc := &seedAlloc{root: rng}
	var err error
	if rs.Admit != nil {
		if out.Admit, err = rs.Admit.compile(alloc); err != nil {
			return ReplicationRules{}, fmt.Errorf("admit: %w", err)
		}
	}
	if rs.Victim != nil {
		if out.Victim, err = rs.Victim.compile(alloc); err != nil {
			return ReplicationRules{}, fmt.Errorf("victim: %w", err)
		}
	}
	if rs.Aged != nil {
		if out.Aged, err = rs.Aged.compile(alloc); err != nil {
			return ReplicationRules{}, fmt.Errorf("aged: %w", err)
		}
	}
	return out, nil
}
