// Package policy is the declarative decision layer of the reproduction:
// a small typed rule/predicate combinator library, a JSON spec front end
// for composing rules from config files, and an `opa test`-style
// table-test harness (RunTable) for pinning decisions row by row.
//
// The design follows OPA's model of policies as independently testable
// rules over an input document: every decision point in the simulator
// (replication admission and eviction in internal/core, repair-target
// ranking in internal/dfs, speculation qualification and blacklisting in
// internal/mapreduce) evaluates a Rule against a Context of named scalars
// instead of hard-coding the comparison. The data structures that *carry*
// the decisions — circular lists, heaps, the locality index — stay native
// Go; only the predicates moved here.
//
// Determinism: rules never reach for ambient randomness or wall clocks.
// Probabilistic combinators own a *stats.RNG handed to them at compile
// time, and time-aware combinators read the simulated clock from the
// Context ("now"). Compiling the same spec against the same seed stream
// therefore reproduces the exact decision sequence — the property the
// golden tests and the built-in-vs-config-file equivalence gates rely on.
package policy

// Context supplies the named scalars a rule may read. Decision sites
// implement it with small reusable structs (a switch over the key names)
// so evaluation allocates nothing on hot paths; tests use MapCtx.
//
// The second return reports whether the key exists in this context.
// Rules treat a missing key as "condition not met" rather than an error:
// a config-file rule referencing a key its decision site does not supply
// simply never fires.
type Context interface {
	Val(key string) (float64, bool)
}

// MapCtx is the map-backed Context used by tests and the table harness.
type MapCtx map[string]float64

// Val implements Context.
func (m MapCtx) Val(key string) (float64, bool) {
	v, ok := m[key]
	return v, ok
}

// Rule is one boolean predicate over a Context. Implementations may hold
// internal state (sampling streams, rate windows, bandit tallies), so a
// compiled Rule instance must not be shared across independent decision
// streams — compile one per stream (e.g. per data node).
type Rule interface {
	Eval(ctx Context) bool
}
