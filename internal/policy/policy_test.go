package policy

import (
	"strings"
	"testing"

	"dare/internal/stats"
)

func TestThresholdOps(t *testing.T) {
	cases := []struct {
		op   string
		lhs  float64
		rhs  float64
		want bool
	}{
		{"<", 1, 2, true}, {"<", 2, 2, false},
		{"<=", 2, 2, true}, {"<=", 3, 2, false},
		{">", 2, 1, true}, {">", 2, 2, false},
		{">=", 2, 2, true}, {">=", 1, 2, false},
		{"==", 2, 2, true}, {"==", 1, 2, false},
		{"!=", 1, 2, true}, {"!=", 2, 2, false},
	}
	for _, c := range cases {
		r := &Threshold{Key: "x", Op: c.op, Value: c.rhs}
		if got := r.Eval(MapCtx{"x": c.lhs}); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.lhs, c.op, c.rhs, got, c.want)
		}
	}
}

func TestThresholdMissingKeyIsFalse(t *testing.T) {
	r := &Threshold{Key: "x", Op: ">", Value: 0}
	if r.Eval(MapCtx{}) {
		t.Fatal("missing key should not fire")
	}
	rel := &Threshold{Key: "x", Op: ">", Of: "y", Factor: 2}
	if rel.Eval(MapCtx{"x": 10}) {
		t.Fatal("missing Of key should not fire")
	}
}

func TestThresholdRelational(t *testing.T) {
	// elapsed > 1.5 × mean: the speculation shape.
	r := &Threshold{Key: "elapsed", Op: ">", Of: "mean", Factor: 1.5}
	if !r.Eval(MapCtx{"elapsed": 16, "mean": 10}) {
		t.Fatal("16 > 1.5*10 should fire")
	}
	if r.Eval(MapCtx{"elapsed": 15, "mean": 10}) {
		t.Fatal("15 > 1.5*10 should not fire")
	}
	// Factor 0 defaults to 1.
	eq := &Threshold{Key: "a", Op: ">=", Of: "b"}
	if !eq.Eval(MapCtx{"a": 3, "b": 3}) {
		t.Fatal("factor default 1: 3 >= 3 should fire")
	}
}

// TestProbabilityMatchesRNGBool pins the equivalence the ElephantTrap
// golden gate relies on: a compiled Probability consumes its stream
// exactly as direct rng.Bool(p) calls would.
func TestProbabilityMatchesRNGBool(t *testing.T) {
	for _, p := range []float64{0, 0.3, 0.7, 1} {
		rule := NewProbability(p, stats.NewRNG(99))
		ref := stats.NewRNG(99)
		for i := 0; i < 200; i++ {
			if got, want := rule.Eval(MapCtx{}), ref.Bool(p); got != want {
				t.Fatalf("p=%v draw %d: rule=%v rng=%v", p, i, got, want)
			}
		}
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRateWindow(60, 3)
	fire := func(now float64) bool { return r.Eval(MapCtx{"now": now}) }
	if fire(0) || fire(10) {
		t.Fatal("fewer than 3 occurrences should not fire")
	}
	if !fire(20) {
		t.Fatal("3 occurrences within 60s should fire")
	}
	// Window slides: at t=100 the occurrences at 0,10,20 have expired.
	if fire(100) {
		t.Fatal("expired occurrences should not count")
	}
	if fire(110) {
		t.Fatal("only 2 in window")
	}
	if !fire(120) {
		t.Fatal("3 again within window")
	}
}

func TestCombinators(t *testing.T) {
	yes, no := Allow(), Deny()
	if !Any(no, yes).Eval(nil) || Any(no, no).Eval(nil) {
		t.Fatal("any")
	}
	if !All(yes, yes).Eval(nil) || All(yes, no).Eval(nil) {
		t.Fatal("all")
	}
	if Not(yes).Eval(nil) || !Not(no).Eval(nil) {
		t.Fatal("not")
	}
}

func TestWeightedScore(t *testing.T) {
	r := &WeightedScore{Terms: []Term{{Key: "a", Weight: 2}, {Key: "b", Weight: -1}}, Min: 3}
	if !r.Eval(MapCtx{"a": 2, "b": 1}) { // 4-1 = 3 >= 3
		t.Fatal("boundary should fire")
	}
	if r.Eval(MapCtx{"a": 2, "b": 2}) { // 4-2 = 2 < 3
		t.Fatal("below min should not fire")
	}
	// Missing keys contribute zero.
	if r.Eval(MapCtx{"b": -2}) { // 0+2 = 2 < 3
		t.Fatal("missing key should contribute 0")
	}
}

func TestEpsilonGreedyExploitsBestArm(t *testing.T) {
	// Two arms: deny and allow. Epsilon 0 → pure exploitation. Reward
	// tracks "local"; arm 1 (allow) earns reward 1, arm 0 earns 0.
	// Start on arm 0, feed zero reward, and check the bandit switches to
	// whichever arm has the better mean once arm 1 has been explored.
	eg := NewEpsilonGreedy(0, 10, "", []Rule{Deny(), Allow()}, stats.NewRNG(7))
	// Window 1: arm 0 (initial), zero reward.
	for now := 0.0; now < 10; now++ {
		if eg.Eval(MapCtx{"now": now, "local": 0}) {
			t.Fatal("arm 0 is deny")
		}
	}
	// Boundary crossing re-selects: all means are 0, tie → arm 0 stays.
	eg.Eval(MapCtx{"now": 10, "local": 0})
	if eg.Arm() != 0 {
		t.Fatalf("tie should keep lowest arm, got %d", eg.Arm())
	}
	// Seed arm 1 with reward by forcing exploration via a fresh bandit.
	eg2 := NewEpsilonGreedy(1, 10, "", []Rule{Deny(), Allow()}, stats.NewRNG(7))
	sawArm1 := false
	for now := 0.0; now < 500; now++ {
		eg2.Eval(MapCtx{"now": now, "local": float64(eg2.Arm())})
		if eg2.Arm() == 1 {
			sawArm1 = true
		}
	}
	if !sawArm1 {
		t.Fatal("epsilon=1 should explore arm 1")
	}
	// Now exploit: with reward == arm index, arm 1's mean dominates.
	eg2.Epsilon = 0
	eg2.Eval(MapCtx{"now": 1000, "local": float64(eg2.Arm())})
	if eg2.Arm() != 1 {
		t.Fatalf("exploitation should pick arm 1, got %d", eg2.Arm())
	}
}

func TestEpsilonGreedyDeterministic(t *testing.T) {
	build := func() *EpsilonGreedy {
		arms := []Rule{NewProbability(0.2, stats.NewRNG(1)), NewProbability(0.8, stats.NewRNG(2))}
		return NewEpsilonGreedy(0.3, 5, "", arms, stats.NewRNG(3))
	}
	a, b := build(), build()
	for now := 0.0; now < 300; now++ {
		ctx := MapCtx{"now": now, "local": float64(int(now) % 2)}
		if a.Eval(ctx) != b.Eval(ctx) {
			t.Fatalf("diverged at now=%v", now)
		}
	}
}

// TestSeedAllocFirstStatefulGetsRoot pins the compile contract that
// keeps ElephantTrap goldens byte-identical: the first stateful node in
// a spec consumes the root stream directly.
func TestSeedAllocFirstStatefulGetsRoot(t *testing.T) {
	spec := &RuleSpec{Rule: "probability", P: 0.3}
	rule, err := spec.CompileWith(stats.NewRNG(1234))
	if err != nil {
		t.Fatal(err)
	}
	ref := stats.NewRNG(1234)
	for i := 0; i < 100; i++ {
		if rule.Eval(MapCtx{}) != ref.Bool(0.3) {
			t.Fatalf("draw %d diverged: compiled rule does not own the root stream", i)
		}
	}
}

func TestRuleSetCompileAdmitGetsRoot(t *testing.T) {
	// The ET default set's only stateful node is the admit probability;
	// compiled against a node stream it must replay that stream.
	rs := DefaultRuleSet("elephanttrap", 0.3, 1)
	rules, err := rs.CompileWith(stats.NewRNG(55))
	if err != nil {
		t.Fatal(err)
	}
	ref := stats.NewRNG(55)
	for i := 0; i < 100; i++ {
		if rules.Admit.Eval(MapCtx{}) != ref.Bool(0.3) {
			t.Fatalf("draw %d diverged", i)
		}
	}
	if rules.Victim == nil || rules.Aged == nil {
		t.Fatal("ET default set should compile victim and aged rules")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []*RuleSpec{
		{Rule: "nope"},
		{},
		{Rule: "threshold", Op: ">"},
		{Rule: "threshold", Key: "x", Op: "~"},
		{Rule: "probability", P: 1.5},
		{Rule: "ratewindow", Window: 0, AtLeast: 1},
		{Rule: "ratewindow", Window: 5, AtLeast: 0},
		{Rule: "not"},
		{Rule: "not", Rules: []*RuleSpec{{Rule: "allow"}, {Rule: "allow"}}},
		{Rule: "any"},
		{Rule: "all"},
		{Rule: "weightedscore"},
		{Rule: "epsilongreedy", Epsilon: 0.1, Window: 10},
		{Rule: "epsilongreedy", Epsilon: 2, Window: 10, Arms: []*RuleSpec{{Rule: "allow"}}},
		{Rule: "epsilongreedy", Epsilon: 0.1, Window: 0, Arms: []*RuleSpec{{Rule: "allow"}}},
		{Rule: "any", Rules: []*RuleSpec{{Rule: "bogus"}}},
	}
	for i, s := range bad {
		if _, err := s.Compile(1); err == nil {
			t.Errorf("spec %d should not compile: %+v", i, s)
		}
	}
}

func TestStateful(t *testing.T) {
	if (&RuleSpec{Rule: "allow"}).Stateful() {
		t.Fatal("allow is stateless")
	}
	nested := &RuleSpec{Rule: "any", Rules: []*RuleSpec{
		{Rule: "threshold", Key: "x", Op: ">", Value: 1},
		{Rule: "all", Rules: []*RuleSpec{{Rule: "probability", P: 0.5}}},
	}}
	if !nested.Stateful() {
		t.Fatal("nested probability is stateful")
	}
	bandit := &RuleSpec{Rule: "epsilongreedy", Epsilon: 0.1, Window: 10,
		Arms: []*RuleSpec{{Rule: "allow"}}}
	if !bandit.Stateful() {
		t.Fatal("bandit is stateful")
	}
}

func TestRankerLex(t *testing.T) {
	r := &Ranker{Terms: DefaultRepairTerms()}
	var a, b []float64
	fresh := MapCtx{"rack_fresh": 1, "load": 100}
	stale := MapCtx{"rack_fresh": 0, "load": 5}
	a = r.ScoreInto(a, fresh)
	b = r.ScoreInto(b, stale)
	if !LexBetter(a, b) {
		t.Fatal("fresh rack beats lighter load")
	}
	light := MapCtx{"rack_fresh": 1, "load": 50}
	b = r.ScoreInto(b, light)
	if LexBetter(a, b) || !LexBetter(b, a) {
		t.Fatal("same freshness: lighter load wins")
	}
	// Equal vectors: no winner, caller keeps first-seen.
	b = r.ScoreInto(b, fresh)
	if LexBetter(a, b) || LexBetter(b, a) {
		t.Fatal("equal vectors must not beat each other")
	}
}

func TestRankerMissingKeyLoses(t *testing.T) {
	r := &Ranker{Terms: []Term{{Key: "x", Weight: 1}}}
	var a, b []float64
	a = r.ScoreInto(a, MapCtx{"x": -1e18})
	b = r.ScoreInto(b, MapCtx{})
	if !LexBetter(a, b) {
		t.Fatal("candidate missing the key must lose")
	}
}

func TestRegistry(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"vanilla", "vanilla"}, {"none", "vanilla"}, {"off", "vanilla"},
		{"lru", "lru"}, {"greedy", "lru"},
		{"lfu", "lfu"},
		{"elephanttrap", "elephanttrap"}, {"et", "elephanttrap"}, {"probabilistic", "elephanttrap"},
		{"scarlett", "scarlett"}, {"epoch", "scarlett"},
		{"  LRU ", "lru"}, {"ET", "elephanttrap"},
	} {
		got, ok := CanonicalPolicyName(c.in)
		if !ok || got != c.want {
			t.Errorf("CanonicalPolicyName(%q) = %q,%v want %q", c.in, got, ok, c.want)
		}
	}
	if _, ok := CanonicalPolicyName("bogus"); ok {
		t.Fatal("bogus should not resolve")
	}
	if got, want := PolicyNameList(), "vanilla|lru|lfu|elephanttrap|scarlett"; got != want {
		t.Fatalf("PolicyNameList() = %q want %q", got, want)
	}
	if msg := ErrUnknownPolicy("zzz").Error(); !strings.Contains(msg, `"zzz"`) || !strings.Contains(msg, PolicyNameList()) {
		t.Fatalf("error message %q missing parts", msg)
	}
	table := RenderPolicyNameTable()
	for _, n := range Names {
		if !strings.Contains(table, "`"+n.Canonical+"`") {
			t.Fatalf("table missing %s:\n%s", n.Canonical, table)
		}
	}
}

func TestDefaultRuleSetShapes(t *testing.T) {
	if rs := DefaultRuleSet("vanilla", 0, 0); rs.Admit == nil || rs.Admit.Rule != "deny" {
		t.Fatal("vanilla admits nothing")
	}
	for _, k := range []string{"lru", "lfu"} {
		rs := DefaultRuleSet(k, 0, 0)
		if rs.Admit.Rule != "allow" || rs.Victim == nil || rs.Aged != nil {
			t.Fatalf("%s default set wrong shape: %+v", k, rs)
		}
	}
	rs := DefaultRuleSet("elephanttrap", 0.3, 2)
	if rs.Admit.Rule != "probability" || rs.Admit.P != 0.3 {
		t.Fatal("ET admit")
	}
	if rs.Aged == nil || rs.Aged.Value != 2 {
		t.Fatal("ET aged threshold")
	}
	if rs := DefaultRuleSet("scarlett", 4, 0); rs.Admit.Rule != "threshold" || rs.Admit.Value != 4 {
		t.Fatal("scarlett grow gate")
	}
}

func TestDefaultSpeculationFactorFallback(t *testing.T) {
	spec := DefaultSpeculation(0)
	if spec.Rules[2].Factor != 1.5 {
		t.Fatalf("factor <= 1 should fall back to 1.5, got %v", spec.Rules[2].Factor)
	}
	spec = DefaultSpeculation(2)
	if spec.Rules[2].Factor != 2 {
		t.Fatal("explicit factor kept")
	}
	rule, err := spec.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := MapCtx{"completed_maps": 3, "attempts": 1, "elapsed": 21, "mean_map": 10}
	if !rule.Eval(ctx) {
		t.Fatal("qualified straggler should fire")
	}
	ctx["attempts"] = 2
	if rule.Eval(ctx) {
		t.Fatal("already speculated task should not fire")
	}
}
