package policy

import (
	"fmt"
	"strings"
)

// NameInfo describes one registered replication policy: its canonical
// name, the accepted CLI/config aliases, and a one-line summary. The
// registry is the single source of truth for policy-name parsing — core,
// config, both CLIs, and the README table all derive from it.
type NameInfo struct {
	Canonical string
	Aliases   []string
	Summary   string
}

// Names lists the registered policies in display order.
var Names = []NameInfo{
	{
		Canonical: "vanilla",
		Aliases:   []string{"none", "off"},
		Summary:   "Static HDFS replication; never replicates on read.",
	},
	{
		Canonical: "lru",
		Aliases:   []string{"greedy"},
		Summary:   "Greedy admission with least-recently-used eviction.",
	},
	{
		Canonical: "lfu",
		Aliases:   nil,
		Summary:   "Greedy admission with least-frequently-used eviction.",
	},
	{
		Canonical: "elephanttrap",
		Aliases:   []string{"et", "probabilistic"},
		Summary:   "Probabilistic sampling (p) with competitive aging (DARE §IV).",
	},
	{
		Canonical: "scarlett",
		Aliases:   []string{"epoch"},
		Summary:   "Epoch-based rebalancing toward observed file popularity.",
	},
}

// CanonicalPolicyName resolves a user-facing spelling (canonical name or
// alias, case-insensitive) to the canonical name. ok is false for
// unknown spellings.
func CanonicalPolicyName(s string) (string, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	for _, n := range Names {
		if s == n.Canonical {
			return n.Canonical, true
		}
		for _, a := range n.Aliases {
			if s == a {
				return n.Canonical, true
			}
		}
	}
	return "", false
}

// PolicyNameList renders the canonical names pipe-separated for help
// strings and error messages: "vanilla|lru|lfu|elephanttrap|scarlett".
func PolicyNameList() string {
	parts := make([]string, len(Names))
	for i, n := range Names {
		parts[i] = n.Canonical
	}
	return strings.Join(parts, "|")
}

// ErrUnknownPolicy is the one error every policy-name parse site
// returns, so users see a single spelling of the complaint.
func ErrUnknownPolicy(s string) error {
	return fmt.Errorf("policy: unknown policy %q (want %s)", s, PolicyNameList())
}

// RenderPolicyNameTable renders the registry as the markdown table
// embedded in the README (regenerated, never hand-edited).
func RenderPolicyNameTable() string {
	var b strings.Builder
	b.WriteString("| Policy | Aliases | Behavior |\n")
	b.WriteString("|--------|---------|----------|\n")
	for _, n := range Names {
		aliases := strings.Join(n.Aliases, ", ")
		if aliases == "" {
			aliases = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", n.Canonical, aliases, n.Summary)
	}
	return b.String()
}
