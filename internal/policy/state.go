package policy

import (
	"fmt"

	"dare/internal/snapshot"
)

// EncodeRuleState serializes a rule tree's mutable state — RNG stream
// positions, sliding-window times, bandit statistics — walking the tree
// in the same order as AddRuleState. The tree shape itself comes from the
// compiled spec (stored separately in the checkpoint), so decode walks an
// identically-shaped tree and only the mutable leaves ride the image.
func EncodeRuleState(e *snapshot.Enc, r Rule) error {
	switch v := r.(type) {
	case allowRule, denyRule, *Threshold, *WeightedScore:
		return nil
	case *Probability:
		return v.rng.EncodeState(e)
	case *RateWindow:
		e.U32(uint32(len(v.times)))
		for _, t := range v.times {
			e.F64(t)
		}
		return nil
	case *EpsilonGreedy:
		e.Int(v.current)
		e.F64(v.windowStart)
		e.Bool(v.started)
		for i := range v.arms {
			e.F64(v.pulls[i])
			e.F64(v.rewards[i])
			if err := EncodeRuleState(e, v.arms[i]); err != nil {
				return err
			}
		}
		return v.rng.EncodeState(e)
	case *anyRule:
		for _, sub := range v.rules {
			if err := EncodeRuleState(e, sub); err != nil {
				return err
			}
		}
		return nil
	case *allRule:
		for _, sub := range v.rules {
			if err := EncodeRuleState(e, sub); err != nil {
				return err
			}
		}
		return nil
	case *notRule:
		return EncodeRuleState(e, v.rule)
	default:
		return fmt.Errorf("policy: rule type %T has no state codec", r)
	}
}

// DecodeRuleState restores a rule tree's mutable state from an
// EncodeRuleState image. The tree must have been recompiled from the same
// spec, so shapes match node for node.
func DecodeRuleState(d *snapshot.Dec, r Rule) error {
	switch v := r.(type) {
	case allowRule, denyRule, *Threshold, *WeightedScore:
		return nil
	case *Probability:
		return v.rng.DecodeState(d)
	case *RateWindow:
		n := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		v.times = v.times[:0]
		for i := 0; i < n; i++ {
			v.times = append(v.times, d.F64())
		}
		return d.Err()
	case *EpsilonGreedy:
		v.current = d.Int()
		v.windowStart = d.F64()
		v.started = d.Bool()
		for i := range v.arms {
			v.pulls[i] = d.F64()
			v.rewards[i] = d.F64()
			if err := DecodeRuleState(d, v.arms[i]); err != nil {
				return err
			}
		}
		return v.rng.DecodeState(d)
	case *anyRule:
		for _, sub := range v.rules {
			if err := DecodeRuleState(d, sub); err != nil {
				return err
			}
		}
		return nil
	case *allRule:
		for _, sub := range v.rules {
			if err := DecodeRuleState(d, sub); err != nil {
				return err
			}
		}
		return nil
	case *notRule:
		return DecodeRuleState(d, v.rule)
	default:
		return fmt.Errorf("policy: rule type %T has no state codec", r)
	}
}
