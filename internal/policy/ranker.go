package policy

// Term is one weighted signal in a score or ranking: Weight × ctx[Key].
// In a Ranker the sign of Weight sets the direction (+1 prefers larger
// values, −1 prefers smaller); the magnitude is ignored by lexicographic
// comparison but meaningful in WeightedScore.
type Term struct {
	Key    string  `json:"key"`
	Weight float64 `json:"weight"`
}

// Ranker scores candidates for lexicographic selection: the first term is
// the primary criterion, later terms break ties. The dfs repair-target
// chooser uses [{rack_fresh,+1},{load,-1}] — prefer a rack with no
// replica of the block, then the node with the least primary data.
type Ranker struct {
	Terms []Term
}

// ScoreInto writes the candidate's score vector into dst (reused across
// candidates to avoid per-candidate allocation) and returns it. Each
// component is Weight × ctx[Key] so that "larger is better" holds
// uniformly; a missing key scores as the worst possible value for its
// direction — the candidate cannot win on a signal it does not supply.
func (r *Ranker) ScoreInto(dst []float64, ctx Context) []float64 {
	dst = dst[:0]
	for _, t := range r.Terms {
		v, ok := ctx.Val(t.Key)
		if !ok {
			dst = append(dst, negInf)
			continue
		}
		dst = append(dst, t.Weight*v)
	}
	return dst
}

const negInf = -1.797693134862315708145274237317043567981e308 // -math.MaxFloat64

// LexBetter reports whether score vector a beats b lexicographically:
// the first index where they differ decides, larger wins. Equal vectors
// return false, so callers iterating candidates in a deterministic order
// keep the first-seen candidate on ties — preserving the historical
// lowest-ID tie-break of the repair chooser.
func LexBetter(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return true
		}
		if a[i] != b[i] {
			return a[i] > b[i]
		}
	}
	return false
}
