package policy

// Built-in rule sets. These are the declarative spellings of the
// decisions the simulator historically hard-coded; compiling them
// against the same seed streams reproduces the hard-coded behavior
// decision for decision (and draw for draw), which is what keeps the
// goldens byte-identical. They double as the reference vocabulary for
// config files: a -policy-file config is "one of these, edited".

// DefaultRuleSet returns the replication rule set a policy kind uses
// when the config file does not override it. kindName is the canonical
// registry name; p and agingThreshold carry the ElephantTrap tunables.
func DefaultRuleSet(kindName string, p float64, agingThreshold int) RuleSet {
	switch kindName {
	case "vanilla":
		// Vanilla HDFS never replicates on read.
		return RuleSet{Admit: &RuleSpec{Rule: "deny"}}
	case "lru", "lfu":
		// Cache-style policies admit every non-local read; the only
		// eviction constraint is "never evict the file being admitted".
		return RuleSet{
			Admit:  &RuleSpec{Rule: "allow"},
			Victim: &RuleSpec{Rule: "threshold", Key: "same_file", Op: "==", Value: 0},
		}
	case "elephanttrap":
		// ElephantTrap samples admissions with probability p and ages a
		// candidate (halve its count, advance) instead of evicting it
		// when the candidate's access count has reached the threshold.
		return RuleSet{
			Admit:  &RuleSpec{Rule: "probability", P: p},
			Victim: &RuleSpec{Rule: "threshold", Key: "same_file", Op: "==", Value: 0},
			Aged:   &RuleSpec{Rule: "threshold", Key: "count", Op: "<", Value: float64(agingThreshold)},
		}
	case "scarlett":
		// Scarlett's per-epoch grow gate: a file earns extra replicas
		// once its epoch access tally reaches AccessesPerReplica.
		return RuleSet{Admit: DefaultScarlettGrow(p)}
	}
	return RuleSet{}
}

// DefaultScarlettGrow is the epoch rebalance gate: accesses >= apr.
// For integer access tallies this is exactly the historical
// int(acc/apr) >= 1 test.
func DefaultScarlettGrow(apr float64) *RuleSpec {
	return &RuleSpec{Rule: "threshold", Key: "accesses", Op: ">=", Value: apr}
}

// DefaultRepairTerms is the dfs repair-target ranking: prefer a rack
// holding no replica of the block, then the least-loaded node (by
// primary bytes), first-seen (lowest node ID) on full ties.
func DefaultRepairTerms() []Term {
	return []Term{
		{Key: "rack_fresh", Weight: 1},
		{Key: "load", Weight: -1},
	}
}

// DefaultSpeculation is the straggler-qualification rule: a map task is
// speculatable once the job has at least 3 completed maps, the task has
// exactly one running attempt, and it has run longer than factor × the
// job's mean map time. factor <= 1 falls back to 1.5, mirroring the
// profile default.
func DefaultSpeculation(factor float64) *RuleSpec {
	if factor <= 1 {
		factor = 1.5
	}
	return &RuleSpec{Rule: "all", Rules: []*RuleSpec{
		{Rule: "threshold", Key: "completed_maps", Op: ">=", Value: 3},
		{Rule: "threshold", Key: "attempts", Op: "==", Value: 1},
		{Rule: "threshold", Key: "elapsed", Op: ">", Of: "mean_map", Factor: factor},
	}}
}

// DefaultBlacklist is the Hadoop-style node blacklist gate: blacklist
// after `after` task failures on the node since its last recovery.
func DefaultBlacklist(after int) *RuleSpec {
	return &RuleSpec{Rule: "threshold", Key: "node_failures", Op: ">=", Value: float64(after)}
}

// DefaultFailJob is the attempt-limit gate: fail the job once a task
// has used `max` attempts.
func DefaultFailJob(max int) *RuleSpec {
	return &RuleSpec{Rule: "threshold", Key: "attempts", Op: ">=", Value: float64(max)}
}
