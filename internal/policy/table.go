package policy

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// The table harness mirrors `opa test`: a policy is pinned by data
// tables of given-context → expected-decision rows rather than by ad hoc
// Go assertions. Tables live in testdata JSON and load with LoadTables;
// Go tests may also build them inline.

// TableRow is one pinned decision: evaluate the table's rule against
// Given and expect Want. Rows evaluate in order against ONE compiled
// rule instance, so stateful rules (probability, ratewindow, bandit) are
// pinned as sequences, not independent samples.
type TableRow struct {
	Name  string             `json:"name"`
	Given map[string]float64 `json:"given"`
	Want  bool               `json:"want"`
}

// Table is one named test: a rule spec, the seed its stateful nodes
// compile against, and the row sequence.
type Table struct {
	Name string     `json:"name"`
	Seed uint64     `json:"seed"`
	Rule *RuleSpec  `json:"rule"`
	Rows []TableRow `json:"rows"`
}

// RowResult reports one row's outcome.
type RowResult struct {
	Row  TableRow
	Got  bool
	Pass bool
}

// TableResult reports one table's outcome. Err is non-nil when the rule
// failed to compile (no rows ran).
type TableResult struct {
	Table  string
	Err    error
	Rows   []RowResult
	Failed int
}

// Pass reports whether the table compiled and every row matched.
func (r *TableResult) Pass() bool { return r.Err == nil && r.Failed == 0 }

// RunTable compiles the table's rule once and evaluates the rows in
// order, comparing each decision to the row's expectation.
func RunTable(t *Table) *TableResult {
	res := &TableResult{Table: t.Name}
	rule, err := t.Rule.Compile(t.Seed)
	if err != nil {
		res.Err = err
		return res
	}
	for _, row := range t.Rows {
		got := rule.Eval(MapCtx(row.Given))
		rr := RowResult{Row: row, Got: got, Pass: got == row.Want}
		if !rr.Pass {
			res.Failed++
		}
		res.Rows = append(res.Rows, rr)
	}
	return res
}

// RunTables runs each table and returns the results in order.
func RunTables(tables []*Table) []*TableResult {
	out := make([]*TableResult, 0, len(tables))
	for _, t := range tables {
		out = append(out, RunTable(t))
	}
	return out
}

// ReadTables decodes a JSON array of tables.
func ReadTables(r io.Reader) ([]*Table, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tables []*Table
	if err := dec.Decode(&tables); err != nil {
		return nil, fmt.Errorf("policy: decode tables: %w", err)
	}
	for i, t := range tables {
		if t.Name == "" {
			return nil, fmt.Errorf("policy: table %d has no name", i)
		}
		if t.Rule == nil {
			return nil, fmt.Errorf("policy: table %q has no rule", t.Name)
		}
	}
	return tables, nil
}

// LoadTables reads every *.json file under dir (sorted by name) and
// concatenates their tables — the `opa test <dir>` shape.
func LoadTables(dir string) ([]*Table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var all []*Table
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		tables, err := ReadTables(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(p), err)
		}
		all = append(all, tables...)
	}
	return all, nil
}
