// Package churn generates seeded stochastic failure/recovery schedules
// for cluster simulations: nodes alternate between up and down states with
// exponential sojourn times (the classic alternating-renewal availability
// model), and a configurable fraction of failures are rack-correlated —
// one switch failure takes every live node in the rack down at once.
//
// Generation is a pure function of (cluster shape, Spec, RNG): the same
// seed always yields the same schedule, which is what makes churn
// experiments reproducible and lets CI diff two runs byte for byte.
package churn

import (
	"fmt"
	"sort"

	"dare/internal/stats"
)

// Kind tags one scheduled churn event.
type Kind int

const (
	// NodeFail takes a single node down.
	NodeFail Kind = iota
	// NodeRecover rejoins a previously failed node (empty, HDFS-style
	// re-registration).
	NodeRecover
	// RackFail takes every live node of one rack down at once (switch
	// failure). The per-node recoveries are scheduled independently.
	RackFail
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NodeFail:
		return "fail"
	case NodeRecover:
		return "recover"
	case RackFail:
		return "rack-fail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled churn action. Node is the victim for NodeFail and
// NodeRecover; Rack is the victim for RackFail (Node is -1 there).
type Event struct {
	At   float64
	Kind Kind
	Node int
	Rack int
}

// Spec parameterizes the churn process.
type Spec struct {
	// MTTF is the per-node mean time to failure in simulated seconds; the
	// cluster-wide failure rate is N/MTTF. MTTF <= 0 disables churn.
	MTTF float64
	// MTTR is the mean time to repair (down-time) in simulated seconds.
	// MTTR <= 0 makes failures permanent (no recovery events).
	MTTR float64
	// RackFailProb is the probability that an injected failure is a whole
	// rack (switch) failure rather than a single node.
	RackFailProb float64
	// Horizon bounds failure injection: no failure is scheduled at or past
	// it (recoveries may land beyond it).
	Horizon float64
}

// Validate reports a specification error, if any.
func (s Spec) Validate() error {
	switch {
	case s.MTTF < 0:
		return fmt.Errorf("churn: MTTF must be >= 0, got %v", s.MTTF)
	case s.MTTR < 0:
		return fmt.Errorf("churn: MTTR must be >= 0, got %v", s.MTTR)
	case s.RackFailProb < 0 || s.RackFailProb > 1:
		return fmt.Errorf("churn: RackFailProb must be in [0,1], got %v", s.RackFailProb)
	case s.Horizon < 0:
		return fmt.Errorf("churn: Horizon must be >= 0, got %v", s.Horizon)
	}
	return nil
}

// Generate builds the churn schedule for a cluster of n nodes whose rack
// layout is given by rackOf. The generator walks its own up/down state
// machine so victims are always up at their failure time and at least one
// node stays up at every instant (a fully dead cluster would wedge the
// workload forever). Events are returned sorted by time.
func Generate(n int, rackOf func(node int) int, spec Spec, rng *stats.RNG) ([]Event, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || spec.MTTF == 0 || spec.Horizon == 0 {
		return nil, nil
	}
	// recoverAt[i] > t means node i is down until recoverAt[i]; +Inf marks
	// a permanent failure (MTTR == 0).
	recoverAt := make([]float64, n)
	var events []Event
	gap := spec.MTTF / float64(n) // mean inter-failure gap, cluster-wide
	t := 0.0
	for {
		t += rng.ExpFloat64() * gap
		if t >= spec.Horizon {
			break
		}
		up := up(recoverAt, t)
		if len(up) <= 1 {
			continue // never take the last live node down
		}
		victim := up[rng.Intn(len(up))]
		if rng.Float64() < spec.RackFailProb {
			rack := rackOf(victim)
			survivors := 0
			for _, v := range up {
				if rackOf(v) != rack {
					survivors++
				}
			}
			if survivors > 0 {
				events = append(events, Event{At: t, Kind: RackFail, Node: -1, Rack: rack})
				for _, v := range up {
					if rackOf(v) == rack {
						events = appendRecovery(events, recoverAt, v, t, spec.MTTR, rng)
					}
				}
				continue
			}
			// The rack holds every live node: degrade to a single failure.
		}
		events = append(events, Event{At: t, Kind: NodeFail, Node: victim, Rack: rackOf(victim)})
		events = appendRecovery(events, recoverAt, victim, t, spec.MTTR, rng)
	}
	// Recoveries are generated out of order relative to later failures;
	// sort by time with a total (Kind, Node, Rack) tie-break so the
	// schedule is deterministic even under (measure-zero) time ties.
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Rack < b.Rack
	})
	return events, nil
}

// appendRecovery marks node down from t and, when repair is modelled,
// appends its recovery event.
func appendRecovery(events []Event, recoverAt []float64, node int, t, mttr float64, rng *stats.RNG) []Event {
	if mttr <= 0 {
		recoverAt[node] = inf
		return events
	}
	r := t + rng.ExpFloat64()*mttr
	recoverAt[node] = r
	return append(events, Event{At: r, Kind: NodeRecover, Node: node, Rack: -1})
}

const inf = 1e308 // effectively +Inf without importing math

// up lists the nodes that are up at time t, in ascending ID order.
func up(recoverAt []float64, t float64) []int {
	out := make([]int, 0, len(recoverAt))
	for i, r := range recoverAt {
		if r <= t {
			out = append(out, i)
		}
	}
	return out
}
