package churn

import (
	"reflect"
	"testing"

	"dare/internal/stats"
)

func rackOf5(n int) int { return n / 5 }

func gen(t *testing.T, n int, spec Spec, seed uint64) []Event {
	t.Helper()
	evs, err := Generate(n, rackOf5, spec, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{MTTF: 500, MTTR: 40, RackFailProb: 0.2, Horizon: 1000}
	a := gen(t, 20, spec, 42)
	b := gen(t, 20, spec, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := gen(t, 20, spec, 43)
	if reflect.DeepEqual(a, c) && len(a) > 0 {
		t.Fatal("different seeds produced identical non-empty schedules")
	}
	if len(a) == 0 {
		t.Fatal("expected events at MTTF=500 over a 1000s horizon on 20 nodes")
	}
}

// TestScheduleIsConsistent replays each schedule against an up/down state
// machine: failures only hit up nodes, recoveries only down nodes, rack
// failures leave survivors, and at least one node stays up throughout.
func TestScheduleIsConsistent(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		spec := Spec{MTTF: 300, MTTR: 60, RackFailProb: 0.3, Horizon: 2000}
		evs := gen(t, 20, spec, seed)
		down := make(map[int]bool)
		last := 0.0
		for i, ev := range evs {
			if ev.At < last {
				t.Fatalf("seed %d: events out of order at %d", seed, i)
			}
			last = ev.At
			switch ev.Kind {
			case NodeFail:
				if down[ev.Node] {
					t.Fatalf("seed %d: failing down node %d at %g", seed, ev.Node, ev.At)
				}
				if ev.Rack != rackOf5(ev.Node) {
					t.Fatalf("seed %d: wrong rack tag on %+v", seed, ev)
				}
				down[ev.Node] = true
			case NodeRecover:
				if !down[ev.Node] {
					t.Fatalf("seed %d: recovering up node %d at %g", seed, ev.Node, ev.At)
				}
				delete(down, ev.Node)
			case RackFail:
				for n := 0; n < 20; n++ {
					if rackOf5(n) == ev.Rack {
						down[n] = true
					}
				}
			}
			if len(down) >= 20 {
				t.Fatalf("seed %d: whole cluster down at %g", seed, ev.At)
			}
		}
	}
}

func TestNoFailuresPastHorizon(t *testing.T) {
	spec := Spec{MTTF: 100, MTTR: 30, Horizon: 500}
	for _, ev := range gen(t, 10, spec, 9) {
		if ev.Kind != NodeRecover && ev.At >= spec.Horizon {
			t.Fatalf("failure at %g past horizon %g", ev.At, spec.Horizon)
		}
	}
}

func TestPermanentFailuresWithoutMTTR(t *testing.T) {
	spec := Spec{MTTF: 100, MTTR: 0, Horizon: 1000}
	evs := gen(t, 10, spec, 11)
	fails := 0
	for _, ev := range evs {
		if ev.Kind == NodeRecover {
			t.Fatal("MTTR=0 must not schedule recoveries")
		}
		fails++
	}
	// Permanent failures cap out at n-1 victims (one survivor guaranteed).
	if fails > 9 {
		t.Fatalf("%d failures on a 10-node cluster with no recovery", fails)
	}
}

func TestDisabledChurn(t *testing.T) {
	if evs := gen(t, 10, Spec{MTTF: 0, MTTR: 10, Horizon: 100}, 1); evs != nil {
		t.Fatal("MTTF=0 should disable churn")
	}
	if evs := gen(t, 10, Spec{MTTF: 100, MTTR: 10, Horizon: 0}, 1); evs != nil {
		t.Fatal("Horizon=0 should disable churn")
	}
}

func TestValidation(t *testing.T) {
	bad := []Spec{
		{MTTF: -1},
		{MTTF: 1, MTTR: -1},
		{MTTF: 1, RackFailProb: 1.5},
		{MTTF: 1, Horizon: -2},
	}
	for _, spec := range bad {
		if _, err := Generate(10, rackOf5, spec, stats.NewRNG(1)); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

func TestRackFailuresOccur(t *testing.T) {
	spec := Spec{MTTF: 100, MTTR: 20, RackFailProb: 0.5, Horizon: 2000}
	racks := 0
	for _, ev := range gen(t, 20, spec, 17) {
		if ev.Kind == RackFail {
			racks++
		}
	}
	if racks == 0 {
		t.Fatal("50% rack-failure probability produced no rack failures")
	}
}
