// Package metrics computes the paper's evaluation quantities (§V-A):
//
//   - Data locality: the fraction of map tasks that ran node-local, the
//     headline system metric of Figs. 7a, 8, 9, 10a.
//   - GMTT: the geometric mean of job turnaround times (eq. 1), Figs. 7b
//     and 10b.
//   - Slowdown: turnaround on the loaded system over running time on a
//     dedicated 100%-local cluster, Figs. 7c and 10c.
//   - Popularity index and its coefficient of variation: the uniformity of
//     replica placement relative to data popularity, Fig. 11.
package metrics

import (
	"math"

	"dare/internal/core"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/stats"
	"dare/internal/topology"
)

// RunSummary aggregates one simulation run into the quantities the figures
// plot.
type RunSummary struct {
	Jobs int
	// TaskLocality is total node-local map tasks over total map tasks.
	TaskLocality float64
	// JobLocality is the unweighted mean of per-job locality — the "data
	// locality of jobs" of Fig. 7a.
	JobLocality float64
	// RackFraction and RemoteFraction complete the task breakdown.
	RackFraction, RemoteFraction float64
	// GMTT is the geometric mean turnaround time in seconds (eq. 1).
	GMTT float64
	// MeanSlowdown is the mean of per-job slowdowns (§V-A).
	MeanSlowdown float64
	// MeanMapTime is the mean map-task wall-clock duration in seconds
	// (§V-C's map completion time).
	MeanMapTime float64
	// Makespan is the finish time of the last job.
	Makespan float64
	// NetworkBytes is the total input bytes moved over the fabric by
	// non-local map tasks (the traffic DARE's locality gains remove).
	NetworkBytes int64
	// FailedJobs counts jobs that ended in failure (a task exhausted its
	// attempt limit under churn); zero in failure-free runs.
	FailedJobs int

	// Policy activity (zero for vanilla runs).
	ReplicasCreated int64
	Evictions       int64
	DiskWrites      int64
	// BlocksPerJob is replicas created per job — the bottom panels of
	// Figs. 8 and 9.
	BlocksPerJob float64
}

// Summarize reduces per-job results and the (possibly zero) policy
// counters into a RunSummary.
func Summarize(results []mapreduce.Result, pol core.PolicyStats) RunSummary {
	var s RunSummary
	s.Jobs = len(results)
	if s.Jobs == 0 {
		return s
	}
	var totalMaps, localMaps, rackMaps, remoteMaps int
	var mapTimeSum float64
	var netBytes int64
	tts := make([]float64, 0, len(results))
	var slowSum, jobLocSum float64
	for _, r := range results {
		totalMaps += r.NumMaps
		localMaps += r.Local
		rackMaps += r.Rack
		remoteMaps += r.Remote
		mapTimeSum += r.MapTimeSum
		netBytes += r.RemoteBytes
		tts = append(tts, r.Turnaround)
		slowSum += r.Slowdown()
		jobLocSum += r.Locality()
		if r.Finish > s.Makespan {
			s.Makespan = r.Finish
		}
		if r.Failed {
			s.FailedJobs++
		}
	}
	if totalMaps > 0 {
		s.TaskLocality = float64(localMaps) / float64(totalMaps)
		s.RackFraction = float64(rackMaps) / float64(totalMaps)
		s.RemoteFraction = float64(remoteMaps) / float64(totalMaps)
		s.MeanMapTime = mapTimeSum / float64(totalMaps)
	}
	s.JobLocality = jobLocSum / float64(s.Jobs)
	s.NetworkBytes = netBytes
	s.GMTT = stats.GeometricMean(tts)
	s.MeanSlowdown = slowSum / float64(s.Jobs)
	s.ReplicasCreated = pol.ReplicasCreated
	s.Evictions = pol.Evictions
	s.DiskWrites = pol.DiskWrites()
	s.BlocksPerJob = float64(pol.ReplicasCreated) / float64(s.Jobs)
	return s
}

// PopularityIndices computes each node's popularity index (§V-A):
// PI_i = Σ_j blockSize_j × blockPopularity_j over blocks j stored on node
// i. blockPop[f][k] is the access count of block k of workload file f, and
// files maps workload file index to its DFS file.
func PopularityIndices(nn *dfs.NameNode, files []*dfs.File, blockPop [][]int) []float64 {
	// Build block -> popularity lookup.
	pop := make(map[dfs.BlockID]float64)
	for fi, f := range files {
		if fi >= len(blockPop) {
			break
		}
		for k, b := range f.Blocks {
			if k < len(blockPop[fi]) {
				pop[b] = float64(blockPop[fi][k])
			}
		}
	}
	out := make([]float64, nn.N())
	for n := 0; n < nn.N(); n++ {
		var pi float64
		for _, b := range nn.NodeBlocks(topology.NodeID(n)) {
			if p, ok := pop[b]; ok && p > 0 {
				pi += float64(nn.Block(b).Size) * p
			}
		}
		out[n] = pi
	}
	return out
}

// PlacementCV reports the coefficient of variation of the nodes'
// popularity indices — Fig. 11's y-axis. Smaller is more uniform.
func PlacementCV(nn *dfs.NameNode, files []*dfs.File, blockPop [][]int) float64 {
	cv := stats.CoefficientOfVariation(PopularityIndices(nn, files, blockPop))
	if math.IsNaN(cv) {
		return 0
	}
	return cv
}

// ImprovementFactor reports after/before for higher-is-better metrics
// (e.g. 7× locality improvement) and before/after for lower-is-better
// ones; callers pick the orientation.
func ImprovementFactor(baseline, improved float64) float64 {
	if baseline == 0 {
		return math.Inf(1)
	}
	return improved / baseline
}

// PercentReduction reports (baseline-improved)/baseline × 100, the paper's
// "GMTT reduced by 19%" phrasing.
func PercentReduction(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - improved) / baseline * 100
}

// LocalityTimeline buckets per-job locality into n consecutive groups of
// the job stream (by job ID order), exposing convergence/adaptation
// dynamics: DARE's locality climbs as replicas accumulate, dips at
// popularity shifts, and recovers.
func LocalityTimeline(results []mapreduce.Result, n int) []float64 {
	if n <= 0 || len(results) == 0 {
		return nil
	}
	if n > len(results) {
		n = len(results)
	}
	sums := make([]float64, n)
	counts := make([]int, n)
	for i, r := range results {
		b := i * n / len(results)
		sums[b] += r.Locality()
		counts[b]++
	}
	out := make([]float64, n)
	for b := range out {
		if counts[b] > 0 {
			out[b] = sums[b] / float64(counts[b])
		}
	}
	return out
}
