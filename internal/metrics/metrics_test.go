package metrics

import (
	"math"
	"testing"

	"dare/internal/core"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/stats"
	"dare/internal/topology"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, core.PolicyStats{})
	if s.Jobs != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestSummarizeBasics(t *testing.T) {
	results := []mapreduce.Result{
		{ID: 0, NumMaps: 4, Local: 4, Turnaround: 10, Dedicated: 10, MapTimeSum: 8, Finish: 20},
		{ID: 1, NumMaps: 4, Local: 0, Rack: 2, Remote: 2, Turnaround: 40, Dedicated: 10, MapTimeSum: 16, Finish: 50},
	}
	s := Summarize(results, core.PolicyStats{ReplicasCreated: 6, Evictions: 2})
	if s.Jobs != 2 {
		t.Fatalf("jobs %d", s.Jobs)
	}
	if s.TaskLocality != 0.5 {
		t.Fatalf("task locality %v", s.TaskLocality)
	}
	if s.JobLocality != 0.5 {
		t.Fatalf("job locality %v", s.JobLocality)
	}
	if s.RackFraction != 0.25 || s.RemoteFraction != 0.25 {
		t.Fatalf("rack/remote %v/%v", s.RackFraction, s.RemoteFraction)
	}
	if math.Abs(s.GMTT-20) > 1e-9 { // sqrt(10*40)
		t.Fatalf("GMTT %v, want 20", s.GMTT)
	}
	if math.Abs(s.MeanSlowdown-2.5) > 1e-9 { // (1+4)/2
		t.Fatalf("slowdown %v", s.MeanSlowdown)
	}
	if math.Abs(s.MeanMapTime-3) > 1e-9 { // 24/8
		t.Fatalf("map time %v", s.MeanMapTime)
	}
	if s.Makespan != 50 {
		t.Fatalf("makespan %v", s.Makespan)
	}
	if s.BlocksPerJob != 3 {
		t.Fatalf("blocks/job %v", s.BlocksPerJob)
	}
	if s.DiskWrites != 6 || s.Evictions != 2 {
		t.Fatalf("policy counters %+v", s)
	}
}

func TestPopularityIndices(t *testing.T) {
	topo := topology.NewDedicated(4, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 1, stats.NewRNG(1))
	f, err := nn.CreateFile("f", 3, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	blockPop := [][]int{{5, 0, 2}}
	pis := PopularityIndices(nn, []*dfs.File{f}, blockPop)
	if len(pis) != 4 {
		t.Fatalf("len %d", len(pis))
	}
	// Total PI across nodes must equal sum(size*pop) per replica; with
	// replication 1 each block contributes exactly once.
	var total float64
	for _, pi := range pis {
		total += pi
	}
	want := 10.0*5 + 10*0 + 10*2
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("total PI %v, want %v", total, want)
	}
}

func TestPlacementCVDropsWithBalancedReplicas(t *testing.T) {
	// A hot block replicated everywhere flattens the PI distribution.
	topo := topology.NewDedicated(5, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 1, stats.NewRNG(2))
	f, _ := nn.CreateFile("f", 1, 100, 0)
	blockPop := [][]int{{50}}
	before := PlacementCV(nn, []*dfs.File{f}, blockPop)
	for n := 0; n < 5; n++ {
		node := topology.NodeID(n)
		if !nn.HasReplica(f.Blocks[0], node) {
			if err := nn.AddDynamicReplica(f.Blocks[0], node); err != nil {
				t.Fatal(err)
			}
		}
	}
	after := PlacementCV(nn, []*dfs.File{f}, blockPop)
	if after >= before {
		t.Fatalf("cv before %v after %v; replication everywhere must flatten PI", before, after)
	}
	if after != 0 {
		t.Fatalf("fully uniform placement should have cv 0, got %v", after)
	}
}

func TestPlacementCVHandlesZeroPopularity(t *testing.T) {
	topo := topology.NewDedicated(3, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 1, stats.NewRNG(3))
	f, _ := nn.CreateFile("f", 2, 10, 0)
	cv := PlacementCV(nn, []*dfs.File{f}, [][]int{{0, 0}})
	if cv != 0 {
		t.Fatalf("all-zero popularity should produce cv 0, got %v", cv)
	}
}

func TestImprovementFactor(t *testing.T) {
	if f := ImprovementFactor(0.1, 0.7); math.Abs(f-7) > 1e-9 {
		t.Fatalf("factor %v, want 7", f)
	}
	if !math.IsInf(ImprovementFactor(0, 1), 1) {
		t.Fatal("zero baseline should be +Inf")
	}
}

func TestPercentReduction(t *testing.T) {
	if p := PercentReduction(100, 81); math.Abs(p-19) > 1e-9 {
		t.Fatalf("reduction %v, want 19", p)
	}
	if PercentReduction(0, 5) != 0 {
		t.Fatal("zero baseline should report 0")
	}
}

func TestLocalityTimeline(t *testing.T) {
	results := []mapreduce.Result{
		{NumMaps: 2, Local: 0, Remote: 2},
		{NumMaps: 2, Local: 1, Remote: 1},
		{NumMaps: 2, Local: 2},
		{NumMaps: 2, Local: 2},
	}
	tl := LocalityTimeline(results, 2)
	if len(tl) != 2 {
		t.Fatalf("timeline %v", tl)
	}
	if math.Abs(tl[0]-0.25) > 1e-9 || math.Abs(tl[1]-1.0) > 1e-9 {
		t.Fatalf("timeline %v, want [0.25 1.0]", tl)
	}
	if LocalityTimeline(nil, 4) != nil {
		t.Fatal("empty results should yield nil")
	}
	if LocalityTimeline(results, 0) != nil {
		t.Fatal("zero buckets should yield nil")
	}
	// n larger than results clamps.
	if got := LocalityTimeline(results[:2], 10); len(got) != 2 {
		t.Fatalf("clamped timeline %v", got)
	}
}
