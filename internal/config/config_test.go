package config

import (
	"math"
	"strings"
	"testing"

	"dare/internal/stats"
)

func TestBuiltinProfilesValidate(t *testing.T) {
	for _, p := range []*Profile{CCT(), EC2(), EC2Small()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Slaves = 0 },
		func(p *Profile) { p.MapSlotsPerNode = 0 },
		func(p *Profile) { p.BlockSizeMB = 0 },
		func(p *Profile) { p.ReplicationFactor = 0 },
		func(p *Profile) { p.DiskBW = nil },
		func(p *Profile) { p.HeartbeatInterval = 0 },
		func(p *Profile) { p.HopBWFactor = 0 },
		func(p *Profile) { p.HopBWFactor = 1.5 },
	}
	for i, mutate := range cases {
		p := CCT()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBlockSizeBytes(t *testing.T) {
	p := CCT()
	if p.BlockSizeBytes() != 128*MB {
		t.Fatalf("block size %d", p.BlockSizeBytes())
	}
}

func TestCCTBandwidthCalibration(t *testing.T) {
	// The sampled models must land near Table II's summaries.
	p := CCT()
	g := stats.NewRNG(100)
	var disk, net []float64
	for i := 0; i < 20000; i++ {
		disk = append(disk, p.DiskBW.Sample(g))
		net = append(net, p.NetBW.Sample(g))
	}
	d := stats.Summarize(disk)
	n := stats.Summarize(net)
	if math.Abs(d.Mean-157.8) > 2 {
		t.Fatalf("CCT disk mean %v, want ~157.8", d.Mean)
	}
	if d.Min < 145.3-1e-9 || d.Max > 167.0+1e-9 {
		t.Fatalf("CCT disk range [%v, %v] escapes Table II bounds", d.Min, d.Max)
	}
	if math.Abs(n.Mean-117.7) > 1 {
		t.Fatalf("CCT net mean %v, want ~117.7", n.Mean)
	}
}

func TestEC2BandwidthCalibration(t *testing.T) {
	p := EC2()
	g := stats.NewRNG(101)
	var disk, net []float64
	for i := 0; i < 50000; i++ {
		disk = append(disk, p.DiskBW.Sample(g))
		net = append(net, p.NetBW.Sample(g))
	}
	d := stats.Summarize(disk)
	n := stats.Summarize(net)
	if math.Abs(d.Mean-141.5) > 10 {
		t.Fatalf("EC2 disk mean %v, want ~141.5", d.Mean)
	}
	if d.Std < 40 {
		t.Fatalf("EC2 disk std %v; Table II reports high variability (74.2)", d.Std)
	}
	if d.Min < 67.1-1e-9 || d.Max > 357.9+1e-9 {
		t.Fatalf("EC2 disk range [%v, %v] escapes bounds", d.Min, d.Max)
	}
	if math.Abs(n.Mean-73.2) > 3 {
		t.Fatalf("EC2 net mean %v, want ~73.2", n.Mean)
	}
}

func TestBandwidthRatioInsight(t *testing.T) {
	// §II-B's key insight: network/disk bandwidth ratio is higher for CCT
	// (~74.6%) than for EC2 (~51.8%), i.e. local reads pay off more on EC2.
	cct, ec2 := CCT(), EC2()
	g := stats.NewRNG(102)
	ratio := func(p *Profile) float64 {
		var dsum, nsum float64
		for i := 0; i < 20000; i++ {
			dsum += p.DiskBW.Sample(g)
			nsum += p.NetBW.Sample(g)
		}
		return nsum / dsum
	}
	rc, re := ratio(cct), ratio(ec2)
	if rc <= re {
		t.Fatalf("net/disk ratio CCT %v should exceed EC2 %v", rc, re)
	}
	if math.Abs(rc-0.746) > 0.05 {
		t.Fatalf("CCT ratio %v, paper reports 74.6%%", rc)
	}
	if math.Abs(re-0.5175) > 0.08 {
		t.Fatalf("EC2 ratio %v, paper reports 51.75%%", re)
	}
}

func TestRTTCalibration(t *testing.T) {
	g := stats.NewRNG(103)
	var cct, ec2 []float64
	pc, pe := CCT(), EC2()
	for i := 0; i < 50000; i++ {
		cct = append(cct, pc.RTT.Sample(g)*1e3) // to ms
		ec2 = append(ec2, pe.RTT.Sample(g)*1e3)
	}
	sc := stats.Summarize(cct)
	se := stats.Summarize(ec2)
	if math.Abs(sc.Mean-0.18) > 0.05 {
		t.Fatalf("CCT RTT mean %v ms, want ~0.18", sc.Mean)
	}
	if se.Mean < sc.Mean {
		t.Fatalf("EC2 RTT mean %v should exceed CCT %v", se.Mean, sc.Mean)
	}
	if se.Std < sc.Std {
		t.Fatalf("EC2 RTT variability %v should exceed CCT %v (Table I)", se.Std, sc.Std)
	}
	if se.Max < 5 {
		t.Fatalf("EC2 RTT max %v ms; Table I shows a 75 ms tail", se.Max)
	}
}

func TestKindString(t *testing.T) {
	if Dedicated.String() != "dedicated" || Virtual.String() != "virtual" {
		t.Fatal("Kind.String mismatch")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should include numeric value")
	}
}

func TestTableIIIRendering(t *testing.T) {
	out := TableIII(CCT(), EC2())
	for _, want := range []string{"CCT", "EC2", "1 master, 19 slaves", "1 master, 99 slaves", "Gigabit Ethernet", "dedicated", "virtual"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q:\n%s", want, out)
		}
	}
}

func TestEC2SmallDiffersInScaleOnly(t *testing.T) {
	a, b := EC2(), EC2Small()
	if a.Slaves == b.Slaves {
		t.Fatal("EC2Small should have fewer slaves")
	}
	if a.BlockSizeMB != b.BlockSizeMB || a.MapSlotsPerNode != b.MapSlotsPerNode {
		t.Fatal("EC2Small should share the EC2 performance parameters")
	}
}
