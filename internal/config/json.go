package config

import (
	"encoding/json"
	"fmt"
	"io"

	"dare/internal/stats"
)

// DistSpec is a JSON-serializable description of a sampling distribution,
// so custom cluster profiles can be loaded from files without code
// changes. Supported types and their fields:
//
//	{"type":"constant", "value":117.7}
//	{"type":"uniform", "lo":60, "hi":200}
//	{"type":"exponential", "mean":0.5}
//	{"type":"normal", "mean":157.8, "sd":8.02, "min":145.3, "max":167.0}
//	{"type":"lognormal", "mean":141.5, "sd":74.2}          // moment-fitted
//	{"type":"pareto", "scale":1, "alpha":2}
//	{"type":"boundedpareto", "lo":1, "hi":96, "alpha":1.1}
//
// Any spec may add "clampLo"/"clampHi" to clip samples to a range.
type DistSpec struct {
	Type    string  `json:"type"`
	Value   float64 `json:"value,omitempty"`
	Lo      float64 `json:"lo,omitempty"`
	Hi      float64 `json:"hi,omitempty"`
	Mean    float64 `json:"mean,omitempty"`
	SD      float64 `json:"sd,omitempty"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	ClampLo float64 `json:"clampLo,omitempty"`
	ClampHi float64 `json:"clampHi,omitempty"`
}

// Build constructs the distribution the spec describes.
func (d DistSpec) Build() (stats.Dist, error) {
	var dist stats.Dist
	switch d.Type {
	case "constant":
		dist = stats.Constant{V: d.Value}
	case "uniform":
		if d.Hi <= d.Lo {
			return nil, fmt.Errorf("config: uniform needs hi > lo, got [%v,%v)", d.Lo, d.Hi)
		}
		dist = stats.Uniform{Lo: d.Lo, Hi: d.Hi}
	case "exponential":
		if d.Mean <= 0 {
			return nil, fmt.Errorf("config: exponential needs mean > 0, got %v", d.Mean)
		}
		dist = stats.Exponential{Lambda: 1 / d.Mean}
	case "normal":
		if d.SD < 0 {
			return nil, fmt.Errorf("config: normal needs sd >= 0, got %v", d.SD)
		}
		dist = stats.Normal{Mu: d.Mean, Sigma: d.SD, Min: d.Min, Max: d.Max}
	case "lognormal":
		if d.Mean <= 0 || d.SD <= 0 {
			return nil, fmt.Errorf("config: lognormal needs mean, sd > 0, got %v/%v", d.Mean, d.SD)
		}
		dist = stats.LogNormalFromMoments(d.Mean, d.SD)
	case "pareto":
		if d.Scale <= 0 || d.Alpha <= 0 {
			return nil, fmt.Errorf("config: pareto needs scale, alpha > 0")
		}
		dist = stats.Pareto{Xm: d.Scale, Alpha: d.Alpha}
	case "boundedpareto":
		if d.Lo <= 0 || d.Hi <= d.Lo || d.Alpha <= 0 {
			return nil, fmt.Errorf("config: boundedpareto needs 0 < lo < hi and alpha > 0")
		}
		dist = stats.BoundedPareto{L: d.Lo, H: d.Hi, Alpha: d.Alpha}
	case "":
		return nil, fmt.Errorf("config: distribution spec missing \"type\"")
	default:
		return nil, fmt.Errorf("config: unknown distribution type %q", d.Type)
	}
	if d.ClampHi > d.ClampLo {
		dist = stats.Clamped{D: dist, Lo: d.ClampLo, Hi: d.ClampHi}
	}
	return dist, nil
}

// ProfileSpec mirrors Profile with JSON-friendly distribution specs, so
// experiments on clusters the paper never measured (different disks,
// fabrics, scales) need only a config file.
type ProfileSpec struct {
	Name             string  `json:"name"`
	Kind             string  `json:"kind"` // "dedicated" | "virtual"
	Slaves           int     `json:"slaves"`
	RAMPerNodeGB     float64 `json:"ramPerNodeGB,omitempty"`
	CoresPerNode     int     `json:"coresPerNode,omitempty"`
	StoragePerNodeGB float64 `json:"storagePerNodeGB,omitempty"`
	Platform         string  `json:"platform,omitempty"`
	Network          string  `json:"network,omitempty"`
	OS               string  `json:"os,omitempty"`

	MapSlotsPerNode    int `json:"mapSlotsPerNode"`
	ReduceSlotsPerNode int `json:"reduceSlotsPerNode"`
	BlockSizeMB        int `json:"blockSizeMB"`
	ReplicationFactor  int `json:"replicationFactor"`

	DiskBW DistSpec `json:"diskBW"`
	NetBW  DistSpec `json:"netBW"`
	RTT    DistSpec `json:"rtt"`

	Racks       int     `json:"racks,omitempty"`
	Pods        int     `json:"pods,omitempty"`
	RackSize    int     `json:"rackSize,omitempty"`
	PerHopRTT   float64 `json:"perHopRTT,omitempty"`
	HopBWFactor float64 `json:"hopBWFactor,omitempty"`

	HeartbeatInterval    float64 `json:"heartbeatInterval,omitempty"`
	TaskOverhead         float64 `json:"taskOverhead,omitempty"`
	TaskNoiseSigma       float64 `json:"taskNoiseSigma,omitempty"`
	SpeculativeExecution bool    `json:"speculativeExecution,omitempty"`
	SpeculativeFactor    float64 `json:"speculativeFactor,omitempty"`
}

// Build constructs and validates a Profile from the spec, filling the
// blanks with sane defaults (heartbeat 0.25 s, overhead 0.3 s, hop factor
// 1.0).
func (s ProfileSpec) Build() (*Profile, error) {
	var kind Kind
	switch s.Kind {
	case "dedicated", "":
		kind = Dedicated
	case "virtual":
		kind = Virtual
	default:
		return nil, fmt.Errorf("config: unknown cluster kind %q (want dedicated|virtual)", s.Kind)
	}
	disk, err := s.DiskBW.Build()
	if err != nil {
		return nil, fmt.Errorf("config: diskBW: %w", err)
	}
	net, err := s.NetBW.Build()
	if err != nil {
		return nil, fmt.Errorf("config: netBW: %w", err)
	}
	rtt, err := s.RTT.Build()
	if err != nil {
		return nil, fmt.Errorf("config: rtt: %w", err)
	}
	p := &Profile{
		Name:             s.Name,
		Kind:             kind,
		Slaves:           s.Slaves,
		RAMPerNodeGB:     s.RAMPerNodeGB,
		CoresPerNode:     s.CoresPerNode,
		StoragePerNodeGB: s.StoragePerNodeGB,
		Platform:         s.Platform,
		Network:          s.Network,
		OS:               s.OS,

		MapSlotsPerNode:    s.MapSlotsPerNode,
		ReduceSlotsPerNode: s.ReduceSlotsPerNode,
		BlockSizeMB:        s.BlockSizeMB,
		ReplicationFactor:  s.ReplicationFactor,

		DiskBW: disk,
		NetBW:  net,
		RTT:    rtt,

		Racks:       s.Racks,
		Pods:        s.Pods,
		RackSize:    s.RackSize,
		PerHopRTT:   s.PerHopRTT,
		HopBWFactor: s.HopBWFactor,

		HeartbeatInterval:    s.HeartbeatInterval,
		TaskOverhead:         s.TaskOverhead,
		TaskNoiseSigma:       s.TaskNoiseSigma,
		SpeculativeExecution: s.SpeculativeExecution,
		SpeculativeFactor:    s.SpeculativeFactor,
	}
	if p.HeartbeatInterval == 0 {
		p.HeartbeatInterval = 0.25
	}
	if p.TaskOverhead == 0 {
		p.TaskOverhead = 0.3
	}
	if p.HopBWFactor == 0 {
		p.HopBWFactor = 1.0
	}
	if p.ReduceSlotsPerNode == 0 {
		p.ReduceSlotsPerNode = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadProfile decodes a JSON ProfileSpec and builds the Profile. Unknown
// fields are rejected to catch typos in hand-written configs.
func LoadProfile(r io.Reader) (*Profile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec ProfileSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("config: parsing profile: %w", err)
	}
	return spec.Build()
}
