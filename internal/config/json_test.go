package config

import (
	"math"
	"strings"
	"testing"

	"dare/internal/stats"
)

const sampleProfileJSON = `{
  "name": "lab",
  "kind": "dedicated",
  "slaves": 8,
  "mapSlotsPerNode": 2,
  "reduceSlotsPerNode": 1,
  "blockSizeMB": 64,
  "replicationFactor": 2,
  "diskBW": {"type": "normal", "mean": 200, "sd": 10, "min": 150, "max": 250},
  "netBW": {"type": "constant", "value": 100},
  "rtt": {"type": "lognormal", "mean": 0.0002, "sd": 0.0003, "clampLo": 0.00001, "clampHi": 0.01},
  "rackSize": 4,
  "heartbeatInterval": 0.5
}`

func TestLoadProfile(t *testing.T) {
	p, err := LoadProfile(strings.NewReader(sampleProfileJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "lab" || p.Slaves != 8 || p.Kind != Dedicated {
		t.Fatalf("bad profile: %+v", p)
	}
	if p.BlockSizeMB != 64 || p.ReplicationFactor != 2 || p.RackSize != 4 {
		t.Fatal("scalar fields lost")
	}
	if p.HeartbeatInterval != 0.5 {
		t.Fatal("heartbeat not applied")
	}
	g := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := p.DiskBW.Sample(g); v < 150 || v > 250 {
			t.Fatalf("diskBW sample %v escapes bounds", v)
		}
		if v := p.NetBW.Sample(g); v != 100 {
			t.Fatalf("netBW sample %v, want constant 100", v)
		}
		if v := p.RTT.Sample(g); v < 0.00001 || v > 0.01 {
			t.Fatalf("rtt sample %v escapes clamp", v)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadProfileDefaults(t *testing.T) {
	minimal := `{
	  "name": "tiny", "slaves": 2, "mapSlotsPerNode": 1,
	  "blockSizeMB": 128, "replicationFactor": 1,
	  "diskBW": {"type":"constant","value":100},
	  "netBW": {"type":"constant","value":100},
	  "rtt": {"type":"constant","value":0.0001}
	}`
	p, err := LoadProfile(strings.NewReader(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if p.HeartbeatInterval != 0.25 || p.TaskOverhead != 0.3 || p.HopBWFactor != 1.0 || p.ReduceSlotsPerNode != 1 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestLoadProfileRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(sampleProfileJSON, `"name"`, `"naem"`, 1)
	if _, err := LoadProfile(strings.NewReader(bad)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestLoadProfileRejectsBadKind(t *testing.T) {
	bad := strings.Replace(sampleProfileJSON, `"dedicated"`, `"mainframe"`, 1)
	if _, err := LoadProfile(strings.NewReader(bad)); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestLoadProfileValidates(t *testing.T) {
	bad := strings.Replace(sampleProfileJSON, `"slaves": 8`, `"slaves": 0`, 1)
	if _, err := LoadProfile(strings.NewReader(bad)); err == nil {
		t.Fatal("zero slaves accepted")
	}
}

func TestDistSpecBuild(t *testing.T) {
	g := stats.NewRNG(2)
	cases := []struct {
		spec DistSpec
		ok   bool
	}{
		{DistSpec{Type: "constant", Value: 5}, true},
		{DistSpec{Type: "uniform", Lo: 1, Hi: 2}, true},
		{DistSpec{Type: "uniform", Lo: 2, Hi: 1}, false},
		{DistSpec{Type: "exponential", Mean: 3}, true},
		{DistSpec{Type: "exponential", Mean: 0}, false},
		{DistSpec{Type: "normal", Mean: 1, SD: 0.1}, true},
		{DistSpec{Type: "normal", Mean: 1, SD: -1}, false},
		{DistSpec{Type: "lognormal", Mean: 10, SD: 5}, true},
		{DistSpec{Type: "lognormal", Mean: 0, SD: 5}, false},
		{DistSpec{Type: "pareto", Scale: 1, Alpha: 2}, true},
		{DistSpec{Type: "pareto"}, false},
		{DistSpec{Type: "boundedpareto", Lo: 1, Hi: 10, Alpha: 1.1}, true},
		{DistSpec{Type: "boundedpareto", Lo: 10, Hi: 1, Alpha: 1.1}, false},
		{DistSpec{Type: "unobtainium"}, false},
		{DistSpec{}, false},
	}
	for i, c := range cases {
		d, err := c.spec.Build()
		if c.ok && err != nil {
			t.Errorf("case %d: unexpected error %v", i, err)
			continue
		}
		if !c.ok && err == nil {
			t.Errorf("case %d: expected error", i)
			continue
		}
		if c.ok {
			for j := 0; j < 100; j++ {
				if v := d.Sample(g); math.IsNaN(v) {
					t.Errorf("case %d: NaN sample", i)
					break
				}
			}
		}
	}
}

func TestDistSpecClamp(t *testing.T) {
	d, err := DistSpec{Type: "exponential", Mean: 100, ClampLo: 1, ClampHi: 5}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := d.Sample(g)
		if v < 1 || v > 5 {
			t.Fatalf("clamp escaped: %v", v)
		}
	}
}

func TestProfileSpecBuildCustomSimulates(t *testing.T) {
	// A custom profile must drive a validated Profile end-to-end.
	p, err := LoadProfile(strings.NewReader(sampleProfileJSON))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BlockSizeBytes() != 64*MB {
		t.Fatal("block size wrong")
	}
}
