package config

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dare/internal/policy"
	"dare/internal/stats"
)

// armScalars is the comparable scalar slice of a PolicySet.
type armScalars struct {
	kind               string
	p                  float64
	threshold          int64
	budget             float64
	epoch              float64
	accessesPerReplica float64
	maxExtraReplicas   int
}

func scalarsOf(s *PolicySet) armScalars {
	return armScalars{s.Kind, s.P, s.Threshold, s.Budget, s.Epoch, s.AccessesPerReplica, s.MaxExtraReplicas}
}

func TestBuiltinPolicySpecsMatchCLIDefaults(t *testing.T) {
	// A built-in file arm must build to the same scalars the CLI flag path
	// produces, so -policy X and -policy-file configs/X.json are one
	// experiment.
	for _, c := range []struct {
		name string
		want armScalars
	}{
		{"vanilla", armScalars{kind: "vanilla", p: 0.3, threshold: 1, budget: 0.2}},
		{"lru", armScalars{kind: "lru", p: 0.3, threshold: 1, budget: 0.2}},
		{"lfu", armScalars{kind: "lfu", p: 0.3, threshold: 1, budget: 0.2}},
		{"elephanttrap", armScalars{kind: "elephanttrap", p: 0.3, threshold: 1, budget: 0.2}},
		{"scarlett", armScalars{kind: "scarlett", p: 0.3, threshold: 1, budget: 0.2,
			epoch: 15, accessesPerReplica: 4, maxExtraReplicas: 16}},
	} {
		set, err := BuiltinPolicy(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := scalarsOf(set); got != c.want {
			t.Errorf("%s: scalars = %+v, want %+v", c.name, got, c.want)
		}
		if set.Name != c.name {
			t.Errorf("%s: Name = %q", c.name, set.Name)
		}
		if set.Repair != nil || set.Speculation != nil || set.Blacklist != nil || set.FailJob != nil {
			t.Errorf("%s: built-in must carry no overrides", c.name)
		}
	}
	if _, err := BuiltinPolicy("bogus"); err == nil {
		t.Fatal("unknown builtin should error")
	}
	// Aliases resolve through the registry.
	set, err := BuiltinPolicy("et")
	if err != nil || set.Name != "elephanttrap" {
		t.Fatalf("alias et: %v, %+v", err, set)
	}
}

func TestReadPolicyFullSpec(t *testing.T) {
	src := `{
  "name": "bandit",
  "kind": "et",
  "budget": 0.2,
  "replication": {"admit": {"rule": "epsilongreedy", "epsilon": 0.1, "window": 30, "arms": [
    {"rule": "probability", "p": 0.1},
    {"rule": "probability", "p": 0.3},
    {"rule": "probability", "p": 1}
  ]}},
  "repair": [{"key": "rack_fresh", "weight": 1}, {"key": "load", "weight": -1}],
  "speculation": {"rule": "threshold", "key": "elapsed", "op": ">", "of": "mean_map", "factor": 2},
  "blacklist": {"rule": "ratewindow", "window": 120, "atLeast": 3},
  "failJob": {"rule": "threshold", "key": "attempts", "op": ">=", "value": 6}
}`
	set, err := ReadPolicy(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if set.Name != "bandit" || set.Kind != "elephanttrap" {
		t.Fatalf("set: %+v", set)
	}
	if set.Replication == nil || set.Replication.Admit == nil || set.Replication.Admit.Rule != "epsilongreedy" {
		t.Fatal("replication admit rule not threaded into the set")
	}
	if len(set.Repair) != 2 || set.Speculation == nil || set.Blacklist == nil || set.FailJob == nil {
		t.Fatal("overrides missing")
	}
}

func TestReadPolicyRejects(t *testing.T) {
	for name, src := range map[string]string{
		"unknown_kind":        `{"kind": "zzz"}`,
		"unknown_field":       `{"kind": "lru", "bogus": 1}`,
		"bad_rule":            `{"kind": "lru", "replication": {"admit": {"rule": "nope"}}}`,
		"vanilla_with_rules":  `{"kind": "vanilla", "replication": {"admit": {"rule": "allow"}}}`,
		"scarlett_victim":     `{"kind": "scarlett", "replication": {"victim": {"rule": "allow"}}}`,
		"repair_no_key":       `{"kind": "lru", "repair": [{"weight": 1}]}`,
		"repair_zero_weight":  `{"kind": "lru", "repair": [{"key": "load"}]}`,
		"bad_speculation":     `{"kind": "lru", "speculation": {"rule": "threshold", "op": ">"}}`,
		"bad_blacklist":       `{"kind": "lru", "blacklist": {"rule": "ratewindow", "window": -1, "atLeast": 1}}`,
		"bad_failjob":         `{"kind": "lru", "failJob": {"rule": "probability", "p": 7}}`,
		"bad_probability_arm": `{"kind": "et", "replication": {"admit": {"rule": "epsilongreedy", "epsilon": 0.1, "window": 5, "arms": [{"rule": "probability", "p": 9}]}}}`,
	} {
		if _, err := ReadPolicy(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error for %s", name, src)
		}
	}
}

func TestPolicyRenderRoundTrip(t *testing.T) {
	spec, err := BuiltinPolicySpec("elephanttrap")
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.Render()
	if err != nil {
		t.Fatal(err)
	}
	set, err := ReadPolicy(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("rendered spec must re-parse: %v\n%s", err, out)
	}
	out2, err := set.Spec.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, out2) {
		t.Fatalf("render not a fixed point:\n%s\nvs\n%s", out, out2)
	}
}

// FuzzPolicyConfig checks the parse → render → parse fingerprint: any
// input the loader accepts must render to JSON that parses again and
// renders to the identical bytes (rendering is a fixed point), so config
// files survive canonicalization without semantic drift.
func FuzzPolicyConfig(f *testing.F) {
	f.Add(`{"kind": "lru"}`)
	f.Add(`{"kind": "elephanttrap", "p": 0.5, "threshold": 2, "budget": 0.1}`)
	f.Add(`{"kind": "et", "replication": {"admit": {"rule": "probability", "p": 0.7}}}`)
	f.Add(`{"kind": "scarlett", "epoch": 30, "accessesPerReplica": 2}`)
	f.Add(`{"kind": "lru", "speculation": {"rule": "all", "rules": [{"rule": "threshold", "key": "attempts", "op": "==", "value": 1}]}}`)
	f.Add(`{"kind": "lfu", "repair": [{"key": "load", "weight": -1}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		set, err := ReadPolicy(strings.NewReader(src))
		if err != nil {
			return // rejected input is fine; crashes and bad accepts are not
		}
		out, err := set.Spec.Render()
		if err != nil {
			t.Fatalf("accepted spec failed to render: %v", err)
		}
		set2, err := ReadPolicy(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("rendered spec failed to re-parse: %v\n%s", err, out)
		}
		out2, err := set2.Spec.Render()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("fingerprint drift:\n%s\nvs\n%s", out, out2)
		}
	})
}

// TestCommittedConfigsAreCanonical pins the files under configs/: the
// five built-in arms are exactly Render(BuiltinPolicySpec), and the
// bandit arm loads, is canonical, and carries the ε-greedy admit gate.
func TestCommittedConfigsAreCanonical(t *testing.T) {
	dir := filepath.Join("..", "..", "configs")
	for _, name := range []string{"vanilla", "lru", "lfu", "elephanttrap", "scarlett"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := BuiltinPolicySpec(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := spec.Render()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("configs/%s.json is not Render(BuiltinPolicySpec(%q)):\n%s\nwant:\n%s", name, name, data, want)
		}
	}
	set, err := LoadPolicy(filepath.Join(dir, "bandit.json"))
	if err != nil {
		t.Fatal(err)
	}
	if set.Kind != "elephanttrap" || set.Replication == nil ||
		set.Replication.Admit == nil || set.Replication.Admit.Rule != "epsilongreedy" {
		t.Fatalf("bandit.json: %+v", set)
	}
	data, err := os.ReadFile(filepath.Join(dir, "bandit.json"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := set.Spec.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Errorf("configs/bandit.json is not canonical:\n%s\nwant:\n%s", data, out)
	}
}

func TestRuleSetJSONUsesPolicyTags(t *testing.T) {
	// Guard the JSON contract between config files and policy.RuleSpec.
	src := `{"kind": "et", "replication": {
	  "admit": {"rule": "any", "rules": [
	    {"rule": "threshold", "key": "used", "op": "<", "of": "budget", "factor": 0.5},
	    {"rule": "weightedscore", "terms": [{"key": "size", "weight": -1}], "min": -1e9}
	  ]},
	  "aged": {"rule": "threshold", "key": "count", "op": "<", "value": 2}
	}}`
	set, err := ReadPolicy(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	admit := set.Replication.Admit
	if admit.Rule != "any" || len(admit.Rules) != 2 || admit.Rules[0].Of != "budget" {
		t.Fatalf("parsed admit: %+v", admit)
	}
	if set.Replication.Aged.Value != 2 {
		t.Fatalf("parsed aged: %+v", set.Replication.Aged)
	}
	rules, err := set.Replication.CompileWith(stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if rules.Admit == nil || rules.Aged == nil || rules.Victim != nil {
		t.Fatalf("compiled: %+v", rules)
	}
	if !rules.Admit.Eval(policy.MapCtx{"used": 1, "budget": 100}) {
		t.Fatal("used < 0.5*budget should admit")
	}
}
