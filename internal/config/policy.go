package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dare/internal/policy"
	"dare/internal/stats"
)

// PolicySpec is the JSON form of a complete policy configuration — the
// -policy-file front end. It selects a replication policy kind with its
// scalar knobs, and may override any of the simulator's declarative
// decision points with policy.RuleSpec trees:
//
//	{
//	  "name": "bandit",
//	  "kind": "elephanttrap",
//	  "budget": 0.2,
//	  "replication": {"admit": {"rule": "epsilongreedy", ...}},
//	  "repair": [{"key": "rack_fresh", "weight": 1}, ...],
//	  "speculation": {"rule": "all", ...},
//	  "blacklist": {"rule": "threshold", ...},
//	  "failJob": {"rule": "threshold", ...}
//	}
//
// Omitted sections keep the built-in behavior, which reproduces the
// hard-coded decisions byte for byte. Unknown fields are load errors.
type PolicySpec struct {
	// Name labels the arm in sweep tables and sim output; defaults to the
	// canonical kind name.
	Name string `json:"name,omitempty"`
	// Kind is a policy name or alias from the shared registry.
	Kind string `json:"kind"`

	// Scalar knobs (zero values take the built-in defaults noted).
	P                  float64 `json:"p,omitempty"`         // ET sampling probability (0.3)
	Threshold          int64   `json:"threshold,omitempty"` // ET aging threshold (1)
	Budget             float64 `json:"budget,omitempty"`    // budget fraction (0.2)
	AnnounceDelay      float64 `json:"announceDelay,omitempty"`
	LazyDeleteDelay    float64 `json:"lazyDeleteDelay,omitempty"`
	Epoch              float64 `json:"epoch,omitempty"`              // Scarlett epoch seconds
	AccessesPerReplica float64 `json:"accessesPerReplica,omitempty"` // Scarlett quota
	MaxExtraReplicas   int     `json:"maxExtraReplicas,omitempty"`   // Scarlett cap

	// Replication overrides the kind's admission/eviction rules.
	Replication *policy.RuleSet `json:"replication,omitempty"`
	// Repair overrides the dfs repair-target ranking terms.
	Repair []policy.Term `json:"repair,omitempty"`
	// Speculation overrides the straggler-qualification rule.
	Speculation *policy.RuleSpec `json:"speculation,omitempty"`
	// Blacklist overrides the node-blacklist gate.
	Blacklist *policy.RuleSpec `json:"blacklist,omitempty"`
	// FailJob overrides the attempt-limit job-fail gate.
	FailJob *policy.RuleSpec `json:"failJob,omitempty"`
}

// PolicySet is a built PolicySpec, ready to wire into runner.Options.
// It deliberately does not reference internal/core (core sits above
// config in the package graph — topology imports config): Kind is the
// canonical registry name and the scalars mirror core.Config field for
// field; the runner assembles the core.Config from them.
type PolicySet struct {
	Name string
	Kind string // canonical registry name, e.g. "elephanttrap"
	Spec PolicySpec

	// Replication-policy scalars, post-default (mirror core.Config).
	P                  float64
	Threshold          int64
	Budget             float64
	AnnounceDelay      float64
	LazyDeleteDelay    float64
	Epoch              float64
	AccessesPerReplica float64
	MaxExtraReplicas   int

	// Rule overrides; nil sections keep the built-ins.
	Replication *policy.RuleSet
	Repair      []policy.Term
	Speculation *policy.RuleSpec
	Blacklist   *policy.RuleSpec
	FailJob     *policy.RuleSpec
}

// Build validates the spec and constructs the PolicySet. Every rule tree
// is compiled once against a scratch seed stream so malformed configs
// fail at load time, not mid-run.
func (s PolicySpec) Build() (*PolicySet, error) {
	kindName, ok := policy.CanonicalPolicyName(s.Kind)
	if !ok {
		return nil, policy.ErrUnknownPolicy(s.Kind)
	}

	if s.Replication != nil {
		if kindName == "vanilla" {
			return nil, fmt.Errorf("config: policy kind vanilla does not take replication rules (a vanilla arm that replicates is not vanilla)")
		}
		if kindName == "scarlett" && (s.Replication.Victim != nil || s.Replication.Aged != nil) {
			return nil, fmt.Errorf("config: scarlett takes only a replication.admit rule (the epoch grow gate); victim/aged do not apply")
		}
		if _, err := s.Replication.CompileWith(stats.NewRNG(0)); err != nil {
			return nil, fmt.Errorf("config: replication rules: %w", err)
		}
	}
	for _, t := range s.Repair {
		if t.Key == "" {
			return nil, fmt.Errorf("config: repair term needs a key")
		}
		if t.Weight == 0 {
			return nil, fmt.Errorf("config: repair term %q needs a non-zero weight (sign sets the direction)", t.Key)
		}
	}
	for _, r := range []struct {
		name string
		spec *policy.RuleSpec
	}{{"speculation", s.Speculation}, {"blacklist", s.Blacklist}, {"failJob", s.FailJob}} {
		if r.spec == nil {
			continue
		}
		if _, err := r.spec.Compile(0); err != nil {
			return nil, fmt.Errorf("config: %s rule: %w", r.name, err)
		}
	}

	set := &PolicySet{
		Name:               s.Name,
		Kind:               kindName,
		Spec:               s,
		P:                  s.P,
		Threshold:          s.Threshold,
		Budget:             s.Budget,
		AnnounceDelay:      s.AnnounceDelay,
		LazyDeleteDelay:    s.LazyDeleteDelay,
		Epoch:              s.Epoch,
		AccessesPerReplica: s.AccessesPerReplica,
		MaxExtraReplicas:   s.MaxExtraReplicas,
		Replication:        s.Replication,
		Repair:             s.Repair,
		Speculation:        s.Speculation,
		Blacklist:          s.Blacklist,
		FailJob:            s.FailJob,
	}
	// Zero scalars take the paper defaults, mirroring the CLI flag
	// defaults so a minimal file behaves like the equivalent -policy run.
	if set.P == 0 {
		set.P = 0.3
	}
	if set.Threshold == 0 {
		set.Threshold = 1
	}
	if set.Budget == 0 {
		set.Budget = 0.2
	}
	if set.Name == "" {
		set.Name = kindName
	}
	return set, nil
}

// ReadPolicy decodes and builds a policy config from JSON.
func ReadPolicy(r io.Reader) (*PolicySet, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec PolicySpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("config: decode policy: %w", err)
	}
	return spec.Build()
}

// LoadPolicy reads a policy config file (the -policy-file flag).
func LoadPolicy(path string) (*PolicySet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := ReadPolicy(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return set, nil
}

// Render writes the spec in canonical indented JSON — the fingerprint
// FuzzPolicyConfig holds fixed across parse→render round trips, and the
// exact bytes of the committed configs/*.json built-ins.
func (s PolicySpec) Render() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BuiltinPolicySpec returns the spec equivalent to the -policy CLI flag
// for a registered policy name: the named kind with the paper-default
// scalars spelled out and no rule overrides. Running one of these through
// a -policy-file is byte-identical to the plain -policy run — the
// equivalence the CI policy-determinism job pins.
func BuiltinPolicySpec(name string) (PolicySpec, error) {
	kindName, ok := policy.CanonicalPolicyName(name)
	if !ok {
		return PolicySpec{}, policy.ErrUnknownPolicy(name)
	}
	spec := PolicySpec{Name: kindName, Kind: kindName}
	switch kindName {
	case "lru", "lfu":
		spec.Budget = 0.2
	case "elephanttrap":
		spec.P = 0.3
		spec.Threshold = 1
		spec.Budget = 0.2
	case "scarlett":
		spec.Budget = 0.2
		spec.Epoch = 15
		spec.AccessesPerReplica = 4
		spec.MaxExtraReplicas = 16
	}
	return spec, nil
}

// BuiltinPolicy builds the named built-in arm.
func BuiltinPolicy(name string) (*PolicySet, error) {
	spec, err := BuiltinPolicySpec(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}
