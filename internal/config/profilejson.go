package config

import (
	"encoding/json"

	"dare/internal/stats"
)

// profileAlias strips Profile's methods so the JSON codec below can reuse
// the standard struct encoding without recursing into itself.
type profileAlias Profile

// profileWire shadows the three Dist-valued model fields with their exact
// typed-union form (stats.DistJSON); everything else is plain data and
// rides the default encoding.
type profileWire struct {
	profileAlias
	DiskBW stats.DistJSON `json:"DiskBW"`
	NetBW  stats.DistJSON `json:"NetBW"`
	RTT    stats.DistJSON `json:"RTT"`
}

// MarshalJSON implements json.Marshaler. Profiles round-trip exactly —
// the checkpoint spec (internal/runner) requires that a resumed run
// rebuild the very same performance models, not refitted approximations.
func (p Profile) MarshalJSON() ([]byte, error) {
	return json.Marshal(profileWire{
		profileAlias: profileAlias(p),
		DiskBW:       stats.DistJSON{Dist: p.DiskBW},
		NetBW:        stats.DistJSON{Dist: p.NetBW},
		RTT:          stats.DistJSON{Dist: p.RTT},
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Profile) UnmarshalJSON(b []byte) error {
	var w profileWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = Profile(w.profileAlias)
	p.DiskBW = w.DiskBW.Dist
	p.NetBW = w.NetBW.Dist
	p.RTT = w.RTT.Dist
	return nil
}
