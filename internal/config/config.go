// Package config defines the cluster profiles of the paper's evaluation
// (Table III) together with the calibrated performance models derived from
// its measurements (Tables I and II): disk bandwidth, network bandwidth,
// and round-trip-time distributions for the dedicated CCT testbed and the
// virtualized EC2 testbed.
//
// Everything downstream — the DFS transfer model, the MapReduce task cost
// model, the netprobe reproduction of Tables I–II — draws its parameters
// from a Profile, so switching testbeds is a one-line change, exactly as
// the paper switches between §V-B (CCT) and §V-E (EC2).
package config

import (
	"fmt"

	"dare/internal/stats"
)

// Kind distinguishes the two testbed classes of §II-B.
type Kind int

const (
	// Dedicated is an in-house, single-site cluster (CCT).
	Dedicated Kind = iota
	// Virtual is a public-cloud allocation (EC2) with scattered placement
	// and noisy I/O.
	Virtual
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Dedicated:
		return "dedicated"
	case Virtual:
		return "virtual"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MB is one megabyte in bytes; the paper quotes bandwidths in MB/s and
// block sizes in MB.
const MB = 1 << 20

// Profile describes one test cluster: the descriptive rows of Table III
// plus the stochastic performance models calibrated from Tables I–II.
type Profile struct {
	// Name labels the profile in reports ("CCT", "EC2").
	Name string
	// Kind selects dedicated vs. virtual behaviour.
	Kind Kind
	// Slaves is the number of worker (data) nodes; the master is modelled
	// separately and runs no tasks, as in Hadoop.
	Slaves int

	// Descriptive fields echoed when printing Table III.
	RAMPerNodeGB     float64
	CoresPerNode     int
	StoragePerNodeGB float64
	Platform         string
	Network          string
	OS               string

	// MapSlotsPerNode bounds concurrent map tasks per node (Hadoop
	// default: slots ≈ cores).
	MapSlotsPerNode int
	// ReduceSlotsPerNode bounds concurrent reduce tasks per node.
	ReduceSlotsPerNode int

	// BlockSizeMB is the DFS block size (paper: 64–256 MB; experiments use
	// 128 MB blocks, §III).
	BlockSizeMB int
	// ReplicationFactor is the static number of replicas per block
	// (Hadoop default 3).
	ReplicationFactor int

	// DiskBW and NetBW are per-node bandwidth models in MB/s (Table II).
	DiskBW stats.Dist
	NetBW  stats.Dist
	// RTT is the pairwise round-trip-time model in seconds (Table I).
	RTT stats.Dist

	// Racks and Pods parameterize the virtual topology spread (Fig. 1);
	// ignored for dedicated clusters, which use RackSize.
	Racks, Pods int
	// RackSize is nodes per rack for dedicated clusters (0 = single rack).
	RackSize int
	// PerHopRTT adds seconds of RTT per hop beyond 2 in virtual clusters.
	PerHopRTT float64
	// HopBWFactor discounts network bandwidth per hop beyond 2, modelling
	// oversubscription across racks (§V-B cites oversubscribed fabrics).
	HopBWFactor float64

	// HeartbeatInterval is the task-tracker/data-node heartbeat period in
	// seconds (Hadoop default 3s; small clusters use shorter).
	HeartbeatInterval float64

	// TaskOverhead is the fixed per-task startup/commit cost in seconds
	// (JVM launch, task setup).
	TaskOverhead float64
	// TaskNoiseSigma is the σ of the log-normal multiplicative noise on
	// task durations; virtualized clusters are noisier (§II-B).
	TaskNoiseSigma float64

	// SpeculativeExecution enables Hadoop-style backup tasks for
	// stragglers: when a map attempt runs longer than SpeculativeFactor ×
	// the job's mean map time, an idle slot may launch a duplicate; the
	// first copy to finish wins and the other is killed. Off by default,
	// as in the paper's evaluation configuration.
	SpeculativeExecution bool
	// SpeculativeFactor is the straggler threshold multiplier (0 = 1.5).
	SpeculativeFactor float64
}

// Validate reports a configuration error, if any. Call it before building
// a cluster from the profile.
func (p *Profile) Validate() error {
	switch {
	case p.Slaves <= 0:
		return fmt.Errorf("config %q: Slaves must be positive, got %d", p.Name, p.Slaves)
	case p.MapSlotsPerNode <= 0:
		return fmt.Errorf("config %q: MapSlotsPerNode must be positive, got %d", p.Name, p.MapSlotsPerNode)
	case p.BlockSizeMB <= 0:
		return fmt.Errorf("config %q: BlockSizeMB must be positive, got %d", p.Name, p.BlockSizeMB)
	case p.ReplicationFactor <= 0:
		return fmt.Errorf("config %q: ReplicationFactor must be positive, got %d", p.Name, p.ReplicationFactor)
	case p.DiskBW == nil || p.NetBW == nil || p.RTT == nil:
		return fmt.Errorf("config %q: performance models must be non-nil", p.Name)
	case p.HeartbeatInterval <= 0:
		return fmt.Errorf("config %q: HeartbeatInterval must be positive, got %v", p.Name, p.HeartbeatInterval)
	case p.HopBWFactor <= 0 || p.HopBWFactor > 1:
		return fmt.Errorf("config %q: HopBWFactor must be in (0,1], got %v", p.Name, p.HopBWFactor)
	}
	return nil
}

// BlockSizeBytes reports the block size in bytes.
func (p *Profile) BlockSizeBytes() int64 { return int64(p.BlockSizeMB) * MB }

// CCT returns the dedicated 20-node Illinois CCT profile of Table III with
// the measured distributions of Tables I–II: disk reads ~158 MB/s tightly
// concentrated, network ~118 MB/s (GbE), RTT mean 0.18 ms.
func CCT() *Profile {
	return &Profile{
		Name:             "CCT",
		Kind:             Dedicated,
		Slaves:           19,
		RAMPerNodeGB:     16,
		CoresPerNode:     8, // 2 quad-core
		StoragePerNodeGB: 2000,
		Platform:         "64-bit",
		Network:          "Gigabit Ethernet",
		OS:               "CentOS release 5.5",

		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		BlockSizeMB:        128,
		ReplicationFactor:  3,

		DiskBW: stats.Normal{Mu: 157.8, Sigma: 8.02, Min: 145.3, Max: 167.0},
		NetBW:  stats.Normal{Mu: 117.7, Sigma: 0.65, Min: 115.4, Max: 118.0},
		// Table I CCT RTTs (seconds): mean 0.18 ms, σ 0.34 ms, heavy right
		// tail to ~2 ms — a log-normal fit clipped at the observed bounds.
		RTT: stats.Clamped{
			D:  stats.LogNormalFromMoments(0.18e-3, 0.34e-3),
			Lo: 0.01e-3, Hi: 2.5e-3,
		},

		RackSize:    0, // single rack
		HopBWFactor: 1.0,
		PerHopRTT:   0,
		// Scaled so heartbeat/task-duration matches Hadoop's ratio (3 s
		// heartbeats against ~20 s map tasks).
		HeartbeatInterval: 0.25,
		TaskOverhead:      0.3,
		TaskNoiseSigma:    0.08,
	}
}

// EC2 returns the virtualized 100-node EC2 small-instance profile of
// Table III. Disk bandwidth is wildly variable (Table II: σ 74 MB/s —
// neighbours steal I/O), network bandwidth is lower and noisier than the
// dedicated GbE, and RTTs are heavy-tailed to tens of milliseconds
// (Table I). Instances are scattered across racks, mostly 4 hops apart
// (Fig. 1).
func EC2() *Profile {
	p := ec2Base()
	p.Slaves = 99
	p.Racks = 300
	p.Pods = 3
	return p
}

// EC2Small returns the 20-node EC2 variant used for the Table I/II probes
// and the Fig. 1 hop-count measurement.
func EC2Small() *Profile {
	p := ec2Base()
	p.Name = "EC2-20"
	p.Slaves = 19
	p.Racks = 60
	p.Pods = 2
	return p
}

func ec2Base() *Profile {
	return &Profile{
		Name:             "EC2",
		Kind:             Virtual,
		Slaves:           99,
		RAMPerNodeGB:     1.7,
		CoresPerNode:     1, // 1 virtual core, 2 EC2 compute units
		StoragePerNodeGB: 160,
		Platform:         "32-bit",
		Network:          "Moderate I/O performance",
		OS:               "Fedora release 8",

		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 1,
		BlockSizeMB:        128,
		ReplicationFactor:  3,

		// Table II EC2 rows.
		DiskBW: stats.Clamped{
			D:  stats.LogNormalFromMoments(141.5, 74.2),
			Lo: 67.1, Hi: 357.9,
		},
		NetBW: stats.Normal{Mu: 73.2, Sigma: 16.9, Min: 5.8, Max: 109.9},
		// Table I EC2 RTTs: mean 0.77 ms, σ 3.36 ms, max 75 ms.
		RTT: stats.Clamped{
			D:  stats.LogNormalFromMoments(0.77e-3, 3.36e-3),
			Lo: 0.02e-3, Hi: 75.1e-3,
		},

		Racks:             300,
		Pods:              3,
		PerHopRTT:         0.05e-3,
		HopBWFactor:       0.8,
		HeartbeatInterval: 0.25,
		TaskOverhead:      0.5,
		TaskNoiseSigma:    0.2,
	}
}

// TableIII renders the profiles side by side in the layout of the paper's
// Table III. It is what `dare-bench -exp table3` prints.
func TableIII(profiles ...*Profile) string {
	out := fmt.Sprintf("%-22s", "")
	for _, p := range profiles {
		out += fmt.Sprintf("%-28s", p.Name)
	}
	out += "\n"
	row := func(label string, f func(*Profile) string) {
		out += fmt.Sprintf("%-22s", label)
		for _, p := range profiles {
			out += fmt.Sprintf("%-28s", f(p))
		}
		out += "\n"
	}
	row("Type of cluster", func(p *Profile) string { return p.Kind.String() })
	row("Nodes", func(p *Profile) string { return fmt.Sprintf("1 master, %d slaves", p.Slaves) })
	row("RAM (per node)", func(p *Profile) string { return fmt.Sprintf("%g GB", p.RAMPerNodeGB) })
	row("Cores (per node)", func(p *Profile) string { return fmt.Sprintf("%d", p.CoresPerNode) })
	row("Storage (per node)", func(p *Profile) string { return fmt.Sprintf("%g GB", p.StoragePerNodeGB) })
	row("Platform", func(p *Profile) string { return p.Platform })
	row("Network", func(p *Profile) string { return p.Network })
	row("Operating system", func(p *Profile) string { return p.OS })
	return out
}
