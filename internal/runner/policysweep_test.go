package runner

import (
	"strings"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
)

// TestPolicyFileMatchesBuiltinFlag pins the central -policy-file
// guarantee: running a built-in arm through the config-file path is
// exactly the run the -policy flag path produces — same summary, same
// policy counters, same label.
func TestPolicyFileMatchesBuiltinFlag(t *testing.T) {
	for _, kind := range []core.PolicyKind{
		core.NonePolicy, core.GreedyLRUPolicy, core.GreedyLFUPolicy,
		core.ElephantTrapPolicy, core.ScarlettPolicy,
	} {
		name := kind.String()
		wl, err := WorkloadByName("wl1", 7)
		if err != nil {
			t.Fatal(err)
		}
		wl = truncate(wl, 25)
		base := Options{Profile: config.CCT(), Workload: wl, Scheduler: "fifo", Seed: 7}

		// Build the flag-path config exactly as the dare-sim CLI does: the
		// flag defaults for every kind, with Scarlett's epoch knobs from
		// PolicyFor (delays stay zero and default to the heartbeat interval
		// inside Run, on both paths).
		flagOpts := base
		if kind == core.ScarlettPolicy {
			flagOpts.Policy = PolicyFor(kind)
			flagOpts.Policy.BudgetFraction = 0.2
		} else {
			flagOpts.Policy = core.Config{Kind: kind, P: 0.3, Threshold: 1, BudgetFraction: 0.2}
		}
		want, err := Run(flagOpts)
		if err != nil {
			t.Fatalf("%s flag run: %v", name, err)
		}

		set, err := config.BuiltinPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		fileOpts := base
		fileOpts.PolicySet = set
		got, err := Run(fileOpts)
		if err != nil {
			t.Fatalf("%s file run: %v", name, err)
		}

		if got.Summary != want.Summary {
			t.Errorf("%s: summary diverged\nflag: %+v\nfile: %+v", name, want.Summary, got.Summary)
		}
		if got.PolicyStats != want.PolicyStats {
			t.Errorf("%s: policy stats diverged: flag %+v file %+v", name, want.PolicyStats, got.PolicyStats)
		}
		if got.PolicyName != want.PolicyName {
			t.Errorf("%s: policy name %q vs %q", name, got.PolicyName, want.PolicyName)
		}
		if got.ExtraNetworkBytes != want.ExtraNetworkBytes {
			t.Errorf("%s: extra network bytes %d vs %d", name, got.ExtraNetworkBytes, want.ExtraNetworkBytes)
		}
	}
}

// TestPolicyFileOverridesApply proves a config arm actually changes
// behavior (the overrides are not dead wiring): an always-admit LRU arm
// must create at least as many replicas as one that never admits.
func TestPolicyFileOverridesApply(t *testing.T) {
	run := func(admit string) *Output {
		t.Helper()
		set, err := config.ReadPolicy(strings.NewReader(
			`{"kind": "lru", "replication": {"admit": {"rule": "` + admit + `"}}}`))
		if err != nil {
			t.Fatal(err)
		}
		wl, err := WorkloadByName("wl1", 3)
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(Options{Profile: config.CCT(), Workload: truncate(wl, 25),
			Scheduler: "fifo", PolicySet: set, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	allow, deny := run("allow"), run("deny")
	if deny.PolicyStats.ReplicasCreated != 0 {
		t.Errorf("deny-admit arm created %d replicas", deny.PolicyStats.ReplicasCreated)
	}
	if allow.PolicyStats.ReplicasCreated == 0 {
		t.Error("allow-admit arm created no replicas; admit override is not wired")
	}
}

// TestPolicySweepWithBanditArm runs the ε-greedy bandit arm end to end in
// a sweep next to the built-ins — the config-only experiment the policy
// layer exists for: an adaptive replication-factor arm with zero edits to
// internal/core.
func TestPolicySweepWithBanditArm(t *testing.T) {
	bandit, err := config.ReadPolicy(strings.NewReader(`{
	  "name": "bandit",
	  "kind": "elephanttrap",
	  "replication": {"admit": {"rule": "epsilongreedy", "epsilon": 0.1, "window": 30,
	    "rewardKey": "local",
	    "arms": [
	      {"rule": "probability", "p": 0.1},
	      {"rule": "probability", "p": 0.3},
	      {"rule": "probability", "p": 1}
	    ]}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := PolicySweep(20, 11, []*config.PolicySet{bandit})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 5 built-ins + bandit, got %d rows", len(rows))
	}
	var banditRow *PolicyArmRow
	for i := range rows {
		if rows[i].Arm == "bandit" {
			banditRow = &rows[i]
		}
	}
	if banditRow == nil {
		t.Fatalf("bandit arm missing from %+v", rows)
	}
	if banditRow.Replicas == 0 {
		t.Error("bandit arm never replicated; the ε-greedy admit gate is not live")
	}
	// Determinism: the sweep is a pure function of (jobs, seed, arms).
	rows2, err := PolicySweep(20, 11, []*config.PolicySet{bandit})
	if err != nil {
		t.Fatal(err)
	}
	if RenderPolicySweep(rows) != RenderPolicySweep(rows2) {
		t.Error("policy sweep not deterministic across replays")
	}
	out := RenderPolicySweep(rows)
	for _, arm := range []string{"vanilla", "lru", "lfu", "elephanttrap", "scarlett", "bandit"} {
		if !strings.Contains(out, arm) {
			t.Errorf("rendered sweep missing arm %s:\n%s", arm, out)
		}
	}
}
