package runner

import (
	"strings"
	"testing"
)

// TestAuditReplayDAREWins: replaying the §III access process end-to-end,
// DARE must raise locality and cut fabric traffic versus vanilla — the
// paper's whole thesis in one run.
func TestAuditReplayDAREWins(t *testing.T) {
	rows, err := AuditReplay(300, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	byPolicy := map[string]AuditReplayRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	van, lru := byPolicy["vanilla"], byPolicy["lru"]
	if lru.Locality <= van.Locality {
		t.Fatalf("DARE locality %.3f not above vanilla %.3f on the audit replay", lru.Locality, van.Locality)
	}
	if lru.NetworkGB >= van.NetworkGB {
		t.Fatalf("DARE network %.1f GB not below vanilla %.1f GB", lru.NetworkGB, van.NetworkGB)
	}
	if lru.GMTT >= van.GMTT {
		t.Fatalf("DARE GMTT %.2f not below vanilla %.2f", lru.GMTT, van.GMTT)
	}
	if van.BlocksPerJob != 0 || lru.BlocksPerJob == 0 {
		t.Fatal("replication activity accounting wrong")
	}
}

func TestAuditReplayDeterministic(t *testing.T) {
	a, err := AuditReplay(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AuditReplay(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestRenderAuditReplay(t *testing.T) {
	out := RenderAuditReplay([]AuditReplayRow{{Policy: "vanilla", Locality: 0.2, NetworkGB: 90}})
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "network(GB)") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
