package runner

import (
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// TestHeadlineClaimsAcrossSeeds re-checks the paper's two headline
// directions on several independent seeds, guarding against a tuning that
// only works at the default test seed:
//
//  1. DARE multiplies FIFO locality and reduces GMTT (Fig. 7).
//  2. The fair scheduler's baseline is high and DARE still improves it.
func TestHeadlineClaimsAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{3, 1001, 777777} {
		wl := truncate(workload.WL1(seed), 250)
		run := func(sched string, kind core.PolicyKind) *Output {
			out, err := Run(Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: sched,
				Policy:    PolicyFor(kind),
				Seed:      seed,
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return out
		}
		fifoVan := run("fifo", core.NonePolicy)
		fifoLRU := run("fifo", core.GreedyLRUPolicy)
		if fifoLRU.Summary.JobLocality < 1.7*fifoVan.Summary.JobLocality {
			t.Errorf("seed %d: FIFO locality gain only %.2fx (%.3f -> %.3f)",
				seed, fifoLRU.Summary.JobLocality/fifoVan.Summary.JobLocality,
				fifoVan.Summary.JobLocality, fifoLRU.Summary.JobLocality)
		}
		if fifoLRU.Summary.GMTT >= fifoVan.Summary.GMTT {
			t.Errorf("seed %d: FIFO GMTT did not improve (%.2f -> %.2f)",
				seed, fifoVan.Summary.GMTT, fifoLRU.Summary.GMTT)
		}
		if fifoLRU.Summary.NetworkBytes >= fifoVan.Summary.NetworkBytes {
			t.Errorf("seed %d: network traffic did not fall", seed)
		}

		fairVan := run("fair", core.NonePolicy)
		fairLRU := run("fair", core.GreedyLRUPolicy)
		if fairVan.Summary.JobLocality < 0.55 {
			t.Errorf("seed %d: fair baseline locality %.3f suspiciously low", seed, fairVan.Summary.JobLocality)
		}
		if fairLRU.Summary.JobLocality <= fairVan.Summary.JobLocality {
			t.Errorf("seed %d: fair+DARE locality %.3f not above vanilla %.3f",
				seed, fairLRU.Summary.JobLocality, fairVan.Summary.JobLocality)
		}
	}
}
