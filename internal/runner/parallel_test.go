package runner

import (
	"reflect"
	"strings"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

func equivalenceOpts(n int) []Options {
	opts := make([]Options, n)
	for i := range opts {
		seed := uint64(100 + i)
		opts[i] = Options{
			Profile:   config.CCT(),
			Workload:  truncate(workload.WL1(seed), 40),
			Scheduler: "fifo",
			Policy:    PolicyFor(core.ElephantTrapPolicy),
			Seed:      seed,
		}
	}
	return opts
}

// TestRunAllParallelMatchesSerial is the worker pool's determinism
// contract: RunAll with parallelism N returns exactly the outputs a serial
// loop produces, in input order.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	opts := equivalenceOpts(6)

	SetParallelism(1)
	serial, err := RunAll(opts)
	if err != nil {
		t.Fatalf("serial RunAll: %v", err)
	}
	SetParallelism(4)
	defer SetParallelism(0)
	parallel, err := RunAll(opts)
	if err != nil {
		t.Fatalf("parallel RunAll: %v", err)
	}

	if len(serial) != len(parallel) {
		t.Fatalf("serial %d outputs, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Summary, parallel[i].Summary) {
			t.Errorf("run %d: summaries diverge\nserial:   %+v\nparallel: %+v",
				i, serial[i].Summary, parallel[i].Summary)
		}
		if !reflect.DeepEqual(serial[i].Results, parallel[i].Results) {
			t.Errorf("run %d: per-job results diverge", i)
		}
	}
}

// TestRunAllFirstError checks that error selection is deterministic under
// concurrency: the reported failure is the lowest-index one — what a
// serial loop would have hit first — no matter which goroutine finds its
// error first.
func TestRunAllFirstError(t *testing.T) {
	opts := equivalenceOpts(6)
	opts[2].Scheduler = "bogus-a"
	opts[4].Scheduler = "bogus-b"

	SetParallelism(4)
	defer SetParallelism(0)
	for trial := 0; trial < 5; trial++ {
		_, err := RunAll(opts)
		if err == nil {
			t.Fatal("RunAll succeeded with invalid schedulers")
		}
		if !strings.Contains(err.Error(), "run 2") || !strings.Contains(err.Error(), "bogus-a") {
			t.Fatalf("trial %d: got error %q, want the lowest-index failure (run 2, bogus-a)", trial, err)
		}
	}
}

// TestParallelismKnob checks the override/default semantics.
func TestParallelismKnob(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}
