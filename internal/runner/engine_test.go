package runner

import (
	"strings"
	"testing"
)

// TestEngineStudyTiny smoke-runs the engine benchmark at a small job count
// and sanity-checks the row grid: every {profile} × {arm} pair appears with
// both queue implementations, all with nonzero event counts, and paired
// runs (same seed, different queue) executed the identical number of
// simulation events — the cheap proxy for "the queues fired the same
// schedule" that runs on every CI pass.
func TestEngineStudyTiny(t *testing.T) {
	rows, err := EngineStudy(6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 2 profiles × 3 arms × 2 queues
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	events := map[string]uint64{}
	for _, r := range rows {
		if r.Events == 0 {
			t.Errorf("%s/%s/%s executed zero events", r.Profile, r.Arm, r.Queue)
		}
		if r.Queue != "calendar" && r.Queue != "heap" {
			t.Errorf("unexpected queue kind %q", r.Queue)
		}
		key := r.Profile + "/" + r.Arm
		if prev, ok := events[key]; ok {
			if prev != r.Events {
				t.Errorf("%s: queue arms executed different event counts: %d vs %d",
					key, prev, r.Events)
			}
		} else {
			events[key] = r.Events
		}
	}
	table := RenderEngine(rows)
	for _, want := range []string{"calendar", "heap", "events/sec", "allocs/event", "speedup"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q:\n%s", want, table)
		}
	}
}
