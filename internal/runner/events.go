package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/event"
	"dare/internal/workload"
)

// EventRow reports one arm's cluster bus event volume: how much of each
// kind of traffic one simulated run publishes. It quantifies the event
// spine itself — vanilla publishes no replica churn beyond placement,
// while the DARE arms add replica-add/remove traffic and churn arms add
// the node-lifecycle and repair kinds.
type EventRow struct {
	Policy string
	Churn  bool
	Counts event.Counts
}

// EventStudy measures per-kind bus event volume for {vanilla, DARE-LRU,
// ElephantTrap} × {quiet, churn} on wl1, one run per arm. The trace
// recorder is attached, so the tallies are exactly what a -events capture
// of each run would contain.
func EventStudy(jobs int, seed uint64) ([]EventRow, error) {
	if jobs <= 0 {
		jobs = 300
	}
	wl := truncate(workload.WL1(seed), jobs)
	span := wl.Jobs[len(wl.Jobs)-1].Arrival

	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	spec := DefaultChurnSpec(span, profile.Slaves)

	type arm struct {
		kind  core.PolicyKind
		churn bool
	}
	var arms []arm
	for _, kind := range EvaluatedPolicies {
		arms = append(arms, arm{kind, false}, arm{kind, true})
	}
	rows := make([]EventRow, len(arms))
	err := forEachIndex(len(arms), func(i int) error {
		opts := Options{
			Profile:   profile,
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(arms[i].kind),
			Seed:      seed,
		}
		if arms[i].churn {
			opts.Churn = &spec
		}
		out, err := Run(opts)
		if err != nil {
			return fmt.Errorf("runner: events/%s: %w", arms[i].kind, err)
		}
		rows[i] = EventRow{Policy: arms[i].kind.String(), Churn: arms[i].churn, Counts: out.EventCounts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderEvents formats the event-volume table.
func RenderEvents(rows []EventRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-5s %9s %9s %9s %9s %9s %9s %9s %9s\n",
		"policy", "churn", "total", "rep-add", "rep-rm", "repair", "launch", "complete", "fail", "hbeat")
	for _, r := range rows {
		churn := "no"
		if r.Churn {
			churn = "yes"
		}
		c := r.Counts
		fmt.Fprintf(&b, "%-14s %-5s %9d %9d %9d %9d %9d %9d %9d %9d\n",
			r.Policy, churn, c.Total(),
			c[event.ReplicaAdd], c[event.ReplicaRemove], c[event.ReplicaRepair],
			c[event.TaskLaunch], c[event.TaskComplete], c[event.TaskFail],
			c[event.Heartbeat])
	}
	return b.String()
}
