package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/metrics"
	"dare/internal/scheduler"
	"dare/internal/stats"
	"dare/internal/workload"
)

// BalanceRow contrasts the two notions of "balanced" that Fig. 11 is
// really about: the HDFS balancer equalizes *bytes* per node, DARE
// equalizes *popularity* per node. StorageCV is the balancer's success
// metric; PopularityCV is Fig. 11's.
type BalanceRow struct {
	Scenario     string
	StorageCV    float64
	PopularityCV float64
	// MovedGB is the network traffic the scenario spent rearranging or
	// creating replicas.
	MovedGB float64
}

// BalanceStudy builds a deliberately byte-balanced DFS whose popularity is
// still skewed, then compares three treatments after running wl1:
// untreated, HDFS balancer, and DARE. The balancer fixes StorageCV but
// barely touches PopularityCV; DARE fixes PopularityCV without moving any
// dedicated traffic.
func BalanceStudy(jobs int, seed uint64) ([]BalanceRow, error) {
	wl := truncate(workload.WL1(seed), jobs)
	blockPop := wl.BlockAccessCounts()

	build := func(kind core.PolicyKind) (*mapreduce.Cluster, *mapreduce.Tracker, *core.Manager, error) {
		cluster, err := mapreduce.NewCluster(config.CCT(), seed)
		if err != nil {
			return nil, nil, nil, err
		}
		tracker, err := mapreduce.NewTracker(cluster, wl, scheduler.NewFIFO())
		if err != nil {
			return nil, nil, nil, err
		}
		var mgr *core.Manager
		if kind != core.NonePolicy {
			pcfg := PolicyFor(kind)
			pcfg.AnnounceDelay = cluster.Profile.HeartbeatInterval
			pcfg.LazyDeleteDelay = cluster.Profile.HeartbeatInterval
			mgr = core.NewManager(pcfg, cluster.NN, stats.NewRNG(seed).Split(0xBA1), cluster.Eng.Defer)
			cluster.Bus.Subscribe(mgr)
		}
		return cluster, tracker, mgr, nil
	}

	// Each scenario builds and runs its own private world, so the three can
	// execute on the worker pool; rows keeps the original presentation order.
	scenarios := []func() (BalanceRow, error){
		// Scenario 1: vanilla run, no treatment.
		func() (BalanceRow, error) {
			cluster, tracker, _, err := build(core.NonePolicy)
			if err != nil {
				return BalanceRow{}, err
			}
			if _, err := tracker.Run(); err != nil {
				return BalanceRow{}, err
			}
			return BalanceRow{
				Scenario:     "vanilla",
				StorageCV:    dfs.NewBalancer(cluster.NN).StorageCV(),
				PopularityCV: metrics.PlacementCV(cluster.NN, tracker.Files(), blockPop),
			}, nil
		},
		// Scenario 2: vanilla run, then the HDFS balancer with a tight
		// threshold.
		func() (BalanceRow, error) {
			cluster, tracker, _, err := build(core.NonePolicy)
			if err != nil {
				return BalanceRow{}, err
			}
			if _, err := tracker.Run(); err != nil {
				return BalanceRow{}, err
			}
			bal := dfs.NewBalancer(cluster.NN)
			bal.Threshold = 0.02
			_, movedBytes, err := bal.Run()
			if err != nil {
				return BalanceRow{}, err
			}
			return BalanceRow{
				Scenario:     "hdfs-balancer",
				StorageCV:    bal.StorageCV(),
				PopularityCV: metrics.PlacementCV(cluster.NN, tracker.Files(), blockPop),
				MovedGB:      float64(movedBytes) / (1 << 30),
			}, nil
		},
		// Scenario 3: DARE (ElephantTrap) during the run.
		func() (BalanceRow, error) {
			cluster, tracker, mgr, err := build(core.ElephantTrapPolicy)
			if err != nil {
				return BalanceRow{}, err
			}
			if _, err := tracker.Run(); err != nil {
				return BalanceRow{}, err
			}
			if errs := mgr.Errors(); len(errs) > 0 {
				return BalanceRow{}, fmt.Errorf("runner: balance-study DARE errors: %w", errs[0])
			}
			return BalanceRow{
				Scenario:     "dare",
				StorageCV:    dfs.NewBalancer(cluster.NN).StorageCV(),
				PopularityCV: metrics.PlacementCV(cluster.NN, tracker.Files(), blockPop),
			}, nil
		},
	}
	rows := make([]BalanceRow, len(scenarios))
	err := forEachIndex(len(scenarios), func(i int) error {
		row, err := scenarios[i]()
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderBalance prints the balance study.
func RenderBalance(rows []BalanceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %11s %14s %10s\n", "scenario", "storage-cv", "popularity-cv", "moved(GB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %11.3f %14.3f %10.1f\n", r.Scenario, r.StorageCV, r.PopularityCV, r.MovedGB)
	}
	b.WriteString("(the balancer equalizes bytes; DARE equalizes the popularity Fig. 11 measures)\n")
	return b.String()
}
