// Package runner wires the full stack together — cluster, DFS, workload,
// scheduler, DARE manager — and exposes one-call experiment drivers for
// every table and figure in the paper's evaluation (§V).
package runner

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"dare/internal/churn"
	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/mapreduce"
	"dare/internal/metrics"
	"dare/internal/scheduler"
	"dare/internal/snapshot"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// Options configures one simulation run.
type Options struct {
	// Profile selects the testbed (config.CCT(), config.EC2(), ...).
	Profile *config.Profile
	// Workload is the job trace to replay.
	Workload *workload.Workload
	// Scheduler is "fifo" or "fair".
	Scheduler string
	// FairSkips is the delay-scheduling patience (skipped scheduling
	// opportunities) for the fair scheduler; <= 0 uses the default.
	FairSkips int
	// Policy configures DARE; Kind == core.NonePolicy runs vanilla.
	Policy core.Config
	// PolicySet, when non-nil, takes precedence over Policy: the run uses
	// the config-file arm's kind, scalars, and rule overrides
	// (replication admit/victim/aged, repair ranking, speculation,
	// blacklist, job-fail). Built-in arms (config.BuiltinPolicy) reproduce
	// the equivalent -policy run byte for byte.
	PolicySet *config.PolicySet
	// Seed drives every random stream of the run.
	Seed uint64
	// Failures schedules node kills during the run (failure injection).
	Failures []NodeFailure
	// Recoveries schedules node rejoins (HDFS-style empty re-registration).
	Recoveries []NodeRecovery
	// RackFailures schedules whole-rack (switch) failures.
	RackFailures []RackFailure
	// Churn, when non-nil, generates a seeded stochastic failure/recovery
	// schedule (exponential up/down times) on top of any explicit events
	// above. Its horizon defaults to the workload's arrival span.
	Churn *ChurnSpec
	// Chaos, when non-nil, generates a seeded gray-failure scenario (mixed
	// crashes, slow/disk-degraded nodes, silent corruption, false-dead
	// flaps) and switches task launches to the integrity-aware read path
	// (checksum verification, retry with backoff, hedged slow reads). Its
	// horizon defaults to the workload's arrival span.
	Chaos *ChaosSpec
	// MasterOutages schedules control-plane crash/recovery pairs; a
	// non-empty list arms the failover machinery (metadata journaling,
	// journaled job ledger, block-report recovery).
	MasterOutages []MasterOutage
	// MasterCheckpointEvery is the metadata-journal checkpoint cadence in
	// records (<= 0 checkpoints only at recovery boundaries).
	MasterCheckpointEvery int
	// DisableRepair turns off the post-failure HDFS-style re-replication.
	DisableRepair bool
	// MaxTaskAttempts caps failed attempts per map input before the job
	// fails; 0 keeps the tracker default (4), negative retries forever.
	MaxTaskAttempts int
	// BlacklistAfter is the per-node failed-attempt threshold for
	// blacklisting; 0 keeps the tracker default (3), negative disables.
	BlacklistAfter int
	// TaskFailureProb makes each map attempt fail with this probability
	// (flaky disks/JVMs), drawn from a dedicated seed stream.
	TaskFailureProb float64
	// CheckInvariants runs the full metadata invariant checker after every
	// injected failure/recovery event (debugging; the first violation
	// aborts the run).
	CheckInvariants bool
	// EventLog, when non-nil, receives the run's full cluster event trace
	// as JSONL, one object per line in publish order (see event.Recorder
	// for the wire format). Same Options (including Seed) produce a
	// byte-identical trace.
	EventLog io.Writer

	// linearScan forces the original O(pending) block-selection scan
	// instead of the inverted locality index. Unexported: only the
	// equivalence tests use it to prove both paths agree byte-for-byte.
	linearScan bool
	// heapQueue runs the engine on the legacy container/heap pending-event
	// set instead of the calendar queue. Unexported: equivalence tests and
	// the engine benchmark experiment use it to prove/measure the two
	// implementations against each other.
	heapQueue bool
	// perNodeHeartbeats drives heartbeats with one sim.Ticker per node
	// instead of coalesced cohort events. Unexported: equivalence tests and
	// the scale benchmark use it to prove/measure the two drivers against
	// each other.
	perNodeHeartbeats bool
	// hbCohortSize overrides the auto-scaled heartbeat cohort size (0 =
	// auto). Unexported: differential tests force real multi-member sweeps
	// on paper-scale clusters with it.
	hbCohortSize int
}

// NodeFailure kills one node at a simulated time.
type NodeFailure struct {
	Node int
	At   float64
}

// NodeRecovery rejoins one failed node at a simulated time.
type NodeRecovery struct {
	Node int
	At   float64
}

// RackFailure kills every live node of one rack at a simulated time.
type RackFailure struct {
	Rack int
	At   float64
}

// MasterOutage takes the control plane down at At for Down seconds of
// simulated time. Mode selects how the recovered name node rebuilds its
// registry: "journal" (checkpoint + journal replay; the default) or
// "report" (cold start, progressively warmed by per-node block reports).
type MasterOutage struct {
	At, Down float64
	Mode     string
}

// ChurnSpec configures the stochastic churn generator (internal/churn):
// per-node exponential up-times with mean MTTF, exponential down-times
// with mean MTTR, and a RackFailProb chance that a failure takes a whole
// rack. Horizon <= 0 uses the workload's arrival span.
type ChurnSpec struct {
	MTTF         float64
	MTTR         float64
	RackFailProb float64
	Horizon      float64
}

// Output is the result of one run.
type Output struct {
	Summary metrics.RunSummary
	Results []mapreduce.Result
	// CVBefore and CVAfter are Fig. 11's placement-uniformity metric
	// computed over the node popularity indices before the first job and
	// after the last.
	CVBefore, CVAfter float64
	// PolicyStats aggregates the DARE per-node counters.
	PolicyStats core.PolicyStats
	// ExtraNetworkBytes is the proactive replication traffic (Scarlett
	// only; DARE's captures are free).
	ExtraNetworkBytes int64
	// SpeculativeLaunches counts backup task attempts (zero unless the
	// profile enables speculative execution).
	SpeculativeLaunches int
	// FailureEvents records injected node failures; RecoveryEvents records
	// node rejoins; RepairsDone counts the block re-replications that
	// healed them.
	FailureEvents  []mapreduce.FailureEvent
	RecoveryEvents []mapreduce.RecoveryEvent
	RepairsDone    int
	// Gray tallies the gray-failure machinery's activity (degradations,
	// corruption detections, read retries, hedged reads, flap
	// reconciliation); zero unless Options.Chaos or explicit gray
	// injection was used.
	Gray mapreduce.GrayStats
	// Master tallies control-plane outages (crash counts, downtime,
	// deferred heartbeats/reads, journal activity); zero unless
	// MasterOutages or a chaos master weight was set. MasterEvents samples
	// the master's access-weighted availability timeline at each crash,
	// recovery, and block report.
	Master       mapreduce.MasterStats
	MasterEvents []mapreduce.MasterEvent
	// SchedulerName and PolicyName echo what ran.
	SchedulerName, PolicyName string
	// EventsProcessed is the number of simulation events this run executed
	// (throughput accounting for perf tracking).
	EventsProcessed uint64
	// EventCounts tallies the cluster bus events this run published, per
	// kind (replica churn, task lifecycle, node lifecycle, heartbeats).
	EventCounts event.Counts
}

// totalEvents accumulates simulation events executed across every Run in
// the process; atomic because runs may execute concurrently.
var totalEvents atomic.Uint64

// TotalEventsProcessed reports the cumulative simulation events executed
// by all completed runs since process start — the numerator for the
// events/sec throughput metric dare-bench emits in -json mode.
func TotalEventsProcessed() uint64 { return totalEvents.Load() }

// busCountsMu guards busCounts; runs may finish concurrently under the
// sweep engine's worker pool.
var busCountsMu sync.Mutex

// busCounts accumulates per-kind cluster bus events across every Run in
// the process (dare-bench -events reporting).
var busCounts event.Counts

// TotalBusEvents reports the cumulative per-kind cluster bus event counts
// across all completed runs since process start.
func TotalBusEvents() event.Counts {
	busCountsMu.Lock()
	defer busCountsMu.Unlock()
	return busCounts
}

// Run executes one full simulation and returns its metrics. The run is a
// pure function of Options (including Seed).
func Run(opts Options) (*Output, error) {
	rs, err := newRunState(opts)
	if err != nil {
		return nil, err
	}
	results, err := rs.tracker.Run()
	if err != nil {
		return nil, err
	}
	return rs.finish(results)
}

// runState is one fully wired simulation, paused before the clock starts.
// Run drives it to completion in a single call; the durable and streaming
// drivers (durable.go, stream.go) advance it in checkpointed slices via
// Tracker.RunWith. Construction is deterministic: two runStates built from
// equal Options are in identical states, which is what lets a resumed run
// rebuild the world by replaying from genesis.
type runState struct {
	opts    Options
	sel     mapreduce.TaskSelector
	cluster *mapreduce.Cluster
	tracker *mapreduce.Tracker
	rec     *event.Recorder
	counter *event.Counter
	mgr     *core.Manager
	scar    *core.Scarlett
	pol     core.Config
	polName string // non-empty only for a -policy-file arm's custom label

	blockPop [][]int
	cvBefore float64
}

// newRunState wires the full stack from opts without processing any
// events.
func newRunState(opts Options) (*runState, error) {
	if opts.Profile == nil {
		return nil, fmt.Errorf("runner: Profile is required")
	}
	if opts.Workload == nil {
		return nil, fmt.Errorf("runner: Workload is required")
	}
	sel, ok := scheduler.FromName(opts.Scheduler, opts.FairSkips)
	if !ok {
		return nil, fmt.Errorf("runner: unknown scheduler %q", opts.Scheduler)
	}
	cluster, err := mapreduce.NewCluster(opts.Profile, opts.Seed)
	if err != nil {
		return nil, err
	}
	if opts.heapQueue {
		cluster.Eng.SetHeapQueue(true)
	}
	// Observability subscribers ride first, before any engine-active
	// subscriber, so the trace and tallies see every event — including
	// the initial file placements NewTracker triggers below.
	var rec *event.Recorder
	if opts.EventLog != nil {
		rec = event.NewRecorder(opts.EventLog)
		cluster.Bus.Subscribe(rec)
	}
	counter := &event.Counter{}
	cluster.Bus.Subscribe(counter)
	tracker, err := mapreduce.NewTracker(cluster, opts.Workload, sel)
	if err != nil {
		return nil, err
	}
	for _, f := range opts.Failures {
		tracker.ScheduleNodeFailure(topology.NodeID(f.Node), f.At)
	}
	for _, r := range opts.Recoveries {
		tracker.ScheduleNodeRecovery(topology.NodeID(r.Node), r.At)
	}
	for _, rf := range opts.RackFailures {
		tracker.ScheduleRackFailure(rf.Rack, rf.At)
	}
	if opts.Churn != nil {
		spec := churn.Spec{
			MTTF:         opts.Churn.MTTF,
			MTTR:         opts.Churn.MTTR,
			RackFailProb: opts.Churn.RackFailProb,
			Horizon:      opts.Churn.Horizon,
		}
		if spec.Horizon <= 0 && len(opts.Workload.Jobs) > 0 {
			spec.Horizon = opts.Workload.Jobs[len(opts.Workload.Jobs)-1].Arrival
		}
		topo := cluster.Topo
		events, err := churn.Generate(opts.Profile.Slaves,
			func(n int) int { return topo.Rack(topology.NodeID(n)) },
			spec, stats.NewRNG(opts.Seed).Split(0xC4021))
		if err != nil {
			return nil, err
		}
		for _, ev := range events {
			switch ev.Kind {
			case churn.NodeFail:
				tracker.ScheduleNodeFailure(topology.NodeID(ev.Node), ev.At)
			case churn.NodeRecover:
				tracker.ScheduleNodeRecovery(topology.NodeID(ev.Node), ev.At)
			case churn.RackFail:
				tracker.ScheduleRackFailure(ev.Rack, ev.At)
			}
		}
	}
	if len(opts.MasterOutages) > 0 || (opts.Chaos != nil && opts.Chaos.MasterWeight > 0) {
		tracker.EnableMasterRecovery(opts.MasterCheckpointEvery)
	}
	for _, mo := range opts.MasterOutages {
		mode, err := dfs.RecoveryModeFromString(mo.Mode)
		if err != nil {
			return nil, err
		}
		tracker.ScheduleMasterOutage(mo.At, mo.Down, mode)
	}
	if opts.Chaos != nil {
		if err := wireChaos(tracker, opts); err != nil {
			return nil, err
		}
	}
	if opts.DisableRepair {
		tracker.DisableRepair()
	}
	if opts.MaxTaskAttempts != 0 {
		tracker.SetMaxTaskAttempts(opts.MaxTaskAttempts)
	}
	if opts.BlacklistAfter != 0 {
		tracker.SetBlacklistAfter(opts.BlacklistAfter)
	}
	if opts.TaskFailureProb > 0 {
		tracker.SetTaskFailureInjection(opts.TaskFailureProb, stats.NewRNG(opts.Seed).Split(0xF1A2))
	}
	if opts.CheckInvariants {
		tracker.SetInvariantChecks(true)
	}
	if opts.linearScan {
		tracker.SetLinearScan(true)
	}
	if opts.perNodeHeartbeats {
		tracker.SetPerNodeHeartbeats(true)
	}
	if opts.hbCohortSize != 0 {
		tracker.SetHeartbeatCohortSize(opts.hbCohortSize)
	}

	// A -policy-file arm overrides the flag-built Policy and installs its
	// scheduler-side rule overrides. Each override family compiles from its
	// own substream of one dedicated seed branch, so adding a stateful rule
	// to one family never shifts another family's draws.
	pol := opts.Policy
	polNameOverride := ""
	if set := opts.PolicySet; set != nil {
		kind, err := core.ParsePolicyKind(set.Kind)
		if err != nil {
			return nil, err
		}
		pol = core.Config{
			Kind:               kind,
			P:                  set.P,
			Threshold:          set.Threshold,
			BudgetFraction:     set.Budget,
			AnnounceDelay:      set.AnnounceDelay,
			LazyDeleteDelay:    set.LazyDeleteDelay,
			Epoch:              set.Epoch,
			AccessesPerReplica: set.AccessesPerReplica,
			MaxExtraReplicas:   set.MaxExtraReplicas,
			Rules:              set.Replication,
		}
		polNameOverride = set.Name
		if set.Repair != nil {
			cluster.NN.SetRepairTerms(set.Repair)
		}
		base := stats.NewRNG(opts.Seed).Split(0x9071C7)
		if set.Speculation != nil {
			rule, err := set.Speculation.CompileWith(base.Split(1))
			if err != nil {
				return nil, fmt.Errorf("runner: speculation rule: %w", err)
			}
			tracker.SetSpeculationRule(rule)
		}
		if set.Blacklist != nil {
			tracker.SetBlacklistRuleSpec(set.Blacklist, base.Split(2))
		}
		if set.FailJob != nil {
			rule, err := set.FailJob.CompileWith(base.Split(3))
			if err != nil {
				return nil, fmt.Errorf("runner: failJob rule: %w", err)
			}
			tracker.SetFailJobRule(rule)
		}
	}

	var mgr *core.Manager
	var scar *core.Scarlett
	switch pol.Kind {
	case core.NonePolicy:
		// vanilla: no replication policy on the bus
	case core.ScarlettPolicy:
		scar = core.NewScarlett(pol, cluster.NN, cluster.Eng.Defer)
		scar.SetNow(cluster.Eng.Now)
		scar.SetTagDefer(func(delay float64, tag core.EventTag, fn func()) {
			cluster.Eng.DeferTag(delay, tag, fn)
		})
		cluster.Bus.Subscribe(scar)
	default:
		pcfg := pol
		if pcfg.AnnounceDelay == 0 {
			pcfg.AnnounceDelay = opts.Profile.HeartbeatInterval
		}
		if pcfg.LazyDeleteDelay == 0 {
			pcfg.LazyDeleteDelay = opts.Profile.HeartbeatInterval
		}
		mgr = core.NewManager(pcfg, cluster.NN, stats.NewRNG(opts.Seed).Split(0xDA2E), cluster.Eng.Defer)
		mgr.SetNow(cluster.Eng.Now)
		mgr.SetTagDefer(func(delay float64, tag core.EventTag, fn func()) {
			cluster.Eng.DeferTag(delay, tag, fn)
		})
		cluster.Bus.Subscribe(mgr)
	}

	blockPop := opts.Workload.BlockAccessCounts()
	cvBefore := metrics.PlacementCV(cluster.NN, tracker.Files(), blockPop)

	return &runState{
		opts:     opts,
		sel:      sel,
		cluster:  cluster,
		tracker:  tracker,
		rec:      rec,
		counter:  counter,
		mgr:      mgr,
		scar:     scar,
		pol:      pol,
		polName:  polNameOverride,
		blockPop: blockPop,
		cvBefore: cvBefore,
	}, nil
}

// finish closes out a driven run: global tallies, invariant checks, and
// the Output assembly.
func (rs *runState) finish(results []mapreduce.Result) (*Output, error) {
	cluster, tracker, sel := rs.cluster, rs.tracker, rs.sel
	totalEvents.Add(cluster.Eng.Processed())
	evCounts := rs.counter.Counts()
	busCountsMu.Lock()
	busCounts.Add(evCounts)
	busCountsMu.Unlock()
	if rs.rec != nil {
		if err := rs.rec.Flush(); err != nil {
			return nil, fmt.Errorf("runner: writing event log: %w", err)
		}
	}
	cvAfter := metrics.PlacementCV(cluster.NN, tracker.Files(), rs.blockPop)
	if err := cluster.NN.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("runner: post-run DFS state corrupt: %w", err)
	}

	var polStats core.PolicyStats
	var extraNet int64
	polName := core.NonePolicy.String()
	if rs.mgr != nil {
		polStats = rs.mgr.TotalStats()
		polName = rs.pol.Kind.String()
		if errs := rs.mgr.Errors(); len(errs) > 0 {
			return nil, fmt.Errorf("runner: DARE manager errors (%d), first: %w", len(errs), errs[0])
		}
	}
	if rs.scar != nil {
		rs.scar.Stop()
		polStats = rs.scar.TotalStats()
		extraNet = rs.scar.ExtraNetworkBytes()
		polName = rs.pol.Kind.String()
		if errs := rs.scar.Errors(); len(errs) > 0 {
			return nil, fmt.Errorf("runner: scarlett errors (%d), first: %w", len(errs), errs[0])
		}
	}
	if rs.polName != "" {
		// Built-in arms are named after their kind, so this only changes
		// the label for genuinely custom arms.
		polName = rs.polName
	}
	return &Output{
		Summary:             metrics.Summarize(results, polStats),
		Results:             results,
		CVBefore:            rs.cvBefore,
		CVAfter:             cvAfter,
		PolicyStats:         polStats,
		ExtraNetworkBytes:   extraNet,
		SpeculativeLaunches: tracker.SpeculativeLaunches(),
		FailureEvents:       tracker.FailureEvents(),
		RecoveryEvents:      tracker.RecoveryEvents(),
		RepairsDone:         tracker.RepairsDone(),
		Gray:                tracker.Gray(),
		Master:              tracker.MasterStats(),
		MasterEvents:        tracker.MasterEvents(),
		SchedulerName:       sel.Name(),
		PolicyName:          polName,
		EventsProcessed:     cluster.Eng.Processed(),
		EventCounts:         evCounts,
	}, nil
}

// addState assembles the full-stack checkpoint fingerprint: every layer
// folds its labeled state rows into one table (see DESIGN.md §4j). The
// durable driver compares this table at the resume cut against the one
// stored in the checkpoint; any differing row names the layer that
// diverged.
func (rs *runState) addState(t *snapshot.StateTable) {
	rs.cluster.Eng.AddState(t)
	rs.cluster.NN.AddState(t)
	rs.tracker.AddState(t)
	if rs.mgr != nil {
		rs.mgr.AddState(t)
	}
	if rs.scar != nil {
		rs.scar.AddState(t)
	}
}

// PolicyFor builds the three evaluated policy configs by name, using the
// paper's headline ElephantTrap parameters (p=0.3, threshold=1,
// budget=0.2) and the same budget for greedy LRU.
func PolicyFor(kind core.PolicyKind) core.Config {
	switch kind {
	case core.GreedyLRUPolicy:
		return core.Config{Kind: core.GreedyLRUPolicy, BudgetFraction: 0.2}
	case core.GreedyLFUPolicy:
		return core.Config{Kind: core.GreedyLFUPolicy, BudgetFraction: 0.2}
	case core.ElephantTrapPolicy:
		return core.DefaultConfig()
	case core.ScarlettPolicy:
		// Same 20% storage budget as the DARE arms. Scarlett's rounds are
		// coarse by design (hours on a day-scale trace); our replay
		// compresses a day into tens of seconds, so a 15 s epoch
		// corresponds to a few-hour production round.
		return core.Config{Kind: core.ScarlettPolicy, BudgetFraction: 0.2, Epoch: 15, AccessesPerReplica: 4, MaxExtraReplicas: 16}
	default:
		return core.Config{Kind: core.NonePolicy}
	}
}

// WorkloadByName builds the paper's workloads ("wl1" or "wl2").
func WorkloadByName(name string, seed uint64) (*workload.Workload, error) {
	switch name {
	case "wl1":
		return workload.WL1(seed), nil
	case "wl2":
		return workload.WL2(seed), nil
	}
	return nil, fmt.Errorf("runner: unknown workload %q (want wl1|wl2)", name)
}
