package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/mapreduce"
	"dare/internal/stats"
	"dare/internal/workload"
)

// OutputBoundRow splits the §V-C observation by job class: "We believe
// this is due to a mixture of input-bound and output-bound tasks in the
// trace. Dynamic replication does not expedite output-bound tasks, whose
// turnaround time is dominated by output processing."
type OutputBoundRow struct {
	Class string // "input-bound" or "output-bound"
	Jobs  int
	// VanillaGMTT and DareGMTT are the class's geometric-mean service
	// time (launch to finish) under each policy; ReductionPercent the
	// improvement.
	VanillaGMTT, DareGMTT float64
	ReductionPercent      float64
}

// OutputBound replays wl2 under FIFO with and without DARE and reports
// per-class turnaround gains. A job is output-bound when its output volume
// is at least its input volume (the ~1.2× transformation class of the
// generator's bimodal output-ratio mixture).
func OutputBound(jobs int, seed uint64) ([]OutputBoundRow, error) {
	wl := truncate(workload.WL2(seed), jobs)
	kinds := []core.PolicyKind{core.NonePolicy, core.GreedyLRUPolicy}
	opts := make([]Options, len(kinds))
	for i, kind := range kinds {
		opts[i] = Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(kind),
			Seed:      seed,
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: output-bound/%s", kinds[i])
	})
	if err != nil {
		return nil, err
	}
	results := map[core.PolicyKind][]mapreduce.Result{}
	for i, kind := range kinds {
		results[kind] = outs[i].Results
	}

	classify := func(r mapreduce.Result) string {
		if r.OutputBlocks >= r.NumMaps {
			return "output-bound"
		}
		return "input-bound"
	}
	classes := []string{"input-bound", "output-bound"}
	var rows []OutputBoundRow
	for _, class := range classes {
		// Service time (launch -> finish) isolates the per-job effect from
		// the shared queueing delay, which DARE shortens for every class
		// alike on a loaded cluster.
		var vanTT, dareTT []float64
		van := results[core.NonePolicy]
		dare := results[core.GreedyLRUPolicy]
		for i := range van {
			if classify(van[i]) != class {
				continue
			}
			vanTT = append(vanTT, van[i].ServiceTime())
			dareTT = append(dareTT, dare[i].ServiceTime())
		}
		row := OutputBoundRow{Class: class, Jobs: len(vanTT)}
		if len(vanTT) > 0 {
			row.VanillaGMTT = geomean(vanTT)
			row.DareGMTT = geomean(dareTT)
			row.ReductionPercent = (row.VanillaGMTT - row.DareGMTT) / row.VanillaGMTT * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func geomean(xs []float64) float64 {
	return stats.GeometricMean(xs)
}

// RenderOutputBound prints the per-class comparison.
func RenderOutputBound(rows []OutputBoundRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %6s %14s %12s %12s\n", "class", "jobs", "vanilla-gmtt", "dare-gmtt", "reduction%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %14.2f %12.2f %12.1f\n", r.Class, r.Jobs, r.VanillaGMTT, r.DareGMTT, r.ReductionPercent)
	}
	b.WriteString("(wl2, FIFO, geometric-mean service time; output-bound = output >= input, §V-C)\n")
	return b.String()
}
