package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

func streamOpts() Options {
	return Options{
		Profile:   config.CCT(),
		Scheduler: "fifo",
		Policy:    PolicyFor(core.ElephantTrapPolicy),
		Seed:      5,
	}
}

func streamSpec() StreamRunSpec {
	return StreamRunSpec{
		Gen:              workload.GenConfig{Name: "wl1", Seed: 5, MeanInterarrival: 0.8},
		DiurnalAmplitude: 0.4,
		DiurnalPeriod:    40,
		Window:           5,
		Horizon:          30,
	}
}

// runStreamBaseline executes an uninterrupted service run with both sinks
// attached and no checkpointing.
func runStreamBaseline(t *testing.T) ([]byte, []byte, []byte) {
	t.Helper()
	var log, report bytes.Buffer
	opts := streamOpts()
	opts.EventLog = &log
	out, err := RunStream(opts, streamSpec(), &report, CheckpointSpec{})
	if err != nil {
		t.Fatal(err)
	}
	return outputJSON(t, out), log.Bytes(), report.Bytes()
}

// TestStreamDeterminism: two identical service runs produce byte-equal
// output, event trace, and report stream.
func TestStreamDeterminism(t *testing.T) {
	o1, l1, r1 := runStreamBaseline(t)
	o2, l2, r2 := runStreamBaseline(t)
	if !bytes.Equal(o1, o2) {
		t.Error("stream runs with identical spec produced different outputs")
	}
	if !bytes.Equal(l1, l2) {
		t.Error("stream runs with identical spec produced different event traces")
	}
	if !bytes.Equal(r1, r2) {
		t.Error("stream runs with identical spec produced different reports")
	}
	if len(r1) == 0 {
		t.Fatal("stream run emitted no report lines")
	}
	// Report lines must be valid JSONL with strictly increasing windows.
	lines := strings.Split(strings.TrimSuffix(string(r1), "\n"), "\n")
	prev := -1
	for _, ln := range lines {
		var rec StreamReportLine
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("bad report line %q: %v", ln, err)
		}
		if rec.Window <= prev {
			t.Fatalf("report windows not increasing: %d after %d", rec.Window, prev)
		}
		prev = rec.Window
	}
}

// TestStreamHorizonDrain: generation stops at the horizon and every
// submitted job still completes — the Output covers the full drained run.
func TestStreamHorizonDrain(t *testing.T) {
	var log bytes.Buffer
	opts := streamOpts()
	opts.EventLog = &log
	out, err := RunStream(opts, streamSpec(), nil, CheckpointSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Summary.Jobs == 0 {
		t.Fatal("horizon run submitted no jobs")
	}
	if out.Summary.Makespan <= 0 {
		t.Fatal("horizon run has no makespan; jobs did not drain")
	}
}

// TestStreamKillAndResumeDifferential is the service-mode tentpole
// contract: a streaming run killed after a checkpoint and resumed
// produces byte-identical Output, event trace, AND report stream vs the
// uninterrupted run — including the regenerated arrivals.
func TestStreamKillAndResumeDifferential(t *testing.T) {
	wantOut, wantLog, wantReport := runStreamBaseline(t)

	path := filepath.Join(t.TempDir(), "svc.ckpt")
	hook, crashErr := crashAfter(2)
	opts := streamOpts()
	opts.EventLog = &bytes.Buffer{}
	_, err := RunStream(opts, streamSpec(), &bytes.Buffer{}, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook})
	if !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}

	var log, report bytes.Buffer
	out, err := ResumeStream(path, &log, &report, CheckpointSpec{Path: path, Every: 300})
	if err != nil {
		t.Fatal(err)
	}
	if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
		t.Errorf("resumed stream output diverges\nresumed: %s\nwant:    %s", got, wantOut)
	}
	if !bytes.Equal(log.Bytes(), wantLog) {
		t.Errorf("resumed stream event trace diverges (%d vs %d bytes)", log.Len(), len(wantLog))
	}
	if !bytes.Equal(report.Bytes(), wantReport) {
		t.Errorf("resumed stream report diverges (%d vs %d bytes)\nresumed: %s\nwant:    %s",
			report.Len(), len(wantReport), report.Bytes(), wantReport)
	}
}

// TestResumeRejectsWrongMode: batch checkpoints refuse ResumeStream and
// stream checkpoints refuse Resume, each with a clear error.
func TestResumeRejectsWrongMode(t *testing.T) {
	// Stream checkpoint → Resume.
	path := filepath.Join(t.TempDir(), "svc.ckpt")
	hook, crashErr := crashAfter(1)
	opts := streamOpts()
	opts.EventLog = &bytes.Buffer{}
	if _, err := RunStream(opts, streamSpec(), &bytes.Buffer{}, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook}); !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}
	if _, err := Resume(path, &bytes.Buffer{}, CheckpointSpec{Path: path}); err == nil || !strings.Contains(err.Error(), "ResumeStream") {
		t.Errorf("Resume on stream checkpoint: want ResumeStream hint, got %v", err)
	}

	// Batch checkpoint → ResumeStream.
	bpath := filepath.Join(t.TempDir(), "batch.ckpt")
	bhook, bcrash := crashAfter(1)
	bopts := durableScenarios()[0].opts()
	bopts.EventLog = &bytes.Buffer{}
	if _, err := RunCheckpointed(bopts, CheckpointSpec{Path: bpath, Every: 300, AfterCheckpoint: bhook}); !errors.Is(err, bcrash) {
		t.Fatalf("expected simulated crash, got %v", err)
	}
	if _, err := ResumeStream(bpath, &bytes.Buffer{}, &bytes.Buffer{}, CheckpointSpec{Path: bpath}); err == nil || !strings.Contains(err.Error(), "use Resume") {
		t.Errorf("ResumeStream on batch checkpoint: want use-Resume hint, got %v", err)
	}
}

// TestStreamValidation: option families incompatible with service mode
// are rejected up front.
func TestStreamValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options, *StreamRunSpec)
	}{
		{"zero-window", func(o *Options, s *StreamRunSpec) { s.Window = 0 }},
		{"horizon-lt-window", func(o *Options, s *StreamRunSpec) { s.Horizon = 1 }},
		{"explicit-workload", func(o *Options, s *StreamRunSpec) { o.Workload = truncate(workload.WL1(1), 5) }},
		{"failure-schedule", func(o *Options, s *StreamRunSpec) { o.Failures = []NodeFailure{{Node: 1, At: 2}} }},
		{"churn", func(o *Options, s *StreamRunSpec) { o.Churn = &ChurnSpec{MTTF: 10, MTTR: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := streamOpts()
			scfg := streamSpec()
			tc.mut(&opts, &scfg)
			if _, err := RunStream(opts, scfg, nil, CheckpointSpec{}); err == nil {
				t.Error("expected validation error, got nil")
			}
		})
	}
}
