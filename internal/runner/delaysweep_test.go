package runner

import (
	"strings"
	"testing"
)

// TestDelaySweepComplementarity locks in the §VI synergy: at every
// patience level DARE's locality is at least vanilla's, and DARE reaches
// vanilla's high-patience locality with at most half the patience.
func TestDelaySweepComplementarity(t *testing.T) {
	rows, err := DelaySweep(400, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	van := map[int]DelayRow{}
	et := map[int]DelayRow{}
	for _, r := range rows {
		if r.Policy == "vanilla" {
			van[r.MaxSkips] = r
		} else {
			et[r.MaxSkips] = r
		}
	}
	for _, skips := range []int{1, 2, 4, 8, 16, 32} {
		if et[skips].Locality < van[skips].Locality-0.02 {
			t.Fatalf("skips=%d: DARE locality %.3f below vanilla %.3f", skips, et[skips].Locality, van[skips].Locality)
		}
	}
	// DARE at patience 4 matches (or beats) vanilla at patience 8: the
	// replicas halve the waiting needed.
	if et[4].Locality < van[8].Locality-0.03 {
		t.Fatalf("DARE@4 %.3f does not reach vanilla@8 %.3f", et[4].Locality, van[8].Locality)
	}
	// Vanilla locality must grow with patience (delay scheduling works).
	if van[32].Locality <= van[1].Locality {
		t.Fatalf("vanilla locality flat across patience: %.3f -> %.3f", van[1].Locality, van[32].Locality)
	}
}

func TestDelaySweepDeterministic(t *testing.T) {
	a, err := DelaySweep(120, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DelaySweep(120, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestRenderDelaySweep(t *testing.T) {
	out := RenderDelaySweep([]DelayRow{{MaxSkips: 4, Policy: "vanilla", Locality: 0.5, GMTT: 5}})
	if !strings.Contains(out, "max-skips") || !strings.Contains(out, "vanilla") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
