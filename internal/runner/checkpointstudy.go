package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/snapshot"
	"dare/internal/stats"
	"dare/internal/workload"
)

// CheckpointRow is one arm of the checkpoint-overhead study (A19): the
// same CCT/wl1/FIFO/ElephantTrap run unarmed, armed at two cadences, and
// killed-then-resumed, with wall clock, durable-write counts, and
// byte-identity of the Output and event trace against the unarmed run.
type CheckpointRow struct {
	Arm string `json:"arm"`
	// WallSeconds is the arm's wall clock; for the kill+resume arm it is
	// the resume alone (replay + live tail), the recovery cost a crashed
	// service pays.
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of simulation events the arm processed.
	Events uint64 `json:"events"`
	// Checkpoints counts durable generations written; SnapshotBytes is the
	// size of one generation on disk.
	Checkpoints   int   `json:"checkpoints,omitempty"`
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// Identical reports whether the arm's Output JSON and JSONL event
	// trace are byte-identical to the unarmed baseline's.
	Identical bool `json:"identical"`
}

// CheckpointStudy measures what durable checkpoints cost (A19): run
// overhead at two cadences and the wall-clock price of crash-recovery by
// replay, each arm verified byte-identical to the unarmed baseline.
func CheckpointStudy(jobs int, seed uint64) ([]CheckpointRow, error) {
	opts := func(log *bytes.Buffer) Options {
		wl := workload.WL1(seed)
		if jobs > 0 && jobs < len(wl.Jobs) {
			wl.Jobs = wl.Jobs[:jobs]
		}
		return Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(core.ElephantTrapPolicy),
			Seed:      seed,
			EventLog:  log,
		}
	}
	outJSON := func(out *Output) ([]byte, error) { return json.Marshal(out) }

	dir, err := os.MkdirTemp("", "dare-ckpt-study")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Baseline: unarmed.
	var baseLog bytes.Buffer
	start := time.Now()
	events := TotalEventsProcessed()
	baseOut, err := Run(opts(&baseLog))
	if err != nil {
		return nil, err
	}
	baseJSON, err := outJSON(baseOut)
	if err != nil {
		return nil, err
	}
	rows := []CheckpointRow{{
		Arm:         "unarmed",
		WallSeconds: time.Since(start).Seconds(),
		Events:      TotalEventsProcessed() - events,
		Identical:   true,
	}}
	totalEvts := rows[0].Events

	// Armed arms: a tight cadence (worst case) and a relaxed one.
	cadences := []uint64{totalEvts/20 + 1, totalEvts/4 + 1}
	labels := []string{"armed-5%", "armed-25%"}
	var ckpts int
	for i, every := range cadences {
		path := filepath.Join(dir, fmt.Sprintf("arm%d.ckpt", i))
		var log bytes.Buffer
		n := 0
		start = time.Now()
		events = TotalEventsProcessed()
		out, err := RunCheckpointed(opts(&log), CheckpointSpec{
			Path: path, Every: every,
			AfterCheckpoint: func(done int) error { n = done; return nil },
		})
		if err != nil {
			return nil, err
		}
		j, err := outJSON(out)
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CheckpointRow{
			Arm:           labels[i],
			WallSeconds:   time.Since(start).Seconds(),
			Events:        TotalEventsProcessed() - events,
			Checkpoints:   n,
			SnapshotBytes: st.Size(),
			Identical:     bytes.Equal(j, baseJSON) && bytes.Equal(log.Bytes(), baseLog.Bytes()),
		})
		if i == 0 {
			ckpts = n
		}
	}

	// Kill at the midpoint checkpoint of the tight-cadence arm and resume:
	// the measured wall clock is the crash-recovery price (replay to the
	// cut plus the live tail).
	if ckpts < 2 {
		return nil, fmt.Errorf("runner: checkpoint study needs >= 2 checkpoints to stage a mid-run kill, got %d", ckpts)
	}
	crashErr := fmt.Errorf("staged crash")
	killPath := filepath.Join(dir, "kill.ckpt")
	if _, err := RunCheckpointed(opts(&bytes.Buffer{}), CheckpointSpec{
		Path: killPath, Every: cadences[0],
		AfterCheckpoint: func(done int) error {
			if done >= ckpts/2 {
				return crashErr
			}
			return nil
		},
	}); err != crashErr {
		return nil, fmt.Errorf("runner: staged crash did not fire: %v", err)
	}
	var resumeLog bytes.Buffer
	start = time.Now()
	events = TotalEventsProcessed()
	out, err := Resume(killPath, &resumeLog, CheckpointSpec{Path: killPath, Every: cadences[0]})
	if err != nil {
		return nil, err
	}
	j, err := outJSON(out)
	if err != nil {
		return nil, err
	}
	rows = append(rows, CheckpointRow{
		Arm:         fmt.Sprintf("kill@%d+resume", ckpts/2),
		WallSeconds: time.Since(start).Seconds(),
		Events:      TotalEventsProcessed() - events,
		Identical:   bytes.Equal(j, baseJSON) && bytes.Equal(resumeLog.Bytes(), baseLog.Bytes()),
	})
	return rows, nil
}

// ResumeLadderRow is one rung of the A19 resume-scaling ladder: the same
// scenario at growing run lengths, killed at a fraction of its
// checkpoints, then resumed in both modes with the interrupt line already
// raised — the measured wall clock is pure recovery latency (rebuild +
// restore-to-cut + one final checkpoint), no live tail. Replay recovery
// grows with the history replayed; state recovery decodes the image and
// stays flat.
type ResumeLadderRow struct {
	Jobs    int `json:"jobs"`
	KillPct int `json:"kill_pct"`
	// CutEvents is the processed-event count at the resumed cut — the
	// history a replay resume must re-execute.
	CutEvents     uint64  `json:"cut_events"`
	ReplaySeconds float64 `json:"replay_seconds"`
	StateSeconds  float64 `json:"state_seconds"`
	// Speedup is ReplaySeconds/StateSeconds.
	Speedup float64 `json:"speedup"`
}

// copyCheckpoint clones a checkpoint file so each resume mode starts from
// the pristine generation (a resume's final interrupt checkpoint rotates
// the file it resumed from).
func copyCheckpoint(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// ResumeLadder measures crash-recovery latency vs run length (A19): for
// each length and kill point, stage a crash, then resume with the
// interrupt line pre-raised so the run stops at the first live boundary —
// isolating O(history) replay vs O(state) restore. Each mode is timed
// best-of-3 from its own copy of the checkpoint.
func ResumeLadder(seed uint64) ([]ResumeLadderRow, error) {
	dir, err := os.MkdirTemp("", "dare-resume-ladder")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// A big-job trace: few jobs, each carrying 150-250 maps. Replayable
	// history (every task launch, read, and completion) grows with total
	// work, while the live state at a cut stays close to O(jobs) — the
	// separation the ladder is built to expose. A plain wl1 trace at these
	// event counts would need tens of thousands of jobs, and the O(jobs)
	// reconstruction cost both modes share would drown the contrast.
	mk := func(n int) Options {
		return Options{
			Profile: config.CCT(),
			Workload: workload.Generate(workload.GenConfig{
				Name: "wl1", Seed: seed, NumJobs: n,
				SmallMaps:        stats.Uniform{Lo: 150, Hi: 250},
				MeanInterarrival: 2.0,
			}),
			Scheduler: "fifo",
			Policy:    PolicyFor(core.ElephantTrapPolicy),
			Seed:      seed,
		}
	}
	resume := func(path string, every uint64, mode ResumeMode) (float64, error) {
		best := math.Inf(1)
		for try := 0; try < 3; try++ {
			work := filepath.Join(dir, fmt.Sprintf("work-%s.ckpt", mode))
			if err := copyCheckpoint(path, work); err != nil {
				return 0, err
			}
			os.Remove(work + ".prev")
			var stop atomic.Bool
			stop.Store(true) // already raised: stop at the first live boundary
			start := time.Now()
			_, err := ResumeWithMode(work, nil, CheckpointSpec{Path: work, Every: every, Interrupt: &stop}, mode)
			el := time.Since(start).Seconds()
			if !errors.Is(err, ErrInterrupted) {
				return 0, fmt.Errorf("runner: ladder resume (%s): want ErrInterrupted, got %v", mode, err)
			}
			if el < best {
				best = el
			}
		}
		return best, nil
	}

	const slots = 20 // checkpoints per run: kill points land on exact slots
	var rows []ResumeLadderRow
	for _, n := range []int{800, 1600, 3200, 6400} {
		// Probe the run length in events to derive the cadence.
		before := TotalEventsProcessed()
		if _, err := Run(mk(n)); err != nil {
			return nil, err
		}
		every := (TotalEventsProcessed()-before)/slots + 1

		for _, pct := range []int{25, 50, 75} {
			killAt := slots * pct / 100
			path := filepath.Join(dir, fmt.Sprintf("l%d-k%d.ckpt", n, pct))
			crashErr := fmt.Errorf("staged crash")
			if _, err := RunCheckpointed(mk(n), CheckpointSpec{
				Path: path, Every: every,
				AfterCheckpoint: func(done int) error {
					if done >= killAt {
						return crashErr
					}
					return nil
				},
			}); !errors.Is(err, crashErr) {
				return nil, fmt.Errorf("runner: ladder staged crash did not fire: %v", err)
			}
			f, _, err := snapshot.LoadFile(path)
			if err != nil {
				return nil, err
			}
			if !hasStateImage(f, false) {
				return nil, fmt.Errorf("runner: ladder checkpoint at jobs=%d pct=%d carries no state image", n, pct)
			}
			_, cur, _, err := decodeCheckpoint(f)
			if err != nil {
				return nil, err
			}
			replaySecs, err := resume(path, every, ResumeReplay)
			if err != nil {
				return nil, err
			}
			stateSecs, err := resume(path, every, ResumeState)
			if err != nil {
				return nil, err
			}
			row := ResumeLadderRow{
				Jobs: n, KillPct: pct, CutEvents: cur.Processed,
				ReplaySeconds: replaySecs, StateSeconds: stateSecs,
			}
			if stateSecs > 0 {
				row.Speedup = replaySecs / stateSecs
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderResumeLadder formats the resume-scaling ladder.
func RenderResumeLadder(rows []ResumeLadderRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %6s %12s %12s %12s %9s\n", "jobs", "kill%", "cut events", "replay(s)", "state(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %6d %12d %12.4f %12.4f %8.1fx\n",
			r.Jobs, r.KillPct, r.CutEvents, r.ReplaySeconds, r.StateSeconds, r.Speedup)
	}
	b.WriteString("\nrecovery latency only (interrupt pre-raised): rebuild + restore-to-cut + final checkpoint\n")
	b.WriteString("replay grows with the history replayed; state restore decodes the image and stays flat\n")
	return b.String()
}

// RenderCheckpoint formats the checkpoint study's rows.
func RenderCheckpoint(rows []CheckpointRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %6s %10s %10s\n", "arm", "wall(s)", "events", "ckpts", "snap(B)", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10.3f %10d %6d %10d %10v\n",
			r.Arm, r.WallSeconds, r.Events, r.Checkpoints, r.SnapshotBytes, r.Identical)
	}
	b.WriteString("\nidentical = Output JSON and JSONL event trace byte-equal to the unarmed run\n")
	b.WriteString("kill+resume wall clock = replay to the cut + live tail (crash-recovery price)\n")
	return b.String()
}
