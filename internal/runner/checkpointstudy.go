package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// CheckpointRow is one arm of the checkpoint-overhead study (A19): the
// same CCT/wl1/FIFO/ElephantTrap run unarmed, armed at two cadences, and
// killed-then-resumed, with wall clock, durable-write counts, and
// byte-identity of the Output and event trace against the unarmed run.
type CheckpointRow struct {
	Arm string `json:"arm"`
	// WallSeconds is the arm's wall clock; for the kill+resume arm it is
	// the resume alone (replay + live tail), the recovery cost a crashed
	// service pays.
	WallSeconds float64 `json:"wall_seconds"`
	// Events is the number of simulation events the arm processed.
	Events uint64 `json:"events"`
	// Checkpoints counts durable generations written; SnapshotBytes is the
	// size of one generation on disk.
	Checkpoints   int   `json:"checkpoints,omitempty"`
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
	// Identical reports whether the arm's Output JSON and JSONL event
	// trace are byte-identical to the unarmed baseline's.
	Identical bool `json:"identical"`
}

// CheckpointStudy measures what durable checkpoints cost (A19): run
// overhead at two cadences and the wall-clock price of crash-recovery by
// replay, each arm verified byte-identical to the unarmed baseline.
func CheckpointStudy(jobs int, seed uint64) ([]CheckpointRow, error) {
	opts := func(log *bytes.Buffer) Options {
		wl := workload.WL1(seed)
		if jobs > 0 && jobs < len(wl.Jobs) {
			wl.Jobs = wl.Jobs[:jobs]
		}
		return Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(core.ElephantTrapPolicy),
			Seed:      seed,
			EventLog:  log,
		}
	}
	outJSON := func(out *Output) ([]byte, error) { return json.Marshal(out) }

	dir, err := os.MkdirTemp("", "dare-ckpt-study")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Baseline: unarmed.
	var baseLog bytes.Buffer
	start := time.Now()
	events := TotalEventsProcessed()
	baseOut, err := Run(opts(&baseLog))
	if err != nil {
		return nil, err
	}
	baseJSON, err := outJSON(baseOut)
	if err != nil {
		return nil, err
	}
	rows := []CheckpointRow{{
		Arm:         "unarmed",
		WallSeconds: time.Since(start).Seconds(),
		Events:      TotalEventsProcessed() - events,
		Identical:   true,
	}}
	totalEvts := rows[0].Events

	// Armed arms: a tight cadence (worst case) and a relaxed one.
	cadences := []uint64{totalEvts/20 + 1, totalEvts/4 + 1}
	labels := []string{"armed-5%", "armed-25%"}
	var ckpts int
	for i, every := range cadences {
		path := filepath.Join(dir, fmt.Sprintf("arm%d.ckpt", i))
		var log bytes.Buffer
		n := 0
		start = time.Now()
		events = TotalEventsProcessed()
		out, err := RunCheckpointed(opts(&log), CheckpointSpec{
			Path: path, Every: every,
			AfterCheckpoint: func(done int) error { n = done; return nil },
		})
		if err != nil {
			return nil, err
		}
		j, err := outJSON(out)
		if err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		rows = append(rows, CheckpointRow{
			Arm:           labels[i],
			WallSeconds:   time.Since(start).Seconds(),
			Events:        TotalEventsProcessed() - events,
			Checkpoints:   n,
			SnapshotBytes: st.Size(),
			Identical:     bytes.Equal(j, baseJSON) && bytes.Equal(log.Bytes(), baseLog.Bytes()),
		})
		if i == 0 {
			ckpts = n
		}
	}

	// Kill at the midpoint checkpoint of the tight-cadence arm and resume:
	// the measured wall clock is the crash-recovery price (replay to the
	// cut plus the live tail).
	if ckpts < 2 {
		return nil, fmt.Errorf("runner: checkpoint study needs >= 2 checkpoints to stage a mid-run kill, got %d", ckpts)
	}
	crashErr := fmt.Errorf("staged crash")
	killPath := filepath.Join(dir, "kill.ckpt")
	if _, err := RunCheckpointed(opts(&bytes.Buffer{}), CheckpointSpec{
		Path: killPath, Every: cadences[0],
		AfterCheckpoint: func(done int) error {
			if done >= ckpts/2 {
				return crashErr
			}
			return nil
		},
	}); err != crashErr {
		return nil, fmt.Errorf("runner: staged crash did not fire: %v", err)
	}
	var resumeLog bytes.Buffer
	start = time.Now()
	events = TotalEventsProcessed()
	out, err := Resume(killPath, &resumeLog, CheckpointSpec{Path: killPath, Every: cadences[0]})
	if err != nil {
		return nil, err
	}
	j, err := outJSON(out)
	if err != nil {
		return nil, err
	}
	rows = append(rows, CheckpointRow{
		Arm:         fmt.Sprintf("kill@%d+resume", ckpts/2),
		WallSeconds: time.Since(start).Seconds(),
		Events:      TotalEventsProcessed() - events,
		Identical:   bytes.Equal(j, baseJSON) && bytes.Equal(resumeLog.Bytes(), baseLog.Bytes()),
	})
	return rows, nil
}

// RenderCheckpoint formats the checkpoint study's rows.
func RenderCheckpoint(rows []CheckpointRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %6s %10s %10s\n", "arm", "wall(s)", "events", "ckpts", "snap(B)", "identical")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10.3f %10d %6d %10d %10v\n",
			r.Arm, r.WallSeconds, r.Events, r.Checkpoints, r.SnapshotBytes, r.Identical)
	}
	b.WriteString("\nidentical = Output JSON and JSONL event trace byte-equal to the unarmed run\n")
	b.WriteString("kill+resume wall clock = replay to the cut + live tail (crash-recovery price)\n")
	return b.String()
}
