package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/scheduler"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// AvailabilityRow quantifies the paper's §IV-B remark that DARE replicas
// are first-order replicas that "also contribute to increasing
// availability of the data in the presence of failures": after killing a
// batch of nodes mid-run (repairs disabled, so the pre-repair window is
// what is measured), what fraction of blocks — and of *access-weighted*
// data — is still readable?
type AvailabilityRow struct {
	Policy      string
	FailedNodes int
	// BlockAvailability is the unweighted fraction of blocks with at
	// least one live replica after the failures.
	BlockAvailability float64
	// WeightedAvailability weights each block by its workload popularity:
	// DARE concentrates extra replicas on exactly the blocks users read,
	// so this is where its availability contribution shows.
	WeightedAvailability float64
	// DynamicReplicas is the number of DARE replicas alive at failure
	// time (zero for vanilla).
	DynamicReplicas int64
}

// Availability runs wl1 under vanilla and DARE, kills failNodes nodes at
// 60% of the arrival span (repairs disabled), and reports pre-repair
// availability. With replication factor 2 the failure batch actually
// bites; factor 3 on a 19-node cluster would need 3 co-located failures
// to lose anything.
func Availability(jobs, failNodes int, seed uint64) ([]AvailabilityRow, error) {
	if jobs <= 0 {
		jobs = 500
	}
	if failNodes <= 0 {
		failNodes = 4
	}
	wl := truncate(workload.WL1(seed), jobs)
	kinds := []core.PolicyKind{core.NonePolicy, core.GreedyLRUPolicy, core.ElephantTrapPolicy}
	rows := make([]AvailabilityRow, len(kinds))
	err := forEachIndex(len(kinds), func(i int) error {
		row, err := availabilityRun(wl, kinds[i], failNodes, seed)
		if err != nil {
			return fmt.Errorf("runner: availability/%s: %w", kinds[i], err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func availabilityRun(wl *workload.Workload, kind core.PolicyKind, failNodes int, seed uint64) (AvailabilityRow, error) {
	profile := config.CCT()
	// Factor 2 so a small failure batch can actually make blocks
	// unavailable; the comparison is between equal-factor runs.
	profile.ReplicationFactor = 2
	cluster, err := mapreduce.NewCluster(profile, seed)
	if err != nil {
		return AvailabilityRow{}, err
	}
	tracker, err := mapreduce.NewTracker(cluster, wl, scheduler.NewFIFO())
	if err != nil {
		return AvailabilityRow{}, err
	}
	if kind != core.NonePolicy {
		pcfg := PolicyFor(kind)
		pcfg.AnnounceDelay = profile.HeartbeatInterval
		pcfg.LazyDeleteDelay = profile.HeartbeatInterval
		mgr := core.NewManager(pcfg, cluster.NN, stats.NewRNG(seed).Split(0xFA11), cluster.Eng.Defer)
		cluster.Bus.Subscribe(mgr)
	}
	// Fail a deterministic batch at 60% of the arrival span, after DARE
	// has spread replicas; repairs disabled to observe the raw exposure.
	tracker.DisableRepair()
	failAt := wl.Jobs[len(wl.Jobs)-1].Arrival * 0.6
	picker := stats.NewRNG(seed).Split(0xDEAD)
	perm := picker.Perm(profile.Slaves)
	for i := 0; i < failNodes && i < len(perm); i++ {
		tracker.ScheduleNodeFailure(topology.NodeID(perm[i]), failAt+0.01*float64(i))
	}

	// Capture the dynamic-replica census just before the failure.
	var dynAtFailure int64
	cluster.Eng.At(failAt-1e-6, func() {
		dynAtFailure = countDynamic(cluster.NN)
	})

	if _, err := tracker.Run(); err != nil {
		return AvailabilityRow{}, err
	}

	avail, total := cluster.NN.Availability()
	weights := blockWeights(cluster.NN, tracker.Files(), wl)
	return AvailabilityRow{
		Policy:               kind.String(),
		FailedNodes:          failNodes,
		BlockAvailability:    float64(avail) / float64(total),
		WeightedAvailability: cluster.NN.WeightedAvailability(weights),
		DynamicReplicas:      dynAtFailure,
	}, nil
}

func countDynamic(nn *dfs.NameNode) int64 {
	var total int64
	for n := 0; n < nn.N(); n++ {
		node := topology.NodeID(n)
		for _, b := range nn.NodeBlocks(node) {
			if k, ok := nn.ReplicaKindAt(b, node); ok && k == dfs.Dynamic {
				total++
			}
		}
	}
	return total
}

// blockWeights maps every block to its workload access count.
func blockWeights(nn *dfs.NameNode, files []*dfs.File, wl *workload.Workload) map[dfs.BlockID]float64 {
	pop := wl.BlockAccessCounts()
	weights := make(map[dfs.BlockID]float64)
	for fi, f := range files {
		if fi >= len(pop) {
			break
		}
		for k, b := range f.Blocks {
			if k < len(pop[fi]) {
				weights[b] = float64(pop[fi][k])
			}
		}
	}
	return weights
}

// RenderAvailability prints the availability comparison.
func RenderAvailability(rows []AvailabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %7s %12s %15s %13s\n", "policy", "failed", "block-avail", "weighted-avail", "dyn-replicas")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %7d %12.4f %15.4f %13d\n",
			r.Policy, r.FailedNodes, r.BlockAvailability, r.WeightedAvailability, r.DynamicReplicas)
	}
	b.WriteString("(replication factor 2; failures at 60% of the arrival span, repairs disabled)\n")
	return b.String()
}
