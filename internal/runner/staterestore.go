package runner

import (
	"fmt"
	"io"

	"dare/internal/core"
	"dare/internal/event"
	"dare/internal/sim"
	"dare/internal/snapshot"
	"dare/internal/stats"
	"dare/internal/workload"
)

// ResumeMode selects how Resume/ResumeStream rebuild a run's mutable
// state from a checkpoint.
type ResumeMode string

const (
	// ResumeReplay reconstructs the run from its spec and replays the
	// event history from genesis to the cut — O(history). It is the
	// differential oracle state-mode restores are verified against.
	ResumeReplay ResumeMode = "replay"
	// ResumeState decodes the checkpoint's direct state image and
	// re-enqueues the pending-event set — O(state), independent of how
	// long the run had executed. Checkpoints without an image (older
	// files, untaggable pending events, an RNG backend without stream
	// state access) fall back to replay automatically.
	ResumeState ResumeMode = "state"
)

// ParseResumeMode maps a CLI flag value to a ResumeMode; the empty
// string means the default, ResumeState.
func ParseResumeMode(s string) (ResumeMode, error) {
	switch ResumeMode(s) {
	case "":
		return ResumeState, nil
	case ResumeReplay, ResumeState:
		return ResumeMode(s), nil
	}
	return "", fmt.Errorf("runner: unknown resume mode %q (want %q or %q)", s, ResumeReplay, ResumeState)
}

// Event-tag kind ranges. The mapreduce layer owns 1–63 and the core
// policy layer 64–79 (see their tag declarations); the runner's stream
// driver owns 80–95.
const TagStreamWindow uint16 = 80

// streamWindowTag marks the service-mode window-boundary event. The
// closure is rebuilt from the stream driver itself; the boundary time
// rides the event coordinates, so the payload is empty.
type streamWindowTag struct{}

func (streamWindowTag) TagKind() uint16           { return TagStreamWindow }
func (streamWindowTag) EncodeTag(e *snapshot.Enc) {}

// ResumeInfo describes a checkpoint so a CLI can prepare the right sinks
// before resuming: a state-mode resume appends the post-cut suffix to the
// dead process's files (truncated to the recorded byte positions), while
// a replay rewrites both streams from genesis.
type ResumeInfo struct {
	// Stream reports a service-mode checkpoint (resume with ResumeStream).
	Stream bool
	// StateResumable reports that the checkpoint carries a direct state
	// image this build can decode — ResumeState will not fall back.
	StateResumable bool
	// EventBytes/ReportBytes are the output-stream byte positions at the
	// cut (the prefix the original process had already written).
	EventBytes  int64
	ReportBytes int64
}

// InspectCheckpoint loads the checkpoint at path (falling back to the
// .prev generation when torn) and describes how it can be resumed.
func InspectCheckpoint(path string) (*ResumeInfo, error) {
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	spec, cur, _, err := decodeCheckpoint(f)
	if err != nil {
		return nil, err
	}
	stream := spec.Stream != nil
	return &ResumeInfo{
		Stream:         stream,
		StateResumable: hasStateImage(f, stream) && stats.StateSerializable(),
		EventBytes:     cur.EventBytes,
		ReportBytes:    cur.ReportBytes,
	}, nil
}

// stateRestore is a pending state-mode restore, applied by durable.drive
// at first entry — after construction and genesis scheduling, before any
// event processes.
type stateRestore struct {
	cursor cursorRec
	table  *snapshot.StateTable
	f      *snapshot.File
}

// hasStateImage reports whether the checkpoint carries every direct-state
// section this run shape needs.
func hasStateImage(f *snapshot.File, stream bool) bool {
	ids := []string{sectionImgEngine, sectionImgDFS, sectionImgTracker, sectionImgCore, sectionImgCounts}
	if stream {
		ids = append(ids, sectionImgStream)
	}
	for _, id := range ids {
		if _, ok := f.Section(id); !ok {
			return false
		}
	}
	return true
}

// imageSections encodes the direct state image of the live run: one
// section per layer, each a self-contained byte string. Any layer that
// cannot be serialized (an untagged pending event, an RNG backend without
// stream state) fails the whole image; the caller then writes a
// replay-only checkpoint.
func (d *durable) imageSections() ([]snapshot.Section, error) {
	if !stats.StateSerializable() {
		return nil, fmt.Errorf("runner: RNG backend does not expose stream state")
	}
	rs := d.rs
	var out []snapshot.Section
	add := func(id string, enc *snapshot.Enc) {
		out = append(out, snapshot.Section{ID: id, Data: enc.Data()})
	}

	enc := snapshot.NewEnc()
	if err := rs.cluster.Eng.EncodePending(enc, d.watermark); err != nil {
		return nil, err
	}
	add(sectionImgEngine, enc)

	enc = snapshot.NewEnc()
	if err := rs.cluster.NN.EncodeState(enc); err != nil {
		return nil, err
	}
	add(sectionImgDFS, enc)

	enc = snapshot.NewEnc()
	if err := rs.tracker.EncodeState(enc); err != nil {
		return nil, err
	}
	add(sectionImgTracker, enc)

	enc = snapshot.NewEnc()
	enc.Bool(rs.mgr != nil)
	if rs.mgr != nil {
		if err := rs.mgr.EncodeState(enc); err != nil {
			return nil, err
		}
	}
	enc.Bool(rs.scar != nil)
	if rs.scar != nil {
		if err := rs.scar.EncodeState(enc); err != nil {
			return nil, err
		}
	}
	add(sectionImgCore, enc)

	if d.stream != nil {
		enc = snapshot.NewEnc()
		enc.Int(d.stream.nextWindow)
		if err := d.stream.src.EncodeState(enc); err != nil {
			return nil, err
		}
		add(sectionImgStream, enc)
	}

	enc = snapshot.NewEnc()
	counts := rs.counter.Counts()
	enc.U32(uint32(len(counts)))
	for _, v := range counts {
		enc.U64(v)
	}
	add(sectionImgCounts, enc)
	return out, nil
}

// applyState performs the O(state) restore against the freshly
// reconstructed run: jump the engine to the cut, decode each layer's
// image, re-enqueue the pending-event set, then prove the decoded state
// reproduces the checkpoint's fingerprint before the run goes live.
func (d *durable) applyState() error {
	r := d.restore
	d.restore = nil
	rs := d.rs
	eng := rs.cluster.Eng
	cur := r.cursor

	section := func(id string) (*snapshot.Dec, error) {
		data, ok := r.f.Section(id)
		if !ok {
			return nil, fmt.Errorf("%w: checkpoint image lost section %q", snapshot.ErrFormat, id)
		}
		return snapshot.NewDec(data), nil
	}
	finish := func(id string, dec *snapshot.Dec) error {
		if err := dec.Finish(); err != nil {
			return fmt.Errorf("runner: checkpoint section %q: %w", id, err)
		}
		return nil
	}

	eng.BeginRestore(cur.Now, cur.Seq, cur.Processed)

	dec, err := section(sectionImgDFS)
	if err != nil {
		return err
	}
	if err := rs.cluster.NN.DecodeState(dec); err != nil {
		return fmt.Errorf("runner: restoring DFS state: %w", err)
	}
	if err := finish(sectionImgDFS, dec); err != nil {
		return err
	}

	dec, err = section(sectionImgTracker)
	if err != nil {
		return err
	}
	if err := rs.tracker.DecodeState(dec); err != nil {
		return fmt.Errorf("runner: restoring tracker state: %w", err)
	}
	if err := finish(sectionImgTracker, dec); err != nil {
		return err
	}

	dec, err = section(sectionImgCore)
	if err != nil {
		return err
	}
	if hasMgr := dec.Bool(); hasMgr != (rs.mgr != nil) {
		return fmt.Errorf("runner: checkpoint image and rebuilt run disagree on the DARE manager (image %v, run %v)", hasMgr, rs.mgr != nil)
	}
	if rs.mgr != nil {
		if err := rs.mgr.DecodeState(dec); err != nil {
			return fmt.Errorf("runner: restoring policy state: %w", err)
		}
	}
	if hasScar := dec.Bool(); hasScar != (rs.scar != nil) {
		return fmt.Errorf("runner: checkpoint image and rebuilt run disagree on the Scarlett controller (image %v, run %v)", hasScar, rs.scar != nil)
	}
	if rs.scar != nil {
		if err := rs.scar.DecodeState(dec); err != nil {
			return fmt.Errorf("runner: restoring Scarlett state: %w", err)
		}
	}
	if err := finish(sectionImgCore, dec); err != nil {
		return err
	}

	if d.stream != nil {
		dec, err = section(sectionImgStream)
		if err != nil {
			return err
		}
		d.stream.nextWindow = dec.Int()
		if err := d.stream.src.DecodeState(dec); err != nil {
			return fmt.Errorf("runner: restoring stream generator: %w", err)
		}
		if err := finish(sectionImgStream, dec); err != nil {
			return err
		}
	}

	dec, err = section(sectionImgEngine)
	if err != nil {
		return err
	}
	if err := eng.DecodePending(dec, d.restoreEvent); err != nil {
		return fmt.Errorf("runner: restoring pending events: %w", err)
	}
	if err := finish(sectionImgEngine, dec); err != nil {
		return err
	}
	eng.FinishRestore()

	dec, err = section(sectionImgCounts)
	if err != nil {
		return err
	}
	var counts event.Counts
	if n := int(dec.U32()); n != len(counts) {
		return fmt.Errorf("runner: checkpoint image counts %d event kinds, this build has %d", n, len(counts))
	}
	for i := range counts {
		counts[i] = dec.U64()
	}
	if err := finish(sectionImgCounts, dec); err != nil {
		return err
	}
	rs.counter.RestoreCounts(counts)
	if rs.rec != nil {
		rs.rec.RestoreCounts(counts)
		if d.cw != nil {
			// Reconstruction-time events went to a throwaway sink (they are
			// the prefix the original process already wrote); arm the real
			// sink so only post-cut events reach it.
			rs.rec.RestoreSink(d.cw)
		}
	}

	// The decoded state must reproduce the fingerprint captured when the
	// checkpoint was written — same oracle the replay path verifies
	// against, so both modes prove identity to the original run.
	tab := &snapshot.StateTable{}
	rs.addState(tab)
	if d.stream != nil {
		d.stream.addState(tab)
	}
	if rows := r.table.Diff(tab); len(rows) > 0 {
		return &DivergenceError{Rows: rows}
	}

	d.done = cur.Checkpoints
	eng.SetInterrupt(d.ck.Interrupt)
	d.nextStop = eng.Processed() + d.ck.every()
	return nil
}

// restoreEvent rebuilds one tagged pending event from its image record,
// dispatching on the layer that owns the kind range.
func (d *durable) restoreEvent(kind uint16, when sim.Time, seq uint64, payload *snapshot.Dec) error {
	eng := d.rs.cluster.Eng
	switch {
	case kind >= 1 && kind < 64:
		tag, fn, err := d.rs.tracker.DecodeEvent(kind, payload)
		if err != nil {
			return err
		}
		eng.RestoreEvent(when, seq, tag, fn)
	case kind >= 64 && kind < 80:
		var (
			tag core.EventTag
			fn  func()
			err error
		)
		switch {
		case d.rs.mgr != nil:
			tag, fn, err = d.rs.mgr.DecodeEvent(kind, payload)
		case d.rs.scar != nil:
			tag, fn, err = d.rs.scar.DecodeEvent(kind, payload)
		default:
			return fmt.Errorf("runner: checkpoint image holds a policy-layer event (kind %d) but the rebuilt run has no policy", kind)
		}
		if err != nil {
			return err
		}
		eng.RestoreEvent(when, seq, tag, fn)
	case kind == TagStreamWindow:
		if d.stream == nil {
			return fmt.Errorf("runner: checkpoint image holds a stream window event but the rebuilt run is batch")
		}
		eng.RestoreEvent(when, seq, streamWindowTag{}, d.stream.window)
	default:
		return fmt.Errorf("runner: checkpoint image holds an event with unknown tag kind %d", kind)
	}
	return nil
}

// ResumeWithMode is Resume with an explicit restore strategy. In state
// mode eventLog receives only the post-cut suffix of the event trace (the
// prefix is already in the original process's log file, which the CLI
// truncates to the cut instead of from zero); in replay mode it receives
// the complete trace from genesis, exactly like Resume.
func ResumeWithMode(path string, eventLog io.Writer, ck CheckpointSpec, mode ResumeMode) (*Output, error) {
	switch mode {
	case ResumeReplay, "":
		return Resume(path, eventLog, ck)
	case ResumeState:
	default:
		return nil, fmt.Errorf("runner: unknown resume mode %q", mode)
	}
	if ck.Path == "" {
		ck.Path = path
	}
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	spec, cur, tab, err := decodeCheckpoint(f)
	if err != nil {
		return nil, err
	}
	if spec.Stream != nil {
		return nil, fmt.Errorf("runner: checkpoint %s holds a streaming run; use ResumeStream", path)
	}
	if !hasStateImage(f, false) || !stats.StateSerializable() {
		// Replay-only checkpoint (older file, untaggable event at the cut,
		// or no RNG stream access in this build): fall back to the oracle.
		return Resume(path, eventLog, ck)
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	var cw *countingWriter
	if eventLog != nil {
		cw = newCountingWriter(eventLog)
		// Reconstruction republishes genesis placements; discard them — the
		// real sink is armed after the image is applied.
		opts.EventLog = io.Discard
	} else if cur.EventBytes > 0 {
		return nil, fmt.Errorf("runner: checkpoint recorded an event log (%d bytes at cut); resume needs the re-opened sink to continue it", cur.EventBytes)
	}
	rs, err := newRunState(opts)
	if err != nil {
		return nil, err
	}
	d := &durable{
		rs: rs, ck: ck, specData: mustSection(f, sectionSpec), cw: cw,
		baseEvent: cur.EventBytes,
		restore:   &stateRestore{cursor: *cur, table: tab, f: f},
	}
	results, err := rs.tracker.RunWith(d.drive)
	if err != nil {
		return nil, err
	}
	return rs.finish(results)
}

// ResumeStreamWithMode is ResumeStream with an explicit restore strategy;
// in state mode eventLog and report receive only the post-cut suffix of
// each stream.
func ResumeStreamWithMode(path string, eventLog, report io.Writer, ck CheckpointSpec, mode ResumeMode) (*Output, error) {
	switch mode {
	case ResumeReplay, "":
		return ResumeStream(path, eventLog, report, ck)
	case ResumeState:
	default:
		return nil, fmt.Errorf("runner: unknown resume mode %q", mode)
	}
	if ck.Path == "" {
		ck.Path = path
	}
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	spec, cur, tab, err := decodeCheckpoint(f)
	if err != nil {
		return nil, err
	}
	if spec.Stream == nil {
		return nil, fmt.Errorf("runner: checkpoint %s holds a batch run; use Resume", path)
	}
	if !hasStateImage(f, true) || !stats.StateSerializable() {
		return ResumeStream(path, eventLog, report, ck)
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	opts.Workload = nil // rebuilt by the stream generator
	scfg := *spec.Stream
	var cw, rw *countingWriter
	if eventLog != nil {
		cw = newCountingWriter(eventLog)
		opts.EventLog = io.Discard
	} else if cur.EventBytes > 0 {
		return nil, fmt.Errorf("runner: checkpoint recorded an event log (%d bytes at cut); resume needs the re-opened sink to continue it", cur.EventBytes)
	}
	if report == nil && cur.ReportBytes > 0 {
		return nil, fmt.Errorf("runner: checkpoint recorded a stream report (%d bytes at cut); resume needs the re-opened sink to continue it", cur.ReportBytes)
	}
	if err := validateStreamOptions(opts, scfg); err != nil {
		return nil, err
	}
	src := workload.NewStream(workload.StreamConfig{
		Gen:              scfg.Gen,
		DiurnalAmplitude: scfg.DiurnalAmplitude,
		DiurnalPeriod:    scfg.DiurnalPeriod,
	})
	opts.Workload = src.Workload()
	var reportW io.Writer
	if report != nil {
		// No pre-cut report lines are emitted in state mode (emitReport only
		// fires from window boundaries, which are all post-cut), so the
		// counting wrapper feeds the real sink directly.
		rw = newCountingWriter(report)
		reportW = rw
	}
	rs, err := newRunState(opts)
	if err != nil {
		return nil, err
	}
	rs.tracker.SetStreaming(true)
	sd := &streamDriver{spec: scfg, src: src, rs: rs, report: reportW}
	d := &durable{
		rs: rs, ck: ck, specData: mustSection(f, sectionSpec), cw: cw, rw: rw, stream: sd,
		baseEvent: cur.EventBytes, baseReport: cur.ReportBytes,
		restore: &stateRestore{cursor: *cur, table: tab, f: f},
	}
	sd.prime()
	results, err := rs.tracker.RunWith(d.drive)
	if err != nil {
		return nil, err
	}
	if sd.reportErr != nil {
		return nil, sd.reportErr
	}
	return rs.finish(results)
}
