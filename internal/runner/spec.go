package runner

import (
	"encoding/json"
	"errors"
	"fmt"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/policy"
	"dare/internal/workload"
)

// ErrNotSnapshottable marks Options that cannot be transcribed into a
// checkpoint spec — today only a hand-assembled PolicySet that lacks its
// declarative source spec. Rule trees are compiled from specs at run
// start; the checkpoint records the declarative form and recompiles on
// restore, so a set without one cannot be rebuilt.
var ErrNotSnapshottable = errors.New("runner: options not snapshottable")

// RunSpec is the serializable identity of a run: everything a resumed
// process needs to rebuild Options exactly. The workload is inlined (jobs
// and files verbatim, not the generator config), the profile round-trips
// its performance models as exact typed unions (config.Profile's JSON
// codec), and a policy-file arm rides as its declarative PolicySpec,
// recompiled deterministically on restore. EventLog is deliberately
// absent: the resuming caller re-opens the sink and the replay re-emits
// every line from genesis.
type RunSpec struct {
	Profile   *config.Profile    `json:"profile"`
	Workload  *workload.Workload `json:"workload"`
	Scheduler string             `json:"scheduler"`
	FairSkips int                `json:"fairSkips,omitempty"`

	Policy     policyConfigWire   `json:"policy"`
	PolicySpec *config.PolicySpec `json:"policySpec,omitempty"`

	Seed uint64 `json:"seed"`

	Failures              []NodeFailure  `json:"failures,omitempty"`
	Recoveries            []NodeRecovery `json:"recoveries,omitempty"`
	RackFailures          []RackFailure  `json:"rackFailures,omitempty"`
	Churn                 *ChurnSpec     `json:"churn,omitempty"`
	Chaos                 *ChaosSpec     `json:"chaos,omitempty"`
	MasterOutages         []MasterOutage `json:"masterOutages,omitempty"`
	MasterCheckpointEvery int            `json:"masterCheckpointEvery,omitempty"`
	DisableRepair         bool           `json:"disableRepair,omitempty"`
	MaxTaskAttempts       int            `json:"maxTaskAttempts,omitempty"`
	BlacklistAfter        int            `json:"blacklistAfter,omitempty"`
	TaskFailureProb       float64        `json:"taskFailureProb,omitempty"`
	CheckInvariants       bool           `json:"checkInvariants,omitempty"`

	// The unexported equivalence-testing knobs ride along so a resumed
	// run replays on the same code path it checkpointed on.
	LinearScan        bool `json:"linearScan,omitempty"`
	HeapQueue         bool `json:"heapQueue,omitempty"`
	PerNodeHeartbeats bool `json:"perNodeHeartbeats,omitempty"`
	HBCohortSize      int  `json:"hbCohortSize,omitempty"`

	// Stream, when non-nil, marks a service-mode run: the workload above
	// holds only the file population and arrivals regenerate from this
	// config during replay (see stream.go).
	Stream *StreamRunSpec `json:"stream,omitempty"`
}

// policyConfigWire mirrors core.Config; Rules is the declarative rule-set
// spec (recompiled deterministically at run start), so it rides verbatim.
type policyConfigWire struct {
	Kind               core.PolicyKind `json:"kind"`
	P                  float64         `json:"p,omitempty"`
	Threshold          int64           `json:"threshold,omitempty"`
	BudgetFraction     float64         `json:"budgetFraction,omitempty"`
	AnnounceDelay      float64         `json:"announceDelay,omitempty"`
	LazyDeleteDelay    float64         `json:"lazyDeleteDelay,omitempty"`
	Epoch              float64         `json:"epoch,omitempty"`
	AccessesPerReplica float64         `json:"accessesPerReplica,omitempty"`
	MaxExtraReplicas   int             `json:"maxExtraReplicas,omitempty"`
	Rules              *policy.RuleSet `json:"rules,omitempty"`
}

// SpecFromOptions transcribes opts into its serializable identity.
func SpecFromOptions(opts Options) (*RunSpec, error) {
	p := opts.Policy
	if opts.PolicySet != nil && opts.PolicySet.Spec.Kind == "" {
		return nil, fmt.Errorf("%w: PolicySet carries no declarative spec to rebuild from; construct arms with config.PolicySpec.Build or config.BuiltinPolicy", ErrNotSnapshottable)
	}
	spec := &RunSpec{
		Profile:   opts.Profile,
		Workload:  opts.Workload,
		Scheduler: opts.Scheduler,
		FairSkips: opts.FairSkips,
		Policy: policyConfigWire{
			Kind:               p.Kind,
			P:                  p.P,
			Threshold:          p.Threshold,
			BudgetFraction:     p.BudgetFraction,
			AnnounceDelay:      p.AnnounceDelay,
			LazyDeleteDelay:    p.LazyDeleteDelay,
			Epoch:              p.Epoch,
			AccessesPerReplica: p.AccessesPerReplica,
			MaxExtraReplicas:   p.MaxExtraReplicas,
			Rules:              p.Rules,
		},
		Seed:                  opts.Seed,
		Failures:              opts.Failures,
		Recoveries:            opts.Recoveries,
		RackFailures:          opts.RackFailures,
		Churn:                 opts.Churn,
		Chaos:                 opts.Chaos,
		MasterOutages:         opts.MasterOutages,
		MasterCheckpointEvery: opts.MasterCheckpointEvery,
		DisableRepair:         opts.DisableRepair,
		MaxTaskAttempts:       opts.MaxTaskAttempts,
		BlacklistAfter:        opts.BlacklistAfter,
		TaskFailureProb:       opts.TaskFailureProb,
		CheckInvariants:       opts.CheckInvariants,
		LinearScan:            opts.linearScan,
		HeapQueue:             opts.heapQueue,
		PerNodeHeartbeats:     opts.perNodeHeartbeats,
		HBCohortSize:          opts.hbCohortSize,
	}
	if opts.PolicySet != nil {
		s := opts.PolicySet.Spec
		spec.PolicySpec = &s
	}
	return spec, nil
}

// Options rebuilds runner Options from the spec. A policy-file arm is
// recompiled from its declarative spec — Build is pure, so the rebuilt
// PolicySet is identical to the one the checkpointing process ran with.
// EventLog starts nil; the caller installs the re-opened sink.
func (s *RunSpec) Options() (Options, error) {
	opts := Options{
		Profile:   s.Profile,
		Workload:  s.Workload,
		Scheduler: s.Scheduler,
		FairSkips: s.FairSkips,
		Policy: core.Config{
			Kind:               s.Policy.Kind,
			P:                  s.Policy.P,
			Threshold:          s.Policy.Threshold,
			BudgetFraction:     s.Policy.BudgetFraction,
			AnnounceDelay:      s.Policy.AnnounceDelay,
			LazyDeleteDelay:    s.Policy.LazyDeleteDelay,
			Epoch:              s.Policy.Epoch,
			AccessesPerReplica: s.Policy.AccessesPerReplica,
			MaxExtraReplicas:   s.Policy.MaxExtraReplicas,
			Rules:              s.Policy.Rules,
		},
		Seed:                  s.Seed,
		Failures:              s.Failures,
		Recoveries:            s.Recoveries,
		RackFailures:          s.RackFailures,
		Churn:                 s.Churn,
		Chaos:                 s.Chaos,
		MasterOutages:         s.MasterOutages,
		MasterCheckpointEvery: s.MasterCheckpointEvery,
		DisableRepair:         s.DisableRepair,
		MaxTaskAttempts:       s.MaxTaskAttempts,
		BlacklistAfter:        s.BlacklistAfter,
		TaskFailureProb:       s.TaskFailureProb,
		CheckInvariants:       s.CheckInvariants,
		linearScan:            s.LinearScan,
		heapQueue:             s.HeapQueue,
		perNodeHeartbeats:     s.PerNodeHeartbeats,
		hbCohortSize:          s.HBCohortSize,
	}
	if s.PolicySpec != nil {
		set, err := s.PolicySpec.Build()
		if err != nil {
			return Options{}, fmt.Errorf("runner: rebuilding policy arm from spec: %w", err)
		}
		opts.PolicySet = set
	}
	return opts, nil
}

// encodeSpec / decodeSpec are the checkpoint section codec for RunSpec.
func encodeSpec(s *RunSpec) ([]byte, error) {
	return json.Marshal(s)
}

func decodeSpec(b []byte) (*RunSpec, error) {
	var s RunSpec
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("runner: decoding checkpoint spec: %w", err)
	}
	return &s, nil
}
