package runner

import (
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// One seeded chaos run must exercise the gray machinery end to end and
// still complete every job with consistent metadata (the invariant checker
// runs after every failure and gray event).
func TestRunWithChaosCompletesAndChecks(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	profile.SpeculativeExecution = true
	wl := truncate(workload.WL1(11), 80)
	out, err := Run(Options{
		Profile:         profile,
		Workload:        wl,
		Scheduler:       "fair",
		Policy:          PolicyFor(core.GreedyLRUPolicy),
		Seed:            11,
		Chaos:           &ChaosSpec{},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := out.Gray
	if g.Degrades+g.CorruptionsInjected+g.Flaps == 0 {
		t.Fatalf("default chaos spec injected nothing: %+v", g)
	}
	if g.CorruptionsDetected > g.CorruptionsInjected {
		t.Fatalf("detected %d > injected %d", g.CorruptionsDetected, g.CorruptionsInjected)
	}
	if g.HedgeWins > g.HedgedReads {
		t.Fatalf("hedge wins %d > hedged reads %d", g.HedgeWins, g.HedgedReads)
	}
	if len(out.Results) != 80 {
		t.Fatalf("results %d", len(out.Results))
	}
}

// Two same-seed chaos studies must agree exactly: the scenario, the gray
// RNG, and every arm's run are pure functions of the seed.
func TestChaosStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("12 full runs")
	}
	a, err := ChaosStudy(60, 7, ChaosSpec{}, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosStudy(60, 7, ChaosSpec{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos study rows differ between identical runs:\n%+v\n%+v", a, b)
	}
	if len(a) != 6 {
		t.Fatalf("arms %d, want 6", len(a))
	}
	// The scenario generator draws from its own seed stream, so every arm
	// faces the identical injection schedule.
	for _, r := range a[1:] {
		if r.Crashes != a[0].Crashes || r.Flaps != a[0].Flaps || r.Degrades != a[0].Degrades ||
			r.Injected != a[0].Injected {
			t.Fatalf("arms saw different injection schedules:\n%+v\n%+v", a[0], r)
		}
	}
}

// A positive MasterWeight folds control-plane outages into the chaos mix:
// the master crashes at least once and every job still completes under the
// invariant checker.
func TestChaosWithMasterWeight(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	wl := truncate(workload.WL1(5), 80)
	out, err := Run(Options{
		Profile:   profile,
		Workload:  wl,
		Scheduler: "fifo",
		Policy:    PolicyFor(core.ElephantTrapPolicy),
		Seed:      5,
		Chaos: &ChaosSpec{
			Events:         24,
			MasterWeight:   3,
			MasterRecovery: "report",
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Master.Outages == 0 {
		t.Fatal("MasterWeight=3 over 24 draws never crashed the master")
	}
	if out.Master.BlockReports == 0 {
		t.Fatal("report-mode chaos recovery delivered no block reports")
	}
	if len(out.Results) != 80 {
		t.Fatalf("results %d", len(out.Results))
	}
}

// Disabling every class but corruption must produce a corruption-only
// scenario (negative weights disable; the resolver maps them to zero).
func TestChaosSpecClassDisable(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	wl := truncate(workload.WL1(3), 60)
	out, err := Run(Options{
		Profile:   profile,
		Workload:  wl,
		Scheduler: "fifo",
		Seed:      3,
		Chaos:     &ChaosSpec{CrashWeight: -1, SlowWeight: -1, FlapWeight: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := out.Gray
	if g.Degrades != 0 || g.Flaps != 0 || len(out.FailureEvents) != 0 {
		t.Fatalf("disabled classes fired: %+v, failures %d", g, len(out.FailureEvents))
	}
	if g.CorruptionsInjected == 0 {
		t.Fatal("corruption-only scenario injected nothing")
	}
}
