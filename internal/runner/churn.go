package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/mapreduce"
	"dare/internal/workload"
)

// ChurnRow summarizes one scheduler×policy arm of the churn experiment:
// how well the cluster rode out a stochastic failure/recovery schedule.
// The paper's §IV-B remark — DARE replicas are first-order replicas that
// "also contribute to increasing availability of the data in the presence
// of failures" — predicts the DARE arms keep more access weight readable
// than vanilla under identical churn (repairs enabled: what is measured is
// the exposure between failure and heal, plus permanent losses).
type ChurnRow struct {
	Scheduler string
	Policy    string
	// Failures counts node-down events (rack failures contribute one per
	// victim); RackFailures counts switch events; Recoveries counts
	// rejoins.
	Failures     int
	RackFailures int
	Recoveries   int
	// RepairsDone counts block re-replications; MaxBacklog is the deepest
	// repair queue observed at any churn event.
	RepairsDone int
	MaxBacklog  int
	// BlocksLost counts blocks that ended the run with zero replicas.
	BlocksLost int
	// MeanAvailability is the time-average of access-weighted availability
	// over the run, a step function sampled at failure events. Rejoins are
	// empty and repairs only copy blocks that still have a live replica, so
	// under vanilla it is monotone non-increasing; under DARE a remote read
	// in flight when the last source died still completes and captures a
	// dynamic replica, so a lost block can re-materialize and availability
	// can tick back up.
	MeanAvailability float64
	// FinalAvailability is the access-weighted availability after the last
	// failure.
	FinalAvailability float64
	// MeanSlowdown and FailedJobs carry the compute-side cost of churn.
	MeanSlowdown float64
	FailedJobs   int
}

// DefaultChurnSpec scales churn to an arrival span: roughly eight
// single-node failures across the cluster over the span, mean downtime a
// twenty-fourth of the span, and a 15% chance any failure is a whole rack.
// Aggressive enough that blocks get lost before repair lands (the
// availability comparison has signal), mild enough that repairs mostly
// keep up and the workload still completes.
func DefaultChurnSpec(span float64, nodes int) ChurnSpec {
	return ChurnSpec{
		MTTF:         span * float64(nodes) / 8,
		MTTR:         span / 24,
		RackFailProb: 0.15,
		Horizon:      span,
	}
}

// ChurnStudy runs wl1 under a seeded stochastic churn schedule for both
// schedulers × {vanilla, DARE-LRU, ElephantTrap} on a multi-rack CCT
// cluster (racks of 5, replication factor 2 so churn bites) and reports
// weighted availability, repair backlog, and job slowdown per arm. A
// non-positive field of spec falls back to DefaultChurnSpec. check enables
// the full invariant checker after every churn event.
func ChurnStudy(jobs int, seed uint64, spec ChurnSpec, check bool) ([]ChurnRow, error) {
	if jobs <= 0 {
		jobs = 300
	}
	wl := truncate(workload.WL1(seed), jobs)
	span := wl.Jobs[len(wl.Jobs)-1].Arrival

	profile := config.CCT()
	// Multi-rack layout so rack-correlated failures have victims and
	// survivors; factor 2 so the churn process can actually lose blocks.
	profile.RackSize = 5
	profile.ReplicationFactor = 2

	def := DefaultChurnSpec(span, profile.Slaves)
	if spec.MTTF <= 0 {
		spec.MTTF = def.MTTF
	}
	if spec.MTTR <= 0 {
		spec.MTTR = def.MTTR
	}
	if spec.RackFailProb <= 0 {
		spec.RackFailProb = def.RackFailProb
	}
	if spec.Horizon <= 0 {
		spec.Horizon = def.Horizon
	}

	type arm struct {
		sched string
		kind  core.PolicyKind
	}
	var arms []arm
	for _, sched := range []string{"fifo", "fair"} {
		for _, kind := range []core.PolicyKind{core.NonePolicy, core.GreedyLRUPolicy, core.ElephantTrapPolicy} {
			arms = append(arms, arm{sched, kind})
		}
	}
	rows := make([]ChurnRow, len(arms))
	err := forEachIndex(len(arms), func(i int) error {
		out, err := Run(Options{
			Profile:         profile,
			Workload:        wl,
			Scheduler:       arms[i].sched,
			Policy:          PolicyFor(arms[i].kind),
			Seed:            seed,
			Churn:           &spec,
			CheckInvariants: check,
		})
		if err != nil {
			return fmt.Errorf("runner: churn/%s/%s: %w", arms[i].sched, arms[i].kind, err)
		}
		rows[i] = churnRow(arms[i].sched, arms[i].kind.String(), out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// churnRow reduces one run's outputs to its report row.
func churnRow(sched, policy string, out *Output) ChurnRow {
	row := ChurnRow{
		Scheduler:         sched,
		Policy:            policy,
		Failures:          len(out.FailureEvents),
		Recoveries:        len(out.RecoveryEvents),
		RepairsDone:       out.RepairsDone,
		FinalAvailability: 1,
		MeanSlowdown:      out.Summary.MeanSlowdown,
		FailedJobs:        out.Summary.FailedJobs,
	}
	racks := make(map[float64]map[int]bool)
	for _, ev := range out.FailureEvents {
		if ev.Rack >= 0 {
			if racks[ev.Time] == nil {
				racks[ev.Time] = make(map[int]bool)
			}
			racks[ev.Time][ev.Rack] = true
		}
		if ev.Backlog > row.MaxBacklog {
			row.MaxBacklog = ev.Backlog
		}
	}
	for _, at := range racks {
		row.RackFailures += len(at)
	}
	for _, ev := range out.RecoveryEvents {
		if ev.Backlog > row.MaxBacklog {
			row.MaxBacklog = ev.Backlog
		}
	}
	if n := len(out.FailureEvents); n > 0 {
		last := out.FailureEvents[n-1]
		row.FinalAvailability = last.WeightedAvailability
		row.BlocksLost = last.TotalBlocks - last.AvailableBlocks
	}
	row.MeanAvailability = timeAveragedAvailability(out.FailureEvents, out.Summary.Makespan)
	return row
}

// timeAveragedAvailability integrates the weighted-availability step
// function from t=0 (availability 1) through the failure events to end.
func timeAveragedAvailability(evs []mapreduce.FailureEvent, end float64) float64 {
	cur, last, acc := 1.0, 0.0, 0.0
	for _, ev := range evs {
		if ev.Time >= end {
			break
		}
		acc += cur * (ev.Time - last)
		cur, last = ev.WeightedAvailability, ev.Time
	}
	if end <= last {
		return cur
	}
	acc += cur * (end - last)
	if end <= 0 {
		return cur
	}
	return acc / end
}

// RenderChurn prints the churn comparison.
func RenderChurn(rows []ChurnRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-14s %6s %6s %6s %8s %8s %6s %11s %11s %9s %7s\n",
		"sched", "policy", "fails", "racks", "rejoin", "repairs", "backlog", "lost",
		"mean-avail", "final-avail", "slowdown", "failed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-14s %6d %6d %6d %8d %8d %6d %11.4f %11.4f %9.2f %7d\n",
			r.Scheduler, r.Policy, r.Failures, r.RackFailures, r.Recoveries,
			r.RepairsDone, r.MaxBacklog, r.BlocksLost,
			r.MeanAvailability, r.FinalAvailability, r.MeanSlowdown, r.FailedJobs)
	}
	b.WriteString("(racks of 5, replication factor 2, repairs enabled; availability weighted by block access count)\n")
	return b.String()
}
