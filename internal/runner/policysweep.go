package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/policy"
)

// PolicyArmRow is one arm of a policy-file sweep: a named PolicySet run
// on the standard CCT/wl1/FIFO bench, reported with the headline locality
// and replication-activity metrics.
type PolicyArmRow struct {
	Arm        string
	Locality   float64
	GMTT       float64
	Slowdown   float64
	Replicas   int64
	DiskWrites int64
	Evictions  int64
}

// PolicySweep runs every built-in policy arm plus any extra config-file
// arms on wl1 under FIFO on the CCT profile — the harness behind
// dare-bench -exp policy. The five built-ins reproduce the corresponding
// -policy runs exactly; extras (e.g. configs/bandit.json) compete on the
// same workload, scheduler, and seed, so every row is comparable.
func PolicySweep(jobs int, seed uint64, extra []*config.PolicySet) ([]PolicyArmRow, error) {
	var sets []*config.PolicySet
	for _, info := range policy.Names {
		set, err := config.BuiltinPolicy(info.Canonical)
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	sets = append(sets, extra...)

	wl, err := WorkloadByName("wl1", seed)
	if err != nil {
		return nil, err
	}
	wl = truncate(wl, jobs)
	opts := make([]Options, len(sets))
	for i, set := range sets {
		opts[i] = Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			PolicySet: set,
			Seed:      seed,
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: policy/%s", sets[i].Name)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]PolicyArmRow, len(outs))
	for i, out := range outs {
		rows[i] = PolicyArmRow{
			Arm:        sets[i].Name,
			Locality:   out.Summary.JobLocality,
			GMTT:       out.Summary.GMTT,
			Slowdown:   out.Summary.MeanSlowdown,
			Replicas:   out.Summary.ReplicasCreated,
			DiskWrites: out.Summary.DiskWrites,
			Evictions:  out.Summary.Evictions,
		}
	}
	return rows, nil
}

// RenderPolicySweep prints the policy-arm comparison table.
func RenderPolicySweep(rows []PolicyArmRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %9s %8s %10s\n",
		"arm", "locality", "gmtt(s)", "slowdown", "replicas", "writes", "evictions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.3f %9.2f %9.2f %9d %8d %10d\n",
			r.Arm, r.Locality, r.GMTT, r.Slowdown, r.Replicas, r.DiskWrites, r.Evictions)
	}
	b.WriteString("(wl1, FIFO, CCT profile; extra arms come from -policy-file configs)\n")
	return b.String()
}
