package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// UniformRow compares the blunt alternative to DARE that §III dismisses —
// "uniformly increasing the number of replicas is not an adequate way of
// improving locality" — against adaptive replication: one row per uniform
// replication factor, plus DARE on the default factor.
type UniformRow struct {
	Scenario string
	// Factor is the static replication factor of the run.
	Factor int
	// Locality and GMTT are the usual metrics.
	Locality float64
	GMTT     float64
	// ExtraStoragePct is the storage consumed beyond factor-3 uniform
	// replication, as a percentage of the factor-3 footprint (uniform
	// factor k costs (k-3)/3; DARE costs its budget).
	ExtraStoragePct float64
}

// UniformVsAdaptive sweeps the uniform replication factor on wl1/FIFO and
// contrasts it with DARE at factor 3 + 20% budget: matching DARE's
// locality uniformly requires several times the storage, because uniform
// copies are mostly spent on data nobody reads.
func UniformVsAdaptive(jobs int, seed uint64) ([]UniformRow, error) {
	wl := truncate(workload.WL1(seed), jobs)
	factors := []int{2, 3, 4, 5, 6, 8}
	opts := make([]Options, 0, len(factors)+1)
	for _, factor := range factors {
		profile := config.CCT()
		profile.ReplicationFactor = factor
		opts = append(opts, Options{
			Profile:   profile,
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    core.Config{Kind: core.NonePolicy},
			Seed:      seed,
		})
	}
	opts = append(opts, Options{
		Profile:   config.CCT(),
		Workload:  wl,
		Scheduler: "fifo",
		Policy:    PolicyFor(core.ElephantTrapPolicy),
		Seed:      seed,
	})
	outs, err := runAllLabeled(opts, func(i int) string {
		if i < len(factors) {
			return fmt.Sprintf("runner: uniform factor %d", factors[i])
		}
		return "runner: uniform DARE arm"
	})
	if err != nil {
		return nil, err
	}
	var rows []UniformRow
	for i, factor := range factors {
		rows = append(rows, UniformRow{
			Scenario:        fmt.Sprintf("uniform x%d", factor),
			Factor:          factor,
			Locality:        outs[i].Summary.JobLocality,
			GMTT:            outs[i].Summary.GMTT,
			ExtraStoragePct: float64(factor-3) / 3 * 100,
		})
	}
	out := outs[len(factors)]
	rows = append(rows, UniformRow{
		Scenario:        "DARE x3 + 20% budget",
		Factor:          3,
		Locality:        out.Summary.JobLocality,
		GMTT:            out.Summary.GMTT,
		ExtraStoragePct: 20,
	})
	return rows, nil
}

// RenderUniform prints the uniform-vs-adaptive comparison.
func RenderUniform(rows []UniformRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %7s %9s %9s %15s\n", "scenario", "factor", "locality", "gmtt(s)", "extra storage%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %7d %9.3f %9.2f %14.0f%%\n", r.Scenario, r.Factor, r.Locality, r.GMTT, r.ExtraStoragePct)
	}
	b.WriteString("(wl1, FIFO; §III: uniform copies are mostly spent on data nobody reads)\n")
	return b.String()
}
