//go:build linux

package runner

import "syscall"

// cpuSeconds returns the CPU time (user + system) this process has consumed
// so far. The engine benchmark times its samples on deltas of this clock
// rather than wall time: on a shared host, involuntary preemption and
// co-tenant steal show up in wall clock as multi-percent swings — larger
// than the queue-cost difference the benchmark is trying to resolve — but
// are invisible to CPU-time accounting.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec) + float64(ru.Utime.Usec)*1e-6 +
		float64(ru.Stime.Sec) + float64(ru.Stime.Usec)*1e-6
}
