package runner

import (
	"bytes"
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// equivRun executes opts with the event recorder attached, so every
// equivalence check below also proves the two paths publish the exact
// same event stream, byte for byte.
func equivRun(t *testing.T, opts Options) (*Output, []byte) {
	t.Helper()
	var buf bytes.Buffer
	opts.EventLog = &buf
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return out, buf.Bytes()
}

// TestIndexedMatchesLinearScan is the determinism contract of the inverted
// locality index: for every profile, scheduler, and seed, the indexed
// block-selection path must produce exactly the same simulation as the
// original O(pending) linear scan — same per-job results, same summary,
// byte for byte.
func TestIndexedMatchesLinearScan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run equivalence matrix")
	}
	profiles := map[string]func() *config.Profile{
		"cct": config.CCT,
		"ec2": config.EC2,
	}
	// wl2's large jobs (60+ maps) are the ones that actually build the
	// inverted index — jobs under indexMinMaps use the scan either way —
	// so it is the workload that makes this test bite; wl1 covers the
	// hybrid's small-job path.
	workloads := map[string]func(uint64) *workload.Workload{
		"wl1": workload.WL1,
		"wl2": workload.WL2,
	}
	for name, profile := range profiles {
		for wlName, wl := range workloads {
			for _, sched := range []string{"fifo", "fair"} {
				for _, seed := range []uint64{7, 42, 99} {
					opts := Options{
						Profile:   profile(),
						Workload:  truncate(wl(seed), 60),
						Scheduler: sched,
						Policy:    PolicyFor(core.ElephantTrapPolicy),
						Seed:      seed,
					}
					indexed, indexedLog := equivRun(t, opts)
					opts.linearScan = true
					linear, linearLog := equivRun(t, opts)
					if !reflect.DeepEqual(indexed.Summary, linear.Summary) {
						t.Errorf("%s/%s/%s seed %d: summaries diverge\nindexed: %+v\nlinear:  %+v",
							name, wlName, sched, seed, indexed.Summary, linear.Summary)
					}
					if !reflect.DeepEqual(indexed.Results, linear.Results) {
						t.Errorf("%s/%s/%s seed %d: per-job results diverge", name, wlName, sched, seed)
					}
					if !bytes.Equal(indexedLog, linearLog) {
						t.Errorf("%s/%s/%s seed %d: event logs diverge", name, wlName, sched, seed)
					}
				}
			}
		}
	}
}

// TestCalendarMatchesHeapFullStack is the end-to-end determinism contract
// of the calendar queue: a full cluster run — churn, chaos, invariant
// checks, the works — executed on the calendar engine and on the legacy
// heap engine must produce identical results and a byte-identical event
// trace. The sim package's differential fuzz proves queue-level order
// equivalence; this proves nothing above the engine observes a difference
// either.
func TestCalendarMatchesHeapFullStack(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	for _, seed := range []uint64{7, 42} {
		for _, arm := range []string{"plain", "churn", "chaos"} {
			wl := truncate(workload.WL2(seed), 40)
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			opts := Options{
				Profile:         profile,
				Workload:        wl,
				Scheduler:       "fair",
				Policy:          PolicyFor(core.GreedyLRUPolicy),
				Seed:            seed,
				CheckInvariants: true,
			}
			switch arm {
			case "churn":
				spec := DefaultChurnSpec(span, profile.Slaves)
				opts.Churn = &spec
			case "chaos":
				spec := DefaultChaosSpec(span)
				opts.Chaos = &spec
			}
			cal, calLog := equivRun(t, opts)
			opts.heapQueue = true
			hp, hpLog := equivRun(t, opts)
			if !reflect.DeepEqual(cal.Summary, hp.Summary) {
				t.Errorf("%s seed %d: summaries diverge\ncalendar: %+v\nheap:     %+v",
					arm, seed, cal.Summary, hp.Summary)
			}
			if !reflect.DeepEqual(cal.Results, hp.Results) {
				t.Errorf("%s seed %d: per-job results diverge", arm, seed)
			}
			if cal.EventsProcessed != hp.EventsProcessed {
				t.Errorf("%s seed %d: events processed diverge: %d vs %d",
					arm, seed, cal.EventsProcessed, hp.EventsProcessed)
			}
			if !bytes.Equal(calLog, hpLog) {
				t.Errorf("%s seed %d: event logs diverge", arm, seed)
			}
		}
	}
}

// TestIndexedMatchesLinearScanUnderFailures drives the replica-removal
// paths (node failure, repair re-replication) through both selection
// paths: the index handles removals lazily, so this is where a staleness
// bug would surface.
func TestIndexedMatchesLinearScanUnderFailures(t *testing.T) {
	for _, seed := range []uint64{3, 11, 42} {
		wl := truncate(workload.WL2(seed), 60)
		span := wl.Jobs[len(wl.Jobs)-1].Arrival
		opts := Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(core.GreedyLRUPolicy),
			Seed:      seed,
			Failures: []NodeFailure{
				{Node: 2, At: span * 0.3},
				{Node: 7, At: span * 0.6},
			},
		}
		indexed, indexedLog := equivRun(t, opts)
		opts.linearScan = true
		linear, linearLog := equivRun(t, opts)
		if !reflect.DeepEqual(indexed.Summary, linear.Summary) {
			t.Errorf("seed %d: summaries diverge under failures\nindexed: %+v\nlinear:  %+v",
				seed, indexed.Summary, linear.Summary)
		}
		if !reflect.DeepEqual(indexed.Results, linear.Results) {
			t.Errorf("seed %d: per-job results diverge under failures", seed)
		}
		if !bytes.Equal(indexedLog, linearLog) {
			t.Errorf("seed %d: event logs diverge under failures", seed)
		}
	}
}

// TestIndexedMatchesLinearScanUnderChurn extends the equivalence contract
// to the full churn machinery: recoveries re-open nodes for placement (the
// index must pick up replicas repaired onto a rejoined node) and rack
// failures bulk-invalidate whole byRack heaps at once. The invariant
// checker rides along so any index/metadata divergence fails loudly at the
// event that caused it, not at the end-of-run diff.
func TestIndexedMatchesLinearScanUnderChurn(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	for _, seed := range []uint64{5, 11, 42} {
		for _, sched := range []string{"fifo", "fair"} {
			wl := truncate(workload.WL2(seed), 60)
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			opts := Options{
				Profile:   profile,
				Workload:  wl,
				Scheduler: sched,
				Policy:    PolicyFor(core.GreedyLRUPolicy),
				Seed:      seed,
				Failures: []NodeFailure{
					{Node: 2, At: span * 0.2},
					{Node: 7, At: span * 0.5},
				},
				Recoveries: []NodeRecovery{
					{Node: 2, At: span * 0.6},
					{Node: 7, At: span * 0.9},
				},
				RackFailures: []RackFailure{
					{Rack: 1, At: span * 0.75},
				},
				CheckInvariants: true,
			}
			indexed, indexedLog := equivRun(t, opts)
			opts.linearScan = true
			linear, linearLog := equivRun(t, opts)
			if !reflect.DeepEqual(indexed.Summary, linear.Summary) {
				t.Errorf("%s seed %d: summaries diverge under churn\nindexed: %+v\nlinear:  %+v",
					sched, seed, indexed.Summary, linear.Summary)
			}
			if !reflect.DeepEqual(indexed.Results, linear.Results) {
				t.Errorf("%s seed %d: per-job results diverge under churn", sched, seed)
			}
			if !reflect.DeepEqual(indexed.FailureEvents, linear.FailureEvents) ||
				!reflect.DeepEqual(indexed.RecoveryEvents, linear.RecoveryEvents) {
				t.Errorf("%s seed %d: churn event records diverge", sched, seed)
			}
			if !bytes.Equal(indexedLog, linearLog) {
				t.Errorf("%s seed %d: event logs diverge under churn", sched, seed)
			}
		}
	}
}
