package runner

import (
	"bytes"
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// equivRun executes opts with the event recorder attached, so every
// equivalence check below also proves the two paths publish the exact
// same event stream, byte for byte.
func equivRun(t *testing.T, opts Options) (*Output, []byte) {
	t.Helper()
	var buf bytes.Buffer
	opts.EventLog = &buf
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return out, buf.Bytes()
}

// TestIndexedMatchesLinearScan is the determinism contract of the inverted
// locality index: for every profile, scheduler, and seed, the indexed
// block-selection path must produce exactly the same simulation as the
// original O(pending) linear scan — same per-job results, same summary,
// byte for byte.
func TestIndexedMatchesLinearScan(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run equivalence matrix")
	}
	profiles := map[string]func() *config.Profile{
		"cct": config.CCT,
		"ec2": config.EC2,
	}
	// wl2's large jobs (60+ maps) are the ones that actually build the
	// inverted index — jobs under indexMinMaps use the scan either way —
	// so it is the workload that makes this test bite; wl1 covers the
	// hybrid's small-job path.
	workloads := map[string]func(uint64) *workload.Workload{
		"wl1": workload.WL1,
		"wl2": workload.WL2,
	}
	for name, profile := range profiles {
		for wlName, wl := range workloads {
			for _, sched := range []string{"fifo", "fair"} {
				for _, seed := range []uint64{7, 42, 99} {
					opts := Options{
						Profile:   profile(),
						Workload:  truncate(wl(seed), 60),
						Scheduler: sched,
						Policy:    PolicyFor(core.ElephantTrapPolicy),
						Seed:      seed,
					}
					indexed, indexedLog := equivRun(t, opts)
					opts.linearScan = true
					linear, linearLog := equivRun(t, opts)
					if !reflect.DeepEqual(indexed.Summary, linear.Summary) {
						t.Errorf("%s/%s/%s seed %d: summaries diverge\nindexed: %+v\nlinear:  %+v",
							name, wlName, sched, seed, indexed.Summary, linear.Summary)
					}
					if !reflect.DeepEqual(indexed.Results, linear.Results) {
						t.Errorf("%s/%s/%s seed %d: per-job results diverge", name, wlName, sched, seed)
					}
					if !bytes.Equal(indexedLog, linearLog) {
						t.Errorf("%s/%s/%s seed %d: event logs diverge", name, wlName, sched, seed)
					}
				}
			}
		}
	}
}

// TestCalendarMatchesHeapFullStack is the end-to-end determinism contract
// of the calendar queue: a full cluster run — churn, chaos, invariant
// checks, the works — executed on the calendar engine and on the legacy
// heap engine must produce identical results and a byte-identical event
// trace. The sim package's differential fuzz proves queue-level order
// equivalence; this proves nothing above the engine observes a difference
// either.
func TestCalendarMatchesHeapFullStack(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	for _, seed := range []uint64{7, 42} {
		for _, arm := range []string{"plain", "churn", "chaos"} {
			wl := truncate(workload.WL2(seed), 40)
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			opts := Options{
				Profile:         profile,
				Workload:        wl,
				Scheduler:       "fair",
				Policy:          PolicyFor(core.GreedyLRUPolicy),
				Seed:            seed,
				CheckInvariants: true,
			}
			switch arm {
			case "churn":
				spec := DefaultChurnSpec(span, profile.Slaves)
				opts.Churn = &spec
			case "chaos":
				spec := DefaultChaosSpec(span)
				opts.Chaos = &spec
			}
			cal, calLog := equivRun(t, opts)
			opts.heapQueue = true
			hp, hpLog := equivRun(t, opts)
			if !reflect.DeepEqual(cal.Summary, hp.Summary) {
				t.Errorf("%s seed %d: summaries diverge\ncalendar: %+v\nheap:     %+v",
					arm, seed, cal.Summary, hp.Summary)
			}
			if !reflect.DeepEqual(cal.Results, hp.Results) {
				t.Errorf("%s seed %d: per-job results diverge", arm, seed)
			}
			if cal.EventsProcessed != hp.EventsProcessed {
				t.Errorf("%s seed %d: events processed diverge: %d vs %d",
					arm, seed, cal.EventsProcessed, hp.EventsProcessed)
			}
			if !bytes.Equal(calLog, hpLog) {
				t.Errorf("%s seed %d: event logs diverge", arm, seed)
			}
		}
	}
}

// TestCohortMatchesPerNodeFullStack is the end-to-end determinism
// contract of the coalesced heartbeat driver: a full cluster run — churn,
// chaos, invariant checks, the works — with heartbeats driven by cohort
// sweep events must produce identical results and a byte-identical event
// trace to the same run driven by one ticker per node. The sim package's
// cohort differentials prove ticker-level equivalence; this proves nothing
// above the heartbeat driver observes a difference either. The cohort size
// is forced to 4 because the auto scale would give singleton cohorts on a
// 19-node cluster, making the sweep path trivially identical; the forced
// size makes churn and chaos exercise real mid-cohort member splices
// (Stop tombstones, Resume tail re-appends, flap rejoin ordering).
//
// The DARE announce/lazy-delete delays are set off the heartbeat grid.
// Their defaults equal the heartbeat interval exactly, which parks
// replica announcements (deferred from task launches, i.e. from grid
// instants) precisely on the next grid instant — the one case where the
// two drivers legitimately order differently: per-node mode interleaves
// such an event between the member heartbeats of its cohort, cohort mode
// fires it before the whole sweep (one engine event cannot split).
// DESIGN.md §4g records this boundary; at the auto-scaled singleton size
// production runs use on paper-scale clusters the case cannot arise, which
// TestCohortMatchesPerNodeConfigs pins with the default delays.
func TestCohortMatchesPerNodeFullStack(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	policy := PolicyFor(core.GreedyLRUPolicy)
	policy.AnnounceDelay = 0.13
	policy.LazyDeleteDelay = 0.07
	for _, seed := range []uint64{7, 42} {
		for _, arm := range []string{"plain", "churn", "chaos"} {
			wl := truncate(workload.WL2(seed), 40)
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			opts := Options{
				Profile:         profile,
				Workload:        wl,
				Scheduler:       "fair",
				Policy:          policy,
				Seed:            seed,
				CheckInvariants: true,
				hbCohortSize:    4,
			}
			switch arm {
			case "churn":
				spec := DefaultChurnSpec(span, profile.Slaves)
				opts.Churn = &spec
			case "chaos":
				spec := DefaultChaosSpec(span)
				opts.Chaos = &spec
			}
			co, coLog := equivRun(t, opts)
			opts.perNodeHeartbeats = true
			pn, pnLog := equivRun(t, opts)
			if !reflect.DeepEqual(co.Summary, pn.Summary) {
				t.Errorf("%s seed %d: summaries diverge\ncohort:   %+v\nper-node: %+v",
					arm, seed, co.Summary, pn.Summary)
			}
			if !reflect.DeepEqual(co.Results, pn.Results) {
				t.Errorf("%s seed %d: per-job results diverge", arm, seed)
			}
			if !reflect.DeepEqual(co.FailureEvents, pn.FailureEvents) ||
				!reflect.DeepEqual(co.RecoveryEvents, pn.RecoveryEvents) {
				t.Errorf("%s seed %d: failure/recovery records diverge", arm, seed)
			}
			if !bytes.Equal(coLog, pnLog) {
				t.Errorf("%s seed %d: event logs diverge", arm, seed)
			}
			// The coalescing must actually coalesce: with 4-member cohorts
			// the run executes strictly fewer engine events, while the bus
			// traffic above (compared byte for byte via the logs) is
			// untouched.
			if co.EventsProcessed >= pn.EventsProcessed {
				t.Errorf("%s seed %d: cohort mode executed %d engine events, per-node %d — no coalescing",
					arm, seed, co.EventsProcessed, pn.EventsProcessed)
			}
		}
	}
}

// TestCohortMatchesPerNodeConfigs sweeps the dare-sim configuration matrix
// — both testbeds, both schedulers, vanilla through Scarlett — in the
// default auto-scaled mode, pinning that the production cohort driver (and
// its singleton-cohort phase math) reproduces the historical per-node
// ticker runs byte for byte on paper-scale clusters.
func TestCohortMatchesPerNodeConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run equivalence matrix")
	}
	configs := []struct {
		name    string
		profile func() *config.Profile
		sched   string
		policy  core.PolicyKind
	}{
		{"cct/fifo/vanilla", config.CCT, "fifo", core.NonePolicy},
		{"cct/fifo/elephanttrap", config.CCT, "fifo", core.ElephantTrapPolicy},
		{"cct/fair/lru", config.CCT, "fair", core.GreedyLRUPolicy},
		{"ec2/fifo/lru", config.EC2, "fifo", core.GreedyLRUPolicy},
		{"ec2/fair/elephanttrap", config.EC2, "fair", core.ElephantTrapPolicy},
		{"cct/fair/scarlett", config.CCT, "fair", core.ScarlettPolicy},
	}
	for _, cfg := range configs {
		const seed = 42
		opts := Options{
			Profile:   cfg.profile(),
			Workload:  truncate(workload.WL1(seed), 40),
			Scheduler: cfg.sched,
			Policy:    PolicyFor(cfg.policy),
			Seed:      seed,
		}
		co, coLog := equivRun(t, opts)
		opts.perNodeHeartbeats = true
		pn, pnLog := equivRun(t, opts)
		if !reflect.DeepEqual(co.Summary, pn.Summary) {
			t.Errorf("%s: summaries diverge\ncohort:   %+v\nper-node: %+v", cfg.name, co.Summary, pn.Summary)
		}
		if !reflect.DeepEqual(co.Results, pn.Results) {
			t.Errorf("%s: per-job results diverge", cfg.name)
		}
		if !bytes.Equal(coLog, pnLog) {
			t.Errorf("%s: event logs diverge", cfg.name)
		}
	}
}

// TestIndexedMatchesLinearScanUnderFailures drives the replica-removal
// paths (node failure, repair re-replication) through both selection
// paths: the index handles removals lazily, so this is where a staleness
// bug would surface.
func TestIndexedMatchesLinearScanUnderFailures(t *testing.T) {
	for _, seed := range []uint64{3, 11, 42} {
		wl := truncate(workload.WL2(seed), 60)
		span := wl.Jobs[len(wl.Jobs)-1].Arrival
		opts := Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(core.GreedyLRUPolicy),
			Seed:      seed,
			Failures: []NodeFailure{
				{Node: 2, At: span * 0.3},
				{Node: 7, At: span * 0.6},
			},
		}
		indexed, indexedLog := equivRun(t, opts)
		opts.linearScan = true
		linear, linearLog := equivRun(t, opts)
		if !reflect.DeepEqual(indexed.Summary, linear.Summary) {
			t.Errorf("seed %d: summaries diverge under failures\nindexed: %+v\nlinear:  %+v",
				seed, indexed.Summary, linear.Summary)
		}
		if !reflect.DeepEqual(indexed.Results, linear.Results) {
			t.Errorf("seed %d: per-job results diverge under failures", seed)
		}
		if !bytes.Equal(indexedLog, linearLog) {
			t.Errorf("seed %d: event logs diverge under failures", seed)
		}
	}
}

// TestIndexedMatchesLinearScanUnderChurn extends the equivalence contract
// to the full churn machinery: recoveries re-open nodes for placement (the
// index must pick up replicas repaired onto a rejoined node) and rack
// failures bulk-invalidate whole byRack heaps at once. The invariant
// checker rides along so any index/metadata divergence fails loudly at the
// event that caused it, not at the end-of-run diff.
func TestIndexedMatchesLinearScanUnderChurn(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	for _, seed := range []uint64{5, 11, 42} {
		for _, sched := range []string{"fifo", "fair"} {
			wl := truncate(workload.WL2(seed), 60)
			span := wl.Jobs[len(wl.Jobs)-1].Arrival
			opts := Options{
				Profile:   profile,
				Workload:  wl,
				Scheduler: sched,
				Policy:    PolicyFor(core.GreedyLRUPolicy),
				Seed:      seed,
				Failures: []NodeFailure{
					{Node: 2, At: span * 0.2},
					{Node: 7, At: span * 0.5},
				},
				Recoveries: []NodeRecovery{
					{Node: 2, At: span * 0.6},
					{Node: 7, At: span * 0.9},
				},
				RackFailures: []RackFailure{
					{Rack: 1, At: span * 0.75},
				},
				CheckInvariants: true,
			}
			indexed, indexedLog := equivRun(t, opts)
			opts.linearScan = true
			linear, linearLog := equivRun(t, opts)
			if !reflect.DeepEqual(indexed.Summary, linear.Summary) {
				t.Errorf("%s seed %d: summaries diverge under churn\nindexed: %+v\nlinear:  %+v",
					sched, seed, indexed.Summary, linear.Summary)
			}
			if !reflect.DeepEqual(indexed.Results, linear.Results) {
				t.Errorf("%s seed %d: per-job results diverge under churn", sched, seed)
			}
			if !reflect.DeepEqual(indexed.FailureEvents, linear.FailureEvents) ||
				!reflect.DeepEqual(indexed.RecoveryEvents, linear.RecoveryEvents) {
				t.Errorf("%s seed %d: churn event records diverge", sched, seed)
			}
			if !bytes.Equal(indexedLog, linearLog) {
				t.Errorf("%s seed %d: event logs diverge under churn", sched, seed)
			}
		}
	}
}
