//go:build !linux

package runner

import "time"

// cpuSeconds falls back to wall clock where rusage accounting is not wired
// up; benchmark deltas are then subject to ambient machine noise.
func cpuSeconds() float64 { return float64(time.Now().UnixNano()) * 1e-9 }
