package runner

import (
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/topology"
	"dare/internal/workload"
)

// TestChurnStudyInvariantsAcrossSeeds is the acceptance gate for the churn
// subsystem: the full study (both schedulers × three policies) must run to
// completion with the metadata invariant checker firing after every
// failure/recovery event, across several seeds.
func TestChurnStudyInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-arm churn matrix")
	}
	for _, seed := range []uint64{1, 7, 42} {
		rows, err := ChurnStudy(120, seed, ChurnSpec{}, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rows) != 6 {
			t.Fatalf("seed %d: %d rows, want 6", seed, len(rows))
		}
		for _, r := range rows {
			if r.MeanAvailability <= 0 || r.MeanAvailability > 1 {
				t.Errorf("seed %d %s/%s: mean availability %v out of range",
					seed, r.Scheduler, r.Policy, r.MeanAvailability)
			}
			if r.Failures == 0 {
				t.Errorf("seed %d %s/%s: churn generated no failures", seed, r.Scheduler, r.Policy)
			}
			if r.Recoveries == 0 {
				t.Errorf("seed %d %s/%s: churn generated no recoveries", seed, r.Scheduler, r.Policy)
			}
		}
	}
}

// TestChurnStudyDAREBeatsVanilla pins the §IV-B claim the experiment
// exists to demonstrate: under identical churn, the DARE arms keep more
// access-weighted data readable than vanilla, because hot blocks carry
// extra dynamic replicas when failures land.
func TestChurnStudyDAREBeatsVanilla(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-arm churn matrix")
	}
	rows, err := ChurnStudy(120, 7, ChurnSpec{}, false)
	if err != nil {
		t.Fatal(err)
	}
	byArm := make(map[string]ChurnRow, len(rows))
	for _, r := range rows {
		byArm[r.Scheduler+"/"+r.Policy] = r
	}
	for _, sched := range []string{"fifo", "fair"} {
		vanilla := byArm[sched+"/"+core.NonePolicy.String()]
		for _, pol := range []core.PolicyKind{core.GreedyLRUPolicy, core.ElephantTrapPolicy} {
			dare := byArm[sched+"/"+pol.String()]
			if dare.MeanAvailability <= vanilla.MeanAvailability {
				t.Errorf("%s/%s mean availability %.4f did not beat vanilla %.4f",
					sched, pol, dare.MeanAvailability, vanilla.MeanAvailability)
			}
			if dare.BlocksLost > vanilla.BlocksLost {
				t.Errorf("%s/%s lost %d blocks, more than vanilla's %d",
					sched, pol, dare.BlocksLost, vanilla.BlocksLost)
			}
		}
	}
}

// TestChurnStudyDeterministic: the experiment is a pure function of
// (jobs, seed, spec) — rerunning must reproduce every row bit for bit.
// This is the property the CI determinism gate checks end to end through
// the CLI.
func TestChurnStudyDeterministic(t *testing.T) {
	a, err := ChurnStudy(80, 11, ChurnSpec{}, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnStudy(80, 11, ChurnSpec{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("churn study not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunWithChurnSpec drives the Options.Churn path directly (the
// dare-sim -churn wiring) and checks the generated schedule respects the
// cluster: at least one node stays up, and every recovery event pairs with
// an earlier failure of the same node.
func TestRunWithChurnSpec(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	wl := truncate(workload.WL1(3), 80)
	span := wl.Jobs[len(wl.Jobs)-1].Arrival
	spec := DefaultChurnSpec(span, profile.Slaves)
	out, err := Run(Options{
		Profile:         profile,
		Workload:        wl,
		Scheduler:       "fifo",
		Policy:          PolicyFor(core.ElephantTrapPolicy),
		Seed:            3,
		Churn:           &spec,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.FailureEvents) == 0 {
		t.Fatal("default churn spec produced no failures")
	}
	// A node may fail and rejoin several times; every recovery must be
	// preceded by at least one failure of the same node.
	firstDown := make(map[topology.NodeID]float64)
	for _, ev := range out.FailureEvents {
		if at, ok := firstDown[ev.Node]; !ok || ev.Time < at {
			firstDown[ev.Node] = ev.Time
		}
	}
	for _, rec := range out.RecoveryEvents {
		fallAt, ok := firstDown[rec.Node]
		if !ok || rec.Time < fallAt {
			t.Errorf("recovery of node %d at %g without an earlier failure", rec.Node, rec.Time)
		}
	}
	if len(out.Results) != 80 {
		t.Fatalf("results %d", len(out.Results))
	}
}
