package runner

import (
	"bytes"
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/event"
	"dare/internal/workload"
)

// runWithLog executes one run with the event recorder attached and
// returns the output plus the raw JSONL trace.
func runWithLog(t *testing.T, opts Options) (*Output, []byte) {
	t.Helper()
	var buf bytes.Buffer
	opts.EventLog = &buf
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return out, buf.Bytes()
}

func eventOpts(seed uint64) Options {
	return Options{
		Profile:   config.CCT(),
		Workload:  truncate(workload.WL2(seed), 50),
		Scheduler: "fair",
		Policy:    PolicyFor(core.ElephantTrapPolicy),
		Seed:      seed,
	}
}

// TestEventLogByteIdenticalAcrossRuns is the trace half of the
// determinism contract: the same Options must produce not just the same
// summary but the same JSONL event log, byte for byte.
func TestEventLogByteIdenticalAcrossRuns(t *testing.T) {
	for _, seed := range []uint64{7, 42} {
		a, logA := runWithLog(t, eventOpts(seed))
		b, logB := runWithLog(t, eventOpts(seed))
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Fatalf("seed %d: summaries diverge between identical runs", seed)
		}
		if len(logA) == 0 {
			t.Fatalf("seed %d: empty event log", seed)
		}
		if !bytes.Equal(logA, logB) {
			t.Fatalf("seed %d: event logs differ between identical runs (%d vs %d bytes)",
				seed, len(logA), len(logB))
		}
		if a.EventCounts != b.EventCounts {
			t.Fatalf("seed %d: event counts differ: %s vs %s", seed, a.EventCounts, b.EventCounts)
		}
	}
}

// TestEventLogByteIdenticalAcrossParallelism pins that cross-run
// parallelism cannot leak into a run's trace: the same seed matrix
// executed serially and on 8 workers yields byte-identical logs per run.
func TestEventLogByteIdenticalAcrossParallelism(t *testing.T) {
	seeds := []uint64{3, 7, 11, 42}
	collect := func(par int) [][]byte {
		SetParallelism(par)
		defer SetParallelism(0)
		logs := make([][]byte, len(seeds))
		err := forEachIndex(len(seeds), func(i int) error {
			var buf bytes.Buffer
			opts := eventOpts(seeds[i])
			opts.EventLog = &buf
			if _, err := Run(opts); err != nil {
				return err
			}
			logs[i] = buf.Bytes()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return logs
	}
	serial := collect(1)
	parallel := collect(8)
	for i, seed := range seeds {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("seed %d: event log differs between -parallel 1 and -parallel 8", seed)
		}
	}
}

// TestEventLogMatchesResults cross-checks the trace against the run's own
// accounting: decoded events must reproduce the job count, map-task
// locality split, and speculative-launch tally the summary reports.
func TestEventLogMatchesResults(t *testing.T) {
	opts := eventOpts(11)
	out, log := runWithLog(t, opts)
	events, err := event.ReadLog(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	var counts event.Counts
	local, maps := 0, 0
	last := -1.0
	for _, ev := range events {
		counts[ev.Kind]++
		if ev.Time < last {
			t.Fatalf("event log time went backwards: %g after %g", ev.Time, last)
		}
		last = ev.Time
		if ev.Kind == event.TaskLaunch && ev.Block >= 0 {
			maps++
			if ev.Flag {
				local++
			}
		}
	}
	if counts != out.EventCounts {
		t.Fatalf("decoded counts %s != reported %s", counts, out.EventCounts)
	}
	jobs := len(out.Results)
	if got := counts[event.JobArrive]; got != uint64(jobs) {
		t.Fatalf("job-arrive events %d, want %d", got, jobs)
	}
	if got := counts[event.JobFinish]; got != uint64(jobs) {
		t.Fatalf("job-finish events %d, want %d", got, jobs)
	}
	if got := counts[event.TaskSpeculate]; got != uint64(out.SpeculativeLaunches) {
		t.Fatalf("task-speculate events %d, want %d", got, out.SpeculativeLaunches)
	}
	wantLocal, wantMaps := 0, 0
	for _, r := range out.Results {
		wantLocal += r.Local
		wantMaps += r.NumMaps
	}
	// TaskLaunch Flag marks node-local launches; speculative backups add
	// launches beyond the one-per-map floor, so compare lower bounds.
	if maps < wantMaps {
		t.Fatalf("map task-launch events %d < completed maps %d", maps, wantMaps)
	}
	if local < wantLocal {
		t.Fatalf("local task-launch events %d < local maps %d", local, wantLocal)
	}
}
