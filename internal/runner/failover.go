package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/mapreduce"
	"dare/internal/workload"
)

// Experiment A17: control-plane failover. The master (name node + job
// tracker) crashes twice mid-workload and recovers either by journal
// replay (checkpoint + edit log, instant full view) or by block reports
// (cold registry progressively warmed by per-node reports over the next
// heartbeat interval). Every arm sees the identical outage schedule; the
// comparison shows what each recovery mode costs in control-plane
// availability and turnaround, and whether DARE's popularity-skewed extra
// replicas change the warming curve (hot blocks come back with the first
// reports because more nodes hold them).

// FailoverRow summarizes one policy×recovery-mode arm under an identical
// master-outage schedule.
type FailoverRow struct {
	Policy string
	// Mode is the recovery mode: "journal" or "report".
	Mode string
	// Outages counts master crashes; Downtime sums crash→recover spans;
	// WarmupTime sums recover→fully-warm spans (0 in journal mode).
	Outages    int
	Downtime   float64
	WarmupTime float64
	// BlockReports counts per-node reports delivered to warming masters.
	BlockReports int
	// DeferredHeartbeats and DeferredReads count the work that piled up
	// while the master was down (unanswered heartbeats; map reads killed
	// at crashes plus quarantines that had to wait).
	DeferredHeartbeats int64
	DeferredReads      int64
	// KilledTasks counts in-flight attempts lost to crashes and requeued.
	KilledTasks int
	// Checkpoints counts metadata-journal checkpoints rolled.
	Checkpoints int
	// MasterAvailability is the time-averaged access-weighted availability
	// of the master's block view over the run: zero while down, the
	// warming curve's value while reports arrive, the true availability
	// otherwise.
	MasterAvailability float64
	// GMTT and FailedJobs are the workload-impact metrics.
	GMTT       float64
	FailedJobs int
}

// FailoverStudy runs wl1 under two identically-scheduled master outages
// (at 25% and 60% of the arrival span, each a sixteenth of the span long)
// for fifo × {vanilla, ElephantTrap} × {journal, report} on the multi-rack
// CCT layout the churn and chaos studies use (racks of 5, replication
// factor 2). check enables the full invariant checker after every
// node-lifecycle and master-recovery event.
func FailoverStudy(jobs int, seed uint64, check bool) ([]FailoverRow, error) {
	if jobs <= 0 {
		jobs = 300
	}
	wl := truncate(workload.WL1(seed), jobs)
	span := 0.0
	if n := len(wl.Jobs); n > 0 {
		span = wl.Jobs[n-1].Arrival
	}

	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2

	outages := func(mode string) []MasterOutage {
		return []MasterOutage{
			{At: 0.25 * span, Down: span / 16, Mode: mode},
			{At: 0.60 * span, Down: span / 16, Mode: mode},
		}
	}

	type arm struct {
		kind core.PolicyKind
		mode string
	}
	var arms []arm
	for _, kind := range []core.PolicyKind{core.NonePolicy, core.ElephantTrapPolicy} {
		for _, mode := range []string{"journal", "report"} {
			arms = append(arms, arm{kind, mode})
		}
	}
	rows := make([]FailoverRow, len(arms))
	err := forEachIndex(len(arms), func(i int) error {
		out, err := Run(Options{
			Profile:         profile,
			Workload:        wl,
			Scheduler:       "fifo",
			Policy:          PolicyFor(arms[i].kind),
			Seed:            seed,
			MasterOutages:   outages(arms[i].mode),
			CheckInvariants: check,
		})
		if err != nil {
			return fmt.Errorf("runner: failover/%s/%s: %w", arms[i].kind, arms[i].mode, err)
		}
		m := out.Master
		rows[i] = FailoverRow{
			Policy:             arms[i].kind.String(),
			Mode:               arms[i].mode,
			Outages:            m.Outages,
			Downtime:           m.Downtime,
			WarmupTime:         m.WarmupTime,
			BlockReports:       m.BlockReports,
			DeferredHeartbeats: m.DeferredHeartbeats,
			DeferredReads:      m.DeferredReads,
			KilledTasks:        m.KilledMaps + m.KilledReduces,
			Checkpoints:        m.JournalCheckpoints,
			MasterAvailability: masterAvailability(out.MasterEvents, out.Summary.Makespan),
			GMTT:               out.Summary.GMTT,
			FailedJobs:         out.Summary.FailedJobs,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// masterAvailability integrates the master's access-weighted availability
// samples into a time average over [0, makespan]: full knowledge (1.0)
// until the first event, zero while down, and the sampled warming-curve
// value after each recovery or block report.
func masterAvailability(events []mapreduce.MasterEvent, makespan float64) float64 {
	if makespan <= 0 {
		return 1
	}
	cur, last, acc := 1.0, 0.0, 0.0
	for _, e := range events {
		t := e.Time
		if t > makespan {
			t = makespan
		}
		if t > last {
			acc += cur * (t - last)
			last = t
		}
		switch e.Kind {
		case mapreduce.MasterWentDown:
			cur = 0
		case mapreduce.MasterCameBack, mapreduce.MasterGotReport:
			cur = e.WeightedAvailability
		}
	}
	if makespan > last {
		acc += cur * (makespan - last)
	}
	return acc / makespan
}

// RenderFailover prints the failover comparison.
func RenderFailover(rows []FailoverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-8s %7s %9s %7s %8s %8s %7s %7s %6s %12s %8s %7s\n",
		"policy", "mode", "outages", "downtime", "warmup", "reports", "hb-defer", "rd-defer",
		"killed", "ckpts", "master-avail", "gmtt", "failed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s %7d %9.2f %7.2f %8d %8d %7d %7d %6d %12.4f %8.2f %7d\n",
			r.Policy, r.Mode, r.Outages, r.Downtime, r.WarmupTime, r.BlockReports,
			r.DeferredHeartbeats, r.DeferredReads, r.KilledTasks, r.Checkpoints,
			r.MasterAvailability, r.GMTT, r.FailedJobs)
	}
	b.WriteString("(identical master-outage schedule per arm: crashes at 25% and 60% of the arrival span, each span/16 long;\n journal = checkpoint+replay recovery, report = cold start warmed by per-node block reports;\n racks of 5, replication factor 2, fifo)\n")
	return b.String()
}
