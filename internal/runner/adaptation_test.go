package runner

import (
	"strings"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// TestAdaptationReactiveBeatsEpochBased locks in the §VI claim: after a
// popularity shift, the reactive DARE recovers its locality faster than
// the epoch-based Scarlett baseline, and does so without spending any
// network traffic on replica creation.
func TestAdaptationReactiveBeatsEpochBased(t *testing.T) {
	rows, err := Adaptation(500, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]AdaptationRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	van, et, scar := byPolicy["vanilla"], byPolicy["elephanttrap"], byPolicy["scarlett"]

	// Pre-shift (Q2): both replication schemes beat vanilla.
	if et.QuarterLocality[1] <= van.QuarterLocality[1] {
		t.Fatalf("DARE Q2 %.3f not above vanilla %.3f", et.QuarterLocality[1], van.QuarterLocality[1])
	}
	if scar.QuarterLocality[1] <= van.QuarterLocality[1] {
		t.Fatalf("Scarlett Q2 %.3f not above vanilla %.3f", scar.QuarterLocality[1], van.QuarterLocality[1])
	}

	// Immediately post-shift (Q3): the reactive scheme is already above
	// vanilla — it needs no epoch boundary to start re-replicating.
	if et.QuarterLocality[2] <= van.QuarterLocality[2] {
		t.Fatalf("DARE Q3 %.3f not above vanilla %.3f right after the shift", et.QuarterLocality[2], van.QuarterLocality[2])
	}
	// Post-shift steady state (Q4): DARE above vanilla again.
	if et.QuarterLocality[3] <= van.QuarterLocality[3] {
		t.Fatalf("DARE Q4 %.3f not above vanilla %.3f", et.QuarterLocality[3], van.QuarterLocality[3])
	}

	// Relative dip at the shift: the reactive scheme's locality falls by
	// no deeper a fraction of its own pre-shift level than the epoch
	// scheme's (small tolerance — both are stochastic).
	dip := func(r AdaptationRow) float64 {
		if r.QuarterLocality[1] == 0 {
			return 0
		}
		return (r.QuarterLocality[1] - r.QuarterLocality[2]) / r.QuarterLocality[1]
	}
	if dip(et) > dip(scar)+0.10 {
		t.Fatalf("DARE dip %.2f much deeper than Scarlett %.2f", dip(et), dip(scar))
	}

	// Network cost: DARE and vanilla pay nothing for replication;
	// Scarlett's proactive copies move real bytes.
	if et.ReplicationNetworkBytes != 0 || van.ReplicationNetworkBytes != 0 {
		t.Fatal("DARE/vanilla replication must be free of network cost")
	}
	if scar.ReplicationNetworkBytes == 0 {
		t.Fatal("Scarlett replication should cost network traffic")
	}
}

func TestAdaptationDeterministic(t *testing.T) {
	a, err := Adaptation(150, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Adaptation(150, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestRenderAdaptation(t *testing.T) {
	rows := []AdaptationRow{{Policy: "vanilla", QuarterLocality: [4]float64{0.1, 0.2, 0.2, 0.1}, RecoveryQ4OverQ2: 0.5}}
	out := RenderAdaptation(rows)
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "recovery") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

// TestScarlettRunIntegration: a full run with the Scarlett policy keeps
// the DFS consistent and reports its stats through the standard Output.
func TestScarlettRunIntegration(t *testing.T) {
	wl := truncate(workload.WL2(testSeed), 200)
	out, err := Run(Options{
		Profile:   config.CCT(),
		Workload:  wl,
		Scheduler: "fifo",
		Policy:    PolicyFor(core.ScarlettPolicy),
		Seed:      testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.PolicyName != "scarlett" {
		t.Fatalf("policy name %q", out.PolicyName)
	}
	if out.Summary.ReplicasCreated == 0 {
		t.Fatal("Scarlett created no replicas")
	}
	if out.ExtraNetworkBytes == 0 {
		t.Fatal("Scarlett replication should cost network bytes")
	}
}
