package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"strings"
	"sync/atomic"

	"dare/internal/sim"
	"dare/internal/snapshot"
)

// Checkpoint section IDs inside a snapshot.File.
const (
	sectionSpec   = "spec"   // RunSpec JSON — the run's serializable identity
	sectionCursor = "cursor" // cursorRec JSON — where the run was cut
	sectionState  = "state"  // snapshot.StateTable — the full-stack fingerprint

	// Direct-state image sections (state-mode resume, O(state) restore).
	// Absent on replay-only checkpoints: older files, runs whose pending
	// set held an untaggable event, or an RNG backend without state access.
	sectionImgEngine  = "img.engine"  // pending-event set (genesis refs + tagged records)
	sectionImgDFS     = "img.dfs"     // name-node registry
	sectionImgTracker = "img.tracker" // compute layer: jobs, slots, scheduler, in-flight tasks
	sectionImgCore    = "img.core"    // DARE manager / Scarlett controller
	sectionImgStream  = "img.stream"  // service-mode generator cursor
	sectionImgCounts  = "img.counts"  // bus event tallies at the cut
)

// DefaultCheckpointEvery is the checkpoint cadence (in processed
// simulation events) when CheckpointSpec.Every is unset.
const DefaultCheckpointEvery = 200_000

// ErrInterrupted reports that the interrupt line was raised; the run
// stopped at a clean between-events boundary and, when checkpointing was
// armed, a final checkpoint was flushed first — resuming from it continues
// the run as if the interrupt never happened.
var ErrInterrupted = errors.New("runner: run interrupted")

// CheckpointSpec arms durable checkpointing for RunCheckpointed and
// Resume.
type CheckpointSpec struct {
	// Path is the checkpoint file; Path+".prev" keeps the previous good
	// generation (see snapshot.WriteFile).
	Path string
	// Every is the cadence in processed simulation events (<= 0 uses
	// DefaultCheckpointEvery).
	Every uint64
	// Interrupt, when non-nil, is polled between events: setting it (from
	// a signal handler) makes the run flush a final checkpoint and return
	// ErrInterrupted.
	Interrupt *atomic.Bool
	// AfterCheckpoint, when non-nil, runs after each durable checkpoint
	// write with the 1-based count written so far. An error aborts the
	// run — the crash-resume tests and dare-sim's -crash-after-checkpoints
	// use it to die at an exact, reproducible boundary.
	AfterCheckpoint func(n int) error
}

func (c CheckpointSpec) every() uint64 {
	if c.Every == 0 {
		return DefaultCheckpointEvery
	}
	return c.Every
}

// DivergenceError reports that a resumed run's replayed state does not
// match the checkpoint it resumed from — determinism was broken between
// the checkpointing build/config and the resuming one. Rows name the
// layers that diverged (see snapshot.StateTable.Diff).
type DivergenceError struct{ Rows []string }

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("runner: resumed state diverges from checkpoint: %s", strings.Join(e.Rows, "; "))
}

// cursorRec pins the cut point: the engine's processed-event count (the
// replay target), its clock and sequence counter, and the byte/CRC
// position of each externally visible output stream at the cut. The
// output positions let Resume prove the re-emitted prefix is identical to
// what the original process had already written.
type cursorRec struct {
	Processed uint64  `json:"processed"`
	Now       float64 `json:"now"`
	Seq       uint64  `json:"seq"`

	EventBytes int64  `json:"eventBytes"`
	EventCRC   uint32 `json:"eventCRC,omitempty"`

	ReportBytes int64  `json:"reportBytes,omitempty"`
	ReportCRC   uint32 `json:"reportCRC,omitempty"`

	// Checkpoints counts durable writes so far (resume continues the
	// AfterCheckpoint numbering rather than restarting it).
	Checkpoints int `json:"checkpoints"`

	// StreamEmitted/StreamNext record the stream generator position for
	// service-mode runs (0 for batch runs).
	StreamEmitted int `json:"streamEmitted,omitempty"`
	StreamNext    int `json:"streamNext,omitempty"`
}

// countingWriter tracks the byte count and running CRC-32 of everything
// written through it — the cheap identity of an output stream's prefix.
type countingWriter struct {
	w   io.Writer
	n   int64
	crc hash.Hash32
}

func newCountingWriter(w io.Writer) *countingWriter {
	return &countingWriter{w: w, crc: crc32.NewIEEE()}
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc.Write(p[:n])
	c.n += int64(n)
	return n, err
}

// durable drives a runState in checkpointed slices: it is the RunWith
// drive closure shared by fresh checkpointed runs and resumes. The
// nextStop watermark persists across the tracker's drive segments
// (workload horizon, then each repair-drain extension), so checkpoint
// cadence is uniform in processed events regardless of segmentation.
type durable struct {
	rs       *runState
	ck       CheckpointSpec
	specData []byte
	cw       *countingWriter // event-log wrapper; nil when no event log
	rw       *countingWriter // stream-report wrapper; nil for batch runs
	stream   *streamDriver   // non-nil for service-mode runs

	nextStop uint64
	done     int // durable checkpoints written

	// Resume state: non-nil until the replay reaches the recorded cut and
	// verifies against it.
	cut *resumeCut

	// watermark is the engine sequence at first drive entry — the genesis
	// boundary for EncodePending. Events below it are recreated by
	// deterministic reconstruction; events above must carry state tags.
	watermark  uint64
	wmCaptured bool
	// restore, when non-nil, is a pending state-mode restore applied at
	// first drive entry, before any event processes.
	restore *stateRestore
	// baseEvent/baseReport offset the output cursors on a state-mode
	// resumed run: the sinks only receive post-cut bytes, but cursors must
	// describe the full logical stream (prefix + suffix). A non-zero base
	// makes the prefix CRC unknowable, so those cursors carry CRC 0 and
	// later resumes verify byte counts only.
	baseEvent  int64
	baseReport int64
}

type resumeCut struct {
	cursor cursorRec
	table  *snapshot.StateTable
}

func (d *durable) drive(eng *sim.Engine, until float64) error {
	if !d.wmCaptured {
		// First drive entry: construction and genesis scheduling are done,
		// nothing has processed. This sequence number separates genesis
		// events (recreated by reconstruction) from runtime ones (which
		// need tags) — and it is the moment a state image can be applied.
		d.wmCaptured = true
		d.watermark = eng.Seq()
		if d.restore != nil {
			if err := d.applyState(); err != nil {
				return err
			}
		}
	}
	for {
		switch eng.RunUntilOutcome(until, d.nextStop) {
		case sim.RunBudget:
			if d.cut != nil && eng.Processed() == d.cut.cursor.Processed {
				if err := d.verifyCut(); err != nil {
					return err
				}
				// The replay is verified: from here the run is live. Arm
				// the interrupt line and fall into the normal cadence.
				d.cut = nil
				eng.SetInterrupt(d.ck.Interrupt)
				d.nextStop = eng.Processed() + d.ck.every()
				continue
			}
			if err := d.checkpoint(); err != nil {
				return err
			}
			d.nextStop = eng.Processed() + d.ck.every()
		case sim.RunInterrupted:
			if err := d.checkpoint(); err != nil {
				return err
			}
			return ErrInterrupted
		default:
			// Drained or stopped: this drive segment is complete.
			return nil
		}
	}
}

// checkpoint flushes the recorder (so the output cursors are exact) and
// writes one durable generation. Checkpointing is pure observation: it
// processes no events and draws from no stream, so an armed run is
// byte-identical to an unarmed one.
func (d *durable) checkpoint() error {
	if d.rs.rec != nil {
		// Flush even when unarmed: an interrupt-only run must leave its
		// JSONL sink complete up to the stop boundary.
		if err := d.rs.rec.Flush(); err != nil {
			return fmt.Errorf("runner: flushing event log before checkpoint: %w", err)
		}
	}
	if d.ck.Path == "" {
		// Checkpointing unarmed (a run driven only for interrupt support):
		// nothing durable to write.
		return nil
	}
	cur := d.cursorNow()
	cur.Checkpoints = d.done + 1
	curData, err := json.Marshal(cur)
	if err != nil {
		return err
	}
	tab := &snapshot.StateTable{}
	d.rs.addState(tab)
	if d.stream != nil {
		d.stream.addState(tab)
	}
	f := &snapshot.File{Sections: []snapshot.Section{
		{ID: sectionSpec, Data: d.specData},
		{ID: sectionCursor, Data: curData},
		{ID: sectionState, Data: tab.Encode()},
	}}
	// Best effort: a failure (untaggable pending event, RNG backend
	// without state access) just omits the image sections, leaving a
	// replay-only checkpoint — resume falls back automatically.
	if img, err := d.imageSections(); err == nil {
		f.Sections = append(f.Sections, img...)
	}
	if err := snapshot.WriteFile(d.ck.Path, f); err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	d.done++
	if d.ck.AfterCheckpoint != nil {
		if err := d.ck.AfterCheckpoint(d.done); err != nil {
			return err
		}
	}
	return nil
}

func (d *durable) cursorNow() cursorRec {
	eng := d.rs.cluster.Eng
	cur := cursorRec{
		Processed:   eng.Processed(),
		Now:         eng.Now(),
		Seq:         eng.Seq(),
		Checkpoints: d.done,
	}
	if d.cw != nil {
		cur.EventBytes = d.baseEvent + d.cw.n
		if d.baseEvent == 0 {
			cur.EventCRC = d.cw.crc.Sum32()
		}
	}
	if d.rw != nil {
		cur.ReportBytes = d.baseReport + d.rw.n
		if d.baseReport == 0 {
			cur.ReportCRC = d.rw.crc.Sum32()
		}
	}
	if d.stream != nil {
		cur.StreamEmitted = d.stream.src.Emitted()
		cur.StreamNext = d.stream.nextWindow
	}
	return cur
}

// verifyCut proves the replayed run is the run that was checkpointed: the
// full-stack state fingerprint and every output stream's byte/CRC position
// must match what the checkpoint recorded at the same processed-event
// count. Any mismatch is a DivergenceError naming the layer.
func (d *durable) verifyCut() error {
	if d.rs.rec != nil {
		if err := d.rs.rec.Flush(); err != nil {
			return fmt.Errorf("runner: flushing event log at resume cut: %w", err)
		}
	}
	var rows []string
	now := d.cursorNow()
	want := d.cut.cursor
	if now.Now != want.Now || now.Seq != want.Seq {
		rows = append(rows, fmt.Sprintf("engine clock/seq: got (%v, %d), checkpoint (%v, %d)", now.Now, now.Seq, want.Now, want.Seq))
	}
	// CRC 0 means the checkpoint was written by a state-mode resumed run
	// whose prefix CRC was unknowable: verify byte counts only.
	if d.cw != nil && (now.EventBytes != want.EventBytes || (want.EventCRC != 0 && now.EventCRC != want.EventCRC)) {
		rows = append(rows, fmt.Sprintf("event log: got %d bytes crc %08x, checkpoint %d bytes crc %08x", now.EventBytes, now.EventCRC, want.EventBytes, want.EventCRC))
	}
	if d.rw != nil && (now.ReportBytes != want.ReportBytes || (want.ReportCRC != 0 && now.ReportCRC != want.ReportCRC)) {
		rows = append(rows, fmt.Sprintf("stream report: got %d bytes crc %08x, checkpoint %d bytes crc %08x", now.ReportBytes, now.ReportCRC, want.ReportBytes, want.ReportCRC))
	}
	tab := &snapshot.StateTable{}
	d.rs.addState(tab)
	if d.stream != nil {
		d.stream.addState(tab)
	}
	rows = append(rows, d.cut.table.Diff(tab)...)
	if len(rows) > 0 {
		return &DivergenceError{Rows: rows}
	}
	d.done = want.Checkpoints
	return nil
}

// RunCheckpointed is Run with durable checkpoints every ck.Every processed
// events: a process killed at any instant can continue from the last good
// generation with Resume and produce the identical Output and event trace.
// When ck.Interrupt is raised mid-run it returns ErrInterrupted after
// flushing a final checkpoint. With an empty Path and a non-nil Interrupt
// the run is interrupt-only: nothing durable is written, but a raised
// line still stops it cleanly between events with the event log flushed.
func RunCheckpointed(opts Options, ck CheckpointSpec) (*Output, error) {
	if ck.Path == "" && ck.Interrupt == nil {
		return nil, fmt.Errorf("runner: CheckpointSpec needs a Path (durable checkpoints) or an Interrupt line (clean-stop only)")
	}
	var specData []byte
	if ck.Path != "" {
		spec, err := SpecFromOptions(opts)
		if err != nil {
			return nil, err
		}
		if specData, err = encodeSpec(spec); err != nil {
			return nil, err
		}
	}
	var cw *countingWriter
	if opts.EventLog != nil {
		cw = newCountingWriter(opts.EventLog)
		opts.EventLog = cw
	}
	rs, err := newRunState(opts)
	if err != nil {
		return nil, err
	}
	d := &durable{rs: rs, ck: ck, specData: specData, cw: cw}
	d.nextStop = rs.cluster.Eng.Processed() + ck.every()
	rs.cluster.Eng.SetInterrupt(ck.Interrupt)
	results, err := rs.tracker.RunWith(d.drive)
	if err != nil {
		return nil, err
	}
	return rs.finish(results)
}

// Resume continues a run from the checkpoint at path (falling back to
// path+".prev" when the primary is torn — a SIGKILL mid-write). The run is
// rebuilt from the stored spec and replayed from genesis to the recorded
// cut; the replayed state is verified against the checkpoint's fingerprint
// (a mismatch is a DivergenceError), then the run continues live with the
// same checkpoint cadence. eventLog, when non-nil, receives the complete
// event trace from genesis — byte-identical to an uninterrupted run's —
// and must be a fresh sink (the CLI re-opens the log file truncated).
func Resume(path string, eventLog io.Writer, ck CheckpointSpec) (*Output, error) {
	if ck.Path == "" {
		ck.Path = path
	}
	f, fromPrev, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	_ = fromPrev
	spec, cur, tab, err := decodeCheckpoint(f)
	if err != nil {
		return nil, err
	}
	if spec.Stream != nil {
		return nil, fmt.Errorf("runner: checkpoint %s holds a streaming run; use ResumeStream", path)
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	var cw *countingWriter
	if eventLog != nil {
		cw = newCountingWriter(eventLog)
		opts.EventLog = cw
	} else if cur.EventBytes > 0 {
		return nil, fmt.Errorf("runner: checkpoint recorded an event log (%d bytes at cut); resume needs the re-opened sink to reproduce it", cur.EventBytes)
	}
	rs, err := newRunState(opts)
	if err != nil {
		return nil, err
	}
	d := &durable{
		rs: rs, ck: ck, specData: mustSection(f, sectionSpec), cw: cw,
		nextStop: cur.Processed,
		cut:      &resumeCut{cursor: *cur, table: tab},
	}
	// The interrupt line stays unarmed until the cut verifies: a signal
	// during fast-forward must not write a checkpoint generation that
	// precedes the one being resumed.
	results, err := rs.tracker.RunWith(d.drive)
	if err != nil {
		return nil, err
	}
	if d.cut != nil {
		return nil, &DivergenceError{Rows: []string{fmt.Sprintf(
			"run completed at %d processed events, before the checkpoint cut at %d — the replay is not the run that was checkpointed",
			rs.cluster.Eng.Processed(), cur.Processed)}}
	}
	return rs.finish(results)
}

func decodeCheckpoint(f *snapshot.File) (*RunSpec, *cursorRec, *snapshot.StateTable, error) {
	specData, ok := f.Section(sectionSpec)
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: checkpoint has no %q section", snapshot.ErrFormat, sectionSpec)
	}
	spec, err := decodeSpec(specData)
	if err != nil {
		return nil, nil, nil, err
	}
	curData, ok := f.Section(sectionCursor)
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: checkpoint has no %q section", snapshot.ErrFormat, sectionCursor)
	}
	var cur cursorRec
	if err := json.Unmarshal(curData, &cur); err != nil {
		return nil, nil, nil, fmt.Errorf("runner: decoding checkpoint cursor: %w", err)
	}
	stateData, ok := f.Section(sectionState)
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: checkpoint has no %q section", snapshot.ErrFormat, sectionState)
	}
	tab, err := snapshot.DecodeStateTable(stateData)
	if err != nil {
		return nil, nil, nil, err
	}
	return spec, &cur, tab, nil
}

func mustSection(f *snapshot.File, id string) []byte {
	b, _ := f.Section(id)
	return b
}
