package runner

import (
	"strings"
	"testing"
)

// TestOutputBoundGapUntouched operationalizes §V-C: "Dynamic replication
// does not expedite output-bound tasks, whose turnaround time is
// dominated by output processing." The output-write pipeline makes
// output-bound jobs substantially slower than input-bound ones, and DARE
// — which only accelerates input reads — must leave that gap essentially
// intact.
func TestOutputBoundGapUntouched(t *testing.T) {
	rows, err := OutputBound(400, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %d", len(rows))
	}
	var in, out OutputBoundRow
	for _, r := range rows {
		switch r.Class {
		case "input-bound":
			in = r
		case "output-bound":
			out = r
		}
	}
	if in.Jobs == 0 || out.Jobs == 0 {
		t.Fatalf("empty class: %+v", rows)
	}
	// The write pipeline is visible: output-bound jobs are much slower
	// under both policies.
	if out.VanillaGMTT < 1.2*in.VanillaGMTT {
		t.Fatalf("output-bound vanilla GMTT %.2f not clearly above input-bound %.2f", out.VanillaGMTT, in.VanillaGMTT)
	}
	if out.DareGMTT < 1.2*in.DareGMTT {
		t.Fatalf("output-bound DARE GMTT %.2f not clearly above input-bound %.2f", out.DareGMTT, in.DareGMTT)
	}
	// DARE cannot close the output-processing gap: the absolute
	// service-time gap between the classes survives replication.
	gapVanilla := out.VanillaGMTT - in.VanillaGMTT
	gapDare := out.DareGMTT - in.DareGMTT
	if gapDare < 0.7*gapVanilla {
		t.Fatalf("DARE closed the output gap (%.2f -> %.2f); it should not touch output processing", gapVanilla, gapDare)
	}
	// Neither class regresses materially.
	for _, r := range rows {
		if r.ReductionPercent < -3 {
			t.Fatalf("%s regressed by %.1f%%", r.Class, -r.ReductionPercent)
		}
	}
}

func TestOutputBoundDeterministic(t *testing.T) {
	a, err := OutputBound(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OutputBound(150, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestRenderOutputBound(t *testing.T) {
	out := RenderOutputBound([]OutputBoundRow{{Class: "input-bound", Jobs: 10, VanillaGMTT: 5, DareGMTT: 4.5, ReductionPercent: 10}})
	if !strings.Contains(out, "input-bound") || !strings.Contains(out, "reduction%") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
