package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Cross-run parallelism. Run is a pure function of Options — it builds its
// own engine, cluster, DFS, scheduler, and DARE manager per call and
// shares no mutable state with other runs — so independent runs can
// execute on separate goroutines. Each simulated world stays strictly
// single-threaded (the determinism contract); only whole runs fan out.
// Every experiment driver in this package funnels its loop over Run
// through forEachIndex, so one knob parallelizes the entire evaluation.

// parallelismOverride is the configured worker count; <= 0 means "use
// GOMAXPROCS". It is process-global (not per-Options) because it describes
// the host machine, not the experiment.
var parallelismOverride atomic.Int64

// SetParallelism bounds how many simulations may run concurrently across
// all drivers in this package. n <= 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) { parallelismOverride.Store(int64(n)) }

// Parallelism reports the current worker bound.
func Parallelism() int {
	if n := parallelismOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndex runs fn(0..n-1) across min(Parallelism(), n) workers and
// waits for completion. Workers pull indices from an atomic counter in
// ascending order; on error the remaining indices are abandoned and the
// error with the LOWEST index is returned — the same error a serial loop
// would have surfaced, regardless of goroutine interleaving. (The
// lowest-index property holds because indices are claimed in ascending
// order: every index below a claimed one was also claimed, so the minimum
// erroring index is always among the executed calls.)
func forEachIndex(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx = -1
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstIdx < 0 || i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// RunAll executes every Options on the worker pool and returns the outputs
// in input order. Results are deterministic: outs[i] is exactly what
// Run(opts[i]) returns, and on failure the returned error is the one the
// serial loop would have hit first.
func RunAll(opts []Options) ([]*Output, error) {
	outs := make([]*Output, len(opts))
	err := forEachIndex(len(opts), func(i int) error {
		out, err := Run(opts[i])
		if err != nil {
			return fmt.Errorf("runner: run %d: %w", i, err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// runAllLabeled is RunAll with caller-supplied error labels, preserving
// each driver's historical error messages.
func runAllLabeled(opts []Options, label func(i int) string) ([]*Output, error) {
	outs := make([]*Output, len(opts))
	err := forEachIndex(len(opts), func(i int) error {
		out, err := Run(opts[i])
		if err != nil {
			return fmt.Errorf("%s: %w", label(i), err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}
