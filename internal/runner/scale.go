package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/event"
	"dare/internal/workload"
)

// ScaleRow reports one arm of the scale benchmark: the same workload on an
// n-node cluster with heartbeats driven either by coalesced cohort events
// (the default) or by one ticker per node (the pre-coalescing behaviour).
type ScaleRow struct {
	// Nodes is the cluster size (slaves).
	Nodes int `json:"nodes"`
	// Mode is the heartbeat driver: "cohort" or "per-node".
	Mode string `json:"mode"`
	// CPUSeconds is the process CPU time one run consumed (min over reps;
	// see EngineRow for why CPU time and why min).
	CPUSeconds float64 `json:"cpu_seconds"`
	// EngineEvents is the number of simulation events the run executed.
	// This is where coalescing shows: cohort mode schedules one engine
	// event per cohort per interval instead of one per node.
	EngineEvents uint64 `json:"engine_events"`
	// BusEvents is the number of cluster bus events the run published —
	// identical across modes by the equivalence property, which makes
	// BusEventsPerSec the mode-invariant useful-work throughput.
	BusEvents uint64 `json:"bus_events"`
	// Heartbeats is the heartbeat share of BusEvents (also mode-invariant:
	// each node still publishes one heartbeat per interval).
	Heartbeats uint64 `json:"heartbeats"`
	// BusEventsPerSec is BusEvents / CPUSeconds.
	BusEventsPerSec float64 `json:"bus_events_per_sec"`
	// EngineEventsPerSec is EngineEvents / CPUSeconds.
	EngineEventsPerSec float64 `json:"engine_events_per_sec"`
	// AllocsPerBusEvent is heap allocations (runtime Mallocs delta) per bus
	// event published.
	AllocsPerBusEvent float64 `json:"allocs_per_bus_event"`
	// HeartbeatShare is Heartbeats / BusEvents — the heartbeat tax.
	HeartbeatShare float64 `json:"heartbeat_share"`
}

// scaleSizes is the cluster-size ladder of the scale benchmark (A16).
var scaleSizes = []int{1000, 4000, 10000, 20000}

// ScaleProfile builds the n-node benchmark cluster: a dedicated profile
// with CCT's calibrated performance models, 40-node racks, and CCT's
// aggressive 0.25 s heartbeat — deliberately kept short at scale so the
// benchmark measures the heartbeat machinery under maximum pressure.
func ScaleProfile(nodes int) *config.Profile {
	p := config.CCT()
	p.Name = fmt.Sprintf("scale-%d", nodes)
	p.Slaves = nodes
	p.RackSize = 40
	return p
}

// ScaleStudy benchmarks the heartbeat driver head to head across cluster
// sizes: for each size in {1k, 4k, 10k, 20k} it replays the same workload
// in coalesced-cohort and per-node mode, measuring process CPU time,
// engine events, bus events, and allocations. Arms run serially — never
// under the sweep pool — because CPU-time and Mallocs deltas are only
// meaningful with the process otherwise quiet. Both modes of a size
// publish byte-identical bus event streams (same seed, same heartbeat
// instants and order), so any BusEventsPerSec difference is pure driver
// cost.
func ScaleStudy(jobs int, seed uint64) ([]ScaleRow, error) {
	if jobs <= 0 {
		jobs = 120
	}
	var rows []ScaleRow
	for _, n := range scaleSizes {
		profile := ScaleProfile(n)
		wl := truncate(workload.WL1(seed), jobs)
		mkOpts := func(perNode bool) Options {
			return Options{
				Profile:           profile,
				Workload:          wl,
				Scheduler:         "fifo",
				Policy:            core.Config{Kind: core.NonePolicy},
				Seed:              seed,
				perNodeHeartbeats: perNode,
			}
		}
		pair, err := scaleArm(n, mkOpts(false), mkOpts(true))
		if err != nil {
			return nil, err
		}
		rows = append(rows, pair[0], pair[1])
	}
	return rows, nil
}

// scaleReps is how many timed repetitions each mode runs per cluster size;
// the row reports the minimum, so more reps strictly tighten the estimate.
// Large arms take seconds per rep, so this stays lower than engineReps.
const scaleReps = 5

// scaleArm executes one cluster size head to head: a discarded warm-up run
// per mode, then scaleReps cohort/per-node rep pairs back to back,
// interleaved so ambient machine drift cannot flip the comparison (same
// rationale as engineArm).
func scaleArm(nodes int, cohortOpts, perNodeOpts Options) ([2]ScaleRow, error) {
	pair := [2]ScaleRow{
		{Nodes: nodes, Mode: "cohort"},
		{Nodes: nodes, Mode: "per-node"},
	}
	opts := [2]Options{cohortOpts, perNodeOpts}
	// Park the GC pacer for the duration of the arm (see engineArm).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var cpus, mallocs [2][]float64
	batch := 1
	for i := range opts {
		start := time.Now() // warm-up: page-in code and data paths
		if _, err := Run(opts[i]); err != nil {
			return pair, fmt.Errorf("runner: scale/%d/%s: %w", nodes, pair[i].Mode, err)
		}
		// Size the timed region to >=~400ms (see engineArm); the large arms
		// already exceed it with a single run.
		if w := time.Since(start).Seconds(); w > 0 {
			if b := int(0.4/w) + 1; b > batch {
				batch = b
			}
		}
	}
	if batch > 16 {
		batch = 16
	}
	for rep := 0; rep < scaleReps; rep++ {
		for slot := range opts {
			// Alternate which mode goes first so neither systematically
			// inherits the warmer CPU state of slot two.
			i := slot
			if rep%2 == 1 {
				i = 1 - slot
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			startCPU := cpuSeconds()
			var out *Output
			for b := 0; b < batch; b++ {
				o, err := Run(opts[i])
				if err != nil {
					return pair, fmt.Errorf("runner: scale/%d/%s: %w", nodes, pair[i].Mode, err)
				}
				out = o
			}
			cpu := (cpuSeconds() - startCPU) / float64(batch)
			runtime.ReadMemStats(&after)
			pair[i].EngineEvents = out.EventsProcessed
			pair[i].BusEvents = out.EventCounts.Total()
			pair[i].Heartbeats = out.EventCounts[event.Heartbeat]
			cpus[i] = append(cpus[i], cpu)
			mallocs[i] = append(mallocs[i], float64(after.Mallocs-before.Mallocs)/float64(batch))
		}
	}
	for i := range pair {
		// Min estimator, as in engineArm: host timing noise is strictly
		// additive, so the smallest sample is the tightest bound on
		// intrinsic cost and both modes get an equal shot at a quiet window.
		cpu := minOf(cpus[i])
		pair[i].CPUSeconds = cpu
		if cpu > 0 {
			pair[i].BusEventsPerSec = float64(pair[i].BusEvents) / cpu
			pair[i].EngineEventsPerSec = float64(pair[i].EngineEvents) / cpu
		}
		if pair[i].BusEvents > 0 {
			pair[i].AllocsPerBusEvent = minOf(mallocs[i]) / float64(pair[i].BusEvents)
			pair[i].HeartbeatShare = float64(pair[i].Heartbeats) / float64(pair[i].BusEvents)
		}
	}
	return pair, nil
}

// RenderScale formats the scale benchmark table, pairing each size's
// cohort row with its per-node row and reporting the speedup.
func RenderScale(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-9s %13s %12s %9s %14s %12s %8s\n",
		"nodes", "mode", "engine-events", "bus-events", "cpu(s)", "bus-events/s", "allocs/bus-ev", "hb-share")
	bySize := map[int]ScaleRow{}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-9s %13d %12d %9.3f %14.0f %12.3f %8.3f\n",
			r.Nodes, r.Mode, r.EngineEvents, r.BusEvents, r.CPUSeconds, r.BusEventsPerSec, r.AllocsPerBusEvent, r.HeartbeatShare)
		if r.Mode == "per-node" {
			if co, ok := bySize[r.Nodes]; ok && r.BusEventsPerSec > 0 {
				fmt.Fprintf(&b, "%-7s %-9s %62.2fx cohort speedup, %.1fx fewer engine events\n",
					"", "", co.BusEventsPerSec/r.BusEventsPerSec, float64(r.EngineEvents)/float64(co.EngineEvents))
			}
		} else {
			bySize[r.Nodes] = r
		}
	}
	return b.String()
}
