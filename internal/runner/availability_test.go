package runner

import (
	"strings"
	"testing"
)

// TestAvailabilityDAREProtectsPopularData locks in the §IV-B claim:
// DARE's dynamic replicas raise the availability of the data users
// actually read when nodes fail.
func TestAvailabilityDAREProtectsPopularData(t *testing.T) {
	rows, err := Availability(400, 4, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]AvailabilityRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	van, lru, et := byPolicy["vanilla"], byPolicy["lru"], byPolicy["elephanttrap"]

	if van.DynamicReplicas != 0 {
		t.Fatal("vanilla run should hold no dynamic replicas")
	}
	if lru.DynamicReplicas == 0 || et.DynamicReplicas == 0 {
		t.Fatal("DARE runs should hold dynamic replicas at failure time")
	}
	// Access-weighted availability: DARE at least matches vanilla and the
	// greedy policy (which replicates most) strictly improves it.
	if lru.WeightedAvailability < van.WeightedAvailability {
		t.Fatalf("LRU weighted availability %.4f below vanilla %.4f",
			lru.WeightedAvailability, van.WeightedAvailability)
	}
	if et.WeightedAvailability < van.WeightedAvailability-1e-9 {
		t.Fatalf("ET weighted availability %.4f below vanilla %.4f",
			et.WeightedAvailability, van.WeightedAvailability)
	}
	// Sanity: availabilities are probabilities and failures did bite.
	for _, r := range rows {
		if r.BlockAvailability <= 0 || r.BlockAvailability > 1 {
			t.Fatalf("%s block availability %v", r.Policy, r.BlockAvailability)
		}
		if r.BlockAvailability == 1 {
			t.Fatalf("%s: failures did not reduce availability; experiment is vacuous", r.Policy)
		}
	}
}

func TestAvailabilityDeterministic(t *testing.T) {
	a, err := Availability(150, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Availability(150, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestAvailabilityDefaults(t *testing.T) {
	rows, err := Availability(0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].FailedNodes != 4 {
		t.Fatalf("defaults not applied: %+v", rows)
	}
}

func TestRenderAvailability(t *testing.T) {
	out := RenderAvailability([]AvailabilityRow{{Policy: "vanilla", FailedNodes: 4, BlockAvailability: 0.97, WeightedAvailability: 0.99}})
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "weighted-avail") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
