package runner

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/snapshot"
	"dare/internal/workload"
)

// stateScenarios extends the crash-resume scenario set with a failover
// run (master outages exercise the journal/blame state and the outage
// retry tags) — every family a state image must cover.
func stateScenarios() []durableScenario {
	return append(durableScenarios(), durableScenario{
		name: "failover-et-fifo",
		opts: func() Options {
			return Options{
				Profile:   config.CCT(),
				Workload:  truncate(workload.WL1(19), 35),
				Scheduler: "fifo",
				Policy:    PolicyFor(core.ElephantTrapPolicy),
				Seed:      19,
				MasterOutages: []MasterOutage{
					{At: 2, Down: 3, Mode: "journal"},
					{At: 9, Down: 2, Mode: "report"},
				},
			}
		},
	})
}

// crashForState runs opts checkpointed until the simulated crash and
// returns the checkpoint path plus the dead process's partial event log.
// It fails the test if the surviving checkpoint carries no state image —
// these tests must exercise the O(state) path, not the replay fallback.
func crashForState(t *testing.T, opts Options, path string) []byte {
	t.Helper()
	hook, crashErr := crashAfter(2)
	var partial bytes.Buffer
	opts.EventLog = &partial
	_, err := RunCheckpointed(opts, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook})
	if !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !hasStateImage(f, false) {
		t.Fatal("checkpoint carries no state image; the state-mode path would silently fall back to replay")
	}
	return partial.Bytes()
}

// TestStateResumeDifferential is the tentpole contract for O(state)
// restore: a run killed at a checkpoint and state-resumed produces the
// byte-identical Output as the uninterrupted run, and the dead process's
// log prefix plus the resumed suffix reassembles the identical event
// trace — across plain, churn, chaos, and failover scenarios.
func TestStateResumeDifferential(t *testing.T) {
	for _, sc := range stateScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			wantOut, wantLog := runBaseline(t, sc.opts())

			path := filepath.Join(t.TempDir(), "run.ckpt")
			partial := crashForState(t, sc.opts(), path)
			info, err := InspectCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if !info.StateResumable || info.Stream {
				t.Fatalf("InspectCheckpoint: got %+v, want batch state-resumable", info)
			}
			if int64(len(partial)) < info.EventBytes {
				t.Fatalf("dead process's log holds %d bytes, cursor recorded %d", len(partial), info.EventBytes)
			}

			var suffix bytes.Buffer
			out, err := ResumeWithMode(path, &suffix, CheckpointSpec{Path: path, Every: 300}, ResumeState)
			if err != nil {
				t.Fatal(err)
			}
			if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
				t.Errorf("state-resumed output diverges from uninterrupted run\nresumed: %s\nwant:    %s", got, wantOut)
			}
			full := append(append([]byte(nil), partial[:info.EventBytes]...), suffix.Bytes()...)
			if !bytes.Equal(full, wantLog) {
				t.Errorf("prefix+suffix event trace diverges from uninterrupted run (%d vs %d bytes)", len(full), len(wantLog))
			}
		})
	}
}

// TestStateResumeMatchesReplayResume: the two restore strategies are
// interchangeable — resuming the same checkpoint in both modes yields the
// identical Output (the replay is the oracle the state image is judged
// against).
func TestStateResumeMatchesReplayResume(t *testing.T) {
	sc := durableScenarios()[1] // churn: RNG-heavy state
	path := filepath.Join(t.TempDir(), "run.ckpt")
	crashForState(t, sc.opts(), path)

	var replayLog bytes.Buffer
	replayOut, err := ResumeWithMode(path, &replayLog, CheckpointSpec{Path: path, Every: 300}, ResumeReplay)
	if err != nil {
		t.Fatal(err)
	}
	var stateSuffix bytes.Buffer
	stateOut, err := ResumeWithMode(path, &stateSuffix, CheckpointSpec{Path: path, Every: 300}, ResumeState)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := outputJSON(t, stateOut), outputJSON(t, replayOut); !bytes.Equal(got, want) {
		t.Errorf("state and replay resumes disagree\nstate:  %s\nreplay: %s", got, want)
	}
	// The replay log is the full trace; the state log is its suffix.
	if !bytes.HasSuffix(replayLog.Bytes(), stateSuffix.Bytes()) {
		t.Error("state-resume suffix is not a suffix of the replay-resume trace")
	}
}

// TestStateResumeStreamDifferential: the service-mode contract — killed
// and state-resumed, the spliced event trace AND report stream are
// byte-identical to the uninterrupted run's.
func TestStateResumeStreamDifferential(t *testing.T) {
	wantOut, wantLog, wantReport := runStreamBaseline(t)

	path := filepath.Join(t.TempDir(), "svc.ckpt")
	hook, crashErr := crashAfter(2)
	opts := streamOpts()
	var partialLog, partialReport bytes.Buffer
	opts.EventLog = &partialLog
	_, err := RunStream(opts, streamSpec(), &partialReport, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook})
	if !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}
	info, err := InspectCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.StateResumable || !info.Stream {
		t.Fatalf("InspectCheckpoint: got %+v, want stream state-resumable", info)
	}

	var logSuffix, reportSuffix bytes.Buffer
	out, err := ResumeStreamWithMode(path, &logSuffix, &reportSuffix, CheckpointSpec{Path: path, Every: 300}, ResumeState)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
		t.Errorf("state-resumed stream output diverges\nresumed: %s\nwant:    %s", got, wantOut)
	}
	fullLog := append(append([]byte(nil), partialLog.Bytes()[:info.EventBytes]...), logSuffix.Bytes()...)
	if !bytes.Equal(fullLog, wantLog) {
		t.Errorf("spliced stream event trace diverges (%d vs %d bytes)", len(fullLog), len(wantLog))
	}
	fullReport := append(append([]byte(nil), partialReport.Bytes()[:info.ReportBytes]...), reportSuffix.Bytes()...)
	if !bytes.Equal(fullReport, wantReport) {
		t.Errorf("spliced stream report diverges (%d vs %d bytes)\nspliced: %s\nwant:    %s",
			len(fullReport), len(wantReport), fullReport, wantReport)
	}
}

// stripImageSections rewrites the checkpoint at path without its direct
// state image, leaving a replay-only file (what an older build writes).
func stripImageSections(t *testing.T, path string) {
	t.Helper()
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	kept := f.Sections[:0]
	for _, s := range f.Sections {
		if !strings.HasPrefix(s.ID, "img.") {
			kept = append(kept, s)
		}
	}
	f.Sections = kept
	if err := snapshot.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	os.Remove(path + snapshot.PrevSuffix)
}

// TestStateResumeFallsBackToReplay: asked for state mode against a
// replay-only checkpoint, resume silently downgrades to the replay oracle
// and still reproduces the uninterrupted run (with the full from-genesis
// trace, since no prefix can be continued).
func TestStateResumeFallsBackToReplay(t *testing.T) {
	sc := durableScenarios()[0]
	wantOut, wantLog := runBaseline(t, sc.opts())

	path := filepath.Join(t.TempDir(), "run.ckpt")
	crashForState(t, sc.opts(), path)
	stripImageSections(t, path)
	info, err := InspectCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.StateResumable {
		t.Fatal("stripped checkpoint still reports a state image")
	}

	var log bytes.Buffer
	out, err := ResumeWithMode(path, &log, CheckpointSpec{Path: path, Every: 300}, ResumeState)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
		t.Error("fallback resume output diverges from uninterrupted run")
	}
	if !bytes.Equal(log.Bytes(), wantLog) {
		t.Error("fallback resume event trace diverges (expected full from-genesis log)")
	}
}

// TestStateResumeTornImageFallsBack: a torn primary (SIGKILL mid-write)
// makes LoadFile fall back to the .prev generation, and state mode rides
// along — the previous generation's image restores the run.
func TestStateResumeTornImageFallsBack(t *testing.T) {
	sc := durableScenarios()[0]
	wantOut, _ := runBaseline(t, sc.opts())

	path := filepath.Join(t.TempDir(), "run.ckpt")
	hook, crashErr := crashAfter(3)
	opts := sc.opts()
	opts.EventLog = &bytes.Buffer{}
	if _, err := RunCheckpointed(opts, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook}); !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := ResumeWithMode(path, &bytes.Buffer{}, CheckpointSpec{Path: path, Every: 300}, ResumeState)
	if err != nil {
		t.Fatal(err)
	}
	if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
		t.Error("state resume from .prev generation diverges from uninterrupted run")
	}
}

// TestStateImageDetectsCorruption: flipping bytes inside an image section
// must surface as a typed error (decode failure or DivergenceError), never
// a silently wrong run. Complements FuzzStateRestore with a deterministic
// regression case.
func TestStateImageDetectsCorruption(t *testing.T) {
	sc := durableScenarios()[0]
	wantOut, _ := runBaseline(t, sc.opts())

	path := filepath.Join(t.TempDir(), "run.ckpt")
	crashForState(t, sc.opts(), path)
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Sections {
		if s.ID != sectionImgTracker {
			continue
		}
		for i := range s.Data {
			s.Data[i] ^= 0xA5
		}
	}
	if err := snapshot.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	os.Remove(path + snapshot.PrevSuffix)

	out, err := ResumeWithMode(path, &bytes.Buffer{}, CheckpointSpec{Path: path, Every: 300}, ResumeState)
	if err == nil {
		if bytes.Equal(outputJSON(t, out), wantOut) {
			t.Skip("corruption happened to decode to the identical state")
		}
		t.Fatal("corrupted state image resumed without error to a different run")
	}
}

// FuzzStateRestore hammers the state-decode path with corrupted image
// sections: any mutation must either fail with an error or restore to the
// exact checkpointed state — never panic, never silently diverge past the
// fingerprint check.
func FuzzStateRestore(f *testing.F) {
	opts := Options{
		Profile:   config.CCT(),
		Workload:  truncate(workload.WL1(7), 12),
		Scheduler: "fifo",
		Policy:    PolicyFor(core.ElephantTrapPolicy),
		Seed:      7,
	}
	dir := f.TempDir()
	base := filepath.Join(dir, "fuzz.ckpt")
	hook, crashErr := crashAfter(1)
	// No event log: the checkpoint then records EventBytes 0, so the fuzz
	// resumes can pass a nil sink and still reach the decode path.
	if _, err := RunCheckpointed(opts, CheckpointSpec{Path: base, Every: 300, AfterCheckpoint: hook}); !errors.Is(err, crashErr) {
		f.Fatalf("expected simulated crash, got %v", err)
	}
	ckf, _, err := snapshot.LoadFile(base)
	if err != nil {
		f.Fatal(err)
	}
	imgIdx := make([]int, 0, len(ckf.Sections))
	for i, s := range ckf.Sections {
		if strings.HasPrefix(s.ID, "img.") {
			imgIdx = append(imgIdx, i)
		}
	}
	if len(imgIdx) == 0 {
		f.Fatal("fuzz checkpoint has no image sections")
	}
	f.Add(0, 0, byte(0xFF))
	f.Add(1, 5, byte(0x01))
	f.Add(2, 100, byte(0x80))
	f.Add(3, 7, byte(0xA5))

	var runs int
	f.Fuzz(func(t *testing.T, section, offset int, flip byte) {
		if flip == 0 {
			return // no-op mutation: identical to the verified clean resume
		}
		idx := imgIdx[((section%len(imgIdx))+len(imgIdx))%len(imgIdx)]
		mut := &snapshot.File{Sections: make([]snapshot.Section, len(ckf.Sections))}
		copy(mut.Sections, ckf.Sections)
		data := append([]byte(nil), ckf.Sections[idx].Data...)
		if len(data) == 0 {
			return
		}
		pos := ((offset % len(data)) + len(data)) % len(data)
		data[pos] ^= flip
		mut.Sections[idx].Data = data

		runs++
		path := filepath.Join(dir, fmt.Sprintf("mut-%d.ckpt", runs))
		if err := snapshot.WriteFile(path, mut); err != nil {
			t.Fatal(err)
		}
		defer os.Remove(path)
		defer os.Remove(path + snapshot.PrevSuffix)
		// Success is allowed only if the decode+fingerprint accepted the
		// mutation (e.g. a flipped bit in an unused float payload that
		// decodes identically); errors must be returned, not panicked.
		_, _ = ResumeWithMode(path, nil, CheckpointSpec{Path: path, Every: 300}, ResumeState)
	})
}
