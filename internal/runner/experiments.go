package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// EvaluatedPolicies is the figure legend of Figs. 7, 9 and 10: vanilla
// Hadoop, DARE with greedy LRU eviction, DARE with ElephantTrap eviction.
var EvaluatedPolicies = []core.PolicyKind{core.NonePolicy, core.GreedyLRUPolicy, core.ElephantTrapPolicy}

// PerfRow is one bar of the performance figures (7a/b/c, 10a/b/c).
type PerfRow struct {
	Workload  string
	Scheduler string
	Policy    string
	// Locality is the mean per-job data locality (Fig. 7a/10a).
	Locality float64
	// GMTT is the geometric mean turnaround time in seconds; GMTTNorm is
	// normalized to the vanilla run of the same (workload, scheduler) pair,
	// matching the figures' normalized y-axis (Fig. 7b/10b).
	GMTT, GMTTNorm float64
	// Slowdown is the mean job slowdown (Fig. 7c/10c).
	Slowdown float64
	// MeanMapTime backs the §V-C map-completion-time claim.
	MeanMapTime float64
	// BlocksPerJob and DiskWrites back the replication-activity panels and
	// the LRU-vs-ElephantTrap write ablation.
	BlocksPerJob float64
	DiskWrites   int64
}

// truncate limits a workload to its first n jobs (n <= 0 keeps all),
// letting benchmarks run scaled-down versions of the 500-job experiments.
func truncate(wl *workload.Workload, n int) *workload.Workload {
	if n <= 0 || n >= len(wl.Jobs) {
		return wl
	}
	out := *wl
	out.Jobs = wl.Jobs[:n]
	return &out
}

// PerfGrid runs the {workload × scheduler × policy} grid on a profile and
// computes the normalized metrics of Figs. 7 and 10.
func PerfGrid(profile *config.Profile, workloads, schedulers []string, jobs int, seed uint64) ([]PerfRow, error) {
	type cell struct {
		wl    string
		sched string
		kind  core.PolicyKind
	}
	var cells []cell
	var opts []Options
	for _, wlName := range workloads {
		wl, err := WorkloadByName(wlName, seed)
		if err != nil {
			return nil, err
		}
		wl = truncate(wl, jobs)
		for _, sched := range schedulers {
			for _, kind := range EvaluatedPolicies {
				cells = append(cells, cell{wl: wlName, sched: sched, kind: kind})
				opts = append(opts, Options{
					Profile:   profile,
					Workload:  wl,
					Scheduler: sched,
					Policy:    PolicyFor(kind),
					Seed:      seed,
				})
			}
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: %s/%s/%s", cells[i].wl, cells[i].sched, cells[i].kind)
	})
	if err != nil {
		return nil, err
	}
	// Outputs arrive in grid order, so the vanilla run of each (workload,
	// scheduler) group is still seen before the runs it normalizes.
	var rows []PerfRow
	var vanillaGMTT float64
	for i, out := range outs {
		if cells[i].kind == core.NonePolicy {
			vanillaGMTT = out.Summary.GMTT
		}
		norm := 0.0
		if vanillaGMTT > 0 {
			norm = out.Summary.GMTT / vanillaGMTT
		}
		rows = append(rows, PerfRow{
			Workload:     cells[i].wl,
			Scheduler:    cells[i].sched,
			Policy:       cells[i].kind.String(),
			Locality:     out.Summary.JobLocality,
			GMTT:         out.Summary.GMTT,
			GMTTNorm:     norm,
			Slowdown:     out.Summary.MeanSlowdown,
			MeanMapTime:  out.Summary.MeanMapTime,
			BlocksPerJob: out.Summary.BlocksPerJob,
			DiskWrites:   out.Summary.DiskWrites,
		})
	}
	return rows, nil
}

// Fig7 reproduces the dedicated-cluster performance grid (Fig. 7a/b/c):
// wl1 and wl2 under FIFO and Fair on the 20-node CCT profile.
func Fig7(jobs int, seed uint64) ([]PerfRow, error) {
	return PerfGrid(config.CCT(), []string{"wl1", "wl2"}, []string{"fifo", "fair"}, jobs, seed)
}

// Fig10 reproduces the virtualized-cloud grid (Fig. 10a/b/c): wl1 under
// FIFO and Fair on the 100-node EC2 profile. Arrivals are compressed by
// the slot ratio so the 5×-larger cluster sees the same per-slot load as
// the CCT runs (SWIM's scaling rule).
func Fig10(jobs int, seed uint64) ([]PerfRow, error) {
	cct, ec2 := config.CCT(), config.EC2()
	factor := float64(cct.Slaves*cct.MapSlotsPerNode) / float64(ec2.Slaves*ec2.MapSlotsPerNode)
	wl := truncate(workload.WL1(seed), jobs).ScaleArrivals(factor)
	scheds := []string{"fifo", "fair"}
	type cell struct {
		sched string
		kind  core.PolicyKind
	}
	var cells []cell
	var opts []Options
	for _, sched := range scheds {
		for _, kind := range EvaluatedPolicies {
			cells = append(cells, cell{sched: sched, kind: kind})
			opts = append(opts, Options{Profile: ec2, Workload: wl, Scheduler: sched, Policy: PolicyFor(kind), Seed: seed})
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: fig10 %s/%s", cells[i].sched, cells[i].kind)
	})
	if err != nil {
		return nil, err
	}
	var rows []PerfRow
	var vanillaGMTT float64
	for i, out := range outs {
		if cells[i].kind == core.NonePolicy {
			vanillaGMTT = out.Summary.GMTT
		}
		norm := 0.0
		if vanillaGMTT > 0 {
			norm = out.Summary.GMTT / vanillaGMTT
		}
		rows = append(rows, PerfRow{
			Workload: "wl1", Scheduler: cells[i].sched, Policy: cells[i].kind.String(),
			Locality: out.Summary.JobLocality, GMTT: out.Summary.GMTT, GMTTNorm: norm,
			Slowdown: out.Summary.MeanSlowdown, MeanMapTime: out.Summary.MeanMapTime,
			BlocksPerJob: out.Summary.BlocksPerJob, DiskWrites: out.Summary.DiskWrites,
		})
	}
	return rows, nil
}

// RenderPerf prints PerfRows in the layout of the paper's bar charts.
func RenderPerf(rows []PerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-5s %-13s %9s %10s %9s %9s %10s %10s\n",
		"wl", "sched", "policy", "locality", "gmtt-norm", "gmtt(s)", "slowdown", "maptime(s)", "blocks/job")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-5s %-13s %9.3f %10.3f %9.1f %9.2f %10.2f %10.2f\n",
			r.Workload, r.Scheduler, r.Policy, r.Locality, r.GMTTNorm, r.GMTT, r.Slowdown, r.MeanMapTime, r.BlocksPerJob)
	}
	return b.String()
}

// SensRow is one point of the sensitivity figures (8 and 9): locality and
// replication activity as one parameter varies.
type SensRow struct {
	Param     string
	Value     float64
	Scheduler string
	Policy    string
	Locality  float64
	// BlocksPerJob is the bottom panel of Figs. 8 and 9.
	BlocksPerJob float64
}

// RenderSens prints SensRows grouped the way Figs. 8–9 plot them.
func RenderSens(rows []SensRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %-5s %-13s %9s %11s\n", "param", "value", "sched", "policy", "locality", "blocks/job")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7.2f %-5s %-13s %9.3f %11.2f\n", r.Param, r.Value, r.Scheduler, r.Policy, r.Locality, r.BlocksPerJob)
	}
	return b.String()
}

// sensitivitySweep runs wl2 (the paper's sensitivity workload, §V-D) for
// each value, building the policy via mkPolicy.
func sensitivitySweep(param string, values []float64, schedulers []string, mkPolicy func(v float64) core.Config, jobs int, seed uint64) ([]SensRow, error) {
	wl := truncate(workload.WL2(seed), jobs)
	type cell struct {
		sched string
		v     float64
		pcfg  core.Config
	}
	var cells []cell
	var opts []Options
	for _, sched := range schedulers {
		for _, v := range values {
			pcfg := mkPolicy(v)
			cells = append(cells, cell{sched: sched, v: v, pcfg: pcfg})
			opts = append(opts, Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: sched,
				Policy:    pcfg,
				Seed:      seed,
			})
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: sweep %s=%v/%s", param, cells[i].v, cells[i].sched)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SensRow, len(outs))
	for i, out := range outs {
		rows[i] = SensRow{
			Param:        param,
			Value:        cells[i].v,
			Scheduler:    cells[i].sched,
			Policy:       cells[i].pcfg.Kind.String(),
			Locality:     out.Summary.JobLocality,
			BlocksPerJob: out.Summary.BlocksPerJob,
		}
	}
	return rows, nil
}

// Fig8P reproduces Fig. 8a: ElephantTrap sampling probability p from 0 to
// 0.9 with threshold = 1 and budget = 0.20, on wl2 under both schedulers.
func Fig8P(jobs int, seed uint64) ([]SensRow, error) {
	values := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	return sensitivitySweep("p", values, []string{"fifo", "fair"}, func(v float64) core.Config {
		return core.Config{Kind: core.ElephantTrapPolicy, P: v, Threshold: 1, BudgetFraction: 0.20}
	}, jobs, seed)
}

// Fig8Threshold reproduces Fig. 8b: aging threshold 1–5 with p = 0.90.
// The paper runs this sweep at budget = 0.50; in our simulator the storage
// to access-demand ratio is higher than on the testbed, so a 0.50 budget
// never forces an eviction and the threshold (which only acts during
// eviction sweeps) would be a flat line. We use budget = 0.03 — the
// smallest setting where the aging mechanism is continuously exercised —
// and record the deviation in EXPERIMENTS.md.
func Fig8Threshold(jobs int, seed uint64) ([]SensRow, error) {
	values := []float64{1, 2, 3, 4, 5}
	return sensitivitySweep("threshold", values, []string{"fifo", "fair"}, func(v float64) core.Config {
		return core.Config{Kind: core.ElephantTrapPolicy, P: 0.90, Threshold: int64(v), BudgetFraction: 0.03}
	}, jobs, seed)
}

// Fig9LRU reproduces Fig. 9a: replication budget 0–0.9 with greedy LRU
// eviction.
func Fig9LRU(jobs int, seed uint64) ([]SensRow, error) {
	return sensitivitySweep("budget", budgetValues(), []string{"fifo", "fair"}, func(v float64) core.Config {
		return core.Config{Kind: core.GreedyLRUPolicy, BudgetFraction: v}
	}, jobs, seed)
}

// Fig9ET reproduces Fig. 9b: replication budget 0–0.9 with ElephantTrap at
// p = 0.9 and p = 0.3, threshold = 1.
func Fig9ET(jobs int, seed uint64) ([]SensRow, error) {
	var rows []SensRow
	for _, p := range []float64{0.9, 0.3} {
		p := p
		sub, err := sensitivitySweep(fmt.Sprintf("budget(p=%.1f)", p), budgetValues(), []string{"fifo", "fair"}, func(v float64) core.Config {
			return core.Config{Kind: core.ElephantTrapPolicy, P: p, Threshold: 1, BudgetFraction: v}
		}, jobs, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, sub...)
	}
	return rows, nil
}

// budgetValues spans the paper's 0-0.9 range with a finer grid at the low
// end, where the budget actually binds in our simulator (the knee sits
// below 0.1 because our DFS stores more cold bytes per accessed byte than
// the testbed did).
func budgetValues() []float64 {
	return []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
}

// Fig11Row is one point of the placement-uniformity experiment.
type Fig11Row struct {
	P                 float64
	CVBefore, CVAfter float64
}

// Fig11 reproduces the uniformity experiment (§V-F): wl1 under FIFO with
// the probabilistic DARE (budget = 20%, threshold = 1), sweeping p, and
// reporting the coefficient of variation of the node popularity indices
// before and after the run.
func Fig11(jobs int, seed uint64) ([]Fig11Row, error) {
	wl := truncate(workload.WL1(seed), jobs)
	ps := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	opts := make([]Options, len(ps))
	for i, p := range ps {
		opts[i] = Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    core.Config{Kind: core.ElephantTrapPolicy, P: p, Threshold: 1, BudgetFraction: 0.20},
			Seed:      seed,
		}
	}
	outs, err := RunAll(opts)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, len(outs))
	for i, out := range outs {
		rows[i] = Fig11Row{P: ps[i], CVBefore: out.CVBefore, CVAfter: out.CVAfter}
	}
	return rows, nil
}

// RenderFig11 prints Fig. 11's two series.
func RenderFig11(rows []Fig11Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %12s %12s\n", "p", "cv-before", "cv-after")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6.2f %12.3f %12.3f\n", r.P, r.CVBefore, r.CVAfter)
	}
	return b.String()
}

// WritesRow compares greedy LRU and ElephantTrap disk-write activity at
// comparable locality — the §I claim that the competitive aging policy
// needs only ~50% of the greedy policy's writes.
type WritesRow struct {
	Scheduler   string
	LRULocality float64
	ETLocality  float64
	LRUWrites   int64
	ETWrites    int64
}

// WriteRatio reports ET writes over LRU writes.
func (r WritesRow) WriteRatio() float64 {
	if r.LRUWrites == 0 {
		return 0
	}
	return float64(r.ETWrites) / float64(r.LRUWrites)
}

// AblationWrites runs wl2 under both schedulers comparing the two eviction
// policies' locality and disk writes.
func AblationWrites(jobs int, seed uint64) ([]WritesRow, error) {
	wl := truncate(workload.WL2(seed), jobs)
	scheds := []string{"fifo", "fair"}
	kinds := []core.PolicyKind{core.GreedyLRUPolicy, core.ElephantTrapPolicy}
	var opts []Options
	for _, sched := range scheds {
		for _, kind := range kinds {
			opts = append(opts, Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: sched,
				Policy:    PolicyFor(kind),
				Seed:      seed,
			})
		}
	}
	outs, err := RunAll(opts)
	if err != nil {
		return nil, err
	}
	var rows []WritesRow
	for si, sched := range scheds {
		var row WritesRow
		row.Scheduler = sched
		for ki, kind := range kinds {
			out := outs[si*len(kinds)+ki]
			if kind == core.GreedyLRUPolicy {
				row.LRULocality = out.Summary.JobLocality
				row.LRUWrites = out.Summary.DiskWrites
			} else {
				row.ETLocality = out.Summary.JobLocality
				row.ETWrites = out.Summary.DiskWrites
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderWrites prints the write-ablation table.
func RenderWrites(rows []WritesRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %12s %12s %11s %11s %11s\n", "sched", "lru-locality", "et-locality", "lru-writes", "et-writes", "et/lru")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %12.3f %12.3f %11d %11d %11.2f\n", r.Scheduler, r.LRULocality, r.ETLocality, r.LRUWrites, r.ETWrites, r.WriteRatio())
	}
	return b.String()
}

// MapTimeRow backs the §V-C claim: mean map-task completion time reduction
// from dynamic replication (12% FIFO, 11% Fair in the paper).
type MapTimeRow struct {
	Scheduler        string
	VanillaMapTime   float64
	DareMapTime      float64
	ReductionPercent float64
}

// AblationMapTime measures the map-completion-time reduction on wl2,
// using the greedy policy (the strongest replicator) as the DARE arm.
func AblationMapTime(jobs int, seed uint64) ([]MapTimeRow, error) {
	wl := truncate(workload.WL2(seed), jobs)
	scheds := []string{"fifo", "fair"}
	kinds := []core.PolicyKind{core.NonePolicy, core.GreedyLRUPolicy}
	var opts []Options
	for _, sched := range scheds {
		for _, kind := range kinds {
			opts = append(opts, Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: sched,
				Policy:    PolicyFor(kind),
				Seed:      seed,
			})
		}
	}
	outs, err := RunAll(opts)
	if err != nil {
		return nil, err
	}
	var rows []MapTimeRow
	for si, sched := range scheds {
		vanilla := outs[si*len(kinds)].Summary.MeanMapTime
		dare := outs[si*len(kinds)+1].Summary.MeanMapTime
		rows = append(rows, MapTimeRow{
			Scheduler:        sched,
			VanillaMapTime:   vanilla,
			DareMapTime:      dare,
			ReductionPercent: (vanilla - dare) / vanilla * 100,
		})
	}
	return rows, nil
}

// RenderMapTime prints the map-time ablation table.
func RenderMapTime(rows []MapTimeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %14s %12s %12s\n", "sched", "vanilla(s)", "dare(s)", "reduction%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %14.2f %12.2f %12.1f\n", r.Scheduler, r.VanillaMapTime, r.DareMapTime, r.ReductionPercent)
	}
	return b.String()
}
