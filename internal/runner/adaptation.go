package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// AdaptationRow is one policy's behaviour through a popularity shift: the
// mean per-job locality in each quarter of the job stream (the shift
// happens at the midpoint, i.e. at the start of Q3) plus the network cost
// of creating replicas.
type AdaptationRow struct {
	Policy string
	// QuarterLocality[q] is the mean job locality in quarter q (0-based).
	QuarterLocality [4]float64
	// RecoveryQ4OverQ2 compares post-shift steady state (Q4) to pre-shift
	// steady state (Q2): 1.0 means full recovery.
	RecoveryQ4OverQ2 float64
	// ReplicationNetworkBytes is the fabric traffic spent creating
	// replicas (zero for DARE — it piggybacks on existing reads; positive
	// for Scarlett's proactive copies).
	ReplicationNetworkBytes int64
}

// Adaptation runs the §VI comparison the paper argues but does not plot:
// a workload whose popular file set rotates halfway through, replayed
// under vanilla, DARE (ElephantTrap), and the epoch-based Scarlett
// baseline. Scarlett's aggressive whole-file proactive replication wins
// while popularity is stationary, but it pays real network traffic for
// every copy and its plan goes stale at the shift for up to an epoch; the
// reactive scheme starts re-replicating with the very first post-shift
// remote reads, for free.
func Adaptation(jobs int, seed uint64) ([]AdaptationRow, error) {
	if jobs <= 0 {
		jobs = 500
	}
	wl := workload.Generate(workload.GenConfig{
		Name:       "shift",
		NumJobs:    jobs,
		Seed:       seed,
		ShiftAtJob: jobs / 2,
	})
	kinds := []core.PolicyKind{core.NonePolicy, core.ElephantTrapPolicy, core.ScarlettPolicy}
	opts := make([]Options, len(kinds))
	for i, kind := range kinds {
		opts[i] = Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(kind),
			Seed:      seed,
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: adaptation/%s", kinds[i])
	})
	if err != nil {
		return nil, err
	}
	var rows []AdaptationRow
	for i, kind := range kinds {
		out := outs[i]
		row := AdaptationRow{Policy: kind.String(), ReplicationNetworkBytes: out.ExtraNetworkBytes}
		var counts [4]int
		for i, r := range out.Results {
			q := i * 4 / len(out.Results)
			row.QuarterLocality[q] += r.Locality()
			counts[q]++
		}
		for q := range row.QuarterLocality {
			if counts[q] > 0 {
				row.QuarterLocality[q] /= float64(counts[q])
			}
		}
		if row.QuarterLocality[1] > 0 {
			row.RecoveryQ4OverQ2 = row.QuarterLocality[3] / row.QuarterLocality[1]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAdaptation prints the adaptation comparison.
func RenderAdaptation(rows []AdaptationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %10s %14s\n",
		"policy", "Q1", "Q2", "Q3*", "Q4", "recovery", "repl-net(MB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.3f %8.3f %8.3f %8.3f %10.2f %14.1f\n",
			r.Policy, r.QuarterLocality[0], r.QuarterLocality[1], r.QuarterLocality[2], r.QuarterLocality[3],
			r.RecoveryQ4OverQ2, float64(r.ReplicationNetworkBytes)/(1<<20))
	}
	b.WriteString("(* popularity shift at the start of Q3; recovery = Q4/Q2 locality)\n")
	return b.String()
}
