package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// DelayRow is one point of the delay-scheduling patience sweep: how much
// locality the Fair scheduler buys per unit of waiting, with and without
// DARE underneath.
type DelayRow struct {
	MaxSkips int
	Policy   string
	Locality float64
	GMTT     float64
}

// DelaySweep quantifies the §VI complementarity claim ("DARE is
// scheduler-agnostic and can work together with [delay scheduling] and
// other scheduling techniques"): sweeping the fair scheduler's skip
// patience on wl1, vanilla Hadoop needs long delays to reach high
// locality — paying for them in turnaround — while DARE reaches the same
// locality at a fraction of the patience, because the replicas give every
// offer a better chance of being local.
func DelaySweep(jobs int, seed uint64) ([]DelayRow, error) {
	wl := truncate(workload.WL1(seed), jobs)
	var rows []DelayRow
	for _, kind := range []core.PolicyKind{core.NonePolicy, core.ElephantTrapPolicy} {
		for _, skips := range []int{1, 2, 4, 8, 16, 32} {
			out, err := Run(Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: "fair",
				FairSkips: skips,
				Policy:    PolicyFor(kind),
				Seed:      seed,
			})
			if err != nil {
				return nil, fmt.Errorf("runner: delay-sweep %d/%s: %w", skips, kind, err)
			}
			rows = append(rows, DelayRow{
				MaxSkips: skips,
				Policy:   kind.String(),
				Locality: out.Summary.JobLocality,
				GMTT:     out.Summary.GMTT,
			})
		}
	}
	return rows, nil
}

// RenderDelaySweep prints the patience sweep.
func RenderDelaySweep(rows []DelayRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %9s %9s\n", "max-skips", "policy", "locality", "gmtt(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-14s %9.3f %9.2f\n", r.MaxSkips, r.Policy, r.Locality, r.GMTT)
	}
	b.WriteString("(wl1, fair scheduler; skip patience = delay-scheduling opportunities)\n")
	return b.String()
}
