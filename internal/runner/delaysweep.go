package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// DelayRow is one point of the delay-scheduling patience sweep: how much
// locality the Fair scheduler buys per unit of waiting, with and without
// DARE underneath.
type DelayRow struct {
	MaxSkips int
	Policy   string
	Locality float64
	GMTT     float64
}

// DelaySweep quantifies the §VI complementarity claim ("DARE is
// scheduler-agnostic and can work together with [delay scheduling] and
// other scheduling techniques"): sweeping the fair scheduler's skip
// patience on wl1, vanilla Hadoop needs long delays to reach high
// locality — paying for them in turnaround — while DARE reaches the same
// locality at a fraction of the patience, because the replicas give every
// offer a better chance of being local.
func DelaySweep(jobs int, seed uint64) ([]DelayRow, error) {
	wl := truncate(workload.WL1(seed), jobs)
	type cell struct {
		kind  core.PolicyKind
		skips int
	}
	var cells []cell
	var opts []Options
	for _, kind := range []core.PolicyKind{core.NonePolicy, core.ElephantTrapPolicy} {
		for _, skips := range []int{1, 2, 4, 8, 16, 32} {
			cells = append(cells, cell{kind: kind, skips: skips})
			opts = append(opts, Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: "fair",
				FairSkips: skips,
				Policy:    PolicyFor(kind),
				Seed:      seed,
			})
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: delay-sweep %d/%s", cells[i].skips, cells[i].kind)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]DelayRow, len(outs))
	for i, out := range outs {
		rows[i] = DelayRow{
			MaxSkips: cells[i].skips,
			Policy:   cells[i].kind.String(),
			Locality: out.Summary.JobLocality,
			GMTT:     out.Summary.GMTT,
		}
	}
	return rows, nil
}

// RenderDelaySweep prints the patience sweep.
func RenderDelaySweep(rows []DelayRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-14s %9s %9s\n", "max-skips", "policy", "locality", "gmtt(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %-14s %9.3f %9.2f\n", r.MaxSkips, r.Policy, r.Locality, r.GMTT)
	}
	b.WriteString("(wl1, fair scheduler; skip patience = delay-scheduling opportunities)\n")
	return b.String()
}
