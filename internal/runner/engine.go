package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// EngineRow reports one arm of the engine microbenchmark: the same full
// cluster simulation executed on the calendar queue and on the legacy
// binary heap, with event throughput and per-event allocation cost.
type EngineRow struct {
	// Profile is the testbed ("cct" or "ec2").
	Profile string `json:"profile"`
	// Arm names the stress mix: "plain", "churn" (node/rack failures and
	// recoveries), or "chaos" (gray failures + integrity reads).
	Arm string `json:"arm"`
	// Queue is the pending-event set implementation ("calendar" or "heap").
	Queue string `json:"queue"`
	// CPUSeconds is the process CPU time (user + system) the run consumed.
	// CPU time, not wall clock: it is immune to co-tenant steal and
	// involuntary preemption, which on shared hosts swamp the queue-cost
	// signal this benchmark exists to measure.
	CPUSeconds float64 `json:"cpu_seconds"`
	// Events is the number of simulation events the run executed.
	Events uint64 `json:"events"`
	// EventsPerSec is Events / CPUSeconds.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerEvent is heap allocations (runtime Mallocs delta) divided
	// by Events — the steady-state allocation pressure of the engine core
	// plus everything above it.
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// EngineStudy benchmarks the pending-event set head to head: for each
// {profile} × {plain, churn, chaos} arm it runs the identical workload on
// the calendar queue and on the legacy heap, measuring process CPU time,
// events executed, and allocations per event. Arms run serially — never
// under the sweep pool — because CPU-time and Mallocs deltas are only
// meaningful with the process otherwise quiet. Both queue runs of an arm execute the
// same deterministic schedule (same seed ⇒ same events), so any
// EventsPerSec difference is pure queue cost.
func EngineStudy(jobs int, seed uint64) ([]EngineRow, error) {
	if jobs <= 0 {
		jobs = 120
	}
	profiles := []struct {
		name string
		mk   func() *config.Profile
	}{
		{"cct", config.CCT},
		{"ec2", config.EC2},
	}
	arms := []string{"plain", "churn", "chaos"}
	var rows []EngineRow
	for _, p := range profiles {
		for _, arm := range arms {
			mkOpts := func(heapQ bool) Options {
				profile := p.mk()
				if arm != "plain" {
					// Tighter racks and RF=2 make failures bite, matching
					// the churn/chaos experiment setups.
					profile.RackSize = 5
					profile.ReplicationFactor = 2
				}
				wl := truncate(workload.WL1(seed), jobs)
				span := wl.Jobs[len(wl.Jobs)-1].Arrival
				opts := Options{
					Profile:   profile,
					Workload:  wl,
					Scheduler: "fair",
					Policy:    PolicyFor(core.GreedyLRUPolicy),
					Seed:      seed,
					heapQueue: heapQ,
				}
				switch arm {
				case "churn":
					spec := DefaultChurnSpec(span, profile.Slaves)
					opts.Churn = &spec
				case "chaos":
					spec := DefaultChaosSpec(span)
					opts.Chaos = &spec
				}
				return opts
			}
			pair, err := engineArm(p.name, arm, mkOpts(false), mkOpts(true))
			if err != nil {
				return nil, err
			}
			rows = append(rows, pair[0], pair[1])
		}
	}
	return rows, nil
}

// engineReps is how many timed repetitions each queue runs per arm; the
// row reports the minimum (see engineArm), so more reps strictly tighten
// the estimate. With ~0.4s batched regions the whole study stays around
// two minutes.
const engineReps = 21

// engineArm executes one arm head to head: a discarded warm-up run per
// queue, then engineReps calendar/heap rep *pairs* back to back, reporting
// each queue's median CPU time and allocation delta. Interleaving the
// pairs — rather than timing all calendar reps and then all heap reps —
// exposes both queues to the same ambient machine conditions, so CPU
// frequency drift or a noisy co-tenant cannot flip the comparison.
func engineArm(profile, arm string, calOpts, heapOpts Options) ([2]EngineRow, error) {
	pair := [2]EngineRow{
		{Profile: profile, Arm: arm, Queue: "calendar"},
		{Profile: profile, Arm: arm, Queue: "heap"},
	}
	opts := [2]Options{calOpts, heapOpts}
	// Park the GC pacer for the duration of the arm: a collection cycle
	// landing inside one queue's timed region (but not the other's) is the
	// largest remaining noise term once timing is on CPU seconds. The
	// explicit runtime.GC() before every sample keeps the heap bounded.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var cpus, mallocs [2][]float64
	batch := 1
	for i := range opts {
		start := time.Now() // warm-up: page-in code and data paths
		if _, err := Run(opts[i]); err != nil {
			return pair, fmt.Errorf("runner: engine/%s/%s/%s: %w", profile, arm, pair[i].Queue, err)
		}
		// Size the timed region to ≥~400ms: a single short run sits at the
		// host timer/scheduler noise floor, where sub-percent jitter can
		// flip a head-to-head comparison, and a longer region also averages
		// over ambient load bursts shorter than itself. The smallest arms
		// (cct, a few thousand events in under 10ms) need the most batching
		// for the min estimator to resolve the ~1% queue-cost signal.
		if w := time.Since(start).Seconds(); w > 0 {
			if b := int(0.4/w) + 1; b > batch {
				batch = b
			}
		}
	}
	if batch > 64 {
		batch = 64
	}
	for rep := 0; rep < engineReps; rep++ {
		for slot := range opts {
			// Alternate which queue goes first so neither implementation
			// systematically inherits the warmer CPU state of slot two.
			i := slot
			if rep%2 == 1 {
				i = 1 - slot
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			startCPU := cpuSeconds()
			var out *Output
			for b := 0; b < batch; b++ {
				o, err := Run(opts[i])
				if err != nil {
					return pair, fmt.Errorf("runner: engine/%s/%s/%s: %w", profile, arm, pair[i].Queue, err)
				}
				out = o
			}
			cpu := (cpuSeconds() - startCPU) / float64(batch)
			runtime.ReadMemStats(&after)
			pair[i].Events = out.EventsProcessed
			cpus[i] = append(cpus[i], cpu)
			mallocs[i] = append(mallocs[i], float64(after.Mallocs-before.Mallocs)/float64(batch))
		}
	}
	for i := range pair {
		// Min, not median: timing noise on a shared host is strictly
		// additive (co-tenant cache pressure, GC slivers, frequency dips
		// inflate a sample; nothing deflates one), so the minimum over the
		// interleaved reps is the tightest estimator of intrinsic cost —
		// and because both queues draw the same number of samples from the
		// same ambient distribution, each gets an equal shot at a quiet
		// window and the head-to-head stays fair. Empirically the median
		// still carries ±3% of ambient drift here, an order of magnitude
		// above the queue-cost signal.
		cpu := minOf(cpus[i])
		pair[i].CPUSeconds = cpu
		if cpu > 0 {
			pair[i].EventsPerSec = float64(pair[i].Events) / cpu
		}
		if pair[i].Events > 0 {
			// Allocation counts are near-deterministic (the run is a pure
			// function of Options); the min discards the occasional rep
			// where a background runtime allocation lands inside the window.
			pair[i].AllocsPerEvent = minOf(mallocs[i]) / float64(pair[i].Events)
		}
	}
	return pair, nil
}

// minOf returns the smallest value of xs (0 when empty).
func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// RenderEngine formats the engine benchmark table, pairing each arm's
// calendar row with its heap row and reporting the speedup.
func RenderEngine(rows []EngineRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %-9s %10s %9s %12s %12s\n",
		"profile", "arm", "queue", "events", "cpu(s)", "events/sec", "allocs/event")
	byArm := map[string]EngineRow{}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-6s %-9s %10d %9.3f %12.0f %12.3f\n",
			r.Profile, r.Arm, r.Queue, r.Events, r.CPUSeconds, r.EventsPerSec, r.AllocsPerEvent)
		key := r.Profile + "/" + r.Arm
		if r.Queue == "heap" {
			if cal, ok := byArm[key]; ok && r.EventsPerSec > 0 {
				fmt.Fprintf(&b, "%-8s %-6s %-9s %47.2fx calendar speedup\n",
					"", "", "", cal.EventsPerSec/r.EventsPerSec)
			}
		} else {
			byArm[key] = r
		}
	}
	return b.String()
}
