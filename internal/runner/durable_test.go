package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/snapshot"
	"dare/internal/workload"
)

// durableScenario builds fresh Options for one crash-resume scenario.
// Options must be rebuilt per run — Run consumes nothing, but the event
// log writer differs each time.
type durableScenario struct {
	name string
	opts func() Options
}

func durableScenarios() []durableScenario {
	return []durableScenario{
		{"plain-et-fifo", func() Options {
			return Options{
				Profile:   config.CCT(),
				Workload:  truncate(workload.WL1(7), 40),
				Scheduler: "fifo",
				Policy:    PolicyFor(core.ElephantTrapPolicy),
				Seed:      7,
			}
		}},
		{"churn-lru-fair", func() Options {
			return Options{
				Profile:   config.CCT(),
				Workload:  truncate(workload.WL2(11), 30),
				Scheduler: "fair",
				Policy:    PolicyFor(core.GreedyLRUPolicy),
				Seed:      11,
				Churn:     &ChurnSpec{MTTF: 30, MTTR: 4},
			}
		}},
		{"chaos-et-fifo", func() Options {
			return Options{
				Profile:   config.EC2(),
				Workload:  truncate(workload.WL1(42), 30),
				Scheduler: "fifo",
				Policy:    PolicyFor(core.ElephantTrapPolicy),
				Seed:      42,
				Chaos:     &ChaosSpec{Events: 6, Horizon: 8, CrashWeight: 1, SlowWeight: 1, CorruptWeight: 1, FlapWeight: 1, MTTR: 2, SlowMean: 2, SlowFactorMax: 3, FlapDown: 1},
			}
		}},
	}
}

// outputJSON canonicalizes an Output for byte comparison.
func outputJSON(t *testing.T, out *Output) []byte {
	t.Helper()
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runBaseline executes opts uncheckpointed with an event log attached.
func runBaseline(t *testing.T, opts Options) ([]byte, []byte) {
	t.Helper()
	var log bytes.Buffer
	opts.EventLog = &log
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return outputJSON(t, out), log.Bytes()
}

// TestArmedMatchesUnarmed: checkpoint writes are pure observation — a run
// with checkpointing armed produces the identical Output and event trace
// as the same run without it.
func TestArmedMatchesUnarmed(t *testing.T) {
	for _, sc := range durableScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			wantOut, wantLog := runBaseline(t, sc.opts())

			path := filepath.Join(t.TempDir(), "run.ckpt")
			var log bytes.Buffer
			opts := sc.opts()
			opts.EventLog = &log
			ckpts := 0
			out, err := RunCheckpointed(opts, CheckpointSpec{
				Path: path, Every: 300,
				AfterCheckpoint: func(n int) error { ckpts = n; return nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			if ckpts == 0 {
				t.Fatal("run finished without writing a single checkpoint; lower Every")
			}
			if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
				t.Errorf("armed run output diverges from unarmed\narmed:   %s\nunarmed: %s", got, wantOut)
			}
			if !bytes.Equal(log.Bytes(), wantLog) {
				t.Error("armed run event trace diverges from unarmed")
			}
		})
	}
}

// crashAfter aborts the run right after the nth durable checkpoint write,
// simulating a SIGKILL at a known boundary.
func crashAfter(n int) (func(int) error, error) {
	crashErr := errors.New("simulated crash")
	return func(done int) error {
		if done >= n {
			return crashErr
		}
		return nil
	}, crashErr
}

// TestKillAndResumeDifferential is the tentpole contract: a run killed at
// a checkpoint boundary and resumed produces the byte-identical Output
// and JSONL event trace as the same run left uninterrupted — across
// plain, churn, and chaos scenarios.
func TestKillAndResumeDifferential(t *testing.T) {
	for _, sc := range durableScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			wantOut, wantLog := runBaseline(t, sc.opts())

			path := filepath.Join(t.TempDir(), "run.ckpt")
			hook, crashErr := crashAfter(2)
			opts := sc.opts()
			opts.EventLog = &bytes.Buffer{} // discarded: the dead process's partial log
			_, err := RunCheckpointed(opts, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook})
			if !errors.Is(err, crashErr) {
				t.Fatalf("expected simulated crash, got %v", err)
			}

			var resumedLog bytes.Buffer
			out, err := Resume(path, &resumedLog, CheckpointSpec{Path: path, Every: 300})
			if err != nil {
				t.Fatal(err)
			}
			if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
				t.Errorf("resumed output diverges from uninterrupted run\nresumed: %s\nwant:    %s", got, wantOut)
			}
			if !bytes.Equal(resumedLog.Bytes(), wantLog) {
				t.Errorf("resumed event trace diverges from uninterrupted run (%d vs %d bytes)", resumedLog.Len(), len(wantLog))
			}
		})
	}
}

// TestResumeFallsBackToPrev: a SIGKILL mid-checkpoint-write leaves a torn
// primary; Resume must fall back to the previous good generation and
// still converge to the identical run.
func TestResumeFallsBackToPrev(t *testing.T) {
	sc := durableScenarios()[0]
	wantOut, wantLog := runBaseline(t, sc.opts())

	path := filepath.Join(t.TempDir(), "run.ckpt")
	hook, crashErr := crashAfter(3)
	opts := sc.opts()
	opts.EventLog = &bytes.Buffer{}
	if _, err := RunCheckpointed(opts, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook}); !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}

	// Tear the primary: keep half the bytes, as a crash mid-write would.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var resumedLog bytes.Buffer
	out, err := Resume(path, &resumedLog, CheckpointSpec{Path: path, Every: 300})
	if err != nil {
		t.Fatal(err)
	}
	if got := outputJSON(t, out); !bytes.Equal(got, wantOut) {
		t.Error("resume from .prev generation diverges from uninterrupted run")
	}
	if !bytes.Equal(resumedLog.Bytes(), wantLog) {
		t.Error("resume from .prev generation: event trace diverges")
	}
}

// TestResumeDetectsDivergence: a checkpoint whose spec was tampered with
// (different seed — a stand-in for any determinism break between
// checkpointing and resuming) must be rejected with a DivergenceError,
// not silently produce a different run.
func TestResumeDetectsDivergence(t *testing.T) {
	sc := durableScenarios()[0]
	path := filepath.Join(t.TempDir(), "run.ckpt")
	hook, crashErr := crashAfter(2)
	opts := sc.opts()
	opts.EventLog = &bytes.Buffer{}
	if _, err := RunCheckpointed(opts, CheckpointSpec{Path: path, Every: 300, AfterCheckpoint: hook}); !errors.Is(err, crashErr) {
		t.Fatalf("expected simulated crash, got %v", err)
	}

	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range f.Sections {
		if s.ID != sectionSpec {
			continue
		}
		spec, err := decodeSpec(s.Data)
		if err != nil {
			t.Fatal(err)
		}
		spec.Seed++
		// The workload rides inline, so only the cluster-side streams
		// shift — exactly the subtle kind of divergence the fingerprint
		// must catch.
		data, err := encodeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		f.Sections[i].Data = data
	}
	if err := snapshot.WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	os.Remove(path + snapshot.PrevSuffix) // no good generation to fall back to

	var log bytes.Buffer
	_, err = Resume(path, &log, CheckpointSpec{Path: path, Every: 300})
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("expected DivergenceError, got %v", err)
	}
}

// TestSpecRoundTrip: Options → RunSpec → JSON → RunSpec → Options must
// reproduce the identical run, including a declarative policy-file arm.
func TestSpecRoundTrip(t *testing.T) {
	set, err := config.BuiltinPolicy("elephanttrap")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Profile:   config.EC2(),
		Workload:  truncate(workload.WL2(13), 25),
		Scheduler: "fair",
		FairSkips: 3,
		PolicySet: set,
		Seed:      13,
		Churn:     &ChurnSpec{MTTF: 40, MTTR: 5},
	}
	spec, err := SpecFromOptions(opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := decodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	opts2, err := spec2.Options()
	if err != nil {
		t.Fatal(err)
	}

	wantOut, wantLog := runBaseline(t, opts)
	gotOut, gotLog := runBaseline(t, opts2)
	if !bytes.Equal(gotOut, wantOut) {
		t.Errorf("round-tripped spec runs differently\ngot:  %s\nwant: %s", gotOut, wantOut)
	}
	if !bytes.Equal(gotLog, wantLog) {
		t.Error("round-tripped spec: event trace diverges")
	}
}

// TestSpecRejectsSpeclessPolicySet: a hand-assembled PolicySet with no
// declarative source cannot be rebuilt on resume — typed error up front,
// not a silently lossy spec.
func TestSpecRejectsSpeclessPolicySet(t *testing.T) {
	opts := Options{
		Profile:   config.CCT(),
		Workload:  truncate(workload.WL1(7), 10),
		Scheduler: "fifo",
		PolicySet: &config.PolicySet{Name: "mystery", Kind: "elephanttrap"},
		Seed:      7,
	}
	if _, err := SpecFromOptions(opts); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("expected ErrNotSnapshottable, got %v", err)
	}
	if _, err := RunCheckpointed(opts, CheckpointSpec{Path: filepath.Join(t.TempDir(), "x.ckpt")}); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("RunCheckpointed: expected ErrNotSnapshottable, got %v", err)
	}
}
