package runner

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/snapshot"
	"dare/internal/workload"
)

func benchStateOpts() Options {
	return Options{
		Profile:   config.CCT(),
		Workload:  workload.WL1(7),
		Scheduler: "fifo",
		Policy:    PolicyFor(core.ElephantTrapPolicy),
		Seed:      7,
	}
}

// crashedDurable drives opts under checkpointing until a staged crash at
// the second checkpoint, returning the live mid-run durable (its runState
// is stopped at an exact event boundary) and the checkpoint it wrote.
func crashedDurable(tb testing.TB, opts Options, path string, every uint64) (*durable, *snapshot.File) {
	tb.Helper()
	spec, err := SpecFromOptions(opts)
	if err != nil {
		tb.Fatal(err)
	}
	specData, err := encodeSpec(spec)
	if err != nil {
		tb.Fatal(err)
	}
	rs, err := newRunState(opts)
	if err != nil {
		tb.Fatal(err)
	}
	staged := errors.New("staged crash")
	d := &durable{rs: rs, specData: specData, ck: CheckpointSpec{
		Path: path, Every: every,
		AfterCheckpoint: func(n int) error {
			if n >= 2 {
				return staged
			}
			return nil
		},
	}}
	d.nextStop = rs.cluster.Eng.Processed() + every
	if _, err := rs.tracker.RunWith(d.drive); !errors.Is(err, staged) {
		tb.Fatalf("staged crash did not fire: %v", err)
	}
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	if !hasStateImage(f, false) {
		tb.Fatal("crashed checkpoint carries no state image")
	}
	return d, f
}

// BenchmarkStateEncode measures building the full direct-state image of a
// live mid-run simulation — the per-checkpoint cost state-mode restore
// adds on the write side.
func BenchmarkStateEncode(b *testing.B) {
	d, _ := crashedDurable(b, benchStateOpts(), filepath.Join(b.TempDir(), "c.ckpt"), 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.imageSections(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStateDecode measures applying a direct-state image at the
// first drive boundary of a freshly reconstructed run — the O(state) core
// of a state-mode resume. The interrupt line is raised before the run
// starts and the spec is unarmed (no checkpoint path), so the timed
// region is run start, the image decode, and the fingerprint check: no
// events process and nothing durable is written. Reconstruction itself
// (newRunState) happens outside the timer — every resume mode pays it.
func BenchmarkStateDecode(b *testing.B) {
	path := filepath.Join(b.TempDir(), "c.ckpt")
	_, f := crashedDurable(b, benchStateOpts(), path, 2000)
	spec, cur, tab, err := decodeCheckpoint(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts, err := spec.Options()
		if err != nil {
			b.Fatal(err)
		}
		rs, err := newRunState(opts)
		if err != nil {
			b.Fatal(err)
		}
		var stop atomic.Bool
		stop.Store(true)
		d := &durable{
			rs: rs, specData: mustSection(f, sectionSpec),
			ck:      CheckpointSpec{Interrupt: &stop},
			restore: &stateRestore{cursor: *cur, table: tab, f: f},
		}
		b.StartTimer()
		if _, err := rs.tracker.RunWith(d.drive); !errors.Is(err, ErrInterrupted) {
			b.Fatal(err)
		}
	}
}
