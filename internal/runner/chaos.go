package runner

import (
	"fmt"
	"strings"

	"dare/internal/chaos"
	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/dfs"
	"dare/internal/mapreduce"
	"dare/internal/stats"
	"dare/internal/topology"
	"dare/internal/workload"
)

// ChaosSpec configures the gray-failure scenario generator
// (internal/chaos): Events injections drawn over Horizon, split among
// crashes, slow/disk degradations, silent block corruptions, and
// false-dead flaps by the class weights. Zero-valued fields fall back to
// DefaultChaosSpec; a negative weight disables its class.
type ChaosSpec struct {
	// Events is the number of injections to draw.
	Events int
	// Horizon bounds injection; <= 0 uses the workload's arrival span.
	Horizon float64
	// CrashWeight, SlowWeight, CorruptWeight, and FlapWeight set the
	// relative class frequencies (0 = default, negative = disable).
	CrashWeight, SlowWeight, CorruptWeight, FlapWeight float64
	// MTTR is the mean crash downtime; SlowMean the mean degradation
	// episode; SlowFactorMax the degradation multiplier bound; FlapDown
	// the mean false-dead window.
	MTTR, SlowMean, SlowFactorMax, FlapDown float64
	// HedgeTimeout is the remote-read duration that triggers a hedged
	// second fetch; 0 uses 3x the heartbeat interval, negative disables
	// hedging.
	HedgeTimeout float64
	// MasterWeight sets the master-crash class frequency. Unlike the node
	// classes it defaults to 0 — chaos never takes the control plane down
	// unless explicitly asked (existing scenarios stay byte-identical).
	MasterWeight float64
	// MasterDown is the mean control-plane outage length; 0 defaults to a
	// sixteenth of the span when MasterWeight > 0.
	MasterDown float64
	// MasterRecovery selects the rebuild mode for chaos-driven outages:
	// "journal" (default) or "report".
	MasterRecovery string
}

// DefaultChaosSpec scales a chaos scenario to an arrival span: 16
// injections with corruption and degradation slightly favored over clean
// crashes (matching the gray-failure literature's observation that partial
// failures outnumber fail-stops), downtime a sixteenth of the span,
// degradation episodes an eighth, flap windows a fortieth.
func DefaultChaosSpec(span float64) ChaosSpec {
	return ChaosSpec{
		Events:        16,
		Horizon:       span,
		CrashWeight:   1,
		SlowWeight:    1.5,
		CorruptWeight: 1.5,
		FlapWeight:    1,
		MTTR:          span / 16,
		SlowMean:      span / 8,
		SlowFactorMax: 6,
		FlapDown:      span / 40,
	}
}

// resolve fills a spec's zero-valued fields from the span defaults and
// maps negative weights to zero (class disabled).
func (s ChaosSpec) resolve(span float64) ChaosSpec {
	def := DefaultChaosSpec(span)
	if s.Events == 0 {
		s.Events = def.Events
	}
	if s.Horizon <= 0 {
		s.Horizon = def.Horizon
	}
	fill := func(v, d float64) float64 {
		if v == 0 {
			return d
		}
		if v < 0 {
			return 0
		}
		return v
	}
	s.CrashWeight = fill(s.CrashWeight, def.CrashWeight)
	s.SlowWeight = fill(s.SlowWeight, def.SlowWeight)
	s.CorruptWeight = fill(s.CorruptWeight, def.CorruptWeight)
	s.FlapWeight = fill(s.FlapWeight, def.FlapWeight)
	if s.MTTR <= 0 {
		s.MTTR = def.MTTR
	}
	if s.SlowMean <= 0 {
		s.SlowMean = def.SlowMean
	}
	if s.SlowFactorMax <= 0 {
		s.SlowFactorMax = def.SlowFactorMax
	}
	if s.FlapDown <= 0 {
		s.FlapDown = def.FlapDown
	}
	// MasterWeight deliberately skips the zero-fills-default pattern: its
	// default IS zero (disabled), so only the negative sentinel maps down.
	if s.MasterWeight < 0 {
		s.MasterWeight = 0
	}
	if s.MasterWeight > 0 && s.MasterDown <= 0 {
		s.MasterDown = span / 16
	}
	return s
}

// wireChaos generates the seeded chaos scenario for opts and registers
// every action with the tracker, enabling the integrity-aware read path.
// The scenario stream (0xCA05) and the gray-read stream (0x6A47) are
// split from the run seed independently of every other stream, so adding
// chaos perturbs nothing else and two same-seed chaos runs are
// byte-identical.
func wireChaos(tracker *mapreduce.Tracker, opts Options) error {
	span := 0.0
	if n := len(opts.Workload.Jobs); n > 0 {
		span = opts.Workload.Jobs[n-1].Arrival
	}
	cs := opts.Chaos.resolve(span)
	spec := chaos.Spec{
		Events:        cs.Events,
		Horizon:       cs.Horizon,
		CrashWeight:   cs.CrashWeight,
		SlowWeight:    cs.SlowWeight,
		CorruptWeight: cs.CorruptWeight,
		FlapWeight:    cs.FlapWeight,
		MTTR:          cs.MTTR,
		SlowMean:      cs.SlowMean,
		SlowFactorMax: cs.SlowFactorMax,
		FlapDown:      cs.FlapDown,
		MasterWeight:  cs.MasterWeight,
		MasterDown:    cs.MasterDown,
	}
	masterMode, err := dfs.RecoveryModeFromString(cs.MasterRecovery)
	if err != nil {
		return err
	}
	actions, err := chaos.Generate(opts.Profile.Slaves, spec, stats.NewRNG(opts.Seed).Split(0xCA05))
	if err != nil {
		return err
	}
	hb := opts.Profile.HeartbeatInterval
	hedge := cs.HedgeTimeout
	if hedge == 0 {
		hedge = 3 * hb
	}
	tracker.EnableGrayReads(hedge, hb/2, 4*hb, stats.NewRNG(opts.Seed).Split(0x6A47))
	for _, a := range actions {
		switch a.Kind {
		case chaos.Crash:
			tracker.ScheduleNodeFailure(topology.NodeID(a.Node), a.At)
		case chaos.Recover:
			tracker.ScheduleNodeRecovery(topology.NodeID(a.Node), a.At)
		case chaos.Slow:
			tracker.ScheduleNodeDegrade(topology.NodeID(a.Node), a.Factor, a.Disk, a.At)
		case chaos.Restore:
			tracker.ScheduleNodeRestore(topology.NodeID(a.Node), a.At)
		case chaos.Corrupt:
			tracker.ScheduleRandomCorruption(a.At)
		case chaos.Flap:
			tracker.ScheduleNodeFlap(topology.NodeID(a.Node), a.At, a.Down)
		case chaos.MasterCrash:
			tracker.ScheduleMasterOutage(a.At, a.Down, masterMode)
		}
	}
	return nil
}

// ChaosRow summarizes one scheduler×policy arm under an identical chaos
// scenario: turnaround, locality, and availability under mixed gray
// failures, plus the gray machinery's own activity. The DARE arms' extra
// replicas should buy locality and availability headroom under chaos just
// as under clean churn — and corrupt-replica quarantines bite them less,
// because a quarantined block usually still has a dynamic copy.
type ChaosRow struct {
	Scheduler string
	Policy    string
	// Crashes counts real node-down events (flaps excluded); Flaps counts
	// false-dead episodes; Degrades counts slow/disk episodes.
	Crashes  int
	Flaps    int
	Degrades int
	// Injected/Detected count silent corruptions and their checksum
	// catches; Retries counts corrupt-read retries; Hedged counts backup
	// fetches for slow remote reads.
	Injected, Detected int
	Retries            int
	Hedged             int
	// Restored counts stale replicas reconciled on flap rejoins;
	// RepairsDone counts block re-replications.
	Restored    int
	RepairsDone int
	// GMTT, Locality, MeanAvailability, and FailedJobs are the
	// arm-comparison metrics: turnaround, job data locality, time-averaged
	// access-weighted availability, and jobs lost.
	GMTT             float64
	Locality         float64
	MeanAvailability float64
	FailedJobs       int
}

// ChaosStudy runs wl1 under one seeded chaos scenario for both schedulers
// × {vanilla, DARE-LRU, ElephantTrap} on the multi-rack CCT layout the
// churn study uses (racks of 5, replication factor 2, speculation on so
// degraded nodes are speculated around). Every arm sees the identical
// injection schedule — the generator draws from its own seed stream — so
// differences are attributable to the replication policy. check enables
// the full invariant checker after every failure/gray event.
func ChaosStudy(jobs int, seed uint64, spec ChaosSpec, check bool) ([]ChaosRow, error) {
	if jobs <= 0 {
		jobs = 300
	}
	wl := truncate(workload.WL1(seed), jobs)

	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	profile.SpeculativeExecution = true

	type arm struct {
		sched string
		kind  core.PolicyKind
	}
	var arms []arm
	for _, sched := range []string{"fifo", "fair"} {
		for _, kind := range []core.PolicyKind{core.NonePolicy, core.GreedyLRUPolicy, core.ElephantTrapPolicy} {
			arms = append(arms, arm{sched, kind})
		}
	}
	rows := make([]ChaosRow, len(arms))
	err := forEachIndex(len(arms), func(i int) error {
		out, err := Run(Options{
			Profile:         profile,
			Workload:        wl,
			Scheduler:       arms[i].sched,
			Policy:          PolicyFor(arms[i].kind),
			Seed:            seed,
			Chaos:           &spec,
			CheckInvariants: check,
		})
		if err != nil {
			return fmt.Errorf("runner: chaos/%s/%s: %w", arms[i].sched, arms[i].kind, err)
		}
		rows[i] = chaosRow(arms[i].sched, arms[i].kind.String(), out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// chaosRow reduces one run's outputs to its report row.
func chaosRow(sched, policy string, out *Output) ChaosRow {
	g := out.Gray
	return ChaosRow{
		Scheduler:        sched,
		Policy:           policy,
		Crashes:          len(out.FailureEvents) - g.Flaps,
		Flaps:            g.Flaps,
		Degrades:         g.Degrades,
		Injected:         g.CorruptionsInjected,
		Detected:         g.CorruptionsDetected,
		Retries:          g.ReadRetries,
		Hedged:           g.HedgedReads,
		Restored:         g.ReplicasRestored,
		RepairsDone:      out.RepairsDone,
		GMTT:             out.Summary.GMTT,
		Locality:         out.Summary.JobLocality,
		MeanAvailability: timeAveragedAvailability(out.FailureEvents, out.Summary.Makespan),
		FailedJobs:       out.Summary.FailedJobs,
	}
}

// RenderChaos prints the chaos comparison.
func RenderChaos(rows []ChaosRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-14s %6s %5s %8s %8s %8s %7s %6s %8s %7s %7s %9s %11s %7s\n",
		"sched", "policy", "crash", "flap", "degrade", "corrupt", "detect", "retry", "hedge",
		"restore", "repair", "gmtt", "locality", "mean-avail", "failed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-14s %6d %5d %8d %8d %8d %7d %6d %8d %7d %7.2f %9.3f %11.4f %7d\n",
			r.Scheduler, r.Policy, r.Crashes, r.Flaps, r.Degrades, r.Injected, r.Detected,
			r.Retries, r.Hedged, r.Restored, r.RepairsDone, r.GMTT, r.Locality,
			r.MeanAvailability, r.FailedJobs)
	}
	b.WriteString("(identical seeded chaos schedule per arm: crashes, slow/disk nodes, silent corruption, false-dead flaps;\n racks of 5, replication factor 2, speculation on, hedged reads at 3x heartbeat)\n")
	return b.String()
}
