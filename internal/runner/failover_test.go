package runner

import (
	"bytes"
	"reflect"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/mapreduce"
	"dare/internal/workload"
)

// One run with a journal-mode and a report-mode outage must survive both
// crashes, complete every job, and keep the metadata consistent (the
// invariant checker fires on every node-lifecycle and master-recovery
// event).
func TestRunWithMasterOutagesCompletesAndChecks(t *testing.T) {
	for _, mode := range []string{"journal", "report"} {
		profile := config.CCT()
		profile.RackSize = 5
		profile.ReplicationFactor = 2
		wl := truncate(workload.WL1(11), 80)
		span := wl.Jobs[len(wl.Jobs)-1].Arrival
		out, err := Run(Options{
			Profile:   profile,
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(core.ElephantTrapPolicy),
			Seed:      11,
			MasterOutages: []MasterOutage{
				{At: 0.3 * span, Down: span / 12, Mode: mode},
			},
			MasterCheckpointEvery: 64,
			CheckInvariants:       true,
		})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		m := out.Master
		if m.Outages != 1 {
			t.Fatalf("%s: outages %d, want 1", mode, m.Outages)
		}
		if m.Downtime <= 0 {
			t.Fatalf("%s: downtime %g", mode, m.Downtime)
		}
		if m.DeferredHeartbeats == 0 {
			t.Fatalf("%s: no heartbeats deferred across a %g-second outage", mode, span/12)
		}
		if mode == "report" {
			if m.BlockReports != profile.Slaves {
				t.Fatalf("report: %d block reports, want %d (one per live node)", m.BlockReports, profile.Slaves)
			}
			if m.WarmupTime <= 0 {
				t.Fatal("report: warming cost no time")
			}
		} else {
			if m.BlockReports != 0 || m.WarmupTime != 0 {
				t.Fatalf("journal: reports %d warmup %g, want 0/0", m.BlockReports, m.WarmupTime)
			}
			if m.JournalCheckpoints == 0 {
				t.Fatal("journal: no checkpoints rolled with every=64")
			}
		}
		if len(out.Results) != 80 {
			t.Fatalf("%s: results %d", mode, len(out.Results))
		}
		if len(out.MasterEvents) == 0 {
			t.Fatalf("%s: no master availability samples", mode)
		}
	}
}

// Two same-seed runs with identical master outages must produce
// byte-identical event traces: the whole crash/recovery path is a pure
// function of the options.
func TestMasterOutageTraceDeterministic(t *testing.T) {
	trace := func() []byte {
		profile := config.CCT()
		profile.RackSize = 5
		profile.ReplicationFactor = 2
		wl := truncate(workload.WL1(7), 60)
		span := wl.Jobs[len(wl.Jobs)-1].Arrival
		var buf bytes.Buffer
		_, err := Run(Options{
			Profile:   profile,
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(core.GreedyLRUPolicy),
			Seed:      7,
			MasterOutages: []MasterOutage{
				{At: 0.25 * span, Down: span / 16, Mode: "journal"},
				{At: 0.6 * span, Down: span / 16, Mode: "report"},
			},
			CheckInvariants: true,
			EventLog:        &buf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := trace(), trace()
	if !bytes.Equal(a, b) {
		t.Fatalf("event traces differ between identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// Master outages riding on churn: nodes die and rejoin WHILE the master is
// down, and the deferred declarations apply at recovery without tripping
// the invariant checker.
func TestMasterOutageWithChurn(t *testing.T) {
	profile := config.CCT()
	profile.RackSize = 5
	profile.ReplicationFactor = 2
	wl := truncate(workload.WL1(13), 80)
	span := wl.Jobs[len(wl.Jobs)-1].Arrival
	out, err := Run(Options{
		Profile:   profile,
		Workload:  wl,
		Scheduler: "fifo",
		Seed:      13,
		Churn:     &ChurnSpec{MTTF: span / 2, MTTR: span / 8},
		MasterOutages: []MasterOutage{
			{At: 0.2 * span, Down: span / 8, Mode: "journal"},
			{At: 0.55 * span, Down: span / 8, Mode: "report"},
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Master.Outages != 2 {
		t.Fatalf("outages %d, want 2", out.Master.Outages)
	}
	if len(out.Results) != 80 {
		t.Fatalf("results %d", len(out.Results))
	}
}

// Two same-seed failover studies must agree exactly, and the journal/report
// contrast must show up in the rows.
func TestFailoverStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("8 full runs")
	}
	a, err := FailoverStudy(60, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FailoverStudy(60, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("failover study rows differ between identical runs:\n%+v\n%+v", a, b)
	}
	if len(a) != 4 {
		t.Fatalf("arms %d, want 4", len(a))
	}
	for _, r := range a {
		if r.Outages != 2 {
			t.Fatalf("arm %s/%s saw %d outages, want 2", r.Policy, r.Mode, r.Outages)
		}
		if r.MasterAvailability <= 0 || r.MasterAvailability >= 1 {
			t.Fatalf("arm %s/%s master availability %g outside (0,1)", r.Policy, r.Mode, r.MasterAvailability)
		}
		switch r.Mode {
		case "journal":
			if r.BlockReports != 0 {
				t.Fatalf("journal arm delivered %d block reports", r.BlockReports)
			}
		case "report":
			if r.BlockReports == 0 || r.WarmupTime <= 0 {
				t.Fatalf("report arm never warmed: %+v", r)
			}
		}
	}
}

// masterAvailability integrates the sample timeline as a step function.
func TestMasterAvailabilityIntegration(t *testing.T) {
	// Perfect run, no events: full availability.
	if got := masterAvailability(nil, 100); got != 1 {
		t.Fatalf("no events: %g, want 1", got)
	}
	// Down for [10, 30) of 100, full view before and after: 80%.
	evs := []mapreduce.MasterEvent{
		{Time: 10, Kind: mapreduce.MasterWentDown, WeightedAvailability: 1},
		{Time: 30, Kind: mapreduce.MasterCameBack, WeightedAvailability: 1},
	}
	if got := masterAvailability(evs, 100); got != 0.8 {
		t.Fatalf("20%% downtime: %g, want 0.8", got)
	}
	// Report mode: down [10,30), warms to 0.5 at 30, full at 40: the
	// integral is 10*1 + 20*0 + 10*0.5 + 60*1 = 75.
	evs = []mapreduce.MasterEvent{
		{Time: 10, Kind: mapreduce.MasterWentDown, WeightedAvailability: 1},
		{Time: 30, Kind: mapreduce.MasterCameBack, WeightedAvailability: 0.5},
		{Time: 40, Kind: mapreduce.MasterGotReport, WeightedAvailability: 1},
	}
	if got := masterAvailability(evs, 100); got != 0.75 {
		t.Fatalf("warming curve: %g, want 0.75", got)
	}
}
