package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dare/internal/snapshot"
	"dare/internal/workload"
)

// StreamRunSpec configures service mode (`dare-sim -stream`): an
// open-ended run whose jobs are synthesized window by window instead of
// replayed from a fixed trace. It is part of the checkpoint spec — a
// resumed service run regenerates the identical arrival sequence from it.
type StreamRunSpec struct {
	// Gen is the job sampler (same knobs as batch generation; NumJobs is
	// ignored — the stream never runs dry).
	Gen workload.GenConfig `json:"gen"`
	// DiurnalAmplitude/DiurnalPeriod modulate the arrival rate over a
	// daily cycle (see workload.StreamConfig).
	DiurnalAmplitude float64 `json:"diurnalAmplitude,omitempty"`
	DiurnalPeriod    float64 `json:"diurnalPeriod,omitempty"`
	// Window is the generation/report cadence in simulated seconds: at
	// each boundary the next window of arrivals is appended and one
	// report line is emitted.
	Window float64 `json:"window"`
	// Horizon stops generation at this simulated time and lets in-flight
	// jobs drain; 0 runs until interrupted.
	Horizon float64 `json:"horizon,omitempty"`
}

// StreamReportLine is one JSONL record of the service-mode metrics
// stream, emitted at every window boundary. Window metrics cover the
// window just ended; cumulative ones the whole run.
type StreamReportLine struct {
	T         float64 `json:"t"`
	Window    int     `json:"window"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Running   int     `json:"running"`
	// WindowArrivals counts jobs appended for the window now starting;
	// WindowCompleted and WindowMeanTurnaround cover jobs that finished
	// in the window just ended.
	WindowArrivals       int     `json:"windowArrivals"`
	WindowCompleted      int     `json:"windowCompleted"`
	WindowMeanTurnaround float64 `json:"windowMeanTurnaround,omitempty"`
}

// streamDriver owns service-mode generation: a self-rescheduling engine
// event at each window boundary appends the next window's arrivals and
// emits a report line. Generation is part of the event stream, so a
// resumed run replays it deterministically — the generator needs no
// serialized state of its own, only a fingerprint (addState) to prove the
// replay landed in the same place.
type streamDriver struct {
	spec       StreamRunSpec
	src        *workload.Stream
	rs         *runState
	report     io.Writer // counting-wrapped; nil disables reporting
	nextWindow int
	reportErr  error
}

// prime appends the first window's arrivals (jobs arriving before the
// engine starts moving) and schedules the boundary event chain.
func (sd *streamDriver) prime() {
	sd.rs.tracker.AppendJobs(sd.src.Next(sd.spec.Window))
	sd.nextWindow = 1
	sd.rs.cluster.Eng.DeferAt(sd.spec.Window, sd.window)
}

func (sd *streamDriver) window() {
	eng := sd.rs.cluster.Eng
	t := sd.rs.tracker
	now := eng.Now()
	if sd.spec.Horizon > 0 && now >= sd.spec.Horizon {
		// Generation is over; drain in-flight work. If everything already
		// finished, stop here; otherwise hand the stop to the last job
		// completion (the tracker's batch behavior).
		if t.Completed() == t.TotalJobs() {
			eng.Stop()
			return
		}
		t.SetStreaming(false)
		return
	}
	jobs := sd.src.Next(now + sd.spec.Window)
	sd.emitReport(now, len(jobs))
	t.AppendJobs(jobs)
	sd.nextWindow++
	eng.DeferAtTag(now+sd.spec.Window, streamWindowTag{}, sd.window)
}

func (sd *streamDriver) emitReport(now float64, arrivals int) {
	if sd.report == nil || sd.reportErr != nil {
		return
	}
	t := sd.rs.tracker
	line := StreamReportLine{
		T:              now,
		Window:         sd.nextWindow - 1,
		Submitted:      t.TotalJobs(),
		Completed:      t.Completed(),
		Running:        t.TotalJobs() - t.Completed(),
		WindowArrivals: arrivals,
	}
	var sum float64
	for _, r := range t.Results() {
		if r.Finish > now-sd.spec.Window && r.Finish <= now {
			line.WindowCompleted++
			sum += r.Turnaround
		}
	}
	if line.WindowCompleted > 0 {
		line.WindowMeanTurnaround = sum / float64(line.WindowCompleted)
	}
	b, err := json.Marshal(line)
	if err == nil {
		b = append(b, '\n')
		_, err = sd.report.Write(b)
	}
	if err != nil {
		sd.reportErr = fmt.Errorf("runner: writing stream report: %w", err)
	}
}

// addState folds the generator position into the checkpoint fingerprint.
func (sd *streamDriver) addState(tab *snapshot.StateTable) {
	h := snapshot.NewHash()
	sd.src.AddState(h)
	tab.AddHash("stream.generator", h)
	tab.Add("stream.nextWindow", uint64(sd.nextWindow))
}

// validateStreamOptions rejects option families whose horizons default to
// the workload's arrival span — a service run has no fixed span, so those
// scenarios need the batch driver.
func validateStreamOptions(opts Options, scfg StreamRunSpec) error {
	switch {
	case scfg.Window <= 0:
		return fmt.Errorf("runner: stream Window must be positive, got %v", scfg.Window)
	case scfg.Horizon > 0 && scfg.Horizon < scfg.Window:
		return fmt.Errorf("runner: stream Horizon %v is shorter than one Window %v", scfg.Horizon, scfg.Window)
	case opts.Workload != nil:
		return fmt.Errorf("runner: stream mode synthesizes its own workload; Options.Workload must be nil")
	case len(opts.Failures) > 0 || len(opts.Recoveries) > 0 || len(opts.RackFailures) > 0:
		return fmt.Errorf("runner: stream mode does not take explicit failure schedules")
	case opts.Churn != nil || opts.Chaos != nil || len(opts.MasterOutages) > 0:
		return fmt.Errorf("runner: stream mode does not take churn/chaos/master-outage scenarios (their horizons assume a fixed trace)")
	}
	return nil
}

// RunStream executes a service-mode run: open-ended generation in windows
// of scfg.Window simulated seconds, one StreamReportLine per window on
// report (nil disables), checkpoints every ck.Every events when ck.Path
// is set, and a final checkpoint plus ErrInterrupted when ck.Interrupt is
// raised. With scfg.Horizon > 0 generation stops there, in-flight jobs
// drain, and the Output summarizes everything that ran.
func RunStream(opts Options, scfg StreamRunSpec, report io.Writer, ck CheckpointSpec) (*Output, error) {
	if err := validateStreamOptions(opts, scfg); err != nil {
		return nil, err
	}
	return driveStream(opts, scfg, report, ck, nil, nil)
}

// ResumeStream continues a service-mode run from the checkpoint at path.
// eventLog and report must be fresh sinks when the original run had them
// (the replay re-emits both streams from genesis, byte-identically).
func ResumeStream(path string, eventLog, report io.Writer, ck CheckpointSpec) (*Output, error) {
	if ck.Path == "" {
		ck.Path = path
	}
	f, _, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	spec, cur, tab, err := decodeCheckpoint(f)
	if err != nil {
		return nil, err
	}
	if spec.Stream == nil {
		return nil, fmt.Errorf("runner: checkpoint %s holds a batch run; use Resume", path)
	}
	opts, err := spec.Options()
	if err != nil {
		return nil, err
	}
	opts.Workload = nil // rebuilt by the stream generator
	if eventLog != nil {
		opts.EventLog = eventLog
	} else if cur.EventBytes > 0 {
		return nil, fmt.Errorf("runner: checkpoint recorded an event log (%d bytes at cut); resume needs the re-opened sink to reproduce it", cur.EventBytes)
	}
	if report == nil && cur.ReportBytes > 0 {
		return nil, fmt.Errorf("runner: checkpoint recorded a stream report (%d bytes at cut); resume needs the re-opened sink to reproduce it", cur.ReportBytes)
	}
	if err := validateStreamOptions(opts, *spec.Stream); err != nil {
		return nil, err
	}
	return driveStream(opts, *spec.Stream, report, ck, &resumeCut{cursor: *cur, table: tab}, mustSection(f, sectionSpec))
}

// driveStream is the shared wiring behind RunStream and ResumeStream. A
// nil cut starts fresh; a non-nil one replays from genesis to the cut,
// verifies, and continues live.
func driveStream(opts Options, scfg StreamRunSpec, report io.Writer, ck CheckpointSpec, cut *resumeCut, specData []byte) (*Output, error) {
	src := workload.NewStream(workload.StreamConfig{
		Gen:              scfg.Gen,
		DiurnalAmplitude: scfg.DiurnalAmplitude,
		DiurnalPeriod:    scfg.DiurnalPeriod,
	})
	opts.Workload = src.Workload()
	if specData == nil {
		spec, err := SpecFromOptions(opts)
		if err != nil {
			return nil, err
		}
		spec.Stream = &scfg
		if specData, err = encodeSpec(spec); err != nil {
			return nil, err
		}
	}
	var cw, rw *countingWriter
	if opts.EventLog != nil {
		cw = newCountingWriter(opts.EventLog)
		opts.EventLog = cw
	}
	if report != nil {
		rw = newCountingWriter(report)
		report = rw
	}
	rs, err := newRunState(opts)
	if err != nil {
		return nil, err
	}
	rs.tracker.SetStreaming(true)
	sd := &streamDriver{spec: scfg, src: src, rs: rs, report: report}
	d := &durable{rs: rs, ck: ck, specData: specData, cw: cw, rw: rw, stream: sd}
	if cut != nil {
		d.nextStop = cut.cursor.Processed
		d.cut = cut
	} else {
		d.nextStop = rs.cluster.Eng.Processed() + ck.every()
		if ck.Path == "" {
			d.nextStop = math.MaxUint64 // no checkpointing; run uninterrupted slices
		}
		rs.cluster.Eng.SetInterrupt(ck.Interrupt)
	}
	sd.prime()
	results, err := rs.tracker.RunWith(d.drive)
	if err != nil {
		return nil, err
	}
	if sd.reportErr != nil {
		return nil, sd.reportErr
	}
	if d.cut != nil {
		return nil, &DivergenceError{Rows: []string{fmt.Sprintf(
			"run completed at %d processed events, before the checkpoint cut at %d — the replay is not the run that was checkpointed",
			rs.cluster.Eng.Processed(), cut.cursor.Processed)}}
	}
	return rs.finish(results)
}
