package runner

import (
	"strings"
	"testing"
)

// TestBalanceStudyDistinction locks in the conceptual point behind
// Fig. 11: byte balance and popularity balance are different goals, and
// only DARE delivers the latter.
func TestBalanceStudyDistinction(t *testing.T) {
	rows, err := BalanceStudy(300, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]BalanceRow{}
	for _, r := range rows {
		byScenario[r.Scenario] = r
	}
	van := byScenario["vanilla"]
	bal := byScenario["hdfs-balancer"]
	dareRow := byScenario["dare"]

	// The balancer does its own job: storage cv improves, at real cost.
	if bal.StorageCV >= van.StorageCV {
		t.Fatalf("balancer did not improve storage cv: %.3f -> %.3f", van.StorageCV, bal.StorageCV)
	}
	if bal.MovedGB == 0 {
		t.Fatal("balancer moved no bytes")
	}
	// ...but it does not do DARE's job: popularity cv stays high.
	if bal.PopularityCV < 0.6*van.PopularityCV {
		t.Fatalf("balancer unexpectedly fixed popularity cv: %.3f -> %.3f", van.PopularityCV, bal.PopularityCV)
	}
	// DARE fixes popularity cv at zero rearrangement cost.
	if dareRow.PopularityCV >= 0.6*van.PopularityCV {
		t.Fatalf("DARE did not flatten popularity cv: %.3f -> %.3f", van.PopularityCV, dareRow.PopularityCV)
	}
	if dareRow.MovedGB != 0 {
		t.Fatal("DARE should move no dedicated traffic")
	}
}

func TestBalanceStudyDeterministic(t *testing.T) {
	a, err := BalanceStudy(120, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BalanceStudy(120, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs between identical runs", i)
		}
	}
}

func TestRenderBalance(t *testing.T) {
	out := RenderBalance([]BalanceRow{{Scenario: "vanilla", StorageCV: 0.1, PopularityCV: 0.5}})
	if !strings.Contains(out, "vanilla") || !strings.Contains(out, "popularity-cv") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
