package runner

import (
	"bytes"
	"reflect"
	"testing"

	"dare/internal/event"
	"dare/internal/workload"
)

// TestScaleTraceEquivalence pins the scale benchmark's premise on a real
// benchmark configuration: a 1000-node ScaleProfile run (auto cohort size
// 7, genuine multi-member sweeps) must publish a byte-identical event
// trace in cohort and per-node mode. The vanilla policy keeps every
// deferred event off the heartbeat grid (no announce/lazy-delete delays),
// so this holds with production defaults — any BusEventsPerSec difference
// ScaleStudy reports is pure driver cost, not different work.
func TestScaleTraceEquivalence(t *testing.T) {
	const seed = 42
	opts := Options{
		Profile:   ScaleProfile(1000),
		Workload:  truncate(workload.WL1(seed), 20),
		Scheduler: "fifo",
		Seed:      seed,
	}
	co, coLog := equivRun(t, opts)
	opts.perNodeHeartbeats = true
	pn, pnLog := equivRun(t, opts)
	if !reflect.DeepEqual(co.Summary, pn.Summary) {
		t.Errorf("summaries diverge\ncohort:   %+v\nper-node: %+v", co.Summary, pn.Summary)
	}
	if !bytes.Equal(coLog, pnLog) {
		t.Error("event logs diverge between cohort and per-node mode at 1000 nodes")
	}
	if co.EventsProcessed >= pn.EventsProcessed {
		t.Errorf("cohort mode executed %d engine events, per-node %d — no coalescing at 1000 nodes",
			co.EventsProcessed, pn.EventsProcessed)
	}
	if co.EventCounts.Total() != pn.EventCounts.Total() {
		t.Errorf("bus event totals diverge: %d vs %d", co.EventCounts.Total(), pn.EventCounts.Total())
	}
	if hb := co.EventCounts[event.Heartbeat]; hb == 0 {
		t.Error("run published no heartbeats")
	}
}

// TestScaleProfileValidates makes sure every ladder size builds a legal
// profile (the benchmark would otherwise die mid-study).
func TestScaleProfileValidates(t *testing.T) {
	for _, n := range scaleSizes {
		if err := ScaleProfile(n).Validate(); err != nil {
			t.Errorf("ScaleProfile(%d): %v", n, err)
		}
	}
}

// benchmarkScaleRun is the CI smoke body: one full 1000-node run per
// iteration keeps -benchtime 1x cheap while still exercising the whole
// scale path (big-cluster construction, heartbeat driving, drain).
func benchmarkScaleRun(b *testing.B, perNode bool) {
	const seed = 42
	opts := Options{
		Profile:           ScaleProfile(1000),
		Workload:          truncate(workload.WL1(seed), 20),
		Scheduler:         "fifo",
		Seed:              seed,
		perNodeHeartbeats: perNode,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if out.EventCounts[event.Heartbeat] == 0 {
			b.Fatal("run published no heartbeats")
		}
	}
}

func BenchmarkScaleCohort1k(b *testing.B)  { benchmarkScaleRun(b, false) }
func BenchmarkScalePerNode1k(b *testing.B) { benchmarkScaleRun(b, true) }
