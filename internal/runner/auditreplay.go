package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/trace"
	"dare/internal/workload"
)

// AuditReplayRow is one policy's performance replaying a slice of the
// Yahoo!-shaped audit log through the cluster — the end-to-end check that
// the access process characterized in §III (heavy tail, bursts, daily
// repeats) is the regime DARE exploits, without the synthesizer's own
// workload assumptions in between.
type AuditReplayRow struct {
	Policy       string
	Locality     float64
	GMTT         float64
	BlocksPerJob float64
	NetworkGB    float64
}

// AuditReplay generates a week-long audit log, carves a 500-access slice
// from mid-week (warm data, like the paper's mid-trace segments), replays
// it on the CCT profile under FIFO, and compares the policies.
func AuditReplay(jobs int, seed uint64) ([]AuditReplayRow, error) {
	if jobs <= 0 {
		jobs = 500
	}
	log := trace.Generate(trace.GenConfig{Files: 120, Accesses: 20000, Seed: seed})
	wl, err := workload.FromAuditLog(log, workload.ReplayConfig{
		Offset: len(log.Accesses) / 2,
		Jobs:   jobs,
		Seed:   seed,
	})
	if err != nil {
		return nil, err
	}
	opts := make([]Options, len(EvaluatedPolicies))
	for i, kind := range EvaluatedPolicies {
		opts[i] = Options{
			Profile:   config.CCT(),
			Workload:  wl,
			Scheduler: "fifo",
			Policy:    PolicyFor(kind),
			Seed:      seed,
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: audit-replay/%s", EvaluatedPolicies[i])
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AuditReplayRow, len(outs))
	for i, out := range outs {
		rows[i] = AuditReplayRow{
			Policy:       EvaluatedPolicies[i].String(),
			Locality:     out.Summary.JobLocality,
			GMTT:         out.Summary.GMTT,
			BlocksPerJob: out.Summary.BlocksPerJob,
			NetworkGB:    float64(out.Summary.NetworkBytes) / (1 << 30),
		}
	}
	return rows, nil
}

// RenderAuditReplay prints the audit-replay comparison.
func RenderAuditReplay(rows []AuditReplayRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %9s %9s %11s %11s\n", "policy", "locality", "gmtt(s)", "blocks/job", "network(GB)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9.3f %9.2f %11.2f %11.1f\n", r.Policy, r.Locality, r.GMTT, r.BlocksPerJob, r.NetworkGB)
	}
	b.WriteString("(500-access slice of the Yahoo!-shaped audit log, FIFO, CCT profile)\n")
	return b.String()
}
