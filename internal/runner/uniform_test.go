package runner

import (
	"strings"
	"testing"
)

// TestUniformVsAdaptivePremise locks in §III's premise: uniform
// replication buys locality only in proportion to its (large) storage
// cost, while DARE at a 20% budget beats much more expensive uniform
// configurations.
func TestUniformVsAdaptivePremise(t *testing.T) {
	rows, err := UniformVsAdaptive(300, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]UniformRow{}
	var factors []UniformRow
	for _, r := range rows {
		byScenario[r.Scenario] = r
		if strings.HasPrefix(r.Scenario, "uniform") {
			factors = append(factors, r)
		}
	}
	// Locality grows with the uniform factor (more replicas, more chances).
	for i := 1; i < len(factors); i++ {
		if factors[i].Locality < factors[i-1].Locality-0.02 {
			t.Fatalf("uniform locality not increasing: x%d %.3f -> x%d %.3f",
				factors[i-1].Factor, factors[i-1].Locality, factors[i].Factor, factors[i].Locality)
		}
	}
	dareRow := byScenario["DARE x3 + 20% budget"]
	x6 := byScenario["uniform x6"]
	if dareRow.Locality <= x6.Locality-0.02 {
		t.Fatalf("DARE at 20%% storage (%.3f) should rival uniform x6 at 100%% (%.3f)",
			dareRow.Locality, x6.Locality)
	}
	if dareRow.ExtraStoragePct >= x6.ExtraStoragePct/2 {
		t.Fatal("storage accounting wrong")
	}
}

func TestRenderUniform(t *testing.T) {
	out := RenderUniform([]UniformRow{{Scenario: "uniform x3", Factor: 3, Locality: 0.2}})
	if !strings.Contains(out, "uniform x3") || !strings.Contains(out, "extra storage%") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
