package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
)

// EvictionRow compares the eviction policies §IV names — greedy LRU,
// greedy LFU, and the probabilistic ElephantTrap — under a budget tight
// enough that the eviction choice actually matters ("Choice between LRU
// and LFU should be made after profiling typical workloads").
type EvictionRow struct {
	Workload  string
	Policy    string
	Locality  float64
	GMTT      float64
	Writes    int64
	Evictions int64
}

// EvictionStudy profiles the three eviction policies on both paper
// workloads under FIFO at a binding budget (0.03 — below the knee of
// Fig. 9, so evictions churn continuously).
func EvictionStudy(jobs int, seed uint64) ([]EvictionRow, error) {
	type cell struct {
		wl   string
		kind core.PolicyKind
	}
	var cells []cell
	var opts []Options
	for _, wlName := range []string{"wl1", "wl2"} {
		wl, err := WorkloadByName(wlName, seed)
		if err != nil {
			return nil, err
		}
		wl = truncate(wl, jobs)
		for _, kind := range []core.PolicyKind{core.GreedyLRUPolicy, core.GreedyLFUPolicy, core.ElephantTrapPolicy} {
			pcfg := PolicyFor(kind)
			pcfg.BudgetFraction = 0.03
			cells = append(cells, cell{wl: wlName, kind: kind})
			opts = append(opts, Options{
				Profile:   config.CCT(),
				Workload:  wl,
				Scheduler: "fifo",
				Policy:    pcfg,
				Seed:      seed,
			})
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: eviction/%s/%s", cells[i].wl, cells[i].kind)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]EvictionRow, len(outs))
	for i, out := range outs {
		rows[i] = EvictionRow{
			Workload:  cells[i].wl,
			Policy:    cells[i].kind.String(),
			Locality:  out.Summary.JobLocality,
			GMTT:      out.Summary.GMTT,
			Writes:    out.Summary.DiskWrites,
			Evictions: out.Summary.Evictions,
		}
	}
	return rows, nil
}

// RenderEviction prints the eviction-policy profile.
func RenderEviction(rows []EvictionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-14s %9s %9s %8s %10s\n", "wl", "policy", "locality", "gmtt(s)", "writes", "evictions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %-14s %9.3f %9.2f %8d %10d\n", r.Workload, r.Policy, r.Locality, r.GMTT, r.Writes, r.Evictions)
	}
	b.WriteString("(FIFO scheduler, budget 0.03 so the eviction choice binds)\n")
	return b.String()
}
