package runner

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

// SpeculationRow compares a run with and without Hadoop-style speculative
// execution — an evaluation extension beyond the paper, relevant because
// §II-B shows the virtualized cloud's task durations are wildly variable
// (Table II's σ): exactly the regime backup tasks were designed for, and a
// check that DARE composes with the standard straggler mitigation.
type SpeculationRow struct {
	Speculative bool
	Policy      string
	Locality    float64
	GMTT        float64
	MeanMapTime float64
	Makespan    float64
	// Backups counts speculative attempts launched.
	Backups int
}

// SpeculationStudy replays wl1 on the noisy EC2 profile with speculation
// off and on, under vanilla and DARE.
func SpeculationStudy(jobs int, seed uint64) ([]SpeculationRow, error) {
	cct, ec2 := config.CCT(), config.EC2()
	factor := float64(cct.Slaves*cct.MapSlotsPerNode) / float64(ec2.Slaves*ec2.MapSlotsPerNode)
	wl := truncate(workload.WL1(seed), jobs).ScaleArrivals(factor)
	type cell struct {
		speculative bool
		kind        core.PolicyKind
	}
	var cells []cell
	var opts []Options
	for _, speculative := range []bool{false, true} {
		for _, kind := range []core.PolicyKind{core.NonePolicy, core.ElephantTrapPolicy} {
			profile := config.EC2()
			profile.SpeculativeExecution = speculative
			cells = append(cells, cell{speculative: speculative, kind: kind})
			opts = append(opts, Options{
				Profile:   profile,
				Workload:  wl,
				Scheduler: "fifo",
				Policy:    PolicyFor(kind),
				Seed:      seed,
			})
		}
	}
	outs, err := runAllLabeled(opts, func(i int) string {
		return fmt.Sprintf("runner: speculation/%v/%s", cells[i].speculative, cells[i].kind)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SpeculationRow, len(outs))
	for i, out := range outs {
		rows[i] = SpeculationRow{
			Speculative: cells[i].speculative,
			Policy:      cells[i].kind.String(),
			Locality:    out.Summary.JobLocality,
			GMTT:        out.Summary.GMTT,
			MeanMapTime: out.Summary.MeanMapTime,
			Makespan:    out.Summary.Makespan,
			Backups:     out.SpeculativeLaunches,
		}
	}
	return rows, nil
}

// RenderSpeculation prints the speculation study.
func RenderSpeculation(rows []SpeculationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %9s %9s %11s %10s %8s\n",
		"speculation", "policy", "locality", "gmtt(s)", "maptime(s)", "makespan", "backups")
	for _, r := range rows {
		mode := "off"
		if r.Speculative {
			mode = "on"
		}
		fmt.Fprintf(&b, "%-12s %-14s %9.3f %9.2f %11.2f %10.1f %8d\n",
			mode, r.Policy, r.Locality, r.GMTT, r.MeanMapTime, r.Makespan, r.Backups)
	}
	return b.String()
}
