package runner

import (
	"strings"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

func TestEvictionStudyShapes(t *testing.T) {
	rows, err := EvictionStudy(300, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows %d, want 6 (2 workloads x 3 policies)", len(rows))
	}
	byKey := map[string]EvictionRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Policy] = r
	}
	for _, wl := range []string{"wl1", "wl2"} {
		lru := byKey[wl+"/lru"]
		lfu := byKey[wl+"/lfu"]
		et := byKey[wl+"/elephanttrap"]
		// At a binding budget the greedy policies churn; ElephantTrap's
		// sampling suppresses both writes and evictions.
		if lru.Evictions == 0 || lfu.Evictions == 0 {
			t.Fatalf("%s: greedy policies did not evict (budget not binding)", wl)
		}
		if et.Writes >= lru.Writes {
			t.Fatalf("%s: ET writes %d not below LRU %d", wl, et.Writes, lru.Writes)
		}
		if et.Evictions >= lru.Evictions {
			t.Fatalf("%s: ET evictions %d not below LRU %d", wl, et.Evictions, lru.Evictions)
		}
		// All three policies deliver useful locality.
		for _, r := range []EvictionRow{lru, lfu, et} {
			if r.Locality < 0.25 {
				t.Fatalf("%s/%s locality %.3f too low", wl, r.Policy, r.Locality)
			}
		}
		// LFU should be competitive with LRU on these recurrent-popularity
		// workloads (within 15%).
		if lfu.Locality < 0.85*lru.Locality {
			t.Fatalf("%s: LFU locality %.3f far below LRU %.3f", wl, lfu.Locality, lru.Locality)
		}
	}
}

func TestLFUFullRunIntegration(t *testing.T) {
	wl := truncate(workload.WL1(testSeed), 150)
	out, err := Run(Options{
		Profile:   config.CCT(),
		Workload:  wl,
		Scheduler: "fifo",
		Policy:    PolicyFor(core.GreedyLFUPolicy),
		Seed:      testSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.PolicyName != "lfu" {
		t.Fatalf("policy name %q", out.PolicyName)
	}
	if out.Summary.ReplicasCreated == 0 {
		t.Fatal("LFU created no replicas")
	}
}

func TestRenderEviction(t *testing.T) {
	out := RenderEviction([]EvictionRow{{Workload: "wl1", Policy: "lfu", Locality: 0.5}})
	if !strings.Contains(out, "lfu") || !strings.Contains(out, "evictions") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}
