package runner

import (
	"math"
	"testing"

	"dare/internal/config"
	"dare/internal/core"
	"dare/internal/workload"
)

const (
	testJobs = 300
	testSeed = 12345
)

func mustRun(t *testing.T, opts Options) *Output {
	t.Helper()
	out, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func cctOpts(sched string, kind core.PolicyKind, wl *workload.Workload) Options {
	return Options{
		Profile:   config.CCT(),
		Workload:  wl,
		Scheduler: sched,
		Policy:    PolicyFor(kind),
		Seed:      testSeed,
	}
}

func TestRunValidation(t *testing.T) {
	wl := truncate(workload.WL1(testSeed), 10)
	if _, err := Run(Options{Workload: wl, Scheduler: "fifo"}); err == nil {
		t.Fatal("missing profile accepted")
	}
	if _, err := Run(Options{Profile: config.CCT(), Scheduler: "fifo"}); err == nil {
		t.Fatal("missing workload accepted")
	}
	if _, err := Run(Options{Profile: config.CCT(), Workload: wl, Scheduler: "bogus"}); err == nil {
		t.Fatal("bogus scheduler accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	wl := truncate(workload.WL1(testSeed), 100)
	a := mustRun(t, cctOpts("fifo", core.ElephantTrapPolicy, wl))
	b := mustRun(t, cctOpts("fifo", core.ElephantTrapPolicy, wl))
	if a.Summary != b.Summary {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

// TestDAREImprovesFIFOLocality is the headline result (Fig. 7a): dynamic
// replication must raise FIFO locality by a large factor.
func TestDAREImprovesFIFOLocality(t *testing.T) {
	wl := truncate(workload.WL1(testSeed), testJobs)
	vanilla := mustRun(t, cctOpts("fifo", core.NonePolicy, wl))
	lru := mustRun(t, cctOpts("fifo", core.GreedyLRUPolicy, wl))
	et := mustRun(t, cctOpts("fifo", core.ElephantTrapPolicy, wl))

	if vanilla.Summary.JobLocality > 0.35 {
		t.Fatalf("vanilla FIFO locality %.3f; expected a low baseline", vanilla.Summary.JobLocality)
	}
	if lru.Summary.JobLocality < 2*vanilla.Summary.JobLocality {
		t.Fatalf("LRU locality %.3f vs vanilla %.3f: DARE should at least double it",
			lru.Summary.JobLocality, vanilla.Summary.JobLocality)
	}
	if et.Summary.JobLocality < 1.5*vanilla.Summary.JobLocality {
		t.Fatalf("ElephantTrap locality %.3f vs vanilla %.3f", et.Summary.JobLocality, vanilla.Summary.JobLocality)
	}
}

// TestDAREReducesGMTTAndSlowdown covers Fig. 7b/7c's direction: turnaround
// and slowdown improve under DARE for the FIFO scheduler.
func TestDAREReducesGMTTAndSlowdown(t *testing.T) {
	wl := truncate(workload.WL1(testSeed), testJobs)
	vanilla := mustRun(t, cctOpts("fifo", core.NonePolicy, wl))
	lru := mustRun(t, cctOpts("fifo", core.GreedyLRUPolicy, wl))
	if lru.Summary.GMTT >= vanilla.Summary.GMTT {
		t.Fatalf("GMTT %.2f not below vanilla %.2f", lru.Summary.GMTT, vanilla.Summary.GMTT)
	}
	if lru.Summary.MeanSlowdown >= vanilla.Summary.MeanSlowdown {
		t.Fatalf("slowdown %.2f not below vanilla %.2f", lru.Summary.MeanSlowdown, vanilla.Summary.MeanSlowdown)
	}
	if lru.Summary.MeanMapTime >= vanilla.Summary.MeanMapTime {
		t.Fatalf("map time %.2f not below vanilla %.2f (§V-C)", lru.Summary.MeanMapTime, vanilla.Summary.MeanMapTime)
	}
}

// TestFairSchedulerHighBaseline covers the §V-B observation: the Fair
// scheduler with delay scheduling achieves high locality even without
// DARE, and DARE pushes it higher still.
func TestFairSchedulerHighBaseline(t *testing.T) {
	wl := truncate(workload.WL2(testSeed), testJobs)
	vanilla := mustRun(t, cctOpts("fair", core.NonePolicy, wl))
	lru := mustRun(t, cctOpts("fair", core.GreedyLRUPolicy, wl))
	if vanilla.Summary.JobLocality < 0.6 {
		t.Fatalf("fair vanilla locality %.3f; delay scheduling should give a high baseline (~0.83 in the paper)",
			vanilla.Summary.JobLocality)
	}
	if lru.Summary.JobLocality <= vanilla.Summary.JobLocality {
		t.Fatalf("fair+DARE locality %.3f not above vanilla %.3f", lru.Summary.JobLocality, vanilla.Summary.JobLocality)
	}
	if lru.Summary.JobLocality < 0.85 {
		t.Fatalf("fair+DARE locality %.3f; paper reports >85%%", lru.Summary.JobLocality)
	}
}

// TestElephantTrapWriteEfficiency covers the §I claim: ElephantTrap
// achieves comparable locality to greedy LRU with roughly half the disk
// writes.
func TestElephantTrapWriteEfficiency(t *testing.T) {
	rows, err := AblationWrites(testJobs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ETWrites >= r.LRUWrites {
			t.Fatalf("%s: ET writes %d not below LRU %d", r.Scheduler, r.ETWrites, r.LRUWrites)
		}
		if ratio := r.WriteRatio(); ratio > 0.7 {
			t.Fatalf("%s: ET/LRU write ratio %.2f; paper reports ~0.5", r.Scheduler, ratio)
		}
		if r.ETLocality < 0.6*r.LRULocality {
			t.Fatalf("%s: ET locality %.3f too far below LRU %.3f", r.Scheduler, r.ETLocality, r.LRULocality)
		}
	}
}

// TestFig8PMonotoneTrend: locality grows with p and flattens; replication
// activity grows with p (Fig. 8a).
func TestFig8PMonotoneTrend(t *testing.T) {
	rows, err := Fig8P(testJobs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byP := map[float64]SensRow{}
	for _, r := range rows {
		if r.Scheduler == "fifo" {
			byP[r.Value] = r
		}
	}
	if byP[0.9].Locality <= byP[0].Locality {
		t.Fatalf("locality at p=0.9 (%.3f) not above p=0 (%.3f)", byP[0.9].Locality, byP[0].Locality)
	}
	if byP[0.9].BlocksPerJob <= byP[0.1].BlocksPerJob {
		t.Fatalf("blocks/job at p=0.9 (%.2f) not above p=0.1 (%.2f)", byP[0.9].BlocksPerJob, byP[0.1].BlocksPerJob)
	}
	if byP[0].BlocksPerJob != 0 {
		t.Fatalf("p=0 must create no replicas, got %.2f per job", byP[0].BlocksPerJob)
	}
	// Most of the gain arrives by p ~ 0.2-0.3 (§V-D).
	gainAt03 := byP[0.3].Locality - byP[0].Locality
	gainTotal := byP[0.9].Locality - byP[0].Locality
	if gainAt03 < 0.4*gainTotal {
		t.Fatalf("p=0.3 captures only %.0f%% of the total locality gain; paper says most of it", 100*gainAt03/gainTotal)
	}
}

// TestFig9BudgetTrend: blocks created per job decrease as the budget
// grows, while locality weakly increases (Fig. 9).
func TestFig9BudgetTrend(t *testing.T) {
	rows, err := Fig9LRU(testJobs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	var lowB, highB SensRow
	for _, r := range rows {
		if r.Scheduler != "fifo" {
			continue
		}
		if r.Value == 0.01 {
			lowB = r
		}
		if r.Value == 0.9 {
			highB = r
		}
	}
	if highB.Locality < lowB.Locality {
		t.Fatalf("locality at budget 0.9 (%.3f) below budget 0.01 (%.3f)", highB.Locality, lowB.Locality)
	}
	if highB.BlocksPerJob >= lowB.BlocksPerJob {
		t.Fatalf("blocks/job at budget 0.9 (%.2f) not below 0.01 (%.2f): thrashing should fall with budget",
			highB.BlocksPerJob, lowB.BlocksPerJob)
	}
}

// TestFig11UniformityImproves: DARE flattens the popularity-index
// distribution (Fig. 11), with pronounced gains by p = 0.2.
func TestFig11UniformityImproves(t *testing.T) {
	rows, err := Fig11(testJobs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byP := map[float64]Fig11Row{}
	for _, r := range rows {
		byP[r.P] = r
	}
	if r := byP[0]; math.Abs(r.CVAfter-r.CVBefore) > 1e-9 {
		t.Fatalf("p=0 must not change placement: before %.3f after %.3f", r.CVBefore, r.CVAfter)
	}
	if r := byP[0.2]; r.CVAfter >= 0.8*r.CVBefore {
		t.Fatalf("p=0.2 cv after %.3f vs before %.3f: expected significant uniformity gain", r.CVAfter, r.CVBefore)
	}
	for _, p := range []float64{0.2, 0.5, 0.9} {
		if byP[p].CVAfter >= byP[p].CVBefore {
			t.Fatalf("p=%.1f: cv did not improve (%.3f -> %.3f)", p, byP[p].CVBefore, byP[p].CVAfter)
		}
	}
}

// TestEC2GainsExceedCCT covers §V-E: for comparable locality improvement,
// GMTT/slowdown gains are at least as significant on the virtualized
// cluster.
func TestEC2RunsImprove(t *testing.T) {
	rows, err := Fig10(200, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]PerfRow{}
	for _, r := range rows {
		byKey[r.Scheduler+"/"+r.Policy] = r
	}
	van := byKey["fifo/vanilla"]
	lru := byKey["fifo/lru"]
	if van.Locality > 0.2 {
		t.Fatalf("EC2 FIFO vanilla locality %.3f; 3 replicas over 99 nodes must give a very low baseline", van.Locality)
	}
	if lru.Locality < 2*van.Locality {
		t.Fatalf("EC2 FIFO DARE locality %.3f vs vanilla %.3f", lru.Locality, van.Locality)
	}
	if lru.GMTTNorm >= 1 {
		t.Fatalf("EC2 GMTT did not improve: norm %.3f", lru.GMTTNorm)
	}
	fvan := byKey["fair/vanilla"]
	flru := byKey["fair/lru"]
	if flru.Locality <= fvan.Locality {
		t.Fatalf("EC2 fair locality did not improve: %.3f vs %.3f", flru.Locality, fvan.Locality)
	}
}

func TestAblationMapTime(t *testing.T) {
	rows, err := AblationMapTime(testJobs, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// FIFO has plenty of headroom; the fair scheduler's baseline is
		// already near-local, so only direction (no regression) is
		// asserted there.
		if r.Scheduler == "fifo" && r.ReductionPercent <= 2 {
			t.Fatalf("fifo: map time reduction %.1f%%; paper reports ~12%%", r.ReductionPercent)
		}
		if r.ReductionPercent < -2 {
			t.Fatalf("%s: map time regressed by %.1f%%", r.Scheduler, -r.ReductionPercent)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	for _, name := range []string{"wl1", "wl2"} {
		wl, err := WorkloadByName(name, 1)
		if err != nil || wl.Name != name {
			t.Fatalf("WorkloadByName(%s): %v", name, err)
		}
	}
	if _, err := WorkloadByName("wl9", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTruncate(t *testing.T) {
	wl := workload.WL1(1)
	short := truncate(wl, 10)
	if len(short.Jobs) != 10 {
		t.Fatalf("truncate kept %d jobs", len(short.Jobs))
	}
	if truncate(wl, 0) != wl || truncate(wl, len(wl.Jobs)+5) != wl {
		t.Fatal("truncate should be a no-op outside range")
	}
	if len(wl.Jobs) != 500 {
		t.Fatal("truncate mutated the original")
	}
}

func TestPolicyFor(t *testing.T) {
	if PolicyFor(core.NonePolicy).Kind != core.NonePolicy {
		t.Fatal("none policy wrong")
	}
	if p := PolicyFor(core.GreedyLRUPolicy); p.Kind != core.GreedyLRUPolicy || p.BudgetFraction != 0.2 {
		t.Fatalf("lru policy %+v", p)
	}
	if p := PolicyFor(core.ElephantTrapPolicy); p.P != 0.3 || p.Threshold != 1 || p.BudgetFraction != 0.2 {
		t.Fatalf("et policy %+v", p)
	}
}

func TestRenderers(t *testing.T) {
	perf := []PerfRow{{Workload: "wl1", Scheduler: "fifo", Policy: "vanilla", Locality: 0.1}}
	if out := RenderPerf(perf); len(out) == 0 {
		t.Fatal("empty perf render")
	}
	sens := []SensRow{{Param: "p", Value: 0.3, Scheduler: "fifo", Policy: "et", Locality: 0.5}}
	if out := RenderSens(sens); len(out) == 0 {
		t.Fatal("empty sens render")
	}
	f11 := []Fig11Row{{P: 0.2, CVBefore: 0.5, CVAfter: 0.2}}
	if out := RenderFig11(f11); len(out) == 0 {
		t.Fatal("empty fig11 render")
	}
	wr := []WritesRow{{Scheduler: "fifo", LRUWrites: 100, ETWrites: 50}}
	if out := RenderWrites(wr); len(out) == 0 {
		t.Fatal("empty writes render")
	}
	mt := []MapTimeRow{{Scheduler: "fifo", VanillaMapTime: 2, DareMapTime: 1.8, ReductionPercent: 10}}
	if out := RenderMapTime(mt); len(out) == 0 {
		t.Fatal("empty maptime render")
	}
}
