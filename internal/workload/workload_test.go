package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestWL1Shape(t *testing.T) {
	w := WL1(1)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 500 {
		t.Fatalf("jobs %d, want 500 (paper §V-A)", len(w.Jobs))
	}
	if len(w.Files) != 120 {
		t.Fatalf("files %d, want 120 (Fig. 6)", len(w.Files))
	}
	// wl1 is a long sequence of small jobs: median map count small, no
	// large-job class.
	big := 0
	for _, j := range w.Jobs {
		if j.NumMaps > 50 {
			big++
		}
	}
	if big > 10 {
		t.Fatalf("wl1 has %d jobs over 50 maps; should be a small-job stream", big)
	}
}

func TestWL2HasLargeJobPattern(t *testing.T) {
	w := WL2(1)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	large := 0
	for _, j := range w.Jobs {
		if j.NumMaps >= 50 {
			large++
		}
	}
	// Every 10th job is large (some clipped by file size).
	if large < 20 {
		t.Fatalf("wl2 has only %d large jobs; expected a small-after-large pattern", large)
	}
	// wl2 job-size variance must exceed wl1's.
	varOf := func(w *Workload) float64 {
		var mean, m2 float64
		for i, j := range w.Jobs {
			d := float64(j.NumMaps) - mean
			mean += d / float64(i+1)
			m2 += d * (float64(j.NumMaps) - mean)
		}
		return m2 / float64(len(w.Jobs))
	}
	if varOf(WL2(2)) <= varOf(WL1(2)) {
		t.Fatal("wl2 variance should exceed wl1 variance")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := WL1(7), WL1(7)
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	c := WL1(8)
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i] == c.Jobs[i] {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestArrivalsMonotone(t *testing.T) {
	for _, w := range []*Workload{WL1(3), WL2(3)} {
		for i := 1; i < len(w.Jobs); i++ {
			if w.Jobs[i].Arrival < w.Jobs[i-1].Arrival {
				t.Fatalf("%s: arrivals not monotone at %d", w.Name, i)
			}
		}
	}
}

func TestAccessSkewMatchesZipf(t *testing.T) {
	// The most popular file must absorb far more accesses than the median
	// one (heavy tail of Fig. 6 / Fig. 2).
	w := Generate(GenConfig{NumJobs: 5000, Seed: 4})
	counts := w.AccessCounts()
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if counts[0] < max/2 {
		t.Fatalf("rank-1 file has %d accesses, max is %d; expected rank 1 near the top", counts[0], max)
	}
	if float64(max) < 0.05*float64(len(w.Jobs)) {
		t.Fatalf("top file only %d/%d accesses; distribution not skewed", max, len(w.Jobs))
	}
}

func TestWindowsStayInsideFiles(t *testing.T) {
	f := func(seed uint64) bool {
		w := Generate(GenConfig{NumJobs: 100, Seed: seed})
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mutations := []func(*Workload){
		func(w *Workload) { w.Jobs[0].File = 999 },
		func(w *Workload) { w.Jobs[0].NumMaps = 0 },
		func(w *Workload) { w.Jobs[0].FirstBlock = -1 },
		func(w *Workload) { w.Jobs[0].NumMaps = w.Files[w.Jobs[0].File].Blocks + 5 },
		func(w *Workload) { w.Jobs[0].CPUPerTask = 0 },
		func(w *Workload) { w.Jobs[1].Arrival = w.Jobs[0].Arrival - 100; w.Jobs[0].Arrival = 1e9 },
		func(w *Workload) { w.Jobs[0].NumReduces = 2; w.Jobs[0].ReduceTime = 0 },
		func(w *Workload) { w.Files[0].Blocks = 0 },
	}
	for i, mutate := range mutations {
		w := WL1(5)
		mutate(w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestTotalMaps(t *testing.T) {
	w := &Workload{
		Files: []FileSpec{{Name: "f", Blocks: 10}},
		Jobs: []Job{
			{NumMaps: 3, CPUPerTask: 1},
			{NumMaps: 7, CPUPerTask: 1},
		},
	}
	if w.TotalMaps() != 10 {
		t.Fatalf("TotalMaps %d", w.TotalMaps())
	}
}

func TestFig6PointsShape(t *testing.T) {
	pts := Fig6Points(120, 1.1)
	if len(pts) != 120 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[len(pts)-1].P != 1 {
		t.Fatalf("CDF must end at 1, got %v", pts[len(pts)-1].P)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatal("CDF not monotone")
		}
	}
	// Heavy head: top 20 of 120 files should hold the majority of access
	// probability, as Fig. 6 shows.
	if pts[19].P < 0.5 {
		t.Fatalf("top-20 cumulative probability %v; Fig. 6 shows a heavy head", pts[19].P)
	}
	// Defaults kick in for zero arguments.
	if len(Fig6Points(0, 0)) != 120 {
		t.Fatal("defaults not applied")
	}
}

func TestBlockAccessCounts(t *testing.T) {
	w := &Workload{
		Files: []FileSpec{{Name: "f", Blocks: 5}},
		Jobs: []Job{
			{File: 0, FirstBlock: 0, NumMaps: 3, CPUPerTask: 1},
			{File: 0, FirstBlock: 2, NumMaps: 2, CPUPerTask: 1},
		},
	}
	counts := w.BlockAccessCounts()
	want := []int{1, 1, 2, 1, 0}
	for i, c := range counts[0] {
		if c != want[i] {
			t.Fatalf("block counts %v, want %v", counts[0], want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	w := WL2(9)
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != w.Name || len(got.Files) != len(w.Files) || len(got.Jobs) != len(w.Jobs) {
		t.Fatal("round trip lost structure")
	}
	if math.Abs(got.ZipfS-w.ZipfS) > 1e-12 {
		t.Fatal("ZipfS lost")
	}
	for i := range w.Jobs {
		if got.Jobs[i] != w.Jobs[i] {
			t.Fatalf("job %d differs after round trip", i)
		}
	}
	for i := range w.Files {
		if got.Files[i] != w.Files[i] {
			t.Fatalf("file %d differs after round trip", i)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus,1,2\n",
		"file,f\n",
		"file,f,notanumber\n",
		"job,1,2\n",
		"job,x,0,0,0,1,1,0,0\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadCSVValidates(t *testing.T) {
	// Structurally valid CSV with semantically invalid content.
	in := "file,f,5\njob,0,0,0,3,9,1,0,0\n" // window [3,12) exceeds 5 blocks
	if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
		t.Fatal("invalid window accepted")
	}
}

func TestBurstProbCreatesCoArrivals(t *testing.T) {
	bursty := Generate(GenConfig{NumJobs: 1000, Seed: 15, BurstProb: 0.8})
	calm := Generate(GenConfig{NumJobs: 1000, Seed: 15, BurstProb: 0.01})
	zeroGaps := func(w *Workload) int {
		n := 0
		for i := 1; i < len(w.Jobs); i++ {
			if w.Jobs[i].Arrival == w.Jobs[i-1].Arrival {
				n++
			}
		}
		return n
	}
	b, c := zeroGaps(bursty), zeroGaps(calm)
	if b < 600 || b > 900 {
		t.Fatalf("bursty trace has %d co-arrivals of 999, want ~800", b)
	}
	if c > 50 {
		t.Fatalf("calm trace has %d co-arrivals, want ~10", c)
	}
	// Long-run rate is compensated: total spans comparable within 2x.
	sb := bursty.Jobs[len(bursty.Jobs)-1].Arrival
	sc := calm.Jobs[len(calm.Jobs)-1].Arrival
	if sb > 2*sc || sc > 2*sb {
		t.Fatalf("burst compensation failed: spans %.1f vs %.1f", sb, sc)
	}
}

func TestFileRepeatProbCreatesRuns(t *testing.T) {
	sticky := Generate(GenConfig{NumJobs: 1000, Seed: 16, FileRepeatProb: 0.8})
	repeats := 0
	for i := 1; i < len(sticky.Jobs); i++ {
		if sticky.Jobs[i].File == sticky.Jobs[i-1].File {
			repeats++
		}
	}
	if repeats < 600 {
		t.Fatalf("only %d consecutive same-file pairs with repeat prob 0.8", repeats)
	}
}

func TestPoolsAssignment(t *testing.T) {
	w := Generate(GenConfig{NumJobs: 30, Seed: 17, Pools: 3})
	seen := map[string]int{}
	for _, j := range w.Jobs {
		seen[j.Pool]++
	}
	if len(seen) != 3 {
		t.Fatalf("pools %v, want 3 distinct", seen)
	}
	for pool, n := range seen {
		if n != 10 {
			t.Fatalf("pool %s has %d jobs, want 10", pool, n)
		}
	}
	// Single-pool default leaves Pool empty.
	w2 := Generate(GenConfig{NumJobs: 5, Seed: 17})
	for _, j := range w2.Jobs {
		if j.Pool != "" {
			t.Fatal("default workload should use the empty pool")
		}
	}
}

func TestCSVPoolRoundTrip(t *testing.T) {
	w := Generate(GenConfig{NumJobs: 20, Seed: 18, Pools: 2})
	var buf bytes.Buffer
	if err := w.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Jobs {
		if got.Jobs[i].Pool != w.Jobs[i].Pool {
			t.Fatalf("job %d pool lost in round trip", i)
		}
	}
}
