package workload

import (
	"fmt"
	"sort"
	"strings"
)

// SizeClass buckets jobs by map count the way SWIM characterizes the
// Facebook trace (most jobs tiny, a long tail of large scans).
type SizeClass struct {
	Label      string
	MinMaps    int
	MaxMaps    int // inclusive; 0 = unbounded
	Jobs       int
	TotalMaps  int
	MeanMaps   float64
	ShareJobs  float64
	ShareTasks float64
}

// defaultClasses mirrors the bins SWIM uses for the Facebook 2009 trace.
func defaultClasses() []SizeClass {
	return []SizeClass{
		{Label: "tiny (1-2 maps)", MinMaps: 1, MaxMaps: 2},
		{Label: "small (3-10)", MinMaps: 3, MaxMaps: 10},
		{Label: "medium (11-50)", MinMaps: 11, MaxMaps: 50},
		{Label: "large (51+)", MinMaps: 51, MaxMaps: 0},
	}
}

// Summary describes a workload the way the paper's §V-A describes its
// traces: job count, file population, size mix, arrival intensity, and
// popularity skew.
type Summary struct {
	Name          string
	Jobs          int
	Files         int
	TotalMaps     int
	TotalBlocks   int
	MeanMapsPer   float64
	Span          float64 // last arrival, seconds
	MeanGap       float64
	Classes       []SizeClass
	TopFileShare  float64 // fraction of accesses to the most popular file
	Top10Share    float64
	OutputHeavyPc float64 // percentage of jobs with output >= input
}

// Summarize computes the workload's descriptive statistics.
func (w *Workload) Summarize() Summary {
	s := Summary{Name: w.Name, Jobs: len(w.Jobs), Files: len(w.Files)}
	for _, f := range w.Files {
		s.TotalBlocks += f.Blocks
	}
	classes := defaultClasses()
	outputHeavy := 0
	for _, j := range w.Jobs {
		s.TotalMaps += j.NumMaps
		if j.OutputBlocks >= j.NumMaps {
			outputHeavy++
		}
		for i := range classes {
			c := &classes[i]
			if j.NumMaps >= c.MinMaps && (c.MaxMaps == 0 || j.NumMaps <= c.MaxMaps) {
				c.Jobs++
				c.TotalMaps += j.NumMaps
			}
		}
	}
	if s.Jobs > 0 {
		s.MeanMapsPer = float64(s.TotalMaps) / float64(s.Jobs)
		s.Span = w.Jobs[len(w.Jobs)-1].Arrival
		if s.Jobs > 1 {
			s.MeanGap = s.Span / float64(s.Jobs-1)
		}
		s.OutputHeavyPc = float64(outputHeavy) / float64(s.Jobs) * 100
	}
	for i := range classes {
		c := &classes[i]
		if c.Jobs > 0 {
			c.MeanMaps = float64(c.TotalMaps) / float64(c.Jobs)
		}
		if s.Jobs > 0 {
			c.ShareJobs = float64(c.Jobs) / float64(s.Jobs)
		}
		if s.TotalMaps > 0 {
			c.ShareTasks = float64(c.TotalMaps) / float64(s.TotalMaps)
		}
	}
	s.Classes = classes

	counts := w.AccessCounts()
	sorted := append([]int(nil), counts...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	if s.Jobs > 0 && len(sorted) > 0 {
		s.TopFileShare = float64(sorted[0]) / float64(s.Jobs)
		top10 := 0
		for i := 0; i < 10 && i < len(sorted); i++ {
			top10 += sorted[i]
		}
		s.Top10Share = float64(top10) / float64(s.Jobs)
	}
	return s
}

// String renders the summary for the CLI tools.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %q: %d jobs over %d files (%d blocks)\n", s.Name, s.Jobs, s.Files, s.TotalBlocks)
	fmt.Fprintf(&b, "  map tasks      %d total, %.1f per job\n", s.TotalMaps, s.MeanMapsPer)
	fmt.Fprintf(&b, "  arrivals       %.1f s span, %.3f s mean gap\n", s.Span, s.MeanGap)
	fmt.Fprintf(&b, "  popularity     top file %.0f%% of accesses, top 10 %.0f%%\n", s.TopFileShare*100, s.Top10Share*100)
	fmt.Fprintf(&b, "  output-heavy   %.0f%% of jobs (output >= input)\n", s.OutputHeavyPc)
	fmt.Fprintf(&b, "  %-18s %6s %9s %10s %11s\n", "size class", "jobs", "share", "mean maps", "task share")
	for _, c := range s.Classes {
		fmt.Fprintf(&b, "  %-18s %6d %8.1f%% %10.1f %10.1f%%\n", c.Label, c.Jobs, c.ShareJobs*100, c.MeanMaps, c.ShareTasks*100)
	}
	return b.String()
}
