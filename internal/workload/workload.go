// Package workload synthesizes MapReduce job traces shaped like the
// Facebook traces the paper replays (§V-A). The paper uses SWIM (Chen et
// al., MASCOTS'11) to sample 500-job segments of a 600-machine Facebook
// production trace; we do not have that trace, so this package generates
// statistically equivalent ones:
//
//   - wl1 (paper: jobs 0–499): a long sequence of small jobs with modest
//     size variance — the regime that favours the FIFO scheduler.
//   - wl2 (paper: jobs 4800–5299): a recurring pattern of small jobs
//     arriving after large jobs — the regime that favours the Fair
//     scheduler.
//
// File popularity follows the heavy-tailed access CDF of Fig. 6 (~120
// files, the top handful absorbing most accesses), and file sizes are
// heavy-tailed in blocks, matching the block-weighted popularity curve of
// Fig. 2.
package workload

import (
	"fmt"
	"math"

	"dare/internal/stats"
)

// FileSpec describes one input file to pre-load into the DFS.
type FileSpec struct {
	Name   string
	Blocks int
}

// Job is one MapReduce job of the trace. A job reads NumMaps consecutive
// blocks of its input file starting at FirstBlock — one map task per block
// (§II-A) — then runs NumReduces reduce tasks.
type Job struct {
	ID      int
	Arrival float64 // seconds since trace start
	File    int     // index into Workload.Files
	// FirstBlock is the block offset of the read window within the file.
	FirstBlock int
	// NumMaps is the window length; one map task per block.
	NumMaps int
	// CPUPerTask is the per-map compute time in seconds (overlapped with
	// the input read; the slower of the two dominates).
	CPUPerTask float64
	// NumReduces and ReduceTime model the reduce phase: after the last map
	// finishes, NumReduces tasks of ReduceTime seconds each occupy reduce
	// slots.
	NumReduces int
	ReduceTime float64
	// OutputBlocks is the job's output volume in DFS blocks, written by
	// the reduce phase through the HDFS replication pipeline. Jobs whose
	// output rivals their input are "output-bound" (§V-C): dynamic
	// replication cannot expedite them, and the paper observes exactly
	// that.
	OutputBlocks int
	// Pool names the fair-scheduler pool (user/organization) the job
	// belongs to; empty means the default pool. The Hadoop Fair Scheduler
	// shares the cluster between pools first and between a pool's jobs
	// second.
	Pool string
}

// Workload is a complete synthetic trace: the file population plus the job
// sequence.
type Workload struct {
	Name  string
	Files []FileSpec
	Jobs  []Job
	// ZipfS is the popularity exponent used, recorded for reporting.
	ZipfS float64
}

// TotalMaps reports the total number of map tasks across all jobs.
func (w *Workload) TotalMaps() int {
	total := 0
	for _, j := range w.Jobs {
		total += j.NumMaps
	}
	return total
}

// Validate checks referential integrity: every job reads an existing
// window of an existing file and all quantities are positive.
func (w *Workload) Validate() error {
	for i, j := range w.Jobs {
		if j.File < 0 || j.File >= len(w.Files) {
			return fmt.Errorf("workload: job %d references file %d of %d", i, j.File, len(w.Files))
		}
		f := w.Files[j.File]
		if j.NumMaps < 1 {
			return fmt.Errorf("workload: job %d has %d maps", i, j.NumMaps)
		}
		if j.FirstBlock < 0 || j.FirstBlock+j.NumMaps > f.Blocks {
			return fmt.Errorf("workload: job %d window [%d,%d) exceeds file %q (%d blocks)",
				i, j.FirstBlock, j.FirstBlock+j.NumMaps, f.Name, f.Blocks)
		}
		if j.Arrival < 0 || j.CPUPerTask <= 0 {
			return fmt.Errorf("workload: job %d has invalid timing (arrival %v, cpu %v)", i, j.Arrival, j.CPUPerTask)
		}
		if i > 0 && j.Arrival < w.Jobs[i-1].Arrival {
			return fmt.Errorf("workload: job %d arrives before job %d", i, i-1)
		}
		if j.NumReduces < 0 || (j.NumReduces > 0 && j.ReduceTime <= 0) {
			return fmt.Errorf("workload: job %d has invalid reduce phase", i)
		}
		if j.OutputBlocks < 0 {
			return fmt.Errorf("workload: job %d has negative output", i)
		}
		if j.OutputBlocks > 0 && j.NumReduces == 0 {
			return fmt.Errorf("workload: job %d writes output without reduces", i)
		}
	}
	for i, f := range w.Files {
		if f.Blocks < 1 {
			return fmt.Errorf("workload: file %d (%q) has %d blocks", i, f.Name, f.Blocks)
		}
	}
	return nil
}

// GenConfig parameterizes trace synthesis. Zero values are filled with the
// defaults used throughout the evaluation.
type GenConfig struct {
	// Name labels the workload ("wl1", "wl2").
	Name string
	// NumJobs is the trace length (paper: 500).
	NumJobs int
	// NumFiles is the file population size (Fig. 6: ~120 ranks).
	NumFiles int
	// ZipfS is the popularity exponent of the access CDF.
	ZipfS float64
	// MeanInterarrival is the mean of the exponential job interarrival in
	// seconds.
	MeanInterarrival float64
	// MinFileBlocks/MaxFileBlocks bound the heavy-tailed file size.
	MinFileBlocks, MaxFileBlocks int
	// LargeEvery inserts a large job every LargeEvery jobs (0 disables —
	// wl1); wl2 uses ~10.
	LargeEvery int
	// SmallMaps and LargeMaps are the map-count distributions of the two
	// job classes.
	SmallMaps stats.Dist
	LargeMaps stats.Dist
	// CPUPerTask is the per-map compute time distribution in seconds.
	CPUPerTask stats.Dist
	// FileRepeatProb is the probability that a job re-reads the previous
	// job's file, modelling the strong temporal access correlation of §III
	// (Figs. 3-5): fresh data attracts bursts of concurrent analyses.
	FileRepeatProb float64
	// BurstProb is the probability that a job co-arrives with its
	// predecessor (zero gap), creating the concurrent-access hotspots the
	// paper's replica-allocation problem targets (§I).
	BurstProb float64
	// OutputRatio is the distribution of output-to-input size ratios; the
	// Facebook mix is bimodal — mostly aggregations that shrink the data
	// (~0.1x) with a minority of transformations that keep or grow it
	// (~1.2x), the §V-C "mixture of input-bound and output-bound tasks".
	OutputRatio stats.Dist
	// Pools, when > 1, assigns jobs round-robin to this many fair-scheduler
	// pools ("user-0", "user-1", ...), for multi-tenant scenarios. The
	// paper's wl1/wl2 use a single pool.
	Pools int
	// ShiftAtJob, when positive, rotates the popularity ranking by half
	// the file population starting at that job index: yesterday's hot
	// files go cold and a disjoint set becomes hot. This models the
	// §IV goal of "dynamically adapting to changes in file access
	// patterns" and drives the DARE-vs-Scarlett adaptation experiment.
	ShiftAtJob int
	// Seed drives all sampling.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.NumJobs == 0 {
		c.NumJobs = 500
	}
	if c.NumFiles == 0 {
		c.NumFiles = 120
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.55
	}
	if c.MeanInterarrival == 0 {
		// SWIM scales a 600-machine trace down to the test cluster by
		// compressing arrivals so per-node load is preserved; on ~20 nodes
		// that means sub-second interarrivals for the small-job stream.
		c.MeanInterarrival = 0.09
	}
	if c.MinFileBlocks == 0 {
		c.MinFileBlocks = 4
	}
	if c.MaxFileBlocks == 0 {
		c.MaxFileBlocks = 96
	}
	if c.SmallMaps == nil {
		c.SmallMaps = stats.BoundedPareto{L: 1, H: 20, Alpha: 1.9}
	}
	if c.LargeMaps == nil {
		c.LargeMaps = stats.Uniform{Lo: 60, Hi: 200}
	}
	if c.CPUPerTask == nil {
		// Input-bound map tasks: the compute overlaps a ~0.8 s local block
		// read, so locality visibly moves task duration (the Facebook mix
		// is dominated by such I/O-bound maps, §V-C).
		c.CPUPerTask = stats.LogNormalFromMoments(1.0, 0.5)
	}
	if c.FileRepeatProb == 0 {
		c.FileRepeatProb = 0.25
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.5
	}
	if c.OutputRatio == nil {
		c.OutputRatio = stats.Mixture{
			Weights:    []float64{0.7, 0.3},
			Components: []stats.Dist{stats.Constant{V: 0.1}, stats.Constant{V: 1.2}},
		}
	}
	return c
}

// Generate synthesizes a workload from cfg. Identical configs (including
// Seed) produce identical workloads.
func Generate(cfg GenConfig) *Workload {
	cfg = cfg.withDefaults()
	s, w := newSynth(cfg)
	for i := 0; i < cfg.NumJobs; i++ {
		w.Jobs = append(w.Jobs, s.nextJob())
	}
	return w
}

// newSynth builds the file population and a primed job sampler. Generate
// and NewStream both go through it, so a stream under the same GenConfig
// emits exactly the job sequence Generate would — same files, same draws,
// same order.
func newSynth(cfg GenConfig) (*jobSynth, *Workload) {
	g := stats.NewRNG(cfg.Seed)
	fileG := g.Split(1)
	popG := g.Split(2)
	arrG := g.Split(3)
	sizeG := g.Split(4)
	cpuG := g.Split(5)
	outG := g.Split(6)

	w := &Workload{Name: cfg.Name, ZipfS: cfg.ZipfS}

	// File population: heavy-tailed sizes. Popular (low-rank) files are
	// the working set of the day (§III); their sizes are drawn from the
	// same distribution as everyone else's, matching Fig. 2's observation
	// that weighting by block count preserves the heavy tail.
	sizeDist := stats.BoundedPareto{L: float64(cfg.MinFileBlocks), H: float64(cfg.MaxFileBlocks), Alpha: 1.1}
	var largeFiles []int
	for i := 0; i < cfg.NumFiles; i++ {
		blocks := int(math.Round(sizeDist.Sample(fileG)))
		if blocks < cfg.MinFileBlocks {
			blocks = cfg.MinFileBlocks
		}
		if blocks > cfg.MaxFileBlocks {
			blocks = cfg.MaxFileBlocks
		}
		// Guarantee a population of genuinely large files for the large
		// jobs to scan (one in twelve), mirroring the Facebook trace's mix
		// of small partitions and day-scale datasets.
		if i%12 == 5 && blocks < cfg.MaxFileBlocks*2/3 {
			blocks = cfg.MaxFileBlocks*2/3 + fileG.Intn(cfg.MaxFileBlocks/3+1)
		}
		if blocks >= cfg.MaxFileBlocks/2 {
			largeFiles = append(largeFiles, i)
		}
		w.Files = append(w.Files, FileSpec{Name: fmt.Sprintf("file-%03d", i), Blocks: blocks})
	}

	s := &jobSynth{
		cfg:          cfg,
		files:        w.Files,
		largeFiles:   largeFiles,
		zipf:         stats.NewZipf(cfg.NumFiles, cfg.ZipfS, 0),
		interarrival: stats.Exponential{Lambda: 1 / cfg.MeanInterarrival},
		popG:         popG,
		arrG:         arrG,
		sizeG:        sizeG,
		cpuG:         cpuG,
		outG:         outG,
		prevFile:     -1,
	}
	return s, w
}

// jobSynth is the per-job sampler behind Generate and Stream: the RNG
// streams plus the cross-job correlation state (clock, previous file).
// Extracting it from the Generate loop is what lets a streaming run
// synthesize the exact job sequence Generate would, chunk by chunk — every
// draw happens in the same order on the same stream.
type jobSynth struct {
	cfg          GenConfig
	files        []FileSpec
	largeFiles   []int
	zipf         *stats.Zipf
	interarrival stats.Exponential
	popG, arrG   *stats.RNG
	sizeG, cpuG  *stats.RNG
	outG         *stats.RNG

	now      float64
	prevFile int
	next     int
	// rate, when non-nil, modulates the arrival gap by the instantaneous
	// load level at the current clock (streaming diurnal load); nil leaves
	// Generate's historical arrival process untouched.
	rate func(t float64) float64
}

// nextJob synthesizes one job. The draw order is load-bearing: it must
// stay exactly the historical Generate order (arrival, size, popularity,
// window, cpu, output) or every seeded workload changes.
func (s *jobSynth) nextJob() Job {
	cfg := s.cfg
	i := s.next
	s.next++
	// Bursty arrivals: with probability BurstProb a job co-arrives with
	// its predecessor; the remaining gaps are stretched to keep the
	// long-run arrival rate at 1/MeanInterarrival.
	gap := s.interarrival.Sample(s.arrG) / (1 - cfg.BurstProb)
	if i > 0 && s.arrG.Bool(cfg.BurstProb) {
		gap = 0
	}
	if s.rate != nil && gap > 0 {
		if r := s.rate(s.now); r > 0 {
			gap /= r
		}
	}
	s.now += gap
	large := cfg.LargeEvery > 0 && i%cfg.LargeEvery == 0
	var maps int
	if large {
		maps = int(math.Round(cfg.LargeMaps.Sample(s.sizeG)))
	} else {
		maps = int(math.Round(cfg.SmallMaps.Sample(s.sizeG)))
	}
	if maps < 1 {
		maps = 1
	}
	// Popularity-ranked file choice (Fig. 6): rank 1 = file 0, with
	// temporal correlation: a burst of analyses tends to hit the file
	// the previous job read (§III). Large jobs scan large datasets:
	// resample a few times for a file big enough to host the scan,
	// falling back to a random large file.
	file := s.zipf.Rank(s.popG) - 1
	if cfg.ShiftAtJob > 0 && i >= cfg.ShiftAtJob {
		file = (file + cfg.NumFiles/2) % cfg.NumFiles
	}
	if s.prevFile >= 0 && s.popG.Bool(cfg.FileRepeatProb) {
		file = s.prevFile
	}
	if large && len(s.largeFiles) > 0 {
		for try := 0; try < 8 && s.files[file].Blocks < maps; try++ {
			file = s.zipf.Rank(s.popG) - 1
		}
		if s.files[file].Blocks < maps {
			file = s.largeFiles[s.popG.Intn(len(s.largeFiles))]
		}
	}
	blocks := s.files[file].Blocks
	if maps > blocks {
		maps = blocks
	}
	// Most scans start at the head of the file (the fresh partition);
	// a minority sample an interior window. The shared prefix is what
	// creates block-level access correlation (§III).
	first := 0
	if blocks > maps && s.sizeG.Float64() < 0.2 {
		first = s.sizeG.Intn(blocks - maps + 1)
	}
	cpu := cfg.CPUPerTask.Sample(s.cpuG)
	if cpu <= 0 {
		cpu = 0.1
	}
	s.prevFile = file
	reduces := 1 + maps/20
	reduceTime := 2 + 0.05*float64(maps)
	output := int(cfg.OutputRatio.Sample(s.outG)*float64(maps) + 0.5)
	if output < 0 {
		output = 0
	}
	pool := ""
	if cfg.Pools > 1 {
		pool = fmt.Sprintf("user-%d", i%cfg.Pools)
	}
	return Job{
		ID:           i,
		Pool:         pool,
		Arrival:      s.now,
		File:         file,
		FirstBlock:   first,
		NumMaps:      maps,
		CPUPerTask:   cpu,
		NumReduces:   reduces,
		ReduceTime:   reduceTime,
		OutputBlocks: output,
	}
}

// WL1 builds the paper's first workload: a long sequence of small jobs
// (small job-size variance; favours FIFO).
func WL1(seed uint64) *Workload {
	return Generate(GenConfig{Name: "wl1", Seed: seed})
}

// WL2 builds the paper's second workload: small jobs following large jobs
// (high variance; favours the Fair scheduler, which stops small jobs from
// starving behind large ones).
func WL2(seed uint64) *Workload {
	return Generate(GenConfig{
		Name:       "wl2",
		Seed:       seed,
		LargeEvery: 10,
		// Slower arrivals than wl1: the periodic large jobs carry most of
		// the load.
		MeanInterarrival: 0.6,
	})
}

// Fig6Points samples the access-pattern CDF used in the experiments
// (Fig. 6): cumulative access probability by file rank.
func Fig6Points(nFiles int, zipfS float64) []stats.CDFPoint {
	if nFiles <= 0 {
		nFiles = 120
	}
	if zipfS == 0 {
		zipfS = 1.1
	}
	z := stats.NewZipf(nFiles, zipfS, 0)
	pts := make([]stats.CDFPoint, nFiles)
	for k := 1; k <= nFiles; k++ {
		pts[k-1] = stats.CDFPoint{X: float64(k), P: z.CDF(k)}
	}
	return pts
}

// ScaleArrivals returns a copy of the workload with every arrival time
// multiplied by f. SWIM preserves per-slot load when replaying a trace on
// a differently sized cluster by compressing or stretching arrivals; the
// EC2 experiments replay wl1 with f = CCT slots / EC2 slots.
func (w *Workload) ScaleArrivals(f float64) *Workload {
	out := *w
	out.Jobs = make([]Job, len(w.Jobs))
	copy(out.Jobs, w.Jobs)
	for i := range out.Jobs {
		out.Jobs[i].Arrival *= f
	}
	return &out
}

// AccessCounts tallies how many jobs access each file — the empirical
// popularity the trace induces, used by the popularity-index metric.
func (w *Workload) AccessCounts() []int {
	counts := make([]int, len(w.Files))
	for _, j := range w.Jobs {
		counts[j.File]++
	}
	return counts
}

// BlockAccessCounts tallies per-job accesses at block granularity: the
// number of map tasks that read each (file, block) pair.
func (w *Workload) BlockAccessCounts() [][]int {
	counts := make([][]int, len(w.Files))
	for i, f := range w.Files {
		counts[i] = make([]int, f.Blocks)
	}
	for _, j := range w.Jobs {
		for b := j.FirstBlock; b < j.FirstBlock+j.NumMaps; b++ {
			counts[j.File][b]++
		}
	}
	return counts
}
