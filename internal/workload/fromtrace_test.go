package workload

import (
	"testing"

	"dare/internal/trace"
)

func auditLog(seed uint64) *trace.Log {
	return trace.Generate(trace.GenConfig{Files: 100, Accesses: 5000, Seed: seed})
}

func TestFromAuditLogBasics(t *testing.T) {
	l := auditLog(1)
	w, err := FromAuditLog(l, ReplayConfig{Jobs: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 300 {
		t.Fatalf("jobs %d", len(w.Jobs))
	}
	if len(w.Files) != 100 {
		t.Fatalf("files %d", len(w.Files))
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Arrivals rebased to 0 and compressed into the span.
	if w.Jobs[0].Arrival != 0 {
		t.Fatalf("first arrival %v", w.Jobs[0].Arrival)
	}
	last := w.Jobs[len(w.Jobs)-1].Arrival
	if last <= 0 || last > 150+1e-9 {
		t.Fatalf("last arrival %v, want within the 150 s default span", last)
	}
}

func TestFromAuditLogPreservesPopularity(t *testing.T) {
	l := auditLog(2)
	w, err := FromAuditLog(l, ReplayConfig{Jobs: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The workload's file access counts must equal the log slice's.
	want := map[int]int{}
	for _, a := range l.Accesses[:len(w.Jobs)] {
		want[a.File]++
	}
	got := w.AccessCounts()
	for f, n := range want {
		if got[f] != n {
			t.Fatalf("file %d: workload has %d accesses, log slice has %d", f, got[f], n)
		}
	}
}

func TestFromAuditLogMapsCapped(t *testing.T) {
	l := auditLog(3)
	w, err := FromAuditLog(l, ReplayConfig{Jobs: 500, MaxMaps: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range w.Jobs {
		if j.NumMaps > 8 {
			t.Fatalf("job %d has %d maps, cap is 8", j.ID, j.NumMaps)
		}
		if j.NumMaps < 1 {
			t.Fatalf("job %d has no maps", j.ID)
		}
	}
}

func TestFromAuditLogOffsetSlicing(t *testing.T) {
	l := auditLog(4)
	a, err := FromAuditLog(l, ReplayConfig{Offset: 0, Jobs: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromAuditLog(l, ReplayConfig{Offset: 1000, Jobs: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Jobs[0].File == b.Jobs[0].File && a.Jobs[50].File == b.Jobs[50].File && a.Jobs[99].File == b.Jobs[99].File {
		t.Fatal("different offsets produced identical slices (suspicious)")
	}
}

func TestFromAuditLogErrors(t *testing.T) {
	l := auditLog(5)
	if _, err := FromAuditLog(l, ReplayConfig{Offset: -1}); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := FromAuditLog(l, ReplayConfig{Offset: 1 << 30}); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	l.Accesses[0].File = 9999 // corrupt
	if _, err := FromAuditLog(l, ReplayConfig{}); err == nil {
		t.Fatal("corrupt log accepted")
	}
}

func TestFromAuditLogClampsToLogEnd(t *testing.T) {
	l := auditLog(6)
	w, err := FromAuditLog(l, ReplayConfig{Offset: len(l.Accesses) - 50, Jobs: 500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 50 {
		t.Fatalf("jobs %d, want the 50 remaining accesses", len(w.Jobs))
	}
}
