package workload

import (
	"fmt"

	"dare/internal/stats"
	"dare/internal/trace"
)

// ReplayConfig controls how an audit log (internal/trace) is turned into a
// replayable MapReduce workload — the bridge between the paper's §III
// characterization and its §V evaluation: the same access process that
// produced Figs. 2–5 can be fed straight into the simulator.
type ReplayConfig struct {
	// Offset and Jobs select a contiguous slice of accesses (the paper
	// replays 500-job segments of its trace). Jobs <= 0 means 500.
	Offset, Jobs int
	// Span is the simulated duration the slice is compressed into, in
	// seconds (SWIM's time compression when replaying a week-long log on a
	// small cluster). <= 0 means 150 s, wl1's arrival span.
	Span float64
	// MaxMaps caps the per-job map count (whole-file scans of huge files
	// would otherwise dominate). <= 0 means 24.
	MaxMaps int
	// CPUPerTask is the per-map compute-time distribution; nil uses the
	// synthesizer's default.
	CPUPerTask stats.Dist
	// Seed drives the sampled per-job quantities.
	Seed uint64
}

func (c ReplayConfig) withDefaults() ReplayConfig {
	if c.Jobs <= 0 {
		c.Jobs = 500
	}
	if c.Span <= 0 {
		c.Span = 150
	}
	if c.MaxMaps <= 0 {
		c.MaxMaps = 24
	}
	if c.CPUPerTask == nil {
		c.CPUPerTask = stats.LogNormalFromMoments(1.0, 0.5)
	}
	return c
}

// FromAuditLog converts a slice of an access log into a workload: each
// access becomes one job that scans (a prefix of) the accessed file, with
// arrivals rebased and compressed into cfg.Span. The induced file
// popularity and temporal correlation are exactly the log's own —
// heavy-tailed, bursty, daily-periodic (§III).
func FromAuditLog(l *trace.Log, cfg ReplayConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("workload: invalid audit log: %w", err)
	}
	if cfg.Offset < 0 || cfg.Offset >= len(l.Accesses) {
		return nil, fmt.Errorf("workload: offset %d outside log (%d accesses)", cfg.Offset, len(l.Accesses))
	}
	end := cfg.Offset + cfg.Jobs
	if end > len(l.Accesses) {
		end = len(l.Accesses)
	}
	slice := l.Accesses[cfg.Offset:end]
	if len(slice) == 0 {
		return nil, fmt.Errorf("workload: empty access slice")
	}

	w := &Workload{Name: "audit-replay"}
	for i, f := range l.Files {
		w.Files = append(w.Files, FileSpec{Name: fmt.Sprintf("audit-%04d", i), Blocks: f.Blocks})
	}

	t0 := slice[0].Time
	dur := slice[len(slice)-1].Time - t0
	compress := 1.0
	if dur > 0 {
		compress = cfg.Span / dur
	}
	g := stats.NewRNG(cfg.Seed)
	for i, a := range slice {
		blocks := l.Files[a.File].Blocks
		maps := blocks
		if maps > cfg.MaxMaps {
			maps = cfg.MaxMaps
		}
		cpu := cfg.CPUPerTask.Sample(g)
		if cpu <= 0 {
			cpu = 0.1
		}
		w.Jobs = append(w.Jobs, Job{
			ID:         i,
			Arrival:    (a.Time - t0) * compress,
			File:       a.File,
			FirstBlock: 0,
			NumMaps:    maps,
			CPUPerTask: cpu,
			NumReduces: 1 + maps/20,
			ReduceTime: 2 + 0.05*float64(maps),
		})
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: audit replay produced invalid workload: %w", err)
	}
	return w, nil
}
