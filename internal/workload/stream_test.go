package workload

import (
	"math"
	"testing"
)

// The stream with no diurnal modulation must emit exactly the job sequence
// Generate produces for the same config — the property the resume path
// leans on.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := GenConfig{Name: "wl1", Seed: 7, NumJobs: 300}
	want := Generate(cfg)

	st := NewStream(StreamConfig{Gen: cfg})
	if len(st.Workload().Files) != len(want.Files) {
		t.Fatalf("file population: got %d files, want %d", len(st.Workload().Files), len(want.Files))
	}
	for i, f := range st.Workload().Files {
		if f != want.Files[i] {
			t.Fatalf("file %d: got %+v want %+v", i, f, want.Files[i])
		}
	}

	var got []Job
	until := 5.0
	for len(got) < len(want.Jobs) {
		got = append(got, st.Next(until)...)
		until += 5
	}
	for i, j := range want.Jobs {
		if got[i] != j {
			t.Fatalf("job %d: stream %+v, generate %+v", i, got[i], j)
		}
	}
	if st.Emitted() < len(want.Jobs) {
		t.Fatalf("emitted %d < %d", st.Emitted(), len(want.Jobs))
	}
}

// Two streams asked for different window boundaries still partition the
// same underlying sequence identically.
func TestStreamWindowInvariance(t *testing.T) {
	cfg := GenConfig{Name: "wl2", Seed: 11, LargeEvery: 10}
	a := NewStream(StreamConfig{Gen: cfg})
	b := NewStream(StreamConfig{Gen: cfg})

	var ja, jb []Job
	for u := 2.0; u <= 60; u += 2 {
		ja = append(ja, a.Next(u)...)
	}
	for u := 7.0; u <= 63; u += 7 {
		jb = append(jb, b.Next(u)...)
	}
	n := len(ja)
	if len(jb) < n {
		n = len(jb)
	}
	if n == 0 {
		t.Fatal("no jobs generated")
	}
	for i := 0; i < n; i++ {
		if ja[i] != jb[i] {
			t.Fatalf("job %d diverges across windowings: %+v vs %+v", i, ja[i], jb[i])
		}
	}
}

// Jobs come out in arrival order and each exactly once, even when a window
// boundary lands between a burst's co-arrivals.
func TestStreamOrderingAndUniqueness(t *testing.T) {
	st := NewStream(StreamConfig{Gen: GenConfig{Seed: 3}})
	prev := -1.0
	seen := map[int]bool{}
	for u := 1.0; u <= 40; u += 1 {
		for _, j := range st.Next(u) {
			if j.Arrival < prev {
				t.Fatalf("job %d arrives at %v after %v", j.ID, j.Arrival, prev)
			}
			if j.Arrival >= u {
				t.Fatalf("job %d at %v leaked past window %v", j.ID, j.Arrival, u)
			}
			if seen[j.ID] {
				t.Fatalf("job %d emitted twice", j.ID)
			}
			seen[j.ID] = true
			prev = j.Arrival
		}
	}
}

// Diurnal modulation shifts mass: the peak half-period sees more arrivals
// than the trough around t=0, and the sequence stays deterministic.
func TestStreamDiurnal(t *testing.T) {
	cfg := StreamConfig{
		Gen:              GenConfig{Seed: 5, MeanInterarrival: 0.5, BurstProb: 0.01},
		DiurnalAmplitude: 0.8,
		DiurnalPeriod:    400,
	}
	a := NewStream(cfg)
	b := NewStream(cfg)

	trough := len(a.Next(100)) // first quarter-period, rate near 1-A
	a.Next(150)                // rising edge, discarded
	peak := len(a.Next(250))   // window straddling the rate maximum
	if trough >= peak {
		t.Fatalf("diurnal modulation absent: trough %d >= peak %d arrivals", trough, peak)
	}

	// Determinism across instances.
	bt := len(b.Next(100))
	if bt != trough {
		t.Fatalf("diurnal stream nondeterministic: %d vs %d", bt, trough)
	}

	// Arrival times stay finite and increasing.
	last := 0.0
	for _, j := range a.Next(1000) {
		if math.IsNaN(j.Arrival) || math.IsInf(j.Arrival, 0) || j.Arrival < last {
			t.Fatalf("bad arrival %v", j.Arrival)
		}
		last = j.Arrival
	}
}
