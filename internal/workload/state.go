package workload

import "dare/internal/snapshot"

// EncodeJob serializes one Job verbatim. The tracker's state image uses
// it for jobs appended by the stream generator (batch jobs ride in the
// checkpoint spec instead), and the stream cursor for its look-ahead job.
func EncodeJob(e *snapshot.Enc, j *Job) {
	e.Int(j.ID)
	e.F64(j.Arrival)
	e.Int(j.File)
	e.Int(j.FirstBlock)
	e.Int(j.NumMaps)
	e.F64(j.CPUPerTask)
	e.Int(j.NumReduces)
	e.F64(j.ReduceTime)
	e.Int(j.OutputBlocks)
	e.Str(j.Pool)
}

// DecodeJob reads one Job written by EncodeJob.
func DecodeJob(d *snapshot.Dec) Job {
	return Job{
		ID:           d.Int(),
		Arrival:      d.F64(),
		File:         d.Int(),
		FirstBlock:   d.Int(),
		NumMaps:      d.Int(),
		CPUPerTask:   d.F64(),
		NumReduces:   d.Int(),
		ReduceTime:   d.F64(),
		OutputBlocks: d.Int(),
		Pool:         d.Str(),
	}
}

// EncodeState serializes the stream generator's complete position: the
// synthesizer clock and cursors, every per-dimension RNG stream, the
// emitted count, and the buffered look-ahead job. A stream rebuilt from
// the same config and restored from this image emits the identical
// future.
func (st *Stream) EncodeState(e *snapshot.Enc) error {
	s := st.s
	e.F64(s.now)
	e.Int(s.prevFile)
	e.Int(s.next)
	for _, g := range []interface {
		EncodeState(*snapshot.Enc) error
	}{s.popG, s.arrG, s.sizeG, s.cpuG, s.outG} {
		if err := g.EncodeState(e); err != nil {
			return err
		}
	}
	e.Int(st.emitted)
	e.Bool(st.pending != nil)
	if st.pending != nil {
		EncodeJob(e, st.pending)
	}
	return nil
}

// DecodeState restores the stream generator's position from an
// EncodeState image. The stream must have been rebuilt from the same
// StreamConfig (the checkpoint spec stores it).
func (st *Stream) DecodeState(d *snapshot.Dec) error {
	s := st.s
	s.now = d.F64()
	s.prevFile = d.Int()
	s.next = d.Int()
	for _, g := range []interface {
		DecodeState(*snapshot.Dec) error
	}{s.popG, s.arrG, s.sizeG, s.cpuG, s.outG} {
		if err := g.DecodeState(d); err != nil {
			return err
		}
	}
	st.emitted = d.Int()
	if d.Bool() {
		j := DecodeJob(d)
		st.pending = &j
	} else {
		st.pending = nil
	}
	return d.Err()
}
