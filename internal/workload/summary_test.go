package workload

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeWL1(t *testing.T) {
	w := WL1(1)
	s := w.Summarize()
	if s.Jobs != 500 || s.Files != 120 {
		t.Fatalf("counts %d/%d", s.Jobs, s.Files)
	}
	if s.TotalMaps != w.TotalMaps() {
		t.Fatal("map totals disagree")
	}
	if s.Span != w.Jobs[499].Arrival {
		t.Fatal("span wrong")
	}
	var jobs int
	var shareSum float64
	for _, c := range s.Classes {
		jobs += c.Jobs
		shareSum += c.ShareJobs
	}
	if jobs != 500 {
		t.Fatalf("classes cover %d jobs", jobs)
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Fatalf("class shares sum to %v", shareSum)
	}
	// wl1 is dominated by tiny/small jobs.
	if s.Classes[0].ShareJobs+s.Classes[1].ShareJobs < 0.7 {
		t.Fatalf("small-job share %.2f; wl1 should be a small-job stream",
			s.Classes[0].ShareJobs+s.Classes[1].ShareJobs)
	}
	// Heavy-tailed popularity: top-10 files dominate.
	if s.Top10Share < 0.5 {
		t.Fatalf("top-10 share %.2f; expected heavy head", s.Top10Share)
	}
	if s.TopFileShare <= 0 || s.TopFileShare > 1 {
		t.Fatalf("top file share %v", s.TopFileShare)
	}
}

func TestSummarizeWL2HasLargeClass(t *testing.T) {
	s := WL2(1).Summarize()
	var large SizeClass
	for _, c := range s.Classes {
		if strings.HasPrefix(c.Label, "large") {
			large = c
		}
	}
	if large.Jobs == 0 {
		t.Fatal("wl2 should contain large jobs")
	}
	// Large jobs are few but carry a disproportionate task share.
	if large.ShareTasks <= large.ShareJobs {
		t.Fatalf("large class: task share %.2f should exceed job share %.2f", large.ShareTasks, large.ShareJobs)
	}
}

func TestSummaryString(t *testing.T) {
	out := WL1(2).Summarize().String()
	for _, want := range []string{"wl1", "map tasks", "popularity", "size class", "tiny"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummarizeEmptyWorkload(t *testing.T) {
	w := &Workload{Name: "empty"}
	s := w.Summarize()
	if s.Jobs != 0 || s.TotalMaps != 0 || s.Span != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
}

func TestScaleArrivals(t *testing.T) {
	w := WL1(3)
	half := w.ScaleArrivals(0.5)
	for i := range w.Jobs {
		if math.Abs(half.Jobs[i].Arrival-w.Jobs[i].Arrival*0.5) > 1e-12 {
			t.Fatalf("job %d arrival not scaled", i)
		}
		if half.Jobs[i].NumMaps != w.Jobs[i].NumMaps {
			t.Fatal("scaling touched non-arrival fields")
		}
	}
	// Original untouched.
	if w.Jobs[10].Arrival == half.Jobs[10].Arrival && w.Jobs[10].Arrival != 0 {
		t.Fatal("original mutated")
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShiftAtJobRotatesPopularity(t *testing.T) {
	w := Generate(GenConfig{NumJobs: 2000, Seed: 4, ShiftAtJob: 1000, FileRepeatProb: -1})
	// Count accesses per file before and after the shift; the hot sets
	// must be (nearly) disjoint: rank-1 pre-shift maps to file 0, post-
	// shift to file NumFiles/2.
	pre := make(map[int]int)
	post := make(map[int]int)
	for i, j := range w.Jobs {
		if i < 1000 {
			pre[j.File]++
		} else {
			post[j.File]++
		}
	}
	topOf := func(m map[int]int) int {
		best, bestN := -1, -1
		for f, n := range m {
			if n > bestN || (n == bestN && f < best) {
				best, bestN = f, n
			}
		}
		return best
	}
	preTop, postTop := topOf(pre), topOf(post)
	if preTop == postTop {
		t.Fatalf("popularity did not shift: top file %d in both halves", preTop)
	}
	if postTop != (preTop+len(w.Files)/2)%len(w.Files) {
		t.Fatalf("shift rotated to %d, want %d", postTop, (preTop+len(w.Files)/2)%len(w.Files))
	}
}
