package workload

import (
	"encoding/json"

	"dare/internal/stats"
)

// genConfigAlias strips GenConfig's methods for the JSON codec below.
type genConfigAlias GenConfig

// genConfigWire shadows the four Dist-valued fields with their exact
// typed-union form. The streaming checkpoint spec (internal/runner)
// serializes GenConfig so a resumed service run regenerates the identical
// arrival sequence — distributions must round-trip exactly, never be
// re-fit.
type genConfigWire struct {
	genConfigAlias
	SmallMaps   stats.DistJSON `json:"SmallMaps"`
	LargeMaps   stats.DistJSON `json:"LargeMaps"`
	CPUPerTask  stats.DistJSON `json:"CPUPerTask"`
	OutputRatio stats.DistJSON `json:"OutputRatio"`
}

// MarshalJSON implements json.Marshaler.
func (c GenConfig) MarshalJSON() ([]byte, error) {
	return json.Marshal(genConfigWire{
		genConfigAlias: genConfigAlias(c),
		SmallMaps:      stats.DistJSON{Dist: c.SmallMaps},
		LargeMaps:      stats.DistJSON{Dist: c.LargeMaps},
		CPUPerTask:     stats.DistJSON{Dist: c.CPUPerTask},
		OutputRatio:    stats.DistJSON{Dist: c.OutputRatio},
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *GenConfig) UnmarshalJSON(b []byte) error {
	var w genConfigWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*c = GenConfig(w.genConfigAlias)
	c.SmallMaps = w.SmallMaps.Dist
	c.LargeMaps = w.LargeMaps.Dist
	c.CPUPerTask = w.CPUPerTask.Dist
	c.OutputRatio = w.OutputRatio.Dist
	return nil
}
