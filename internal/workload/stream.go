package workload

import (
	"math"

	"dare/internal/snapshot"
	"dare/internal/trace"
)

// StreamConfig parameterizes an open-ended job stream for service-mode
// runs (`dare-sim -stream`). The embedded GenConfig is the same sampler
// Generate uses; NumJobs is ignored — the stream never runs dry.
type StreamConfig struct {
	Gen GenConfig
	// DiurnalAmplitude in [0, 1) modulates the arrival rate sinusoidally
	// around its mean: rate(t) = 1 + A·sin(2π·t/Period − π/2), so load
	// bottoms at t = 0 ("midnight", stream start) and peaks half a period
	// in. This is the daily access periodicity of the paper's Fig. 4 —
	// internal/trace models the same cycle on the access side
	// (trace.GenConfig's day-level session placement). Zero disables
	// modulation: a stationary Poisson-with-bursts process, exactly
	// Generate's arrival law.
	DiurnalAmplitude float64
	// DiurnalPeriod is the modulation period in seconds; zero means
	// trace.Day (24 h). Shorter periods compress "days" so a short run
	// still sweeps load levels.
	DiurnalPeriod float64
}

// Stream synthesizes jobs on demand, window by window, from the same
// sampler Generate uses. It is fully deterministic: a stream rebuilt with
// the same config and asked for the same window boundaries reproduces the
// same jobs — which is how a resumed streaming run regenerates its
// arrivals during replay.
type Stream struct {
	s *jobSynth
	w *Workload
	// pending buffers the one job synthesized past the last window edge:
	// the generator can only discover a window is exhausted by sampling
	// one arrival beyond it, and that job must not be lost or resampled.
	pending *Job
	emitted int
}

// NewStream builds the file population (identical to Generate's for the
// same GenConfig) and a primed generator positioned before job 0.
func NewStream(cfg StreamConfig) *Stream {
	g := cfg.Gen.withDefaults()
	s, w := newSynth(g)
	if cfg.DiurnalAmplitude > 0 {
		amp := cfg.DiurnalAmplitude
		if amp >= 1 {
			amp = 0.95
		}
		period := cfg.DiurnalPeriod
		if period <= 0 {
			period = trace.Day
		}
		s.rate = func(t float64) float64 {
			return 1 + amp*math.Sin(2*math.Pi*t/period-math.Pi/2)
		}
	}
	return &Stream{s: s, w: w}
}

// Workload returns the trace skeleton: the file population to pre-load,
// with an empty job list (jobs arrive through Next).
func (st *Stream) Workload() *Workload { return st.w }

// Next returns every job with Arrival < until, in arrival order,
// advancing the generator. Successive calls with non-decreasing
// boundaries partition the job sequence: each job is returned exactly
// once. A call whose window contains no arrivals returns nil.
func (st *Stream) Next(until float64) []Job {
	var jobs []Job
	if st.pending != nil {
		if st.pending.Arrival >= until {
			return nil
		}
		jobs = append(jobs, *st.pending)
		st.pending = nil
	}
	for {
		j := st.s.nextJob()
		if j.Arrival >= until {
			st.pending = &j
			st.emitted += len(jobs)
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// Emitted reports how many jobs Next has returned so far (excluding the
// buffered look-ahead job).
func (st *Stream) Emitted() int { return st.emitted }

// AddState folds the generator's complete position into a checkpoint
// fingerprint: the clock, the correlation state, every per-job RNG
// stream's draw count, and the buffered look-ahead job. Two streams with
// equal state emit identical futures.
func (st *Stream) AddState(h *snapshot.Hash) {
	s := st.s
	h.F64(s.now)
	h.Int(s.prevFile)
	h.Int(s.next)
	h.U64(s.popG.Draws())
	h.U64(s.arrG.Draws())
	h.U64(s.sizeG.Draws())
	h.U64(s.cpuG.Draws())
	h.U64(s.outG.Draws())
	h.Int(st.emitted)
	h.Bool(st.pending != nil)
	if st.pending != nil {
		h.Int(st.pending.ID)
		h.F64(st.pending.Arrival)
	}
}
