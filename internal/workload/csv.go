package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the workload in a two-section CSV format compatible
// with SWIM-style replay tooling:
//
//	file,<name>,<blocks>
//	job,<id>,<arrival>,<file>,<firstBlock>,<numMaps>,<cpuPerTask>,<numReduces>,<reduceTime>,<outputBlocks>,<pool>
func (w *Workload) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"#workload", w.Name, strconv.FormatFloat(w.ZipfS, 'g', -1, 64)}); err != nil {
		return err
	}
	for _, f := range w.Files {
		if err := cw.Write([]string{"file", f.Name, strconv.Itoa(f.Blocks)}); err != nil {
			return err
		}
	}
	for _, j := range w.Jobs {
		rec := []string{
			"job",
			strconv.Itoa(j.ID),
			strconv.FormatFloat(j.Arrival, 'g', -1, 64),
			strconv.Itoa(j.File),
			strconv.Itoa(j.FirstBlock),
			strconv.Itoa(j.NumMaps),
			strconv.FormatFloat(j.CPUPerTask, 'g', -1, 64),
			strconv.Itoa(j.NumReduces),
			strconv.FormatFloat(j.ReduceTime, 'g', -1, 64),
			strconv.Itoa(j.OutputBlocks),
			j.Pool,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a workload written by WriteCSV and validates it.
func ReadCSV(in io.Reader) (*Workload, error) {
	cr := csv.NewReader(in)
	cr.FieldsPerRecord = -1
	w := &Workload{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "#workload":
			if len(rec) >= 2 {
				w.Name = rec[1]
			}
			if len(rec) >= 3 {
				if s, err := strconv.ParseFloat(rec[2], 64); err == nil {
					w.ZipfS = s
				}
			}
		case "file":
			if len(rec) != 3 {
				return nil, fmt.Errorf("workload: line %d: file record needs 3 fields", line)
			}
			blocks, err := strconv.Atoi(rec[2])
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad block count: %w", line, err)
			}
			w.Files = append(w.Files, FileSpec{Name: rec[1], Blocks: blocks})
		case "job":
			// 9- and 10-field rows (earlier formats) remain readable.
			if len(rec) < 9 || len(rec) > 11 {
				return nil, fmt.Errorf("workload: line %d: job record needs 9-11 fields, got %d", line, len(rec))
			}
			var j Job
			var err error
			if j.ID, err = strconv.Atoi(rec[1]); err != nil {
				return nil, fmt.Errorf("workload: line %d: id: %w", line, err)
			}
			if j.Arrival, err = strconv.ParseFloat(rec[2], 64); err != nil {
				return nil, fmt.Errorf("workload: line %d: arrival: %w", line, err)
			}
			if j.File, err = strconv.Atoi(rec[3]); err != nil {
				return nil, fmt.Errorf("workload: line %d: file: %w", line, err)
			}
			if j.FirstBlock, err = strconv.Atoi(rec[4]); err != nil {
				return nil, fmt.Errorf("workload: line %d: firstBlock: %w", line, err)
			}
			if j.NumMaps, err = strconv.Atoi(rec[5]); err != nil {
				return nil, fmt.Errorf("workload: line %d: numMaps: %w", line, err)
			}
			if j.CPUPerTask, err = strconv.ParseFloat(rec[6], 64); err != nil {
				return nil, fmt.Errorf("workload: line %d: cpuPerTask: %w", line, err)
			}
			if j.NumReduces, err = strconv.Atoi(rec[7]); err != nil {
				return nil, fmt.Errorf("workload: line %d: numReduces: %w", line, err)
			}
			if j.ReduceTime, err = strconv.ParseFloat(rec[8], 64); err != nil {
				return nil, fmt.Errorf("workload: line %d: reduceTime: %w", line, err)
			}
			if len(rec) >= 10 {
				if j.OutputBlocks, err = strconv.Atoi(rec[9]); err != nil {
					return nil, fmt.Errorf("workload: line %d: outputBlocks: %w", line, err)
				}
			}
			if len(rec) >= 11 {
				j.Pool = rec[10]
			}
			w.Jobs = append(w.Jobs, j)
		default:
			return nil, fmt.Errorf("workload: line %d: unknown record type %q", line, rec[0])
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
