// Package netprobe reproduces the paper's environment-characterization
// experiments (§II-B): the all-to-all ping campaign of Table I, the
// hdparm/iperf bandwidth measurements of Table II, and the traceroute
// hop-count census of Fig. 1.
//
// The "instruments" sample the calibrated stochastic models in
// internal/config instead of real hardware; the reproduced artifact is the
// published summary statistics and, crucially, the derived insight the
// rest of the paper builds on — the network/disk bandwidth ratio is lower
// in the virtualized cloud, so data locality pays off more there.
package netprobe

import (
	"fmt"
	"strings"

	"dare/internal/config"
	"dare/internal/stats"
	"dare/internal/topology"
)

// RTTCampaign runs the all-to-all ping experiment of Table I on a cluster
// built from p: every ordered pair of distinct slaves is pinged rounds
// times, and the RTT summary (in milliseconds, as the paper reports) is
// returned.
func RTTCampaign(p *config.Profile, rounds int, seed uint64) stats.Summary {
	if rounds < 1 {
		rounds = 1
	}
	g := stats.NewRNG(seed)
	topo := topology.FromProfile(p, g.Split(1))
	ping := g.Split(2)
	var s stats.Summary
	for r := 0; r < rounds; r++ {
		for _, rtt := range topology.AllPairsRTT(topo, ping) {
			s.Add(rtt * 1e3) // seconds → ms
		}
	}
	s.Finalize()
	return s
}

// BandwidthCampaign measures per-node disk read bandwidth (hdparm) and
// pairwise network bandwidth (iperf) in MB/s, returning both summaries.
// samplesPerNode controls the number of repeated probes per node.
func BandwidthCampaign(p *config.Profile, samplesPerNode int, seed uint64) (disk, net stats.Summary) {
	if samplesPerNode < 1 {
		samplesPerNode = 1
	}
	g := stats.NewRNG(seed)
	dg, ng := g.Split(1), g.Split(2)
	for n := 0; n < p.Slaves; n++ {
		for s := 0; s < samplesPerNode; s++ {
			disk.Add(p.DiskBW.Sample(dg))
			net.Add(p.NetBW.Sample(ng))
		}
	}
	disk.Finalize()
	net.Finalize()
	return disk, net
}

// HopCensus runs the traceroute experiment behind Fig. 1: the hop-count
// distribution over all unordered node pairs of a cluster built from p.
func HopCensus(p *config.Profile, seed uint64) *stats.IntCounter {
	g := stats.NewRNG(seed)
	topo := topology.FromProfile(p, g)
	return topology.HopHistogram(topo)
}

// BandwidthRatio reports mean network bandwidth over mean disk bandwidth —
// the §II-B insight metric. Higher means remote reads are relatively
// cheaper (dedicated clusters); lower means locality matters more
// (virtualized clouds).
func BandwidthRatio(p *config.Profile, samplesPerNode int, seed uint64) float64 {
	disk, net := BandwidthCampaign(p, samplesPerNode, seed)
	return net.Mean / disk.Mean
}

// TableI renders the Table I layout (all-to-all ping RTTs, ms) for the
// given profiles.
func TableI(rounds int, seed uint64, profiles ...*config.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %14s\n", "", "Min", "Mean", "Max", "Std. Deviation")
	for _, p := range profiles {
		s := RTTCampaign(p, rounds, seed)
		fmt.Fprintf(&b, "%-8s %8.2fms %8.2fms %8.2fms %12.2fms\n", p.Name, s.Min, s.Mean, s.Max, s.Std)
	}
	return b.String()
}

// TableII renders the Table II layout (disk and network bandwidth, MB/s)
// for the given profiles.
func TableII(samples int, seed uint64, profiles ...*config.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %8s %8s %8s %10s\n", "", "Min", "Mean", "Max", "Std. Dev.")
	for _, p := range profiles {
		disk, net := BandwidthCampaign(p, samples, seed)
		fmt.Fprintf(&b, "%-26s %8.1f %8.1f %8.1f %10.2f\n", p.Name+" disk bandwidth", disk.Min, disk.Mean, disk.Max, disk.Std)
		fmt.Fprintf(&b, "%-26s %8.1f %8.1f %8.1f %10.2f\n", p.Name+" network bandwidth", net.Min, net.Mean, net.Max, net.Std)
	}
	return b.String()
}

// Fig1 renders the hop-count distribution (proportion of node pairs per
// hop count) for a cluster built from p, the series plotted in Fig. 1.
func Fig1(p *config.Profile, seed uint64) string {
	c := HopCensus(p, seed)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %s\n", "Hop count", "Proportion of node pairs")
	for h := 0; h <= c.Max(); h++ {
		fmt.Fprintf(&b, "%-10d %.3f\n", h, c.Fraction(h))
	}
	return b.String()
}
