package netprobe

import (
	"math"
	"strings"
	"testing"

	"dare/internal/config"
)

func TestRTTCampaignCCT(t *testing.T) {
	s := RTTCampaign(config.CCT(), 5, 1)
	// 19 slaves => 19*18 ordered pairs * 5 rounds.
	if s.N != 19*18*5 {
		t.Fatalf("N=%d", s.N)
	}
	if math.Abs(s.Mean-0.18) > 0.05 {
		t.Fatalf("CCT RTT mean %.3f ms, Table I reports 0.18", s.Mean)
	}
	if s.Min < 0.01-1e-9 {
		t.Fatalf("CCT RTT min %.4f below measured floor", s.Min)
	}
}

func TestRTTCampaignEC2HeavierThanCCT(t *testing.T) {
	cct := RTTCampaign(config.CCT(), 5, 2)
	ec2 := RTTCampaign(config.EC2Small(), 5, 2)
	if ec2.Mean <= cct.Mean {
		t.Fatalf("EC2 mean RTT %.3f should exceed CCT %.3f", ec2.Mean, cct.Mean)
	}
	if ec2.Std <= cct.Std {
		t.Fatalf("EC2 RTT std %.3f should exceed CCT %.3f", ec2.Std, cct.Std)
	}
	if ec2.Max < 2 {
		t.Fatalf("EC2 max RTT %.3f ms lacks the heavy tail of Table I", ec2.Max)
	}
}

func TestRTTCampaignDeterministic(t *testing.T) {
	a := RTTCampaign(config.EC2Small(), 2, 7)
	b := RTTCampaign(config.EC2Small(), 2, 7)
	if a.Mean != b.Mean || a.Max != b.Max {
		t.Fatal("campaign not deterministic under equal seeds")
	}
}

func TestRTTCampaignMinimumRounds(t *testing.T) {
	s := RTTCampaign(config.CCT(), 0, 1) // clamps to 1 round
	if s.N != 19*18 {
		t.Fatalf("N=%d, want one round of all pairs", s.N)
	}
}

func TestBandwidthCampaign(t *testing.T) {
	disk, net := BandwidthCampaign(config.CCT(), 50, 3)
	if disk.N != 19*50 || net.N != 19*50 {
		t.Fatalf("sample counts %d/%d", disk.N, net.N)
	}
	if math.Abs(disk.Mean-157.8) > 3 {
		t.Fatalf("CCT disk mean %.1f, Table II reports 157.8", disk.Mean)
	}
	if math.Abs(net.Mean-117.7) > 2 {
		t.Fatalf("CCT net mean %.1f, Table II reports 117.7", net.Mean)
	}
}

func TestBandwidthRatioInsight(t *testing.T) {
	rc := BandwidthRatio(config.CCT(), 200, 4)
	re := BandwidthRatio(config.EC2(), 200, 4)
	if rc <= re {
		t.Fatalf("CCT net/disk ratio %.3f must exceed EC2 %.3f (§II-B)", rc, re)
	}
}

func TestHopCensusShapes(t *testing.T) {
	cct := HopCensus(config.CCT(), 5)
	if cct.Fraction(2) != 1 {
		t.Fatalf("CCT should be all 2-hop pairs, got %v", cct.Fraction(2))
	}
	ec2 := HopCensus(config.EC2Small(), 5)
	if ec2.Fraction(4) < 0.3 {
		t.Fatalf("EC2-20 4-hop fraction %v; Fig. 1 shows the mode at 4", ec2.Fraction(4))
	}
	total := ec2.Fraction(2) + ec2.Fraction(4) + ec2.Fraction(6)
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("hop fractions sum to %v", total)
	}
}

func TestTableIRendering(t *testing.T) {
	out := TableI(2, 1, config.CCT(), config.EC2Small())
	if !strings.Contains(out, "CCT") || !strings.Contains(out, "EC2-20") {
		t.Fatalf("missing profiles in:\n%s", out)
	}
	if !strings.Contains(out, "Mean") {
		t.Fatalf("missing header in:\n%s", out)
	}
}

func TestTableIIRendering(t *testing.T) {
	out := TableII(20, 1, config.CCT(), config.EC2())
	for _, want := range []string{"CCT disk bandwidth", "CCT network bandwidth", "EC2 disk bandwidth", "EC2 network bandwidth"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig1Rendering(t *testing.T) {
	out := Fig1(config.EC2Small(), 1)
	if !strings.Contains(out, "Hop count") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("too few rows:\n%s", out)
	}
}
