package trace

import (
	"bytes"
	"testing"
)

func TestLogCSVRoundTrip(t *testing.T) {
	l := Generate(GenConfig{Files: 50, Accesses: 2000, Seed: 1})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Horizon != l.Horizon || len(got.Files) != len(l.Files) || len(got.Accesses) != len(l.Accesses) {
		t.Fatal("round trip lost structure")
	}
	for i := range l.Files {
		if got.Files[i] != l.Files[i] {
			t.Fatalf("file %d differs", i)
		}
	}
	for i := range l.Accesses {
		if got.Accesses[i] != l.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestLogCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus,1\n",
		"file,1\n",
		"file,x,3\n",
		"file,0,x\n",
		"access,1\n",
		"access,x,0\n",
		"access,0,x\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLogCSVValidates(t *testing.T) {
	// Access referencing a missing file must fail validation.
	in := "#log,100\nfile,0,2\naccess,5,7\n"
	if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
		t.Fatal("dangling access accepted")
	}
}
