// Package trace reproduces the paper's characterization of data access
// patterns in production MapReduce clusters (§III, Figs. 2–5). The paper
// analyzed one week of HDFS audit logs from a 4000-node Yahoo! cluster;
// that dataset is not publicly redistributable, so this package pairs
//
//   - a synthetic audit-log generator calibrated to the published
//     findings: heavy-tailed file popularity (Fig. 2), ~80% of accesses
//     within the first day of a file's life with the median at ~9h45m
//     (Fig. 3), daily periodicity (Fig. 4's spike at the 121-hour window),
//     and sub-hour in-day bursts (Fig. 5); with
//
//   - the analyses that produce each figure from any access log, so they
//     can be pointed at real audit data when available.
package trace

import (
	"fmt"
	"math"
	"sort"

	"dare/internal/stats"
)

// Hour and Day are log time units in seconds.
const (
	Hour = 3600.0
	Day  = 24 * Hour
	Week = 7 * Day
)

// Access is one read in the audit log.
type Access struct {
	// Time is seconds since the start of the observation window.
	Time float64
	// File indexes Log.Files.
	File int
}

// FileInfo is the per-file metadata the analyses need.
type FileInfo struct {
	// Created is the file creation time in seconds (may be negative for
	// files that predate the observation window).
	Created float64
	// Blocks is the file size in 128 MB blocks (Fig. 2's block-weighted
	// popularity).
	Blocks int
}

// Log is an access trace over a file population.
type Log struct {
	Files    []FileInfo
	Accesses []Access
	// Horizon is the observation window length in seconds.
	Horizon float64
}

// Validate checks referential and temporal integrity.
func (l *Log) Validate() error {
	for i, a := range l.Accesses {
		if a.File < 0 || a.File >= len(l.Files) {
			return fmt.Errorf("trace: access %d references file %d of %d", i, a.File, len(l.Files))
		}
		if a.Time < 0 || a.Time > l.Horizon {
			return fmt.Errorf("trace: access %d at %v outside horizon %v", i, a.Time, l.Horizon)
		}
		if a.Time < l.Files[a.File].Created {
			return fmt.Errorf("trace: access %d precedes creation of file %d", i, a.File)
		}
	}
	for i, f := range l.Files {
		if f.Blocks < 1 {
			return fmt.Errorf("trace: file %d has %d blocks", i, f.Blocks)
		}
	}
	return nil
}

// GenConfig parameterizes the synthetic Yahoo!-shaped audit log.
type GenConfig struct {
	// Files is the population size.
	Files int
	// Accesses is the total number of access events.
	Accesses int
	// ZipfS is the popularity exponent (Fig. 2's slope).
	ZipfS float64
	// FirstDayFraction is the fraction of accesses within the first day
	// of life (paper: ~0.8, Fig. 3).
	FirstDayFraction float64
	// RecurrentFraction is the share of files that are *daily-recurrent*:
	// read every day for the rest of the week (dashboards, ETL inputs).
	// These are the files behind Fig. 4's spike at the ~121-hour window —
	// covering 80% of their accesses requires spanning most of the week.
	// 0 means the default 0.15; negative disables the class.
	RecurrentFraction float64
	// IncludeSystemFiles adds the job-lifecycle files (job.jar, job.xml,
	// job.split) the paper deliberately *excludes* from its analysis
	// (§III): each is created, read within seconds-to-a-minute, and never
	// touched again. Enabling them reproduces the Yahoo! M45 result the
	// paper contrasts itself with — Fan et al. saw 50% of accesses at
	// one-minute age because such files dominated their log.
	IncludeSystemFiles bool
	// SystemAccessFraction is the share of all accesses that hit system
	// files when IncludeSystemFiles is set (0 = 0.5, roughly M45-like).
	SystemAccessFraction float64
	// Seed drives all sampling.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Files == 0 {
		c.Files = 1000
	}
	if c.Accesses == 0 {
		c.Accesses = 200000
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.FirstDayFraction == 0 {
		c.FirstDayFraction = 0.8
	}
	if c.IncludeSystemFiles && c.SystemAccessFraction == 0 {
		c.SystemAccessFraction = 0.5
	}
	if c.RecurrentFraction == 0 {
		c.RecurrentFraction = 0.15
	}
	if c.RecurrentFraction < 0 {
		c.RecurrentFraction = 0
	}
	return c
}

// Generate synthesizes one week of audit log. Each file is created at a
// uniformly random instant of the week (files created late receive fewer
// in-window accesses, as in reality); each access lands a geometric number
// of days after creation — calibrated so FirstDayFraction of accesses fall
// within the first day (Fig. 3) — and within a day, a file's accesses
// cluster around its preferred hour (the working session that consumes
// it), producing the 1-hour bursts of Fig. 5 and the daily periodicity of
// Fig. 4.
func Generate(cfg GenConfig) *Log {
	cfg = cfg.withDefaults()
	g := stats.NewRNG(cfg.Seed)
	fileG, popG, ageG, burstG := g.Split(1), g.Split(2), g.Split(3), g.Split(4)

	// Accesses are placed as (day offset k from the creation day, time of
	// day near the file's session hour). k is geometric: P(k) = x·r^k
	// with x = 1-r. Day-0 draws whose session hour precedes the creation
	// instant are redrawn (~half of them), and k=1 accesses still land
	// within one day of creation when the session hour is earlier in the
	// day than the creation instant (again ~half). Solving
	// P(age < 1 day) = [0.5x + 0.5rx] / (1 - 0.5x) = f for x gives
	// x² - (2+f)x + 2f = 0, whose admissible root calibrates r exactly to
	// the target first-day fraction of Fig. 3.
	// Recurrent files spread their accesses across all remaining days, so
	// only ~1/4 of their accesses land on day 0 (creation is uniform over
	// the week). The bursty majority is recalibrated so the *blended*
	// first-day fraction still hits the target.
	f := cfg.FirstDayFraction
	if cfg.RecurrentFraction > 0 && cfg.RecurrentFraction < 0.8 {
		const recurrentFirstDay = 0.25
		f = (f - cfg.RecurrentFraction*recurrentFirstDay) / (1 - cfg.RecurrentFraction)
		if f > 0.97 {
			f = 0.97
		}
	}
	x := ((2 + f) - math.Sqrt((2+f)*(2+f)-8*f)) / 2
	r := 1 - x
	if r < 0.02 {
		r = 0.02
	}

	l := &Log{Horizon: Week}
	sizeDist := stats.BoundedPareto{L: 1, H: 64, Alpha: 1.2}
	prefHour := make([]float64, cfg.Files)
	recurrent := make([]bool, cfg.Files)
	recEvery := 0
	if cfg.RecurrentFraction > 0 {
		recEvery = int(1 / cfg.RecurrentFraction)
	}
	for i := 0; i < cfg.Files; i++ {
		l.Files = append(l.Files, FileInfo{
			Created: fileG.Float64() * (Week - Day), // leave room for accesses
			Blocks:  int(math.Round(sizeDist.Sample(fileG))),
		})
		if l.Files[i].Blocks < 1 {
			l.Files[i].Blocks = 1
		}
		prefHour[i] = fileG.Float64() * 24
		// Deterministic striping keeps the class present at every
		// popularity rank.
		if recEvery > 0 && i%recEvery == recEvery/2 {
			recurrent[i] = true
		}
	}

	zipf := stats.NewZipf(cfg.Files, cfg.ZipfS, 0)
	for n := 0; n < cfg.Accesses; n++ {
		f := zipf.Rank(popG) - 1
		created := l.Files[f].Created
		creationDay := math.Floor(created/Day) * Day
		var t float64
		placed := false
		for try := 0; try < 32 && !placed; try++ {
			var k int
			if recurrent[f] {
				// Daily-recurrent: any remaining day of the week with equal
				// probability (Fig. 4's 121-hour spike population).
				daysLeft := int((Week-created)/Day) + 1
				k = ageG.Intn(daysLeft)
			} else {
				// Geometric day offset: most accesses on the creation day,
				// decaying daily (Figs. 3 and 4).
				for ageG.Float64() < r {
					k++
				}
			}
			// Session burst: the file's preferred hour ± 30 minutes
			// (Fig. 5's one-hour in-day windows).
			tod := prefHour[f]*Hour + (burstG.Float64()-0.5)*Hour
			if tod < 0 {
				tod += Day
			}
			if tod >= Day {
				tod -= Day
			}
			t = creationDay + float64(k)*Day + tod
			placed = t >= created && t <= Week
		}
		if !placed {
			// Rare fallback for files created at the very edge of the
			// window: uniform over the remaining horizon.
			t = created + ageG.Float64()*(Week-created)
		}
		l.Accesses = append(l.Accesses, Access{Time: t, File: f})
	}
	if cfg.IncludeSystemFiles {
		addSystemFiles(l, cfg, g.Split(5))
	}
	sort.Slice(l.Accesses, func(i, j int) bool { return l.Accesses[i].Time < l.Accesses[j].Time })
	return l
}

// addSystemFiles appends job-lifecycle files: each "job submission"
// creates a fresh one-block file that is read a handful of times within
// the first minute of its life and then abandoned (the real ones are
// deleted; for the age analysis only creation and access times matter).
func addSystemFiles(l *Log, cfg GenConfig, g *stats.RNG) {
	target := int(cfg.SystemAccessFraction / (1 - cfg.SystemAccessFraction) * float64(len(l.Accesses)))
	const readsPerJob = 4 // jar + xml + split fetches by the first tasks
	jobs := target / readsPerJob
	for j := 0; j < jobs; j++ {
		created := g.Float64() * (Week - 2*60)
		l.Files = append(l.Files, FileInfo{Created: created, Blocks: 1})
		id := len(l.Files) - 1
		for r := 0; r < readsPerJob; r++ {
			// Ages concentrate below one minute (task startup).
			age := g.Float64() * 60
			l.Accesses = append(l.Accesses, Access{Time: created + age, File: id})
		}
	}
}

// normalQuantile is the inverse standard normal CDF (Acklam's rational
// approximation; |relative error| < 1.15e-9 — far below what the
// calibration needs).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("trace: quantile probability must be in (0,1), got %v", p))
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
