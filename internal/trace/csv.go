package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes the log as
//
//	#log,<horizon>
//	file,<created>,<blocks>
//	access,<time>,<fileIndex>
//
// so real HDFS audit data can be converted into the same shape and fed to
// the §III analyses.
func (l *Log) WriteCSV(out io.Writer) error {
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"#log", strconv.FormatFloat(l.Horizon, 'g', -1, 64)}); err != nil {
		return err
	}
	for _, f := range l.Files {
		rec := []string{"file", strconv.FormatFloat(f.Created, 'g', -1, 64), strconv.Itoa(f.Blocks)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for _, a := range l.Accesses {
		rec := []string{"access", strconv.FormatFloat(a.Time, 'g', -1, 64), strconv.Itoa(a.File)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a log written by WriteCSV and validates it.
func ReadCSV(in io.Reader) (*Log, error) {
	cr := csv.NewReader(in)
	cr.FieldsPerRecord = -1
	l := &Log{}
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "#log":
			if len(rec) >= 2 {
				if h, err := strconv.ParseFloat(rec[1], 64); err == nil {
					l.Horizon = h
				}
			}
		case "file":
			if len(rec) != 3 {
				return nil, fmt.Errorf("trace: line %d: file record needs 3 fields", line)
			}
			created, err := strconv.ParseFloat(rec[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: created: %w", line, err)
			}
			blocks, err := strconv.Atoi(rec[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: blocks: %w", line, err)
			}
			l.Files = append(l.Files, FileInfo{Created: created, Blocks: blocks})
		case "access":
			if len(rec) != 3 {
				return nil, fmt.Errorf("trace: line %d: access record needs 3 fields", line)
			}
			tm, err := strconv.ParseFloat(rec[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: time: %w", line, err)
			}
			file, err := strconv.Atoi(rec[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: file index: %w", line, err)
			}
			l.Accesses = append(l.Accesses, Access{Time: tm, File: file})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record type %q", line, rec[0])
		}
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
