package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func smallLog(seed uint64) *Log {
	return Generate(GenConfig{Files: 200, Accesses: 20000, Seed: seed})
}

func TestGenerateValid(t *testing.T) {
	l := smallLog(1)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.Accesses) != 20000 || len(l.Files) != 200 {
		t.Fatalf("sizes %d/%d", len(l.Accesses), len(l.Files))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := smallLog(2), smallLog(2)
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateValidProperty(t *testing.T) {
	f := func(seed uint64) bool {
		l := Generate(GenConfig{Files: 50, Accesses: 2000, Seed: seed})
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessesSorted(t *testing.T) {
	l := smallLog(3)
	for i := 1; i < len(l.Accesses); i++ {
		if l.Accesses[i].Time < l.Accesses[i-1].Time {
			t.Fatal("accesses not time-sorted")
		}
	}
}

func TestFig2PopularityHeavyTailed(t *testing.T) {
	l := smallLog(4)
	ranks := PopularityRanks(l)
	if len(ranks) == 0 {
		t.Fatal("no ranks")
	}
	if ranks[0].Rank != 1 {
		t.Fatal("ranking must start at 1")
	}
	for i := 1; i < len(ranks); i++ {
		if ranks[i].Count > ranks[i-1].Count {
			t.Fatal("ranks not sorted by popularity")
		}
	}
	// Heavy tail: the top file must dominate the median file by an order
	// of magnitude (Fig. 2 spans several decades).
	mid := ranks[len(ranks)/2]
	if float64(ranks[0].Count) < 10*float64(mid.Count) {
		t.Fatalf("top %d vs median %d: not heavy-tailed", ranks[0].Count, mid.Count)
	}
	// Block weighting preserves positivity and scales by blocks.
	for _, r := range ranks {
		if r.Weighted < r.Count {
			t.Fatal("weighted count must be >= raw count (blocks >= 1)")
		}
	}
}

func TestFig3AgeCDFCalibration(t *testing.T) {
	l := Generate(GenConfig{Files: 500, Accesses: 100000, Seed: 5})
	cdf := AgeCDF(l)
	// Paper: ~80% of accesses within the first day of life.
	if day := cdf.At(Day); math.Abs(day-0.8) > 0.1 {
		t.Fatalf("P(age<1day) = %.3f, want ~0.8 (Fig. 3)", day)
	}
	// Paper: 50% of accesses by ~9h45m.
	med := cdf.Quantile(0.5)
	if med < 5*Hour || med > 16*Hour {
		t.Fatalf("median age %.1f h, want ~9.75 h", med/Hour)
	}
	// CDF must be monotone (sanity).
	if cdf.At(Hour) > cdf.At(Day) {
		t.Fatal("CDF not monotone")
	}
}

func TestFig4DailyPeriodicity(t *testing.T) {
	l := Generate(GenConfig{Files: 300, Accesses: 60000, Seed: 6})
	res, err := BurstWindows(l, DefaultWindowConfig(l))
	if err != nil {
		t.Fatal(err)
	}
	if res.Files == 0 {
		t.Fatal("no big files analyzed")
	}
	var total float64
	for _, f := range res.Sizes {
		total += f
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("window fractions sum to %v", total)
	}
	// Fig. 4's structure: the bursty majority fits within 1-2 hours...
	if res.Sizes[0]+res.Sizes[1] < 0.5 {
		t.Fatalf("1-2h window mass %.3f; bursty majority missing", res.Sizes[0]+res.Sizes[1])
	}
	// ...a multi-day population exists...
	var beyondDay float64
	for k := 24; k < len(res.Sizes); k++ {
		beyondDay += res.Sizes[k]
	}
	if beyondDay < 0.08 {
		t.Fatalf("only %.3f of files need >24h windows; daily periodicity missing", beyondDay)
	}
	// ...and the daily-recurrent class produces the paper's spike near the
	// 121-hour window (files read every day of the week).
	var spike float64
	for k := 96; k < len(res.Sizes) && k < 150; k++ {
		spike += res.Sizes[k]
	}
	if spike < 0.02 {
		t.Fatalf("no mass near the 121-hour window (%.3f); Fig. 4's spike missing", spike)
	}
}

func TestFig5InDayBursts(t *testing.T) {
	l := Generate(GenConfig{Files: 300, Accesses: 60000, Seed: 7})
	res, err := BurstWindows(l, Day2WindowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Files == 0 {
		t.Fatal("no big files in day 2")
	}
	// Paper Fig. 5: within a day, most significant accesses lie within
	// one hour: the 1-2 slot windows must dominate.
	small := res.Sizes[0]
	if len(res.Sizes) > 1 {
		small += res.Sizes[1]
	}
	if small < 0.5 {
		t.Fatalf("only %.3f of files burst within <=2 hours in-day; Fig. 5 shows ~1-hour bursts", small)
	}
}

func TestBurstWindowsConfigValidation(t *testing.T) {
	l := smallLog(8)
	if _, err := BurstWindows(l, WindowConfig{SlotSize: 0, From: 0, To: 1}); err == nil {
		t.Fatal("zero slot size accepted")
	}
	if _, err := BurstWindows(l, WindowConfig{SlotSize: 1, From: 5, To: 5}); err == nil {
		t.Fatal("empty interval accepted")
	}
}

func TestMinCoveringWindow(t *testing.T) {
	cases := []struct {
		hist     []int64
		coverage float64
		want     int
	}{
		{[]int64{10, 0, 0, 0}, 0.8, 1},
		{[]int64{5, 5, 0, 0}, 0.8, 2},
		{[]int64{4, 0, 0, 4, 0, 2}, 0.8, 4}, // needs 8 of 10: slots 0-3
		{[]int64{1, 1, 1, 1, 1}, 1.0, 5},    // full span
		{[]int64{0, 0, 9, 1}, 0.9, 1},       // 9 >= ceil(0.9*10)
		{[]int64{2, 2, 2, 2, 2}, 0.5, 3},    // 6 >= 5 needs 3 slots
		{[]int64{0, 10}, 0.0, 1},            // zero coverage
	}
	for i, c := range cases {
		var total int64
		for _, v := range c.hist {
			total += v
		}
		if got := minCoveringWindow(c.hist, total, c.coverage); got != c.want {
			t.Errorf("case %d: got %d, want %d", i, got, c.want)
		}
	}
}

func TestMinCoveringWindowProperty(t *testing.T) {
	// The returned window really does cover the requested fraction, and no
	// shorter window does.
	f := func(raw []uint8, covRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		hist := make([]int64, len(raw))
		var total int64
		for i, v := range raw {
			hist[i] = int64(v % 20)
			total += hist[i]
		}
		if total == 0 {
			return true
		}
		coverage := 0.5 + float64(covRaw%50)/100 // 0.5..0.99
		w := minCoveringWindow(hist, total, coverage)
		need := int64(math.Ceil(coverage * float64(total)))
		// Verify some window of size w covers, and no window of size w-1
		// does.
		covers := func(size int) bool {
			var sum int64
			for i := 0; i < len(hist); i++ {
				sum += hist[i]
				if i >= size {
					sum -= hist[i-size]
				}
				if i >= size-1 && sum >= need {
					return true
				}
			}
			return false
		}
		if !covers(w) {
			return false
		}
		if w > 1 && covers(w-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	l := smallLog(9)
	l.Accesses[0].File = 9999
	if err := l.Validate(); err == nil {
		t.Fatal("bad file reference accepted")
	}
	l = smallLog(9)
	l.Accesses[0].Time = -5
	if err := l.Validate(); err == nil {
		t.Fatal("negative time accepted")
	}
	l = smallLog(9)
	l.Files[0].Blocks = 0
	if err := l.Validate(); err == nil {
		t.Fatal("zero blocks accepted")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0}, {0.8, 0.8416}, {0.975, 1.9600}, {0.025, -1.9600}, {0.01, -2.3263},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.z) > 1e-3 {
			t.Errorf("quantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
}

func TestNormalQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	normalQuantile(0)
}

func TestRenderers(t *testing.T) {
	l := smallLog(10)
	if out := RenderRanks(PopularityRanks(l)); len(out) == 0 {
		t.Fatal("empty rank rendering")
	}
	if out := RenderAgeCDF(AgeCDF(l)); len(out) == 0 {
		t.Fatal("empty CDF rendering")
	}
	res, err := BurstWindows(l, DefaultWindowConfig(l))
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderWindows(res); len(out) == 0 {
		t.Fatal("empty window rendering")
	}
}

func TestHourlyProfileConcentration(t *testing.T) {
	l := smallLog(11)
	prof := HourlyProfile(l)
	var sum float64
	for _, p := range prof {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("hourly shares sum to %v", sum)
	}
	// With per-file session hours spread uniformly, no single hour should
	// hold the majority, but every hour should see some traffic.
	for h, p := range prof {
		if p > 0.5 {
			t.Fatalf("hour %d holds %.2f of accesses", h, p)
		}
	}
}

func TestHourlyProfileEmpty(t *testing.T) {
	prof := HourlyProfile(&Log{Horizon: Week})
	for _, p := range prof {
		if p != 0 {
			t.Fatal("empty log should produce zero profile")
		}
	}
}

func TestRenderHourlyProfile(t *testing.T) {
	out := RenderHourlyProfile(HourlyProfile(smallLog(12)))
	if len(out) == 0 || !strings.Contains(out, "00:00") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

// TestSystemFilesReproduceM45Shape locks in the §III discussion: with the
// job-lifecycle system files included, the age-at-access CDF looks like
// Fan et al.'s M45 measurement (~50% of accesses within the first minute);
// excluded, it looks like the paper's Yahoo! curve (median ~10 h).
func TestSystemFilesReproduceM45Shape(t *testing.T) {
	without := Generate(GenConfig{Files: 300, Accesses: 30000, Seed: 13})
	with := Generate(GenConfig{Files: 300, Accesses: 30000, Seed: 13, IncludeSystemFiles: true})

	if err := with.Validate(); err != nil {
		t.Fatal(err)
	}
	cdfWithout := AgeCDF(without)
	cdfWith := AgeCDF(with)

	if m := cdfWithout.At(60); m > 0.05 {
		t.Fatalf("without system files, P(age<1min) = %.3f; should be negligible", m)
	}
	m := cdfWith.At(60)
	if m < 0.35 || m > 0.65 {
		t.Fatalf("with system files, P(age<1min) = %.3f; M45 reports ~0.5", m)
	}
	// The long-lived data files' behaviour underneath is unchanged.
	if day := cdfWithout.At(Day); day < 0.7 {
		t.Fatalf("data-file first-day fraction %.3f degraded", day)
	}
}

func TestSystemFilesFractionKnob(t *testing.T) {
	l := Generate(GenConfig{Files: 100, Accesses: 10000, Seed: 14, IncludeSystemFiles: true, SystemAccessFraction: 0.25})
	sys := 0
	for _, a := range l.Accesses {
		if l.Files[a.File].Blocks == 1 && a.Time-l.Files[a.File].Created < 61 {
			sys++
		}
	}
	frac := float64(sys) / float64(len(l.Accesses))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("system-access fraction %.3f, want ~0.25", frac)
	}
}
