package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dare/internal/stats"
)

// RankPoint is one point of the Fig. 2 rank/popularity curves.
type RankPoint struct {
	Rank int
	// Count is the number of accesses of the rank-th most popular file.
	Count int64
	// Weighted is the access count multiplied by the file's block count
	// (Fig. 2's second panel).
	Weighted int64
}

// PopularityRanks computes Fig. 2: files ranked by access count, with and
// without block weighting. Files with zero accesses are omitted (they do
// not appear on a log-log rank plot).
func PopularityRanks(l *Log) []RankPoint {
	counts := make([]int64, len(l.Files))
	for _, a := range l.Accesses {
		counts[a.File]++
	}
	type fc struct {
		count  int64
		blocks int
	}
	var fcs []fc
	for i, c := range counts {
		if c > 0 {
			fcs = append(fcs, fc{count: c, blocks: l.Files[i].Blocks})
		}
	}
	sort.Slice(fcs, func(i, j int) bool { return fcs[i].count > fcs[j].count })
	out := make([]RankPoint, len(fcs))
	for i, f := range fcs {
		out[i] = RankPoint{Rank: i + 1, Count: f.count, Weighted: f.count * int64(f.blocks)}
	}
	return out
}

// AgeCDF computes Fig. 3: the empirical CDF of file age at access time.
func AgeCDF(l *Log) *stats.ECDF {
	ages := make([]float64, 0, len(l.Accesses))
	for _, a := range l.Accesses {
		age := a.Time - l.Files[a.File].Created
		if age < 0 {
			age = 0
		}
		ages = append(ages, age)
	}
	return stats.NewECDF(ages)
}

// WindowConfig parameterizes the burst-window analysis of Figs. 4–5.
type WindowConfig struct {
	// SlotSize is the slot length in seconds (paper: one hour).
	SlotSize float64
	// Coverage is the access fraction a window must contain (paper: 0.8).
	Coverage float64
	// From and To bound the analyzed interval (Fig. 4: the whole week;
	// Fig. 5: day 2 only).
	From, To float64
	// BigFileCoverage selects the "big files": the most popular files
	// that together account for this fraction of accesses (paper: 0.8);
	// the long tail of one-access files is excluded, as in the paper.
	BigFileCoverage float64
}

// DefaultWindowConfig matches Fig. 4: 1-hour slots over the whole week,
// 80% coverage, big files only.
func DefaultWindowConfig(l *Log) WindowConfig {
	return WindowConfig{SlotSize: Hour, Coverage: 0.8, From: 0, To: l.Horizon, BigFileCoverage: 0.8}
}

// Day2WindowConfig matches Fig. 5: day 2 of the data set.
func Day2WindowConfig() WindowConfig {
	return WindowConfig{SlotSize: Hour, Coverage: 0.8, From: Day, To: 2 * Day, BigFileCoverage: 0.8}
}

// WindowResult is the Fig. 4/5 distribution: for each window size (in
// slots), the fraction of files whose smallest covering window has exactly
// that size, plain and access-weighted.
type WindowResult struct {
	// Sizes[k] is the fraction of big files whose smallest window
	// containing Coverage of their accesses spans k+1 slots.
	Sizes []float64
	// WeightedSizes is the same distribution with each file weighted by
	// its access count (Figs. 4b/5b).
	WeightedSizes []float64
	// Files is the number of big files analyzed.
	Files int
}

// BurstWindows computes the smallest consecutive-slot window containing at
// least cfg.Coverage of each big file's accesses (Figs. 4 and 5).
func BurstWindows(l *Log, cfg WindowConfig) (WindowResult, error) {
	if cfg.SlotSize <= 0 || cfg.To <= cfg.From {
		return WindowResult{}, fmt.Errorf("trace: invalid window config %+v", cfg)
	}
	slots := int(math.Ceil((cfg.To - cfg.From) / cfg.SlotSize))

	// Per-file slot histograms over the interval.
	perFile := make(map[int][]int64)
	totals := make(map[int]int64)
	for _, a := range l.Accesses {
		if a.Time < cfg.From || a.Time >= cfg.To {
			continue
		}
		s := int((a.Time - cfg.From) / cfg.SlotSize)
		if s >= slots {
			s = slots - 1
		}
		h := perFile[a.File]
		if h == nil {
			h = make([]int64, slots)
			perFile[a.File] = h
		}
		h[s]++
		totals[a.File]++
	}

	// Select the big files: most popular first until BigFileCoverage of
	// in-interval accesses is covered.
	type ft struct {
		file  int
		total int64
	}
	var fts []ft
	var grand int64
	for f, t := range totals {
		fts = append(fts, ft{f, t})
		grand += t
	}
	sort.Slice(fts, func(i, j int) bool {
		if fts[i].total != fts[j].total {
			return fts[i].total > fts[j].total
		}
		return fts[i].file < fts[j].file
	})
	var covered int64
	nBig := 0
	for _, f := range fts {
		if cfg.BigFileCoverage < 1 && float64(covered) >= cfg.BigFileCoverage*float64(grand) {
			break
		}
		covered += f.total
		nBig++
	}

	res := WindowResult{
		Sizes:         make([]float64, slots),
		WeightedSizes: make([]float64, slots),
		Files:         nBig,
	}
	var weightTotal float64
	for i := 0; i < nBig; i++ {
		f := fts[i]
		w := minCoveringWindow(perFile[f.file], f.total, cfg.Coverage)
		res.Sizes[w-1]++
		res.WeightedSizes[w-1] += float64(f.total)
		weightTotal += float64(f.total)
	}
	for k := range res.Sizes {
		if nBig > 0 {
			res.Sizes[k] /= float64(nBig)
		}
		if weightTotal > 0 {
			res.WeightedSizes[k] /= weightTotal
		}
	}
	return res, nil
}

// minCoveringWindow returns the length (in slots) of the shortest
// contiguous run of slots whose accesses sum to at least coverage×total.
// Classic two-pointer sweep, O(len(hist)).
func minCoveringWindow(hist []int64, total int64, coverage float64) int {
	need := int64(math.Ceil(coverage * float64(total)))
	if need <= 0 {
		return 1
	}
	best := len(hist)
	var sum int64
	lo := 0
	for hi := 0; hi < len(hist); hi++ {
		sum += hist[hi]
		for sum-hist[lo] >= need {
			sum -= hist[lo]
			lo++
		}
		if sum >= need && hi-lo+1 < best {
			best = hi - lo + 1
		}
	}
	return best
}

// RenderRanks prints the Fig. 2 series (rank, accesses, block-weighted
// accesses), sampled logarithmically like the paper's log-log plot.
func RenderRanks(points []RankPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %12s\n", "rank", "accesses", "weighted")
	step := 1
	for i := 0; i < len(points); i += step {
		p := points[i]
		fmt.Fprintf(&b, "%8d %12d %12d\n", p.Rank, p.Count, p.Weighted)
		if p.Rank >= 10 {
			step = p.Rank / 4
		}
	}
	return b.String()
}

// RenderAgeCDF prints Fig. 3's CDF at the paper's reference points plus a
// coarse curve.
func RenderAgeCDF(cdf *stats.ECDF) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %s\n", "age", "fraction of accesses at age < t")
	for _, ref := range []struct {
		label string
		secs  float64
	}{
		{"1 minute", 60}, {"1 hour", Hour}, {"9h45m", 9.75 * Hour},
		{"1 day", Day}, {"2 days", 2 * Day}, {"1 week", Week},
	} {
		fmt.Fprintf(&b, "%-14s %.3f\n", ref.label, cdf.At(ref.secs))
	}
	return b.String()
}

// RenderWindows prints the Fig. 4/5 distributions (window size in hours vs
// fraction of files, plain and weighted).
func RenderWindows(r WindowResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s   (files analyzed: %d)\n", "window(hours)", "fraction", "weighted", r.Files)
	for k, f := range r.Sizes {
		if f == 0 && r.WeightedSizes[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14d %10.4f %10.4f\n", k+1, f, r.WeightedSizes[k])
	}
	return b.String()
}

// HourlyProfile computes the access rate by hour of day over the whole
// log — the diurnal pattern behind the daily periodicity of Fig. 4. The
// returned slice has 24 entries summing to 1 (empty log: all zeros).
func HourlyProfile(l *Log) [24]float64 {
	var prof [24]float64
	if len(l.Accesses) == 0 {
		return prof
	}
	for _, a := range l.Accesses {
		h := int(math.Mod(a.Time, Day) / Hour)
		if h < 0 {
			h = 0
		}
		if h > 23 {
			h = 23
		}
		prof[h]++
	}
	for h := range prof {
		prof[h] /= float64(len(l.Accesses))
	}
	return prof
}

// RenderHourlyProfile prints the diurnal access profile with an ASCII
// sparkline.
func RenderHourlyProfile(prof [24]float64) string {
	max := 0.0
	for _, p := range prof {
		if p > max {
			max = p
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-8s %s\n", "hour", "share", "")
	for h, p := range prof {
		bars := 0
		if max > 0 {
			bars = int(p / max * 40)
		}
		fmt.Fprintf(&b, "%02d:00  %6.2f%%  %s\n", h, p*100, strings.Repeat("#", bars))
	}
	return b.String()
}
