package core

import (
	"fmt"
	"sort"

	"dare/internal/dfs"
	"dare/internal/event"
	"dare/internal/policy"
	"dare/internal/stats"
	"dare/internal/topology"
)

// Scarlett implements the epoch-based, proactive replication baseline the
// paper positions DARE against (§VI; Ananthanarayanan et al., EuroSys'11).
// Where DARE reacts to individual remote reads at each data node, Scarlett
// runs a centralized controller that
//
//  1. counts file accesses during an epoch,
//  2. at the epoch boundary computes a desired replication factor per
//     file from its observed popularity (one extra replica per
//     AccessesPerReplica accesses, capped),
//  3. creates the planned replicas proactively — paying real network
//     traffic for each copy, unlike DARE's free piggybacked captures —
//     spreading them over the least-loaded nodes to smooth hotspots, and
//  4. ages out replicas that fall out of the plan.
//
// The §VI claim this baseline exists to test: a reactive scheme adapts to
// popularity changes at smaller time scales, while the epoch scheme lags a
// popularity shift by up to one epoch (see the adaptation experiment).
type Scarlett struct {
	cfg   Config
	store ScarlettStore
	sched DeferFunc

	budget int64
	used   int64

	// accesses counts file accesses in the current epoch.
	accesses map[dfs.FileID]int64
	// placed records the dynamic replicas this controller currently owns:
	// block -> nodes.
	placed map[dfs.BlockID]map[topology.NodeID]bool

	// grow is the epoch gate deciding whether a file's popularity earns
	// it extra replicas (built-in: accesses >= AccessesPerReplica). A
	// config file overrides it via Config.Rules.Admit. The replica-count
	// arithmetic, budget check and least-loaded placement stay native.
	grow    policy.Rule
	growCtx growCtx
	now     clock
	// tagDefer, when set (SetTagDefer), replaces sched with a scheduler
	// that records a serializable tag alongside the epoch closure, so the
	// pending epoch boundary survives a state-image checkpoint.
	tagDefer TagDeferFunc

	stats PolicyStats
	// ExtraNetworkBytes is the proactive-copy traffic DARE avoids.
	extraNetworkBytes int64
	errs              []error
	stopped           bool
}

// ScarlettStore is the name-node surface the controller needs: everything
// the DARE manager needs plus file enumeration for planning. *dfs.NameNode
// satisfies it.
type ScarlettStore interface {
	MetaStore
	NodeFailed(node topology.NodeID) bool
	File(id dfs.FileID) *dfs.File
	Files() int
	Block(id dfs.BlockID) *dfs.Block
	NumReplicas(b dfs.BlockID) int
	ReplicaKindAt(b dfs.BlockID, node topology.NodeID) (dfs.ReplicaKind, bool)
	DynamicBytesOn(node topology.NodeID) int64
	PrimaryBytesOn(node topology.NodeID) int64
	Locations(b dfs.BlockID) []topology.NodeID
}

// NewScarlett builds the controller and starts its epoch timer through
// deferFn. cfg fields used: BudgetFraction, Epoch, AccessesPerReplica,
// MaxExtraReplicas (zero values get defaults).
func NewScarlett(cfg Config, store ScarlettStore, deferFn DeferFunc) *Scarlett {
	if cfg.Epoch <= 0 {
		cfg.Epoch = 60
	}
	if cfg.AccessesPerReplica <= 0 {
		cfg.AccessesPerReplica = 4
	}
	if cfg.MaxExtraReplicas <= 0 {
		cfg.MaxExtraReplicas = 16
	}
	s := &Scarlett{
		cfg:      cfg,
		store:    store,
		sched:    deferFn,
		budget:   int64(cfg.BudgetFraction * float64(store.TotalPrimaryBytes())),
		accesses: make(map[dfs.FileID]int64),
		placed:   make(map[dfs.BlockID]map[topology.NodeID]bool),
	}
	// Compile the grow gate. The controller is centralized (one decision
	// stream), so a custom stateful rule gets one fixed-seed stream; the
	// built-in gate is stateless and never draws.
	spec := policy.DefaultScarlettGrow(cfg.AccessesPerReplica)
	if cfg.Rules != nil && cfg.Rules.Admit != nil {
		spec = cfg.Rules.Admit
	}
	grow, err := spec.CompileWith(stats.NewRNG(0x5CA21E77))
	if err != nil {
		s.errs = append(s.errs, fmt.Errorf("core: scarlett grow rule: %w", err))
		grow, _ = policy.DefaultScarlettGrow(cfg.AccessesPerReplica).Compile(0)
	}
	s.grow = grow
	s.scheduleEpoch()
	return s
}

// growCtx is the policy.Context for the epoch grow gate.
type growCtx struct {
	accesses float64
	now      float64
}

// Val implements policy.Context.
func (c *growCtx) Val(key string) (float64, bool) {
	switch key {
	case "accesses":
		return c.accesses, true
	case "now":
		return c.now, true
	}
	return 0, false
}

// SetNow supplies the simulated clock to time-aware grow rules.
func (s *Scarlett) SetNow(now func() float64) { s.now = now }

func (s *Scarlett) scheduleEpoch() {
	if s.sched == nil && s.tagDefer == nil {
		return // manual stepping (tests call Rebalance directly)
	}
	if s.tagDefer != nil {
		s.tagDefer(s.cfg.Epoch, scarlettEpochTag{}, s.epochFn())
		return
	}
	s.sched(s.cfg.Epoch, s.epochFn())
}

// epochFn is the epoch-boundary closure, split out so a state-image
// restore can rebuild it; the re-arm inside happens live after restore.
func (s *Scarlett) epochFn() func() {
	return func() {
		if s.stopped {
			return
		}
		s.Rebalance()
		s.scheduleEpoch()
	}
}

// Stop halts future epochs (call after the workload drains).
func (s *Scarlett) Stop() { s.stopped = true }

// HandleEvent implements event.Subscriber: Scarlett watches map-task
// launches on the cluster bus (reduce launches carry Block = -1).
func (s *Scarlett) HandleEvent(ev event.Event) {
	if ev.Kind != event.TaskLaunch || ev.Block < 0 {
		return
	}
	s.OnMapTask(topology.NodeID(ev.Node), dfs.BlockID(ev.Block), dfs.FileID(ev.File), ev.Aux, ev.Flag)
}

// OnMapTask records a map-task launch: Scarlett only *observes* accesses
// inline; all replication happens at epoch boundaries.
func (s *Scarlett) OnMapTask(node topology.NodeID, b dfs.BlockID, f dfs.FileID, size int64, local bool) {
	// Uniform counter semantics: a repeat access to a file already
	// tallied this epoch refreshes an existing tracked entry; every
	// remote read is uncaptured inline (replication waits for the epoch).
	if s.accesses[f] > 0 {
		s.stats.Refreshes++
	}
	s.accesses[f]++
	if !local {
		s.stats.RemoteSkipped++
	}
}

// Errors returns metadata failures observed while applying plans.
func (s *Scarlett) Errors() []error { return s.errs }

// TotalStats reports the controller's activity counters.
func (s *Scarlett) TotalStats() PolicyStats { return s.stats }

// ExtraNetworkBytes reports the bytes of proactive replica copies — the
// network cost DARE's piggybacking avoids.
func (s *Scarlett) ExtraNetworkBytes() int64 { return s.extraNetworkBytes }

// UsedBytes reports the budget currently consumed by placed replicas.
func (s *Scarlett) UsedBytes() int64 { return s.used }

// Rebalance runs one epoch boundary: plan desired replication from the
// epoch's access counts, then converge the placed set toward the plan
// within the budget. Exposed for tests and manual stepping.
func (s *Scarlett) Rebalance() {
	type filePop struct {
		id  dfs.FileID
		acc int64
	}
	pops := make([]filePop, 0, len(s.accesses))
	for f, a := range s.accesses {
		if a > 0 {
			pops = append(pops, filePop{f, a})
		}
	}
	sort.Slice(pops, func(i, j int) bool {
		if pops[i].acc != pops[j].acc {
			return pops[i].acc > pops[j].acc
		}
		return pops[i].id < pops[j].id
	})

	// Desired extra replicas per block of each observed file. The grow
	// rule gates whether a file's popularity earns extras at all; the
	// count arithmetic stays native. For the built-in gate
	// (accesses >= AccessesPerReplica) the two tests agree exactly on
	// integer tallies — the rule is the declarative spelling of extra >= 1.
	desired := make(map[dfs.BlockID]int)
	s.growCtx.now = s.now.read()
	for _, fp := range pops {
		s.growCtx.accesses = float64(fp.acc)
		if !s.grow.Eval(&s.growCtx) {
			continue
		}
		extra := int(float64(fp.acc) / s.cfg.AccessesPerReplica)
		if extra > s.cfg.MaxExtraReplicas {
			extra = s.cfg.MaxExtraReplicas
		}
		if extra == 0 {
			continue
		}
		file := s.store.File(fp.id)
		if file == nil {
			continue
		}
		for _, b := range file.Blocks {
			desired[b] = extra
		}
	}

	// Age out placements no longer desired (or over-desired). Iteration
	// is sorted so runs stay deterministic.
	blocks := make([]dfs.BlockID, 0, len(s.placed))
	for b := range s.placed {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, b := range blocks {
		nodes := s.placed[b]
		want := desired[b]
		victims := make([]topology.NodeID, 0, len(nodes))
		for node := range nodes {
			victims = append(victims, node)
		}
		sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
		for _, node := range victims {
			if len(nodes) <= want {
				break
			}
			s.removeReplica(b, node)
		}
		if len(nodes) == 0 {
			delete(s.placed, b)
		}
	}

	// Grow placements toward the plan, most popular files first, within
	// budget, choosing the least-loaded nodes to smooth hotspots.
grow:
	for _, fp := range pops {
		file := s.store.File(fp.id)
		if file == nil {
			continue
		}
		for _, b := range file.Blocks {
			want := desired[b]
			for s.placedCount(b) < want {
				blk := s.store.Block(b)
				if blk == nil || s.used+blk.Size > s.budget {
					// Budget exhausted; later (less popular) files wait
					// for a future epoch.
					break grow
				}
				node, ok := s.leastLoadedNodeWithout(b)
				if !ok {
					break // every node already holds it
				}
				s.addReplica(b, node, blk.Size)
			}
		}
	}

	// New epoch: reset the observation window.
	s.accesses = make(map[dfs.FileID]int64)
}

func (s *Scarlett) placedCount(b dfs.BlockID) int { return len(s.placed[b]) }

// leastLoadedNodeWithout picks the node with the fewest dynamic bytes that
// does not yet hold block b; deterministic tie-break by node ID.
func (s *Scarlett) leastLoadedNodeWithout(b dfs.BlockID) (topology.NodeID, bool) {
	n := s.store.N()
	best := topology.NodeID(-1)
	var bestLoad int64
	for i := 0; i < n; i++ {
		node := topology.NodeID(i)
		if s.store.NodeFailed(node) || s.store.HasReplica(b, node) {
			continue
		}
		load := s.store.DynamicBytesOn(node)
		if best < 0 || load < bestLoad {
			best, bestLoad = node, load
		}
	}
	return best, best >= 0
}

func (s *Scarlett) addReplica(b dfs.BlockID, node topology.NodeID, size int64) {
	if err := s.store.AddDynamicReplica(b, node); err != nil {
		s.errs = append(s.errs, fmt.Errorf("core: scarlett add block %d at node %d: %w", b, node, err))
		return
	}
	if s.placed[b] == nil {
		s.placed[b] = make(map[topology.NodeID]bool)
	}
	s.placed[b][node] = true
	s.used += size
	s.stats.ReplicasCreated++
	// Proactive copies move real bytes over the fabric.
	s.extraNetworkBytes += size
}

func (s *Scarlett) removeReplica(b dfs.BlockID, node topology.NodeID) {
	if k, ok := s.store.ReplicaKindAt(b, node); !ok || k != dfs.Dynamic {
		delete(s.placed[b], node)
		return
	}
	blk := s.store.Block(b)
	if err := s.store.RemoveDynamicReplica(b, node); err != nil {
		s.errs = append(s.errs, fmt.Errorf("core: scarlett remove block %d at node %d: %w", b, node, err))
		return
	}
	delete(s.placed[b], node)
	if blk != nil {
		s.used -= blk.Size
	}
	s.stats.Evictions++
}
