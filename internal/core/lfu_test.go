package core

import (
	"testing"
	"testing/quick"

	"dare/internal/dfs"
)

func TestGreedyLFUReplicatesRemoteReads(t *testing.T) {
	p := NewGreedyLFU(1000)
	d := p.OnMapTask(1, 10, 100, false)
	if !d.Replicate || len(d.Evict) != 0 {
		t.Fatalf("expected plain replication, got %+v", d)
	}
	if !p.Contains(1) || p.UsedBytes() != 100 || p.Len() != 1 {
		t.Fatal("state not updated")
	}
}

func TestGreedyLFUEvictsLeastFrequent(t *testing.T) {
	p := NewGreedyLFU(300)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 20, 100, false)
	p.OnMapTask(3, 30, 100, false)
	// Heat blocks 1 and 3; block 2 stays at frequency 0.
	p.OnMapTask(1, 10, 100, true)
	p.OnMapTask(3, 30, 100, true)
	p.OnMapTask(3, 30, 100, true)
	d := p.OnMapTask(4, 40, 100, false)
	if !d.Replicate || len(d.Evict) != 1 || d.Evict[0] != 2 {
		t.Fatalf("expected eviction of least-frequent block 2, got %+v", d)
	}
	if c, _ := p.Count(3); c != 2 {
		t.Fatalf("block 3 count %d", c)
	}
}

func TestGreedyLFUTieBreakIsInsertionOrder(t *testing.T) {
	p := NewGreedyLFU(200)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 20, 100, false)
	// Both at frequency 0: the older insertion (block 1) goes first.
	d := p.OnMapTask(3, 30, 100, false)
	if len(d.Evict) != 1 || d.Evict[0] != 1 {
		t.Fatalf("expected FIFO tie-break eviction of 1, got %+v", d)
	}
}

func TestGreedyLFUSameFileVictimsSkipped(t *testing.T) {
	p := NewGreedyLFU(200)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 10, 100, false)
	// Incoming block of file 10 cannot evict its own file's replicas.
	d := p.OnMapTask(3, 10, 100, false)
	if d.Replicate {
		t.Fatal("same-file eviction should abandon replication")
	}
	if p.Len() != 2 {
		t.Fatal("set-aside entries lost")
	}
	// A different file's block still evicts the LFU one.
	d = p.OnMapTask(4, 20, 100, false)
	if !d.Replicate || len(d.Evict) != 1 || d.Evict[0] != 1 {
		t.Fatalf("expected eviction of 1, got %+v", d)
	}
	// Block 2 survived the set-aside with its count intact.
	if c, ok := p.Count(2); !ok || c != 0 {
		t.Fatal("set-aside entry corrupted")
	}
}

func TestGreedyLFUFrequencySurvivesSetAside(t *testing.T) {
	p := NewGreedyLFU(300)
	p.OnMapTask(1, 10, 100, false)
	p.OnMapTask(2, 20, 100, false)
	p.OnMapTask(3, 10, 100, false)
	p.OnMapTask(1, 10, 100, true) // freq(1)=1
	// Insert file-10 block: victims scanned are 2 (freq 0, different file)
	// — blocks 1/3 of file 10 must keep their counts if examined.
	d := p.OnMapTask(4, 10, 100, false)
	if len(d.Evict) != 1 || d.Evict[0] != 2 {
		t.Fatalf("expected eviction of 2, got %+v", d)
	}
	if c, _ := p.Count(1); c != 1 {
		t.Fatalf("block 1 count %d after set-aside", c)
	}
}

func TestGreedyLFUZeroBudget(t *testing.T) {
	p := NewGreedyLFU(0)
	for i := 0; i < 5; i++ {
		if d := p.OnMapTask(dfs.BlockID(i), dfs.FileID(i), 100, false); d.Replicate {
			t.Fatal("zero budget must never replicate")
		}
	}
	if p.Stats().RemoteSkipped != 5 {
		t.Fatalf("skips %d", p.Stats().RemoteSkipped)
	}
}

func TestGreedyLFUBudgetInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewGreedyLFU(900)
		sizes := map[dfs.BlockID]int64{}
		for _, op := range ops {
			b := dfs.BlockID(op % 40)
			fid := dfs.FileID(op % 6)
			size := int64(op%3)*100 + 100
			d := p.OnMapTask(b, fid, size, op%4 == 0)
			if d.Replicate {
				sizes[b] = size
			}
			for _, v := range d.Evict {
				delete(sizes, v)
			}
			if p.UsedBytes() > p.BudgetBytes() || p.Len() != len(sizes) {
				return false
			}
			var sum int64
			for _, s := range sizes {
				sum += s
			}
			if sum != p.UsedBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyLFUKindAndParsing(t *testing.T) {
	if GreedyLFUPolicy.String() != "lfu" {
		t.Fatal("kind string wrong")
	}
	if k, err := ParsePolicyKind("lfu"); err != nil || k != GreedyLFUPolicy {
		t.Fatal("parse failed")
	}
	p := NewGreedyLFU(10)
	if p.Kind() != GreedyLFUPolicy {
		t.Fatal("Kind() wrong")
	}
}
