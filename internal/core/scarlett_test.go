package core

import (
	"testing"

	"dare/internal/dfs"
	"dare/internal/sim"
	"dare/internal/stats"
	"dare/internal/topology"
)

// scarlettFixture: 10 nodes, two files (one to make popular, one cold).
type scarlettFixture struct {
	eng  *sim.Engine
	nn   *dfs.NameNode
	s    *Scarlett
	hot  *dfs.File
	cold *dfs.File
}

func newScarlettFixture(t *testing.T, cfg Config, seed uint64) *scarlettFixture {
	t.Helper()
	topo := topology.NewDedicated(10, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 3, stats.NewRNG(seed))
	hot, err := nn.CreateFile("hot", 4, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := nn.CreateFile("cold", 4, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	s := NewScarlett(cfg, nn, nil) // manual stepping via Rebalance
	return &scarlettFixture{eng: eng, nn: nn, s: s, hot: hot, cold: cold}
}

// access simulates n observed map tasks on file f.
func (fx *scarlettFixture) access(f *dfs.File, n int) {
	for i := 0; i < n; i++ {
		b := f.Blocks[i%len(f.Blocks)]
		fx.s.OnMapTask(0, b, f.ID, 100, false)
	}
}

func TestScarlettReplicatesPopularFiles(t *testing.T) {
	cfg := Config{Kind: ScarlettPolicy, BudgetFraction: 1, AccessesPerReplica: 4, MaxExtraReplicas: 4}
	fx := newScarlettFixture(t, cfg, 1)
	fx.access(fx.hot, 16) // 16/4 = 4 extra replicas desired per block
	fx.access(fx.cold, 1) // below the quota: no extras
	fx.s.Rebalance()

	for _, b := range fx.hot.Blocks {
		if got := fx.nn.NumReplicas(b); got != 3+4 {
			t.Fatalf("hot block %d has %d replicas, want 7", b, got)
		}
	}
	for _, b := range fx.cold.Blocks {
		if got := fx.nn.NumReplicas(b); got != 3 {
			t.Fatalf("cold block %d has %d replicas, want 3", b, got)
		}
	}
	if fx.s.TotalStats().ReplicasCreated != 16 {
		t.Fatalf("created %d", fx.s.TotalStats().ReplicasCreated)
	}
	if fx.s.ExtraNetworkBytes() != 16*100 {
		t.Fatalf("network bytes %d", fx.s.ExtraNetworkBytes())
	}
	if len(fx.s.Errors()) != 0 {
		t.Fatalf("errors: %v", fx.s.Errors())
	}
	if err := fx.nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScarlettAgesOutStalePlacements(t *testing.T) {
	cfg := Config{Kind: ScarlettPolicy, BudgetFraction: 1, AccessesPerReplica: 4, MaxExtraReplicas: 4}
	fx := newScarlettFixture(t, cfg, 2)
	fx.access(fx.hot, 16)
	fx.s.Rebalance()
	if fx.s.UsedBytes() == 0 {
		t.Fatal("no placements after first epoch")
	}
	// Next epoch: the hot file went cold, the cold file is now hot.
	fx.access(fx.cold, 16)
	fx.s.Rebalance()
	for _, b := range fx.hot.Blocks {
		if got := fx.nn.NumReplicas(b); got != 3 {
			t.Fatalf("stale hot block %d still has %d replicas", b, got)
		}
	}
	for _, b := range fx.cold.Blocks {
		if got := fx.nn.NumReplicas(b); got != 7 {
			t.Fatalf("newly hot block %d has %d replicas, want 7", b, got)
		}
	}
	if fx.s.TotalStats().Evictions != 16 {
		t.Fatalf("evictions %d, want 16", fx.s.TotalStats().Evictions)
	}
	if err := fx.nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScarlettRespectsBudget(t *testing.T) {
	// Budget for only 3 extra blocks (3 × 100 bytes over 6000 primary
	// bytes => fraction 0.05 of total).
	total := float64(3 * 100)
	cfg := Config{Kind: ScarlettPolicy, BudgetFraction: 0, AccessesPerReplica: 1, MaxExtraReplicas: 8}
	fx := newScarlettFixture(t, cfg, 3)
	cfg.BudgetFraction = total / float64(fx.nn.TotalPrimaryBytes())
	fx.s = NewScarlett(cfg, fx.nn, nil)
	fx.access(fx.hot, 40)
	fx.s.Rebalance()
	if fx.s.UsedBytes() > 300 {
		t.Fatalf("budget exceeded: %d", fx.s.UsedBytes())
	}
	if fx.s.TotalStats().ReplicasCreated != 3 {
		t.Fatalf("created %d replicas with budget for 3", fx.s.TotalStats().ReplicasCreated)
	}
}

func TestScarlettSpreadsAcrossLeastLoadedNodes(t *testing.T) {
	// Budget must cover 4 blocks × 7 extras × 100 bytes = 2800 of the
	// 2400 primary bytes, so use fraction 2.
	cfg := Config{Kind: ScarlettPolicy, BudgetFraction: 2, AccessesPerReplica: 1, MaxExtraReplicas: 7}
	fx := newScarlettFixture(t, cfg, 4)
	fx.access(fx.hot, 10)
	fx.s.Rebalance()
	// Every hot block now on all 10 nodes (3 primaries + 7 extras).
	for _, b := range fx.hot.Blocks {
		if got := fx.nn.NumReplicas(b); got != 10 {
			t.Fatalf("block %d on %d nodes, want 10", b, got)
		}
	}
	// Dynamic bytes roughly even across nodes (least-loaded placement).
	var min, max int64 = 1 << 62, 0
	for n := 0; n < 10; n++ {
		d := fx.nn.DynamicBytesOn(topology.NodeID(n))
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min > 300 {
		t.Fatalf("dynamic load imbalance: min %d max %d", min, max)
	}
}

func TestScarlettEpochTimer(t *testing.T) {
	topo := topology.NewDedicated(5, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 2, stats.NewRNG(5))
	f, _ := nn.CreateFile("f", 2, 100, 0)
	eng := sim.NewEngine()
	cfg := Config{Kind: ScarlettPolicy, BudgetFraction: 1, Epoch: 10, AccessesPerReplica: 1, MaxExtraReplicas: 2}
	s := NewScarlett(cfg, nn, eng.Defer)
	for i := 0; i < 5; i++ {
		s.OnMapTask(0, f.Blocks[0], f.ID, 100, false)
	}
	eng.RunUntil(9)
	if nn.NumReplicas(f.Blocks[0]) != 2 {
		t.Fatal("replication before the epoch boundary")
	}
	eng.RunUntil(11)
	if nn.NumReplicas(f.Blocks[0]) <= 2 {
		t.Fatal("no replication after the epoch boundary")
	}
	s.Stop()
	prev := eng.Processed()
	eng.RunUntil(100)
	// Stopped controller schedules no further work beyond the already
	// queued timer, which must be a no-op.
	if nn.CheckInvariants() != nil {
		t.Fatal("invariants broken after stop")
	}
	_ = prev
}

func TestScarlettDefaults(t *testing.T) {
	topo := topology.NewDedicated(3, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 1, stats.NewRNG(6))
	s := NewScarlett(Config{Kind: ScarlettPolicy, BudgetFraction: 0.5}, nn, nil)
	if s.cfg.Epoch <= 0 || s.cfg.AccessesPerReplica <= 0 || s.cfg.MaxExtraReplicas <= 0 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestScarlettPolicyKindParsing(t *testing.T) {
	if ScarlettPolicy.String() != "scarlett" {
		t.Fatal("kind string wrong")
	}
	for _, sp := range []string{"scarlett", "epoch"} {
		if k, err := ParsePolicyKind(sp); err != nil || k != ScarlettPolicy {
			t.Fatalf("ParsePolicyKind(%s) = %v, %v", sp, k, err)
		}
	}
}
