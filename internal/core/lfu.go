package core

import (
	"container/heap"

	"dare/internal/dfs"
	"dare/internal/policy"
)

// GreedyLFU is the least-frequently-used variant of the greedy approach.
// The paper's §IV names LFU alongside LRU as the traditional eviction
// choices ("Choice between LRU and LFU should be made after profiling
// typical workloads"); this implementation lets that profiling actually
// happen. Like Algorithm 1 it captures every remote read; when the budget
// binds it evicts the tracked replica with the fewest accesses (ties
// broken by insertion order, i.e. oldest first), skipping victims that
// share the incoming block's file.
type GreedyLFU struct {
	budget int64
	used   int64
	pq     lfuHeap
	index  map[dfs.BlockID]*lfuEntry
	seq    uint64
	// rules hold the declarative decisions (see GreedyLRU); the frequency
	// ranking itself stays in the native heap.
	rules policy.ReplicationRules
	ctx   replCtx
	now   clock
	stats PolicyStats
}

// lfuEntry is one tracked dynamic replica with its access frequency.
type lfuEntry struct {
	block dfs.BlockID
	file  dfs.FileID
	size  int64
	count int64
	seq   uint64 // insertion order, the tie-break
	pos   int    // heap index
}

// NewGreedyLFU creates the LFU policy with the given budget in bytes and
// the built-in rule set.
func NewGreedyLFU(budgetBytes int64) *GreedyLFU {
	return NewGreedyLFUWith(budgetBytes, compileBuiltinRules(GreedyLFUPolicy, 0, 0, nil), nil)
}

// NewGreedyLFUWith creates the policy with compiled decision rules; nil
// rule fields fall back to the built-ins.
func NewGreedyLFUWith(budgetBytes int64, rules policy.ReplicationRules, now clock) *GreedyLFU {
	builtin := compileBuiltinRules(GreedyLFUPolicy, 0, 0, nil)
	if rules.Admit == nil {
		rules.Admit = builtin.Admit
	}
	if rules.Victim == nil {
		rules.Victim = builtin.Victim
	}
	return &GreedyLFU{
		budget: budgetBytes,
		index:  make(map[dfs.BlockID]*lfuEntry),
		rules:  rules,
		now:    now,
	}
}

// Kind implements NodePolicy.
func (p *GreedyLFU) Kind() PolicyKind { return GreedyLFUPolicy }

// BudgetBytes implements NodePolicy.
func (p *GreedyLFU) BudgetBytes() int64 { return p.budget }

// UsedBytes implements NodePolicy.
func (p *GreedyLFU) UsedBytes() int64 { return p.used }

// Stats implements NodePolicy.
func (p *GreedyLFU) Stats() PolicyStats { return p.stats }

// Contains implements NodePolicy.
func (p *GreedyLFU) Contains(b dfs.BlockID) bool {
	_, ok := p.index[b]
	return ok
}

// Len reports the number of tracked dynamic replicas.
func (p *GreedyLFU) Len() int { return len(p.pq) }

// Count reports a tracked block's access count (introspection/tests).
func (p *GreedyLFU) Count(b dfs.BlockID) (int64, bool) {
	e, ok := p.index[b]
	if !ok {
		return 0, false
	}
	return e.count, true
}

// OnMapTask implements NodePolicy.
func (p *GreedyLFU) OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision {
	if e, ok := p.index[b]; ok {
		// Any read of a tracked replica bumps its frequency; a remote one
		// additionally counts as an uncaptured remote read.
		e.count++
		heap.Fix(&p.pq, e.pos)
		p.stats.Refreshes++
		if !local {
			p.stats.RemoteSkipped++
		}
		return Decision{}
	}
	if local {
		return Decision{}
	}
	p.ctx.admit(local, size, p.used, p.budget, p.now.read())
	if !p.rules.Admit.Eval(&p.ctx) {
		p.stats.RemoteSkipped++
		return Decision{}
	}
	var evict []dfs.BlockID
	for p.used+size > p.budget {
		victim := p.popVictim(f)
		if victim == nil {
			p.stats.RemoteSkipped++
			p.stats.Evictions += int64(len(evict))
			return Decision{Evict: evict}
		}
		evict = append(evict, victim.block)
		p.used -= victim.size
	}
	p.stats.Evictions += int64(len(evict))
	e := &lfuEntry{block: b, file: f, size: size, seq: p.seq}
	p.seq++
	heap.Push(&p.pq, e)
	p.index[b] = e
	p.used += size
	p.stats.ReplicasCreated++
	return Decision{Replicate: true, Evict: evict}
}

// popVictim removes the least-frequently-used entry the Victim rule
// accepts (built-in: any file but evictingFile). Rejected entries are
// temporarily set aside and restored, preserving their counts.
func (p *GreedyLFU) popVictim(evictingFile dfs.FileID) *lfuEntry {
	var setAside []*lfuEntry
	var victim *lfuEntry
	for len(p.pq) > 0 {
		e := heap.Pop(&p.pq).(*lfuEntry)
		p.ctx.candidate(e.count, true)
		p.ctx.sameFileIs(e.file == evictingFile)
		if !p.rules.Victim.Eval(&p.ctx) {
			setAside = append(setAside, e)
			continue
		}
		victim = e
		break
	}
	for _, e := range setAside {
		heap.Push(&p.pq, e)
	}
	if victim != nil {
		delete(p.index, victim.block)
	}
	return victim
}

// lfuHeap is a min-heap on (count, seq).
type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }

func (h lfuHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].seq < h[j].seq
}

func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos = i
	h[j].pos = j
}

func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.pos = len(*h)
	*h = append(*h, e)
}

func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.pos = -1
	*h = old[:n-1]
	return e
}
