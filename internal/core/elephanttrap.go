package core

import (
	"container/list"

	"dare/internal/dfs"
	"dare/internal/policy"
	"dare/internal/stats"
)

// etEntry is one tracked dynamic replica in the ElephantTrap circular
// list, carrying its access count.
type etEntry struct {
	block dfs.BlockID
	file  dfs.FileID
	size  int64
	count int64
}

// ElephantTrap implements the paper's Algorithm 2, an adaptation of the
// ElephantTrap heavy-hitter detector (Lu et al., HOTI'07) to block
// replication. Compared with GreedyLRU it adds two probabilistic levers:
//
//   - Sampling: a scheduled map task is *observed* only with probability
//     p. A sampled non-local task triggers a replication; a sampled local
//     task increments the tracked block's access count. Unpopular blocks —
//     touched by a handful of remote reads — are thus mostly ignored,
//     which prevents thrashing and roughly halves disk writes versus the
//     greedy policy at similar locality (§I).
//
//   - Competitive aging: when the budget forces an eviction, the policy
//     walks the circular list from the eviction pointer, halving each
//     entry's access count, until it finds an entry whose count has
//     dropped below threshold. Recently popular blocks decay quickly once
//     their popularity fades, yet newly replicated popular blocks are not
//     evicted prematurely.
//
// If the full sweep finds no victim (every entry still ≥ threshold) or the
// candidate belongs to the same file as the incoming block, the
// replication is abandoned (Algorithm 2 returns null).
type ElephantTrap struct {
	p         float64
	threshold int64
	budget    int64
	used      int64

	ring  *list.List // circular order is implied: Next of Back is Front
	index map[dfs.BlockID]*list.Element
	// evict is the eviction pointer into ring; nil means "at Front".
	evict *list.Element

	// rules hold the declarative decisions: Admit is the sampling coin
	// (built-in: probability p on this node's stream), Aged decides
	// evict-now vs age-and-advance during the sweep (built-in:
	// count < threshold), Victim is the final same-file guard. The
	// circular list and the halving walk stay native.
	rules policy.ReplicationRules
	ctx   replCtx
	now   clock
	stats PolicyStats
}

// NewElephantTrap creates the Algorithm 2 policy. p is the sampling
// probability (paper default 0.3), threshold the aging threshold (paper
// default 1), budgetBytes the node's replication budget. rng must be a
// dedicated sub-stream: the compiled sampling rule owns it, drawing once
// per observed task exactly as the pre-rule implementation did.
func NewElephantTrap(p float64, threshold int64, budgetBytes int64, rng *stats.RNG) *ElephantTrap {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	return NewElephantTrapWith(p, threshold, budgetBytes,
		compileBuiltinRules(ElephantTrapPolicy, p, threshold, rng), nil)
}

// NewElephantTrapWith creates the policy with compiled decision rules;
// nil rule fields fall back to the built-ins for (p, threshold).
func NewElephantTrapWith(p float64, threshold int64, budgetBytes int64, rules policy.ReplicationRules, now clock) *ElephantTrap {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if threshold < 0 {
		threshold = 0
	}
	if rules.Admit == nil || rules.Victim == nil || rules.Aged == nil {
		builtin := compileBuiltinRules(ElephantTrapPolicy, p, threshold, nil)
		if rules.Admit == nil {
			rules.Admit = builtin.Admit
		}
		if rules.Victim == nil {
			rules.Victim = builtin.Victim
		}
		if rules.Aged == nil {
			rules.Aged = builtin.Aged
		}
	}
	return &ElephantTrap{
		p:         p,
		threshold: threshold,
		budget:    budgetBytes,
		ring:      list.New(),
		index:     make(map[dfs.BlockID]*list.Element),
		rules:     rules,
		now:       now,
	}
}

// Kind implements NodePolicy.
func (t *ElephantTrap) Kind() PolicyKind { return ElephantTrapPolicy }

// BudgetBytes implements NodePolicy.
func (t *ElephantTrap) BudgetBytes() int64 { return t.budget }

// UsedBytes implements NodePolicy.
func (t *ElephantTrap) UsedBytes() int64 { return t.used }

// Stats implements NodePolicy.
func (t *ElephantTrap) Stats() PolicyStats { return t.stats }

// Contains implements NodePolicy.
func (t *ElephantTrap) Contains(b dfs.BlockID) bool {
	_, ok := t.index[b]
	return ok
}

// Len reports the number of tracked dynamic replicas.
func (t *ElephantTrap) Len() int { return t.ring.Len() }

// Count reports the current access count of a tracked block (testing and
// introspection).
func (t *ElephantTrap) Count(b dfs.BlockID) (int64, bool) {
	el, ok := t.index[b]
	if !ok {
		return 0, false
	}
	return el.Value.(*etEntry).count, true
}

// OnMapTask implements NodePolicy (Algorithm 2).
func (t *ElephantTrap) OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision {
	// The admission rule — the sampling coin by default — runs before any
	// tracking: it decides both whether to replicate and whether to update
	// the access-tracking structures. This is also the hook a config-file
	// rule (e.g. the ε-greedy bandit over sampling rates) replaces.
	t.ctx.admit(local, size, t.used, t.budget, t.now.read())
	if !t.rules.Admit.Eval(&t.ctx) {
		if !local {
			t.stats.RemoteSkipped++
		}
		return Decision{}
	}
	if local {
		if el, ok := t.index[b]; ok {
			el.Value.(*etEntry).count++
			t.stats.Refreshes++
		}
		return Decision{}
	}
	if t.Contains(b) {
		// Remote read of a block we already track: count it as an access,
		// and as a remote read not captured as a new replica.
		t.index[b].Value.(*etEntry).count++
		t.stats.Refreshes++
		t.stats.RemoteSkipped++
		return Decision{}
	}

	var evict []dfs.BlockID
	for t.used+size > t.budget {
		victim := t.markBlockForDeletion(f)
		if victim == nil {
			// Couldn't find a block to evict; will not replicate.
			t.stats.RemoteSkipped++
			t.stats.Evictions += int64(len(evict))
			return Decision{Evict: evict}
		}
		evict = append(evict, victim.block)
		t.used -= victim.size
	}
	t.stats.Evictions += int64(len(evict))

	// Insert right before the eviction pointer: the new entry is the last
	// one the pointer will reach, giving it a full aging cycle to prove
	// its popularity.
	e := &etEntry{block: b, file: f, size: size, count: 0}
	var el *list.Element
	if t.evict != nil {
		el = t.ring.InsertBefore(e, t.evict)
	} else {
		el = t.ring.PushBack(e)
	}
	t.index[b] = el
	t.used += size
	t.stats.ReplicasCreated++
	return Decision{Replicate: true, Evict: evict}
}

// markBlockForDeletion walks the circular list from the eviction pointer,
// halving access counts, until the Aged rule accepts an entry (built-in:
// its count dropped below threshold) or the whole list has been visited.
// The found victim is evicted only if the Victim rule accepts it
// (built-in: it does not belong to evictingFile). Returns nil when no
// victim can be evicted.
func (t *ElephantTrap) markBlockForDeletion(evictingFile dfs.FileID) *etEntry {
	n := t.ring.Len()
	if n == 0 {
		return nil
	}
	if t.evict == nil {
		t.evict = t.ring.Front()
	}
	var victim *list.Element
	for i := 0; i < n; i++ {
		e := t.evict.Value.(*etEntry)
		t.ctx.candidate(e.count, true)
		if t.rules.Aged.Eval(&t.ctx) {
			victim = t.evict
			break
		}
		e.count /= 2
		t.advance()
	}
	if victim == nil {
		// Full sweep aged everything but nothing fell below threshold.
		return nil
	}
	e := victim.Value.(*etEntry)
	t.ctx.candidate(e.count, true)
	t.ctx.sameFileIs(e.file == evictingFile)
	if !t.rules.Victim.Eval(&t.ctx) {
		// Same file ⇒ same popularity as the incoming block; evicting it
		// would be self-defeating. Abandon (Algorithm 2 returns null).
		return nil
	}
	t.advance() // move the pointer off the element being removed
	if t.evict == victim {
		t.evict = nil // victim was the only element
	}
	t.ring.Remove(victim)
	delete(t.index, e.block)
	return e
}

// advance moves the eviction pointer one step around the ring.
func (t *ElephantTrap) advance() {
	if t.evict == nil {
		t.evict = t.ring.Front()
		return
	}
	t.evict = t.evict.Next()
	if t.evict == nil {
		t.evict = t.ring.Front()
	}
}
