package core

import (
	"testing"

	"dare/internal/dfs"
	"dare/internal/sim"
	"dare/internal/stats"
	"dare/internal/topology"
)

// managerFixture builds a name node with one 10-block file and a manager
// on top of it.
type managerFixture struct {
	eng *sim.Engine
	nn  *dfs.NameNode
	mgr *Manager
	f   *dfs.File
}

func newManagerFixture(t *testing.T, cfg Config, nodes int, seed uint64) *managerFixture {
	t.Helper()
	topo := topology.NewDedicated(nodes, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 2, stats.NewRNG(seed))
	f, err := nn.CreateFile("input", 10, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	mgr := NewManager(cfg, nn, stats.NewRNG(seed+1), eng.Defer)
	return &managerFixture{eng: eng, nn: nn, mgr: mgr, f: f}
}

// remoteNodeFor finds a node not holding block b.
func (fx *managerFixture) remoteNodeFor(t *testing.T, b dfs.BlockID) topology.NodeID {
	t.Helper()
	for n := 0; n < fx.nn.N(); n++ {
		if !fx.nn.HasReplica(b, topology.NodeID(n)) {
			return topology.NodeID(n)
		}
	}
	t.Fatal("no remote node available")
	return 0
}

func TestManagerAnnouncesReplicaAfterDelay(t *testing.T) {
	cfg := Config{Kind: GreedyLRUPolicy, BudgetFraction: 1, AnnounceDelay: 2, LazyDeleteDelay: 1}
	fx := newManagerFixture(t, cfg, 10, 1)
	b := fx.f.Blocks[0]
	node := fx.remoteNodeFor(t, b)
	fx.mgr.OnMapTask(node, b, fx.f.ID, 100, false)
	if fx.nn.HasReplica(b, node) {
		t.Fatal("replica visible before announce delay")
	}
	fx.eng.RunUntil(1.5)
	if fx.nn.HasReplica(b, node) {
		t.Fatal("replica visible too early")
	}
	fx.eng.RunUntil(2.5)
	if !fx.nn.HasReplica(b, node) {
		t.Fatal("replica not announced after delay")
	}
	if k, _ := fx.nn.ReplicaKindAt(b, node); k != dfs.Dynamic {
		t.Fatal("announced replica should be dynamic")
	}
	if len(fx.mgr.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", fx.mgr.Errors())
	}
}

func TestManagerEvictionCancelsPendingAnnounce(t *testing.T) {
	// Tiny budget forces immediate eviction of the just-created replica
	// before its announce fires; the announce must be canceled.
	cfg := Config{Kind: GreedyLRUPolicy, BudgetFraction: 0, AnnounceDelay: 5, LazyDeleteDelay: 1}
	fx := newManagerFixture(t, cfg, 10, 2)
	// BudgetFraction 0 means nothing replicates; use a custom scenario
	// instead: budget for exactly one block.
	total := fx.nn.TotalPrimaryBytes()
	cfg.BudgetFraction = float64(100*fx.nn.N()) / float64(total) // one block per node
	fx.mgr = NewManager(cfg, fx.nn, stats.NewRNG(3), fx.eng.Defer)

	b0, b1 := fx.f.Blocks[0], fx.f.Blocks[1]
	var node topology.NodeID = -1
	for n := 0; n < fx.nn.N(); n++ {
		if !fx.nn.HasReplica(b0, topology.NodeID(n)) && !fx.nn.HasReplica(b1, topology.NodeID(n)) {
			node = topology.NodeID(n)
			break
		}
	}
	if node < 0 {
		t.Skip("no node free of both blocks")
	}
	// b0 and b1 belong to the same file; same-file victims are skipped, so
	// use two files.
	f2, err := fx.nn.CreateFile("other", 1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	c0 := f2.Blocks[0]
	if fx.nn.HasReplica(c0, node) {
		t.Skip("placement collision")
	}
	fx.mgr.OnMapTask(node, b0, fx.f.ID, 100, false) // fills budget, pending announce
	fx.mgr.OnMapTask(node, c0, f2.ID, 100, false)   // evicts b0 before announce
	fx.eng.Run()
	if fx.nn.HasReplica(b0, node) {
		t.Fatal("canceled announce still registered the replica")
	}
	if !fx.nn.HasReplica(c0, node) {
		t.Fatal("second replica missing")
	}
	if len(fx.mgr.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", fx.mgr.Errors())
	}
	if err := fx.nn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerLazyDeletionRemovesReplica(t *testing.T) {
	cfg := Config{Kind: GreedyLRUPolicy, BudgetFraction: 1, AnnounceDelay: 0, LazyDeleteDelay: 3}
	fx := newManagerFixture(t, cfg, 10, 4)
	total := fx.nn.TotalPrimaryBytes()
	cfg.BudgetFraction = float64(100*fx.nn.N()) / float64(total)
	fx.mgr = NewManager(cfg, fx.nn, stats.NewRNG(5), fx.eng.Defer)

	f2, err := fx.nn.CreateFile("other", 1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	b0, c0 := fx.f.Blocks[0], f2.Blocks[0]
	var node topology.NodeID = -1
	for n := 0; n < fx.nn.N(); n++ {
		if !fx.nn.HasReplica(b0, topology.NodeID(n)) && !fx.nn.HasReplica(c0, topology.NodeID(n)) {
			node = topology.NodeID(n)
			break
		}
	}
	if node < 0 {
		t.Skip("no free node")
	}
	fx.mgr.OnMapTask(node, b0, fx.f.ID, 100, false) // announce immediate
	if !fx.nn.HasReplica(b0, node) {
		t.Fatal("immediate announce failed")
	}
	fx.mgr.OnMapTask(node, c0, f2.ID, 100, false) // evicts b0 lazily
	if !fx.nn.HasReplica(b0, node) {
		t.Fatal("lazy deletion should not be immediate")
	}
	fx.eng.RunUntil(3.5)
	if fx.nn.HasReplica(b0, node) {
		t.Fatal("lazy deletion never fired")
	}
	if len(fx.mgr.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", fx.mgr.Errors())
	}
}

func TestManagerImmediateModeWithoutDefer(t *testing.T) {
	cfg := Config{Kind: GreedyLRUPolicy, BudgetFraction: 1}
	topo := topology.NewDedicated(5, 0, stats.Constant{V: 0})
	nn := dfs.NewNameNode(topo, 2, stats.NewRNG(6))
	f, _ := nn.CreateFile("f", 3, 100, 0)
	mgr := NewManager(cfg, nn, stats.NewRNG(7), nil)
	b := f.Blocks[0]
	var node topology.NodeID = -1
	for n := 0; n < 5; n++ {
		if !nn.HasReplica(b, topology.NodeID(n)) {
			node = topology.NodeID(n)
			break
		}
	}
	mgr.OnMapTask(node, b, f.ID, 100, false)
	if !nn.HasReplica(b, node) {
		t.Fatal("nil defer func should apply immediately")
	}
}

func TestManagerPolicyKinds(t *testing.T) {
	for _, kind := range []PolicyKind{NonePolicy, GreedyLRUPolicy, ElephantTrapPolicy} {
		cfg := Config{Kind: kind, P: 0.5, Threshold: 1, BudgetFraction: 0.2}
		fx := newManagerFixture(t, cfg, 6, 8)
		if fx.mgr.Policy(0).Kind() != kind {
			t.Fatalf("policy kind %v, want %v", fx.mgr.Policy(0).Kind(), kind)
		}
	}
}

func TestManagerBudgetDerivation(t *testing.T) {
	cfg := Config{Kind: GreedyLRUPolicy, BudgetFraction: 0.2}
	fx := newManagerFixture(t, cfg, 10, 9)
	want := int64(0.2 * float64(fx.nn.TotalPrimaryBytes()) / 10)
	if got := fx.mgr.Policy(0).BudgetBytes(); got != want {
		t.Fatalf("budget %d, want %d", got, want)
	}
}

func TestManagerTotalStatsAggregates(t *testing.T) {
	// BudgetFraction 10 gives each node room for all ten blocks, so every
	// remote read is captured.
	cfg := Config{Kind: GreedyLRUPolicy, BudgetFraction: 10}
	fx := newManagerFixture(t, cfg, 10, 10)
	n := 0
	for _, b := range fx.f.Blocks {
		node := fx.remoteNodeFor(t, b)
		fx.mgr.OnMapTask(node, b, fx.f.ID, 100, false)
		n++
	}
	fx.eng.Run()
	total := fx.mgr.TotalStats()
	if total.ReplicasCreated != int64(n) {
		t.Fatalf("aggregated replicas %d, want %d", total.ReplicasCreated, n)
	}
	if total.DiskWrites() != total.ReplicasCreated {
		t.Fatal("disk writes must equal replicas created")
	}
	if fx.mgr.UsedBytes() != int64(n)*100 {
		t.Fatalf("used bytes %d", fx.mgr.UsedBytes())
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Kind != ElephantTrapPolicy || cfg.P != 0.3 || cfg.Threshold != 1 || cfg.BudgetFraction != 0.2 {
		t.Fatalf("default config %+v does not match Fig. 7 parameters", cfg)
	}
}
