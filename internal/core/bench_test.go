package core

import (
	"testing"

	"dare/internal/dfs"
	"dare/internal/stats"
)

// BenchmarkGreedyLRUOnMapTask measures Algorithm 1's per-task cost at a
// binding budget (steady-state evict+insert).
func BenchmarkGreedyLRUOnMapTask(b *testing.B) {
	p := NewGreedyLRU(100 * 128)
	for i := 0; i < b.N; i++ {
		p.OnMapTask(dfs.BlockID(i%1000), dfs.FileID(i%37), 128, i%3 == 0)
	}
}

// BenchmarkElephantTrapOnMapTask measures Algorithm 2's per-task cost
// including the competitive-aging sweeps.
func BenchmarkElephantTrapOnMapTask(b *testing.B) {
	et := NewElephantTrap(0.3, 1, 100*128, stats.NewRNG(1))
	for i := 0; i < b.N; i++ {
		et.OnMapTask(dfs.BlockID(i%1000), dfs.FileID(i%37), 128, i%3 == 0)
	}
}
