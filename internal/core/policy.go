// Package core implements DARE, the paper's contribution: distributed,
// adaptive data replication run independently at each data node (§IV).
//
// Each node observes the map tasks scheduled on it. A task whose input
// block is *not* local has already fetched the block over the network —
// DARE captures that existing transfer and may insert the block into the
// local data node as a new dynamic replica, at zero extra network cost.
// Two eviction/admission policies are provided:
//
//   - GreedyLRU (paper Algorithm 1): replicate every remote read; evict
//     least-recently-used dynamic replicas to stay within the replication
//     budget.
//   - ElephantTrap (paper Algorithm 2): replicate remote reads only with
//     probability p, track accesses in a circular list, and age entries by
//     halving their counts while scanning for victims ("competitive
//     aging") — an adaptation of the ElephantTrap heavy-hitter structure.
//
// A Manager wires per-node policies to the name node, applying
// replication/eviction decisions and handling lazy deletion.
package core

import (
	"fmt"

	"dare/internal/dfs"
)

// PolicyKind enumerates the replication policies under evaluation.
type PolicyKind int

const (
	// NonePolicy is vanilla Hadoop: static replication only.
	NonePolicy PolicyKind = iota
	// GreedyLRUPolicy is Algorithm 1.
	GreedyLRUPolicy
	// ElephantTrapPolicy is Algorithm 2.
	ElephantTrapPolicy
	// ScarlettPolicy is the epoch-based proactive baseline of §VI
	// (Ananthanarayanan et al., EuroSys'11), for head-to-head adaptation
	// comparisons.
	ScarlettPolicy
	// GreedyLFUPolicy is the least-frequently-used variant of the greedy
	// approach — the other traditional eviction scheme §IV names.
	GreedyLFUPolicy
)

// String implements fmt.Stringer; the names match the figure legends.
func (k PolicyKind) String() string {
	switch k {
	case NonePolicy:
		return "vanilla"
	case GreedyLRUPolicy:
		return "lru"
	case ElephantTrapPolicy:
		return "elephanttrap"
	case ScarlettPolicy:
		return "scarlett"
	case GreedyLFUPolicy:
		return "lfu"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// ParsePolicyKind converts a CLI spelling into a PolicyKind.
func ParsePolicyKind(s string) (PolicyKind, error) {
	switch s {
	case "vanilla", "none", "off":
		return NonePolicy, nil
	case "lru", "greedy":
		return GreedyLRUPolicy, nil
	case "elephanttrap", "et", "probabilistic":
		return ElephantTrapPolicy, nil
	case "scarlett", "epoch":
		return ScarlettPolicy, nil
	case "lfu":
		return GreedyLFUPolicy, nil
	}
	return 0, fmt.Errorf("core: unknown policy %q (want vanilla|lru|lfu|elephanttrap|scarlett)", s)
}

// Decision is a node policy's reaction to one scheduled map task.
type Decision struct {
	// Replicate requests that the task's input block be inserted into the
	// local data node as a dynamic replica.
	Replicate bool
	// Evict lists dynamic replicas to mark for lazy deletion, freeing
	// budget for the insertion. Victims are chosen by the policy.
	Evict []dfs.BlockID
}

// PolicyStats counts a node policy's activity. DiskWrites equals replicas
// created (each insertion writes one block to local disk) and is the
// quantity behind the paper's "ElephantTrap needs only 50% of the disk
// writes of greedy LRU" claim (§I).
type PolicyStats struct {
	ReplicasCreated int64
	Evictions       int64
	// RemoteSkipped counts remote reads that were NOT captured (sampling
	// miss or no evictable victim).
	RemoteSkipped int64
	// Refreshes counts access-recency/count updates from local reads.
	Refreshes int64
}

// DiskWrites reports block writes caused by dynamic replication.
func (s PolicyStats) DiskWrites() int64 { return s.ReplicasCreated }

// NodePolicy is the per-node replication logic. Implementations are not
// safe for concurrent use; the single-threaded simulation serializes all
// calls, as would per-node locking in a real data node.
type NodePolicy interface {
	// OnMapTask observes a map task scheduled on this node reading block b
	// of size bytes belonging to file f; local reports whether the read is
	// node-local. It returns the policy's decision.
	OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision
	// Contains reports whether b is currently tracked as a dynamic replica
	// (marked-for-deletion blocks are no longer tracked).
	Contains(b dfs.BlockID) bool
	// UsedBytes reports the budget bytes currently consumed.
	UsedBytes() int64
	// BudgetBytes reports the node's replication budget in bytes.
	BudgetBytes() int64
	// Stats reports counters accumulated so far.
	Stats() PolicyStats
	// Kind reports which algorithm this is.
	Kind() PolicyKind
}

// nonePolicy ignores everything; vanilla Hadoop behaviour.
type nonePolicy struct{ stats PolicyStats }

// NewNonePolicy returns the do-nothing policy used for baselines.
func NewNonePolicy() NodePolicy { return &nonePolicy{} }

func (p *nonePolicy) OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision {
	if !local {
		p.stats.RemoteSkipped++
	}
	return Decision{}
}

func (p *nonePolicy) Contains(dfs.BlockID) bool { return false }
func (p *nonePolicy) UsedBytes() int64          { return 0 }
func (p *nonePolicy) BudgetBytes() int64        { return 0 }
func (p *nonePolicy) Stats() PolicyStats        { return p.stats }
func (p *nonePolicy) Kind() PolicyKind          { return NonePolicy }
