// Package core implements DARE, the paper's contribution: distributed,
// adaptive data replication run independently at each data node (§IV).
//
// Each node observes the map tasks scheduled on it. A task whose input
// block is *not* local has already fetched the block over the network —
// DARE captures that existing transfer and may insert the block into the
// local data node as a new dynamic replica, at zero extra network cost.
// Two eviction/admission policies are provided:
//
//   - GreedyLRU (paper Algorithm 1): replicate every remote read; evict
//     least-recently-used dynamic replicas to stay within the replication
//     budget.
//   - ElephantTrap (paper Algorithm 2): replicate remote reads only with
//     probability p, track accesses in a circular list, and age entries by
//     halving their counts while scanning for victims ("competitive
//     aging") — an adaptation of the ElephantTrap heavy-hitter structure.
//
// A Manager wires per-node policies to the name node, applying
// replication/eviction decisions and handling lazy deletion.
package core

import (
	"fmt"

	"dare/internal/dfs"
	"dare/internal/policy"
)

// PolicyKind enumerates the replication policies under evaluation.
type PolicyKind int

const (
	// NonePolicy is vanilla Hadoop: static replication only.
	NonePolicy PolicyKind = iota
	// GreedyLRUPolicy is Algorithm 1.
	GreedyLRUPolicy
	// ElephantTrapPolicy is Algorithm 2.
	ElephantTrapPolicy
	// ScarlettPolicy is the epoch-based proactive baseline of §VI
	// (Ananthanarayanan et al., EuroSys'11), for head-to-head adaptation
	// comparisons.
	ScarlettPolicy
	// GreedyLFUPolicy is the least-frequently-used variant of the greedy
	// approach — the other traditional eviction scheme §IV names.
	GreedyLFUPolicy
)

// String implements fmt.Stringer; the names match the figure legends.
func (k PolicyKind) String() string {
	switch k {
	case NonePolicy:
		return "vanilla"
	case GreedyLRUPolicy:
		return "lru"
	case ElephantTrapPolicy:
		return "elephanttrap"
	case ScarlettPolicy:
		return "scarlett"
	case GreedyLFUPolicy:
		return "lfu"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// ParsePolicyKind converts a CLI/config spelling into a PolicyKind. The
// accepted spellings (and the one unknown-policy error) come from the
// shared registry in internal/policy, so every parse site — this
// function, config files, both CLIs — agrees on names and aliases.
func ParsePolicyKind(s string) (PolicyKind, error) {
	name, ok := policy.CanonicalPolicyName(s)
	if !ok {
		return 0, policy.ErrUnknownPolicy(s)
	}
	switch name {
	case "vanilla":
		return NonePolicy, nil
	case "lru":
		return GreedyLRUPolicy, nil
	case "lfu":
		return GreedyLFUPolicy, nil
	case "elephanttrap":
		return ElephantTrapPolicy, nil
	case "scarlett":
		return ScarlettPolicy, nil
	}
	return 0, policy.ErrUnknownPolicy(s)
}

// Decision is a node policy's reaction to one scheduled map task.
type Decision struct {
	// Replicate requests that the task's input block be inserted into the
	// local data node as a dynamic replica.
	Replicate bool
	// Evict lists dynamic replicas to mark for lazy deletion, freeing
	// budget for the insertion. Victims are chosen by the policy.
	Evict []dfs.BlockID
}

// PolicyStats counts a node policy's activity. DiskWrites equals replicas
// created (each insertion writes one block to local disk) and is the
// quantity behind the paper's "ElephantTrap needs only 50% of the disk
// writes of greedy LRU" claim (§I).
//
// The counter semantics are uniform across all five policies; no policy
// gets a private interpretation:
//
//   - ReplicasCreated: dynamic replicas this policy inserted (one disk
//     write each).
//   - Evictions: tracked replicas marked for (lazy) deletion.
//   - RemoteSkipped: every observed non-local read that did not create a
//     new replica here — sampling misses, no evictable victim, reads of
//     blocks already tracked on this node, and policies whose inline path
//     never replicates (vanilla; Scarlett replicates only at epoch
//     boundaries).
//   - Refreshes: every observed read that updated an existing tracked
//     entry — LRU recency moves, LFU/ElephantTrap count bumps, and
//     Scarlett's repeat tally of a file already seen this epoch. Vanilla
//     tracks nothing, so its Refreshes stays 0 by this same rule rather
//     than by exception.
//
// A remote read of an already-tracked block therefore counts BOTH a
// Refresh (the entry was updated) and a RemoteSkipped (the remote read
// was not captured as a new replica).
type PolicyStats struct {
	ReplicasCreated int64
	Evictions       int64
	RemoteSkipped   int64
	Refreshes       int64
}

// DiskWrites reports block writes caused by dynamic replication.
func (s PolicyStats) DiskWrites() int64 { return s.ReplicasCreated }

// NodePolicy is the per-node replication logic. Implementations are not
// safe for concurrent use; the single-threaded simulation serializes all
// calls, as would per-node locking in a real data node.
type NodePolicy interface {
	// OnMapTask observes a map task scheduled on this node reading block b
	// of size bytes belonging to file f; local reports whether the read is
	// node-local. It returns the policy's decision.
	OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision
	// Contains reports whether b is currently tracked as a dynamic replica
	// (marked-for-deletion blocks are no longer tracked).
	Contains(b dfs.BlockID) bool
	// UsedBytes reports the budget bytes currently consumed.
	UsedBytes() int64
	// BudgetBytes reports the node's replication budget in bytes.
	BudgetBytes() int64
	// Stats reports counters accumulated so far.
	Stats() PolicyStats
	// Kind reports which algorithm this is.
	Kind() PolicyKind
}

// nonePolicy is vanilla Hadoop behaviour: its admission rule is the
// constant Deny, so no read is ever captured. It carries the compiled
// rule anyway so that all five policies share one decision shape (the
// config layer rejects overriding vanilla's rules — a vanilla arm that
// replicates would not be vanilla).
type nonePolicy struct {
	admit policy.Rule
	ctx   replCtx
	stats PolicyStats
}

// NewNonePolicy returns the do-nothing policy used for baselines.
func NewNonePolicy() NodePolicy { return &nonePolicy{admit: policy.Deny()} }

func (p *nonePolicy) OnMapTask(b dfs.BlockID, f dfs.FileID, size int64, local bool) Decision {
	p.ctx.admit(local, size, 0, 0, 0)
	if !p.admit.Eval(&p.ctx) && !local {
		p.stats.RemoteSkipped++
	}
	return Decision{}
}

func (p *nonePolicy) Contains(dfs.BlockID) bool { return false }
func (p *nonePolicy) UsedBytes() int64          { return 0 }
func (p *nonePolicy) BudgetBytes() int64        { return 0 }
func (p *nonePolicy) Stats() PolicyStats        { return p.stats }
func (p *nonePolicy) Kind() PolicyKind          { return NonePolicy }
