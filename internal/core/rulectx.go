package core

import (
	"dare/internal/policy"
	"dare/internal/stats"
)

// replCtx is the reusable policy.Context for replication decisions. One
// instance lives inside each NodePolicy and is re-primed per decision, so
// rule evaluation allocates nothing on the task-launch hot path.
//
// Keys supplied to admission rules: "local" (1 node-local, 0 remote),
// "size" (incoming block bytes), "used"/"budget" (replication budget
// state), "now" (simulated seconds). Victim/aged rules additionally see
// "count" (the candidate's access count, absent for LRU entries) and —
// victim rules only — "same_file" (1 when the candidate belongs to the
// incoming block's file).
type replCtx struct {
	local    float64
	size     float64
	used     float64
	budget   float64
	now      float64
	count    float64
	sameFile float64

	hasCount    bool
	hasSameFile bool
}

// Val implements policy.Context.
func (c *replCtx) Val(key string) (float64, bool) {
	switch key {
	case "local":
		return c.local, true
	case "size":
		return c.size, true
	case "used":
		return c.used, true
	case "budget":
		return c.budget, true
	case "now":
		return c.now, true
	case "count":
		return c.count, c.hasCount
	case "same_file":
		return c.sameFile, c.hasSameFile
	}
	return 0, false
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// admit primes the context for an admission decision.
func (c *replCtx) admit(local bool, size, used, budget int64, now float64) {
	c.local = boolF(local)
	c.size = float64(size)
	c.used = float64(used)
	c.budget = float64(budget)
	c.now = now
	c.hasCount = false
	c.hasSameFile = false
}

// candidate primes the context for an aging decision on one eviction
// candidate (same_file not yet known during the scan).
func (c *replCtx) candidate(count int64, hasCount bool) {
	c.count = float64(count)
	c.hasCount = hasCount
	c.hasSameFile = false
}

// sameFileIs supplies the same-file signal for the victim decision.
func (c *replCtx) sameFileIs(b bool) {
	c.sameFile = boolF(b)
	c.hasSameFile = true
}

// clock is the shared "now" source for policies; nil means time 0 (unit
// tests that never read the clock).
type clock func() float64

func (f clock) read() float64 {
	if f == nil {
		return 0
	}
	return f()
}

// mergedRuleSet is the built-in rule set for a kind with any non-nil
// fields of override taking precedence. This is how a -policy-file config
// replaces one decision (say, the admission gate) while inheriting the
// rest of the policy's behavior.
func mergedRuleSet(kind PolicyKind, p float64, threshold int64, override *policy.RuleSet) policy.RuleSet {
	rs := policy.DefaultRuleSet(kind.String(), p, int(threshold))
	if override != nil {
		if override.Admit != nil {
			rs.Admit = override.Admit
		}
		if override.Victim != nil {
			rs.Victim = override.Victim
		}
		if override.Aged != nil {
			rs.Aged = override.Aged
		}
	}
	return rs
}

// compileBuiltinRules compiles a kind's built-in rule set against rng.
// Built-ins are valid by construction, so a compile failure is a
// programmer error.
func compileBuiltinRules(kind PolicyKind, p float64, threshold int64, rng *stats.RNG) policy.ReplicationRules {
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	rs := policy.DefaultRuleSet(kind.String(), p, int(threshold))
	rules, err := rs.CompileWith(rng)
	if err != nil {
		panic("core: built-in rule set for " + kind.String() + ": " + err.Error())
	}
	return rules
}
