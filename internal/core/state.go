package core

import (
	"errors"
	"fmt"
	"sort"

	"dare/internal/dfs"
	"dare/internal/policy"
	"dare/internal/snapshot"
	"dare/internal/topology"
)

// State images for the DARE layer: every node policy's tracked-replica
// structure in its native order (the order IS policy state — see
// addPolicyState), the compiled rules' mutable leaves, and serializable
// tags for the layer's deferred closures (heartbeat announces, lazy
// deletions, Scarlett epoch boundaries) so the pending event set survives
// a direct-state checkpoint.

// EventTag mirrors sim.EventTag structurally (core deliberately does not
// import the engine package): a serializable identity for a deferred
// closure, letting a restore rebuild the closure from the payload.
type EventTag interface {
	TagKind() uint16
	EncodeTag(e *snapshot.Enc)
}

// TagDeferFunc schedules fn after delay seconds carrying tag. The runner
// wires it to the engine's tagged defer.
type TagDeferFunc func(delay float64, tag EventTag, fn func())

// Tag kinds 64–79 are reserved for the core layer.
const (
	// TagAnnounce is a pending dynamic-replica announce: payload
	// (node, block, canceled).
	TagAnnounce uint16 = 64
	// TagEvict is a pending lazy deletion: payload (node, block).
	TagEvict uint16 = 65
	// TagScarlettEpoch is the pending Scarlett epoch boundary: no payload.
	TagScarlettEpoch uint16 = 66
)

// announceTag identifies a deferred announce. The canceled flag is read
// from the live pendingAdd at encode time: an eviction that canceled the
// announce after scheduling leaves the event in the queue as a no-op, and
// the image must reproduce exactly that.
type announceTag struct {
	node  topology.NodeID
	block dfs.BlockID
	pa    *pendingAdd
}

func (t announceTag) TagKind() uint16 { return TagAnnounce }

func (t announceTag) EncodeTag(e *snapshot.Enc) {
	e.Int(int(t.node))
	e.I64(int64(t.block))
	e.Bool(t.pa.canceled)
}

// evictTag identifies a deferred lazy deletion.
type evictTag struct {
	node  topology.NodeID
	block dfs.BlockID
}

func (t evictTag) TagKind() uint16 { return TagEvict }

func (t evictTag) EncodeTag(e *snapshot.Enc) {
	e.Int(int(t.node))
	e.I64(int64(t.block))
}

// scarlettEpochTag identifies the pending epoch-boundary event.
type scarlettEpochTag struct{}

func (scarlettEpochTag) TagKind() uint16           { return TagScarlettEpoch }
func (scarlettEpochTag) EncodeTag(e *snapshot.Enc) {}

// SetTagDefer switches the manager's deferred scheduling to the tagged
// path, making in-flight announces and evictions checkpointable.
func (m *Manager) SetTagDefer(fn TagDeferFunc) { m.tagDefer = fn }

// SetTagDefer switches the controller's epoch scheduling to the tagged
// path. The epoch event pending at the time of the call (scheduled by
// NewScarlett) keeps its untagged genesis identity; every re-arm after
// the next boundary is tagged.
func (s *Scarlett) SetTagDefer(fn TagDeferFunc) { s.tagDefer = fn }

// DecodeEvent rebuilds a manager-owned deferred closure from its tag
// record, re-registering the pendingAdd when the announce is still live.
// The returned tag re-tags the restored event so a later checkpoint can
// serialize it again.
func (m *Manager) DecodeEvent(kind uint16, d *snapshot.Dec) (EventTag, func(), error) {
	switch kind {
	case TagAnnounce:
		node := topology.NodeID(d.Int())
		b := dfs.BlockID(d.I64())
		canceled := d.Bool()
		if err := d.Err(); err != nil {
			return nil, nil, err
		}
		if int(node) < 0 || int(node) >= len(m.pending) {
			return nil, nil, fmt.Errorf("core: announce tag names unknown node %d", node)
		}
		pa := &pendingAdd{canceled: canceled}
		if !canceled {
			m.pending[node][b] = pa
		}
		return announceTag{node: node, block: b, pa: pa}, m.announceFn(node, b, pa), nil
	case TagEvict:
		node := topology.NodeID(d.Int())
		b := dfs.BlockID(d.I64())
		if err := d.Err(); err != nil {
			return nil, nil, err
		}
		return evictTag{node: node, block: b}, m.evictFn(node, b), nil
	}
	return nil, nil, fmt.Errorf("core: unknown manager event tag %d", kind)
}

// DecodeEvent rebuilds the controller's pending epoch-boundary closure.
func (s *Scarlett) DecodeEvent(kind uint16, d *snapshot.Dec) (EventTag, func(), error) {
	if kind != TagScarlettEpoch {
		return nil, nil, fmt.Errorf("core: unknown scarlett event tag %d", kind)
	}
	return scarlettEpochTag{}, s.epochFn(), nil
}

func encodeStats(e *snapshot.Enc, s PolicyStats) {
	e.I64(s.ReplicasCreated)
	e.I64(s.Evictions)
	e.I64(s.RemoteSkipped)
	e.I64(s.Refreshes)
}

func decodeStats(d *snapshot.Dec) PolicyStats {
	return PolicyStats{
		ReplicasCreated: d.I64(),
		Evictions:       d.I64(),
		RemoteSkipped:   d.I64(),
		Refreshes:       d.I64(),
	}
}

// encodeRules writes the mutable state of a compiled rule set in the
// fixed [Admit, Victim, Aged] order addRules fingerprints. Presence
// flags guard against shape drift between encode- and decode-side
// compilations (they are built from the same spec, so any mismatch is a
// corrupt image, not a version skew).
func encodeRules(e *snapshot.Enc, r policy.ReplicationRules) error {
	for _, rule := range []policy.Rule{r.Admit, r.Victim, r.Aged} {
		e.Bool(rule != nil)
		if rule != nil {
			if err := policy.EncodeRuleState(e, rule); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeRules(d *snapshot.Dec, r policy.ReplicationRules) error {
	for _, rule := range []policy.Rule{r.Admit, r.Victim, r.Aged} {
		if d.Bool() != (rule != nil) {
			return fmt.Errorf("core: rule presence mismatch in state image")
		}
		if rule != nil {
			if err := policy.DecodeRuleState(d, rule); err != nil {
				return err
			}
		}
	}
	return d.Err()
}

// Per-policy kind bytes, a cheap structural check on decode.
const (
	stateKindNone uint8 = iota
	stateKindLRU
	stateKindLFU
	stateKindET
)

func encodePolicyState(e *snapshot.Enc, np NodePolicy) error {
	switch p := np.(type) {
	case *nonePolicy:
		e.U8(stateKindNone)
		encodeStats(e, p.stats)
	case *GreedyLRU:
		e.U8(stateKindLRU)
		e.I64(p.budget)
		e.I64(p.used)
		e.U32(uint32(p.order.Len()))
		for el := p.order.Front(); el != nil; el = el.Next() {
			entry := el.Value.(*lruEntry)
			e.I64(int64(entry.block))
			e.I64(int64(entry.file))
			e.I64(entry.size)
		}
		if err := encodeRules(e, p.rules); err != nil {
			return err
		}
		encodeStats(e, p.stats)
	case *GreedyLFU:
		e.U8(stateKindLFU)
		e.I64(p.budget)
		e.I64(p.used)
		e.U64(p.seq)
		// The heap array is stored verbatim: popVictim's pop/push cycle
		// reshuffles sibling order, so the array layout — not just the
		// (count, seq) contents — is decision-relevant state.
		e.U32(uint32(len(p.pq)))
		for _, entry := range p.pq {
			e.I64(int64(entry.block))
			e.I64(int64(entry.file))
			e.I64(entry.size)
			e.I64(entry.count)
			e.U64(entry.seq)
		}
		if err := encodeRules(e, p.rules); err != nil {
			return err
		}
		encodeStats(e, p.stats)
	case *ElephantTrap:
		e.U8(stateKindET)
		e.I64(p.budget)
		e.I64(p.used)
		e.U32(uint32(p.ring.Len()))
		evictIdx := -1
		i := 0
		for el := p.ring.Front(); el != nil; el = el.Next() {
			entry := el.Value.(*etEntry)
			e.I64(int64(entry.block))
			e.I64(int64(entry.file))
			e.I64(entry.size)
			e.I64(entry.count)
			if el == p.evict {
				evictIdx = i
			}
			i++
		}
		e.Int(evictIdx)
		if err := encodeRules(e, p.rules); err != nil {
			return err
		}
		encodeStats(e, p.stats)
	default:
		return fmt.Errorf("core: policy type %T has no state codec", np)
	}
	return nil
}

func decodePolicyState(d *snapshot.Dec, np NodePolicy) error {
	kind := d.U8()
	if d.Err() != nil {
		return d.Err()
	}
	switch p := np.(type) {
	case *nonePolicy:
		if kind != stateKindNone {
			return fmt.Errorf("core: state kind %d for vanilla policy", kind)
		}
		p.stats = decodeStats(d)
	case *GreedyLRU:
		if kind != stateKindLRU {
			return fmt.Errorf("core: state kind %d for lru policy", kind)
		}
		p.budget = d.I64()
		p.used = d.I64()
		n := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		p.order.Init()
		clear(p.index)
		for i := 0; i < n; i++ {
			entry := &lruEntry{
				block: dfs.BlockID(d.I64()),
				file:  dfs.FileID(d.I64()),
				size:  d.I64(),
			}
			p.index[entry.block] = p.order.PushBack(entry)
		}
		if err := decodeRules(d, p.rules); err != nil {
			return err
		}
		p.stats = decodeStats(d)
	case *GreedyLFU:
		if kind != stateKindLFU {
			return fmt.Errorf("core: state kind %d for lfu policy", kind)
		}
		p.budget = d.I64()
		p.used = d.I64()
		p.seq = d.U64()
		n := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		p.pq = p.pq[:0]
		clear(p.index)
		for i := 0; i < n; i++ {
			entry := &lfuEntry{
				block: dfs.BlockID(d.I64()),
				file:  dfs.FileID(d.I64()),
				size:  d.I64(),
				count: d.I64(),
				seq:   d.U64(),
				pos:   i,
			}
			p.pq = append(p.pq, entry)
			p.index[entry.block] = entry
		}
		if err := decodeRules(d, p.rules); err != nil {
			return err
		}
		p.stats = decodeStats(d)
	case *ElephantTrap:
		if kind != stateKindET {
			return fmt.Errorf("core: state kind %d for elephanttrap policy", kind)
		}
		p.budget = d.I64()
		p.used = d.I64()
		n := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		p.ring.Init()
		clear(p.index)
		for i := 0; i < n; i++ {
			entry := &etEntry{
				block: dfs.BlockID(d.I64()),
				file:  dfs.FileID(d.I64()),
				size:  d.I64(),
				count: d.I64(),
			}
			p.index[entry.block] = p.ring.PushBack(entry)
		}
		evictIdx := d.Int()
		p.evict = nil
		if evictIdx >= 0 {
			if evictIdx >= n {
				return fmt.Errorf("core: eviction pointer %d out of ring of %d", evictIdx, n)
			}
			el := p.ring.Front()
			for i := 0; i < evictIdx; i++ {
				el = el.Next()
			}
			p.evict = el
		}
		if err := decodeRules(d, p.rules); err != nil {
			return err
		}
		p.stats = decodeStats(d)
	default:
		return fmt.Errorf("core: policy type %T has no state codec", np)
	}
	return d.Err()
}

func encodeErrs(e *snapshot.Enc, errs []error) {
	e.U32(uint32(len(errs)))
	for _, err := range errs {
		e.Str(err.Error())
	}
}

func decodeErrs(d *snapshot.Dec) ([]error, error) {
	n := d.Count(4)
	if d.Err() != nil {
		return nil, d.Err()
	}
	var errs []error
	for i := 0; i < n; i++ {
		errs = append(errs, errors.New(d.Str()))
	}
	return errs, d.Err()
}

// EncodeState serializes every node policy's structure and counters. The
// pending announce map is NOT part of this image: it is reconstructed
// entry by entry when the tagged announce events are restored, so the map
// and the closures share the same pendingAdd objects, exactly as live.
func (m *Manager) EncodeState(e *snapshot.Enc) error {
	e.U32(uint32(len(m.policies)))
	for _, p := range m.policies {
		if err := encodePolicyState(e, p); err != nil {
			return err
		}
	}
	encodeErrs(e, m.errs)
	return nil
}

// DecodeState restores the node policies from an EncodeState image. The
// manager must be freshly constructed from the same config and seed, so
// the compiled rule trees match shape for shape.
func (m *Manager) DecodeState(d *snapshot.Dec) error {
	n := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(m.policies) {
		return fmt.Errorf("core: state image has %d policies, manager has %d", n, len(m.policies))
	}
	for _, p := range m.policies {
		if err := decodePolicyState(d, p); err != nil {
			return err
		}
	}
	errs, err := decodeErrs(d)
	if err != nil {
		return err
	}
	m.errs = errs
	return d.Err()
}

// EncodeState serializes the Scarlett controller: epoch access tallies and
// the placed-replica plan in sorted order, budget position, grow-gate
// state, counters.
func (s *Scarlett) EncodeState(e *snapshot.Enc) error {
	e.I64(s.budget)
	e.I64(s.used)
	e.I64(s.extraNetworkBytes)
	e.Bool(s.stopped)

	files := make([]dfs.FileID, 0, len(s.accesses))
	for f := range s.accesses {
		files = append(files, f)
	}
	sortFileIDs(files)
	e.U32(uint32(len(files)))
	for _, f := range files {
		e.I64(int64(f))
		e.I64(s.accesses[f])
	}

	blocks := make([]dfs.BlockID, 0, len(s.placed))
	for b := range s.placed {
		blocks = append(blocks, b)
	}
	sortBlockIDs(blocks)
	e.U32(uint32(len(blocks)))
	var nodes []topology.NodeID
	for _, b := range blocks {
		e.I64(int64(b))
		nodes = nodes[:0]
		for n := range s.placed[b] {
			nodes = append(nodes, n)
		}
		sortNodeIDs(nodes)
		e.U32(uint32(len(nodes)))
		for _, n := range nodes {
			e.Int(int(n))
		}
	}

	e.Bool(s.grow != nil)
	if s.grow != nil {
		if err := policy.EncodeRuleState(e, s.grow); err != nil {
			return err
		}
	}
	encodeStats(e, s.stats)
	encodeErrs(e, s.errs)
	return nil
}

// DecodeState restores the controller from an EncodeState image. The
// controller must be freshly constructed from the same config (which
// compiled an identically-shaped grow rule).
func (s *Scarlett) DecodeState(d *snapshot.Dec) error {
	s.budget = d.I64()
	s.used = d.I64()
	s.extraNetworkBytes = d.I64()
	s.stopped = d.Bool()

	nf := d.Count(16)
	if d.Err() != nil {
		return d.Err()
	}
	s.accesses = make(map[dfs.FileID]int64, nf)
	for i := 0; i < nf; i++ {
		f := dfs.FileID(d.I64())
		s.accesses[f] = d.I64()
	}

	nb := d.Count(8)
	if d.Err() != nil {
		return d.Err()
	}
	s.placed = make(map[dfs.BlockID]map[topology.NodeID]bool, nb)
	for i := 0; i < nb; i++ {
		b := dfs.BlockID(d.I64())
		nn := d.Count(8)
		if d.Err() != nil {
			return d.Err()
		}
		nodes := make(map[topology.NodeID]bool, nn)
		for k := 0; k < nn; k++ {
			nodes[topology.NodeID(d.Int())] = true
		}
		s.placed[b] = nodes
	}

	if d.Bool() != (s.grow != nil) {
		return fmt.Errorf("core: grow rule presence mismatch in state image")
	}
	if s.grow != nil {
		if err := policy.DecodeRuleState(d, s.grow); err != nil {
			return err
		}
	}
	s.stats = decodeStats(d)
	errs, err := decodeErrs(d)
	if err != nil {
		return err
	}
	s.errs = errs
	return d.Err()
}

func sortFileIDs(ids []dfs.FileID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortBlockIDs(ids []dfs.BlockID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortNodeIDs(ids []topology.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
